package parrot_test

import (
	"bytes"
	"testing"

	"parrot"
)

func TestFacadeModelsAndApps(t *testing.T) {
	if len(parrot.Models()) != 7 {
		t.Fatalf("models = %d", len(parrot.Models()))
	}
	if len(parrot.StandardModels()) != 6 {
		t.Fatalf("standard models = %d", len(parrot.StandardModels()))
	}
	if len(parrot.Apps()) != 44 {
		t.Fatalf("apps = %d", len(parrot.Apps()))
	}
	if len(parrot.KillerApps()) != 3 {
		t.Fatalf("killer apps = %d", len(parrot.KillerApps()))
	}
	if _, err := parrot.GetModel("TON"); err != nil {
		t.Error(err)
	}
	if _, err := parrot.GetModel("NOPE"); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := parrot.AppByName("swim"); err != nil {
		t.Error(err)
	}
	if _, err := parrot.AppByName("nope"); err == nil {
		t.Error("unknown app must error")
	}
}

func TestFacadeRun(t *testing.T) {
	r, err := parrot.RunByName("TON", "gzip", 25000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts == 0 || r.IPC() <= 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.Model != parrot.TON || r.App != "gzip" {
		t.Errorf("labels wrong: %s/%s", r.Model, r.App)
	}
}

func TestFacadeRunByNameErrors(t *testing.T) {
	if _, err := parrot.RunByName("XX", "gzip", 1000); err == nil {
		t.Error("bad model must error")
	}
	if _, err := parrot.RunByName("N", "xx", 1000); err == nil {
		t.Error("bad app must error")
	}
}

func TestSampleTracesAndOptimizer(t *testing.T) {
	app, _ := parrot.AppByName("flash")
	traces := parrot.SampleTraces(app, 20000, 50)
	if len(traces) != 50 {
		t.Fatalf("traces = %d", len(traces))
	}
	o := parrot.NewOptimizer(parrot.AllOptimizations())
	reduced := 0
	for _, tr := range traces {
		before := len(tr.Uops)
		res := o.Optimize(tr)
		if res.UopsAfter != len(tr.Uops) {
			t.Fatal("result inconsistent with trace")
		}
		if len(tr.Uops) < before {
			reduced++
		}
		if !tr.Optimized {
			t.Fatal("trace not marked optimized")
		}
	}
	if reduced < 25 {
		t.Errorf("only %d/50 traces shrank", reduced)
	}
}

func TestFacadeExperiments(t *testing.T) {
	apps := parrot.Apps()[:2]
	res := parrot.Experiments(parrot.ExperimentConfig{Insts: 15000, Apps: apps})
	if res.PMax <= 0 {
		t.Error("missing P_MAX")
	}
	if got := len(res.AllFigures()); got != 11 {
		t.Errorf("figures = %d", got)
	}
}

func TestTraceFileFacade(t *testing.T) {
	app, _ := parrot.AppByName("gzip")
	var buf bytes.Buffer
	if err := parrot.CaptureTrace(&buf, app, 10000); err != nil {
		t.Fatal(err)
	}
	m, _ := parrot.GetModel(parrot.TON)
	fromFile, err := parrot.RunTraceFile(m, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	direct := parrot.Run(m, app, 10000)
	if fromFile.Cycles != direct.Cycles || fromFile.DynEnergy != direct.DynEnergy {
		t.Errorf("trace-file replay diverges from direct run")
	}
}
