// Command parrotctl is the CLI client of a parrotd instance.
//
// Usage:
//
//	parrotctl run -model TON -app swim -n 50000 [-json]
//	parrotctl matrix -models N,TON -apps gzip,swim -n 20000 [-progress]
//	parrotctl matrix -expect-digest <hex> -min-cached 0.95   # CI assertions
//	parrotctl get -digest <hex>
//	parrotctl health
//	parrotctl metrics
//	parrotctl top [-watch 2s] [-raw] [-expect 'series op value']...
//	parrotctl trace -id <requestID> [-table] [-o trace.json]
//	parrotctl cluster [-watch 2s] [-expect 'series op value']...
//
// Against a clustered parrotd, "cluster" renders the node's membership
// view: ring layout with ownership shares, per-node health states and
// breaker circuits, plus the forward/hedge/rescue counters scraped from
// /metricsz. "matrix -verify-owners" rebuilds the ring client-side and
// asserts every cache-hit cell was served by its ring owner — the
// cross-node cache-ownership proof the cluster smoke test gates on.
//
// Every subcommand accepts -server (default http://127.0.0.1:8044, or
// $PARROTD when set). The matrix assertions make parrotctl usable as a CI
// gate without JSON post-processing: -expect-digest fails on a matrix
// digest mismatch (bit-exactness), -min-cached fails when the cached-cell
// fraction is below the threshold (warm-cache effectiveness).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parrot/internal/energy"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func defaultServer() string {
	if s := os.Getenv("PARROTD"); s != "" {
		return s
	}
	return "http://127.0.0.1:8044"
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: parrotctl <run|matrix|get|health|metrics|top|trace|cluster> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest)
	case "matrix":
		return cmdMatrix(rest)
	case "get":
		return cmdGet(rest)
	case "health":
		return cmdHealth(rest)
	case "metrics":
		return cmdMetrics(rest)
	case "top":
		return cmdTop(rest)
	case "trace":
		return cmdTrace(rest)
	case "cluster":
		return cmdCluster(rest)
	default:
		return fmt.Errorf("parrotctl: unknown subcommand %q", cmd)
	}
}

func newFlagSet(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("parrotctl "+name, flag.ExitOnError)
	server := fs.String("server", defaultServer(), "parrotd base URL (or $PARROTD)")
	return fs, server
}

func cmdRun(args []string) error {
	fs, server := newFlagSet("run")
	model := fs.String("model", "TON", "machine model")
	app := fs.String("app", "swim", "application name")
	n := fs.Int("n", 0, "dynamic instructions (0 = profile default)")
	priority := fs.String("priority", proto.PriorityInteractive, "queue class: interactive or batch")
	timeout := fs.Duration("timeout", 2*time.Minute, "request deadline")
	jsonOut := fs.Bool("json", false, "emit the raw response as JSON")
	fs.Parse(args)

	c := client.New(*server)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := c.Run(ctx, proto.RunRequest{Model: *model, App: *app, Insts: *n, Priority: *priority})
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON(resp)
	}
	r := resp.Result
	disp := resp.Disposition
	if disp == "" { // pre-disposition servers
		disp = "computed"
		if resp.Cached {
			disp = "cache hit"
		}
	}
	fmt.Printf("model %s on %s (%s)  [%s in %s]\n\n", r.Model, r.App, r.Suite, disp, us(resp.ElapsedUs))
	fmt.Printf("  digest         %s\n", resp.Digest)
	if resp.RequestID != "" {
		fmt.Printf("  request id     %s\n", resp.RequestID)
	}
	fmt.Printf("  instructions   %12d\n", r.Insts)
	fmt.Printf("  cycles         %12d\n", r.Cycles)
	fmt.Printf("  IPC            %12.3f\n", r.IPC())
	fmt.Printf("  dynamic energy %12.4g\n", r.DynEnergy)
	if r.HotInsts > 0 {
		fmt.Printf("  trace coverage %12.3f\n", r.Coverage())
	}
	fmt.Println("\n  energy breakdown (dynamic):")
	for comp := energy.Component(0); comp < energy.NumComponents; comp++ {
		if r.Breakdown[comp] == 0 {
			continue
		}
		fmt.Printf("    %-12s %6.1f%%\n", comp, 100*r.Breakdown[comp]/r.DynEnergy)
	}
	return nil
}

func cmdMatrix(args []string) error {
	fs, server := newFlagSet("matrix")
	models := fs.String("models", "", "comma-separated model subset (empty = all 7)")
	apps := fs.String("apps", "", "comma-separated application subset (empty = all 44)")
	n := fs.Int("n", 0, "dynamic instructions per application (0 = profile defaults)")
	timeout := fs.Duration("timeout", 10*time.Minute, "request deadline")
	progress := fs.Bool("progress", false, "relay SSE progress to stderr")
	expectDigest := fs.String("expect-digest", "", "fail unless the matrix digest equals this value")
	minCached := fs.Float64("min-cached", -1, "fail unless cachedCells/totalCells >= this fraction")
	verifyOwn := fs.Bool("verify-owners", false, "rebuild the ring from /clusterz and fail unless every cache-hit cell was served by its ring owner")
	jsonOut := fs.Bool("json", false, "emit the raw response as JSON (cells included)")
	fs.Parse(args)

	c := client.New(*server)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var onProgress func(proto.Progress)
	if *progress {
		onProgress = func(p proto.Progress) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells  elapsed %s  eta %s   ",
				p.Done, p.Total, us(p.ElapsedUs), us(p.EtaUs))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	resp, err := c.Matrix(ctx, proto.MatrixRequest{
		Models: splitList(*models), Apps: splitList(*apps), Insts: *n,
	}, onProgress)
	if err != nil {
		return err
	}

	if *jsonOut {
		if err := emitJSON(resp); err != nil {
			return err
		}
	} else {
		frac := 0.0
		if resp.TotalCells > 0 {
			frac = float64(resp.CachedCells) / float64(resp.TotalCells)
		}
		fmt.Printf("matrix: %d cells in %s  (%d cached, %.1f%% hit)  P_MAX anchor %s\n",
			resp.TotalCells, us(resp.ElapsedUs), resp.CachedCells, 100*frac, resp.PMaxApp)
		if resp.FailedCells == 0 {
			fmt.Printf("digest: %s\n", resp.Digest)
		}
	}

	// A partial matrix has no digest or P_MAX anchor — list the failed
	// cells and fail, before any digest assertion can compare against "".
	if resp.FailedCells > 0 {
		for _, cell := range resp.Cells {
			if cell.Error != "" {
				fmt.Fprintf(os.Stderr, "  failed cell %s/%s: %s\n", cell.Model, cell.App, cell.Error)
			}
		}
		return fmt.Errorf("matrix partial: %d of %d cells failed", resp.FailedCells, resp.TotalCells)
	}

	// CI assertions.
	if *expectDigest != "" && resp.Digest != *expectDigest {
		return fmt.Errorf("matrix digest mismatch:\n got  %s\n want %s", resp.Digest, *expectDigest)
	}
	if *minCached >= 0 {
		frac := 0.0
		if resp.TotalCells > 0 {
			frac = float64(resp.CachedCells) / float64(resp.TotalCells)
		}
		if frac < *minCached {
			return fmt.Errorf("cached fraction %.3f below required %.3f (%d/%d cells)",
				frac, *minCached, resp.CachedCells, resp.TotalCells)
		}
	}
	if *verifyOwn {
		return verifyOwners(ctx, c, resp)
	}
	return nil
}

func cmdGet(args []string) error {
	fs, server := newFlagSet("get")
	digest := fs.String("digest", "", "result content address (RunSpec digest)")
	fs.Parse(args)
	if *digest == "" {
		return fmt.Errorf("parrotctl get: -digest required")
	}
	c := client.New(*server)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := c.Result(ctx, *digest)
	if err != nil {
		return err
	}
	return emitJSON(resp)
}

func cmdHealth(args []string) error {
	fs, server := newFlagSet("health")
	fs.Parse(args)
	c := client.New(*server)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	return emitJSON(h)
}

func cmdMetrics(args []string) error {
	fs, server := newFlagSet("metrics")
	fs.Parse(args)
	c := client.New(*server)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	return emitJSON(m)
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func us(v int64) string {
	return time.Duration(v * int64(time.Microsecond)).Round(time.Millisecond).String()
}
