package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"parrot/internal/serve/client"
	"parrot/internal/telemetry"
)

// cmdTop scrapes /metricsz and renders a service dashboard: request and
// cell-disposition rates, queue state, cache and pool effectiveness, fleet
// throughput. One-shot by default; -watch re-scrapes on an interval and
// redraws in place. -expect turns the scrape into a CI assertion.
func cmdTop(args []string) error {
	fs, server := newFlagSet("top")
	watch := fs.Duration("watch", 0, "re-scrape and redraw on this interval (0 = one-shot)")
	raw := fs.Bool("raw", false, "dump the raw Prometheus exposition instead of the table")
	var expects expectList
	fs.Var(&expects, "expect", "assert `series op value` (e.g. 'parrot_requests_total{code=\"200\",route=\"run\"}>=1'); repeatable, non-matching exits 1")
	fs.Parse(args)

	c := client.New(*server)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		exp, err := c.MetricsText(ctx)
		cancel()
		if err != nil {
			return err
		}
		if *raw {
			for _, name := range exp.Names {
				for _, key := range exp.Family(name) {
					fmt.Printf("%s %g\n", key, exp.Series[key])
				}
			}
		} else {
			if *watch > 0 {
				fmt.Print("\x1b[2J\x1b[H") // clear + home
			}
			renderTop(exp, c.Base())
		}
		if err := expects.check(exp); err != nil {
			return err
		}
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
	}
}

// renderTop draws the dashboard from one parsed scrape.
func renderTop(e *telemetry.Exposition, base string) {
	get := func(key string) float64 { v, _ := e.Get(key); return v }
	famSum := func(name string) float64 {
		var s float64
		for _, k := range e.Family(name) {
			s += e.Series[k]
		}
		return s
	}
	// labelVal extracts one label's value from a series key.
	labelVal := func(key, label string) string {
		i := strings.Index(key, label+`="`)
		if i < 0 {
			return ""
		}
		rest := key[i+len(label)+2:]
		if j := strings.Index(rest, `"`); j >= 0 {
			return rest[:j]
		}
		return ""
	}

	up := time.Duration(get("parrot_uptime_seconds") * float64(time.Second)).Round(time.Second)
	fmt.Printf("parrotd %s  up %s  goroutines %.0f  workers %.0f  running %.0f\n",
		base, up, get("parrot_goroutines"), get("parrot_sched_workers"), get("parrot_sched_running"))

	// Requests by route (5xx called out).
	byRoute := map[string]float64{}
	var errs float64
	for _, k := range e.Family("parrot_requests_total") {
		byRoute[labelVal(k, "route")] += e.Series[k]
		if strings.HasPrefix(labelVal(k, "code"), "5") {
			errs += e.Series[k]
		}
	}
	routes := make([]string, 0, len(byRoute))
	for r := range byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	parts := make([]string, 0, len(routes))
	for _, r := range routes {
		parts = append(parts, fmt.Sprintf("%s %.0f", r, byRoute[r]))
	}
	fmt.Printf("requests   %s   (5xx %.0f)\n", strings.Join(parts, " | "), errs)

	// Cell dispositions in serving order.
	fmt.Printf("cells      hit %.0f | dedup %.0f | replayed %.0f | exact %.0f\n",
		get(`parrot_cell_requests_total{disposition="hit"}`),
		get(`parrot_cell_requests_total{disposition="dedup"}`),
		get(`parrot_cell_requests_total{disposition="replayed"}`),
		get(`parrot_cell_requests_total{disposition="exact"}`))

	p50i, _ := e.HistQuantile("parrot_queue_wait_seconds", `class="interactive"`, 0.5)
	p99b, _ := e.HistQuantile("parrot_queue_wait_seconds", `class="batch"`, 0.99)
	fmt.Printf("queue      depth int %.0f / batch %.0f   wait p50(int) %s  p99(batch) %s\n",
		get(`parrot_queue_depth{class="interactive"}`),
		get(`parrot_queue_depth{class="batch"}`),
		secs(p50i), secs(p99b))

	// Overload-resilience families (absent on an idle daemon = all zero).
	fmt.Printf("overload   shed int %.0f / batch %.0f  admit limit %.0f  deadline rej %.0f evict %.0f  degraded %.0f\n",
		get(`parrot_shed_total{class="interactive"}`),
		get(`parrot_shed_total{class="batch"}`),
		get("parrot_admit_limit"),
		get("parrot_deadline_rejected_total"),
		get("parrot_deadline_evicted_total"),
		get("parrot_degraded_total"))

	lookups := famSum("parrot_cache_lookups_total")
	fmt.Printf("cache      entries %.0f  bytes %s  hit rate %.3f  evictions %.0f  lookups %.0f\n",
		get("parrot_cache_entries"), bytesHuman(get("parrot_cache_bytes")),
		get("parrot_cache_hit_rate"), get("parrot_cache_evictions_total"), lookups)

	fmt.Printf("pool       size %.0f  gets %.0f  reuses %.0f  discards %.0f\n",
		get("parrot_pool_size"), get("parrot_pool_gets_total"),
		get("parrot_pool_reuses_total"), get("parrot_pool_discards_total"))

	fmt.Printf("sim        insts %s  cycles %s  dyn energy %.4g  %.1f MIPS  busy %s\n",
		countHuman(get("parrot_sim_insts_total")), countHuman(get("parrot_sim_cycles_total")),
		get("parrot_sim_energy_dyn_total"), get("parrot_sched_sim_mips"),
		secs(get("parrot_sched_busy_seconds_total")))
}

func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func bytesHuman(v float64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func countHuman(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// expectList accumulates repeated -expect assertions.
type expectList []expectation

type expectation struct {
	key      string // series key, e.g. parrot_requests_total{route="run"}
	op       string // >=, <=, ==, !=, >, <
	val      float64
	optional bool // '?' prefix: an absent series reads as 0 instead of failing
}

func (l *expectList) String() string { return fmt.Sprintf("%d assertions", len(*l)) }

// Set parses "series op value". A leading '?' marks the series optional:
// absent from the scrape evaluates as 0 rather than failing outright (for
// error counters that only materialize once the first error happens). The
// operator is searched after the label block so label values containing
// '<'/'>' cannot confuse it.
func (l *expectList) Set(s string) error {
	optional := strings.HasPrefix(s, "?")
	if optional {
		s = s[1:]
	}
	tail := s
	base := 0
	if i := strings.Index(s, "}"); i >= 0 {
		base = i + 1
		tail = s[base:]
	}
	for _, op := range []string{">=", "<=", "==", "!=", ">", "<"} {
		if j := strings.Index(tail, op); j >= 0 {
			key := strings.TrimSpace(s[:base+j])
			v, err := strconv.ParseFloat(strings.TrimSpace(tail[j+len(op):]), 64)
			if err != nil {
				return fmt.Errorf("bad -expect value in %q: %v", s, err)
			}
			*l = append(*l, expectation{key: key, op: op, val: v, optional: optional})
			return nil
		}
	}
	return fmt.Errorf("bad -expect %q: want 'series op value' with op in >=,<=,==,!=,>,<", s)
}

// check evaluates every assertion against a scrape; missing series fail
// unless the assertion was marked optional with '?'.
func (l expectList) check(e *telemetry.Exposition) error {
	for _, x := range l {
		got, ok := e.Get(x.key)
		if !ok {
			if !x.optional {
				return fmt.Errorf("expect failed: series %s absent from scrape", x.key)
			}
			got = 0
		}
		pass := false
		switch x.op {
		case ">=":
			pass = got >= x.val
		case "<=":
			pass = got <= x.val
		case "==":
			pass = got == x.val
		case "!=":
			pass = got != x.val
		case ">":
			pass = got > x.val
		case "<":
			pass = got < x.val
		}
		if !pass {
			return fmt.Errorf("expect failed: %s = %g, want %s %g", x.key, got, x.op, x.val)
		}
	}
	if len(l) > 0 {
		fmt.Fprintf(os.Stderr, "parrotctl top: %d assertion(s) passed\n", len(l))
	}
	return nil
}

// cmdTrace fetches a request's span timeline from /v1/trace/{id}. Default
// output is Chrome trace-event JSON (load in chrome://tracing / Perfetto,
// or redirect to a file); -table renders a human waterfall instead.
func cmdTrace(args []string) error {
	fs, server := newFlagSet("trace")
	id := fs.String("id", "", "request ID (from a response's requestId or the X-Parrot-Request-Id header)")
	out := fs.String("o", "", "write Chrome trace JSON to this file (default stdout)")
	table := fs.Bool("table", false, "render a span waterfall instead of JSON")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("parrotctl trace: -id required")
	}

	c := client.New(*server)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if *table {
		doc, err := c.TraceSpans(ctx, *id)
		if err != nil {
			return err
		}
		fmt.Printf("request %s  (%d spans", doc.RequestID, len(doc.Spans))
		if doc.Dropped > 0 {
			fmt.Printf(", %d dropped", doc.Dropped)
		}
		fmt.Println(")")
		for _, sp := range doc.Spans {
			row := "req"
			switch sp.TID {
			case telemetry.TIDWorker:
				row = "wrk"
			case telemetry.TIDCluster:
				row = "cls"
			}
			attrs := make([]string, 0, len(sp.Attrs))
			for k, v := range sp.Attrs {
				attrs = append(attrs, k+"="+v)
			}
			sort.Strings(attrs)
			fmt.Printf("  %s %9s +%-9s %-18s %s\n", row,
				time.Duration(sp.DurUs)*time.Microsecond,
				time.Duration(sp.StartUs)*time.Microsecond,
				sp.Name, strings.Join(attrs, " "))
		}
		return nil
	}

	b, err := c.Trace(ctx, *id)
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, b, 0o644)
	}
	_, err = os.Stdout.Write(b)
	return err
}
