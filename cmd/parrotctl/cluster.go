package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"parrot/internal/cluster"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
)

// cmdCluster renders a node's cluster view: ring layout with ownership
// shares, per-node membership states and breaker circuits, and the
// forward/hedge/rescue counters scraped from /metricsz. One-shot by
// default; -watch redraws like top, -expect turns the scrape into a CI
// assertion.
func cmdCluster(args []string) error {
	fs, server := newFlagSet("cluster")
	watch := fs.Duration("watch", 0, "re-scrape and redraw on this interval (0 = one-shot)")
	jsonOut := fs.Bool("json", false, "emit the raw /clusterz body as JSON")
	var expects expectList
	fs.Var(&expects, "expect", "assert `series op value` against /metricsz (e.g. 'parrot_cluster_forwards_total{outcome=\"ok\"}>=1'); repeatable")
	fs.Parse(args)

	c := client.New(*server)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		st, err := c.Cluster(ctx)
		var exp *telemetry.Exposition
		if err == nil {
			exp, err = c.MetricsText(ctx)
		}
		cancel()
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := emitJSON(st); err != nil {
				return err
			}
		} else {
			if *watch > 0 {
				fmt.Print("\x1b[2J\x1b[H") // clear + home
			}
			renderCluster(st, exp, c.Base())
		}
		if err := expects.check(exp); err != nil {
			return err
		}
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
	}
}

// ownershipShares samples the digest space to estimate each ring member's
// owned fraction. The ring is a pure function of (members, vnodes), so
// the client-side rebuild matches the server's placement exactly.
func ownershipShares(members []string, vnodes int) map[string]float64 {
	out := make(map[string]float64, len(members))
	if len(members) == 0 {
		return out
	}
	ring := cluster.NewRing(members, vnodes)
	const samples = 4096
	for i := 0; i < samples; i++ {
		// Spread probe keys uniformly over the 64-bit key space the ring
		// hashes digests into.
		key := fmt.Sprintf("%016x", uint64(i)*(^uint64(0)/samples))
		if owner, ok := ring.Owner(key); ok {
			out[owner] += 1.0 / samples
		}
	}
	return out
}

// renderCluster draws the cluster dashboard from one /clusterz +
// /metricsz scrape pair.
func renderCluster(st *proto.ClusterStatus, e *telemetry.Exposition, base string) {
	get := func(key string) float64 { v, _ := e.Get(key); return v }

	if len(st.Nodes) == 0 {
		fmt.Printf("%s: single-node daemon (no -peers)\n", base)
		return
	}
	fmt.Printf("cluster view from %s  epoch %d  ring %d/%d nodes × %d vnodes\n",
		st.Self, st.Epoch, len(st.Members), len(st.Nodes), st.VNodes)

	shares := ownershipShares(st.Members, st.VNodes)
	fmt.Printf("%-34s %-8s %-5s %-9s %6s %7s %6s %6s %6s %8s\n",
		"NODE", "STATE", "RING", "BREAKER", "OWN%", "PROBES", "FAILS", "FLAPS", "REJOIN", "LASTERR")
	for _, n := range st.Nodes {
		name := n.ID
		if n.Self {
			name += " *"
		}
		ring := "-"
		if n.InRing {
			ring = "yes"
		}
		lastErr := n.LastErr
		if len(lastErr) > 28 {
			lastErr = lastErr[:25] + "…"
		}
		fmt.Printf("%-34s %-8s %-5s %-9s %5.1f%% %7d %6d %6d %6d %8s\n",
			name, n.State, ring, n.Breaker, 100*shares[n.ID],
			n.Probes, n.Fails, n.Flaps, n.Rejoins, lastErr)
	}

	fmt.Printf("route      local %.0f | remote %.0f | rescued %.0f\n",
		get(`parrot_cluster_route_total{dest="local"}`),
		get(`parrot_cluster_route_total{dest="remote"}`),
		get(`parrot_cluster_route_total{dest="rescued"}`))
	fmt.Printf("forwards   ok %.0f | err %.0f | hop-guard stops %.0f\n",
		get(`parrot_cluster_forwards_total{outcome="ok"}`),
		get(`parrot_cluster_forwards_total{outcome="error"}`),
		get("parrot_cluster_hop_guard_total"))
	fmt.Printf("resilience retries %.0f  reroutes %.0f  recoveries %.0f  hedges %.0f (won %.0f / lost %.0f)  breaker opens %.0f\n",
		get("parrot_cluster_retries_total"),
		get("parrot_cluster_reroutes_total"),
		get("parrot_cluster_recoveries_total"),
		get("parrot_cluster_hedges_total"),
		get("parrot_cluster_hedges_won_total"),
		get("parrot_cluster_hedges_lost_total"),
		get("parrot_cluster_breaker_opens_total"))
	fmt.Printf("probes     ok %.0f | fail %.0f   transitions alive %.0f / suspect %.0f / dead %.0f   rejoins %.0f\n",
		get(`parrot_cluster_probes_total{outcome="ok"}`),
		get(`parrot_cluster_probes_total{outcome="fail"}`),
		get(`parrot_cluster_transitions_total{to="alive"}`),
		get(`parrot_cluster_transitions_total{to="suspect"}`),
		get(`parrot_cluster_transitions_total{to="dead"}`),
		get("parrot_cluster_rejoins_total"))
}

// verifyOwners asserts that every cache-hit cell of a matrix response was
// served by its ring owner: the cross-node cache-ownership proof. The
// ring is rebuilt client-side from /clusterz (pure function of members ×
// vnodes), so the check is independent of any server claim.
func verifyOwners(ctx context.Context, c *client.Client, resp *proto.MatrixResponse) error {
	st, err := c.Cluster(ctx)
	if err != nil {
		return fmt.Errorf("verify-owners: %w", err)
	}
	if len(st.Members) < 2 {
		return fmt.Errorf("verify-owners: not a cluster (%d ring member(s))", len(st.Members))
	}
	ring := cluster.NewRing(st.Members, st.VNodes)
	hits, violations := 0, []string{}
	for _, cell := range resp.Cells {
		if cell.Disposition != "hit" {
			continue
		}
		hits++
		owner, _ := ring.Owner(cell.Digest)
		if cell.Node != owner {
			violations = append(violations,
				fmt.Sprintf("%s/%s served by %s, owner %s", cell.Model, cell.App, cell.Node, owner))
		}
	}
	if hits == 0 {
		return fmt.Errorf("verify-owners: no cache-hit cells to verify (run against a warm cluster)")
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		return fmt.Errorf("verify-owners: %d/%d hit cells served off-owner:\n  %s",
			len(violations), hits, strings.Join(violations, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "parrotctl matrix: %d hit cell(s) all served by their ring owners\n", hits)
	return nil
}
