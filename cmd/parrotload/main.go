// Command parrotload load-tests a parrotd instance: it replays open- or
// closed-loop request streams over a (model × application) cell set and
// reports latency percentiles split by cache disposition — the serving
// layer's proof that a warm content-addressed cache turns the steady 44×7
// matrix into a ≥95%-hit, sub-5ms-p99 workload.
//
// Usage:
//
//	parrotload -requests 1000 -concurrency 8                # closed loop
//	parrotload -mode open -rate 200 -duration 30s           # open loop
//	parrotload -models N,TON -apps gzip,swim -n 20000       # small cell set
//	parrotload -warm                                        # pre-touch every cell once
//	parrotload -min-hit 0.95 -max-cached-p99 5ms            # CI assertions
//	parrotload -report loadreport.json                      # machine-readable report
//	parrotload -concurrency 20 -batch-frac 0.5 -distinct 64 \
//	  -retries 1 -deadline 2s                               # overload storm
//	parrotload -max-5xx 0 -require-retry-after \
//	  -min-goodput-ratio 1.0 -max-interactive-p99 5s        # overload gates
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parrot/internal/serve/client"
	"parrot/internal/serve/loadgen"
	"parrot/internal/serve/proto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", defaultServer(), "parrotd base URL, or a comma-separated list of cluster nodes to round-robin over (or $PARROTD)")
	mode := flag.String("mode", "closed", "closed (back-to-back workers) or open (fixed-rate arrivals)")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers / open-loop in-flight bound")
	rate := flag.Float64("rate", 50, "open-loop arrival rate (requests/s)")
	requests := flag.Int("requests", 0, "stop after this many requests (0 = -duration rules)")
	duration := flag.Duration("duration", 0, "stop after this wall time (0 with -requests unset = 10s)")
	models := flag.String("models", "", "comma-separated model subset (empty = all 7)")
	apps := flag.String("apps", "", "comma-separated application subset (empty = all 44)")
	n := flag.Int("n", 0, "dynamic instructions per cell (0 = profile defaults)")
	seed := flag.Int64("seed", 1, "request-stream shuffle seed")
	warm := flag.Bool("warm", false, "issue every distinct cell once (batch) before measuring")
	minHit := flag.Float64("min-hit", -1, "fail unless the measured hit rate >= this fraction")
	maxCachedP99 := flag.Duration("max-cached-p99", 0, "fail unless cached-cell p99 <= this (0 = no gate)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	reportPath := flag.String("report", "", "also write the full JSON report (latency histograms included) to this file, e.g. loadreport.json")
	batchFrac := flag.Float64("batch-frac", 0, "fraction of requests sent on the batch priority class")
	distinct := flag.Int("distinct", 0, "churn each cell's instruction budget through this many variants (cold storm)")
	retries := flag.Int("retries", 0, "client transport attempts per request (0 = library default of 3)")
	deadline := flag.Duration("deadline", 0, "per-request deadline, propagated as X-Parrot-Deadline (0 = none)")
	max5xx := flag.Int("max-5xx", -1, "fail if more than this many 5xx responses were observed (-1 = no gate)")
	requireRetryAfter := flag.Bool("require-retry-after", false, "fail unless every 429 shed carried a Retry-After hint")
	minGoodputRatio := flag.Float64("min-goodput-ratio", 0, "fail unless fresh (non-degraded) interactive goodput >= ratio × fresh batch goodput (0 = no gate)")
	maxInteractiveP99 := flag.Duration("max-interactive-p99", 0, "fail unless successful interactive p99 <= this (0 = no gate)")
	flag.Parse()

	servers := splitList(*server)
	if len(servers) == 0 {
		return fmt.Errorf("parrotload: no server")
	}
	clients := make([]*client.Client, len(servers))
	ctx := context.Background()
	var opts []client.Option
	if *retries > 0 {
		opts = append(opts, client.WithRetry(client.RetryPolicy{MaxAttempts: *retries}))
	}
	for i, s := range servers {
		clients[i] = client.New(s, opts...)
		if err := clients[i].Ping(ctx); err != nil {
			return fmt.Errorf("parrotload: server unreachable at %s: %w", s, err)
		}
	}
	c := clients[0]

	if *warm {
		// Warm pass: one batch matrix over the exact cell set, so the
		// measured pass exercises the cache rather than the simulator.
		t0 := time.Now()
		resp, err := c.Matrix(ctx, proto.MatrixRequest{
			Models: splitList(*models), Apps: splitList(*apps), Insts: *n,
		}, nil)
		if err != nil {
			return fmt.Errorf("parrotload: warm pass: %w", err)
		}
		if resp.FailedCells > 0 {
			return fmt.Errorf("parrotload: warm pass left %d of %d cells failed", resp.FailedCells, resp.TotalCells)
		}
		fmt.Fprintf(os.Stderr, "parrotload: warmed %d cells in %v (%d already cached)\n",
			resp.TotalCells, time.Since(t0).Round(time.Millisecond), resp.CachedCells)
	}

	report, err := loadgen.Run(ctx, loadgen.Config{
		Client:        c,
		Clients:       clients,
		Mode:          *mode,
		Concurrency:   *concurrency,
		RateHz:        *rate,
		Requests:      *requests,
		Duration:      *duration,
		Models:        splitList(*models),
		Apps:          splitList(*apps),
		Insts:         *n,
		Seed:          *seed,
		BatchFraction: *batchFrac,
		Distinct:      *distinct,
		DeadlineMs:    int(deadline.Milliseconds()),
	})
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Print(report.String())
	}
	if *reportPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("parrotload: write report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "parrotload: report written to %s\n", *reportPath)
	}

	// CI assertions.
	if *minHit >= 0 && report.HitRate < *minHit {
		return fmt.Errorf("hit rate %.3f below required %.3f", report.HitRate, *minHit)
	}
	if *maxCachedP99 > 0 {
		if report.Cached.N == 0 {
			return fmt.Errorf("no cached samples to gate p99 on")
		}
		p99 := time.Duration(report.Cached.P99 * float64(time.Microsecond))
		if p99 > *maxCachedP99 {
			return fmt.Errorf("cached p99 %v above budget %v", p99, *maxCachedP99)
		}
	}
	if *max5xx >= 0 && report.Server5xx > *max5xx {
		return fmt.Errorf("%d server 5xx responses, budget %d", report.Server5xx, *max5xx)
	}
	if *requireRetryAfter && report.ShedHintOK != report.Shed {
		return fmt.Errorf("%d of %d sheds carried no Retry-After hint",
			report.Shed-report.ShedHintOK, report.Shed)
	}
	if *minGoodputRatio > 0 && report.BatchFresh > 0 {
		// Gate on fresh goodput: degraded fallbacks rescue both classes
		// alike, so only non-degraded successes show the priority split.
		ratio := float64(report.InteractiveFresh) / float64(report.BatchFresh)
		if ratio < *minGoodputRatio {
			return fmt.Errorf("interactive/batch fresh goodput ratio %.2f below required %.2f (%d vs %d)",
				ratio, *minGoodputRatio, report.InteractiveFresh, report.BatchFresh)
		}
	}
	if *maxInteractiveP99 > 0 {
		if report.Interactive.N == 0 {
			return fmt.Errorf("no successful interactive samples to gate p99 on")
		}
		p99 := time.Duration(report.Interactive.P99 * float64(time.Microsecond))
		if p99 > *maxInteractiveP99 {
			return fmt.Errorf("interactive p99 %v above budget %v", p99, *maxInteractiveP99)
		}
	}
	return nil
}

func defaultServer() string {
	if s := os.Getenv("PARROTD"); s != "" {
		return s
	}
	return "http://127.0.0.1:8044"
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
