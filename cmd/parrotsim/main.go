// Command parrotsim simulates one (model, application) pair and prints a
// full report: performance, energy, trace-subsystem behaviour and the
// component energy breakdown.
//
// Usage:
//
//	parrotsim -model TON -app swim -n 200000
//	parrotsim -model TON -app swim -json
//	parrotsim -model TON -tracefile swim.ptrace
//	parrotsim -model TON -app swim -remote http://127.0.0.1:8044
//	parrotsim -list
//	parrotsim -model TON -app swim -cpuprofile cpu.out -memprofile mem.out
//
// With -remote the run is served by a parrotd instance (microseconds when
// the cell is cached); if the server is unreachable the command warns and
// falls back to an in-process simulation, which is bit-identical.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parrot"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/energy"
	"parrot/internal/experiments"
	"parrot/internal/profiling"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/tracefile"
	"parrot/internal/workload"
)

// runRemote serves the cell from a parrotd instance, reporting how many
// transport attempts the retrying client needed. A reachability error
// returns (nil, 0, nil): the caller falls back to local simulation with a
// warning. A reachable server that fails the request is a hard error — the
// user asked for that server's answer.
func runRemote(server, modelID, appName string, n int) (*parrot.Result, int, error) {
	c := client.New(server)
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "parrotsim: warning: %s unreachable (%v); falling back to local simulation\n", server, err)
		return nil, 0, nil
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	resp, err := c.Run(ctx, proto.RunRequest{Model: modelID, App: appName, Insts: n})
	if err != nil {
		return nil, 0, err
	}
	disp := "computed"
	if resp.Cached {
		disp = "cache hit"
	}
	by := server
	if resp.Node != "" && resp.Node != server {
		by = fmt.Sprintf("%s via %s", resp.Node, server)
	}
	fmt.Fprintf(os.Stderr, "parrotsim: served by %s (%s, %s, %d attempt(s))\n",
		by, disp, time.Duration(resp.ElapsedUs*int64(time.Microsecond)).Round(time.Millisecond), resp.Attempts)
	return resp.Result, resp.Attempts, nil
}

// runTraceFile replays a captured trace on the named model, with the
// standard warmup fraction applied to the file's record count.
func runTraceFile(modelID, path string) (*parrot.Result, error) {
	m, err := parrot.GetModel(parrot.ModelID(modelID))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := tracefile.NewReader(f)
	if err != nil {
		return nil, err
	}
	prof := workload.Profile{Name: tr.Name, Suite: tr.Suite}
	warm := int(float64(tr.Remaining()) * core.WarmupFraction)
	machine := core.New(config.Model(m))
	res := machine.RunSourceWarm(tr, prof, warm)
	if err := tr.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func main() {
	model := flag.String("model", "TON", "machine model: N, TN, TON, W, TW, TOW, TOS")
	app := flag.String("app", "swim", "benchmark application name")
	n := flag.Int("n", 0, "dynamic instructions (0 = profile default)")
	traceFile := flag.String("tracefile", "", "replay a captured trace file instead of synthesizing -app")
	remote := flag.String("remote", "", "serve the run from a parrotd instance at this base URL (falls back to local when unreachable)")
	list := flag.Bool("list", false, "list models and applications, then exit")
	jsonOut := flag.Bool("json", false, "emit the run result as machine-readable JSON")
	prof := profiling.Define()
	flag.Parse()

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *list {
		fmt.Println("models:")
		for _, m := range parrot.Models() {
			fmt.Printf("  %-4s %s\n", m.ID, m.Description)
		}
		fmt.Println("\napplications:")
		for _, p := range parrot.Apps() {
			fmt.Printf("  %-14s %s\n", p.Name, p.Suite)
		}
		return
	}

	var r *parrot.Result
	var err error
	attempts := 0
	switch {
	case *traceFile != "":
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "parrotsim: -remote does not apply to -tracefile (the server synthesizes by name); running locally")
		}
		r, err = runTraceFile(*model, *traceFile)
	case *remote != "":
		r, attempts, err = runRemote(*remote, *model, *app, *n)
		if err == nil && r == nil { // unreachable: graceful local fallback
			r, err = parrot.RunByName(*model, *app, *n)
		}
	default:
		r, err = parrot.RunByName(*model, *app, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		// A single run has no matrix-wide P_MAX; the run's own average
		// dynamic power anchors the leakage term.
		s := experiments.Summarize(r, r.AvgDynPower())
		s.Attempts = attempts
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("model %s on %s (%s)\n\n", r.Model, r.App, r.Suite)
	fmt.Printf("  instructions   %12d\n", r.Insts)
	fmt.Printf("  cycles         %12d\n", r.Cycles)
	fmt.Printf("  IPC            %12.3f\n", r.IPC())
	fmt.Printf("  uops committed %12d\n", r.UopsCommitted)
	fmt.Printf("  dynamic energy %12.4g\n", r.DynEnergy)
	fmt.Printf("  avg dyn power  %12.3f\n", r.AvgDynPower())
	fmt.Println()
	fmt.Printf("  branch mispredict rate %7.3f\n", r.BranchStats.MispredictRate())
	if r.HotInsts+r.ColdInsts > 0 && r.HotInsts > 0 {
		fmt.Printf("  trace coverage         %7.3f\n", r.Coverage())
		fmt.Printf("  trace mispredict rate  %7.3f\n", r.TPredStats.MispredictRate())
		fmt.Printf("  hot segments           %7d\n", r.HotSegments)
		fmt.Printf("  trace builds           %7d\n", r.TraceBuilds)
		fmt.Printf("  trace aborts           %7d\n", r.TraceAborts)
		fmt.Printf("  optimizations          %7d\n", r.Optimizations)
		if r.DynUopsOrig > 0 {
			fmt.Printf("  uop reduction          %7.3f\n", r.UopReduction())
			fmt.Printf("  dependency reduction   %7.3f\n", r.CritReduction())
			fmt.Printf("  opt-trace utilization  %7.1f\n", r.OptimizedTraceUtilization())
		}
	}
	fmt.Println("\n  energy breakdown (dynamic):")
	for c := energy.Component(0); c < energy.NumComponents; c++ {
		if r.Breakdown[c] == 0 {
			continue
		}
		fmt.Printf("    %-12s %6.1f%%\n", c, 100*r.Breakdown[c]/r.DynEnergy)
	}
}
