// Command parrotd is the simulation-as-a-service daemon: a long-running
// HTTP server that executes (model, application) simulation cells on a
// pooled-machine worker fleet behind a content-addressed result cache.
// Repeated cells — the steady state of the 44×7 evaluation matrix — are
// served from cache in microseconds instead of re-simulated.
//
// Usage:
//
//	parrotd                                  # listen on :8044, memory cache
//	parrotd -addr 127.0.0.1:0 -addrfile a    # random port, written to file
//	parrotd -cachedir /var/cache/parrot      # persistent on-disk store
//	parrotd -cachemem 268435456 -workers 8   # 256 MiB LRU, 8 workers
//	parrotd -prewarm                         # pre-build one machine per model
//	parrotd -loglevel debug -pprof           # verbose logs + /debug/pprof/
//	parrotd -addr 127.0.0.1:7101 \
//	  -peers http://127.0.0.1:7101,http://127.0.0.1:7102,http://127.0.0.1:7103
//	                                         # one node of a 3-node cluster
//
// With -peers, N daemons serve as one logical service: cell digests are
// consistent-hashed onto nodes, non-owned /v1/run requests are forwarded to
// their owner (one hop max), and /v1/matrix on any node scatters cells
// across the ring with retry-elsewhere on node death. Peer liveness is
// probed against /readyz, so draining or still-prewarming nodes are routed
// around. GET /clusterz exposes the membership view.
//
// Operational surface: GET /metricsz serves Prometheus text exposition
// (?format=json for the legacy body), GET /v1/trace/{requestID} replays a
// request's span timeline as Chrome trace-event JSON, GET /v1/stats/stream
// pushes live metric snapshots over SSE, and -pprof exposes the runtime
// profiles. Logs are structured JSON lines on stderr, one per event, each
// carrying the request ID when request-scoped.
//
// SIGINT/SIGTERM drains gracefully: /healthz reports draining, queued and
// running jobs finish, in-flight HTTP responses complete, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/cluster"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/serve/api"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8044", "listen address (port 0 = random)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for scripts wrapping -addr :0)")
	cacheDir := flag.String("cachedir", "", "on-disk result store directory (empty = memory only)")
	cacheMem := flag.Int64("cachemem", 64<<20, "in-memory cache byte budget")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue", 4096, "per-priority queue bound")
	prewarm := flag.Bool("prewarm", false, "pre-construct one pooled machine per model before serving")
	drainTimeout := flag.Duration("draintimeout", 60*time.Second, "max time to drain on shutdown")
	logLevel := flag.String("loglevel", "info", "log level: debug, info, warn, error")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceBuf := flag.Int("tracebuf", 256, "request traces kept for /v1/trace/{id}")
	peers := flag.String("peers", "", "comma-separated peer base URLs (enables cluster mode; include this node or let -advertise add it)")
	advertise := flag.String("advertise", "", "this node's base URL as peers reach it (default http://<bound addr>)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = 64)")
	probeInterval := flag.Duration("probeinterval", time.Second, "peer health-probe interval")
	suspectAfter := flag.Int("suspectafter", 2, "consecutive probe failures before a peer turns suspect")
	deadAfter := flag.Duration("deadafter", 5*time.Second, "time a still-failing suspect peer may linger before leaving the ring")
	admitTarget := flag.Duration("admittarget", 0, "interactive queue-wait target driving adaptive admission control (0 = 250ms)")
	chaosSpec := flag.String("chaos", "", "deterministic fault-injection rules, e.g. 'site=sched.run p=0.3 lat=20ms; site=cache.disk.get p=0.1 err' (seed from PARROT_CHAOS, default 1)")
	flag.Parse()

	lv, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("parrotd: %w", err)
	}
	logger := tlog.New(os.Stderr, lv).With(tlog.F("app", "parrotd"))
	reg := telemetry.NewRegistry()

	// Deterministic chaos injection (off unless -chaos names rules). The
	// schedule is a pure function of the PARROT_CHAOS seed, so a failing
	// chaos run reproduces exactly by re-running with the same seed.
	var inj *chaos.Injector
	if *chaosSpec != "" {
		rules, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("parrotd: -chaos: %w", err)
		}
		seed := chaos.SeedFromEnv()
		inj = chaos.New(seed, rules)
		inj.Register(reg)
		logger.Warn("chaos injection active",
			tlog.F("seed", fmt.Sprintf("%d", seed)),
			tlog.F("rules", *chaosSpec))
	}

	c, err := cache.New(cache.Config{MemBudget: *cacheMem, Dir: *cacheDir, Chaos: inj})
	if err != nil {
		return fmt.Errorf("parrotd: cache: %w", err)
	}

	pool := core.NewPool()
	sc := sched.New(sched.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		Cache:       c,
		Pool:        pool,
		Registry:    reg,
		Log:         logger,
		AdmitTarget: *admitTarget,
		Chaos:       inj,
	})

	// Bind before constructing the cluster so -advertise can default to the
	// actually-bound address (scripts use -addr 127.0.0.1:0).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("parrotd: listen: %w", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			return fmt.Errorf("parrotd: addrfile: %w", err)
		}
	}

	var cl *cluster.Cluster
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = "http://" + reachableAddr(bound)
		}
		cl = cluster.New(cluster.Config{
			Advertise:     self,
			Peers:         splitPeers(*peers),
			VNodes:        *vnodes,
			ProbeInterval: *probeInterval,
			SuspectAfter:  *suspectAfter,
			DeadAfter:     *deadAfter,
			Registry:      reg,
			Log:           logger,
			Chaos:         inj,
		})
		logger.Info("cluster mode",
			tlog.F("advertise", self),
			tlog.F("peers", *peers),
			tlog.F("probeInterval", probeInterval.String()),
			tlog.F("deadAfter", deadAfter.String()))
	}

	srv := api.New(api.Config{
		Cache:       c,
		Sched:       sc,
		Registry:    reg,
		Log:         logger,
		TraceBuf:    *traceBuf,
		EnablePprof: *enablePprof,
		Cluster:     cl,
	})

	if *prewarm {
		// First-request latency matters for a service: construct one machine
		// per model ahead of demand. It runs in the background with the
		// readiness gate held, so the daemon answers /healthz (alive)
		// immediately while /readyz keeps peers from routing cells here
		// until the pool is warm.
		sc.SetReady(false)
		go func() {
			t0 := time.Now()
			for _, m := range config.All() {
				pool.Prewarm(m, 1)
			}
			sc.SetReady(true)
			logger.Info("prewarmed pool",
				tlog.F("machines", pool.Size()),
				tlog.F("took", time.Since(t0).Round(time.Millisecond)))
		}()
	}
	// The one human-facing line (scripts scrape stdout for it); everything
	// else is structured JSON on stderr.
	fmt.Printf("parrotd listening on %s (workers=%d cache=%s)\n",
		bound, sc.Stats().Workers, cacheDesc(*cacheMem, *cacheDir))
	logger.Info("listening",
		tlog.F("addr", bound),
		tlog.F("workers", sc.Stats().Workers),
		tlog.F("cache", cacheDesc(*cacheMem, *cacheDir)),
		tlog.F("pprof", *enablePprof))

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	if cl != nil {
		cl.Start()
		defer cl.Stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("parrotd: serve: %w", err)
		}
		return nil
	case s := <-sig:
		logger.Info("signal received, draining", tlog.F("signal", s.String()))
	}

	// Graceful drain: stop accepting scheduler jobs, let queued/running work
	// and in-flight HTTP responses finish, then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sc.Drain(ctx); err != nil {
		logger.Error("scheduler drain", tlog.F("err", err))
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("parrotd: shutdown: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}

func cacheDesc(mem int64, dir string) string {
	if dir == "" {
		return fmt.Sprintf("%dMiB mem", mem>>20)
	}
	return fmt.Sprintf("%dMiB mem + %s", mem>>20, dir)
}

// splitPeers parses the -peers list, trimming blanks.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// reachableAddr rewrites a wildcard bind ("[::]:7101", "0.0.0.0:7101")
// into a loopback form peers can dial; explicit hosts pass through.
func reachableAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	switch host {
	case "", "::", "0.0.0.0":
		return net.JoinHostPort("127.0.0.1", port)
	}
	return bound
}
