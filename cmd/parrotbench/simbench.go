package main

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"parrot"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
)

// simBenchReport is the schema of BENCH_simkernel.json: the simulation
// kernel's throughput and allocation profile, recorded so kernel
// regressions are visible in review diffs. Regenerate with:
//
//	go run ./cmd/parrotbench -simbench -n 50000 > BENCH_simkernel.json
type simBenchReport struct {
	Benchmark   string `json:"benchmark"`
	Date        string `json:"date"`
	GoVersion   string `json:"go"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	InstsPerApp int    `json:"insts_per_app"`
	Apps        int    `json:"apps"`
	Models      int    `json:"models"`

	// MatrixPasses holds consecutive full-matrix runs. The first pass pays
	// every compulsory cost (program synthesis, machine construction); later
	// passes run entirely out of the machine pool and program cache, which
	// is the regime the experiment driver and benchmarks operate in.
	MatrixPasses []matrixPass `json:"matrix_passes"`

	// SteadyState profiles repeated single simulations on a warm pool —
	// the ~0 allocs/op gate for the slab-backed pipeline.
	SteadyState steadyState `json:"steady_state"`

	Pool poolCounters `json:"pool"`

	// SeedBaseline is the same matrix measurement taken before the
	// zero-allocation kernel work (machine pooling, ring-buffer dispatch,
	// slab-backed traces), kept in the report as the regression reference.
	SeedBaseline seedBaseline `json:"seed_baseline"`

	// PR1Baseline is the steady matrix pass at the PR 1 tree (pooled
	// machines and slab pipeline, but the polling execution kernel) — the
	// reference for the event-driven kernel's >=1.4x throughput gate.
	PR1Baseline seedBaseline `json:"pr1_baseline"`

	Notes string `json:"notes,omitempty"`
}

type seedBaseline struct {
	Description string  `json:"description"`
	InstsPerApp int     `json:"insts_per_app"`
	WallSeconds float64 `json:"wall_seconds"`
	SimMIPS     float64 `json:"sim_mips"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// preKernelBaseline is the 44-app × 7-model matrix at 50k insts/app measured
// on the pre-pooling simulator (every run constructed a fresh machine and
// regenerated its program; dispatch carried pointer-typed uops through
// grow-forever slices).
var preKernelBaseline = seedBaseline{
	Description: "pre-refactor seed: fresh machine + regenerated program per run, pointer-uop append queues",
	InstsPerApp: 50_000,
	WallSeconds: 9.25,
	SimMIPS:     1.17,
	Allocs:      15_090_000,
	AllocBytes:  3_340_000_000,
}

// pollingKernelBaseline is the steady matrix pass measured at the PR 1 tree
// (polling execution kernel: linear pending-list writeback, per-cycle IQ
// source re-poll, per-load store-ring walk) on the same machine.
var pollingKernelBaseline = seedBaseline{
	Description: "PR 1 tree steady matrix pass: pooled machines + slab pipeline, polling execution kernel",
	InstsPerApp: 50_000,
	WallSeconds: 4.054,
	SimMIPS:     2.673,
	Allocs:      3_547,
	AllocBytes:  1_554_432,
}

type matrixPass struct {
	Pass        string  `json:"pass"` // "cold" or "steady"
	WallSeconds float64 `json:"wall_seconds"`
	SimMIPS     float64 `json:"sim_mips"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

type steadyState struct {
	Model            string  `json:"model"`
	App              string  `json:"app"`
	Insts            int     `json:"insts"`
	Runs             int     `json:"runs"`
	AllocsPerRun     float64 `json:"allocs_per_run"`
	AllocBytesPerRun float64 `json:"alloc_bytes_per_run"`
	SimMIPS          float64 `json:"sim_mips"`
}

type poolCounters struct {
	Gets     uint64 `json:"gets"`
	Reuses   uint64 `json:"reuses"`
	Puts     uint64 `json:"puts"`
	Discards uint64 `json:"discards"`
}

// memDelta brackets a measurement with runtime.ReadMemStats.
type memDelta struct{ m0 runtime.MemStats }

func startMemDelta() *memDelta {
	d := &memDelta{}
	runtime.ReadMemStats(&d.m0)
	return d
}

func (d *memDelta) stop() (allocs, bytes uint64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - d.m0.Mallocs, m1.TotalAlloc - d.m0.TotalAlloc
}

// runSimBench measures the kernel and writes the JSON report.
func runSimBench(n int, out io.Writer) error {
	rep := simBenchReport{
		Benchmark:    "simkernel",
		Date:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		InstsPerApp:  n,
		Models:       len(config.All()),
		SeedBaseline: preKernelBaseline,
		PR1Baseline:  pollingKernelBaseline,
		Notes: "matrix_passes[0] pays compulsory costs (program synthesis, machine construction); " +
			"later passes reuse pooled machines and cached programs. steady_state is per complete " +
			"warmup+measure simulation, allocations included.",
	}

	// Full experiment matrix, twice: cold then steady.
	cfg := experiments.Config{Insts: n}
	for pass, name := range []string{"cold", "steady"} {
		d := startMemDelta()
		start := time.Now()
		res := experiments.Run(cfg)
		wall := time.Since(start).Seconds()
		allocs, bytes := d.stop()
		var insts uint64
		for _, id := range res.Models() {
			for _, p := range res.Apps() {
				insts += res.Get(id, p.Name).Insts
			}
		}
		if pass == 0 {
			rep.Apps = len(res.Apps())
		}
		rep.MatrixPasses = append(rep.MatrixPasses, matrixPass{
			Pass:        name,
			WallSeconds: wall,
			SimMIPS:     float64(insts) / wall / 1e6,
			Allocs:      allocs,
			AllocBytes:  bytes,
		})
	}

	// Steady-state single-run loop on a warm pool.
	const ssRuns, ssInsts = 200, 30_000
	m, _ := parrot.GetModel(parrot.TON)
	app, _ := parrot.AppByName("flash")
	parrot.Run(m, app, ssInsts) // prime
	d := startMemDelta()
	start := time.Now()
	for i := 0; i < ssRuns; i++ {
		parrot.Run(m, app, ssInsts)
	}
	wall := time.Since(start).Seconds()
	allocs, bytes := d.stop()
	rep.SteadyState = steadyState{
		Model:            string(parrot.TON),
		App:              "flash",
		Insts:            ssInsts,
		Runs:             ssRuns,
		AllocsPerRun:     float64(allocs) / ssRuns,
		AllocBytesPerRun: float64(bytes) / ssRuns,
		SimMIPS:          float64(uint64(ssRuns)*ssInsts) / wall / 1e6,
	}

	st := core.DefaultPool.Stats()
	rep.Pool = poolCounters{Gets: st.Gets, Reuses: st.Reuses, Puts: st.Puts, Discards: st.Discards}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
