package main

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"parrot"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
)

// simBenchReport is the schema of BENCH_simkernel.json: the simulation
// kernel's throughput and allocation profile, recorded so kernel
// regressions are visible in review diffs. Regenerate with:
//
//	go run ./cmd/parrotbench -simbench -n 50000 > BENCH_simkernel.json
//	go run ./cmd/parrotbench -simbench -n 50000 -procs 2 > BENCH_simkernel.json
type simBenchReport struct {
	Benchmark   string `json:"benchmark"`
	Date        string `json:"date"`
	GoVersion   string `json:"go"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	InstsPerApp int    `json:"insts_per_app"`
	Apps        int    `json:"apps"`
	Models      int    `json:"models"`

	// MatrixPasses holds consecutive full-matrix runs. The first pass pays
	// every compulsory cost (program synthesis, machine construction) and
	// records memo chains; the "steady" pass replays them, which is the
	// regime the experiment driver, the perf gate and warm parrotd fleets
	// operate in. "steady_nomemo" forces the exact cycle engine on the same
	// warm pool — the memoization speedup is steady / steady_nomemo.
	MatrixPasses []matrixPass `json:"matrix_passes"`

	// ParallelEfficiency is set when a "parallel_nomemo" pass was recorded
	// (-procs N): its sim-MIPS divided by N x the single-threaded
	// steady_nomemo sim-MIPS. 1.0 = perfect scaling.
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`

	// SteadyState profiles repeated single simulations on a warm pool with
	// memoization live (replay throughput); SteadyStateExact is the same
	// loop on a memo-off machine — the ~0 allocs/op gate for the
	// slab-backed pipeline, unchanged from earlier trees.
	SteadyState      steadyState `json:"steady_state"`
	SteadyStateExact steadyState `json:"steady_state_nomemo"`

	Pool poolCounters `json:"pool"`

	// SeedBaseline is the same matrix measurement taken before the
	// zero-allocation kernel work (machine pooling, ring-buffer dispatch,
	// slab-backed traces), kept in the report as the regression reference.
	SeedBaseline seedBaseline `json:"seed_baseline"`

	// PR1Baseline is the steady matrix pass at the PR 1 tree (pooled
	// machines and slab pipeline, but the polling execution kernel) — the
	// reference for the event-driven kernel's >=1.4x throughput gate.
	PR1Baseline seedBaseline `json:"pr1_baseline"`

	// PR4Baseline is the steady matrix pass at the PR 4 tree (event-driven
	// kernel, no hot-window memoization) — the reference for the
	// memoization fast path's >=2x steady-matrix gate.
	PR4Baseline seedBaseline `json:"pr4_baseline"`

	Notes string `json:"notes,omitempty"`
}

type seedBaseline struct {
	Description string  `json:"description"`
	InstsPerApp int     `json:"insts_per_app"`
	WallSeconds float64 `json:"wall_seconds"`
	SimMIPS     float64 `json:"sim_mips"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// preKernelBaseline is the 44-app × 7-model matrix at 50k insts/app measured
// on the pre-pooling simulator (every run constructed a fresh machine and
// regenerated its program; dispatch carried pointer-typed uops through
// grow-forever slices).
var preKernelBaseline = seedBaseline{
	Description: "pre-refactor seed: fresh machine + regenerated program per run, pointer-uop append queues",
	InstsPerApp: 50_000,
	WallSeconds: 9.25,
	SimMIPS:     1.17,
	Allocs:      15_090_000,
	AllocBytes:  3_340_000_000,
}

// pollingKernelBaseline is the steady matrix pass measured at the PR 1 tree
// (polling execution kernel: linear pending-list writeback, per-cycle IQ
// source re-poll, per-load store-ring walk) on the same machine.
var pollingKernelBaseline = seedBaseline{
	Description: "PR 1 tree steady matrix pass: pooled machines + slab pipeline, polling execution kernel",
	InstsPerApp: 50_000,
	WallSeconds: 4.054,
	SimMIPS:     2.673,
	Allocs:      3_547,
	AllocBytes:  1_554_432,
}

// eventKernelBaseline is the steady matrix pass measured at the PR 4 tree
// (event-driven execution kernel, time-wheel writeback, idle fast-forward;
// no hot-window memoization) on the same machine.
var eventKernelBaseline = seedBaseline{
	Description: "PR 4 tree steady matrix pass: event-driven kernel, no hot-window memoization",
	InstsPerApp: 50_000,
	WallSeconds: 3.421,
	SimMIPS:     3.168,
	Allocs:      4_335,
	AllocBytes:  1_648_208,
}

type matrixPass struct {
	Pass        string  `json:"pass"` // cold | steady | steady_nomemo | parallel_nomemo
	Memo        bool    `json:"memo"`
	Procs       int     `json:"procs"`
	WallSeconds float64 `json:"wall_seconds"`
	SimMIPS     float64 `json:"sim_mips"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

type steadyState struct {
	Model            string  `json:"model"`
	App              string  `json:"app"`
	Insts            int     `json:"insts"`
	Runs             int     `json:"runs"`
	AllocsPerRun     float64 `json:"allocs_per_run"`
	AllocBytesPerRun float64 `json:"alloc_bytes_per_run"`
	SimMIPS          float64 `json:"sim_mips"`
}

type poolCounters struct {
	Gets     uint64 `json:"gets"`
	Reuses   uint64 `json:"reuses"`
	Puts     uint64 `json:"puts"`
	Discards uint64 `json:"discards"`
}

// memDelta brackets a measurement with runtime.ReadMemStats.
type memDelta struct{ m0 runtime.MemStats }

func startMemDelta() *memDelta {
	d := &memDelta{}
	runtime.ReadMemStats(&d.m0)
	return d
}

func (d *memDelta) stop() (allocs, bytes uint64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - d.m0.Mallocs, m1.TotalAlloc - d.m0.TotalAlloc
}

// timedMatrixPass runs one full experiment matrix and records it.
func timedMatrixPass(name string, cfg experiments.Config, procs int) (matrixPass, *experiments.Results) {
	d := startMemDelta()
	start := time.Now()
	res := experiments.Run(cfg)
	wall := time.Since(start).Seconds()
	allocs, bytes := d.stop()
	var insts uint64
	for _, id := range res.Models() {
		for _, p := range res.Apps() {
			insts += res.Get(id, p.Name).Insts
		}
	}
	return matrixPass{
		Pass:        name,
		Memo:        cfg.Memoize != experiments.MemoOff,
		Procs:       procs,
		WallSeconds: wall,
		SimMIPS:     float64(insts) / wall / 1e6,
		Allocs:      allocs,
		AllocBytes:  bytes,
	}, res
}

// runSimBench measures the kernel and writes the JSON report. procs > 1
// adds a memo-off matrix pass at GOMAXPROCS=procs for the parallel-scaling
// figure.
func runSimBench(n, procs int, out io.Writer) error {
	rep := simBenchReport{
		Benchmark:    "simkernel",
		Date:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		InstsPerApp:  n,
		Models:       len(config.All()),
		SeedBaseline: preKernelBaseline,
		PR1Baseline:  pollingKernelBaseline,
		PR4Baseline:  eventKernelBaseline,
		Notes: "matrix_passes[0] pays compulsory costs (program synthesis, machine construction) and records " +
			"memo chains; the steady pass replays them. steady_nomemo forces the exact cycle engine on the " +
			"same warm pool, so steady/steady_nomemo is the memoization speedup and steady_nomemo/pr4_baseline " +
			"the kernel-only delta. steady_state is per complete warmup+measure simulation, allocations included.",
	}

	// Full experiment matrix: cold (records), steady (replays), then the
	// exact engine on the same warm pool.
	memoCfg := experiments.Config{Insts: n}
	exactCfg := experiments.Config{Insts: n, Memoize: experiments.MemoOff}
	for _, pass := range []struct {
		name string
		cfg  experiments.Config
	}{
		{"cold", memoCfg},
		{"steady", memoCfg},
		{"steady_nomemo", exactCfg},
	} {
		mp, res := timedMatrixPass(pass.name, pass.cfg, runtime.GOMAXPROCS(0))
		rep.MatrixPasses = append(rep.MatrixPasses, mp)
		if rep.Apps == 0 {
			rep.Apps = len(res.Apps())
		}
	}

	// Optional parallel pass: exact engine (memoization off, so the number
	// reflects simulation scaling rather than replay scaling) at
	// GOMAXPROCS=procs with a matching worker fan-out.
	if procs > 1 {
		old := runtime.GOMAXPROCS(procs)
		parCfg := exactCfg
		parCfg.Parallelism = procs
		mp, _ := timedMatrixPass("parallel_nomemo", parCfg, procs)
		runtime.GOMAXPROCS(old)
		rep.MatrixPasses = append(rep.MatrixPasses, mp)
		for _, p := range rep.MatrixPasses {
			if p.Pass == "steady_nomemo" && p.SimMIPS > 0 {
				rep.ParallelEfficiency = mp.SimMIPS / (float64(procs) * p.SimMIPS)
			}
		}
	}

	// Steady-state single-run loop on a warm pool: replay throughput first
	// (memoization live via the default pool), then the exact engine on a
	// caller-managed memo-off machine — the slab pipeline's allocs/op gate.
	const ssRuns, ssInsts = 200, 30_000
	m, _ := parrot.GetModel(parrot.TON)
	app, _ := parrot.AppByName("flash")
	parrot.Run(m, app, ssInsts) // prime: records the chain
	d := startMemDelta()
	start := time.Now()
	for i := 0; i < ssRuns; i++ {
		parrot.Run(m, app, ssInsts)
	}
	wall := time.Since(start).Seconds()
	allocs, bytes := d.stop()
	rep.SteadyState = steadyState{
		Model:            string(parrot.TON),
		App:              "flash",
		Insts:            ssInsts,
		Runs:             ssRuns,
		AllocsPerRun:     float64(allocs) / ssRuns,
		AllocBytesPerRun: float64(bytes) / ssRuns,
		SimMIPS:          float64(uint64(ssRuns)*ssInsts) / wall / 1e6,
	}

	exact := core.New(config.Model(m))
	exact.EnableMemo(false)
	core.RunWarmOn(exact, app, ssInsts) // prime
	d = startMemDelta()
	start = time.Now()
	for i := 0; i < ssRuns; i++ {
		exact.Reset()
		core.RunWarmOn(exact, app, ssInsts)
	}
	wall = time.Since(start).Seconds()
	allocs, bytes = d.stop()
	rep.SteadyStateExact = steadyState{
		Model:            string(parrot.TON),
		App:              "flash",
		Insts:            ssInsts,
		Runs:             ssRuns,
		AllocsPerRun:     float64(allocs) / ssRuns,
		AllocBytesPerRun: float64(bytes) / ssRuns,
		SimMIPS:          float64(uint64(ssRuns)*ssInsts) / wall / 1e6,
	}

	st := core.DefaultPool.Stats()
	rep.Pool = poolCounters{Gets: st.Gets, Reuses: st.Reuses, Puts: st.Puts, Discards: st.Discards}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
