package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"parrot/internal/experiments"
)

// runBaselineCheck is the CI perf-regression gate: it re-measures the steady
// (pooled, program-cached, memoized) full-matrix pass and compares its
// sim-MIPS against the committed BENCH_simkernel.json. A regression beyond
// tolerance (e.g. 0.10 = 10%) fails with a non-zero exit so kernel slowdowns
// are caught in review rather than discovered after merging; on success the
// measured-vs-baseline delta is still printed so drift stays visible in CI
// logs long before it trips the gate.
//
//	go run ./cmd/parrotbench -checkbaseline BENCH_simkernel.json -n 50000
//	go run ./cmd/parrotbench -checkbaseline BENCH_simkernel.json -tolerance 0.05
func runBaselineCheck(path string, n int, tolerance float64, out io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base simBenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var ref *matrixPass
	for i := range base.MatrixPasses {
		if base.MatrixPasses[i].Pass == "steady" {
			ref = &base.MatrixPasses[i]
		}
	}
	if ref == nil {
		return fmt.Errorf("baseline %s: no steady matrix pass recorded", path)
	}
	if n <= 0 {
		n = base.InstsPerApp
	}
	if n != base.InstsPerApp {
		fmt.Fprintf(out, "note: measuring at %d insts/app, baseline recorded at %d\n",
			n, base.InstsPerApp)
	}

	// Cold pass pays compulsory costs (machine construction, program
	// synthesis); the steady pass is what the baseline recorded. CI
	// machines are noisy, so take the best of three timed steady passes —
	// the fastest pass is the one least perturbed by unrelated load, and a
	// genuine kernel regression slows every pass.
	cfg := experiments.Config{Insts: n}
	experiments.Run(cfg)
	var mips float64
	for i := 0; i < 3; i++ {
		start := time.Now()
		res := experiments.Run(cfg)
		wall := time.Since(start).Seconds()
		var insts uint64
		for _, id := range res.Models() {
			for _, p := range res.Apps() {
				insts += res.Get(id, p.Name).Insts
			}
		}
		if m := float64(insts) / wall / 1e6; m > mips {
			mips = m
		}
	}

	ratio := mips / ref.SimMIPS
	fmt.Fprintf(out, "steady matrix pass: %.3f sim-MIPS (baseline %.3f, ratio %.3f, floor %.3f)\n",
		mips, ref.SimMIPS, ratio, 1-tolerance)
	if ratio < 1-tolerance {
		return fmt.Errorf("sim-MIPS regression: %.3f is %.1f%% below baseline %.3f (max allowed %.0f%%)",
			mips, (1-ratio)*100, ref.SimMIPS, tolerance*100)
	}
	fmt.Fprintf(out, "perf gate: OK (%+.1f%% vs baseline, tolerance %.0f%%)\n",
		(ratio-1)*100, tolerance*100)
	return nil
}
