package main

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"parrot/internal/isa"
	"parrot/internal/ooo"
)

// engineBenchReport is the schema of BENCH_engine.json: per-clock cost of the
// execution engine on the micro-workloads that isolate its hot paths, next to
// the numbers measured on the pre-rewrite polling kernel. Regenerate with:
//
//	go run ./cmd/parrotbench -enginebench > BENCH_engine.json
type engineBenchReport struct {
	Benchmark  string `json:"benchmark"`
	Date       string `json:"date"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Baseline describes where the baseline_ns_per_cycle numbers come from.
	Baseline string `json:"baseline"`

	// Scenarios are the BenchmarkEngineCycle workloads (internal/ooo).
	Scenarios []engineScenario `json:"scenarios"`

	// IdleScaling pins the event-driven property: ns/cycle across a growing
	// stalled window must stay flat, where the polling kernel grew linearly.
	IdleScaling []idleScalingPoint `json:"idle_scaling"`

	Notes string `json:"notes,omitempty"`
}

type engineScenario struct {
	Name               string  `json:"name"`
	CyclesPerRun       uint64  `json:"cycles_per_run"`
	NsPerCycle         float64 `json:"ns_per_cycle"`
	BaselineNsPerCycle float64 `json:"baseline_ns_per_cycle"`
	Speedup            float64 `json:"speedup"`
}

type idleScalingPoint struct {
	InFlight           int     `json:"inflight"`
	NsPerCycle         float64 `json:"ns_per_cycle"`
	BaselineNsPerCycle float64 `json:"baseline_ns_per_cycle"`
	Speedup            float64 `json:"speedup"`
}

// prePollingBaseline holds ns/cycle measured on the pre-rewrite kernel
// (linear pending-list writeback, full IQ re-poll per cycle, per-load store
// ring walk) on the same machine, same workloads, via
// `go test -bench BenchmarkEngine ./internal/ooo` at the PR 1 tree.
var prePollingBaseline = map[string]float64{
	"dense-chain":      161.1,
	"wide-independent": 114.0,
	"loadstore-heavy":  178.8,
	"idle-in-flight":   144.2,
	"inflight-8":       29.59,
	"inflight-32":      96.72,
	"inflight-128":     166.0,
}

// engineALU builds a 3-operand integer add uop.
func engineALU(d, s1, s2 int) isa.Uop {
	u := isa.NewUop(isa.OpAdd)
	u.Dst[0] = isa.GPR(d)
	u.Src[0] = isa.GPR(s1)
	u.Src[1] = isa.GPR(s2)
	return u
}

// engineDiv builds an integer divide uop (non-pipelined unit).
func engineDiv(d int) isa.Uop {
	u := isa.NewUop(isa.OpDiv)
	u.Dst[0] = isa.GPR(d % 8)
	u.Src[0] = isa.GPR(8)
	u.Src[1] = isa.GPR(9)
	return u
}

// engineProg mirrors the BenchmarkEngineCycle workload generators in
// internal/ooo/bench_test.go so the standalone tool and the go-test
// benchmarks measure identical programs.
func engineProg(name string) (prog []isa.Uop, addrs []uint64, mem func(uint64, bool) int) {
	switch name {
	case "dense-chain":
		for i := 0; i < 2000; i++ {
			prog = append(prog, engineALU(1, 1, 2))
		}
	case "wide-independent":
		for i := 0; i < 2000; i++ {
			prog = append(prog, engineALU(i%8, 8+i%4, 12+i%4))
		}
	case "loadstore-heavy":
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				st := isa.NewUop(isa.OpStore)
				st.Src[0] = isa.GPR(2)
				st.Src[1] = isa.GPR(i % 8)
				prog = append(prog, st)
				addrs = append(addrs, uint64(0x1000+(i%16)*64))
			case 1, 2:
				ld := isa.NewUop(isa.OpLoad)
				ld.Dst[0] = isa.GPR(i % 8)
				ld.Src[0] = isa.GPR(2)
				prog = append(prog, ld)
				addrs = append(addrs, uint64(0x1000+((i+3)%16)*64))
			default:
				prog = append(prog, engineALU(i%8, 8+i%4, 12+i%4))
				addrs = append(addrs, 0)
			}
		}
		mem = func(addr uint64, write bool) int { return int(addr>>6) % 5 }
	case "idle-in-flight":
		for i := 0; i < 64; i++ {
			prog = append(prog, engineDiv(i))
		}
	}
	return prog, addrs, mem
}

// engineRun drives prog through the engine to drain (same protocol as the
// go-test benchmarks: dispatch honoring width and back-pressure, one Cycle
// per dispatch group, then Drain).
func engineRun(e *ooo.Engine, prog []isa.Uop, addrs []uint64) {
	i := 0
	for i < len(prog) {
		dispatched := 0
		for dispatched < e.Config().Width && i < len(prog) && e.CanDispatch() {
			var addr uint64
			if prog[i].Op.IsMem() && addrs != nil {
				addr = addrs[i]
			}
			e.Dispatch(&prog[i], addr, true, false)
			i++
			dispatched++
		}
		e.Cycle()
	}
	e.Drain()
}

// engineMeasure times repeated pooled runs of one program and returns
// ns/cycle plus the deterministic per-run cycle count.
func engineMeasure(prog []isa.Uop, addrs []uint64, mem func(uint64, bool) int) (nsPerCycle float64, cyclesPerRun uint64) {
	e := ooo.New(ooo.Narrow(), mem)
	engineRun(e, prog, addrs) // warm the slabs
	cyclesPerRun = e.Stats.Cycles

	const minIters, minWall = 200, 300 * time.Millisecond
	var cycles uint64
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < minWall {
		e.Reset()
		engineRun(e, prog, addrs)
		cycles += e.Stats.Cycles
		iters++
	}
	wall := time.Since(start)
	return float64(wall.Nanoseconds()) / float64(cycles), cyclesPerRun
}

// runEngineBench measures the engine micro-workloads and writes the JSON
// report compared against the recorded polling-kernel baselines.
func runEngineBench(out io.Writer) error {
	rep := engineBenchReport{
		Benchmark:  "engine",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline: "pre-rewrite polling kernel (PR 1 tree): linear pending-list writeback, " +
			"per-cycle IQ source re-poll, per-load store-ring walk; measured with " +
			"`go test -bench BenchmarkEngine ./internal/ooo` on the same machine",
		Notes: "ns_per_cycle is wall time per simulated clock. idle_scaling must stay " +
			"~flat across inflight counts for an event-driven kernel; the polling " +
			"baseline grew linearly (29.6 -> 166.0).",
	}

	for _, name := range []string{"dense-chain", "wide-independent", "loadstore-heavy", "idle-in-flight"} {
		prog, addrs, mem := engineProg(name)
		ns, cycles := engineMeasure(prog, addrs, mem)
		rep.Scenarios = append(rep.Scenarios, engineScenario{
			Name:               name,
			CyclesPerRun:       cycles,
			NsPerCycle:         ns,
			BaselineNsPerCycle: prePollingBaseline[name],
			Speedup:            prePollingBaseline[name] / ns,
		})
	}

	for _, n := range []int{8, 32, 128} {
		var prog []isa.Uop
		for i := 0; i < n; i++ {
			prog = append(prog, engineDiv(i))
		}
		ns, _ := engineMeasure(prog, nil, nil)
		name := map[int]string{8: "inflight-8", 32: "inflight-32", 128: "inflight-128"}[n]
		rep.IdleScaling = append(rep.IdleScaling, idleScalingPoint{
			InFlight:           n,
			NsPerCycle:         ns,
			BaselineNsPerCycle: prePollingBaseline[name],
			Speedup:            prePollingBaseline[name] / ns,
		})
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
