// Command parrotbench regenerates the paper's evaluation: every figure of
// §4 and the configuration tables of §3.3. Each figure prints the same
// rows/series the paper reports — per-suite geometric means, the overall
// mean and the three killer applications.
//
// Usage:
//
//	parrotbench                  # all tables and figures
//	parrotbench -fig 4.5         # one figure
//	parrotbench -table 3.2       # one table
//	parrotbench -n 200000        # instructions per application
//	parrotbench -models N,TON    # restrict the model set
//	parrotbench -json            # machine-readable result matrix
//	parrotbench -ablation        # optimizer pass-class ablation (§2.4)
//	parrotbench -sensitivity     # blazing-threshold / trace-cache sweeps
//	parrotbench -splitstudy      # split-core future-work study (§5)
//	parrotbench -quick           # restrict studies to 1 app per suite
//	parrotbench -simbench        # simulation-kernel throughput report (JSON)
//	parrotbench -simbench -procs 2                    # add a GOMAXPROCS=2 matrix pass
//	parrotbench -enginebench     # engine per-cycle micro-benchmark report (JSON)
//	parrotbench -memobench       # memoization record/replay speedup report (JSON)
//	parrotbench -checkbaseline BENCH_simkernel.json   # CI perf-regression gate
//	parrotbench -checkbaseline BENCH_simkernel.json -tolerance 0.05
//	parrotbench -progress        # live done/total + ETA on stderr
//	parrotbench -remote URL      # serve the matrix from a parrotd instance
//	parrotbench -cpuprofile f    # write a CPU profile (any mode)
//	parrotbench -memprofile f    # write a heap profile on exit (any mode)
//
// With -remote the model × application matrix is served by parrotd —
// cached cells return in microseconds, so a warm daemon regenerates every
// figure near-instantly. The reassembled matrix is bit-identical to an
// in-process run (same canonical digest); when the server is unreachable
// the command warns and falls back to local simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parrot"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/profiling"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/workload"
)

// remoteMatrix runs the experiment matrix through a parrotd instance and
// reassembles an experiments.Results bit-identical to parrot.Experiments.
// A reachability failure returns (nil, nil): the caller falls back to the
// in-process matrix with a warning.
func remoteMatrix(server string, cfg parrot.ExperimentConfig) (*parrot.ExperimentResults, error) {
	c := client.New(server)
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "parrotbench: warning: %s unreachable (%v); falling back to local simulation\n", server, err)
		return nil, nil
	}

	req := proto.MatrixRequest{Insts: cfg.Insts}
	for _, m := range cfg.Models {
		req.Models = append(req.Models, string(m.ID))
	}
	var onProgress func(proto.Progress)
	if cfg.Progress != nil {
		onProgress = func(p proto.Progress) {
			cfg.Progress(p.Done, p.Total,
				time.Duration(p.ElapsedUs)*time.Microsecond,
				time.Duration(p.EtaUs)*time.Microsecond)
		}
	}
	resp, err := c.Matrix(ctx, req, onProgress)
	if err != nil {
		return nil, err
	}
	if resp.FailedCells > 0 {
		return nil, fmt.Errorf("parrotbench: matrix partial: %d of %d cells failed (overloaded server?)", resp.FailedCells, resp.TotalCells)
	}
	fmt.Fprintf(os.Stderr, "parrotbench: matrix served by %s (%d/%d cells cached, %v)\n",
		server, resp.CachedCells, resp.TotalCells,
		(time.Duration(resp.ElapsedUs) * time.Microsecond).Round(time.Millisecond))

	cells := make(map[string]*core.Result, len(resp.Cells))
	for _, cell := range resp.Cells {
		cells[cell.Model+"\x00"+cell.App] = cell.Result
	}
	models := cfg.Models
	if models == nil {
		models = config.All()
	}
	res := experiments.Assemble(models, cfg.Apps, cfg.Insts,
		func(m config.Model, p workload.Profile) *core.Result {
			return cells[string(m.ID)+"\x00"+p.Name]
		})
	if got := res.Digest(); got != resp.Digest {
		return nil, fmt.Errorf("parrotbench: reassembled matrix digest %s differs from server digest %s", got, resp.Digest)
	}
	return res, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "", "figure to regenerate (4.1 ... 4.11); empty = all")
	table := flag.String("table", "", "table to regenerate (3.1 or 3.2)")
	n := flag.Int("n", 100_000, "dynamic instructions per application")
	models := flag.String("models", "", "comma-separated model subset (default: all)")
	verbose := flag.Bool("v", false, "print per-application results")
	ablation := flag.Bool("ablation", false, "run the optimizer pass-class ablation instead of the figures")
	sensitivity := flag.Bool("sensitivity", false, "run the blazing-threshold and trace-cache-size sensitivity sweeps")
	splitstudy := flag.Bool("splitstudy", false, "run the split-core future-work study (§5)")
	quick := flag.Bool("quick", false, "restrict studies to one application per suite")
	jsonOut := flag.Bool("json", false, "emit the full result matrix as JSON instead of figures")
	simbench := flag.Bool("simbench", false, "measure simulation-kernel throughput and emit a JSON report")
	procs := flag.Int("procs", 0, "with -simbench: add a matrix pass at GOMAXPROCS=N for multi-core scaling (0 = skip)")
	enginebench := flag.Bool("enginebench", false, "measure engine micro-workloads and emit a JSON report")
	memobench := flag.Bool("memobench", false, "measure hot-window memoization record/replay speedups and emit a JSON report")
	checkBaseline := flag.String("checkbaseline", "", "perf gate: compare a fresh steady matrix pass against this BENCH_simkernel.json")
	tolerance := flag.Float64("tolerance", 0.10, "max fractional sim-MIPS regression tolerated by -checkbaseline")
	maxRegress := flag.Float64("maxregress", 0.10, "deprecated alias of -tolerance")
	progress := flag.Bool("progress", false, "report matrix progress and ETA on stderr")
	remote := flag.String("remote", "", "serve the matrix from a parrotd instance at this base URL (falls back to local when unreachable)")
	prof := profiling.Define()
	flag.Parse()

	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *simbench {
		return runSimBench(*n, *procs, os.Stdout)
	}

	if *checkBaseline != "" {
		// -tolerance is the documented knob; honor -maxregress only when it
		// was set explicitly and -tolerance was not.
		tol := *tolerance
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["maxregress"] && !set["tolerance"] {
			tol = *maxRegress
		}
		return runBaselineCheck(*checkBaseline, *n, tol, os.Stdout)
	}

	if *enginebench {
		return runEngineBench(os.Stdout)
	}

	if *memobench {
		return runMemoBench(*n, os.Stdout)
	}

	if *table != "" {
		switch *table {
		case "3.1":
			fmt.Println(experiments.Table31())
		case "3.2":
			fmt.Println(experiments.Table32())
		default:
			return fmt.Errorf("unknown table %q (3.1 or 3.2)", *table)
		}
		return nil
	}

	var studyApps []workload.Profile
	if *quick {
		for _, name := range []string{"gcc", "swim", "word", "flash", "dotnet-num1"} {
			p, _ := workload.ByName(name)
			studyApps = append(studyApps, p)
		}
	}
	if *ablation {
		fmt.Println(experiments.Ablation(studyApps, *n))
		return nil
	}
	if *sensitivity {
		fmt.Println(experiments.BlazingSensitivity(studyApps, *n, nil))
		fmt.Println(experiments.TCSizeSensitivity(studyApps, *n, nil))
		return nil
	}
	if *splitstudy {
		fmt.Println(experiments.SplitCoreStudy(studyApps, *n))
		return nil
	}

	cfg := parrot.ExperimentConfig{Insts: *n}
	if *progress {
		cfg.Progress = func(done, total int, elapsed, eta time.Duration) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells  elapsed %v  eta %v   ",
				done, total, elapsed.Round(time.Second), eta.Round(time.Second))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *models != "" {
		var ms []config.Model
		for _, id := range strings.Split(*models, ",") {
			m, err := parrot.GetModel(parrot.ModelID(strings.TrimSpace(id)))
			if err != nil {
				return err
			}
			ms = append(ms, m)
		}
		cfg.Models = ms
	}

	start := time.Now()
	var res *parrot.ExperimentResults
	if *remote != "" {
		var err error
		res, err = remoteMatrix(*remote, cfg)
		if err != nil {
			return err
		}
	}
	if res == nil { // no -remote, or graceful fallback
		res = parrot.Experiments(cfg)
	}
	if *jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	fmt.Printf("simulated %d applications × %d models in %v  (P_MAX anchor: %s)\n\n",
		len(res.Apps()), len(res.Models()), time.Since(start).Round(time.Millisecond), res.PMaxApp)

	if *verbose {
		for _, id := range res.Models() {
			for _, p := range res.Apps() {
				r := res.Get(id, p.Name)
				fmt.Printf("  %-4s %-14s IPC=%.3f energy=%.4g coverage=%.2f\n",
					id, p.Name, r.IPC(), r.TotalEnergy(res.PMax), r.Coverage())
			}
		}
		fmt.Println()
	}

	if *fig == "" {
		fmt.Println(experiments.Table31())
		fmt.Println(experiments.Table32())
		for _, f := range res.AllFigures() {
			fmt.Println(f.Table)
		}
		return nil
	}
	for _, f := range res.AllFigures() {
		if strings.HasSuffix(f.ID, *fig) {
			fmt.Println(f.Table)
			return nil
		}
	}
	return fmt.Errorf("unknown figure %q", *fig)
}
