package main

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"parrot"
	"parrot/internal/config"
	"parrot/internal/core"
)

// memoBenchReport measures the hot-window memoization fast path across
// instruction-count scales on one (model, application) pair:
//
//   - exact:  the cycle engine with memoization disabled;
//   - record: the first memoized run (simulates exactly, records windows);
//   - replay: subsequent memoized runs of the same spec (O(windows) delta
//     folding instead of O(insts) simulation).
//
// Replay cost is independent of the instruction count while exact cost is
// linear in it, so Speedup grows with -n — the scaling curve EXPERIMENTS.md
// records. Every point also cross-checks that the replayed Result is
// structurally identical to the exact one; a mismatch fails the run.
//
//	go run ./cmd/parrotbench -memobench -n 30000
type memoBenchReport struct {
	Benchmark string           `json:"benchmark"`
	Date      string           `json:"date"`
	GoVersion string           `json:"go"`
	Model     string           `json:"model"`
	App       string           `json:"app"`
	Points    []memoBenchPoint `json:"points"`
}

type memoBenchPoint struct {
	Insts          int     `json:"insts"`
	ExactSeconds   float64 `json:"exact_seconds"`
	RecordSeconds  float64 `json:"record_seconds"`
	ReplaySeconds  float64 `json:"replay_seconds"`
	ExactSimMIPS   float64 `json:"exact_sim_mips"`
	ReplaySimMIPS  float64 `json:"replay_sim_mips"`
	Speedup        float64 `json:"speedup"`         // exact / replay wall time
	RecordOverhead float64 `json:"record_overhead"` // record/exact - 1
	Windows        int     `json:"windows"`         // windows in the replayed chain
	Verified       bool    `json:"verified"`        // replay Result == exact Result
}

// runMemoBench measures record/replay against the exact engine at n, 2n and
// 4n instructions and writes the JSON report.
func runMemoBench(n int, out io.Writer) error {
	pm, err := parrot.GetModel(parrot.TON)
	if err != nil {
		return err
	}
	app, err := parrot.AppByName("flash")
	if err != nil {
		return err
	}
	model := config.Model(pm)

	rep := memoBenchReport{
		Benchmark: "memobench",
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Model:     string(parrot.TON),
		App:       "flash",
	}

	for _, insts := range []int{n, 2 * n, 4 * n} {
		// Exact engine: best of two passes on a held memo-off machine (the
		// first pass also pays program synthesis for this stream length).
		exact := core.New(model)
		exact.EnableMemo(false)
		var exactSec float64
		var exactRes *core.Result
		for i := 0; i < 2; i++ {
			exact.Reset()
			start := time.Now()
			exactRes = core.RunWarmOn(exact, app, insts)
			if s := time.Since(start).Seconds(); i == 0 || s < exactSec {
				exactSec = s
			}
		}

		// Memoized machine: first run records, later runs replay.
		memo := core.New(model)
		start := time.Now()
		recordRes := core.RunWarmOn(memo, app, insts)
		recordSec := time.Since(start).Seconds()

		var replaySec float64
		var replayRes *core.Result
		for i := 0; i < 3; i++ {
			memo.Reset()
			start = time.Now()
			replayRes = core.RunWarmOn(memo, app, insts)
			if s := time.Since(start).Seconds(); i == 0 || s < replaySec {
				replaySec = s
			}
		}

		ms := memo.MemoStats()
		verified := reflect.DeepEqual(exactRes, replayRes) &&
			reflect.DeepEqual(recordRes, replayRes)
		if ms.RunsReplayed == 0 && !core.MemoDisabledByEnv() {
			return fmt.Errorf("memobench: no replay occurred at %d insts (stats %+v)", insts, ms)
		}
		if !verified {
			return fmt.Errorf("memobench: replayed result diverges from exact result at %d insts", insts)
		}

		measured := exactRes.Insts
		pt := memoBenchPoint{
			Insts:          insts,
			ExactSeconds:   exactSec,
			RecordSeconds:  recordSec,
			ReplaySeconds:  replaySec,
			ExactSimMIPS:   float64(measured) / exactSec / 1e6,
			ReplaySimMIPS:  float64(measured) / replaySec / 1e6,
			Speedup:        exactSec / replaySec,
			RecordOverhead: recordSec/exactSec - 1,
			Windows:        int(ms.Windows),
			Verified:       verified,
		}
		rep.Points = append(rep.Points, pt)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
