// Command parrotscope is the simulator's observability front-end: it runs
// one (model, application) pair with the full probe suite attached and
// writes the analysis artifacts the probes produce:
//
//	summary.json        machine-readable run summary (same schema as parrotsim -json)
//	timeseries.json     phase-sampled interval time series + occupancy histograms
//	timeseries.csv      the same intervals, one row each, for spreadsheets
//	pipeline.kanata     per-uop pipeline lifecycle (Konata / Kanata 0004 viewer)
//	pipeline.trace.json per-uop pipeline lifecycle (chrome://tracing, Perfetto)
//	traces.json         per-trace biographies: promotions, optimizer savings,
//	                    aborts, executions, trace-cache residency
//
// Usage:
//
//	parrotscope -model TON -app swim -n 200000 -out scope-out
//	parrotscope -model TOS -app flash -interval 500 -uops 20000 -maxtraces 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parrot"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "TON", "machine model: N, TN, TON, W, TW, TOW, TOS")
	app := flag.String("app", "swim", "benchmark application name")
	n := flag.Int("n", 0, "dynamic instructions (0 = profile default)")
	out := flag.String("out", "scope-out", "output directory for artifacts")
	interval := flag.Int("interval", 0, "time-series interval in committed instructions (0 = default 1000)")
	uops := flag.Int("uops", 0, "max per-uop lifecycle records per lane (0 = default 50000)")
	busCap := flag.Int("events", 0, "max probe-bus events (0 = default 1<<20)")
	maxTraces := flag.Int("maxtraces", 200, "max trace biographies exported (0 = all)")
	flag.Parse()

	m, err := parrot.GetModel(parrot.ModelID(*model))
	if err != nil {
		return err
	}
	prof, err := parrot.AppByName(*app)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	// One caller-managed machine with a fresh recorder attached, run under
	// the standard warmup protocol. The recorder observes the whole run;
	// warmup intervals are flagged in the series.
	machine := core.New(config.Model(m))
	rec := obs.NewRecorder(obs.Options{
		IntervalInsts: *interval,
		MaxPipeUops:   *uops,
		MaxBusEvents:  *busCap,
	})
	machine.Attach(rec)
	res := core.RunWarmOn(machine, prof, *n)

	write := func(name string, f func(*os.File) error) error {
		path := filepath.Join(*out, name)
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(file); err != nil {
			file.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return file.Close()
	}

	steps := []struct {
		name string
		f    func(*os.File) error
	}{
		{"summary.json", func(f *os.File) error {
			s := experiments.Summarize(res, res.AvgDynPower())
			// Surface the memoization fast path instead of hiding it: the
			// probed run recorded windows (and would have bypassed a replay
			// had a chain existed), and those counters belong in the summary.
			ms := machine.MemoStats()
			s.Memo = &ms
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(s)
		}},
		{"timeseries.json", func(f *os.File) error { return rec.WriteSeriesJSON(f) }},
		{"timeseries.csv", func(f *os.File) error { return rec.WriteSeriesCSV(f) }},
		{"pipeline.kanata", func(f *os.File) error { return rec.WriteKanata(f) }},
		{"pipeline.trace.json", func(f *os.File) error { return rec.WriteChromeTrace(f) }},
		{"traces.json", func(f *os.File) error { return rec.WriteBiographies(f, *maxTraces) }},
	}
	for _, s := range steps {
		if err := write(s.name, s.f); err != nil {
			return err
		}
	}

	fmt.Printf("model %s on %s: %d insts, %d cycles, IPC %.3f, coverage %.3f\n",
		res.Model, res.App, res.Insts, res.Cycles, res.IPC(), res.Coverage())
	fmt.Printf("probes: %d bus events (%d dropped), %d+%d uop lifecycles (overflow %d+%d), %d traces, %d intervals\n",
		rec.Bus.Len(), rec.Bus.Dropped,
		rec.Lanes[0].Len(), rec.Lanes[1].Len(),
		rec.Lanes[0].Overflow, rec.Lanes[1].Overflow,
		rec.BioCount(), len(rec.Series.Intervals))
	fmt.Printf("artifacts written to %s: summary.json timeseries.{json,csv} pipeline.{kanata,trace.json} traces.json\n", *out)
	return nil
}
