// Command tracegen synthesizes an application's dynamic instruction stream
// and either dumps it as text or prints distribution statistics — useful
// for inspecting the workload substrate that stands in for the paper's
// proprietary IA32 traces.
//
// Usage:
//
//	tracegen -app gcc -n 2000 -dump
//	tracegen -app swim -n 100000
//	tracegen -app swim -n 200000 -o swim.ptrace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"parrot"
	"parrot/internal/isa"
	"parrot/internal/tracefile"
	"parrot/internal/workload"
)

func main() {
	app := flag.String("app", "gcc", "application name")
	n := flag.Int("n", 100_000, "instructions to generate")
	dump := flag.Bool("dump", false, "dump the stream as text instead of statistics")
	out := flag.String("o", "", "write a binary trace file to this path")
	flag.Parse()

	prof, err := parrot.AppByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracefile.Capture(f, prof, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %d instructions of %s to %s (%d bytes)\n", *n, prof.Name, *out, st.Size())
		return
	}

	prog := workload.Generate(prof)
	stream := workload.NewStream(prog, *n)

	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for {
			d, ok := stream.Next()
			if !ok {
				return
			}
			flags := ""
			if d.Taken {
				flags += " T"
			}
			if d.EpisodeEnd {
				flags += " END"
			}
			if d.MemAddr != 0 {
				flags += fmt.Sprintf(" mem=%#x", d.MemAddr)
			}
			fmt.Fprintf(w, "%s%s\n", d.Inst, flags)
		}
	}

	var insts, uops, branches, taken, mem, complexInsts uint64
	kindCount := map[isa.InstKind]uint64{}
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		insts++
		uops += uint64(len(d.Inst.Uops))
		kindCount[d.Inst.Kind]++
		if d.Inst.Kind == isa.KindBranch {
			branches++
			if d.Taken {
				taken++
			}
		}
		if d.Inst.IsComplex() {
			complexInsts++
		}
		if d.MemAddr != 0 {
			mem++
		}
	}
	fmt.Printf("application %s (%s), %d instructions\n\n", prof.Name, prof.Suite, insts)
	fmt.Printf("  static instructions     %8d\n", prog.StaticInsts())
	fmt.Printf("  hot loops               %8d\n", len(prog.Loops))
	fmt.Printf("  uops per instruction    %8.3f\n", float64(uops)/float64(insts))
	fmt.Printf("  conditional branches    %8.3f per inst (taken %.2f)\n",
		float64(branches)/float64(insts), float64(taken)/float64(branches))
	fmt.Printf("  memory instructions     %8.3f per inst\n", float64(mem)/float64(insts))
	fmt.Printf("  complex (3+ uop) insts  %8.3f per inst\n", float64(complexInsts)/float64(insts))
	fmt.Printf("  observed hot fraction   %8.3f (profile %.3f)\n",
		stream.HotFractionObserved(), prof.HotFraction)
	fmt.Println("\n  instruction kinds:")
	for k := isa.InstKind(0); k < isa.NumInstKinds; k++ {
		if kindCount[k] == 0 {
			continue
		}
		fmt.Printf("    %-8s %6.2f%%\n", k, 100*float64(kindCount[k])/float64(insts))
	}
}
