module parrot

go 1.22
