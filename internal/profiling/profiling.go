// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into the command-line tools, so kernel regressions can be diagnosed with
// `go tool pprof` against the shipped binaries:
//
//	parrotbench -n 200000 -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// The heap profile is written at Stop after a final GC, so it reflects
// retained memory (machine pool, program cache), not transient garbage.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling flag values; define with Define before
// flag.Parse, then bracket main's work with Start and Stop.
type Flags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

// Define registers -cpuprofile and -memprofile on the default FlagSet.
func Define() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag.Parse.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	out, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(out); err != nil {
		out.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	f.cpuFile = out
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, when
// requested. Safe to call unconditionally (and via defer).
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *f.mem != "" {
		out, err := os.Create(*f.mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer out.Close()
		runtime.GC() // materialize retained-set accuracy
		if err := pprof.WriteHeapProfile(out); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
