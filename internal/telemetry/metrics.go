// Package telemetry is the serving layer's service-grade instrumentation:
// a zero-dependency metrics registry rendered in Prometheus text exposition
// format, and request-scoped tracing with Chrome-trace-event export.
//
// It is deliberately separate from internal/metrics (simulation-domain
// statistics: occupancy histograms, geomeans) and internal/obs (per-run
// probe observability inside the simulator). telemetry instruments the
// *service* around the simulator — request rates, queue waits, cache
// traffic — with the operational conventions that entails: atomic hot
// paths so instruments can sit on request paths without locks, float64
// samples, cumulative histogram buckets, and a stable scrapeable text
// rendering.
//
// Instruments are nil-safe: methods on a nil *Counter/*Gauge/*Histogram
// are no-ops, so components accept an optional registry and skip all
// telemetry plumbing when none is configured (tests, library use).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing float64 (atomic CAS hot path).
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64 (atomic store hot path).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// shape: Observe(v) lands in the first bucket whose upper bound is >= v,
// the +Inf bucket counts everything, and _sum/_count accompany the
// buckets at exposition. The hot path is one atomic add per observation
// plus one CAS for the sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket, and the total count.
func (h *Histogram) snapshot() (cum []uint64, total uint64) {
	cum = make([]uint64, len(h.bounds)+1)
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run
}

// Quantile estimates the q-quantile (0..1) by linear interpolation inside
// the containing bucket — the usual Prometheus-side estimation, provided
// here so CLIs can render p50/p99 from a scrape without a query engine.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, total := h.snapshot()
	return quantileFromBuckets(h.bounds, cum, total, q)
}

// quantileFromBuckets interpolates a quantile from cumulative bucket
// counts (the last entry of cum is the +Inf bucket).
func quantileFromBuckets(bounds []float64, cum []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) >= rank {
			if i >= len(bounds) { // +Inf bucket: clamp to the last finite bound
				return bounds[len(bounds)-1]
			}
			lo, loCount := 0.0, uint64(0)
			if i > 0 {
				lo, loCount = bounds[i-1], cum[i-1]
			}
			width := float64(c - loCount)
			if width == 0 {
				return bounds[i]
			}
			return lo + (bounds[i]-lo)*(rank-float64(loCount))/width
		}
	}
	return bounds[len(bounds)-1]
}

// DefBuckets is the default latency bucket layout in seconds: 100µs to
// 10s, roughly ×2.5 per step — wide enough to cover a cache hit (~100µs)
// and a cold 10M-instruction simulation in the same instrument.
func DefBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// metric types in the exposition.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a family.
type series struct {
	labels string // canonical rendered label set, "" for unlabeled
	inst   any    // *Counter | *Gauge | *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// CollectFunc feeds scrape-time samples into an exposition pass. A
// collector runs exactly once per scrape, so a component can snapshot its
// whole stats struct under one lock and emit every derived series from
// that single coherent view — the "never torn" discipline /metricsz
// promises.
type CollectFunc func(emit Emit)

// Emit adds one scrape-time sample. typ is "counter" or "gauge"; labels
// are alternating key/value pairs.
type Emit func(name, typ, help string, value float64, labels ...string)

// Registry holds instrument families and renders them as Prometheus text
// exposition. Registration is idempotent: asking for an existing
// (name, labels) pair returns the prior instrument. Conflicting
// re-registration (same name, different type) panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	collectors []CollectFunc
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter under name and labels, creating it on first
// use. Labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.instrument(name, help, typeCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge under name and labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.instrument(name, help, typeGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram under name and labels, creating it with
// the given ascending upper bounds on first use (nil bounds = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	mk := func() any {
		b := bounds
		if len(b) == 0 {
			b = DefBuckets()
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic("telemetry: histogram bounds must be strictly ascending")
			}
		}
		h := &Histogram{bounds: append([]float64(nil), b...)}
		h.counts = make([]atomic.Uint64, len(b)+1)
		return h
	}
	return r.instrument(name, help, typeHistogram, labels, mk).(*Histogram)
}

// RegisterCollector adds a scrape-time sample source.
func (r *Registry) RegisterCollector(fn CollectFunc) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) instrument(name, help, typ string, labels []string, mk func() any) any {
	sig := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	if s, ok := f.byLabels[sig]; ok {
		return s.inst
	}
	s := &series{labels: sig, inst: mk()}
	f.byLabels[sig] = s
	f.series = append(f.series, s)
	return s.inst
}

// renderLabels canonicalizes alternating key/value pairs into the
// exposition label block: keys sorted, values escaped. "" when empty.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: labels must be alternating key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLE appends an le label to a rendered label block.
func withLE(labels string, le float64) string {
	bound := formatValue(le)
	if labels == "" {
		return `{le="` + bound + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + bound + `"}`
}

// sampleLine is one rendered exposition line (without the metric name
// prefix decisions — name + suffix + labels + value).
type sampleLine struct {
	name   string // full series name (family name + optional suffix)
	labels string
	value  float64
}

// famOut is a render-ready family.
type famOut struct {
	name, help, typ string
	lines           []sampleLine
}

// gather produces the fully sorted render plan: instrument families plus
// collector samples, families sorted by name, series within a family
// sorted by label signature (histogram bucket lines keep ascending-le
// order inside their series).
func (r *Registry) gather() []famOut {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	collectors := append([]CollectFunc(nil), r.collectors...)
	r.mu.Unlock()

	byName := make(map[string]*famOut)
	add := func(name, help, typ string) *famOut {
		fo, ok := byName[name]
		if !ok {
			fo = &famOut{name: name, help: help, typ: typ}
			byName[name] = fo
		}
		return fo
	}

	for _, f := range fams {
		fo := add(f.name, f.help, f.typ)
		// Stable series order independent of registration order.
		ser := append([]*series(nil), f.series...)
		sort.Slice(ser, func(i, j int) bool { return ser[i].labels < ser[j].labels })
		for _, s := range ser {
			switch inst := s.inst.(type) {
			case *Counter:
				fo.lines = append(fo.lines, sampleLine{f.name, s.labels, inst.Value()})
			case *Gauge:
				fo.lines = append(fo.lines, sampleLine{f.name, s.labels, inst.Value()})
			case *Histogram:
				cum, total := inst.snapshot()
				for i, b := range inst.bounds {
					fo.lines = append(fo.lines, sampleLine{f.name + "_bucket", withLE(s.labels, b), float64(cum[i])})
				}
				fo.lines = append(fo.lines, sampleLine{f.name + "_bucket", withLE(s.labels, math.Inf(1)), float64(total)})
				fo.lines = append(fo.lines, sampleLine{f.name + "_sum", s.labels, inst.Sum()})
				fo.lines = append(fo.lines, sampleLine{f.name + "_count", s.labels, float64(total)})
			}
		}
	}

	for _, fn := range collectors {
		fn(func(name, typ, help string, value float64, labels ...string) {
			fo := add(name, help, typ)
			fo.lines = append(fo.lines, sampleLine{name, renderLabels(labels), value})
		})
	}

	out := make([]famOut, 0, len(byName))
	for _, fo := range byName {
		out = append(out, *fo)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders the registry (instruments plus collectors) in
// Prometheus text exposition format 0.0.4: families sorted by name, each
// preceded by its HELP/TYPE lines, series sorted by canonical label
// signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.gather() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, l := range f.lines {
			b.WriteString(l.name)
			b.WriteString(l.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(l.value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Flat returns every rendered series as a name{labels} → value map — the
// payload of the live stats stream and the input to CLI table renderers.
func (r *Registry) Flat() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, f := range r.gather() {
		for _, l := range f.lines {
			out[l.name+l.labels] = l.value
		}
	}
	return out
}
