package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// Request-scoped tracing
// ---------------------------------------------------------------------------
//
// A Trace is minted per HTTP request at the parrotd boundary (or adopted
// from X-Parrot-Request-Id) and flows via context.Context through the
// scheduler, the result cache and the worker that runs the simulation.
// Every layer appends completed spans; the api layer deposits finished
// traces into a ring-buffered TraceStore, exportable as Chrome
// trace-event JSON from GET /v1/trace/{requestID}.
//
// All of it is nil-safe: StartSpan on a nil *Trace returns a nil
// *ActiveSpan whose methods no-op, so library code traces unconditionally
// and pays one nil check when tracing is off.

// Display rows (Chrome trace "tid") for the goroutine roles of one
// request. Requester, worker and cluster spans interleave in time but
// never nest across rows, so the viewer shows them as separate lanes.
const (
	TIDRequest = 1 // HTTP handler / submitting goroutine
	TIDWorker  = 2 // scheduler worker executing the simulation
	TIDCluster = 3 // cluster routing: forwards, remote cells, rescues
)

// Attr is one span attribute.
type Attr struct {
	K, V string
}

// A builds an attribute.
func A(k, v string) Attr { return Attr{k, v} }

// Span is one completed, immutable span record.
type Span struct {
	Name    string            `json:"name"`
	TID     int               `json:"tid"`
	StartUs int64             `json:"startUs"` // µs since trace start
	DurUs   int64             `json:"durUs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// End returns the span's end offset in µs since trace start.
func (s Span) End() int64 { return s.StartUs + s.DurUs }

// maxSpans bounds one trace's span count: a 44×7 matrix request emits a
// handful of spans per cell, which fits; a runaway loop cannot grow a
// trace without bound. Drops are counted and surfaced in the export.
const maxSpans = 8192

// Trace collects the spans of one request. Safe for concurrent use —
// requester and worker goroutines append to the same trace.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTrace starts an empty trace under the given request ID.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the request ID (empty for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// ActiveSpan is an open span; End completes and records it.
type ActiveSpan struct {
	t     *Trace
	name  string
	tid   int
	start time.Time
	attrs []Attr
}

// StartSpan opens a span on the requester row.
func (t *Trace) StartSpan(name string, attrs ...Attr) *ActiveSpan {
	return t.StartSpanTID(TIDRequest, name, attrs...)
}

// StartSpanTID opens a span on an explicit display row.
func (t *Trace) StartSpanTID(tid int, name string, attrs ...Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, tid: tid, start: time.Now(), attrs: attrs}
}

// SetAttr attaches an attribute to an open span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{k, v})
}

// End completes the span and records it on the trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.AddSpan(s.name, s.tid, s.start, time.Now(), s.attrs...)
}

// AddSpan records a completed span with explicit timestamps — the form
// the scheduler uses for spans whose start (enqueue) and end (pop) are
// observed on different goroutines.
func (t *Trace) AddSpan(name string, tid int, start, end time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	// Both endpoints truncate against the same origin before the duration
	// is derived: two spans sharing a boundary time.Time then tile exactly
	// (a.End() == b.StartUs) — truncating start and duration independently
	// would let rounding open 1µs seams.
	startUs := start.Sub(t.start).Microseconds()
	sp := Span{
		Name:    name,
		TID:     tid,
		StartUs: startUs,
		DurUs:   end.Sub(t.start).Microseconds() - startUs,
	}
	if len(attrs) > 0 {
		sp.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			sp.Attrs[a.K] = a.V
		}
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans, ordered by start offset
// (stable on recording order within a start time).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUs < out[j].StartUs })
	return out
}

// Dropped returns how many spans were discarded at the maxSpans bound.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ---------------------------------------------------------------------------
// Context plumbing
// ---------------------------------------------------------------------------

type traceKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// NewRequestID mints a 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// fallback keeps telemetry non-fatal by construction.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ---------------------------------------------------------------------------
// Trace store
// ---------------------------------------------------------------------------

// TraceStore ring-buffers the last N finished traces by request ID.
type TraceStore struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ring []string // request IDs in insertion order, oldest first
}

// NewTraceStore builds a store holding up to n traces (n<=0 = 256).
func NewTraceStore(n int) *TraceStore {
	if n <= 0 {
		n = 256
	}
	return &TraceStore{cap: n, byID: make(map[string]*Trace)}
}

// Put deposits a finished trace, evicting the oldest when full. A re-used
// request ID replaces the prior trace without growing the ring.
func (s *TraceStore) Put(t *Trace) {
	if s == nil || t == nil || t.id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[t.id]; ok {
		s.byID[t.id] = t
		return
	}
	if len(s.ring) >= s.cap {
		old := s.ring[0]
		s.ring = s.ring[1:]
		delete(s.byID, old)
	}
	s.ring = append(s.ring, t.id)
	s.byID[t.id] = t
}

// Get returns the trace under a request ID.
func (s *TraceStore) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	return t, ok
}

// Cap returns the ring capacity.
func (s *TraceStore) Cap() int {
	if s == nil {
		return 0
	}
	return s.cap
}

// Len returns the number of resident traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

// chromeEvent mirrors the Chrome trace-event "X" (complete) record; ts
// and dur are microseconds, which is exactly the span encoding.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the trace as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto): one "X" event per span, requester and
// worker spans on separate rows, attributes as args. The same export
// conventions internal/obs uses for pipeline visualization.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	doc := chromeDoc{
		DisplayTimeUnit: "ms",
		TraceEvents:     []chromeEvent{},
		OtherData: map[string]any{
			"requestId": t.ID(),
		},
	}
	if d := t.Dropped(); d > 0 {
		doc.OtherData["droppedSpans"] = d
	}
	for _, sp := range t.Spans() {
		var args map[string]any
		if len(sp.Attrs) > 0 {
			args = make(map[string]any, len(sp.Attrs))
			for k, v := range sp.Attrs {
				args[k] = v
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name, Cat: "request", Ph: "X",
			Ts: sp.StartUs, Dur: sp.DurUs,
			Pid: 1, Tid: sp.TID, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// SpansDoc is the raw-span export schema of /v1/trace/{id}?format=spans.
type SpansDoc struct {
	RequestID string `json:"requestId"`
	Dropped   int    `json:"droppedSpans,omitempty"`
	Spans     []Span `json:"spans"`
}

// WriteSpansJSON exports the trace as its raw span records — the form the
// round-trip tests and CLI span assertions consume.
func (t *Trace) WriteSpansJSON(w io.Writer) error {
	doc := SpansDoc{RequestID: t.ID(), Dropped: t.Dropped(), Spans: t.Spans()}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
