package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestTraceSpansRecordAndOrder(t *testing.T) {
	tr := NewTrace("req1")
	base := tr.Start()

	// Explicit-timestamp spans tiling a queue→checkout→run sequence.
	tr.AddSpan("sched.queued", TIDWorker, base, base.Add(10*time.Millisecond))
	tr.AddSpan("machine.checkout", TIDWorker, base.Add(10*time.Millisecond), base.Add(12*time.Millisecond))
	tr.AddSpan("sim.run", TIDWorker, base.Add(12*time.Millisecond), base.Add(50*time.Millisecond),
		A("model", "TON"), A("app", "gzip"))
	tr.AddSpan("http.request", TIDRequest, base, base.Add(51*time.Millisecond), A("route", "run"))

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	// Sorted by start offset; root starts at 0.
	if spans[0].StartUs != 0 {
		t.Fatalf("first span starts at %dµs", spans[0].StartUs)
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["http.request"]
	for _, name := range []string{"sched.queued", "machine.checkout", "sim.run"} {
		s := byName[name]
		if s.StartUs < root.StartUs || s.End() > root.End() {
			t.Fatalf("%s [%d,%d] not nested in root [%d,%d]", name, s.StartUs, s.End(), root.StartUs, root.End())
		}
	}
	// Tiling: queued ends where checkout starts, checkout ends where run starts.
	if byName["sched.queued"].End() != byName["machine.checkout"].StartUs {
		t.Fatal("queued does not tile into checkout")
	}
	if byName["machine.checkout"].End() != byName["sim.run"].StartUs {
		t.Fatal("checkout does not tile into run")
	}
	if byName["sim.run"].Attrs["model"] != "TON" || byName["sim.run"].Attrs["app"] != "gzip" {
		t.Fatalf("sim.run attrs = %v", byName["sim.run"].Attrs)
	}
}

func TestActiveSpanAndContext(t *testing.T) {
	tr := NewTrace("req2")
	ctx := WithTrace(context.Background(), tr)
	got := TraceFrom(ctx)
	if got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	sp := got.StartSpan("cache.get", A("digest", "abc"))
	sp.SetAttr("outcome", "miss")
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "cache.get" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Attrs["digest"] != "abc" || spans[0].Attrs["outcome"] != "miss" {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context returned a trace")
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.SetAttr("k", "v")
	sp.End()
	tr.AddSpan("y", TIDRequest, time.Now(), time.Now())
	if tr.Spans() != nil || tr.ID() != "" || tr.Dropped() != 0 {
		t.Fatal("nil trace not inert")
	}
	var st *TraceStore
	st.Put(tr)
	if _, ok := st.Get("x"); ok || st.Len() != 0 {
		t.Fatal("nil store not inert")
	}
}

func TestTraceStoreRing(t *testing.T) {
	st := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		st.Put(NewTrace(fmt.Sprintf("r%d", i)))
	}
	if st.Len() != 3 {
		t.Fatalf("len = %d, want 3", st.Len())
	}
	for _, id := range []string{"r0", "r1"} {
		if _, ok := st.Get(id); ok {
			t.Fatalf("%s not evicted", id)
		}
	}
	for _, id := range []string{"r2", "r3", "r4"} {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("%s missing", id)
		}
	}
	// Re-using an ID replaces without eviction.
	st.Put(NewTrace("r4"))
	if st.Len() != 3 {
		t.Fatalf("len after replace = %d, want 3", st.Len())
	}
}

// TestChromeTraceExportParses pins the Chrome trace-event export: valid
// JSON, "X" complete events with µs ts/dur, span attrs as args.
func TestChromeTraceExportParses(t *testing.T) {
	tr := NewTrace("reqX")
	base := tr.Start()
	tr.AddSpan("http.request", TIDRequest, base, base.Add(2*time.Millisecond), A("route", "run"))
	tr.AddSpan("sim.run", TIDWorker, base.Add(time.Millisecond), base.Add(2*time.Millisecond))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace did not parse: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	if doc.OtherData["requestId"] != "reqX" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "X" || ev.Name != "http.request" || ev.Dur != 2000 || ev.Args["route"] != "run" {
		t.Fatalf("event = %+v", ev)
	}
	if doc.TraceEvents[1].Tid != TIDWorker {
		t.Fatal("worker span lost its display row")
	}

	// Raw-span export round-trips too.
	buf.Reset()
	if err := tr.WriteSpansJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var sd SpansDoc
	if err := json.Unmarshal(buf.Bytes(), &sd); err != nil {
		t.Fatal(err)
	}
	if sd.RequestID != "reqX" || len(sd.Spans) != 2 {
		t.Fatalf("spans doc = %+v", sd)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTrace("cap")
	base := tr.Start()
	for i := 0; i < maxSpans+10; i++ {
		tr.AddSpan("s", TIDRequest, base, base)
	}
	if len(tr.Spans()) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(tr.Spans()), maxSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids = %q, %q", a, b)
	}
}
