package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExpositionGolden pins the exact text rendering: family
// ordering (sorted by name, interleaving instrument and collector
// families), HELP/TYPE lines, label-key sorting, label-value escaping,
// histogram bucket/sum/count shape and +Inf formatting. The exposition is
// a wire format consumed by real scrapers — byte-stable output is the
// contract.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("parrot_requests_total", "Requests by route.", "route", "run").Add(3)
	r.Counter("parrot_requests_total", "Requests by route.", "route", "matrix").Add(1)
	// Registration order of labels must not matter: sorted at render.
	r.Gauge("parrot_queue_depth", "Queue depth.", "class", "interactive", "a", "z").Set(2)
	// Escaping: backslash, quote, newline in a label value.
	r.Counter("parrot_weird_total", "Help with \\ and\nnewline.", "app", "we\"ird\\\nval").Inc()
	h := r.Histogram("parrot_wait_seconds", "Queue wait.", []float64{0.001, 0.01, 0.1}, "class", "batch")
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	r.RegisterCollector(func(emit Emit) {
		emit("parrot_pool_size", "gauge", "Pooled machines.", 7)
		emit("parrot_cache_bytes", "gauge", "Resident cache bytes.", 1024, "level", "mem")
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP parrot_cache_bytes Resident cache bytes.
# TYPE parrot_cache_bytes gauge
parrot_cache_bytes{level="mem"} 1024
# HELP parrot_pool_size Pooled machines.
# TYPE parrot_pool_size gauge
parrot_pool_size 7
# HELP parrot_queue_depth Queue depth.
# TYPE parrot_queue_depth gauge
parrot_queue_depth{a="z",class="interactive"} 2
# HELP parrot_requests_total Requests by route.
# TYPE parrot_requests_total counter
parrot_requests_total{route="matrix"} 1
parrot_requests_total{route="run"} 3
# HELP parrot_wait_seconds Queue wait.
# TYPE parrot_wait_seconds histogram
parrot_wait_seconds_bucket{class="batch",le="0.001"} 1
parrot_wait_seconds_bucket{class="batch",le="0.01"} 2
parrot_wait_seconds_bucket{class="batch",le="0.1"} 2
parrot_wait_seconds_bucket{class="batch",le="+Inf"} 3
parrot_wait_seconds_sum{class="batch"} 5.0055
parrot_wait_seconds_count{class="batch"} 3
# HELP parrot_weird_total Help with \\ and\nnewline.
# TYPE parrot_weird_total counter
parrot_weird_total{app="we\"ird\\\nval"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParsesBack round-trips the rendered exposition through the
// parser every CLI consumer uses.
func TestExpositionParsesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", "k", `v"q\u`).Add(2.5)
	r.Gauge("b", "B.").Set(-1.25)
	h := r.Histogram("lat_seconds", "L.", []float64{0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("rendered exposition did not parse: %v", err)
	}
	if v, ok := exp.Get(`a_total{k="v\"q\\u"}`); !ok || v != 2.5 {
		t.Fatalf("a_total = %v, %v", v, ok)
	}
	if v, ok := exp.Get("b"); !ok || v != -1.25 {
		t.Fatalf("b = %v, %v", v, ok)
	}
	if v, ok := exp.Get(`lat_seconds_bucket{le="+Inf"}`); !ok || v != 100 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	if exp.Types["lat_seconds"] != "histogram" || exp.Types["a_total"] != "counter" {
		t.Fatalf("types = %v", exp.Types)
	}
	if q, ok := exp.HistQuantile("lat_seconds", "", 0.5); !ok || q <= 0.01 || q > 0.1 {
		t.Fatalf("p50 = %v, %v (want in (0.01, 0.1])", q, ok)
	}
	// Flat view matches the parsed scrape for plain series.
	flat := r.Flat()
	if flat["b"] != -1.25 || flat[`lat_seconds_count`] != 100 {
		t.Fatalf("flat = %v", flat)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "X.", "k", "v")
	c2 := r.Counter("x_total", "X.", "k", "v")
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("instrument not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestInstrumentsNilSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments returned non-zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry minted instruments")
	}
	r.RegisterCollector(func(Emit) {})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Flat() != nil {
		t.Fatal("nil registry Flat non-nil")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines under
// the race detector: counts must conserve.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "C.", []float64{1, 2, 4})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w % 5))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var sum float64
	for w := 0; w < workers; w++ {
		sum += float64(w%5) * per
	}
	if math.Abs(h.Sum()-sum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), sum)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "Q.", []float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in the (10,20] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 <= 10 || p50 > 20 {
		t.Fatalf("p50 = %g, want within (10, 20]", p50)
	}
	if got := h.Quantile(1.0); got != 20 {
		t.Fatalf("p100 = %g, want 20 (upper bound of containing bucket)", got)
	}
	// Empty histogram.
	h2 := r.Histogram("q2_seconds", "Q2.", []float64{1})
	if h2.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}
