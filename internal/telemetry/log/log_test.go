package log

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

func newTestLogger(min Level) (*Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	l := New(&buf, min)
	l.s.now = fixedClock
	return l, &buf
}

func TestJSONLines(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	l.Info("request served", F("route", "run"), F("status", 200), F("us", int64(412)))

	line := strings.TrimSuffix(buf.String(), "\n")
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, line)
	}
	if m["level"] != "info" || m["msg"] != "request served" || m["route"] != "run" {
		t.Fatalf("line = %v", m)
	}
	if m["status"] != float64(200) || m["us"] != float64(412) {
		t.Fatalf("numeric fields = %v", m)
	}
	if m["ts"] != "2026-08-08T12:00:00Z" {
		t.Fatalf("ts = %v", m["ts"])
	}
	// Key order is stable: ts, level, msg first.
	if !strings.HasPrefix(line, `{"ts":"2026-08-08T12:00:00Z","level":"info","msg":"request served"`) {
		t.Fatalf("unstable key order: %s", line)
	}
}

func TestLevelsFilter(t *testing.T) {
	l, buf := newTestLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (warn+error): %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"level":"warn"`) || !strings.Contains(lines[1], `"level":"error"`) {
		t.Fatalf("lines = %v", lines)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled() disagrees with filter")
	}
}

func TestWithBindsFields(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	reqLog := l.With(F("reqID", "abc123"), F("component", "sched"))
	reqLog.Info("queued")
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["reqID"] != "abc123" || m["component"] != "sched" {
		t.Fatalf("bound fields missing: %v", m)
	}
	// Call-site fields may not override bound ones (first write wins), and
	// the parent logger is unchanged.
	buf.Reset()
	reqLog.Info("x", F("reqID", "OTHER"))
	if !strings.Contains(buf.String(), `"reqID":"abc123"`) || strings.Contains(buf.String(), "OTHER") {
		t.Fatalf("bound field overridden: %s", buf.String())
	}
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "abc123") {
		t.Fatal("With mutated the parent logger")
	}
}

func TestValueNormalization(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	l.Info("m", F("err", errors.New("boom")), F("took", 1500*time.Millisecond))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["err"] != "boom" || m["took"] != "1.5s" {
		t.Fatalf("normalized fields = %v", m)
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", F("k", "v"))
	l.Warn("w")
	l.Error("e")
	if l.With(F("a", "b")) != nil {
		t.Fatal("With on nil returned non-nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestContextPlumbing(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	ctx := WithContext(context.Background(), l.With(F("reqID", "ctx1")))
	From(ctx).Info("via context")
	if !strings.Contains(buf.String(), `"reqID":"ctx1"`) {
		t.Fatalf("context logger lost fields: %s", buf.String())
	}
	// Absent logger → no-op nil.
	From(context.Background()).Info("dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Fatal("no-op logger wrote")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}
