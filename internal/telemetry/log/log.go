// Package log is the serving layer's structured, leveled JSON logger
// (zero dependencies, stdlib encoding/json only). One line per event:
//
//	{"ts":"2026-08-08T12:00:00.000Z","level":"info","msg":"request served",
//	 "reqID":"a1b2c3d4e5f60708","route":"run","status":200,"us":412}
//
// Loggers are immutable views over a shared sink: With(...) returns a
// child carrying bound fields (the request ID, the component name), so
// every line a request touches carries its ID without threading it
// through call sites — the logger rides the context.
//
// A nil *Logger is a valid no-op logger, so library code logs
// unconditionally and tests pay nothing.
package log

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// Severities, ascending.
const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String returns the canonical lowercase level name.
func (l Level) String() string {
	switch {
	case l < LevelInfo:
		return "debug"
	case l < LevelWarn:
		return "info"
	case l < LevelError:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q", s)
}

// Field is one structured key/value pair.
type Field struct {
	Key string
	Val any
}

// F builds a field.
func F(key string, val any) Field { return Field{key, val} }

// sink serializes writes to the shared destination.
type sink struct {
	mu sync.Mutex
	w  io.Writer
	// now is the clock (stubbed in tests for stable output).
	now func() time.Time
}

// Logger is an immutable leveled JSON logger. The zero value is not
// usable; construct with New. A nil *Logger is a no-op.
type Logger struct {
	s    *sink
	min  Level
	base []Field
}

// New builds a logger writing JSON lines at or above min to w.
func New(w io.Writer, min Level) *Logger {
	return &Logger{s: &sink{w: w, now: time.Now}, min: min}
}

// With returns a child logger with extra bound fields.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	base := make([]Field, 0, len(l.base)+len(fields))
	base = append(base, l.base...)
	base = append(base, fields...)
	return &Logger{s: l.s, min: l.min, base: base}
}

// Enabled reports whether a level would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(lv Level, msg string, fields []Field) {
	if !l.Enabled(lv) {
		return
	}
	// Hand-rolled object encoding keeps key order stable (ts, level, msg,
	// bound fields, call fields) — greppable logs beat map-ordered ones —
	// while every value goes through encoding/json for correctness.
	var b []byte
	b = append(b, `{"ts":`...)
	b = appendJSON(b, l.s.now().UTC().Format(time.RFC3339Nano))
	b = append(b, `,"level":`...)
	b = appendJSON(b, lv.String())
	b = append(b, `,"msg":`...)
	b = appendJSON(b, msg)
	seen := map[string]bool{"ts": true, "level": true, "msg": true}
	emit := func(fs []Field) {
		for _, f := range fs {
			if f.Key == "" || seen[f.Key] {
				continue
			}
			seen[f.Key] = true
			b = append(b, ',')
			b = appendJSON(b, f.Key)
			b = append(b, ':')
			b = appendJSON(b, normalize(f.Val))
		}
	}
	emit(l.base)
	emit(fields)
	b = append(b, '}', '\n')

	l.s.mu.Lock()
	_, _ = l.s.w.Write(b)
	l.s.mu.Unlock()
}

// normalize converts values JSON can't encode (errors, durations) into
// loggable forms.
func normalize(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	}
	return v
}

func appendJSON(b []byte, v any) []byte {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return append(b, enc...)
}

// ---------------------------------------------------------------------------
// Context plumbing
// ---------------------------------------------------------------------------

type loggerKey struct{}

// WithContext attaches a logger to a context.
func WithContext(ctx context.Context, l *Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// From returns the context's logger; a nil (no-op) logger when absent.
func From(ctx context.Context) *Logger {
	l, _ := ctx.Value(loggerKey{}).(*Logger)
	return l
}
