package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exposition is a parsed Prometheus text scrape: series values keyed by
// the canonical name{labels} signature, plus the families seen with their
// declared types. It is the client-side mirror of WritePrometheus — the
// CLI table renderer, the CI assertions and the smoke test all consume a
// scrape through this parser, so "the exposition parses" is a tested
// property, not an assumption.
type Exposition struct {
	// Series maps name{labels} (labels in scrape order) to the sample value.
	Series map[string]float64
	// Types maps family name to the declared TYPE (counter/gauge/histogram).
	Types map[string]string
	// Names lists series keys in scrape order.
	Names []string
}

// ParseExposition parses Prometheus text exposition format 0.0.4 (the
// subset WritePrometheus emits: HELP/TYPE comments and simple samples; no
// timestamps, no exemplars).
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Series: make(map[string]float64),
		Types:  make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		key, val, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("exposition line %d: %w", lineNo, err)
		}
		if _, dup := exp.Series[key]; dup {
			return nil, fmt.Errorf("exposition line %d: duplicate series %s", lineNo, key)
		}
		exp.Series[key] = val
		exp.Names = append(exp.Names, key)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseSampleLine splits `name{labels} value` into its canonical series
// key and float value, validating label-block syntax.
func parseSampleLine(line string) (string, float64, error) {
	var key, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		end := -1
		inQuote, escaped := false, false
		for j := i + 1; j < len(line); j++ {
			c := line[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated label block")
		}
		key, rest = line[:end+1], strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", 0, fmt.Errorf("want `name value`, got %q", line)
		}
		key, rest = fields[0], fields[1]
	}
	v, err := parseFloat(rest)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %w", rest, err)
	}
	return key, v, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// Get returns the series value under the exact name{labels} key.
func (e *Exposition) Get(key string) (float64, bool) {
	v, ok := e.Series[key]
	return v, ok
}

// Family returns every series of one family (matching the bare name or a
// name{...} prefix), in scrape order.
func (e *Exposition) Family(name string) []string {
	var out []string
	for _, k := range e.Names {
		if k == name || strings.HasPrefix(k, name+"{") {
			out = append(out, k)
		}
	}
	return out
}

// HistQuantile estimates quantile q of a scraped histogram family (base
// name without _bucket) whose series carry the given rendered label block
// ("" for unlabeled), using the same bucket interpolation the in-process
// Histogram uses.
func (e *Exposition) HistQuantile(name, labels string, q float64) (float64, bool) {
	type bkt struct {
		le  float64
		cum uint64
	}
	var bkts []bkt
	prefix := name + "_bucket"
	for _, k := range e.Names {
		if !strings.HasPrefix(k, prefix+"{") {
			continue
		}
		lb := k[len(prefix):]
		le, rest, ok := extractLE(lb)
		if !ok || rest != labels {
			continue
		}
		bkts = append(bkts, bkt{le: le, cum: uint64(e.Series[k])})
	}
	if len(bkts) == 0 {
		return 0, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	var bounds []float64
	var cum []uint64
	for _, b := range bkts {
		if b.le == inf() {
			cum = append(cum, b.cum)
			continue
		}
		bounds = append(bounds, b.le)
		cum = append(cum, b.cum)
	}
	total := cum[len(cum)-1]
	return quantileFromBuckets(bounds, cum, total, q), true
}

func inf() float64 { v, _ := strconv.ParseFloat("+inf", 64); return v }

// extractLE removes the le label from a rendered label block, returning
// its value and the block without it (canonical residual ordering).
func extractLE(labels string) (le float64, rest string, ok bool) {
	if !strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}") {
		return 0, "", false
	}
	inner := labels[1 : len(labels)-1]
	parts := splitLabels(inner)
	var kept []string
	found := false
	for _, p := range parts {
		k, v, okp := cutLabel(p)
		if !okp {
			return 0, "", false
		}
		if k == "le" {
			f, err := parseFloat(v)
			if err != nil {
				return 0, "", false
			}
			le, found = f, true
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return 0, "", false
	}
	if len(kept) == 0 {
		return le, "", true
	}
	return le, "{" + strings.Join(kept, ",") + "}", true
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// cutLabel splits one `k="v"` pair, unescaping the value.
func cutLabel(p string) (k, v string, ok bool) {
	i := strings.Index(p, `="`)
	if i < 0 || !strings.HasSuffix(p, `"`) {
		return "", "", false
	}
	k = p[:i]
	raw := p[i+2 : len(p)-1]
	var b strings.Builder
	escaped := false
	for _, c := range raw {
		if escaped {
			switch c {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteRune(c)
			}
			escaped = false
			continue
		}
		if c == '\\' {
			escaped = true
			continue
		}
		b.WriteRune(c)
	}
	return k, b.String(), true
}
