package tracefile

import (
	"bytes"
	"strings"
	"testing"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	p, _ := workload.ByName("gzip")
	var buf bytes.Buffer
	if err := Capture(&buf, p, 5000); err != nil {
		t.Fatal(err)
	}

	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "gzip" || tr.Suite != workload.SpecInt {
		t.Errorf("header = %s/%v", tr.Name, tr.Suite)
	}
	if tr.Remaining() != 5000 {
		t.Fatalf("remaining = %d", tr.Remaining())
	}

	// Replay must be bit-identical to the original stream.
	prog := workload.Generate(p)
	orig := workload.NewStream(prog, 5000)
	n := 0
	for {
		want, ok1 := orig.Next()
		got, ok2 := tr.Next()
		if ok1 != ok2 {
			t.Fatalf("length mismatch at %d", n)
		}
		if !ok1 {
			break
		}
		if got.Taken != want.Taken || got.NextPC != want.NextPC ||
			got.MemAddr != want.MemAddr || got.EpisodeEnd != want.EpisodeEnd {
			t.Fatalf("record %d differs: %+v vs %+v", n, got, want)
		}
		if got.Inst.PC != want.Inst.PC || len(got.Inst.Uops) != len(want.Inst.Uops) {
			t.Fatalf("static inst %d differs", n)
		}
		for k := range want.Inst.Uops {
			if got.Inst.Uops[k] != want.Inst.Uops[k] {
				t.Fatalf("uop %d/%d differs: %v vs %v", n, k, got.Inst.Uops[k], want.Inst.Uops[k])
			}
		}
		n++
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticDeduplication(t *testing.T) {
	p, _ := workload.ByName("swim") // tight loops: heavy static reuse
	var buf bytes.Buffer
	if err := Capture(&buf, p, 8000); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Statics()) >= 8000/4 {
		t.Errorf("static table %d entries for 8000 dynamic — dedup broken", len(tr.Statics()))
	}
}

func TestSimulateFromTraceFileMatchesDirectRun(t *testing.T) {
	p, _ := workload.ByName("flash")
	n := 20000

	var buf bytes.Buffer
	if err := Capture(&buf, p, n); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	m := core.New(config.Get(config.TON))
	fromFile := m.RunSourceWarm(tr, p, int(float64(n)*core.WarmupFraction))
	direct := core.RunWarm(config.Get(config.TON), p, n)

	if fromFile.Cycles != direct.Cycles || fromFile.Insts != direct.Insts {
		t.Errorf("trace-file replay differs: %d/%d vs %d/%d cycles/insts",
			fromFile.Cycles, fromFile.Insts, direct.Cycles, direct.Insts)
	}
	if fromFile.DynEnergy != direct.DynEnergy {
		t.Errorf("energy differs: %v vs %v", fromFile.DynEnergy, direct.DynEnergy)
	}
}

func TestBadInputsRejected(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("PAR"),
		"bad magic":   []byte("NOTATRACEFILE AT ALL........."),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Corrupt the version field of a valid file.
	p, _ := workload.ByName("gzip")
	var buf bytes.Buffer
	if err := Capture(&buf, p, 100); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 0xFF // version LSB
	if _, err := NewReader(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("corrupted version accepted: %v", err)
	}
}

func TestTruncatedDynamicSection(t *testing.T) {
	p, _ := workload.ByName("gzip")
	var buf bytes.Buffer
	if err := Capture(&buf, p, 500); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-10]
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err) // header and statics are intact
	}
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
	}
	if tr.Err() == nil {
		t.Error("truncated stream must surface an error")
	}
}
