package tracefile

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"parrot/internal/workload"
)

// capture returns a valid gzip trace of n records as raw bytes.
func capture(t *testing.T, n int) []byte {
	t.Helper()
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	var buf bytes.Buffer
	if err := Capture(&buf, p, n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// offsets computes section boundaries of a valid trace file by walking the
// same layout the reader parses: fixed header, static table (19 bytes per
// instruction + 19 per uop), u64 dynamic count, then records.
func offsets(t *testing.T, data []byte) (staticStart, dynCountOff, dynStart int) {
	t.Helper()
	nameLen := int(binary.LittleEndian.Uint16(data[12:14]))
	staticStart = 8 + 4 + 2 + nameLen + 1 + 4 // magic, version, name, suite, nStatic
	nStatic := int(binary.LittleEndian.Uint32(data[staticStart-4 : staticStart]))
	off := staticStart
	for i := 0; i < nStatic; i++ {
		nuops := int(data[off+18]) // pc u64, size u8, kind u8, target u64, nuops u8
		off += 19 + 19*nuops       // per uop: 11-byte header + i64 imm
	}
	return staticStart, off, off + 8
}

// TestHeaderAndStaticCorruptionRejected is the reader's fault-injection
// table for damage NewReader itself must catch: every corruption mode must
// produce a parse error, never a silently wrong static table.
func TestHeaderAndStaticCorruptionRejected(t *testing.T) {
	valid := capture(t, 300)
	staticStart, _, _ := offsets(t, valid)

	cases := []struct {
		name    string
		errPart string // substring the error must carry ("" = any error)
		corrupt func(b []byte) []byte
	}{
		{"flipped_magic_byte", "magic", func(b []byte) []byte {
			b[3] ^= 0xFF
			return b
		}},
		{"future_version", "version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], Version+1)
			return b
		}},
		{"truncated_name", "", func(b []byte) []byte {
			return b[:13] // cuts inside the name length/body
		}},
		{"suite_out_of_range", "suite", func(b []byte) []byte {
			nameLen := int(binary.LittleEndian.Uint16(b[12:14]))
			b[14+nameLen] = uint8(workload.NumSuites)
			return b
		}},
		{"truncated_mid_static_table", "static", func(b []byte) []byte {
			return b[:staticStart+5] // cuts inside the first static instruction
		}},
		{"static_kind_out_of_range", "kind", func(b []byte) []byte {
			b[staticStart+9] = 0xFF // kind u8 follows pc u64 + size u8
			return b
		}},
		{"uop_opcode_out_of_range", "opcode", func(b []byte) []byte {
			// First uop header starts after pc(8)+size(1)+kind(1)+target(8)+nuops(1).
			b[staticStart+19] = 0xFF
			return b
		}},
		{"missing_dynamic_count", "", func(b []byte) []byte {
			_, dynCountOff, _ := offsets(t, b)
			return b[:dynCountOff+3] // cuts inside the u64 record count
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), valid...))
			_, err := NewReader(bytes.NewReader(b))
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			if tc.errPart != "" && !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestDynamicCorruptionSurfacedByErr covers damage past the header: the
// reader streams records, so these faults surface through Next returning
// false early and Err() reporting the cause — the contract parrotsim's
// -tracefile path checks after replay.
func TestDynamicCorruptionSurfacedByErr(t *testing.T) {
	valid := capture(t, 300)
	_, _, dynStart := offsets(t, valid)

	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"record_index_out_of_range", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[dynStart:dynStart+4], 0xFFFFFFFF)
			return b
		}},
		{"truncated_mid_record", func(b []byte) []byte {
			return b[:len(b)-3]
		}},
		{"overclaimed_record_count", func(b []byte) []byte {
			// The header promises more records than the file carries.
			n := binary.LittleEndian.Uint64(b[dynStart-8 : dynStart])
			binary.LittleEndian.PutUint64(b[dynStart-8:dynStart], n*2)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), valid...))
			tr, err := NewReader(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("header should parse, got %v", err)
			}
			n := 0
			for {
				if _, ok := tr.Next(); !ok {
					break
				}
				n++
			}
			if tr.Err() == nil {
				t.Fatalf("corrupt dynamic section not surfaced after %d records", n)
			}
		})
	}
}

// TestValidTraceHasNoErr guards the inverse: a clean replay must finish
// with Err() == nil and exactly the promised record count, so the error
// paths above cannot be satisfied by a reader that always errors.
func TestValidTraceHasNoErr(t *testing.T) {
	valid := capture(t, 300)
	tr, err := NewReader(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("replayed %d records, want 300", n)
	}
	if tr.Remaining() != 0 {
		t.Fatalf("remaining = %d after full replay", tr.Remaining())
	}
}
