// Package tracefile defines a binary container for committed instruction
// streams, so the simulator can replay externally captured traces — the
// workflow of the paper's own trace-driven environment, where applications
// are captured once and simulated many times under different machine
// models.
//
// Format (little endian):
//
//	magic   [8]byte  "PARROTTR"
//	version u32      currently 1
//	name    u16 len + bytes
//	suite   u8
//	nStatic u32      static instruction table
//	  per instruction: pc u64, size u8, kind u8, target u64,
//	                   nuops u8, per uop: op, cond, dst[2], src[4],
//	                   subops[2], taken u8, imm i64
//	nDyn    u64      dynamic records
//	  per record: instIdx u32, flags u8 (bit0 taken, bit1 episodeEnd,
//	              bit2 hasMem), nextPC u64, memAddr u64 (only if hasMem)
//
// The static table is deduplicated: each distinct instruction is written
// once and referenced by index, exactly how the simulator shares static
// instructions between dynamic occurrences.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"parrot/internal/isa"
	"parrot/internal/workload"
)

var magic = [8]byte{'P', 'A', 'R', 'R', 'O', 'T', 'T', 'R'}

// Version is the current format version.
const Version = 1

const (
	flagTaken      = 1 << 0
	flagEpisodeEnd = 1 << 1
	flagHasMem     = 1 << 2
)

// Writer streams dynamic instructions into a trace file. Records buffer in
// memory until Close writes the file (the static table must be complete
// before the dynamic section's indices are final).
type Writer struct {
	w     *bufio.Writer
	name  string
	suite workload.Suite

	statics []*isa.Inst
	index   map[*isa.Inst]uint32
	dyn     []dynRecord
}

type dynRecord struct {
	inst    uint32
	flags   uint8
	nextPC  uint64
	memAddr uint64
}

// NewWriter prepares a trace file for the named application.
func NewWriter(w io.Writer, name string, suite workload.Suite) *Writer {
	return &Writer{
		w:     bufio.NewWriter(w),
		name:  name,
		suite: suite,
		index: make(map[*isa.Inst]uint32),
	}
}

// Add appends one committed instruction.
func (tw *Writer) Add(d workload.DynInst) {
	idx, ok := tw.index[d.Inst]
	if !ok {
		idx = uint32(len(tw.statics))
		tw.index[d.Inst] = idx
		tw.statics = append(tw.statics, d.Inst)
	}
	rec := dynRecord{inst: idx, nextPC: d.NextPC, memAddr: d.MemAddr}
	if d.Taken {
		rec.flags |= flagTaken
	}
	if d.EpisodeEnd {
		rec.flags |= flagEpisodeEnd
	}
	if d.MemAddr != 0 {
		rec.flags |= flagHasMem
	}
	tw.dyn = append(tw.dyn, rec)
}

func put(w io.Writer, v any) error { return binary.Write(w, binary.LittleEndian, v) }

// Close writes the complete file.
func (tw *Writer) Close() error {
	w := tw.w
	if err := put(w, magic); err != nil {
		return err
	}
	if err := put(w, uint32(Version)); err != nil {
		return err
	}
	if len(tw.name) > 0xFFFF {
		return fmt.Errorf("tracefile: name too long")
	}
	if err := put(w, uint16(len(tw.name))); err != nil {
		return err
	}
	if _, err := w.WriteString(tw.name); err != nil {
		return err
	}
	if err := put(w, uint8(tw.suite)); err != nil {
		return err
	}
	if err := put(w, uint32(len(tw.statics))); err != nil {
		return err
	}
	for _, in := range tw.statics {
		if err := writeInst(w, in); err != nil {
			return err
		}
	}
	if err := put(w, uint64(len(tw.dyn))); err != nil {
		return err
	}
	for _, r := range tw.dyn {
		if err := put(w, r.inst); err != nil {
			return err
		}
		if err := put(w, r.flags); err != nil {
			return err
		}
		if err := put(w, r.nextPC); err != nil {
			return err
		}
		if r.flags&flagHasMem != 0 {
			if err := put(w, r.memAddr); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

func writeInst(w io.Writer, in *isa.Inst) error {
	if err := put(w, in.PC); err != nil {
		return err
	}
	if err := put(w, in.Size); err != nil {
		return err
	}
	if err := put(w, uint8(in.Kind)); err != nil {
		return err
	}
	if err := put(w, in.Target); err != nil {
		return err
	}
	if len(in.Uops) > 0xFF {
		return fmt.Errorf("tracefile: instruction with %d uops", len(in.Uops))
	}
	if err := put(w, uint8(len(in.Uops))); err != nil {
		return err
	}
	for i := range in.Uops {
		u := &in.Uops[i]
		hdr := []uint8{
			uint8(u.Op), uint8(u.Cond),
			uint8(u.Dst[0]), uint8(u.Dst[1]),
			uint8(u.Src[0]), uint8(u.Src[1]), uint8(u.Src[2]), uint8(u.Src[3]),
			uint8(u.SubOps[0]), uint8(u.SubOps[1]),
			b2u8(u.Taken),
		}
		if err := put(w, hdr); err != nil {
			return err
		}
		if err := put(w, u.Imm); err != nil {
			return err
		}
	}
	return nil
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Capture runs an application's synthetic stream into a trace file.
func Capture(w io.Writer, prof workload.Profile, n int) error {
	if n <= 0 {
		n = prof.Instructions
	}
	prog := workload.Generate(prof)
	stream := workload.NewStream(prog, n)
	tw := NewWriter(w, prof.Name, prof.Suite)
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		tw.Add(d)
	}
	return tw.Close()
}

// Reader replays a trace file as an instruction source (it implements
// core.InstSource).
type Reader struct {
	Name  string
	Suite workload.Suite

	statics []*isa.Inst
	r       *bufio.Reader
	left    uint64
	err     error
}

// NewReader parses the header and static table, leaving the dynamic section
// for streaming.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", m[:])
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d", ver)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var suite uint8
	if err := binary.Read(br, binary.LittleEndian, &suite); err != nil {
		return nil, err
	}
	if suite >= uint8(workload.NumSuites) {
		return nil, fmt.Errorf("tracefile: bad suite %d", suite)
	}
	var nStatic uint32
	if err := binary.Read(br, binary.LittleEndian, &nStatic); err != nil {
		return nil, err
	}
	tr := &Reader{Name: string(name), Suite: workload.Suite(suite), r: br}
	for i := uint32(0); i < nStatic; i++ {
		in, err := readInst(br)
		if err != nil {
			return nil, fmt.Errorf("tracefile: static %d: %w", i, err)
		}
		tr.statics = append(tr.statics, in)
	}
	if err := binary.Read(br, binary.LittleEndian, &tr.left); err != nil {
		return nil, err
	}
	return tr, nil
}

func readInst(r io.Reader) (*isa.Inst, error) {
	in := &isa.Inst{}
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &in.PC); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &in.Size); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	if kind >= uint8(isa.NumInstKinds) {
		return nil, fmt.Errorf("bad kind %d", kind)
	}
	in.Kind = isa.InstKind(kind)
	if err := binary.Read(r, binary.LittleEndian, &in.Target); err != nil {
		return nil, err
	}
	var nuops uint8
	if err := binary.Read(r, binary.LittleEndian, &nuops); err != nil {
		return nil, err
	}
	for i := 0; i < int(nuops); i++ {
		var hdr [11]uint8
		if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
			return nil, err
		}
		var imm int64
		if err := binary.Read(r, binary.LittleEndian, &imm); err != nil {
			return nil, err
		}
		if hdr[0] >= uint8(isa.NumOps) {
			return nil, fmt.Errorf("bad opcode %d", hdr[0])
		}
		u := isa.Uop{
			Op:     isa.Op(hdr[0]),
			Cond:   isa.Cond(hdr[1]),
			Dst:    [isa.MaxDst]isa.Reg{isa.Reg(hdr[2]), isa.Reg(hdr[3])},
			Src:    [isa.MaxSrc]isa.Reg{isa.Reg(hdr[4]), isa.Reg(hdr[5]), isa.Reg(hdr[6]), isa.Reg(hdr[7])},
			SubOps: [2]isa.Op{isa.Op(hdr[8]), isa.Op(hdr[9])},
			Taken:  hdr[10] != 0,
			Imm:    imm,
		}
		in.Uops = append(in.Uops, u)
	}
	return in, nil
}

// Next implements the instruction-source contract.
func (tr *Reader) Next() (workload.DynInst, bool) {
	if tr.left == 0 || tr.err != nil {
		return workload.DynInst{}, false
	}
	tr.left--
	var idx uint32
	var flags uint8
	if err := binary.Read(tr.r, binary.LittleEndian, &idx); err != nil {
		tr.err = err
		return workload.DynInst{}, false
	}
	if err := binary.Read(tr.r, binary.LittleEndian, &flags); err != nil {
		tr.err = err
		return workload.DynInst{}, false
	}
	var d workload.DynInst
	if int(idx) >= len(tr.statics) {
		tr.err = fmt.Errorf("tracefile: bad instruction index %d", idx)
		return workload.DynInst{}, false
	}
	d.Inst = tr.statics[idx]
	if err := binary.Read(tr.r, binary.LittleEndian, &d.NextPC); err != nil {
		tr.err = err
		return workload.DynInst{}, false
	}
	if flags&flagHasMem != 0 {
		if err := binary.Read(tr.r, binary.LittleEndian, &d.MemAddr); err != nil {
			tr.err = err
			return workload.DynInst{}, false
		}
	}
	d.Taken = flags&flagTaken != 0
	d.EpisodeEnd = flags&flagEpisodeEnd != 0
	return d, true
}

// Err reports a stream decoding error encountered by Next.
func (tr *Reader) Err() error { return tr.err }

// Remaining returns the number of dynamic records left.
func (tr *Reader) Remaining() uint64 { return tr.left }

// Statics returns the deduplicated static instruction table.
func (tr *Reader) Statics() []*isa.Inst { return tr.statics }
