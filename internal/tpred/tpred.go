// Package tpred implements the trace predictor: the higher-priority
// next-TID predictor that steers PARROT's fetch selector toward the hot
// pipeline (§2.3).
//
// The predictor maps a hashed history of recently committed TIDs to the
// predicted next TID key, with two-bit confidence hysteresis. It is trained
// continuously on the committed TID stream — the paper's design keeps the
// trace predictor and hot filter training on all committed instructions so
// the hot path is discovered while executing cold.
package tpred

// Stats counts predictor activity.
type Stats struct {
	Lookups     uint64
	Predictions uint64 // confident predictions issued
	Correct     uint64
	Mispredicts uint64 // confident predictions that were wrong
	Updates     uint64
}

// MispredictRate returns wrong confident predictions per confident
// prediction. This is the hot-code analogue of a branch misprediction rate
// (paper Figure 4.7).
func (s *Stats) MispredictRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Predictions)
}

type entry struct {
	tag  uint64
	next uint64
	conf uint8 // 0..3; predictions are issued at conf >= 2
}

// Predictor is the next-TID predictor.
type Predictor struct {
	table   []entry
	setMask uint64

	// last holds the most recent TID key; the prediction context is a
	// hash of this finite window. Depth-one history predicts the
	// self-succession of unrolled loop traces — the dominant hot pattern —
	// robustly; deeper history fragments training on irregular code.
	last [2]uint64

	// epoch counts table/history mutations (Train calls). Monotone across
	// statistics resets, it summarizes the table contents for the
	// memoization state fingerprint without a full-table rescan.
	epoch uint64

	Stats Stats
}

// New builds a predictor with the given number of entries (rounded up to a
// power of two). The paper's PARROT models use 2K entries.
func New(entries int) *Predictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &Predictor{table: make([]entry, n), setMask: uint64(n - 1)}
}

// Entries returns the table size.
func (p *Predictor) Entries() int { return len(p.table) }

// Epoch returns the mutation epoch (Train calls since construction/Reset).
func (p *Predictor) Epoch() uint64 { return p.epoch }

// history hashes the finite TID window into the prediction context.
func (p *Predictor) history() uint64 {
	h := p.last[0] * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

func (p *Predictor) index() uint64 {
	h := p.history()
	return (h ^ h>>21) & p.setMask
}

// Predict returns the predicted next TID key given the current history.
// ok is false when the predictor has no confident prediction, in which case
// the fetch selector falls back to the branch-predictor-driven cold
// pipeline.
func (p *Predictor) Predict() (key uint64, ok bool) {
	p.Stats.Lookups++
	e := &p.table[p.index()]
	if e.tag == p.history() && e.conf >= 2 {
		p.Stats.Predictions++
		return e.next, true
	}
	return 0, false
}

// Train records the actual next TID and advances the history. predicted
// and predOK must be the result of the Predict call made before this
// segment, so mispredictions are counted against issued predictions only.
func (p *Predictor) Train(actual uint64, predicted uint64, predOK bool) {
	p.epoch++
	p.Stats.Updates++
	if predOK {
		if predicted == actual {
			p.Stats.Correct++
		} else {
			p.Stats.Mispredicts++
		}
	}
	h := p.history()
	e := &p.table[p.index()]
	switch {
	case e.tag == h && e.next == actual:
		if e.conf < 3 {
			e.conf++
		}
	case e.tag == h:
		if e.conf > 0 {
			e.conf--
		} else {
			e.next = actual
			e.conf = 1
		}
	default:
		// Tag replacement with weak initial confidence. The predictor can
		// issue a prediction after two consistent sightings.
		*e = entry{tag: h, next: actual, conf: 1}
	}
	p.last[1] = p.last[0]
	p.last[0] = actual
}

// ResetHistory clears path history (used after machine flushes).
func (p *Predictor) ResetHistory() { p.last = [2]uint64{} }

// Reset returns the predictor to its just-constructed state: table, history
// and statistics cleared (machine-pooling Reset protocol).
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = entry{}
	}
	p.last = [2]uint64{}
	p.epoch = 0
	p.Stats = Stats{}
}
