package tpred

import "testing"

// run feeds a TID key sequence, returning the number of confident correct
// predictions.
func run(p *Predictor, seq []uint64) (correct, confident int) {
	for _, actual := range seq {
		pred, ok := p.Predict()
		if ok {
			confident++
			if pred == actual {
				correct++
			}
		}
		p.Train(actual, pred, ok)
	}
	return correct, confident
}

func TestLearnsRepeatingSequence(t *testing.T) {
	p := New(2048)
	var seq []uint64
	for i := 0; i < 100; i++ {
		seq = append(seq, 11, 22, 33) // steady loop of three traces
	}
	correct, confident := run(p, seq)
	if confident < 250 {
		t.Errorf("confident predictions = %d, want most of 300", confident)
	}
	if correct < confident*95/100 {
		t.Errorf("correct = %d of %d", correct, confident)
	}
}

func TestLearnsLoopWithExit(t *testing.T) {
	// A loop trace repeated 8 times then an exit trace, repeated: mimics
	// unrolled hot loops. The exit is history-distinguishable only if the
	// history hash separates run lengths — some mispredicts are expected,
	// but the body must predict well.
	p := New(4096)
	var seq []uint64
	for rep := 0; rep < 60; rep++ {
		for i := 0; i < 8; i++ {
			seq = append(seq, 77)
		}
		seq = append(seq, 88)
	}
	correct, confident := run(p, seq)
	if confident == 0 {
		t.Fatal("predictor never became confident")
	}
	if float64(correct)/float64(confident) < 0.6 {
		t.Errorf("accuracy = %d/%d", correct, confident)
	}
}

func TestNoConfidenceOnRandom(t *testing.T) {
	p := New(1024)
	// A non-repeating sequence must not produce a flood of confident wrong
	// predictions.
	var seq []uint64
	x := uint64(1)
	for i := 0; i < 3000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		seq = append(seq, x)
	}
	_, confident := run(p, seq)
	if confident > 300 {
		t.Errorf("confident predictions on random stream = %d", confident)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(256)
	var seq []uint64
	for i := 0; i < 50; i++ {
		seq = append(seq, 1, 2)
	}
	run(p, seq)
	if p.Stats.Predictions != p.Stats.Correct+p.Stats.Mispredicts {
		t.Errorf("prediction accounting broken: %+v", p.Stats)
	}
	if p.Stats.Updates != 100 || p.Stats.Lookups != 100 {
		t.Errorf("lookup/update counts: %+v", p.Stats)
	}
}

func TestResetHistory(t *testing.T) {
	p := New(256)
	run(p, []uint64{1, 2, 3})
	p.ResetHistory()
	// After reset the index must be the zero-history slot; just ensure no
	// panic and that prediction still functions.
	if _, ok := p.Predict(); ok {
		// A confident prediction from zero history is possible only if
		// trained there; either way this must not crash.
		t.Log("confident prediction from reset history")
	}
}

func TestEntriesRounding(t *testing.T) {
	if New(2000).Entries() != 2048 {
		t.Errorf("entries = %d", New(2000).Entries())
	}
}
