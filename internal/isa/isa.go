// Package isa defines the micro-operation (uop) instruction set used by the
// PARROT simulator.
//
// The paper targets IA32: variable-length macro-instructions that decode into
// one or more uops. We reproduce that split with a compact RISC-like uop set
// that carries real semantics (so the dynamic optimizer can be verified
// against an architectural emulator) plus variable-length macro-instructions
// whose decode cost model captures the serial nature of CISC decoding that
// motivates a decoded trace cache.
//
// Register file: 16 integer registers, 16 floating-point registers and one
// architectural flags register. The flags register is modelled as an ordinary
// renameable register so that dependency tracking, renaming and optimization
// treat control flags uniformly with data.
package isa

import "fmt"

// Reg names an architectural register. Values 0..15 are the integer
// registers, 16..23 the floating-point registers, and RegFlags the flags
// register. RegNone marks an unused operand slot.
type Reg uint8

// Architectural register file layout.
const (
	NumGPR       = 16 // integer registers r0..r15
	NumFP        = 16 // floating point registers f0..f15 (SSE-style logical set)
	RegFlags Reg = NumGPR + NumFP
	NumRegs      = NumGPR + NumFP + 1 // GPRs + FPs + flags

	// RegNone marks an absent operand slot.
	RegNone Reg = 0xFF
)

// GPR returns the i'th integer register.
func GPR(i int) Reg { return Reg(i % NumGPR) }

// FPR returns the i'th floating-point register.
func FPR(i int) Reg { return Reg(NumGPR + i%NumFP) }

// IsGPR reports whether r is an integer register.
func (r Reg) IsGPR() bool { return r < NumGPR }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= NumGPR && r < NumGPR+NumFP }

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String implements fmt.Stringer.
func (r Reg) String() string {
	switch {
	case r.IsGPR():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r-NumGPR))
	case r == RegFlags:
		return "flags"
	case r == RegNone:
		return "-"
	}
	return fmt.Sprintf("reg?%d", int(r))
}

// Flag bits stored in the flags register (as an int64 value).
const (
	FlagZ int64 = 1 << 0 // zero
	FlagS int64 = 1 << 1 // sign (negative)
	FlagC int64 = 1 << 2 // carry (unsigned borrow on compare)
)

// Op enumerates uop opcodes.
type Op uint8

// Uop opcodes. Arithmetic uops write an integer destination; Cmp/Test write
// the flags register; Br and Assert read the flags register.
const (
	OpNop Op = iota

	// Data movement.
	OpMov    // Dst0 <- Src0
	OpMovImm // Dst0 <- Imm

	// Integer ALU, register forms: Dst0 <- Src0 op Src1.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Integer ALU, immediate forms: Dst0 <- Src0 op Imm.
	OpAddImm
	OpSubImm
	OpAndImm
	OpOrImm
	OpXorImm
	OpShlImm
	OpShrImm

	// Long-latency integer.
	OpMul // Dst0 <- Src0 * Src1
	OpDiv // Dst0 <- Src0 / Src1 (0 divisor yields 0, keeping semantics total)

	// Memory. Address is Src0 + Imm.
	OpLoad  // Dst0 <- mem[Src0+Imm]
	OpStore // mem[Src0+Imm] <- Src1

	// Flag producers.
	OpCmp    // flags <- compare(Src0, Src1)
	OpCmpImm // flags <- compare(Src0, Imm)
	OpTest   // flags <- sign/zero of Src0 & Src1

	// Control transfer. Branches read the flags register via Src0.
	OpBr   // conditional branch, condition in Cond
	OpJmp  // unconditional direct jump
	OpJmpI // indirect jump through Src0
	OpCall // call (pushes return context; direct target)
	OpRet  // return (indirect through hardware stack context)

	// Floating point (operate on FP registers; value semantics are integer
	// arithmetic on the 64-bit register contents, which is sufficient for the
	// optimizer's semantic-preservation contract while keeping the emulator
	// exact and deterministic).
	OpFMov // Dst0 <- Src0
	OpFAdd // Dst0 <- Src0 + Src1
	OpFMul // Dst0 <- Src0 * Src1
	OpFDiv // Dst0 <- Src0 / Src1 (0 divisor yields 0)

	// Trace-only uops, produced by trace construction and optimization.
	OpAssert      // assert flags condition Cond == Taken; aborts trace otherwise
	OpAssertJmpI  // assert indirect target matches trace-embedded target
	OpFusedAluAlu // Dst0 <- (Src0 op1 Src1) op2 Src2; packed dependent ALU pair
	OpFusedFP     // FP multiply-add style fusion of a dependent FP pair
	OpFusedCmpBr  // compare Src0,Src1 and assert condition in one uop
	OpSimd2       // two independent same-op ALU ops: Dst0<-Src0 op Src1, Dst1<-Src2 op Src3

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpMovImm: "movi",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr",
	OpAddImm: "addi", OpSubImm: "subi", OpAndImm: "andi", OpOrImm: "ori",
	OpXorImm: "xori", OpShlImm: "shli", OpShrImm: "shri",
	OpMul: "mul", OpDiv: "div",
	OpLoad: "ld", OpStore: "st",
	OpCmp: "cmp", OpCmpImm: "cmpi", OpTest: "test",
	OpBr: "br", OpJmp: "jmp", OpJmpI: "jmpi", OpCall: "call", OpRet: "ret",
	OpFMov: "fmov", OpFAdd: "fadd", OpFMul: "fmul", OpFDiv: "fdiv",
	OpAssert: "assert", OpAssertJmpI: "assertji",
	OpFusedAluAlu: "fused", OpFusedFP: "fusedfp", OpFusedCmpBr: "cmpbr", OpSimd2: "simd2",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", int(o))
}

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Cond is a branch/assert condition evaluated against the flags register.
type Cond uint8

// Branch conditions over the Z/S/C flag bits.
const (
	CondAlways Cond = iota
	CondEQ          // Z
	CondNE          // !Z
	CondLT          // S (signed less-than after compare)
	CondGE          // !S
	CondLE          // Z || S
	CondGT          // !Z && !S
	CondULT         // C (unsigned below)
	CondUGE         // !C
	NumConds
)

var condNames = [...]string{"al", "eq", "ne", "lt", "ge", "le", "gt", "ult", "uge"}

// String implements fmt.Stringer.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", int(c))
}

// Eval evaluates the condition against a flags register value.
func (c Cond) Eval(flags int64) bool {
	z := flags&FlagZ != 0
	s := flags&FlagS != 0
	cf := flags&FlagC != 0
	switch c {
	case CondAlways:
		return true
	case CondEQ:
		return z
	case CondNE:
		return !z
	case CondLT:
		return s
	case CondGE:
		return !s
	case CondLE:
		return z || s
	case CondGT:
		return !z && !s
	case CondULT:
		return cf
	case CondUGE:
		return !cf
	}
	return false
}

// Negate returns the complementary condition. CondAlways negates to itself.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondULT:
		return CondUGE
	case CondUGE:
		return CondULT
	}
	return c
}

// ExecClass groups uops by the functional-unit type that executes them.
type ExecClass uint8

// Functional unit classes.
const (
	ClassNop ExecClass = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	NumExecClasses
)

var classNames = [...]string{
	"nop", "alu", "mul", "div", "fadd", "fmul", "fdiv", "load", "store", "branch",
}

// String implements fmt.Stringer.
func (c ExecClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", int(c))
}

// classLatency is the baseline execution latency of each class, precomputed
// so Latency is a branch-free table lookup on the simulator's issue path.
var classLatency = [NumExecClasses]int{
	ClassNop:    1,
	ClassIntALU: 1,
	ClassIntMul: 3,
	ClassIntDiv: 12,
	ClassFPAdd:  3,
	ClassFPMul:  4,
	ClassFPDiv:  14,
	ClassLoad:   3,
	ClassStore:  1,
	ClassBranch: 1,
}

// Latency returns the baseline execution latency, in cycles, of the class.
// Load latency covers only the L1 hit path; misses add memory-system cycles.
func (c ExecClass) Latency() int { return classLatency[c] }

// opClass maps each opcode to its functional-unit class, precomputed so the
// per-dispatch Class call is a table lookup instead of a 20-way switch.
// Opcodes without an explicit entry execute on the integer ALU.
var opClass = func() [numOps]ExecClass {
	var t [numOps]ExecClass
	for o := range t {
		t[o] = ClassIntALU
	}
	t[OpNop] = ClassNop
	t[OpMul] = ClassIntMul
	t[OpDiv] = ClassIntDiv
	t[OpFAdd], t[OpFMov] = ClassFPAdd, ClassFPAdd
	t[OpFMul], t[OpFusedFP] = ClassFPMul, ClassFPMul
	t[OpFDiv] = ClassFPDiv
	t[OpLoad] = ClassLoad
	t[OpStore] = ClassStore
	for _, o := range []Op{OpBr, OpJmp, OpJmpI, OpCall, OpRet, OpAssert, OpAssertJmpI, OpFusedCmpBr} {
		t[o] = ClassBranch
	}
	return t
}()

// Class returns the functional-unit class executing opcode o.
func (o Op) Class() ExecClass { return opClass[o] }

// IsBranch reports whether o transfers control (including trace asserts).
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsCTI reports whether o is a control-transfer instruction terminator in the
// original (pre-trace) program: conditional/unconditional jumps, calls, rets.
func (o Op) IsCTI() bool {
	switch o {
	case OpBr, OpJmp, OpJmpI, OpCall, OpRet:
		return true
	}
	return false
}

// IsMem reports whether o accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// WritesFlags reports whether o architecturally writes the flags register.
func (o Op) WritesFlags() bool {
	switch o {
	case OpCmp, OpCmpImm, OpTest, OpFusedCmpBr:
		return true
	}
	return false
}

// ReadsFlags reports whether o architecturally reads the flags register.
func (o Op) ReadsFlags() bool {
	switch o {
	case OpBr, OpAssert:
		return true
	}
	return false
}

// HasImm reports whether o uses the immediate operand.
func (o Op) HasImm() bool {
	switch o {
	case OpMovImm, OpAddImm, OpSubImm, OpAndImm, OpOrImm, OpXorImm,
		OpShlImm, OpShrImm, OpLoad, OpStore, OpCmpImm, OpBr, OpJmp,
		OpCall, OpAssertJmpI:
		return true
	}
	return false
}
