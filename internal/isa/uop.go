package isa

import (
	"fmt"
	"strings"
)

// MaxDst and MaxSrc bound the operand counts of a single uop. Two
// destinations and four sources accommodate the packed uops produced by
// SIMDification (two independent ALU operations in one uop).
const (
	MaxDst = 2
	MaxSrc = 4
)

// Uop is a single micro-operation. Uops are values; the simulator copies
// them freely. Operand slots not in use hold RegNone.
//
// For trace uops, Taken records the direction embedded in the trace for
// branch-class uops (the direction the trace asserts), and Elim marks uops
// that the optimizer removed (used transiently inside optimizer passes; an
// optimized trace never contains eliminated uops).
type Uop struct {
	Op   Op
	Cond Cond
	Dst  [MaxDst]Reg
	Src  [MaxSrc]Reg
	Imm  int64

	// SubOps holds the constituent operations of a packed uop.
	// For OpFusedAluAlu: tmp = SubOps[0](Src0, Src1); Dst0 = SubOps[1](tmp, Src2).
	// For OpSimd2: Dst0 = SubOps[0](Src0, Src1); Dst1 = SubOps[0](Src2, Src3).
	// At most one sub-op may be an immediate form; it consumes Imm.
	SubOps [2]Op

	// Taken is the branch direction embedded during trace construction.
	Taken bool
}

// NewUop returns a uop with all operand slots cleared.
func NewUop(op Op) Uop {
	u := Uop{Op: op}
	for i := range u.Dst {
		u.Dst[i] = RegNone
	}
	for i := range u.Src {
		u.Src[i] = RegNone
	}
	return u
}

// Dsts returns the populated destination registers.
func (u *Uop) Dsts() []Reg {
	out := make([]Reg, 0, MaxDst)
	for _, d := range u.Dst {
		if d != RegNone {
			out = append(out, d)
		}
	}
	return out
}

// Srcs returns the populated source registers.
func (u *Uop) Srcs() []Reg {
	out := make([]Reg, 0, MaxSrc)
	for _, s := range u.Src {
		if s != RegNone {
			out = append(out, s)
		}
	}
	return out
}

// NumSrcs returns the count of populated source operands.
func (u *Uop) NumSrcs() int {
	n := 0
	for _, s := range u.Src {
		if s != RegNone {
			n++
		}
	}
	return n
}

// String renders the uop in a compact assembly-like syntax.
func (u Uop) String() string {
	var b strings.Builder
	b.WriteString(u.Op.String())
	if u.Op == OpBr || u.Op == OpAssert || u.Op == OpFusedCmpBr {
		fmt.Fprintf(&b, ".%s", u.Cond)
		if u.Taken {
			b.WriteString("/T")
		} else {
			b.WriteString("/NT")
		}
	}
	if u.Op == OpFusedAluAlu || u.Op == OpFusedFP {
		fmt.Fprintf(&b, "[%s;%s]", u.SubOps[0], u.SubOps[1])
	} else if u.Op == OpSimd2 {
		fmt.Fprintf(&b, "[%s]", u.SubOps[0])
	}
	first := true
	for _, d := range u.Dst {
		if d == RegNone {
			continue
		}
		if first {
			b.WriteString(" ")
			first = false
		} else {
			b.WriteString(",")
		}
		b.WriteString(d.String())
	}
	if !first {
		b.WriteString(" <-")
	}
	for _, s := range u.Src {
		if s == RegNone {
			continue
		}
		fmt.Fprintf(&b, " %s", s)
	}
	if u.Op.HasImm() {
		fmt.Fprintf(&b, " #%d", u.Imm)
	}
	return b.String()
}

// InstKind classifies macro-instructions for fetch/decode modelling.
type InstKind uint8

// Macro-instruction kinds.
const (
	KindSimple  InstKind = iota // 1 uop, decodable on any decoder
	KindComplex                 // >1 uop, requires the complex decoder slot
	KindBranch                  // ends a basic block (conditional)
	KindJump                    // unconditional direct jump
	KindJumpInd                 // indirect jump
	KindCall
	KindRet
	NumInstKinds
)

var kindNames = [...]string{"simple", "complex", "branch", "jump", "jumpind", "call", "ret"}

// String implements fmt.Stringer.
func (k InstKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind?%d", int(k))
}

// IsCTI reports whether the kind transfers control.
func (k InstKind) IsCTI() bool { return k >= KindBranch }

// Inst is a static macro-instruction: a variable-length IA32-like
// instruction that decodes into Uops. Instances are shared between all
// dynamic occurrences; dynamic state (branch outcome, memory address)
// travels in workload.DynInst.
type Inst struct {
	PC   uint64 // static address
	Size uint8  // encoded length in bytes, 1..15
	Kind InstKind
	Uops []Uop

	// Target is the static taken-target for direct CTIs (branch/jump/call).
	Target uint64
}

// NumUops returns the decoded uop count.
func (in *Inst) NumUops() int { return len(in.Uops) }

// IsComplex reports whether the instruction needs the complex decoder:
// instructions decoding into more than two uops, mirroring the classic
// 4-1-1 style decoder asymmetry of IA32 front-ends.
func (in *Inst) IsComplex() bool { return len(in.Uops) > 2 }

// FallThrough returns the address of the next sequential instruction.
func (in *Inst) FallThrough() uint64 { return in.PC + uint64(in.Size) }

// String renders the instruction header and its uops.
func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%#x[%d] %s:", in.PC, in.Size, in.Kind)
	for i := range in.Uops {
		fmt.Fprintf(&b, " {%s}", in.Uops[i])
	}
	return b.String()
}
