package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClassification(t *testing.T) {
	for i := 0; i < NumGPR; i++ {
		r := GPR(i)
		if !r.IsGPR() || r.IsFP() || !r.Valid() {
			t.Errorf("GPR(%d)=%v misclassified", i, r)
		}
	}
	for i := 0; i < NumFP; i++ {
		r := FPR(i)
		if r.IsGPR() || !r.IsFP() || !r.Valid() {
			t.Errorf("FPR(%d)=%v misclassified", i, r)
		}
	}
	if RegFlags.IsGPR() || RegFlags.IsFP() || !RegFlags.Valid() {
		t.Error("flags register misclassified")
	}
	if RegNone.Valid() {
		t.Error("RegNone must not be valid")
	}
}

func TestRegStrings(t *testing.T) {
	cases := map[Reg]string{
		GPR(0): "r0", GPR(15): "r15", FPR(0): "f0", FPR(7): "f7",
		RegFlags: "flags", RegNone: "-",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c     Cond
		flags int64
		want  bool
	}{
		{CondAlways, 0, true},
		{CondAlways, FlagZ | FlagS | FlagC, true},
		{CondEQ, FlagZ, true},
		{CondEQ, 0, false},
		{CondNE, 0, true},
		{CondNE, FlagZ, false},
		{CondLT, FlagS, true},
		{CondLT, 0, false},
		{CondGE, 0, true},
		{CondGE, FlagS, false},
		{CondLE, FlagZ, true},
		{CondLE, FlagS, true},
		{CondLE, 0, false},
		{CondGT, 0, true},
		{CondGT, FlagZ, false},
		{CondGT, FlagS, false},
		{CondULT, FlagC, true},
		{CondULT, 0, false},
		{CondUGE, 0, true},
		{CondUGE, FlagC, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.flags); got != tc.want {
			t.Errorf("%v.Eval(%#x) = %v, want %v", tc.c, tc.flags, got, tc.want)
		}
	}
}

// TestCondNegateInvolution checks negation is an involution and flips the
// evaluation for every flags value.
func TestCondNegateInvolution(t *testing.T) {
	for c := CondEQ; c < NumConds; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("Negate not involutive for %v", c)
		}
		for flags := int64(0); flags < 8; flags++ {
			if c.Eval(flags) == c.Negate().Eval(flags) {
				t.Errorf("%v and %v agree on flags %#x", c, c.Negate(), flags)
			}
		}
	}
	if CondAlways.Negate() != CondAlways {
		t.Error("CondAlways must negate to itself")
	}
}

func TestOpClassesAndLatencies(t *testing.T) {
	cases := []struct {
		op    Op
		class ExecClass
	}{
		{OpNop, ClassNop},
		{OpAdd, ClassIntALU},
		{OpMovImm, ClassIntALU},
		{OpMul, ClassIntMul},
		{OpDiv, ClassIntDiv},
		{OpFAdd, ClassFPAdd},
		{OpFMov, ClassFPAdd},
		{OpFMul, ClassFPMul},
		{OpFDiv, ClassFPDiv},
		{OpLoad, ClassLoad},
		{OpStore, ClassStore},
		{OpBr, ClassBranch},
		{OpRet, ClassBranch},
		{OpAssert, ClassBranch},
		{OpFusedCmpBr, ClassBranch},
		{OpFusedAluAlu, ClassIntALU},
		{OpSimd2, ClassIntALU},
	}
	for _, tc := range cases {
		if got := tc.op.Class(); got != tc.class {
			t.Errorf("%v.Class() = %v, want %v", tc.op, got, tc.class)
		}
	}
	for c := ClassNop; c < NumExecClasses; c++ {
		if c.Latency() < 1 && c != ClassNop {
			t.Errorf("class %v latency %d < 1", c, c.Latency())
		}
	}
	if ClassIntDiv.Latency() <= ClassIntMul.Latency() {
		t.Error("divide should be slower than multiply")
	}
	if ClassLoad.Latency() <= ClassIntALU.Latency() {
		t.Error("load-hit should be slower than ALU")
	}
}

func TestOpPredicates(t *testing.T) {
	for _, op := range []Op{OpBr, OpJmp, OpJmpI, OpCall, OpRet} {
		if !op.IsCTI() {
			t.Errorf("%v should be a CTI", op)
		}
	}
	for _, op := range []Op{OpAssert, OpAdd, OpLoad, OpCmp} {
		if op.IsCTI() {
			t.Errorf("%v should not be a program CTI", op)
		}
	}
	if !OpAssert.IsBranch() || !OpBr.IsBranch() {
		t.Error("assert/br must be branch-class")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
	for _, op := range []Op{OpCmp, OpCmpImm, OpTest, OpFusedCmpBr} {
		if !op.WritesFlags() {
			t.Errorf("%v should write flags", op)
		}
	}
	for _, op := range []Op{OpBr, OpAssert} {
		if !op.ReadsFlags() {
			t.Errorf("%v should read flags", op)
		}
	}
	if OpAdd.WritesFlags() || OpAdd.ReadsFlags() {
		t.Error("plain ALU must not touch flags in this ISA")
	}
}

func TestNewUopClearsOperands(t *testing.T) {
	u := NewUop(OpAdd)
	for _, d := range u.Dst {
		if d != RegNone {
			t.Fatal("dst slot not cleared")
		}
	}
	for _, s := range u.Src {
		if s != RegNone {
			t.Fatal("src slot not cleared")
		}
	}
	if u.NumSrcs() != 0 || len(u.Dsts()) != 0 || len(u.Srcs()) != 0 {
		t.Fatal("operand accessors must see empty uop")
	}
}

func TestUopOperandAccessors(t *testing.T) {
	u := NewUop(OpAdd)
	u.Dst[0] = GPR(3)
	u.Src[0] = GPR(1)
	u.Src[1] = GPR(2)
	if got := u.Dsts(); len(got) != 1 || got[0] != GPR(3) {
		t.Errorf("Dsts() = %v", got)
	}
	if got := u.Srcs(); len(got) != 2 || got[0] != GPR(1) || got[1] != GPR(2) {
		t.Errorf("Srcs() = %v", got)
	}
	if u.NumSrcs() != 2 {
		t.Errorf("NumSrcs() = %d, want 2", u.NumSrcs())
	}
}

func TestUopString(t *testing.T) {
	u := NewUop(OpAdd)
	u.Dst[0] = GPR(3)
	u.Src[0] = GPR(1)
	u.Src[1] = GPR(2)
	if got := u.String(); got != "add r3 <- r1 r2" {
		t.Errorf("String() = %q", got)
	}
	b := NewUop(OpBr)
	b.Cond = CondEQ
	b.Src[0] = RegFlags
	b.Taken = true
	b.Imm = 64
	if got := b.String(); got != "br.eq/T flags #64" {
		t.Errorf("String() = %q", got)
	}
}

func TestInstComplexity(t *testing.T) {
	mk := func(n int) *Inst {
		in := &Inst{PC: 0x1000, Size: 4, Kind: KindSimple}
		for i := 0; i < n; i++ {
			in.Uops = append(in.Uops, NewUop(OpAdd))
		}
		return in
	}
	if mk(1).IsComplex() || mk(2).IsComplex() {
		t.Error("1-2 uop instructions must be simple-decodable")
	}
	if !mk(3).IsComplex() || !mk(4).IsComplex() {
		t.Error(">2 uop instructions must be complex")
	}
	in := mk(2)
	if in.FallThrough() != 0x1004 {
		t.Errorf("FallThrough = %#x", in.FallThrough())
	}
	if in.NumUops() != 2 {
		t.Errorf("NumUops = %d", in.NumUops())
	}
}

// Property: Eval is a pure function of the three flag bits only.
func TestCondEvalIgnoresHighBits(t *testing.T) {
	f := func(c uint8, flags int64) bool {
		cond := Cond(c % uint8(NumConds))
		return cond.Eval(flags) == cond.Eval(flags&7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringersTotal(t *testing.T) {
	for o := Op(0); o < Op(NumOps); o++ {
		if o.String() == "" {
			t.Errorf("opcode %d has empty name", o)
		}
	}
	for k := InstKind(0); k < NumInstKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	for c := ExecClass(0); c < NumExecClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
}
