package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache("t", 32<<10, 4, 64)
	if c.Sets() != 128 || c.Ways() != 4 || c.LineSize() != 64 {
		t.Errorf("geometry = %d sets, %d ways, %d line", c.Sets(), c.Ways(), c.LineSize())
	}
	if c.Name() != "t" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 4, 64}, {100, 4, 64}, {32768, 4, 48}, {-1, 1, 64}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v must panic", g)
				}
			}()
			NewCache("bad", g[0], g[1], g[2])
		}()
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	if c.Access(0x1000, false) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000, false) {
		t.Error("second access must hit")
	}
	if !c.Access(0x1030, false) {
		t.Error("same-line access must hit")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, 8 sets of 64B lines: addresses 0, 512, 1024 map to set 0.
	c := NewCache("t", 1<<10, 2, 64)
	c.Access(0, false)    // miss, way A
	c.Access(512, false)  // miss, way B
	c.Access(0, false)    // hit, A most recent
	c.Access(1024, false) // miss, evicts B (512)
	if !c.Access(0, false) {
		t.Error("0 must survive (MRU)")
	}
	if c.Access(512, false) {
		t.Error("512 must have been evicted (LRU)")
	}
	if c.Stats.Evictions == 0 {
		t.Error("eviction must be counted")
	}
}

func TestLookupDoesNotModify(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	if c.Lookup(0x40) {
		t.Error("lookup of absent line must be false")
	}
	if c.Stats.Accesses != 0 {
		t.Error("lookup must not count as access")
	}
	c.Access(0x40, false)
	if !c.Lookup(0x40) {
		t.Error("lookup of present line must be true")
	}
}

func TestFlush(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	c.Access(0x40, false)
	c.Flush()
	if c.Lookup(0x40) {
		t.Error("flush must invalidate lines")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	addr := uint64(0x123400)
	// Cold: miss everywhere.
	if got := h.AccessData(addr, false); got != h.Config().L2Latency+h.Config().MemLatency {
		t.Errorf("cold access latency = %d", got)
	}
	// Now an L1D hit.
	if got := h.AccessData(addr, false); got != 0 {
		t.Errorf("hit latency = %d", got)
	}
	// Evict from L1D only by touching enough conflicting lines; easier:
	// a different address that's in L2 after first touch.
	h.AccessData(0x777000, true)
	if got := h.AccessData(0x777000, false); got != 0 {
		t.Errorf("re-hit latency = %d", got)
	}
	if h.L2SizeMB() != 1.0 {
		t.Errorf("L2SizeMB = %v", h.L2SizeMB())
	}
}

func TestInstDataPathsSeparate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.FetchInst(0x1000)
	if h.L1D.Stats.Accesses != 0 {
		t.Error("instruction fetch must not touch L1D")
	}
	if h.L1I.Stats.Accesses != 1 {
		t.Error("instruction fetch must touch L1I")
	}
	h.AccessData(0x1000, false)
	// L1I miss went to L2, so data access to the same line hits L2.
	if h.L2.Stats.Accesses != 2 || h.L2.Stats.Hits != 1 {
		t.Errorf("L2 stats = %+v", h.L2.Stats)
	}
}

// Property: after any access, an immediate repeat of the same address hits.
func TestAccessThenHitProperty(t *testing.T) {
	c := NewCache("t", 8<<10, 4, 64)
	f := func(addr uint64, write bool) bool {
		c.Access(addr, write)
		return c.Lookup(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: stats identity — hits + misses == accesses.
func TestStatsIdentity(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	f := func(addrs []uint64) bool {
		for _, a := range addrs {
			c.Access(a, false)
		}
		return c.Stats.Hits+c.Stats.Misses == c.Stats.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsCache(t *testing.T) {
	// A working set smaller than capacity must converge to ~100% hits.
	c := NewCache("t", 32<<10, 4, 64)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a, false)
		}
	}
	if mr := c.Stats.MissRate(); mr > 0.26 {
		t.Errorf("resident working set miss rate = %v", mr)
	}
	// Only the first pass misses.
	if c.Stats.Misses != 256 {
		t.Errorf("misses = %d, want 256 cold misses", c.Stats.Misses)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set far larger than capacity keeps missing.
	c := NewCache("t", 1<<10, 2, 64)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 64<<10; a += 64 {
			c.Access(a, false)
		}
	}
	if mr := c.Stats.MissRate(); mr < 0.99 {
		t.Errorf("thrashing miss rate = %v, want ~1", mr)
	}
}
