// Package mem models the memory hierarchy of the simulated machines: split
// first-level instruction and data caches, a unified second-level cache and
// a flat main memory latency.
//
// The model is a blocking-latency cache model in the style used by
// trace-driven microarchitecture simulators: each access returns the number
// of additional cycles beyond the first-level hit latency, and the hierarchy
// records per-level hit/miss event counts that feed the energy model.
package mem

import "fmt"

// CacheStats counts cache activity for performance and energy accounting.
type CacheStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writes    uint64
}

// Epoch returns the cache's LRU clock: a monotone count of state-mutating
// accesses. The memoization fingerprint folds it in as a dirty-set summary
// of tag-array and recency state, avoiding a full line rescan.
func (c *Cache) Epoch() uint64 { return c.clock }

// MissRate returns the fraction of accesses that missed.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	setMask   uint64

	lines []cacheLine // sets*ways, way-major within each set
	clock uint64

	Stats CacheStats
}

// cacheLine is one way of one set. Keeping the tag, LRU stamp and flags in
// a single struct means a set probe walks ways*24 contiguous bytes instead
// of four parallel arrays (one cache-line touch per array per probe).
type cacheLine struct {
	tag   uint64
	used  uint64 // LRU timestamp
	valid bool
	pref  bool // line was filled by prefetch and not yet demand-hit
}

// NewCache builds a cache of the given total size in bytes, associativity
// and line size. Size, ways and line must be powers of two with
// size >= ways*line; NewCache panics otherwise, since cache geometry is
// static configuration.
func NewCache(name string, size, ways, line int) *Cache {
	if size <= 0 || ways <= 0 || line <= 0 {
		panic(fmt.Sprintf("mem: bad cache geometry %d/%d/%d", size, ways, line))
	}
	sets := size / (ways * line)
	if sets <= 0 || sets&(sets-1) != 0 || line&(line-1) != 0 {
		panic(fmt.Sprintf("mem: non-power-of-two cache geometry %d/%d/%d", size, ways, line))
	}
	shift := uint(0)
	for 1<<shift != line {
		shift++
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		lines:     make([]cacheLine, sets*ways),
	}
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineShift }

// Lookup probes the cache for addr without modifying contents, reporting a
// hit. It does not count statistics.
func (c *Cache) Lookup(addr uint64) bool {
	set := int((addr >> c.lineShift) & c.setMask)
	tag := addr >> c.lineShift
	lines := c.lines[set*c.ways : set*c.ways+c.ways]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a read or write access, allocating on miss, and reports
// whether it hit. Statistics are updated.
func (c *Cache) Access(addr uint64, write bool) bool {
	hit, _ := c.AccessTagged(addr, write, false)
	return hit
}

// AccessTagged is Access with prefetch-tag handling: asPrefetch marks the
// filled (or re-touched) line as prefetched; firstPrefHit reports that a
// demand access hit a prefetched line for the first time, the trigger for
// the tagged next-line prefetcher.
func (c *Cache) AccessTagged(addr uint64, write, asPrefetch bool) (hit, firstPrefHit bool) {
	c.clock++
	c.Stats.Accesses++
	if write {
		c.Stats.Writes++
	}
	set := int((addr >> c.lineShift) & c.setMask)
	tag := addr >> c.lineShift
	lines := c.lines[set*c.ways : set*c.ways+c.ways]
	// Hit scan first: hits are the overwhelmingly common case, so victim
	// selection (only meaningful on a miss) is deferred to a second pass.
	for i := range lines {
		ln := &lines[i]
		if ln.valid && ln.tag == tag {
			ln.used = c.clock
			c.Stats.Hits++
			if ln.pref && !asPrefetch {
				ln.pref = false
				return true, true
			}
			return true, false
		}
	}
	// Miss: pick the victim exactly as the fused scan did — the last
	// invalid way if any, else the least-recently-used valid way.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
		} else if lines[victim].valid && lines[i].used < lines[victim].used {
			victim = i
		}
	}
	c.Stats.Misses++
	v := &lines[victim]
	if v.valid {
		c.Stats.Evictions++
	}
	v.valid = true
	v.tag = tag
	v.pref = asPrefetch
	v.used = c.clock
	return false, false
}

// Flush invalidates the entire cache, preserving statistics.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
}

// Reset returns the cache to its just-constructed state: contents, LRU
// clock and statistics are all cleared. Part of the machine-pooling Reset
// protocol; a reset cache behaves bit-identically to a fresh one.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.clock = 0
	c.Stats = CacheStats{}
}

// HierarchyConfig describes a full memory hierarchy.
type HierarchyConfig struct {
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	LineSize         int

	L2Latency  int // extra cycles on L1 miss, L2 hit
	MemLatency int // extra cycles on L2 miss
}

// DefaultHierarchy mirrors the cache settings used for all models in the
// study: 32KB 4-way L1I and L1D, 1MB 8-way unified L2, 64B lines.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1ISize: 32 << 10, L1IWays: 4,
		L1DSize: 32 << 10, L1DWays: 4,
		L2Size: 1 << 20, L2Ways: 8,
		LineSize:   64,
		L2Latency:  10,
		MemLatency: 80,
	}
}

// Hierarchy is an instantiated memory system with a simple next-line
// hardware prefetcher on the data side: a demand miss fills the following
// line as well, hiding the compulsory misses of streaming access patterns.
type Hierarchy struct {
	cfg HierarchyConfig
	L1I *Cache
	L1D *Cache
	L2  *Cache

	// Prefetches counts next-line prefetch fills (for energy accounting).
	Prefetches uint64
}

// NewHierarchy instantiates the configured caches.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1I: NewCache("l1i", cfg.L1ISize, cfg.L1IWays, cfg.LineSize),
		L1D: NewCache("l1d", cfg.L1DSize, cfg.L1DWays, cfg.LineSize),
		L2:  NewCache("l2", cfg.L2Size, cfg.L2Ways, cfg.LineSize),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Reset clears all three caches and the prefetch counter, returning the
// hierarchy to its just-constructed state without reallocating tag arrays.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.Prefetches = 0
}

// L2SizeMB returns the level-2 capacity in megabytes, as used by the
// paper's leakage formula (0.05 per MByte of L2).
func (h *Hierarchy) L2SizeMB() float64 { return float64(h.cfg.L2Size) / (1 << 20) }

// FetchInst accesses the instruction path for addr and returns the extra
// latency beyond an L1I hit.
func (h *Hierarchy) FetchInst(addr uint64) int {
	if h.L1I.Access(addr, false) {
		return 0
	}
	if h.L2.Access(addr, false) {
		return h.cfg.L2Latency
	}
	return h.cfg.L2Latency + h.cfg.MemLatency
}

// AccessData accesses the data path for addr and returns the extra latency
// beyond an L1D hit. The tagged next-line prefetcher triggers on a demand
// miss and on the first demand hit of a prefetched line, so unit-stride
// streams stay one line ahead and hide their compulsory misses.
func (h *Hierarchy) AccessData(addr uint64, write bool) int {
	hit, firstPref := h.L1D.AccessTagged(addr, write, false)
	if hit {
		if firstPref {
			h.prefetch(addr + uint64(h.cfg.LineSize))
		}
		return 0
	}
	h.prefetch(addr + uint64(h.cfg.LineSize))
	if h.L2.Access(addr, write) {
		return h.cfg.L2Latency
	}
	return h.cfg.L2Latency + h.cfg.MemLatency
}

// MaxDataLatency bounds AccessData's return value: a full L1-and-L2 miss.
// It makes *Hierarchy a concrete ooo.MemModel, letting the execution engine
// size its completion time wheel to cover every possible data access.
func (h *Hierarchy) MaxDataLatency() int { return h.cfg.L2Latency + h.cfg.MemLatency }

// prefetch fills a line into L1D and L2 without perturbing demand
// statistics.
func (h *Hierarchy) prefetch(addr uint64) {
	if h.L1D.Lookup(addr) {
		return
	}
	h.Prefetches++
	save1, save2 := h.L1D.Stats, h.L2.Stats
	h.L1D.AccessTagged(addr, false, true)
	h.L2.AccessTagged(addr, false, true)
	h.L1D.Stats, h.L2.Stats = save1, save2
}
