// Package emu implements an architectural emulator for straight-line uop
// sequences.
//
// The emulator is the semantic oracle of the reproduction: the dynamic
// optimizer (package opt) must transform a trace so that, for every initial
// architectural state, executing the optimized uop sequence yields exactly
// the same final state (registers, flags and memory) as the original. This
// mirrors the paper's atomic-trace contract — a trace either commits its
// full architectural effect or none of it — and gives us a machine-checkable
// definition of "the overall semantics of the trace is preserved" (§2.1).
//
// Branch-class uops have no register or memory effect in straight-line
// semantics; asserts additionally record whether the embedded trace
// direction holds on the current flags, which the hot pipeline uses to
// detect trace mispredictions.
package emu

import (
	"fmt"
	"math/rand"

	"parrot/internal/isa"
)

// State is a complete architectural state: the register file (including the
// flags register) and data memory. Memory is sparse; absent addresses read
// as zero.
type State struct {
	Regs [isa.NumRegs]int64
	Mem  map[uint64]int64
}

// NewState returns an all-zero architectural state.
func NewState() *State {
	return &State{Mem: make(map[uint64]int64)}
}

// RandState returns a state with registers and a few memory cells filled
// from rng, for property-based testing.
func RandState(rng *rand.Rand) *State {
	s := NewState()
	for i := range s.Regs {
		s.Regs[i] = rng.Int63() - rng.Int63()
	}
	s.Regs[isa.RegFlags] &= 7 // flags hold only the three defined bits
	for i := 0; i < 32; i++ {
		s.Mem[uint64(rng.Intn(4096))*8] = rng.Int63() - rng.Int63()
	}
	return s
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{Regs: s.Regs, Mem: make(map[uint64]int64, len(s.Mem))}
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return c
}

// Load reads memory at addr (zero if never written).
func (s *State) Load(addr uint64) int64 { return s.Mem[addr] }

// Store writes memory at addr. Storing zero removes the cell so that states
// compare equal regardless of whether a zero was written or never touched.
func (s *State) Store(addr uint64, v int64) {
	if v == 0 {
		delete(s.Mem, addr)
		return
	}
	s.Mem[addr] = v
}

// Equal reports whether two states are architecturally identical.
func (s *State) Equal(o *State) bool {
	if s.Regs != o.Regs {
		return false
	}
	if len(s.Mem) != len(o.Mem) {
		return false
	}
	for k, v := range s.Mem {
		if o.Mem[k] != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference between
// two states, or "" when equal. Intended for test failure messages.
func (s *State) Diff(o *State) string {
	for i := range s.Regs {
		if s.Regs[i] != o.Regs[i] {
			return fmt.Sprintf("%v: %d != %d", isa.Reg(i), s.Regs[i], o.Regs[i])
		}
	}
	for k, v := range s.Mem {
		if ov := o.Mem[k]; ov != v {
			return fmt.Sprintf("mem[%#x]: %d != %d", k, v, ov)
		}
	}
	for k, ov := range o.Mem {
		if _, ok := s.Mem[k]; !ok {
			return fmt.Sprintf("mem[%#x]: 0 != %d", k, ov)
		}
	}
	return ""
}

// aluEval computes a two-operand ALU operation. Immediate-form opcodes use
// imm as the second operand. Shift amounts are masked to 6 bits; division by
// zero yields zero, keeping every opcode total and deterministic.
func aluEval(op isa.Op, a, b, imm int64) (int64, bool) {
	switch op {
	case isa.OpMov, isa.OpFMov:
		return a, true
	case isa.OpMovImm:
		return imm, true
	case isa.OpAdd, isa.OpFAdd:
		return a + b, true
	case isa.OpSub:
		return a - b, true
	case isa.OpAnd:
		return a & b, true
	case isa.OpOr:
		return a | b, true
	case isa.OpXor:
		return a ^ b, true
	case isa.OpShl:
		return a << (uint64(b) & 63), true
	case isa.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case isa.OpAddImm:
		return a + imm, true
	case isa.OpSubImm:
		return a - imm, true
	case isa.OpAndImm:
		return a & imm, true
	case isa.OpOrImm:
		return a | imm, true
	case isa.OpXorImm:
		return a ^ imm, true
	case isa.OpShlImm:
		return a << (uint64(imm) & 63), true
	case isa.OpShrImm:
		return int64(uint64(a) >> (uint64(imm) & 63)), true
	case isa.OpMul, isa.OpFMul:
		return a * b, true
	case isa.OpDiv, isa.OpFDiv:
		if b == 0 {
			return 0, true
		}
		return a / b, true
	}
	return 0, false
}

// ALUEval exposes aluEval for the optimizer's constant folder. ok is false
// when op is not a two-operand ALU operation.
func ALUEval(op isa.Op, a, b, imm int64) (v int64, ok bool) {
	return aluEval(op, a, b, imm)
}

// CompareFlags computes the flags value produced by a compare of a with b.
func CompareFlags(a, b int64) int64 {
	var f int64
	if a == b {
		f |= isa.FlagZ
	}
	if a < b {
		f |= isa.FlagS
	}
	if uint64(a) < uint64(b) {
		f |= isa.FlagC
	}
	return f
}

// TestFlags computes the flags value produced by a test (bitwise and) of a
// with b.
func TestFlags(a, b int64) int64 {
	v := a & b
	var f int64
	if v == 0 {
		f |= isa.FlagZ
	}
	if v < 0 {
		f |= isa.FlagS
	}
	return f
}

// StepResult reports the outcome of executing one uop.
type StepResult struct {
	// AssertFailed is true when the uop was an assert whose embedded
	// direction did not hold on the current flags (a trace misprediction).
	AssertFailed bool
}

// Step executes a single uop against the state.
func (s *State) Step(u *isa.Uop) (StepResult, error) {
	var res StepResult
	switch u.Op {
	case isa.OpNop, isa.OpJmp, isa.OpJmpI, isa.OpCall, isa.OpRet:
		// No architectural register/memory effect in straight-line semantics.

	case isa.OpBr:
		// Direction is architecturally determined by flags; no state effect.

	case isa.OpAssert:
		if u.Cond.Eval(s.Regs[isa.RegFlags]) != u.Taken {
			res.AssertFailed = true
		}

	case isa.OpAssertJmpI:
		// Target check is modelled at the pipeline level; no state effect.

	case isa.OpLoad:
		addr := uint64(s.Regs[u.Src[0]] + u.Imm)
		s.Regs[u.Dst[0]] = s.Load(addr)

	case isa.OpStore:
		addr := uint64(s.Regs[u.Src[0]] + u.Imm)
		s.Store(addr, s.Regs[u.Src[1]])

	case isa.OpCmp:
		s.Regs[isa.RegFlags] = CompareFlags(s.Regs[u.Src[0]], s.Regs[u.Src[1]])

	case isa.OpCmpImm:
		s.Regs[isa.RegFlags] = CompareFlags(s.Regs[u.Src[0]], u.Imm)

	case isa.OpTest:
		s.Regs[isa.RegFlags] = TestFlags(s.Regs[u.Src[0]], s.Regs[u.Src[1]])

	case isa.OpFusedCmpBr:
		// Register form compares Src0 with Src1; with Src1 absent the
		// immediate form compares Src0 with Imm (fused cmpi+br).
		b := u.Imm
		if u.Src[1] != isa.RegNone {
			b = s.Regs[u.Src[1]]
		}
		s.Regs[isa.RegFlags] = CompareFlags(s.Regs[u.Src[0]], b)
		if u.Cond.Eval(s.Regs[isa.RegFlags]) != u.Taken {
			res.AssertFailed = true
		}

	case isa.OpFusedAluAlu, isa.OpFusedFP:
		tmp, ok := aluEval(u.SubOps[0], s.Regs[u.Src[0]], srcOrZero(s, u, 1), u.Imm)
		if !ok {
			return res, fmt.Errorf("emu: bad fused sub-op %v in %v", u.SubOps[0], u)
		}
		v, ok := aluEval(u.SubOps[1], tmp, srcOrZero(s, u, 2), u.Imm)
		if !ok {
			return res, fmt.Errorf("emu: bad fused sub-op %v in %v", u.SubOps[1], u)
		}
		s.Regs[u.Dst[0]] = v

	case isa.OpSimd2:
		v0, ok := aluEval(u.SubOps[0], s.Regs[u.Src[0]], srcOrZero(s, u, 1), u.Imm)
		if !ok {
			return res, fmt.Errorf("emu: bad simd sub-op %v in %v", u.SubOps[0], u)
		}
		v1, ok := aluEval(u.SubOps[0], s.Regs[u.Src[2]], srcOrZero(s, u, 3), u.Imm)
		if !ok {
			return res, fmt.Errorf("emu: bad simd sub-op %v in %v", u.SubOps[0], u)
		}
		s.Regs[u.Dst[0]] = v0
		s.Regs[u.Dst[1]] = v1

	default:
		a := srcOrZero(s, u, 0)
		b := srcOrZero(s, u, 1)
		v, ok := aluEval(u.Op, a, b, u.Imm)
		if !ok {
			return res, fmt.Errorf("emu: unimplemented opcode %v", u.Op)
		}
		s.Regs[u.Dst[0]] = v
	}
	return res, nil
}

func srcOrZero(s *State, u *isa.Uop, i int) int64 {
	if u.Src[i] == isa.RegNone {
		return 0
	}
	return s.Regs[u.Src[i]]
}

// Run executes uops in order, ignoring assert outcomes (straight-line
// semantics). It returns the number of failed asserts encountered.
func (s *State) Run(uops []isa.Uop) (assertFails int, err error) {
	for i := range uops {
		res, err := s.Step(&uops[i])
		if err != nil {
			return assertFails, fmt.Errorf("uop %d: %w", i, err)
		}
		if res.AssertFailed {
			assertFails++
		}
	}
	return assertFails, nil
}
