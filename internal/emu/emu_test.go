package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parrot/internal/isa"
)

func alu(op isa.Op, d, s1, s2 int) isa.Uop {
	u := isa.NewUop(op)
	u.Dst[0] = isa.GPR(d)
	u.Src[0] = isa.GPR(s1)
	if s2 >= 0 {
		u.Src[1] = isa.GPR(s2)
	}
	return u
}

func alui(op isa.Op, d, s1 int, imm int64) isa.Uop {
	u := isa.NewUop(op)
	u.Dst[0] = isa.GPR(d)
	if s1 >= 0 {
		u.Src[0] = isa.GPR(s1)
	}
	u.Imm = imm
	return u
}

func TestALUSemantics(t *testing.T) {
	s := NewState()
	s.Regs[1] = 10
	s.Regs[2] = 3
	prog := []isa.Uop{
		alu(isa.OpAdd, 3, 1, 2),  // r3 = 13
		alu(isa.OpSub, 4, 1, 2),  // r4 = 7
		alu(isa.OpAnd, 5, 1, 2),  // r5 = 2
		alu(isa.OpOr, 6, 1, 2),   // r6 = 11
		alu(isa.OpXor, 7, 1, 2),  // r7 = 9
		alu(isa.OpShl, 8, 1, 2),  // r8 = 80
		alu(isa.OpShr, 9, 1, 2),  // r9 = 1
		alu(isa.OpMul, 10, 1, 2), // r10 = 30
		alu(isa.OpDiv, 11, 1, 2), // r11 = 3
		alui(isa.OpMovImm, 12, -1, -42),
		alui(isa.OpAddImm, 13, 1, 5), // r13 = 15
	}
	if _, err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{3: 13, 4: 7, 5: 2, 6: 11, 7: 9, 8: 80, 9: 1, 10: 30, 11: 3, 12: -42, 13: 15}
	for r, v := range want {
		if s.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, s.Regs[r], v)
		}
	}
}

func TestDivByZeroIsTotal(t *testing.T) {
	s := NewState()
	s.Regs[1] = 99
	u := alu(isa.OpDiv, 2, 1, 3) // r3 == 0
	if _, err := s.Step(&u); err != nil {
		t.Fatal(err)
	}
	if s.Regs[2] != 0 {
		t.Errorf("div by zero = %d, want 0", s.Regs[2])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := NewState()
	s.Regs[1] = 0x100
	s.Regs[2] = 777
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = isa.GPR(1)
	st.Src[1] = isa.GPR(2)
	st.Imm = 8
	ld := isa.NewUop(isa.OpLoad)
	ld.Dst[0] = isa.GPR(3)
	ld.Src[0] = isa.GPR(1)
	ld.Imm = 8
	if _, err := s.Run([]isa.Uop{st, ld}); err != nil {
		t.Fatal(err)
	}
	if s.Regs[3] != 777 {
		t.Errorf("load = %d, want 777", s.Regs[3])
	}
	if s.Load(0x108) != 777 {
		t.Error("memory cell missing")
	}
}

func TestStoreZeroNormalizes(t *testing.T) {
	s := NewState()
	s.Store(64, 5)
	s.Store(64, 0)
	if len(s.Mem) != 0 {
		t.Error("storing zero must remove the cell")
	}
	o := NewState()
	if !s.Equal(o) {
		t.Error("state with erased zero cell must equal fresh state")
	}
}

func TestCompareFlags(t *testing.T) {
	cases := []struct {
		a, b int64
		want int64
	}{
		{5, 5, isa.FlagZ},
		{3, 5, isa.FlagS | isa.FlagC},
		{5, 3, 0},
		{-1, 1, isa.FlagS}, // signed less, unsigned greater
		{1, -1, isa.FlagC}, // signed greater, unsigned less
	}
	for _, tc := range cases {
		if got := CompareFlags(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareFlags(%d,%d) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCmpBranchInteraction(t *testing.T) {
	s := NewState()
	s.Regs[1] = 7
	cmp := isa.NewUop(isa.OpCmpImm)
	cmp.Src[0] = isa.GPR(1)
	cmp.Imm = 7
	cmp.Dst[0] = isa.RegFlags
	if _, err := s.Step(&cmp); err != nil {
		t.Fatal(err)
	}
	if !isa.CondEQ.Eval(s.Regs[isa.RegFlags]) {
		t.Error("CondEQ should hold after cmp 7,7")
	}
	ok := isa.NewUop(isa.OpAssert)
	ok.Cond = isa.CondEQ
	ok.Taken = true
	ok.Src[0] = isa.RegFlags
	res, err := s.Step(&ok)
	if err != nil || res.AssertFailed {
		t.Errorf("assert eq/T should pass: %v %v", res, err)
	}
	bad := ok
	bad.Taken = false
	res, err = s.Step(&bad)
	if err != nil || !res.AssertFailed {
		t.Errorf("assert eq/NT should fail: %v %v", res, err)
	}
}

func TestFusedCmpBr(t *testing.T) {
	s := NewState()
	s.Regs[1] = 2
	s.Regs[2] = 9
	u := isa.NewUop(isa.OpFusedCmpBr)
	u.Src[0] = isa.GPR(1)
	u.Src[1] = isa.GPR(2)
	u.Dst[0] = isa.RegFlags
	u.Cond = isa.CondLT
	u.Taken = true
	res, err := s.Step(&u)
	if err != nil || res.AssertFailed {
		t.Fatalf("fused cmpbr lt/T on (2,9) must pass: %v %v", res, err)
	}
	if s.Regs[isa.RegFlags] != CompareFlags(2, 9) {
		t.Error("fused cmpbr must write flags like cmp")
	}
}

func TestFusedAluAlu(t *testing.T) {
	// r4 = (r1 + r2) ^ r3
	s := NewState()
	s.Regs[1], s.Regs[2], s.Regs[3] = 6, 7, 5
	u := isa.NewUop(isa.OpFusedAluAlu)
	u.SubOps = [2]isa.Op{isa.OpAdd, isa.OpXor}
	u.Dst[0] = isa.GPR(4)
	u.Src[0] = isa.GPR(1)
	u.Src[1] = isa.GPR(2)
	u.Src[2] = isa.GPR(3)
	if _, err := s.Step(&u); err != nil {
		t.Fatal(err)
	}
	if want := int64((6 + 7) ^ 5); s.Regs[4] != want {
		t.Errorf("fused = %d, want %d", s.Regs[4], want)
	}
}

func TestSimd2(t *testing.T) {
	// r5 = r1+r2; r6 = r3+r4 packed in one uop.
	s := NewState()
	s.Regs[1], s.Regs[2], s.Regs[3], s.Regs[4] = 1, 2, 30, 40
	u := isa.NewUop(isa.OpSimd2)
	u.SubOps[0] = isa.OpAdd
	u.Dst[0], u.Dst[1] = isa.GPR(5), isa.GPR(6)
	u.Src[0], u.Src[1], u.Src[2], u.Src[3] = isa.GPR(1), isa.GPR(2), isa.GPR(3), isa.GPR(4)
	if _, err := s.Step(&u); err != nil {
		t.Fatal(err)
	}
	if s.Regs[5] != 3 || s.Regs[6] != 70 {
		t.Errorf("simd2 = (%d,%d), want (3,70)", s.Regs[5], s.Regs[6])
	}
}

// Property: a fused pair behaves exactly like the two constituent uops.
func TestFusedEquivalenceProperty(t *testing.T) {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor}
	f := func(a, b, c int64, i, j uint8) bool {
		op1 := ops[int(i)%len(ops)]
		op2 := ops[int(j)%len(ops)]

		s1 := NewState()
		s1.Regs[1], s1.Regs[2], s1.Regs[3] = a, b, c
		seq := []isa.Uop{alu(op1, 9, 1, 2), alu(op2, 4, 9, 3)}
		if _, err := s1.Run(seq); err != nil {
			return false
		}

		s2 := NewState()
		s2.Regs[1], s2.Regs[2], s2.Regs[3] = a, b, c
		u := isa.NewUop(isa.OpFusedAluAlu)
		u.SubOps = [2]isa.Op{op1, op2}
		u.Dst[0] = isa.GPR(4)
		u.Src[0], u.Src[1], u.Src[2] = isa.GPR(1), isa.GPR(2), isa.GPR(3)
		if _, err := s2.Step(&u); err != nil {
			return false
		}
		return s1.Regs[4] == s2.Regs[4]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := RandState(rng)
	c := s.Clone()
	if !s.Equal(c) || s.Diff(c) != "" {
		t.Fatal("clone must equal original")
	}
	c.Regs[3]++
	if s.Equal(c) {
		t.Fatal("register change must break equality")
	}
	if s.Diff(c) == "" {
		t.Fatal("Diff must report register change")
	}
	c = s.Clone()
	c.Store(0xdead0, 1)
	if s.Equal(c) || s.Diff(c) == "" {
		t.Fatal("memory change must break equality")
	}
}

// Property: Run is deterministic — same program, same initial state, same
// final state.
func TestRunDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randProg(rng, 40)
		s1 := RandState(rand.New(rand.NewSource(seed + 1)))
		s2 := s1.Clone()
		if _, err := s1.Run(prog); err != nil {
			return false
		}
		if _, err := s2.Run(prog); err != nil {
			return false
		}
		return s1.Equal(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randProg builds a random but well-formed straight-line program.
func randProg(rng *rand.Rand, n int) []isa.Uop {
	ops := []isa.Op{
		isa.OpMov, isa.OpMovImm, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpAddImm, isa.OpMul, isa.OpLoad, isa.OpStore,
		isa.OpCmp, isa.OpCmpImm,
	}
	prog := make([]isa.Uop, 0, n)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		u := isa.NewUop(op)
		switch op {
		case isa.OpMovImm:
			u.Dst[0] = isa.GPR(rng.Intn(16))
			u.Imm = rng.Int63n(1000)
		case isa.OpMov:
			u.Dst[0] = isa.GPR(rng.Intn(16))
			u.Src[0] = isa.GPR(rng.Intn(16))
		case isa.OpAddImm:
			u.Dst[0] = isa.GPR(rng.Intn(16))
			u.Src[0] = isa.GPR(rng.Intn(16))
			u.Imm = rng.Int63n(100)
		case isa.OpLoad:
			u.Dst[0] = isa.GPR(rng.Intn(16))
			u.Src[0] = isa.GPR(rng.Intn(16))
			u.Imm = rng.Int63n(256) * 8
		case isa.OpStore:
			u.Src[0] = isa.GPR(rng.Intn(16))
			u.Src[1] = isa.GPR(rng.Intn(16))
			u.Imm = rng.Int63n(256) * 8
		case isa.OpCmp:
			u.Dst[0] = isa.RegFlags
			u.Src[0] = isa.GPR(rng.Intn(16))
			u.Src[1] = isa.GPR(rng.Intn(16))
		case isa.OpCmpImm:
			u.Dst[0] = isa.RegFlags
			u.Src[0] = isa.GPR(rng.Intn(16))
			u.Imm = rng.Int63n(100)
		default:
			u.Dst[0] = isa.GPR(rng.Intn(16))
			u.Src[0] = isa.GPR(rng.Intn(16))
			u.Src[1] = isa.GPR(rng.Intn(16))
		}
		prog = append(prog, u)
	}
	return prog
}

func TestFPOpsUseFPRegs(t *testing.T) {
	s := NewState()
	s.Regs[isa.FPR(0)] = 4
	s.Regs[isa.FPR(1)] = 6
	u := isa.NewUop(isa.OpFMul)
	u.Dst[0] = isa.FPR(2)
	u.Src[0] = isa.FPR(0)
	u.Src[1] = isa.FPR(1)
	if _, err := s.Step(&u); err != nil {
		t.Fatal(err)
	}
	if s.Regs[isa.FPR(2)] != 24 {
		t.Errorf("fmul = %d, want 24", s.Regs[isa.FPR(2)])
	}
}

func TestBranchUopsHaveNoStateEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := RandState(rng)
	before := s.Clone()
	for _, op := range []isa.Op{isa.OpJmp, isa.OpJmpI, isa.OpCall, isa.OpRet, isa.OpBr, isa.OpNop} {
		u := isa.NewUop(op)
		if op == isa.OpBr {
			u.Src[0] = isa.RegFlags
			u.Cond = isa.CondNE
		}
		if op == isa.OpJmpI {
			u.Src[0] = isa.GPR(3)
		}
		if _, err := s.Step(&u); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Equal(before) {
		t.Errorf("control uops changed state: %s", before.Diff(s))
	}
}
