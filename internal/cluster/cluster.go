package cluster

import (
	"context"
	"errors"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
)

// Config parameterizes a node's cluster layer.
type Config struct {
	// Advertise is this node's base URL as peers reach it
	// (e.g. "http://10.0.0.7:7077").
	Advertise string
	// Peers is the static seed list of every node's advertised URL.
	Peers []string
	// VNodes is the consistent-hash virtual-node count (<=0 = DefaultVNodes).
	VNodes int
	// Probe/suspect/dead knobs; zero values take Registry defaults.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	SuspectAfter  int
	DeadAfter     time.Duration
	// Client tunes the routing client; zero values take ClientConfig
	// defaults.
	Client ClientConfig
	// Probe overrides the health check (nil = GET /readyz on the peer).
	Probe func(ctx context.Context, node string) error
	// Registry receives parrot_cluster_* metrics (nil-safe).
	Registry *telemetry.Registry
	// Log receives cluster events (nil = silent).
	Log *tlog.Logger
	// Chaos injects deterministic faults on the routing and membership
	// paths — partition masks, probe failures, clock skew (nil = inert).
	Chaos *chaos.Injector
}

// Cluster is the façade the serving layer composes: membership, routing,
// the resilient client, and the routing-outcome metric families.
type Cluster struct {
	members *Registry
	cli     *Client

	routeLocal   *telemetry.Counter
	routeRemote  *telemetry.Counter
	routeRescued *telemetry.Counter
	forwardsOK   *telemetry.Counter
	forwardsErr  *telemetry.Counter
	recoveries   *telemetry.Counter
	hopStops     *telemetry.Counter
}

// New builds the cluster layer. The default prober GETs each peer's
// /readyz, so draining or still-prewarming peers are routed around.
func New(cfg Config) *Cluster {
	c := &Cluster{}
	probe := cfg.Probe
	if probe == nil {
		probe = func(ctx context.Context, node string) error {
			return c.cli.nodeClient(node).Ready(ctx)
		}
	}
	c.members = NewRegistry(RegistryConfig{
		Self:          cfg.Advertise,
		Peers:         cfg.Peers,
		VNodes:        cfg.VNodes,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		SuspectAfter:  cfg.SuspectAfter,
		DeadAfter:     cfg.DeadAfter,
		Probe:         probe,
		Registry:      cfg.Registry,
		Log:           cfg.Log,
		Chaos:         cfg.Chaos,
	})
	ccfg := cfg.Client
	ccfg.Registry = cfg.Registry
	ccfg.Log = cfg.Log
	ccfg.Chaos = cfg.Chaos
	c.cli = NewClient(c.members, ccfg)

	reg := cfg.Registry
	c.routeLocal = reg.Counter("parrot_cluster_route_total",
		"Cell routing decisions by destination.", "dest", "local")
	c.routeRemote = reg.Counter("parrot_cluster_route_total",
		"Cell routing decisions by destination.", "dest", "remote")
	c.routeRescued = reg.Counter("parrot_cluster_route_total",
		"Cell routing decisions by destination.", "dest", "rescued")
	c.forwardsOK = reg.Counter("parrot_cluster_forwards_total",
		"Non-owned /v1/run requests proxied to their ring owner.", "outcome", "ok")
	c.forwardsErr = reg.Counter("parrot_cluster_forwards_total",
		"Non-owned /v1/run requests proxied to their ring owner.", "outcome", "error")
	c.recoveries = reg.Counter("parrot_cluster_recoveries_total",
		"Cells served despite their first-choice owner being unavailable.")
	c.hopStops = reg.Counter("parrot_cluster_hop_guard_total",
		"Requests served locally because they already carried the forwarded hop guard.")
	return c
}

// Start launches the membership probe loop.
func (c *Cluster) Start() { c.members.Start() }

// Stop terminates the probe loop.
func (c *Cluster) Stop() { c.members.Stop() }

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.members.Self() }

// Members exposes the membership registry.
func (c *Cluster) Members() *Registry { return c.members }

// Owner resolves a digest's current ring owner and whether it is this
// node. An empty ring (cannot happen — self is always a member) owns
// everything locally.
func (c *Cluster) Owner(digest string) (node string, self bool) {
	node, ok := c.members.Owner(digest)
	if !ok {
		return c.Self(), true
	}
	return node, node == c.Self()
}

// Execute routes one cell request to its owner (with retries, hedging and
// failover) and maintains the route/recovery counters. A returned
// ErrRouteLocal means the caller should run the cell locally — it is this
// node's to serve after ring changes or because every peer is gated.
func (c *Cluster) Execute(ctx context.Context, req proto.RunRequest, digest string) (*proto.RunResponse, RouteInfo, error) {
	resp, info, err := c.cli.RunRemote(ctx, req, digest)
	if err == nil {
		c.routeRemote.Inc()
		if info.Recovered {
			c.recoveries.Inc()
		}
	} else if errors.Is(err, ErrRouteLocal) && info.Recovered {
		// The cell fell back to this node after remote failures; the caller
		// will serve it locally — count the recovery here so the zero-failed-
		// cells gate sees it regardless of which landing path saved the cell.
		c.recoveries.Inc()
	}
	return resp, info, err
}

// NoteLocal records a cell served locally because this node owns it.
func (c *Cluster) NoteLocal() { c.routeLocal.Inc() }

// NoteRescued records a cell rescued locally after its remote route
// failed — the fan-out's last line of defence (and a recovery).
func (c *Cluster) NoteRescued() {
	c.routeRescued.Inc()
	c.recoveries.Inc()
}

// NoteForward records a /v1/run proxy outcome.
func (c *Cluster) NoteForward(ok bool) {
	if ok {
		c.forwardsOK.Inc()
	} else {
		c.forwardsErr.Inc()
	}
}

// NoteHopStop records a request served locally under the hop guard.
func (c *Cluster) NoteHopStop() { c.hopStops.Inc() }

// Status snapshots the cluster for /clusterz.
func (c *Cluster) Status() proto.ClusterStatus {
	ring, epoch := c.members.Ring()
	inRing := make(map[string]bool, ring.Len())
	for _, n := range ring.Nodes() {
		inRing[n] = true
	}
	now := time.Now()
	st := proto.ClusterStatus{
		Self:    c.Self(),
		Epoch:   epoch,
		VNodes:  ring.VNodes(),
		Members: ring.Nodes(),
	}
	for _, n := range c.members.Snapshot() {
		st.Nodes = append(st.Nodes, proto.ClusterNode{
			ID:          n.ID,
			Self:        n.Self,
			State:       n.State.String(),
			InRing:      inRing[n.ID],
			Breaker:     c.cli.BreakerState(n.ID, now),
			ConsecFails: n.ConsecFails,
			Probes:      n.Probes,
			Fails:       n.Fails,
			Reports:     n.Reports,
			Flaps:       n.Flaps,
			Rejoins:     n.Rejoins,
			LastErr:     n.LastErr,
		})
	}
	return st
}
