package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
)

// ForwardedHeader is the hop guard: cluster-internal requests carry it
// (value = the sending node's ID) and a receiving node never re-forwards a
// request that has it — one hop maximum, no forwarding loops even when two
// nodes transiently disagree about ring ownership.
const ForwardedHeader = "X-Parrot-Forwarded"

// ErrRouteLocal is returned by RunRemote when, after ring changes or
// failovers, the best route for the digest is this node itself — the
// caller should execute locally (it may well be the new owner).
var ErrRouteLocal = errors.New("cluster: route is local")

// ClientConfig parameterizes the routing client.
type ClientConfig struct {
	// MaxAttempts bounds routed attempts per cell across nodes (<=0 = 4).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential retry backoff
	// (<=0 = 25ms / 1s); each delay is jittered ±50%.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeMin/HedgeMax clamp the hedged-request delay derived from the
	// target node's observed p99 (<=0 = 20ms / 2s). HedgeMin also serves
	// as the delay floor while too few samples exist.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// BreakerThreshold/BreakerCooldown parameterize per-node breakers
	// (<=0 = 3 / 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// LoadFactor is the bounded-load headroom for failover target picks
	// (<=0 = 1.25): a substitute node is skipped while it carries more
	// than fair-share × factor of this client's in-flight cells.
	LoadFactor float64
	// Registry receives parrot_cluster_* client metrics (nil-safe).
	Registry *telemetry.Registry
	// Log receives routing events (nil = silent).
	Log *tlog.Logger
	// Chaos injects deterministic faults on the routed path: site
	// "cluster.partition" masks this node's view of a peer (nil = inert).
	Chaos *chaos.Injector
}

// Client routes cell requests to ring owners with retries, hedging and
// failover. One Client serves a whole node; all methods are safe for
// concurrent use.
type Client struct {
	reg *Registry
	cfg ClientConfig
	log *tlog.Logger

	mu       sync.Mutex
	clients  map[string]*client.Client
	breakers map[string]*Breaker
	lats     map[string]*latWindow
	inflight map[string]int

	retries      *telemetry.Counter
	reroutes     *telemetry.Counter
	hedges       *telemetry.Counter
	hedgesWon    *telemetry.Counter
	hedgesLost   *telemetry.Counter
	hedgeCancels *telemetry.Counter
	breakerOpen  *telemetry.Counter
}

// NewClient builds the routing client over a membership registry.
func NewClient(reg *Registry, cfg ClientConfig) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 20 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 2 * time.Second
	}
	if cfg.LoadFactor <= 0 {
		cfg.LoadFactor = 1.25
	}
	c := &Client{
		reg:      reg,
		cfg:      cfg,
		log:      cfg.Log.With(tlog.F("component", "cluster.client")),
		clients:  make(map[string]*client.Client),
		breakers: make(map[string]*Breaker),
		lats:     make(map[string]*latWindow),
		inflight: make(map[string]int),
	}
	mreg := cfg.Registry
	c.retries = mreg.Counter("parrot_cluster_retries_total",
		"Routed cell attempts beyond the first (backoff retries).")
	c.reroutes = mreg.Counter("parrot_cluster_reroutes_total",
		"Cells re-routed because the ring epoch changed between attempts.")
	c.hedges = mreg.Counter("parrot_cluster_hedges_total",
		"Hedged second requests fired after the p99-derived delay.")
	c.hedgesWon = mreg.Counter("parrot_cluster_hedges_won_total",
		"Hedged requests that completed before the primary.")
	c.hedgesLost = mreg.Counter("parrot_cluster_hedges_lost_total",
		"Hedged requests beaten by the primary.")
	c.hedgeCancels = mreg.Counter("parrot_cluster_hedge_cancels_total",
		"Loser requests cancelled because the other leg finished first.")
	c.breakerOpen = mreg.Counter("parrot_cluster_breaker_opens_total",
		"Per-node circuit breaker open transitions.")
	return c
}

// nodeClient returns (lazily building) the HTTP client for a peer. Peer
// clients disable the library's own transport retry — this layer owns the
// retry budget — and stamp the hop guard so receivers never re-forward.
func (c *Client) nodeClient(node string) *client.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.clients[node]
	if !ok {
		cl = client.New(node,
			client.WithRetry(client.RetryPolicy{MaxAttempts: 1}),
			client.WithHeader(ForwardedHeader, c.reg.Self()))
		c.clients[node] = cl
	}
	return cl
}

func (c *Client) breaker(node string) *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[node]
	if !ok {
		b = NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		c.breakers[node] = b
	}
	return b
}

func (c *Client) lat(node string) *latWindow {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.lats[node]
	if !ok {
		w = &latWindow{}
		c.lats[node] = w
	}
	return w
}

func (c *Client) loadOf(node string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight[node]
}

func (c *Client) addLoad(node string, d int) {
	c.mu.Lock()
	c.inflight[node] += d
	c.mu.Unlock()
}

// BreakerState returns a peer breaker's display state ("closed" when no
// traffic has minted one yet).
func (c *Client) BreakerState(node string, now time.Time) string {
	c.mu.Lock()
	b := c.breakers[node]
	c.mu.Unlock()
	if b == nil {
		return "closed"
	}
	return b.State(now)
}

// RouteInfo reports how a routed cell was ultimately served.
type RouteInfo struct {
	// Node is the peer that produced the response.
	Node string
	// Attempts counts routed attempts (1 = first try succeeded).
	Attempts int
	// Hedged reports whether a hedge fired; HedgeWon whether it won.
	Hedged   bool
	HedgeWon bool
	// Recovered reports that the cell was NOT served by its first-choice
	// target: a retry landed elsewhere, a hedge won, or the ring changed
	// under the cell. The smoke test's "zero failed cells under node
	// death" gate counts these.
	Recovered bool
}

// RunRemote executes a cell request on its ring owner, failing over to
// successors with bounded load, retrying with backoff + jitter, and
// hedging slow attempts. Every attempt re-snapshots the ring, so a
// membership change mid-matrix re-routes automatically. Returns
// ErrRouteLocal when the best eligible target is this node.
func (c *Client) RunRemote(ctx context.Context, req proto.RunRequest, digest string) (*proto.RunResponse, RouteInfo, error) {
	var (
		info      RouteInfo
		lastErr   error
		firstPick string
		prevEpoch uint64
		havePrev  bool
	)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, info, err
		}
		ring, epoch := c.reg.Ring()
		if havePrev && epoch != prevEpoch {
			c.reroutes.Inc()
			info.Recovered = true
		}
		prevEpoch, havePrev = epoch, true

		target, ok := c.pick(ring, digest, attempt)
		if !ok {
			if lastErr != nil {
				return nil, info, fmt.Errorf("cluster: no eligible node for %.12s… (last error: %w)", digest, lastErr)
			}
			return nil, info, fmt.Errorf("cluster: no eligible node for %.12s…", digest)
		}
		if firstPick == "" {
			firstPick = target
		}
		if target == c.reg.Self() {
			if lastErr != nil {
				// Falling back to self after a failed remote attempt is a
				// recovery, not plain local ownership.
				info.Recovered = true
			}
			return nil, info, ErrRouteLocal
		}

		info.Attempts = attempt + 1
		if attempt > 0 {
			c.retries.Inc()
		}
		// Per-attempt deadline carving: split the remaining budget evenly
		// over the attempts still available (floor 10ms), so one attempt
		// stuck on a slow or partitioned node cannot eat the whole deadline
		// — the cut-off attempt fails over to a successor with its own
		// slice. The serve client re-stamps X-Parrot-Deadline from this
		// carved ctx, so the peer sees the slice, not the full budget.
		actx := ctx
		if d, ok := ctx.Deadline(); ok {
			slice := time.Until(d) / time.Duration(c.cfg.MaxAttempts-attempt)
			if slice < 10*time.Millisecond {
				slice = 10 * time.Millisecond
			}
			var acancel context.CancelFunc
			actx, acancel = context.WithTimeout(ctx, slice)
			defer acancel()
		}
		resp, node, hedged, hedgeWon, err := c.runHedged(actx, ring, digest, target, req)
		if hedged {
			info.Hedged = true
		}
		if err == nil {
			info.Node = node
			info.HedgeWon = hedgeWon
			if node != firstPick || attempt > 0 || hedgeWon {
				info.Recovered = true
			}
			return resp, info, nil
		}
		lastErr = err
		if !sleepCtx(ctx, c.backoff(attempt)) {
			return nil, info, ctx.Err()
		}
	}
	return nil, info, fmt.Errorf("cluster: cell %.12s… failed after %d attempts: %w",
		digest, c.cfg.MaxAttempts, lastErr)
}

// pick chooses the attempt-th eligible target in ring order for a digest.
// Eligibility excludes dead peers and open breakers; the bounded-load rule
// skips nodes already carrying more than fair-share × LoadFactor of this
// client's in-flight cells (last resort wins regardless). Attempt 0 on a
// healthy ring is always the true owner, keeping cache placement exact.
func (c *Client) pick(ring *Ring, digest string, attempt int) (string, bool) {
	cands := ring.Candidates(digest, 0)
	if len(cands) == 0 {
		return "", false
	}
	now := time.Now()
	elig := make([]string, 0, len(cands))
	total := 0
	for _, n := range cands {
		if n != c.reg.Self() {
			if c.reg.StateOf(n) == StateDead || !c.breaker(n).Allow(now) {
				continue
			}
		}
		elig = append(elig, n)
		total += c.loadOf(n)
	}
	if len(elig) == 0 {
		// Everything gated: fall back to the raw owner so the retry loop
		// surfaces a real error (or the half-open trial goes through).
		return cands[0], true
	}
	i := attempt
	if i >= len(elig) {
		i = len(elig) - 1
	}
	if i == 0 && elig[0] == cands[0] {
		// A healthy owner is never load-skipped on the first attempt: cache
		// placement must stay exact, concurrency notwithstanding.
		return elig[0], true
	}
	// Failover picks spread by bounded load: advance past overloaded
	// substitutes, never past the end.
	cap := BoundedCap(total+1, len(elig), c.cfg.LoadFactor)
	for i < len(elig)-1 && c.loadOf(elig[i]) >= cap {
		i++
	}
	return elig[i], true
}

// hedgeTarget returns the best secondary for a hedge: the next eligible
// non-self candidate after the primary.
func (c *Client) hedgeTarget(ring *Ring, digest, primary string) string {
	now := time.Now()
	for _, n := range ring.Candidates(digest, 0) {
		if n == primary || n == c.reg.Self() {
			continue
		}
		if c.reg.StateOf(n) == StateDead || !c.breaker(n).Allow(now) {
			continue
		}
		return n
	}
	return ""
}

// hedgeDelay derives the hedge trigger from the node's observed p99,
// clamped into [HedgeMin, HedgeMax]. Sparse samples hedge conservatively.
func (c *Client) hedgeDelay(node string) time.Duration {
	w := c.lat(node)
	p99, n := w.p99()
	if n < 8 {
		return c.cfg.HedgeMax
	}
	d := time.Duration(float64(p99) * 1.25)
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		d = c.cfg.HedgeMax
	}
	return d
}

// runHedged issues one attempt against target, firing a hedged second
// request to the next candidate if the primary is slower than the
// p99-derived delay. First success wins; the loser is cancelled.
func (c *Client) runHedged(ctx context.Context, ring *Ring, digest, target string, req proto.RunRequest) (resp *proto.RunResponse, node string, hedged, hedgeWon bool, err error) {
	type outcome struct {
		resp  *proto.RunResponse
		err   error
		node  string
		hedge bool
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)

	issue := func(n string, hedge bool) {
		c.addLoad(n, 1)
		defer c.addLoad(n, -1)
		t0 := time.Now()
		// Chaos site "cluster.partition": a masked (self → n) pair behaves
		// exactly like an unreachable peer — transport-class error, breaker
		// and membership evidence included.
		var r *proto.RunResponse
		e := c.cfg.Chaos.PartitionErr("cluster.partition", c.reg.Self(), n)
		if e == nil {
			r, e = c.nodeClient(n).Run(cctx, req)
		}
		el := time.Since(t0)
		opened := c.breaker(n).Observe(e == nil, time.Now())
		if opened {
			c.breakerOpen.Inc()
			c.log.Warn("breaker opened", tlog.F("peer", n), tlog.F("err", errStr(e)))
		}
		if e == nil {
			c.lat(n).record(el)
			c.reg.ReportSuccess(n)
		} else if cctx.Err() == nil && isTransportErr(e) {
			// Hard connect errors are passive death evidence; HTTP-level
			// errors (4xx/5xx bodies) are not.
			c.reg.ReportFailure(n, e)
		}
		ch <- outcome{resp: r, err: e, node: n, hedge: hedge}
	}

	go issue(target, false)
	pending := 1
	timer := time.NewTimer(c.hedgeDelay(target))
	defer timer.Stop()

	var firstErr error
	for pending > 0 {
		select {
		case <-ctx.Done():
			return nil, "", hedged, false, ctx.Err()
		case <-timer.C:
			if hedged {
				continue
			}
			if sec := c.hedgeTarget(ring, digest, target); sec != "" {
				hedged = true
				c.hedges.Inc()
				pending++
				go issue(sec, true)
			}
		case o := <-ch:
			pending--
			if o.err == nil {
				if o.hedge {
					c.hedgesWon.Inc()
				} else if hedged {
					c.hedgesLost.Inc()
				}
				if pending > 0 {
					// The other leg is still in flight: cancelling it now
					// (instead of letting it run to completion) is what keeps
					// hedging from doubling fleet load under overload.
					c.hedgeCancels.Inc()
				}
				cancel() // release the loser
				return o.resp, o.node, hedged, o.hedge, nil
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", o.node, o.err)
			}
			if pending == 0 && !hedged {
				return nil, "", hedged, false, firstErr
			}
			// Primary failed with a hedge still pending (or vice versa):
			// wait for the survivor.
		}
	}
	return nil, "", hedged, false, firstErr
}

// backoff returns the jittered exponential delay before attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	// ±50% jitter, deterministic-free: scheduling noise is the point.
	return d/2 + time.Duration(int64(keyHash(fmt.Sprintf("%d-%d", time.Now().UnixNano(), attempt)))%int64(d+1))/2
}

// sleepCtx sleeps unless the context ends first; reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// isTransportErr reports whether an error is a transport-level failure
// (dial refused, reset, timeout) rather than an HTTP-level response.
func isTransportErr(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) && client.IsTransportErr(err)
}

// latWindow is a small sliding window of request latencies; p99 over 128
// samples is cheap enough to sort on demand (hedge setup only).
type latWindow struct {
	mu  sync.Mutex
	buf [128]time.Duration
	n   int // total recorded
}

func (w *latWindow) record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.n%len(w.buf)] = d
	w.n++
	w.mu.Unlock()
}

// p99 returns the window's 99th percentile and the sample count.
func (w *latWindow) p99() (time.Duration, int) {
	w.mu.Lock()
	n := w.n
	if n > len(w.buf) {
		n = len(w.buf)
	}
	tmp := make([]time.Duration, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(float64(n)*0.99) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx], n
}
