package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
	"parrot/internal/workload"
)

// mustRules parses a chaos spec or fails the test.
func mustRules(t *testing.T, spec string) []chaos.Rule {
	t.Helper()
	rules, err := chaos.Parse(spec)
	if err != nil {
		t.Fatalf("chaos.Parse(%q): %v", spec, err)
	}
	return rules
}

// TestPartitionMaskDemotesPeer: a chaos partition masking the n1→n2 link
// must walk n2 through the full failure-detector lifecycle — suspect after
// SuspectAfter probes, dead (and out of the ring) after DeadAfter — while
// the unmasked n3 stays alive. The mask is stable per (seed, site, pair),
// so the run is fully deterministic.
func TestPartitionMaskDemotesPeer(t *testing.T) {
	inj := chaos.New(7, mustRules(t, "site=cluster.partition p=1 match=->http://n2"))
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	r := NewRegistry(RegistryConfig{
		Self:          "http://n1",
		Peers:         []string{"http://n2", "http://n3"},
		VNodes:        16,
		ProbeInterval: time.Second,
		SuspectAfter:  2,
		DeadAfter:     5 * time.Second,
		Jitter:        0.001,
		Chaos:         inj,
		Now:           clk.Now,
	})

	step(r, clk)
	step(r, clk)
	if st := r.StateOf("http://n2"); st != StateSuspect {
		t.Fatalf("n2 state after %d masked probes = %v, want suspect", 2, st)
	}
	if st := r.StateOf("http://n3"); st != StateAlive {
		t.Fatalf("n3 state = %v, want alive (link n1→n3 is not masked)", st)
	}

	clk.Advance(5 * time.Second)
	step(r, clk)
	if st := r.StateOf("http://n2"); st != StateDead {
		t.Fatalf("n2 state after DeadAfter under the mask = %v, want dead", st)
	}
	ring, _ := r.Ring()
	if ring.Len() != 2 {
		t.Fatalf("ring has %d members with n2 dead, want 2", ring.Len())
	}
	if _, ok := ring.Owner("anything"); !ok {
		t.Fatal("shrunken ring cannot route")
	}

	// The healthy peer accumulated clean probes the whole time.
	for _, n := range r.Snapshot() {
		if n.ID == "http://n3" && (n.Probes == 0 || n.Fails != 0) {
			t.Fatalf("n3 = %+v, want probed and never failing", n)
		}
	}
}

// TestClockSkewFiresProbesEarly: chaos site "cluster.clock" shifts the
// registry's view of now, so a skewed node probes peers whose jittered
// deadlines have not actually arrived — exactly how a fast-drifting host
// misbehaves. The control registry with no chaos probes nothing.
func TestClockSkewFiresProbesEarly(t *testing.T) {
	boot := time.Unix(1_700_000_000, 0)
	build := func(inj *chaos.Injector) *Registry {
		return NewRegistry(RegistryConfig{
			Self:          "http://n1",
			Peers:         []string{"http://n2", "http://n3"},
			VNodes:        16,
			ProbeInterval: time.Second,
			Jitter:        0.001,
			Chaos:         inj,
			Now:           func() time.Time { return boot },
		})
	}

	control := build(nil)
	control.Tick(boot)
	for _, n := range control.Snapshot() {
		if n.Probes != 0 {
			t.Fatalf("control probed %s before its interval elapsed", n.ID)
		}
	}

	skewed := build(chaos.New(7, mustRules(t, "site=cluster.clock p=1 skew=1h")))
	skewed.Tick(boot)
	for _, n := range skewed.Snapshot() {
		if n.Self {
			continue
		}
		if n.Probes != 1 {
			t.Fatalf("skewed clock: %s probes = %d, want 1 (an hour of skew makes every deadline due)", n.ID, n.Probes)
		}
	}
}

// hedgeResponse builds a wire response that passes the serve client's
// result-digest verification, so fake peers can serve real payloads.
func hedgeResponse(t *testing.T) *proto.RunResponse {
	t.Helper()
	app, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	res := core.Run(config.Get(config.TON), app, 2000)
	return &proto.RunResponse{
		Digest:       experiments.RunSpec{Model: config.Get(config.TON), App: app, Insts: 2000}.Normalize().Digest(),
		Result:       res,
		ResultDigest: experiments.ResultDigest(res),
		Disposition:  "exact",
	}
}

// TestHedgeCancelReleasesLoser: when the hedge completes first, the still
// in-flight primary must be cancelled — counted by
// parrot_cluster_hedge_cancels_total — instead of running to completion and
// doubling fleet load under exactly the conditions that made it slow.
func TestHedgeCancelReleasesLoser(t *testing.T) {
	resp := hedgeResponse(t)
	serve := func(delay time.Duration) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-r.Context().Done():
					return // cancelled loser: exit promptly
				}
			}
			json.NewEncoder(w).Encode(resp)
		}))
	}
	slow := serve(30 * time.Second)
	fast := serve(0)
	t.Cleanup(slow.Close)
	t.Cleanup(fast.Close)

	reg := NewRegistry(RegistryConfig{
		Self:   "http://self",
		Peers:  []string{slow.URL, fast.URL},
		VNodes: 16,
	})
	c := NewClient(reg, ClientConfig{
		MaxAttempts: 2,
		HedgeMin:    time.Millisecond,
		HedgeMax:    25 * time.Millisecond, // sparse samples hedge at the max
		Registry:    telemetry.NewRegistry(),
	})

	// Find a digest the slow peer owns, so the hedge target is the fast one.
	ring, _ := reg.Ring()
	digest := ""
	for i := 0; i < 4096; i++ {
		d := fmt.Sprintf("cell-%d", i)
		if owner, ok := ring.Owner(d); ok && owner == slow.URL {
			digest = d
			break
		}
	}
	if digest == "" {
		t.Fatal("no digest owned by the slow peer in 4096 probes")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, info, err := c.RunRemote(ctx, proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000}, digest)
	if err != nil {
		t.Fatalf("RunRemote: %v", err)
	}
	if out.Digest != resp.Digest {
		t.Fatalf("digest = %s, want the canned cell %s", out.Digest, resp.Digest)
	}
	if !info.Hedged || !info.HedgeWon || info.Node != fast.URL {
		t.Fatalf("info = %+v, want a winning hedge served by the fast peer", info)
	}
	if got := c.hedgesWon.Value(); got != 1 {
		t.Fatalf("hedges won = %v, want 1", got)
	}
	if got := c.hedgeCancels.Value(); got != 1 {
		t.Fatalf("hedge cancels = %v, want 1 (the slow primary was still in flight)", got)
	}
}
