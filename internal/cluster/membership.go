package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
)

// State is a peer's health in the membership state machine.
type State uint8

// Node states. The lifecycle is alive → suspect → dead → (rejoined ⇒
// alive). Suspect nodes stay in the ring — ownership must not churn on a
// single dropped probe — but the routing client prefers to hedge or fail
// over around them. Dead nodes leave the ring (bumping the epoch) and
// rejoin it on the first successful probe.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

// String returns the state label used in metrics and status bodies.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// NodeStatus is one peer's observable membership record.
type NodeStatus struct {
	ID   string `json:"id"`
	Self bool   `json:"self"`
	// State is "alive", "suspect" or "dead".
	State State `json:"-"`
	// ConsecFails counts probe/report failures since the last success.
	ConsecFails int `json:"consecFails"`
	// Probes/Fails count active health checks; passive traffic reports
	// (connect errors surfaced by the routing client) land in Reports.
	Probes  uint64 `json:"probes"`
	Fails   uint64 `json:"fails"`
	Reports uint64 `json:"reports"`
	// Flaps counts suspect→alive recoveries; Rejoins counts dead→alive.
	Flaps   uint64 `json:"flaps"`
	Rejoins uint64 `json:"rejoins"`
	LastErr string `json:"lastErr,omitempty"`
}

// nodeState is the registry's internal per-peer record.
type nodeState struct {
	st        NodeStatus
	nextProbe time.Time
	suspectAt time.Time
}

// RegistryConfig parameterizes a membership registry.
type RegistryConfig struct {
	// Self is this node's advertised ID (base URL). It is always a ring
	// member and is never probed.
	Self string
	// Peers is the static seed list of every node's advertised ID; Self is
	// added if absent.
	Peers []string
	// VNodes is the ring's virtual-node count (<=0 = DefaultVNodes).
	VNodes int
	// ProbeInterval paces per-peer health checks (<=0 = 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (<=0 = 1s).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that moves an alive
	// peer to suspect (<=0 = 2).
	SuspectAfter int
	// DeadAfter is how long a peer may stay suspect (still failing) before
	// it is declared dead and leaves the ring (<=0 = 5s).
	DeadAfter time.Duration
	// Jitter spreads probe scheduling: each next-probe delay is the
	// interval scaled by a uniform factor in [1-Jitter, 1+Jitter]
	// (<=0 = 0.2), so a fleet booted together does not probe in lockstep.
	Jitter float64
	// Probe performs one health check (nil = always healthy; the daemon
	// wires a /readyz GET, so draining or still-prewarming peers are
	// routed around rather than treated as live).
	Probe func(ctx context.Context, node string) error
	// Registry receives parrot_cluster_* membership metrics (nil-safe).
	Registry *telemetry.Registry
	// Log receives membership transitions (nil = silent).
	Log *tlog.Logger
	// Now is the clock (nil = time.Now; tests inject a fake).
	Now func() time.Time
	// Chaos injects deterministic faults on the membership path: site
	// "cluster.probe" fails or delays health checks, "cluster.partition"
	// masks probes to a peer, "cluster.clock" skews this node's probe
	// clock (nil = inert).
	Chaos *chaos.Injector
}

// Registry tracks peer health and derives the routing ring. All methods
// are safe for concurrent use.
type Registry struct {
	cfg RegistryConfig
	log *tlog.Logger

	mu    sync.Mutex
	nodes map[string]*nodeState
	order []string // stable iteration order (sorted at build)
	ring  *Ring
	epoch uint64
	rng   *rand.Rand

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	probesOK, probesFail *telemetry.Counter
	transitions          map[State]*telemetry.Counter
	rejoins              *telemetry.Counter
}

// NewRegistry builds a registry over the seed list. Every node starts
// alive (optimistic: a booting cluster routes immediately; genuinely down
// peers are demoted within SuspectAfter probes + DeadAfter).
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 5 * time.Second
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 0.2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	r := &Registry{
		cfg:    cfg,
		log:    cfg.Log.With(tlog.F("component", "cluster")),
		nodes:  make(map[string]*nodeState),
		rng:    rand.New(rand.NewSource(int64(keyHash(cfg.Self)) ^ 0x5eed)),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}

	reg := cfg.Registry
	r.probesOK = reg.Counter("parrot_cluster_probes_total",
		"Peer health probes by outcome.", "outcome", "ok")
	r.probesFail = reg.Counter("parrot_cluster_probes_total",
		"Peer health probes by outcome.", "outcome", "fail")
	r.transitions = map[State]*telemetry.Counter{
		StateAlive: reg.Counter("parrot_cluster_transitions_total",
			"Membership state transitions by target state.", "to", "alive"),
		StateSuspect: reg.Counter("parrot_cluster_transitions_total",
			"Membership state transitions by target state.", "to", "suspect"),
		StateDead: reg.Counter("parrot_cluster_transitions_total",
			"Membership state transitions by target state.", "to", "dead"),
	}
	r.rejoins = reg.Counter("parrot_cluster_rejoins_total",
		"Dead peers that rejoined the ring on a successful probe.")
	reg.RegisterCollector(r.collect)

	now := cfg.Now()
	seen := map[string]bool{cfg.Self: true}
	r.addNode(cfg.Self, true, now)
	for _, p := range cfg.Peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.addNode(p, false, now)
	}
	r.rebuildRing()
	return r
}

func (r *Registry) addNode(id string, self bool, now time.Time) {
	r.nodes[id] = &nodeState{
		st:        NodeStatus{ID: id, Self: self, State: StateAlive},
		nextProbe: now.Add(r.jitteredInterval()),
	}
	r.order = append(r.order, id)
}

// jitteredInterval returns the next probe delay: interval × U[1-j, 1+j].
func (r *Registry) jitteredInterval() time.Duration {
	j := r.cfg.Jitter
	f := 1 - j + 2*j*r.rng.Float64()
	return time.Duration(float64(r.cfg.ProbeInterval) * f)
}

// collect emits membership gauges from one coherent snapshot.
func (r *Registry) collect(emit telemetry.Emit) {
	counts := map[State]int{}
	r.mu.Lock()
	for _, n := range r.nodes {
		counts[n.st.State]++
	}
	epoch, members := r.epoch, len(r.ring.Nodes())
	r.mu.Unlock()
	for _, s := range []State{StateAlive, StateSuspect, StateDead} {
		emit("parrot_cluster_nodes", "gauge", "Peers by membership state.",
			float64(counts[s]), "state", s.String())
	}
	emit("parrot_cluster_ring_epoch", "gauge",
		"Monotonic ring version; bumps on every membership change.", float64(epoch))
	emit("parrot_cluster_ring_members", "gauge",
		"Members currently in the routing ring (non-dead).", float64(members))
}

// Start launches the probe loop. Stop (or never starting) leaves the
// registry usable as a static ring.
func (r *Registry) Start() {
	go func() {
		defer close(r.doneCh)
		// A coarse scheduler tick: fine-grained per-node due times are kept
		// in nextProbe, the ticker only bounds wake-up latency.
		tick := r.cfg.ProbeInterval / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-t.C:
				r.Tick(r.cfg.Now())
			}
		}
	}()
}

// Stop terminates the probe loop.
func (r *Registry) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	select {
	case <-r.doneCh:
	case <-time.After(2 * time.Second):
	}
}

// Tick probes every peer whose jittered deadline has passed, then applies
// the results to the state machine. Exposed so tests drive the machine
// with a fake clock and no goroutines.
func (r *Registry) Tick(now time.Time) {
	// Chaos site "cluster.clock": skew this node's view of the probe clock,
	// so suspect/dead timers fire early or late the way a drifting host's
	// would. The skew shifts scheduling and the state machine coherently —
	// the same (skewed) now flows into both.
	now = now.Add(r.cfg.Chaos.Skew("cluster.clock"))
	r.mu.Lock()
	due := make([]string, 0, len(r.order))
	for _, id := range r.order {
		n := r.nodes[id]
		if n.st.Self || now.Before(n.nextProbe) {
			continue
		}
		n.nextProbe = now.Add(r.jitteredInterval())
		due = append(due, id)
	}
	r.mu.Unlock()

	for _, id := range due {
		err := r.probe(id)
		r.observe(id, err, true, now)
	}
}

// probe runs one health check outside the registry lock. Chaos faults come
// first: a partition mask or injected probe error is indistinguishable from
// a genuinely unreachable peer, which is the point.
func (r *Registry) probe(id string) error {
	if err := r.cfg.Chaos.PartitionErr("cluster.partition", r.cfg.Self, id); err != nil {
		return err
	}
	if err := r.cfg.Chaos.Inject("cluster.probe", id); err != nil {
		return err
	}
	if r.cfg.Probe == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	return r.cfg.Probe(ctx, id)
}

// ReportFailure is the passive failure detector: the routing client calls
// it on hard connect errors, so a killed peer is demoted on the next
// traffic attempt instead of waiting for the probe cycle.
func (r *Registry) ReportFailure(id string, err error) {
	r.observe(id, err, false, r.cfg.Now())
}

// ReportSuccess feeds successful traffic back as liveness evidence.
func (r *Registry) ReportSuccess(id string) {
	r.observe(id, nil, false, r.cfg.Now())
}

// observe applies one health observation to the state machine.
func (r *Registry) observe(id string, err error, probe bool, now time.Time) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if !ok || n.st.Self {
		r.mu.Unlock()
		return
	}
	if probe {
		n.st.Probes++
	} else {
		n.st.Reports++
	}

	var to State
	changed := false
	rejoined := false
	if err == nil {
		if probe {
			r.probesOK.Inc()
		}
		n.st.ConsecFails = 0
		n.st.LastErr = ""
		if n.st.State != StateAlive {
			from := n.st.State
			n.st.State = StateAlive
			to, changed = StateAlive, true
			if from == StateDead {
				n.st.Rejoins++
				rejoined = true
				r.rejoins.Inc()
			} else {
				n.st.Flaps++
			}
		}
	} else {
		if probe {
			r.probesFail.Inc()
		}
		n.st.Fails++
		n.st.ConsecFails++
		n.st.LastErr = err.Error()
		switch n.st.State {
		case StateAlive:
			if n.st.ConsecFails >= r.cfg.SuspectAfter {
				n.st.State = StateSuspect
				n.suspectAt = now
				to, changed = StateSuspect, true
			}
		case StateSuspect:
			if now.Sub(n.suspectAt) >= r.cfg.DeadAfter {
				n.st.State = StateDead
				to, changed = StateDead, true
			}
		}
	}

	var epoch uint64
	ringChanged := false
	consecFails := n.st.ConsecFails
	if changed {
		r.transitions[to].Inc()
		// Ring membership only tracks deadness: alive↔suspect keeps
		// ownership stable (minimal disruption), dead↔anything rebuilds.
		if to == StateDead || rejoined {
			r.rebuildRing()
			ringChanged = true
			epoch = r.epoch
		}
	}
	r.mu.Unlock()

	if changed && r.log.Enabled(tlog.LevelInfo) {
		fields := []tlog.Field{
			tlog.F("peer", id), tlog.F("state", to.String()),
			tlog.F("consecFails", consecFails),
		}
		if ringChanged {
			fields = append(fields, tlog.F("ringEpoch", epoch))
		}
		if err != nil {
			fields = append(fields, tlog.F("err", err.Error()))
		}
		r.log.Info("peer state change", fields...)
	}
}

// rebuildRing recomputes the ring over non-dead members. Callers hold mu.
func (r *Registry) rebuildRing() {
	members := make([]string, 0, len(r.order))
	for _, id := range r.order {
		if r.nodes[id].st.State != StateDead {
			members = append(members, id)
		}
	}
	r.ring = NewRing(members, r.cfg.VNodes)
	r.epoch++
}

// Ring returns the current routing ring and its epoch. The ring is
// immutable; compare epochs to detect membership changes mid-flight.
func (r *Registry) Ring() (*Ring, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring, r.epoch
}

// Owner returns the current ring owner of a digest.
func (r *Registry) Owner(digest string) (string, bool) {
	ring, _ := r.Ring()
	return ring.Owner(digest)
}

// StateOf returns a peer's current state (dead if unknown).
func (r *Registry) StateOf(id string) State {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		return n.st.State
	}
	return StateDead
}

// Self returns this node's advertised ID.
func (r *Registry) Self() string { return r.cfg.Self }

// Snapshot returns every node's status, in stable order.
func (r *Registry) Snapshot() []NodeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStatus, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.nodes[id].st)
	}
	return out
}
