// Package cluster lets N parrotd processes serve as one logical service.
// It is deliberately gossip-free: the membership set is a static seed list
// (every node knows every node), liveness comes from periodic health-check
// probes against each peer's /readyz, and routing is consistent hashing of
// RunSpec digests onto the healthy subset. The pieces:
//
//   - Ring: a virtual-node consistent-hash ring over node IDs. Each cell
//     digest has exactly one owner, so its cache entry and singleflight
//     dedup live on exactly one node, and removing a node moves only the
//     digests that node owned (the minimal-disruption invariant, pinned by
//     a testing/quick property).
//   - Registry: per-node health state machine (alive → suspect → dead →
//     rejoined) driven by jittered probes plus passive traffic reports.
//     Ring membership excludes dead nodes; every membership change bumps
//     an epoch that in-flight fan-outs observe to re-route mid-matrix.
//   - Breaker: a per-node circuit breaker that stops hammering a peer
//     that fails fast, with a half-open trial after a cooldown.
//   - Client: the resilient routing client — bounded retry with
//     exponential backoff + jitter, a hedged second request after a
//     p99-derived delay, breaker integration, and bounded-load failover
//     onto ring successors when the owner is unavailable.
//   - Cluster: the façade the serving layer composes — ownership lookups,
//     the forwarding client, and the parrot_cluster_* metric families.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring: build a new one on every
// membership change (the Registry does). Immutability is what makes the
// epoch protocol race-free — readers snapshot a (ring, epoch) pair and
// route against it without locks.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by h
	nodes  []string    // distinct members, sorted
}

// DefaultVNodes is the virtual-node count per member. 64 keeps the
// expected ownership imbalance across a handful of nodes under ~15% while
// the ring stays a few KiB.
const DefaultVNodes = 64

// NewRing builds a ring over the given members (deduplicated; order does
// not matter — the ring is a pure function of the member set and vnodes).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	nodes := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		nodes = append(nodes, m)
	}
	sort.Strings(nodes)
	r := &Ring{
		vnodes: vnodes,
		nodes:  nodes,
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: vnodeHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Ties broken by node name so the ring stays a pure function of
		// the member set even on (astronomically unlikely) hash collisions.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// vnodeHash positions one virtual node on the circle. The raw FNV-64a sum
// is run through a murmur-style finalizer: FNV's high bits barely avalanche
// on short strings (node URLs differing in one port digit land in a handful
// of top-byte buckets), and since ring arcs are ordered by the full hash,
// that clustering would skew ownership shares several-fold no matter how
// many vnodes are used.
func vnodeHash(node string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(v)))
	return fmix64(h.Sum64())
}

// fmix64 is the 64-bit murmur3 finalizer: a cheap full-avalanche bijection.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// keyHash maps a cell digest onto the circle. RunSpec digests are hex
// SHA-256, so the leading 16 hex digits are already uniform; anything else
// (tests, ad-hoc keys) falls back to FNV.
func keyHash(digest string) uint64 {
	if len(digest) >= 16 {
		if v, err := strconv.ParseUint(digest[:16], 16, 64); err == nil {
			return v
		}
	}
	h := fnv.New64a()
	h.Write([]byte(digest))
	return fmix64(h.Sum64())
}

// Nodes returns the member set, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// succ returns the index of the first ring point at or after h.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning a digest: the first virtual node
// clockwise from the digest's position. The cell's cache entry and
// singleflight dedup live on exactly this node.
func (r *Ring) Owner(digest string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.succ(keyHash(digest))].node, true
}

// Candidates returns up to k distinct members in ring order starting at
// the digest's owner — the retry-elsewhere preference list. k <= 0 means
// all members.
func (r *Ring) Candidates(digest string, k int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if k <= 0 || k > len(r.nodes) {
		k = len(r.nodes)
	}
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	start := r.succ(keyHash(digest))
	for i := 0; i < len(r.points) && len(out) < k; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// OwnerBounded is the bounded-load variant of Owner: the owner is skipped
// when its current load has reached cap, walking clockwise to the next
// member under the bound (the last candidate is returned regardless, so a
// fully loaded ring still routes). load is the caller's per-node in-flight
// or assignment count; cap is typically BoundedCap of the batch size.
//
// Ownership for cache placement must use Owner — OwnerBounded is for
// spreading execution (hedges, failover) without dogpiling one substitute.
func (r *Ring) OwnerBounded(digest string, load func(node string) int, cap int) (string, bool) {
	cands := r.Candidates(digest, 0)
	if len(cands) == 0 {
		return "", false
	}
	if cap <= 0 {
		return cands[0], true
	}
	for _, n := range cands[:len(cands)-1] {
		if load(n) < cap {
			return n, true
		}
	}
	return cands[len(cands)-1], true
}

// BoundedCap derives the per-node load bound for distributing total items
// over n members with headroom factor (<=1 means the fair share exactly):
// ceil(total/n · factor), at least 1.
func BoundedCap(total, n int, factor float64) int {
	if n <= 0 {
		return total
	}
	if factor < 1 {
		factor = 1
	}
	c := int(float64(total)/float64(n)*factor + 0.9999)
	if c < 1 {
		c = 1
	}
	return c
}

// String renders a compact ring description.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes × %d vnodes)", len(r.nodes), r.vnodes)
}
