package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for driving Tick deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// probeScript lets a test flip a peer between healthy and failing.
type probeScript struct {
	mu      sync.Mutex
	failing map[string]bool
}

func (p *probeScript) set(node string, fail bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failing == nil {
		p.failing = map[string]bool{}
	}
	p.failing[node] = fail
}

func (p *probeScript) probe(_ context.Context, node string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failing[node] {
		return errors.New("connection refused")
	}
	return nil
}

func testRegistry(t *testing.T) (*Registry, *fakeClock, *probeScript) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	script := &probeScript{}
	r := NewRegistry(RegistryConfig{
		Self:          "http://n1",
		Peers:         []string{"http://n2", "http://n3"},
		VNodes:        16,
		ProbeInterval: time.Second,
		SuspectAfter:  2,
		DeadAfter:     5 * time.Second,
		Jitter:        0.001,
		Probe:         script.probe,
		Now:           clk.Now,
	})
	return r, clk, script
}

// step advances past the jittered probe interval and ticks once.
func step(r *Registry, clk *fakeClock) { r.Tick(clk.Advance(2 * time.Second)) }

func TestMembershipAllAliveAtBoot(t *testing.T) {
	r, _, _ := testRegistry(t)
	ring, epoch := r.Ring()
	if ring.Len() != 3 {
		t.Fatalf("boot ring has %d members, want 3", ring.Len())
	}
	if epoch != 1 {
		t.Fatalf("boot epoch = %d, want 1", epoch)
	}
	for _, st := range r.Snapshot() {
		if st.State != StateAlive {
			t.Fatalf("node %s boots %v, want alive", st.ID, st.State)
		}
	}
}

// TestMembershipFlap: alive → suspect → alive. A flap must not touch ring
// membership or the epoch — ownership stays put on a dropped probe or two.
func TestMembershipFlap(t *testing.T) {
	r, clk, script := testRegistry(t)
	_, epoch0 := r.Ring()

	script.set("http://n2", true)
	step(r, clk) // fail 1: still alive (SuspectAfter=2)
	if got := r.StateOf("http://n2"); got != StateAlive {
		t.Fatalf("after one failed probe: %v, want alive", got)
	}
	step(r, clk) // fail 2: suspect
	if got := r.StateOf("http://n2"); got != StateSuspect {
		t.Fatalf("after two failed probes: %v, want suspect", got)
	}
	if ring, epoch := r.Ring(); ring.Len() != 3 || epoch != epoch0 {
		t.Fatalf("suspect changed the ring (len %d, epoch %d→%d); suspects must stay members",
			ring.Len(), epoch0, epoch)
	}

	script.set("http://n2", false)
	step(r, clk) // recovery
	if got := r.StateOf("http://n2"); got != StateAlive {
		t.Fatalf("after recovery probe: %v, want alive", got)
	}
	if _, epoch := r.Ring(); epoch != epoch0 {
		t.Fatalf("flap bumped epoch %d→%d; alive↔suspect must not rebuild the ring", epoch0, epoch)
	}
	for _, st := range r.Snapshot() {
		if st.ID == "http://n2" {
			if st.Flaps != 1 || st.Rejoins != 0 {
				t.Fatalf("flap counters = flaps %d rejoins %d, want 1/0", st.Flaps, st.Rejoins)
			}
		}
	}
}

// TestMembershipSuspectTimeoutAndRejoin: the full lifecycle. Staying
// suspect past DeadAfter declares the peer dead (ring shrinks, epoch
// bumps); the first healthy probe afterwards rejoins it (ring grows,
// epoch bumps again, ownership restored bit-exactly).
func TestMembershipSuspectTimeoutAndRejoin(t *testing.T) {
	r, clk, script := testRegistry(t)
	bootRing, epoch0 := r.Ring()

	script.set("http://n3", true)
	step(r, clk) // fail 1
	step(r, clk) // fail 2 → suspect (suspectAt = now)
	if got := r.StateOf("http://n3"); got != StateSuspect {
		t.Fatalf("state = %v, want suspect", got)
	}
	step(r, clk) // +2s of suspicion, still < DeadAfter
	if got := r.StateOf("http://n3"); got != StateSuspect {
		t.Fatalf("state = %v, want still suspect before DeadAfter", got)
	}
	step(r, clk) // +4s
	step(r, clk) // +6s ≥ DeadAfter → dead
	if got := r.StateOf("http://n3"); got != StateDead {
		t.Fatalf("state = %v, want dead after DeadAfter of suspicion", got)
	}
	deadRing, epoch1 := r.Ring()
	if deadRing.Len() != 2 {
		t.Fatalf("dead peer still in ring (len %d)", deadRing.Len())
	}
	if epoch1 != epoch0+1 {
		t.Fatalf("death bumped epoch %d→%d, want +1", epoch0, epoch1)
	}
	for k := uint64(0); k < 256; k++ {
		if o, _ := deadRing.Owner(digestFor(k * 0x9e3779b9)); o == "http://n3" {
			t.Fatalf("dead node still owns digest %s", digestFor(k))
		}
	}

	script.set("http://n3", false)
	step(r, clk) // rejoin
	if got := r.StateOf("http://n3"); got != StateAlive {
		t.Fatalf("state = %v, want alive after rejoin probe", got)
	}
	joinRing, epoch2 := r.Ring()
	if joinRing.Len() != 3 || epoch2 != epoch1+1 {
		t.Fatalf("rejoin: ring len %d epoch %d, want 3 members and epoch %d", joinRing.Len(), epoch2, epoch1+1)
	}
	// Rejoined ring assigns exactly as the boot ring did.
	for k := uint64(0); k < 1024; k++ {
		d := digestFor(k * 0x9e3779b97f4a7c15)
		a, _ := bootRing.Owner(d)
		b, _ := joinRing.Owner(d)
		if a != b {
			t.Fatalf("ownership of %s not restored on rejoin: %s vs %s", d, a, b)
		}
	}
	for _, st := range r.Snapshot() {
		if st.ID == "http://n3" && st.Rejoins != 1 {
			t.Fatalf("rejoins = %d, want 1", st.Rejoins)
		}
	}
}

// TestMembershipPassiveReports: traffic-path ReportFailure demotes a peer
// without waiting for the probe cycle, and ReportSuccess revives it.
func TestMembershipPassiveReports(t *testing.T) {
	r, _, _ := testRegistry(t)
	err := errors.New("dial tcp: connection refused")
	r.ReportFailure("http://n2", err)
	r.ReportFailure("http://n2", err)
	if got := r.StateOf("http://n2"); got != StateSuspect {
		t.Fatalf("two failure reports: %v, want suspect", got)
	}
	r.ReportSuccess("http://n2")
	if got := r.StateOf("http://n2"); got != StateAlive {
		t.Fatalf("success report: %v, want alive", got)
	}
	for _, st := range r.Snapshot() {
		if st.ID == "http://n2" {
			if st.Reports != 3 || st.Probes != 0 {
				t.Fatalf("reports/probes = %d/%d, want 3/0", st.Reports, st.Probes)
			}
		}
	}
}

// TestMembershipSelfNeverProbed: observations about self are ignored — a
// node cannot demote itself out of its own ring.
func TestMembershipSelfNeverProbed(t *testing.T) {
	r, clk, script := testRegistry(t)
	script.set("http://n1", true)
	for i := 0; i < 10; i++ {
		step(r, clk)
	}
	r.ReportFailure("http://n1", errors.New("nope"))
	if got := r.StateOf("http://n1"); got != StateAlive {
		t.Fatalf("self state = %v, want alive always", got)
	}
	for _, st := range r.Snapshot() {
		if st.ID == "http://n1" && st.Probes != 0 {
			t.Fatalf("self was probed %d times", st.Probes)
		}
	}
}

// TestMembershipUnknownPeerIgnored: reports about nodes outside the seed
// list are dropped, and StateOf treats them as dead.
func TestMembershipUnknownPeerIgnored(t *testing.T) {
	r, _, _ := testRegistry(t)
	r.ReportFailure("http://stranger", errors.New("x"))
	r.ReportSuccess("http://stranger")
	if got := r.StateOf("http://stranger"); got != StateDead {
		t.Fatalf("unknown peer state = %v, want dead", got)
	}
	if _, epoch := r.Ring(); epoch != 1 {
		t.Fatalf("unknown peer changed epoch to %d", epoch)
	}
}

// TestMembershipConcurrentObservations hammers the registry from many
// goroutines; run with -race this pins the locking discipline.
func TestMembershipConcurrentObservations(t *testing.T) {
	r, clk, script := testRegistry(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				switch j % 4 {
				case 0:
					r.ReportFailure("http://n2", errors.New("x"))
				case 1:
					r.ReportSuccess("http://n2")
				case 2:
					ring, _ := r.Ring()
					ring.Owner(digestFor(uint64(i*1000 + j)))
				case 3:
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			script.set("http://n3", j%2 == 0)
			step(r, clk)
		}
	}()
	wg.Wait()
}
