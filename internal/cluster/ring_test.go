package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// digestFor renders a 64-bit key as the 16-hex-digit prefix keyHash parses,
// mimicking real RunSpec digests (hex SHA-256).
func digestFor(k uint64) string { return fmt.Sprintf("%016x", k) }

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return out
}

func TestRingOrderIndependent(t *testing.T) {
	base := members(5)
	r1 := NewRing(base, 32)
	perm := append([]string(nil), base...)
	rand.New(rand.NewSource(7)).Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	r2 := NewRing(perm, 32)
	for k := uint64(0); k < 2048; k++ {
		d := digestFor(k * 0x9e3779b97f4a7c15)
		o1, _ := r1.Owner(d)
		o2, _ := r2.Owner(d)
		if o1 != o2 {
			t.Fatalf("owner of %s differs by member order: %s vs %s", d, o1, o2)
		}
	}
}

func TestRingDedupesMembers(t *testing.T) {
	r := NewRing([]string{"a", "b", "a", "", "b"}, 8)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicates and empties dropped)", r.Len())
	}
}

// TestRingMinimalDisruption pins the consistent-hashing contract: removing
// one member reassigns only the digests that member owned, and re-adding
// it restores the original assignment exactly.
func TestRingMinimalDisruption(t *testing.T) {
	base := members(6)
	full := NewRing(base, DefaultVNodes)

	property := func(key uint64, victimIdx uint8) bool {
		victim := base[int(victimIdx)%len(base)]
		shrunk := make([]string, 0, len(base)-1)
		for _, m := range base {
			if m != victim {
				shrunk = append(shrunk, m)
			}
		}
		small := NewRing(shrunk, DefaultVNodes)

		d := digestFor(key)
		before, _ := full.Owner(d)
		after, _ := small.Owner(d)
		if before != victim && after != before {
			t.Logf("digest %s moved %s → %s though %s was removed", d, before, after, victim)
			return false
		}
		if before == victim && after == victim {
			return false // removed member must not own anything
		}
		// Rejoin restores ownership bit-exactly.
		restored, _ := NewRing(append(shrunk, victim), DefaultVNodes).Owner(d)
		return restored == before
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRingCandidatesDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing(members(5), 16)
	for k := uint64(0); k < 512; k++ {
		d := digestFor(k * 0xdeadbeef12345)
		owner, _ := r.Owner(d)
		cands := r.Candidates(d, 0)
		if len(cands) != r.Len() {
			t.Fatalf("Candidates(k<=0) returned %d of %d members", len(cands), r.Len())
		}
		if cands[0] != owner {
			t.Fatalf("first candidate %s is not the owner %s", cands[0], owner)
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("duplicate candidate %s for %s", c, d)
			}
			seen[c] = true
		}
		if got := r.Candidates(d, 2); len(got) != 2 || got[0] != cands[0] || got[1] != cands[1] {
			t.Fatalf("Candidates(k=2) = %v, want prefix of %v", got, cands[:2])
		}
	}
}

func TestRingOwnerBounded(t *testing.T) {
	r := NewRing(members(4), 16)
	d := digestFor(0x1234567890abcdef)
	cands := r.Candidates(d, 0)

	// Unloaded: bounded owner is the plain owner.
	zero := func(string) int { return 0 }
	if got, _ := r.OwnerBounded(d, zero, 3); got != cands[0] {
		t.Fatalf("unloaded OwnerBounded = %s, want owner %s", got, cands[0])
	}
	// Owner at cap: next candidate takes over.
	loaded := func(n string) int {
		if n == cands[0] {
			return 3
		}
		return 0
	}
	if got, _ := r.OwnerBounded(d, loaded, 3); got != cands[1] {
		t.Fatalf("loaded OwnerBounded = %s, want successor %s", got, cands[1])
	}
	// Everyone at cap: last candidate is returned regardless, never a miss.
	full := func(string) int { return 99 }
	if got, ok := r.OwnerBounded(d, full, 3); !ok || got != cands[len(cands)-1] {
		t.Fatalf("saturated OwnerBounded = %s,%v, want last candidate %s", got, ok, cands[len(cands)-1])
	}
	// cap <= 0 disables the bound.
	if got, _ := r.OwnerBounded(d, full, 0); got != cands[0] {
		t.Fatalf("cap<=0 OwnerBounded = %s, want owner %s", got, cands[0])
	}
}

func TestRingOwnershipRoughlyBalanced(t *testing.T) {
	n := 5
	r := NewRing(members(n), DefaultVNodes)
	counts := map[string]int{}
	const samples = 20000
	for i := 0; i < samples; i++ {
		o, _ := r.Owner(digestFor(uint64(i) * 0x9e3779b97f4a7c15))
		counts[o]++
	}
	fair := samples / n
	for node, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Fatalf("ownership badly skewed: %s owns %d of %d (fair %d)", node, c, samples, fair)
		}
	}
}

func TestBoundedCap(t *testing.T) {
	cases := []struct {
		total, n int
		factor   float64
		want     int
	}{
		{308, 3, 1.25, 129}, // ceil(308/3 · 1.25)
		{10, 5, 1.0, 2},
		{1, 4, 1.25, 1}, // at least 1
		{7, 0, 1.25, 7}, // no members: everything fits anywhere
		{10, 5, 0.5, 2}, // factor < 1 clamped to fair share
	}
	for _, c := range cases {
		if got := BoundedCap(c.total, c.n, c.factor); got != c.want {
			t.Errorf("BoundedCap(%d,%d,%g) = %d, want %d", c.total, c.n, c.factor, got, c.want)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if c := r.Candidates("anything", 3); c != nil {
		t.Fatalf("empty ring returned candidates %v", c)
	}
	if _, ok := r.OwnerBounded("anything", func(string) int { return 0 }, 1); ok {
		t.Fatal("empty ring claimed a bounded owner")
	}
}
