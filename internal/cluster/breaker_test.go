package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 2*time.Second)

	for i := 0; i < 2; i++ {
		if opened := b.Observe(false, now); opened {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused traffic after %d failures", i+1)
		}
	}
	if opened := b.Observe(false, now); !opened {
		t.Fatal("third failure did not open the breaker")
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	if got := b.State(now); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 2*time.Second)
	b.Observe(false, now)
	b.Observe(false, now)
	b.Observe(true, now) // streak broken
	b.Observe(false, now)
	b.Observe(false, now)
	if !b.Allow(now) {
		t.Fatal("breaker opened though no 3-failure streak occurred")
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 2*time.Second)
	for i := 0; i < 3; i++ {
		b.Observe(false, now)
	}

	later := now.Add(2 * time.Second)
	if !b.Allow(later) {
		t.Fatal("breaker did not admit the half-open trial after cooldown")
	}
	if b.Allow(later) {
		t.Fatal("breaker admitted a second concurrent half-open trial")
	}
	if got := b.State(later); got != "half_open" {
		t.Fatalf("state = %q, want half_open", got)
	}

	// Successful trial closes the circuit fully.
	b.Observe(true, later)
	if !b.Allow(later) || !b.Allow(later) {
		t.Fatal("closed breaker should admit traffic freely")
	}
	if got := b.State(later); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerFailedTrialReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 2*time.Second)
	for i := 0; i < 3; i++ {
		b.Observe(false, now)
	}
	trialAt := now.Add(2 * time.Second)
	if !b.Allow(trialAt) {
		t.Fatal("no half-open trial admitted")
	}
	if opened := b.Observe(false, trialAt); !opened {
		t.Fatal("failed half-open trial did not re-open the circuit")
	}
	if b.Allow(trialAt.Add(time.Second)) {
		t.Fatal("re-opened breaker admitted traffic before a fresh cooldown")
	}
	if !b.Allow(trialAt.Add(2 * time.Second)) {
		t.Fatal("re-opened breaker never re-admitted a trial")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		b.Observe(false, now)
	}
	if b.Allow(now.Add(time.Second)) {
		t.Fatal("default cooldown should be 2s, traffic admitted at 1s")
	}
	if !b.Allow(now.Add(2 * time.Second)) {
		t.Fatal("default cooldown elapsed but no trial admitted")
	}
}
