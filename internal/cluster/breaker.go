package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a per-node circuit breaker: after Threshold consecutive
// failures the circuit opens and Allow refuses traffic for Cooldown, then
// admits exactly one half-open trial; the trial's outcome closes or
// re-opens the circuit. It protects the fleet from burning its bounded
// retry budget on a peer that fails fast (connection refused to a dead
// process returns in microseconds — without a breaker every cell would
// still pay the attempt).
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     breakerState
	fails     int
	openedAt  time.Time
	opens     uint64
}

// NewBreaker builds a breaker (threshold <=0 = 3 failures, cooldown <=0 =
// 2s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent now. In the open state it
// returns false until the cooldown elapses, then transitions to half-open
// and admits a single trial (concurrent callers see false until the trial
// resolves via Observe).
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: one trial already admitted
		return false
	}
}

// Observe records a request outcome. Success closes the circuit; failure
// re-opens a half-open circuit immediately and opens a closed one at the
// threshold. Returns true when this observation opened the circuit (the
// caller counts breaker opens).
func (b *Breaker) Observe(ok bool, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.fails = 0
		return false
	}
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
		return true
	}
	if b.state == breakerOpen {
		// Failures while already open (e.g. a hedge resolving late) keep
		// the circuit open but restart nothing.
		return false
	}
	return false
}

// State returns the current state label ("closed", "open", "half_open"),
// resolving an elapsed cooldown as "half_open" for display.
func (b *Breaker) State(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			return "half_open"
		}
		return "open"
	default:
		return "half_open"
	}
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
