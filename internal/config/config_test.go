package config

import "testing"

func TestAllModelsPresent(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("models = %d, want 7 (Table 3.1)", len(all))
	}
	want := map[ModelID]bool{N: true, W: true, TN: true, TW: true, TON: true, TOW: true, TOS: true}
	for _, m := range all {
		if !want[m.ID] {
			t.Errorf("unexpected model %s", m.ID)
		}
		delete(want, m.ID)
	}
	if len(want) != 0 {
		t.Errorf("missing models: %v", want)
	}
	if len(Standard()) != 6 {
		t.Errorf("standard set = %d, want 6 (TOS is a reference)", len(Standard()))
	}
}

func TestConfigSpaceStructure(t *testing.T) {
	// Table 3.1: two dimensions — width class and front-end capability.
	cases := []struct {
		id       ModelID
		width    string
		tc, optz bool
	}{
		{N, "narrow", false, false},
		{TN, "narrow", true, false},
		{TON, "narrow", true, true},
		{W, "wide", false, false},
		{TW, "wide", true, false},
		{TOW, "wide", true, true},
		{TOS, "split", true, true},
	}
	for _, tc := range cases {
		m := Get(tc.id)
		if m.WidthClass() != tc.width {
			t.Errorf("%s width class = %s, want %s", tc.id, m.WidthClass(), tc.width)
		}
		if m.TraceCache != tc.tc || m.Optimize != tc.optz {
			t.Errorf("%s capability = (%v,%v), want (%v,%v)",
				tc.id, m.TraceCache, m.Optimize, tc.tc, tc.optz)
		}
	}
}

func TestWideDoublesBandwidth(t *testing.T) {
	n, w := Get(N), Get(W)
	if w.Core.Width != 2*n.Core.Width || w.DecodeWidth != 2*n.DecodeWidth {
		t.Error("W must double the narrow machine's width")
	}
	if w.CoreAreaK <= 1.5*n.CoreAreaK {
		t.Error("W's area factor must reflect the doubled structures")
	}
}

func TestPredictorSplit(t *testing.T) {
	// §4.2: N uses a 4K-entry branch predictor; PARROT models use 2K
	// branch + 2K trace predictor entries.
	if Get(N).BPEntries != 4096 {
		t.Errorf("N BP entries = %d", Get(N).BPEntries)
	}
	ton := Get(TON)
	if ton.BPEntries != 2048 || ton.TPredEntries != 2048 {
		t.Errorf("TON predictors = %d/%d, want 2048/2048", ton.BPEntries, ton.TPredEntries)
	}
}

func TestSameWidthBaseline(t *testing.T) {
	for id, want := range map[ModelID]ModelID{
		TN: N, TON: N, TW: W, TOW: W, TOS: N, N: N, W: W,
	} {
		m := Get(id)
		if got := m.SameWidthBaseline(); got != want {
			t.Errorf("%s baseline = %s, want %s", id, got, want)
		}
	}
}

func TestSplitConfiguration(t *testing.T) {
	m := Get(TOS)
	if !m.Split || m.HotCore.Width <= m.Core.Width {
		t.Error("TOS must pair a narrow cold core with a wide hot core")
	}
	if m.SwitchPenalty <= 0 {
		t.Error("split model needs a state-switch penalty")
	}
	if m.CoreAreaK <= Get(TOW).CoreAreaK {
		t.Error("two cores must cost more area than one wide core")
	}
}

func TestAreaOrdering(t *testing.T) {
	// Leakage-area factors must order by hardware content.
	order := []ModelID{N, TN, TON, W, TW, TOW, TOS}
	prevNarrow := 0.0
	for _, id := range order[:3] {
		k := Get(id).CoreAreaK
		if k <= prevNarrow {
			t.Errorf("area K not increasing at %s", id)
		}
		prevNarrow = k
	}
	if Get(W).CoreAreaK <= Get(TON).CoreAreaK {
		t.Error("wide core must exceed narrow PARROT in area")
	}
}

func TestEnergyParams(t *testing.T) {
	m := Get(TOW)
	p := (&m).EnergyParams()
	if p.Width != 8 || p.DecodeWidth != 8 {
		t.Errorf("params = %+v", p)
	}
	tos := Get(TOS)
	if hp := tos.HotEnergyParams(); hp.Width != 8 {
		t.Errorf("TOS hot params width = %d, want wide", hp.Width)
	}
	ton := Get(TON)
	if hp := ton.HotEnergyParams(); hp.Width != 4 {
		t.Error("unified model hot params must match its single core")
	}
}

func TestUnknownModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown model must panic")
		}
	}()
	Get("BOGUS")
}

func TestTraceSettingsShared(t *testing.T) {
	for _, id := range []ModelID{TN, TW, TON, TOW, TOS} {
		m := Get(id)
		if m.TCFrames != 512 || m.TCWays != 4 {
			t.Errorf("%s trace cache geometry %d/%d", id, m.TCFrames, m.TCWays)
		}
		if m.HotThreshold == 0 {
			t.Errorf("%s hot threshold unset", id)
		}
		if m.Optimize && m.BlazeThreshold <= m.HotThreshold {
			t.Errorf("%s blazing threshold %d must exceed hot threshold %d",
				id, m.BlazeThreshold, m.HotThreshold)
		}
	}
}
