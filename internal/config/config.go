// Package config defines the seven machine models of the study (Tables 3.1
// and 3.2): the two-dimensional configuration space of core width (narrow /
// wide / split) by front-end capability (baseline / selective trace cache /
// trace cache with dynamic optimization).
//
//	          baseline   +trace cache   +trace cache & optimizer
//	narrow    N          TN             TON
//	wide      W          TW             TOW
//	split     -          -              TOS (narrow cold + wide hot)
package config

import (
	"fmt"

	"parrot/internal/energy"
	"parrot/internal/mem"
	"parrot/internal/ooo"
	"parrot/internal/opt"
)

// ModelID names one of the seven configurations.
type ModelID string

// The configuration space of §3.3.
const (
	N   ModelID = "N"   // 4-wide reference OOO machine
	W   ModelID = "W"   // theoretical 8-wide machine, all stages wide
	TN  ModelID = "TN"  // N + selective trace cache
	TW  ModelID = "TW"  // W + selective trace cache
	TON ModelID = "TON" // N + trace cache + dynamic optimizer
	TOW ModelID = "TOW" // W + trace cache + dynamic optimizer
	TOS ModelID = "TOS" // split: narrow cold core + wide hot core + optimizer
)

// Model is a complete machine configuration.
type Model struct {
	ID          ModelID
	Description string

	// Cold front-end.
	FetchWidth  int  // instructions fetched per cycle
	DecodeWidth int  // instructions decoded per cycle (slot 0 complex-capable)
	FrontDepth  int  // fetch-to-dispatch depth: branch misprediction refill
	BPEntries   int  // gshare table entries
	BPHistBits  uint // gshare history length
	BTBEntries  int
	RASDepth    int

	// Trace subsystem (PARROT models).
	TraceCache     bool
	TCFrames       int
	TCWays         int
	TraceFetchUops int // uops supplied per cycle from the trace cache
	TPredEntries   int
	HotEntries     int
	HotWays        int
	HotThreshold   uint32
	BlazeEntries   int
	BlazeWays      int
	BlazeThreshold uint32
	Optimize       bool
	OptConfig      opt.Config

	// Execution cores. Split models use Core for cold and HotCore for hot;
	// unified models share Core.
	Split   bool
	Core    ooo.Config
	HotCore ooo.Config

	// SwitchPenalty is the split-core state-switch stall in cycles.
	SwitchPenalty int

	// CoreAreaK is the core area relative to the standard OOO core, the K
	// of the paper's leakage formula (trace structures and the optimizer
	// contribute area; the wide core roughly doubles it).
	CoreAreaK float64

	Mem mem.HierarchyConfig
}

// baseline returns the pieces shared by every model.
func baseline() Model {
	return Model{
		FrontDepth: 10,
		BTBEntries: 2048,
		RASDepth:   16,
		Mem:        mem.DefaultHierarchy(),
	}
}

// traceDefaults fills the PARROT trace-subsystem settings shared by all
// trace-cache models: 512-frame 4-way trace cache of 64-uop frames,
// 2K-entry trace predictor alongside a 2K-entry branch predictor (§4.2),
// hot-filter threshold 8 and the "relatively high" blazing threshold 32.
func traceDefaults(m *Model) {
	m.TraceCache = true
	m.TCFrames = 512
	m.TCWays = 4
	m.TPredEntries = 2048
	m.BPEntries = 2048
	m.BPHistBits = 8
	m.HotEntries = 256
	m.HotWays = 4
	m.HotThreshold = 8
	m.BlazeEntries = 128
	m.BlazeWays = 4
	m.BlazeThreshold = 32
}

// Get returns the named model configuration.
func Get(id ModelID) Model {
	m := baseline()
	m.ID = id
	switch id {
	case N:
		m.Description = "standard 4-wide super-scalar out-of-order reference"
		m.FetchWidth, m.DecodeWidth = 4, 4
		m.BPEntries, m.BPHistBits = 4096, 8
		m.Core = ooo.Narrow()
		m.TraceFetchUops = 0
		m.CoreAreaK = 1.0

	case W:
		m.Description = "theoretical 8-wide machine: all stages wide"
		m.FetchWidth, m.DecodeWidth = 8, 8
		m.FrontDepth = 12
		m.BPEntries, m.BPHistBits = 4096, 8
		m.Core = ooo.Wide()
		m.CoreAreaK = 1.95

	case TN:
		m.Description = "narrow machine with selective trace cache"
		m.FetchWidth, m.DecodeWidth = 4, 4
		m.Core = ooo.Narrow()
		traceDefaults(&m)
		m.TraceFetchUops = 8
		m.CoreAreaK = 1.13

	case TW:
		m.Description = "wide machine with selective trace cache"
		m.FetchWidth, m.DecodeWidth = 8, 8
		m.FrontDepth = 12
		m.Core = ooo.Wide()
		traceDefaults(&m)
		m.TraceFetchUops = 16
		m.CoreAreaK = 2.08

	case TON:
		m.Description = "narrow PARROT: trace cache + gradual dynamic optimization"
		m.FetchWidth, m.DecodeWidth = 4, 4
		m.Core = ooo.Narrow()
		traceDefaults(&m)
		m.TraceFetchUops = 8
		m.Optimize = true
		m.OptConfig = opt.AllOptimizations()
		m.CoreAreaK = 1.18

	case TOW:
		m.Description = "wide PARROT: trace cache + gradual dynamic optimization"
		m.FetchWidth, m.DecodeWidth = 8, 8
		m.FrontDepth = 12
		m.Core = ooo.Wide()
		traceDefaults(&m)
		m.TraceFetchUops = 16
		m.Optimize = true
		m.OptConfig = opt.AllOptimizations()
		m.CoreAreaK = 2.13

	case TOS:
		m.Description = "split PARROT: narrow cold core, wide hot core (conceptual reference)"
		m.FetchWidth, m.DecodeWidth = 4, 4
		m.Core = ooo.Narrow()
		m.HotCore = ooo.Wide()
		m.Split = true
		m.SwitchPenalty = 4
		traceDefaults(&m)
		m.TraceFetchUops = 16
		m.Optimize = true
		m.OptConfig = opt.AllOptimizations()
		m.CoreAreaK = 2.75

	default:
		panic(fmt.Sprintf("config: unknown model %q", id))
	}
	return m
}

// All returns every model in presentation order.
func All() []Model {
	ids := []ModelID{N, TN, TON, W, TW, TOW, TOS}
	out := make([]Model, len(ids))
	for i, id := range ids {
		out[i] = Get(id)
	}
	return out
}

// Standard returns the six models of the main results (TOS is presented
// only as a reference for future development, §4).
func Standard() []Model {
	ids := []ModelID{N, TN, TON, W, TW, TOW}
	out := make([]Model, len(ids))
	for i, id := range ids {
		out[i] = Get(id)
	}
	return out
}

// EnergyParams derives the energy-model scaling parameters of a model.
func (m *Model) EnergyParams() energy.Params {
	return energy.Params{
		Width:       m.Core.Width,
		DecodeWidth: m.DecodeWidth,
		IQSize:      m.Core.IQSize,
		ROBSize:     m.Core.ROBSize,
		BPEntries:   m.BPEntries,
	}
}

// HotEnergyParams derives the scaling parameters of the hot core (split
// models; equals EnergyParams for unified ones except decode, which the hot
// pipeline does not use).
func (m *Model) HotEnergyParams() energy.Params {
	core := m.Core
	if m.Split {
		core = m.HotCore
	}
	return energy.Params{
		Width:       core.Width,
		DecodeWidth: m.DecodeWidth,
		IQSize:      core.IQSize,
		ROBSize:     core.ROBSize,
		BPEntries:   m.BPEntries,
	}
}

// WidthClass returns "narrow", "wide" or "split" (Table 3.1 rows).
func (m *Model) WidthClass() string {
	switch {
	case m.Split:
		return "split"
	case m.Core.Width >= 8:
		return "wide"
	default:
		return "narrow"
	}
}

// SameWidthBaseline returns the baseline model of the same width, against
// which Figures 4.1–4.3 report improvements.
func (m *Model) SameWidthBaseline() ModelID {
	if m.WidthClass() == "wide" {
		return W
	}
	return N
}
