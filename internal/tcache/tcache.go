// Package tcache implements the trace cache: set-associative storage of
// decoded (and, after blazing promotion, optimized) trace frames keyed by
// TID.
//
// The trace cache is PARROT's container for reuse of hardware work (§2.1):
// it stores decoded uops, so a hot-pipeline fetch skips the serial IA32
// decoders entirely, and it stores optimized traces, so one optimization is
// amortized over many executions.
package tcache

import "parrot/internal/trace"

// Stats counts trace-cache activity.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Misses     uint64
	Inserts    uint64
	Writebacks uint64 // optimizer write-backs replacing resident traces
	Evictions  uint64
}

// HitRate returns hits per lookup.
func (s *Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Probe receives trace-cache events when observability is enabled. The
// cache has no clock of its own; implementations stamp events with the
// machine time of the call (see obs.Recorder). Probes observe only.
type Probe interface {
	// TCLookup reports one Lookup call and its outcome.
	TCLookup(key uint64, hit bool)
	// TCInsert reports a trace insert; writeback marks an in-place
	// replacement of a resident trace (the optimizer's write-back path).
	TCInsert(key uint64, uops int, writeback bool)
	// TCEvict reports the eviction of a resident trace.
	TCEvict(key uint64)
}

// Cache is a set-associative trace cache with LRU replacement. Capacity is
// counted in trace frames (each up to trace.MaxUops uops).
type Cache struct {
	ways    int
	setMask uint64

	keys   []uint64
	traces []*trace.Trace
	used   []uint64
	clock  uint64

	// probe, when non-nil, observes lookups, inserts and evictions. A single
	// nil-check branch per operation; nil-probe behaviour is identical to an
	// uninstrumented cache.
	probe Probe

	Stats Stats
}

// SetProbe attaches (or, with nil, detaches) an event probe.
func (c *Cache) SetProbe(p Probe) { c.probe = p }

// New builds a trace cache holding the given number of frames (rounded up
// to a power of two) with the given associativity.
func New(frames, ways int) *Cache {
	if ways < 1 {
		ways = 1
	}
	sets := 1
	for sets*ways < frames {
		sets <<= 1
	}
	n := sets * ways
	return &Cache{
		ways:    ways,
		setMask: uint64(sets - 1),
		keys:    make([]uint64, n),
		traces:  make([]*trace.Trace, n),
		used:    make([]uint64, n),
	}
}

// Frames returns the capacity in trace frames.
func (c *Cache) Frames() int { return len(c.traces) }

// Epoch returns the cache's LRU clock: a monotone count of every
// state-mutating operation (lookups touch LRU stamps, inserts and evictions
// change contents). The memoization fingerprint uses it as a dirty-set
// summary of contents and recency state in place of a full-frame rescan.
func (c *Cache) Epoch() uint64 { return c.clock }

func (c *Cache) set(key uint64) int {
	return int((key^key>>13)&c.setMask) * c.ways
}

// Lookup probes the cache for a TID key, updating LRU and statistics.
func (c *Cache) Lookup(key uint64) (*trace.Trace, bool) {
	c.clock++
	c.Stats.Lookups++
	base := c.set(key)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.traces[i] != nil && c.keys[i] == key {
			c.used[i] = c.clock
			c.Stats.Hits++
			if c.probe != nil {
				c.probe.TCLookup(key, true)
			}
			return c.traces[i], true
		}
	}
	c.Stats.Misses++
	if c.probe != nil {
		c.probe.TCLookup(key, false)
	}
	return nil, false
}

// Probe reports residency without touching LRU or statistics.
func (c *Cache) Probe(key uint64) bool {
	base := c.set(key)
	for w := 0; w < c.ways; w++ {
		if c.traces[base+w] != nil && c.keys[base+w] == key {
			return true
		}
	}
	return false
}

// Insert stores a newly constructed trace, evicting the set's LRU frame if
// needed. Inserting an already-resident key replaces the stored trace (the
// optimizer's write-back path) and counts as a write-back. The evicted
// trace, if any, is returned so the caller can recycle its storage; a
// write-back replacing tr itself returns nil.
func (c *Cache) Insert(tr *trace.Trace) (evicted *trace.Trace) {
	c.clock++
	key := tr.TID.Key()
	base := c.set(key)
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.traces[i] != nil && c.keys[i] == key {
			old := c.traces[i]
			c.traces[i] = tr
			c.used[i] = c.clock
			c.Stats.Writebacks++
			if c.probe != nil {
				c.probe.TCInsert(key, len(tr.Uops), true)
			}
			if old != tr {
				return old
			}
			return nil
		}
		if c.traces[i] == nil {
			victim = i
		} else if c.traces[victim] != nil && c.used[i] < c.used[victim] {
			victim = i
		}
	}
	if c.traces[victim] != nil {
		c.Stats.Evictions++
		evicted = c.traces[victim]
		if c.probe != nil {
			c.probe.TCEvict(c.keys[victim])
		}
	}
	c.keys[victim] = key
	c.traces[victim] = tr
	c.used[victim] = c.clock
	c.Stats.Inserts++
	if c.probe != nil {
		c.probe.TCInsert(key, len(tr.Uops), false)
	}
	return evicted
}

// Reset empties the cache and clears statistics, returning it to the
// just-constructed state (machine-pooling Reset protocol). If recycle is
// non-nil it is called once per resident trace so the caller can reclaim
// trace storage into a slab.
func (c *Cache) Reset(recycle func(*trace.Trace)) {
	for i := range c.traces {
		if c.traces[i] != nil && recycle != nil {
			recycle(c.traces[i])
		}
		c.traces[i] = nil
		c.keys[i] = 0
		c.used[i] = 0
	}
	c.clock = 0
	c.Stats = Stats{}
	c.probe = nil // observers are per-run
}

// Occupancy returns the number of resident frames.
func (c *Cache) Occupancy() int {
	n := 0
	for _, t := range c.traces {
		if t != nil {
			n++
		}
	}
	return n
}

// Resident returns all resident traces (for end-of-run statistics such as
// the paper's optimized-trace utilization, Figure 4.10).
func (c *Cache) Resident() []*trace.Trace {
	out := make([]*trace.Trace, 0, len(c.traces))
	for _, t := range c.traces {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
