package tcache

import (
	"testing"

	"parrot/internal/isa"
	"parrot/internal/trace"
)

func mkTrace(start uint64, n int) *trace.Trace {
	tr := &trace.Trace{TID: trace.TID{Start: start}}
	for i := 0; i < n; i++ {
		u := isa.NewUop(isa.OpAdd)
		u.Dst[0] = isa.GPR(i % 8)
		tr.Uops = append(tr.Uops, u)
	}
	tr.NumInsts = n
	tr.OrigUops = n
	return tr
}

func TestInsertLookup(t *testing.T) {
	c := New(64, 4)
	tr := mkTrace(0x1000, 8)
	if _, ok := c.Lookup(tr.TID.Key()); ok {
		t.Fatal("empty cache must miss")
	}
	c.Insert(tr)
	got, ok := c.Lookup(tr.TID.Key())
	if !ok || got != tr {
		t.Fatal("inserted trace must hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Inserts != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestWritebackReplaces(t *testing.T) {
	c := New(64, 4)
	tr := mkTrace(0x2000, 8)
	c.Insert(tr)
	opt := mkTrace(0x2000, 6)
	opt.Optimized = true
	c.Insert(opt)
	got, ok := c.Lookup(tr.TID.Key())
	if !ok || !got.Optimized || len(got.Uops) != 6 {
		t.Fatal("write-back must replace the resident trace in place")
	}
	if c.Stats.Writebacks != 1 || c.Stats.Inserts != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, 2) // single set, 2 ways
	a, b, d := mkTrace(0x100, 4), mkTrace(0x200, 4), mkTrace(0x300, 4)
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a.TID.Key()) // a becomes MRU
	c.Insert(d)           // evicts b
	if !c.Probe(a.TID.Key()) {
		t.Error("MRU trace evicted")
	}
	if c.Probe(b.TID.Key()) {
		t.Error("LRU trace survived")
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

func TestProbeSilent(t *testing.T) {
	c := New(8, 2)
	c.Insert(mkTrace(0x100, 4))
	before := c.Stats
	if !c.Probe(trace.TID{Start: 0x100}.Key()) {
		t.Fatal("probe must find resident trace")
	}
	if c.Stats != before {
		t.Error("probe must not perturb statistics")
	}
}

func TestResident(t *testing.T) {
	c := New(16, 4)
	for i := 0; i < 5; i++ {
		c.Insert(mkTrace(uint64(0x1000+i*64), 4))
	}
	if got := len(c.Resident()); got != 5 {
		t.Errorf("resident = %d", got)
	}
	if c.Frames() < 16 {
		t.Errorf("frames = %d", c.Frames())
	}
}

func TestHitRate(t *testing.T) {
	c := New(16, 4)
	tr := mkTrace(0x1000, 4)
	c.Insert(tr)
	c.Lookup(tr.TID.Key())
	c.Lookup(trace.TID{Start: 0x9999}.Key())
	if got := c.Stats.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
}
