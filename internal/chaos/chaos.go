// Package chaos is a seeded, deterministic fault-injection registry.
//
// Production code calls nil-safe hooks (Inject, Skew, Partitioned) at named
// sites; with no injector configured the hooks are no-ops. When parrotd is
// started with -chaos, a rule set parsed from a small spec language arms the
// sites with latency spikes, error injection, clock skew, or partition masks.
//
// Determinism is the point: the k-th decision taken at a site is a pure
// function of (seed, site, k) — goroutine interleaving changes which caller
// observes which decision, but never the schedule itself. The same
// PARROT_CHAOS seed therefore replays the same injection sequence, which is
// what makes overload and partition failures reproducible in CI.
//
// Sites wired in this repository:
//
//	sched.run          extra latency / failures around each simulation run
//	cache.disk.get     slow or failing disk-cache reads (failure = miss)
//	cache.disk.put     slow or failing disk-cache writes (failure = DiskErrors)
//	client.request     serve/client outbound request faults
//	cluster.partition  stable partition mask between peers (from->to subjects)
//	cluster.probe      membership health-probe failures
//	cluster.clock      clock skew applied to membership ticks
//
// Spec language: rules separated by ';', fields separated by spaces:
//
//	site=sched.run p=0.6 lat=40ms jitter=20ms
//	site=cluster.partition p=1 match=7102 err
//
// Fields: site (required), p (probability, default 1), lat (base latency),
// jitter (adds a deterministic uniform [0,jitter)), err (inject a fault),
// skew (clock skew when fired), match (substring filter on the subject).
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parrot/internal/telemetry"
)

// ErrInjected is the sentinel all injected faults match via errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// InjectedError is a concrete injected fault. It implements net.Error so
// transport-level consumers (the cluster client, serve/client retry
// classification) treat injected partitions exactly like real dial
// failures — which is what makes partition masks demote peers through the
// same passive-failure path a genuine outage would.
type InjectedError struct {
	Site    string
	Subject string
}

func (e *InjectedError) Error() string {
	if e.Subject == "" {
		return "chaos: injected fault at " + e.Site
	}
	return "chaos: injected fault at " + e.Site + " (" + e.Subject + ")"
}

// Timeout and Temporary satisfy net.Error.
func (e *InjectedError) Timeout() bool        { return false }
func (e *InjectedError) Temporary() bool      { return true }
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Rule arms one site with one fault behavior.
type Rule struct {
	Site    string        // injection site name (required)
	P       float64       // firing probability per evaluation, (0,1]
	Latency time.Duration // base injected delay when fired
	Jitter  time.Duration // + deterministic uniform [0, Jitter)
	Err     bool          // return an *InjectedError when fired
	Skew    time.Duration // clock skew contributed when fired
	Match   string        // substring the subject must contain ("" = all)
}

func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "site=%s p=%g", r.Site, r.P)
	if r.Latency > 0 {
		fmt.Fprintf(&b, " lat=%s", r.Latency)
	}
	if r.Jitter > 0 {
		fmt.Fprintf(&b, " jitter=%s", r.Jitter)
	}
	if r.Err {
		b.WriteString(" err")
	}
	if r.Skew != 0 {
		fmt.Fprintf(&b, " skew=%s", r.Skew)
	}
	if r.Match != "" {
		fmt.Fprintf(&b, " match=%s", r.Match)
	}
	return b.String()
}

// Outcome is one site evaluation's combined effect.
type Outcome struct {
	Delay time.Duration
	Err   error
	Skew  time.Duration
}

// Injector evaluates rules at sites. All methods are safe on a nil
// receiver (no-ops), so call sites need no guards.
type Injector struct {
	seed  uint64
	rules map[string][]Rule

	mu    sync.Mutex
	base  map[string]uint64 // memoized per-site stream base
	k     map[string]uint64 // per-site decision counter
	evals map[string]uint64
	fired map[string]uint64
	sleep func(time.Duration) // test seam; time.Sleep by default
}

// New builds an injector from a seed and rule set. Returns nil when the
// rule set is empty, so "no chaos" stays the nil fast path.
func New(seed uint64, rules []Rule) *Injector {
	if len(rules) == 0 {
		return nil
	}
	in := &Injector{
		seed:  seed,
		rules: make(map[string][]Rule),
		base:  make(map[string]uint64),
		k:     make(map[string]uint64),
		evals: make(map[string]uint64),
		fired: make(map[string]uint64),
		sleep: time.Sleep,
	}
	for _, r := range rules {
		in.rules[r.Site] = append(in.rules[r.Site], r)
	}
	return in
}

// Parse decodes the ';'-separated rule spec language.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, chunk := range strings.Split(spec, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		r := Rule{P: 1}
		for _, tok := range strings.Fields(chunk) {
			key, val, hasVal := strings.Cut(tok, "=")
			switch key {
			case "site":
				r.Site = val
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("chaos: bad probability %q in rule %q", val, chunk)
				}
				r.P = p
			case "lat":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("chaos: bad latency %q in rule %q", val, chunk)
				}
				r.Latency = d
			case "jitter":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("chaos: bad jitter %q in rule %q", val, chunk)
				}
				r.Jitter = d
			case "err":
				if hasVal && val != "true" {
					return nil, fmt.Errorf("chaos: err takes no value in rule %q", chunk)
				}
				r.Err = true
			case "skew":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("chaos: bad skew %q in rule %q", val, chunk)
				}
				r.Skew = d
			case "match":
				r.Match = val
			default:
				return nil, fmt.Errorf("chaos: unknown field %q in rule %q", key, chunk)
			}
		}
		if r.Site == "" {
			return nil, fmt.Errorf("chaos: rule %q has no site", chunk)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// SeedFromEnv reads the PARROT_CHAOS seed knob (default 1), so a failing
// chaos run can be replayed deterministically by exporting the same value.
func SeedFromEnv() uint64 {
	if v := os.Getenv("PARROT_CHAOS"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

func (in *Injector) siteBase(site string) uint64 {
	b, ok := in.base[site]
	if !ok {
		b = splitmix64(in.seed ^ fnv64(site))
		in.base[site] = b
	}
	return b
}

// Evaluate runs every rule bound to site against subject and returns the
// combined outcome without sleeping. The decision sequence at a site is a
// pure function of (seed, site, decision index).
func (in *Injector) Evaluate(site, subject string) Outcome {
	var out Outcome
	if in == nil {
		return out
	}
	rules := in.rules[site]
	if len(rules) == 0 {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.evals[site]++
	firedAny := false
	for _, r := range rules {
		if r.Match != "" && !strings.Contains(subject, r.Match) {
			continue
		}
		k := in.k[site]
		in.k[site]++
		x := splitmix64(in.siteBase(site) + k)
		if unit(x) >= r.P {
			continue
		}
		firedAny = true
		if r.Latency > 0 || r.Jitter > 0 {
			d := r.Latency
			if r.Jitter > 0 {
				d += time.Duration(float64(r.Jitter) * unit(splitmix64(x)))
			}
			out.Delay += d
		}
		if r.Err && out.Err == nil {
			out.Err = &InjectedError{Site: site, Subject: subject}
		}
		out.Skew += r.Skew
	}
	if firedAny {
		in.fired[site]++
	}
	return out
}

// Inject evaluates site, sleeps any injected latency, and returns the
// injected error (nil when nothing fired).
func (in *Injector) Inject(site, subject string) error {
	if in == nil {
		return nil
	}
	out := in.Evaluate(site, subject)
	if out.Delay > 0 {
		in.sleep(out.Delay)
	}
	return out.Err
}

// Skew returns the clock skew injected at site for this evaluation.
func (in *Injector) Skew(site string) time.Duration {
	if in == nil {
		return 0
	}
	return in.Evaluate(site, "").Skew
}

// Partitioned reports whether the directed link from -> to is masked at
// site. Unlike Evaluate, the mask is stable: a given (seed, site, pair)
// is either always partitioned or never — a mask, not a coin flip per
// call — so partitions behave like real network cuts.
func (in *Injector) Partitioned(site, from, to string) bool {
	if in == nil {
		return false
	}
	rules := in.rules[site]
	if len(rules) == 0 {
		return false
	}
	subject := from + "->" + to
	in.mu.Lock()
	defer in.mu.Unlock()
	in.evals[site]++
	for _, r := range rules {
		if r.Match != "" && !strings.Contains(subject, r.Match) {
			continue
		}
		if unit(splitmix64(in.siteBase(site)^fnv64(subject))) < r.P {
			in.fired[site]++
			return true
		}
	}
	return false
}

// PartitionErr is Partitioned returning a transport-class injected error
// when the link is masked.
func (in *Injector) PartitionErr(site, from, to string) error {
	if in.Partitioned(site, from, to) {
		return &InjectedError{Site: site, Subject: from + "->" + to}
	}
	return nil
}

// SiteStats counts one site's evaluations and fired injections.
type SiteStats struct {
	Evals uint64
	Fired uint64
}

// Stats snapshots per-site counters.
func (in *Injector) Stats() map[string]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats, len(in.evals))
	for site, n := range in.evals {
		out[site] = SiteStats{Evals: n, Fired: in.fired[site]}
	}
	return out
}

// Register exposes parrot_chaos_* families on the telemetry registry.
func (in *Injector) Register(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	reg.RegisterCollector(func(emit telemetry.Emit) {
		st := in.Stats()
		sites := make([]string, 0, len(st))
		for s := range st {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			emit("parrot_chaos_evals_total", "counter",
				"Chaos-site evaluations.", float64(st[s].Evals), "site", s)
			emit("parrot_chaos_injections_total", "counter",
				"Chaos evaluations that fired at least one rule.", float64(st[s].Fired), "site", s)
		}
	})
}
