package chaos

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestSameSeedSameSchedule pins the acceptance criterion: the injection
// schedule is a pure function of (seed, site, decision index), so two
// injectors built from the same seed and rules produce identical decision
// sequences regardless of when or from where the sites are evaluated.
func TestSameSeedSameSchedule(t *testing.T) {
	rules := []Rule{
		{Site: "sched.run", P: 0.6, Latency: 40 * time.Millisecond, Jitter: 20 * time.Millisecond},
		{Site: "cache.disk.get", P: 0.25, Err: true},
		{Site: "cluster.clock", P: 0.5, Skew: 3 * time.Second},
	}
	a := New(42, rules)
	b := New(42, rules)
	for i := 0; i < 200; i++ {
		for _, site := range []string{"sched.run", "cache.disk.get", "cluster.clock"} {
			oa := a.Evaluate(site, "subj")
			ob := b.Evaluate(site, "subj")
			if oa != ob && !(oa.Err != nil && ob.Err != nil) {
				t.Fatalf("decision %d at %s diverged: %+v vs %+v", i, site, oa, ob)
			}
			if (oa.Err == nil) != (ob.Err == nil) {
				t.Fatalf("decision %d at %s err diverged", i, site)
			}
		}
	}
}

// TestDifferentSeedDifferentSchedule: a different seed must change the
// schedule somewhere within a modest horizon, or the seed knob is dead.
func TestDifferentSeedDifferentSchedule(t *testing.T) {
	rules := []Rule{{Site: "sched.run", P: 0.5, Err: true}}
	a, b := New(1, rules), New(2, rules)
	for i := 0; i < 200; i++ {
		if (a.Evaluate("sched.run", "").Err == nil) != (b.Evaluate("sched.run", "").Err == nil) {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced identical 200-decision schedules")
}

// TestScheduleIndependentOfInterleaving: interleaving evaluations of other
// sites must not perturb a site's own decision stream.
func TestScheduleIndependentOfInterleaving(t *testing.T) {
	rules := []Rule{
		{Site: "a", P: 0.5, Err: true},
		{Site: "b", P: 0.5, Err: true},
	}
	solo := New(7, rules)
	var want []bool
	for i := 0; i < 64; i++ {
		want = append(want, solo.Evaluate("a", "").Err != nil)
	}
	mixed := New(7, rules)
	var got []bool
	for i := 0; i < 64; i++ {
		mixed.Evaluate("b", "") // interleaved traffic on another site
		got = append(got, mixed.Evaluate("a", "").Err != nil)
		mixed.Evaluate("b", "")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("decision %d on site a changed under interleaving", i)
		}
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("site=sched.run p=0.6 lat=40ms jitter=20ms; site=cluster.partition err match=7102 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Site != "sched.run" || r.P != 0.6 || r.Latency != 40*time.Millisecond || r.Jitter != 20*time.Millisecond || r.Err {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Site != "cluster.partition" || r.P != 1 || !r.Err || r.Match != "7102" {
		t.Fatalf("rule 1 = %+v", r)
	}

	for _, bad := range []string{
		"p=0.5",                // no site
		"site=x p=2",           // probability out of range
		"site=x lat=banana",    // unparseable duration
		"site=x wobble=1",      // unknown field
		"site=x err=sometimes", // err takes no value
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted a bad spec", bad)
		}
	}
}

// TestPartitionMaskStable: partition decisions are per-pair masks, not
// per-call coin flips.
func TestPartitionMaskStable(t *testing.T) {
	in := New(11, []Rule{{Site: "cluster.partition", P: 0.5}})
	first := make(map[string]bool)
	pairs := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "a"}, {"c", "a"}, {"b", "c"}, {"c", "b"}}
	for _, p := range pairs {
		first[p[0]+"->"+p[1]] = in.Partitioned("cluster.partition", p[0], p[1])
	}
	for i := 0; i < 50; i++ {
		for _, p := range pairs {
			if got := in.Partitioned("cluster.partition", p[0], p[1]); got != first[p[0]+"->"+p[1]] {
				t.Fatalf("partition mask for %s->%s flapped", p[0], p[1])
			}
		}
	}
}

// TestPartitionMatchScopesMask: match restricts the mask to named links;
// p=1 partitions every matched pair and no other.
func TestPartitionMatchScopesMask(t *testing.T) {
	in := New(3, []Rule{{Site: "cluster.partition", P: 1, Match: "nodeB"}})
	if !in.Partitioned("cluster.partition", "nodeA", "nodeB") {
		t.Fatal("matched link not partitioned at p=1")
	}
	if in.Partitioned("cluster.partition", "nodeA", "nodeC") {
		t.Fatal("unmatched link partitioned")
	}
	if err := in.PartitionErr("cluster.partition", "nodeA", "nodeB"); !errors.Is(err, ErrInjected) {
		t.Fatalf("PartitionErr = %v, want ErrInjected", err)
	}
}

// TestInjectedErrorIsTransportClass: injected faults must look like real
// network failures to transport-error classifiers.
func TestInjectedErrorIsTransportClass(t *testing.T) {
	var ne net.Error
	err := error(&InjectedError{Site: "cluster.partition"})
	if !errors.As(err, &ne) {
		t.Fatal("InjectedError does not satisfy net.Error")
	}
	if ne.Timeout() {
		t.Fatal("injected fault should not be a timeout")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("InjectedError does not match ErrInjected")
	}
}

// TestNilInjectorIsInert: every hook must be a no-op on a nil receiver so
// call sites need no guards.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Inject("sched.run", "x"); err != nil {
		t.Fatal(err)
	}
	if d := in.Skew("cluster.clock"); d != 0 {
		t.Fatal("nil injector skewed the clock")
	}
	if in.Partitioned("cluster.partition", "a", "b") {
		t.Fatal("nil injector partitioned a link")
	}
	if err := in.PartitionErr("cluster.partition", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st != nil {
		t.Fatalf("nil injector stats = %v", st)
	}
	in.Register(nil)
	if New(1, nil) != nil {
		t.Fatal("empty rule set should build a nil injector")
	}
}

// TestLatencyInjection: firing rules sleep through the injector's sleep
// seam with base + bounded jitter.
func TestLatencyInjection(t *testing.T) {
	in := New(5, []Rule{{Site: "sched.run", P: 1, Latency: 40 * time.Millisecond, Jitter: 20 * time.Millisecond}})
	var slept []time.Duration
	in.sleep = func(d time.Duration) { slept = append(slept, d) }
	for i := 0; i < 32; i++ {
		if err := in.Inject("sched.run", ""); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 32 {
		t.Fatalf("slept %d times, want 32", len(slept))
	}
	for _, d := range slept {
		if d < 40*time.Millisecond || d >= 60*time.Millisecond {
			t.Fatalf("injected delay %s outside [40ms,60ms)", d)
		}
	}
	st := in.Stats()["sched.run"]
	if st.Evals != 32 || st.Fired != 32 {
		t.Fatalf("stats = %+v, want 32/32", st)
	}
}
