package metrics

import (
	"math"
	"testing"
)

func TestGeomeanN(t *testing.T) {
	// Pin the skipped-count contract: zero and negative entries are skipped
	// and reported, the mean covers only the positive entries.
	g, skipped := GeomeanN([]float64{0, -3, 8, 2})
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", g)
	}

	g, skipped = GeomeanN(nil)
	if g != 0 || skipped != 0 {
		t.Errorf("empty: got (%v, %d), want (0, 0)", g, skipped)
	}

	g, skipped = GeomeanN([]float64{0, 0})
	if g != 0 || skipped != 2 {
		t.Errorf("all-skipped: got (%v, %d), want (0, 2)", g, skipped)
	}

	// Geomean must agree with GeomeanN's mean.
	vals := []float64{0.5, 3, 0, 7}
	g2, _ := GeomeanN(vals)
	if g := Geomean(vals); g != g2 {
		t.Errorf("Geomean = %v, GeomeanN mean = %v", g, g2)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(4, 8, 12)
	// Inclusive upper bounds: [..4] (4..8] (8..12] (12..] overflow.
	if len(h.Counts) != 4 {
		t.Fatalf("counts len = %d, want 4", len(h.Counts))
	}
	for v, want := range map[int]int{0: 0, 4: 0, 5: 1, 8: 1, 9: 2, 12: 2, 13: 3, 100: 3} {
		h2 := NewHistogram(4, 8, 12)
		h2.Add(v)
		for i := range h2.Counts {
			expect := uint64(0)
			if i == want {
				expect = 1
			}
			if h2.Counts[i] != expect {
				t.Errorf("Add(%d): bucket %d = %d, want %d", v, i, h2.Counts[i], expect)
			}
		}
	}
}

func TestHistogramWeightedAndStats(t *testing.T) {
	h := NewHistogram(LinearBuckets(4, 4)...) // bounds 0,4,8,12,16
	h.AddN(2, 3)                              // 3 samples of value 2 -> bucket 1
	h.AddN(10, 7)                             // 7 samples of value 10 -> bucket 3
	h.Add(20)                                 // overflow bucket 5
	if h.Total() != 11 {
		t.Errorf("total = %d, want 11", h.Total())
	}
	wantMean := float64(3*2+7*10+20) / 11
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Max() != 20 {
		t.Errorf("max = %d, want 20", h.Max())
	}
	if f := h.Fraction(1); math.Abs(f-3.0/11) > 1e-12 {
		t.Errorf("fraction(1) = %v", f)
	}
	if h.Counts[5] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.Counts[5])
	}
	// Negative values clamp into the first bucket.
	h.Add(-5)
	if h.Counts[0] != 1 {
		t.Errorf("negative add: bucket 0 = %d, want 1", h.Counts[0])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LinearBuckets(8, 16)...)
	if h.Mean() != 0 || h.Total() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram stats: mean=%v total=%d max=%d", h.Mean(), h.Total(), h.Max())
	}
	if f := h.Fraction(3); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
	h.Add(5)
	h.Reset()
	if h.Total() != 0 || h.Max() != 0 {
		t.Error("reset did not clear the histogram")
	}
}

func TestLinearBucketsEdges(t *testing.T) {
	b := LinearBuckets(16, 16)
	if len(b) != 17 {
		t.Fatalf("len = %d, want 17", len(b))
	}
	if b[0] != 0 || b[16] != 256 {
		t.Errorf("bounds = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
	// Degenerate step still yields valid ascending bounds.
	b = LinearBuckets(1, 3)
	if b[0] != 0 || b[1] != 1 || b[2] != 2 || b[3] != 3 {
		t.Errorf("unit-step bounds = %v", b)
	}
}

func TestExpBuckets(t *testing.T) {
	// 10µs … spanning into seconds: the latency-histogram shape.
	b := ExpBuckets(10, 4, 10)
	if len(b) != 10 {
		t.Fatalf("len = %d, want 10", len(b))
	}
	if b[0] != 10 || b[1] != 40 || b[2] != 160 {
		t.Errorf("leading bounds = %v", b[:3])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
	// NewHistogram must accept the output directly.
	NewHistogram(ExpBuckets(1, 1.3, 20)...)

	// Sub-2 factors near small starts would collide after rounding; the
	// dedup bump keeps bounds strictly ascending.
	b = ExpBuckets(1, 1.1, 8)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("deduped bounds not ascending: %v", b)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("factor <= 1 must panic")
		}
	}()
	ExpBuckets(1, 1, 4)
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds must panic")
		}
	}()
	NewHistogram(4, 4, 8)
}
