// Package metrics provides the statistical helpers of the study's result
// presentation: geometric means over benchmark groups and simple fixed-width
// table rendering for the figure harnesses.
//
// The paper's graphs "display the geometrical mean for each group of
// applications as well as the overall mean for the entire benchmark" (§4),
// plus the three killer applications.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of positive values; zero or negative
// entries are skipped (they would otherwise poison the product). Callers
// that must distinguish "clean mean" from "mean over a filtered subset"
// should use GeomeanN, which also reports how many entries were dropped.
func Geomean(vals []float64) float64 {
	g, _ := GeomeanN(vals)
	return g
}

// GeomeanN returns the geometric mean of the positive entries of vals and
// the number of zero/negative entries that were skipped. A non-zero skipped
// count means the returned mean describes only a subset of the input, so
// figure code can warn instead of silently shifting the mean.
func GeomeanN(vals []float64) (mean float64, skipped int) {
	sum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		} else {
			skipped++
		}
	}
	if n == 0 {
		return 0, skipped
	}
	return math.Exp(sum / float64(n)), skipped
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct formats a ratio as a signed percentage change ("+17.2%").
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}

// Table renders rows of labelled values as a fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers. The
// first column is the row label.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells (label first).
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddF appends a row with a label and formatted float cells.
func (t *Table) AddF(label, format string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			if i == 0 {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Grouped accumulates per-group values and reports group geomeans in a
// stable order.
type Grouped struct {
	order []string
	vals  map[string][]float64
}

// NewGrouped creates an empty group accumulator.
func NewGrouped() *Grouped {
	return &Grouped{vals: make(map[string][]float64)}
}

// Add appends a value to a group.
func (g *Grouped) Add(group string, v float64) {
	if _, ok := g.vals[group]; !ok {
		g.order = append(g.order, group)
	}
	g.vals[group] = append(g.vals[group], v)
}

// Groups returns the group names in insertion order.
func (g *Grouped) Groups() []string { return g.order }

// Geomean returns the geometric mean of a group.
func (g *Grouped) Geomean(group string) float64 { return Geomean(g.vals[group]) }

// Overall returns the geometric mean over every value in every group.
func (g *Grouped) Overall() float64 {
	var all []float64
	keys := make([]string, 0, len(g.vals))
	for k := range g.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		all = append(all, g.vals[k]...)
	}
	return Geomean(all)
}
