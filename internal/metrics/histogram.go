package metrics

// Histogram is a fixed-bucket occupancy/length histogram. Bucket i counts
// values v with Bounds[i-1] < v <= Bounds[i] (bucket 0 counts v <= Bounds[0]);
// values above the last bound land in the overflow bucket. Adds are weighted
// so cycle-accurate samplers can attribute fast-forwarded idle windows in one
// call (AddN) instead of once per skipped cycle.
//
// The zero Histogram is not usable; construct with NewHistogram.
type Histogram struct {
	Bounds []int    // ascending, inclusive upper bounds
	Counts []uint64 // len(Bounds)+1; last = overflow
	N      uint64   // total weight
	Sum    uint64   // weighted sum of values (for Mean)
	MaxV   int      // largest value observed
}

// NewHistogram builds a histogram over ascending inclusive upper bounds.
// NewHistogram(0, 8, 16) buckets values as [..0], (0..8], (8..16], (16..].
func NewHistogram(bounds ...int) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := make([]int, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]uint64, len(bounds)+1)}
}

// LinearBuckets returns n+1 evenly spaced bounds 0, step, 2*step ... n*step —
// the convenient shape for occupancy histograms (ROB/IQ fill levels).
func LinearBuckets(step, n int) []int {
	if step < 1 || n < 1 {
		panic("metrics: LinearBuckets needs step >= 1 and n >= 1")
	}
	out := make([]int, n+1)
	for i := range out {
		out[i] = i * step
	}
	return out
}

// ExpBuckets returns n geometrically spaced bounds start, start*factor,
// start*factor² … — the right shape for latency histograms, whose
// populations span orders of magnitude (a cached cell serves in tens of
// microseconds, a cold simulation in tens of milliseconds). Bounds are
// rounded to integers and deduplicated, so a sub-2 factor near small
// starts still yields strictly ascending bounds.
func ExpBuckets(start int, factor float64, n int) []int {
	if start < 1 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start >= 1, factor > 1, n >= 1")
	}
	out := make([]int, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b := int(v + 0.5)
		if len(out) > 0 && b <= out[len(out)-1] {
			b = out[len(out)-1] + 1
		}
		out = append(out, b)
		v *= factor
	}
	return out
}

// bucket returns the index for value v.
func (h *Histogram) bucket(v int) int {
	// Bucket lists are short (tens of bounds); a linear scan beats binary
	// search at these sizes and keeps the sampler branch-predictable.
	for i, b := range h.Bounds {
		if v <= b {
			return i
		}
	}
	return len(h.Bounds)
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records w observations of value v (weighted add). Negative values
// clamp to zero — occupancies are never negative, but clamping keeps a buggy
// caller from corrupting the overflow bucket.
func (h *Histogram) AddN(v int, w uint64) {
	if w == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.Counts[h.bucket(v)] += w
	h.N += w
	h.Sum += uint64(v) * w
	if v > h.MaxV {
		h.MaxV = v
	}
}

// Mean returns the weighted mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Total returns the total recorded weight.
func (h *Histogram) Total() uint64 { return h.N }

// Max returns the largest value observed (0 when empty).
func (h *Histogram) Max() int { return h.MaxV }

// Fraction returns bucket i's share of the total weight (0 when empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Reset zeroes all counts, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.N, h.Sum, h.MaxV = 0, 0, 0
}
