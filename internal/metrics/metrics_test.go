package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(1,4) = %v", g)
	}
	if g := Geomean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(2,2,2) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	// Non-positive values are skipped.
	if g := Geomean([]float64{0, -3, 8, 2}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean with skips = %v", g)
	}
}

// Property: the geomean lies between min and max of positive inputs.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)/100 + 0.01
			vals = append(vals, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(vals) == 0 {
			return true
		}
		g := Geomean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("ratio broken")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1.172); got != "+17.2%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.93); got != "-7.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "v1", "v2")
	tb.AddRow("alpha", "1", "2")
	tb.AddF("beta", "%.1f", 3.14, 2.72)
	out := tb.String()
	for _, want := range []string{"demo", "alpha", "beta", "3.1", "2.7", "name"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestGrouped(t *testing.T) {
	g := NewGrouped()
	g.Add("a", 2)
	g.Add("a", 8)
	g.Add("b", 5)
	if got := g.Geomean("a"); math.Abs(got-4) > 1e-12 {
		t.Errorf("group geomean = %v", got)
	}
	if groups := g.Groups(); len(groups) != 2 || groups[0] != "a" || groups[1] != "b" {
		t.Errorf("group order = %v", groups)
	}
	want := math.Pow(2*8*5, 1.0/3)
	if got := g.Overall(); math.Abs(got-want) > 1e-9 {
		t.Errorf("overall = %v, want %v", got, want)
	}
}
