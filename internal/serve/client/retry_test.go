package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/proto"
	"parrot/internal/workload"
)

// canonicalResponse runs one tiny cell in-process and wraps it as the wire
// response a healthy parrotd would produce, so the client's digest
// verification passes on the real payload.
func canonicalResponse(t *testing.T) *proto.RunResponse {
	t.Helper()
	app, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	res := core.Run(config.Get(config.TON), app, 2000)
	return &proto.RunResponse{
		Digest:       experiments.RunSpec{Model: config.Get(config.TON), App: app, Insts: 2000}.Normalize().Digest(),
		Result:       res,
		ResultDigest: experiments.ResultDigest(res),
		Disposition:  "exact",
	}
}

// flakyServer fails the first failures requests with status (or a dropped
// connection when status == 0), then serves the canned response.
func flakyServer(t *testing.T, failures int, status int, resp *proto.RunResponse) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= failures {
			if status == 0 {
				// Hard transport failure: hijack and sever the connection.
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("recorder not hijackable")
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Fatal(err)
				}
				conn.Close()
				return
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(proto.Error{Error: "transient"})
			return
		}
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(hs.Close)
	return hs, &calls
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

func TestRunRetriesOn5xx(t *testing.T) {
	resp := canonicalResponse(t)
	hs, calls := flakyServer(t, 2, http.StatusServiceUnavailable, resp)

	c := New(hs.URL, WithRetry(fastRetry(4)))
	out, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000})
	if err != nil {
		t.Fatalf("Run after two 503s: %v", err)
	}
	if out.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (two 503s + success)", out.Attempts)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", calls.Load())
	}
	if out.Digest != resp.Digest {
		t.Fatalf("digest = %s, want %s", out.Digest, resp.Digest)
	}
}

func TestRunRetriesOnSeveredConnection(t *testing.T) {
	resp := canonicalResponse(t)
	hs, _ := flakyServer(t, 1, 0, resp)

	c := New(hs.URL, WithRetry(fastRetry(3)))
	out, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000})
	if err != nil {
		t.Fatalf("Run after a dropped connection: %v", err)
	}
	if out.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", out.Attempts)
	}
}

func TestRunRetryBudgetExhausted(t *testing.T) {
	resp := canonicalResponse(t)
	hs, calls := flakyServer(t, 99, http.StatusServiceUnavailable, resp)

	c := New(hs.URL, WithRetry(fastRetry(3)))
	_, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip"})
	if err == nil {
		t.Fatal("Run succeeded though every attempt 503ed")
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want exactly the 3-attempt budget", calls.Load())
	}
}

func TestRunSingleAttemptDisablesRetry(t *testing.T) {
	resp := canonicalResponse(t)
	hs, calls := flakyServer(t, 1, http.StatusServiceUnavailable, resp)

	c := New(hs.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))
	if _, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip"}); err == nil {
		t.Fatal("MaxAttempts=1 should fail fast on the first 503")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", calls.Load())
	}
}

func TestRunDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(proto.Error{Error: "unknown model"})
	}))
	t.Cleanup(hs.Close)

	c := New(hs.URL, WithRetry(fastRetry(4)))
	if _, err := c.Run(context.Background(), proto.RunRequest{Model: "bogus", App: "gzip"}); err == nil {
		t.Fatal("Run succeeded against a 400")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests for a 400, want 1 (4xx must not retry)", calls.Load())
	}
}

func TestWithHeaderStampedOnEveryAttempt(t *testing.T) {
	resp := canonicalResponse(t)
	var calls, stamped atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if r.Header.Get("X-Parrot-Forwarded") == "http://me" {
			stamped.Add(1)
		}
		if n == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(hs.Close)

	c := New(hs.URL, WithRetry(fastRetry(2)), WithHeader("X-Parrot-Forwarded", "http://me"))
	if _, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000}); err != nil {
		t.Fatal(err)
	}
	if stamped.Load() != calls.Load() {
		t.Fatalf("header stamped on %d of %d attempts", stamped.Load(), calls.Load())
	}
}

func TestCorruptResultRejected(t *testing.T) {
	resp := canonicalResponse(t)
	corrupt := *resp
	bad := *resp.Result
	bad.Cycles += 12345
	corrupt.Result = &bad

	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(&corrupt)
	}))
	t.Cleanup(hs.Close)

	c := New(hs.URL)
	if _, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000}); err == nil {
		t.Fatal("client accepted a result that does not reproduce its digest")
	}
}
