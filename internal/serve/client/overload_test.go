package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/serve/proto"
)

// shedServer answers 429 for the first `sheds` requests — with back-off
// hints when hinted — then serves the canned response. It records the
// arrival time and X-Parrot-Deadline header of every attempt.
func shedServer(t *testing.T, sheds int, hinted bool, retryAfterMs int64, resp *proto.RunResponse) (*httptest.Server, *atomic.Int32, *[]string) {
	t.Helper()
	var calls atomic.Int32
	deadlines := &[]string{}
	var mu sync.Mutex
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		mu.Lock()
		*deadlines = append(*deadlines, r.Header.Get(proto.DeadlineHeader))
		mu.Unlock()
		if int(n) <= sheds {
			if hinted {
				w.Header().Set(proto.RetryAfterMsHeader, strconv.FormatInt(retryAfterMs, 10))
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(proto.Error{Error: "shed"})
			return
		}
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(hs.Close)
	return hs, &calls, deadlines
}

// TestShedWithHintRetriesAfterHint: a 429 carrying a Retry-After hint is
// retryable, and the hint overrides the exponential backoff for the
// following sleep.
func TestShedWithHintRetriesAfterHint(t *testing.T) {
	resp := canonicalResponse(t)
	const hintMs = 80
	hs, calls, _ := shedServer(t, 1, true, hintMs, resp)

	c := New(hs.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	start := time.Now()
	out, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000})
	if err != nil {
		t.Fatalf("Run after a hinted shed: %v", err)
	}
	if out.Attempts != 2 || calls.Load() != 2 {
		t.Fatalf("attempts = %d (server saw %d), want 2", out.Attempts, calls.Load())
	}
	// The sleep must follow the server's hint (80ms), not the ~1-2ms policy
	// backoff: elapsed time is the observable.
	if elapsed := time.Since(start); elapsed < hintMs*time.Millisecond {
		t.Fatalf("retried after %v, want >= %dms per the server hint", elapsed, hintMs)
	}
}

// TestShedWithoutHintDoesNotRetry: a bare 429 is the server explicitly
// load-shedding with no guidance — hammering it again is wrong.
func TestShedWithoutHintDoesNotRetry(t *testing.T) {
	resp := canonicalResponse(t)
	hs, calls, _ := shedServer(t, 99, false, 0, resp)

	c := New(hs.URL, WithRetry(fastRetry(4)))
	_, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000})
	if err == nil {
		t.Fatal("Run succeeded though the server always sheds")
	}
	he, ok := AsHTTPError(err)
	if !ok || he.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the 429 HTTPError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (no hint, no retry)", calls.Load())
	}
}

// TestRetryBailsWhenDeadlineCannotCoverBackoff: with a hint longer than the
// remaining ctx budget, the client must fail immediately with the last
// error instead of sleeping into a dead deadline.
func TestRetryBailsWhenDeadlineCannotCoverBackoff(t *testing.T) {
	resp := canonicalResponse(t)
	hs, calls, _ := shedServer(t, 99, true, 10_000, resp) // 10s hint

	c := New(hs.URL, WithRetry(fastRetry(4)))
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000})
	if err == nil {
		t.Fatal("Run succeeded though the server always sheds")
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("took %v, want an immediate bail (no sleep into the dead deadline)", elapsed)
	}
	if he, ok := AsHTTPError(err); !ok || he.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the last 429 as the final error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", calls.Load())
	}
}

// TestDeadlineHeaderRestampedPerAttempt: each attempt must carry the budget
// still left — strictly shrinking across retries — so the server sees the
// caller's true remaining patience.
func TestDeadlineHeaderRestampedPerAttempt(t *testing.T) {
	resp := canonicalResponse(t)
	hs, _, deadlines := shedServer(t, 1, true, 50, resp)

	c := New(hs.URL, WithRetry(fastRetry(3)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Run(ctx, proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000}); err != nil {
		t.Fatal(err)
	}
	if len(*deadlines) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(*deadlines))
	}
	first, err1 := strconv.ParseInt((*deadlines)[0], 10, 64)
	second, err2 := strconv.ParseInt((*deadlines)[1], 10, 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("deadline headers not stamped: %q", *deadlines)
	}
	if second >= first {
		t.Fatalf("deadline budgets %d → %d ms, want strictly shrinking across attempts", first, second)
	}
}

// TestChaosInjectionRetriesLikeTransportError: a chaos-injected request
// fault must walk the same retry ladder as a real connection reset.
func TestChaosInjectionRetriesLikeTransportError(t *testing.T) {
	resp := canonicalResponse(t)
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(hs.Close)

	// Decision k at a site is a pure function of (seed, site, k): probe
	// seeds until one whose first decision fires and second does not, then
	// replay it on a fresh injector — fully deterministic, no flake.
	rules, err := chaos.Parse("site=client.request p=0.5 err")
	if err != nil {
		t.Fatal(err)
	}
	seed, found := uint64(0), false
	for s := uint64(1); s <= 64 && !found; s++ {
		probe := chaos.New(s, rules)
		first := probe.Inject("client.request", "/v1/run")
		second := probe.Inject("client.request", "/v1/run")
		if first != nil && second == nil {
			seed, found = s, true
		}
	}
	if !found {
		t.Fatal("no seed in 1..64 yields (fault, ok) — p=0.5 stream degenerate?")
	}
	inj := chaos.New(seed, rules)
	c := New(hs.URL, WithRetry(fastRetry(3)), WithChaos(inj))
	out, err := c.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 2000})
	if err != nil {
		t.Fatalf("Run after one injected fault: %v", err)
	}
	if out.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (injected fault + success)", out.Attempts)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (the injected attempt never hit the wire)", calls.Load())
	}
}
