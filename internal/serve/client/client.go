// Package client is the Go client of the parrotd serving API. Every remote
// consumer — parrotctl, parrotload, parrotsim -remote, parrotbench -remote
// — goes through this library, so request construction, SSE parsing and
// integrity verification live in one place.
//
// Responses carrying results are verified end-to-end: the decoded
// core.Result must reproduce the server's reported ResultDigest (the same
// canonical hashing the golden-digest test uses), so transport or decode
// corruption is detected at the client boundary rather than propagating
// into figures.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/experiments"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
)

// RetryPolicy bounds the client's transport-level retries. Run requests
// are idempotent by content address (the same RunSpec digest returns the
// same result, usually straight from cache on the retry), so retrying a
// POST /v1/run after a connection reset or a 5xx is safe.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (<=0 = 3; 1 disables retry).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential backoff between
	// attempts (<=0 = 50ms / 1s); each delay is jittered ±50%.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// Option customizes a Client.
type Option func(*Client)

// WithRetry sets the transport retry policy (the default is 3 attempts;
// pass RetryPolicy{MaxAttempts: 1} to disable retry when a higher layer
// owns the budget, as the cluster router does).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithHeader adds a header to every request — the cluster layer stamps its
// forwarded hop guard this way.
func WithHeader(key, value string) Option {
	return func(c *Client) {
		if c.headers == nil {
			c.headers = map[string]string{}
		}
		c.headers[key] = value
	}
}

// WithChaos installs a fault injector on the request path (site
// "client.request", subject = URL path). Injected errors are
// transport-class, so they exercise the exact retry ladder a real
// connection reset would.
func WithChaos(in *chaos.Injector) Option {
	return func(c *Client) { c.chaos = in }
}

// Client talks to one parrotd instance.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	headers map[string]string
	chaos   *chaos.Injector
}

// New builds a client for a server base URL, e.g. "http://127.0.0.1:8044".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		// No global client timeout: matrix SSE streams legitimately run for
		// minutes. Per-call deadlines come from the caller's context.
		hc:    &http.Client{},
		retry: RetryPolicy{}.withDefaults(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the server base URL.
func (c *Client) Base() string { return c.base }

// IsTransportErr reports whether an error from this client is a
// transport-level failure (dial refused, reset, timeout) as opposed to an
// HTTP-level response the server actually produced.
func IsTransportErr(err error) bool {
	if err == nil {
		return false
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// HTTPError is a non-200 response the server actually produced, carrying
// the status and any back-off hint (Retry-After / X-Parrot-Retry-After-Ms
// header, or the JSON body's retryAfterMs) from a 429 shed.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("server: HTTP %d", e.Status)
}

// AsHTTPError unwraps an HTTP-level error from this client.
func AsHTTPError(err error) (*HTTPError, bool) {
	var he *HTTPError
	ok := errors.As(err, &he)
	return he, ok
}

// retryable reports whether an attempt outcome warrants another try:
// transport errors, 5xx responses (the server never 5xxes a valid run
// request except under transient overload or drain), and 429 sheds — but a
// shed only when the server attached a Retry-After hint, so a client never
// hammers a server that is explicitly load-shedding without telling it when
// to come back. Plain 4xxes are the caller's bug and never retry.
func retryable(err error) bool {
	if he, ok := AsHTTPError(err); ok {
		return he.Status >= 500 ||
			(he.Status == http.StatusTooManyRequests && he.RetryAfter > 0)
	}
	return IsTransportErr(err) && !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay returns the jittered exponential delay before attempt+1.
func (p RetryPolicy) backoffDelay(attempt int) time.Duration {
	d := p.BaseBackoff << uint(attempt)
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)+1))/2
}

// do issues one request built by build, retrying per the policy. It
// returns the final response (status 200, body open) and the attempt
// count; non-200 final responses are decoded into an error.
//
// Two deadline rules keep retries honest under overload: a sleep is never
// started that the remaining ctx budget cannot cover (bail with the last
// error instead — sleeping into a dead deadline just delays the failure),
// and each attempt re-stamps X-Parrot-Deadline with the budget still left,
// so the server sees the caller's true remaining patience, not the
// original one. A server Retry-After hint overrides the exponential
// backoff for the following sleep.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, int, error) {
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.retry.backoffDelay(attempt - 1)
			if he, ok := AsHTTPError(lastErr); ok && he.RetryAfter > 0 {
				wait = he.RetryAfter
			}
			if d, ok := ctx.Deadline(); ok && time.Until(d) < wait {
				return nil, attempt, lastErr
			}
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, attempt, lastErr
			}
			t.Stop()
		}
		req, err := build()
		if err != nil {
			return nil, attempt + 1, err
		}
		for k, v := range c.headers {
			req.Header.Set(k, v)
		}
		if d, ok := ctx.Deadline(); ok {
			remaining := time.Until(d)
			if remaining <= 0 {
				if lastErr != nil {
					return nil, attempt, lastErr
				}
				// ctx.Err() can still race to nil right at expiry; never
				// return (nil, nil) to callers expecting a response.
				if err := ctx.Err(); err != nil {
					return nil, attempt, err
				}
				return nil, attempt, context.DeadlineExceeded
			}
			ms := remaining.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			req.Header.Set(proto.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
		if cerr := c.chaos.Inject("client.request", req.URL.Path); cerr != nil {
			lastErr = cerr
			continue // transport-class by construction: always retryable
		}
		resp, err := c.hc.Do(req)
		if err == nil && resp.StatusCode == http.StatusOK {
			return resp, attempt + 1, nil
		}
		if err == nil {
			herr := decodeErr(resp)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			lastErr = herr
			if !retryable(herr) {
				return nil, attempt + 1, herr
			}
		} else {
			lastErr = err
			if !retryable(err) {
				return nil, attempt + 1, err
			}
		}
	}
	return nil, c.retry.MaxAttempts, lastErr
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, attempts, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return attempts, err
	}
	defer resp.Body.Close()
	return attempts, json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, _, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeErr turns a non-200 response into an *HTTPError, harvesting the
// back-off hint from (in precedence order) the millisecond-precision
// X-Parrot-Retry-After-Ms header, the standard whole-second Retry-After,
// then the JSON body's retryAfterMs.
func decodeErr(resp *http.Response) error {
	he := &HTTPError{Status: resp.StatusCode}
	if v := resp.Header.Get(proto.RetryAfterMsHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			he.RetryAfter = time.Duration(ms) * time.Millisecond
		}
	}
	if he.RetryAfter == 0 {
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.ParseInt(v, 10, 64); err == nil && secs > 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	var e proto.Error
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e); err == nil {
		he.Msg = e.Error
		if he.RetryAfter == 0 && e.RetryAfterMs > 0 {
			he.RetryAfter = time.Duration(e.RetryAfterMs) * time.Millisecond
		}
	}
	return he
}

// verifyRun checks a run response's result against its reported digest.
func verifyRun(r *proto.RunResponse) error {
	if r.Result == nil {
		return fmt.Errorf("client: response carries no result")
	}
	if r.ResultDigest == "" {
		return nil // older/thin servers: nothing to verify against
	}
	if got := experiments.ResultDigest(r.Result); got != r.ResultDigest {
		return fmt.Errorf("client: result digest mismatch (got %.12s, want %.12s): transport corruption", got, r.ResultDigest)
	}
	return nil
}

// Run requests one simulation cell. The response's Attempts field reports
// how many transport attempts the retry policy spent (1 = first try).
func (c *Client) Run(ctx context.Context, req proto.RunRequest) (*proto.RunResponse, error) {
	var out proto.RunResponse
	attempts, err := c.postJSON(ctx, "/v1/run", req, &out)
	if err != nil {
		return nil, err
	}
	if err := verifyRun(&out); err != nil {
		return nil, err
	}
	out.Attempts = attempts
	return &out, nil
}

// Result fetches a cached cell by content address (404 → error).
func (c *Client) Result(ctx context.Context, digest string) (*proto.RunResponse, error) {
	var out proto.RunResponse
	if err := c.getJSON(ctx, "/v1/results/"+digest, &out); err != nil {
		return nil, err
	}
	if err := verifyRun(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz — also the cheap reachability probe the -remote
// fallbacks use.
func (c *Client) Health(ctx context.Context) (*proto.Health, error) {
	var out proto.Health
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ping probes reachability with a short deadline.
func (c *Client) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	_, err := c.Health(ctx)
	return err
}

// Ready probes /readyz: nil means the node is accepting routed traffic; a
// draining or still-prewarming node answers 503 and Ready returns an error
// naming the reason. Cluster heartbeats use this, so not-ready nodes are
// routed around rather than treated as live.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body proto.Ready
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&body)
	if resp.StatusCode == http.StatusOK && body.Ready {
		return nil
	}
	if body.Reason != "" {
		return fmt.Errorf("not ready: %s (HTTP %d)", body.Reason, resp.StatusCode)
	}
	return fmt.Errorf("not ready: HTTP %d", resp.StatusCode)
}

// Cluster fetches /clusterz — the node's view of membership and ring.
func (c *Client) Cluster(ctx context.Context) (*proto.ClusterStatus, error) {
	var out proto.ClusterStatus
	if err := c.getJSON(ctx, "/clusterz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the legacy JSON metrics body (/metricsz?format=json).
func (c *Client) Metrics(ctx context.Context) (*proto.Metrics, error) {
	var out proto.Metrics
	if err := c.getJSON(ctx, "/metricsz?format=json", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the Prometheus text exposition from /metricsz,
// parsed into series. parrotctl's top/expect views consume this.
func (c *Client) MetricsText(ctx context.Context) (*telemetry.Exposition, error) {
	resp, _, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metricsz", nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return telemetry.ParseExposition(resp.Body)
}

// Trace fetches a request's span timeline as raw Chrome trace-event JSON
// (the /v1/trace/{id} body, suitable for chrome://tracing / Perfetto).
func (c *Client) Trace(ctx context.Context, requestID string) ([]byte, error) {
	resp, _, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/trace/"+requestID, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TraceSpans fetches a request's raw span records
// (/v1/trace/{id}?format=spans).
func (c *Client) TraceSpans(ctx context.Context, requestID string) (*telemetry.SpansDoc, error) {
	var out telemetry.SpansDoc
	if err := c.getJSON(ctx, "/v1/trace/"+requestID+"?format=spans", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Matrix requests a model × application fan-out, relaying each SSE
// progress event to onProgress (may be nil) and returning the terminal
// result. Every cell's result is digest-verified.
func (c *Client) Matrix(ctx context.Context, req proto.MatrixRequest, onProgress func(proto.Progress)) (*proto.MatrixResponse, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	// Only the initial connection retries; a failure mid-stream surfaces as
	// an error (a matrix is not transparently restartable from the client).
	resp, _, err := c.do(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/matrix", bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Accept", "text/event-stream")
		return hreq, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	var out *proto.MatrixResponse
	err = readSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "progress":
			if onProgress != nil {
				var p proto.Progress
				if err := json.Unmarshal(data, &p); err != nil {
					return fmt.Errorf("client: bad progress event: %w", err)
				}
				onProgress(p)
			}
		case "error":
			var e proto.Error
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				return fmt.Errorf("client: server reported an unparseable error")
			}
			return fmt.Errorf("server: %s", e.Error)
		case "result":
			var m proto.MatrixResponse
			if err := json.Unmarshal(data, &m); err != nil {
				return fmt.Errorf("client: bad result event: %w", err)
			}
			out = &m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("client: stream ended without a result event")
	}
	for i := range out.Cells {
		cell := &out.Cells[i]
		if cell.Result == nil {
			// An explicit per-cell failure is a legal partial-matrix entry;
			// a silently absent result is still a protocol violation.
			if cell.Error != "" {
				continue
			}
			return nil, fmt.Errorf("client: cell %s/%s missing result", cell.Model, cell.App)
		}
	}
	return out, nil
}

// readSSE parses a Server-Sent-Events stream, invoking fn once per event.
// Only the subset parrotd emits is supported: "event:" + single-line
// "data:" blocks separated by blank lines.
func readSSE(r io.Reader, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	// Matrix result events carry the full cell set: allow large lines.
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	event := ""
	var data []byte
	flush := func() error {
		if event == "" && data == nil {
			return nil
		}
		err := fn(event, data)
		event, data = "", nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append([]byte(nil), strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
