// Package client is the Go client of the parrotd serving API. Every remote
// consumer — parrotctl, parrotload, parrotsim -remote, parrotbench -remote
// — goes through this library, so request construction, SSE parsing and
// integrity verification live in one place.
//
// Responses carrying results are verified end-to-end: the decoded
// core.Result must reproduce the server's reported ResultDigest (the same
// canonical hashing the golden-digest test uses), so transport or decode
// corruption is detected at the client boundary rather than propagating
// into figures.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"parrot/internal/experiments"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
)

// Client talks to one parrotd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a server base URL, e.g. "http://127.0.0.1:8044".
func New(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		// No global client timeout: matrix SSE streams legitimately run for
		// minutes. Per-call deadlines come from the caller's context.
		hc: &http.Client{},
	}
}

// Base returns the server base URL.
func (c *Client) Base() string { return c.base }

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeErr(resp *http.Response) error {
	var e proto.Error
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d", resp.StatusCode)
}

// verifyRun checks a run response's result against its reported digest.
func verifyRun(r *proto.RunResponse) error {
	if r.Result == nil {
		return fmt.Errorf("client: response carries no result")
	}
	if r.ResultDigest == "" {
		return nil // older/thin servers: nothing to verify against
	}
	if got := experiments.ResultDigest(r.Result); got != r.ResultDigest {
		return fmt.Errorf("client: result digest mismatch (got %.12s, want %.12s): transport corruption", got, r.ResultDigest)
	}
	return nil
}

// Run requests one simulation cell.
func (c *Client) Run(ctx context.Context, req proto.RunRequest) (*proto.RunResponse, error) {
	var out proto.RunResponse
	if err := c.postJSON(ctx, "/v1/run", req, &out); err != nil {
		return nil, err
	}
	if err := verifyRun(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Result fetches a cached cell by content address (404 → error).
func (c *Client) Result(ctx context.Context, digest string) (*proto.RunResponse, error) {
	var out proto.RunResponse
	if err := c.getJSON(ctx, "/v1/results/"+digest, &out); err != nil {
		return nil, err
	}
	if err := verifyRun(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz — also the cheap reachability probe the -remote
// fallbacks use.
func (c *Client) Health(ctx context.Context) (*proto.Health, error) {
	var out proto.Health
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ping probes reachability with a short deadline.
func (c *Client) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	_, err := c.Health(ctx)
	return err
}

// Metrics fetches the legacy JSON metrics body (/metricsz?format=json).
func (c *Client) Metrics(ctx context.Context) (*proto.Metrics, error) {
	var out proto.Metrics
	if err := c.getJSON(ctx, "/metricsz?format=json", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the Prometheus text exposition from /metricsz,
// parsed into series. parrotctl's top/expect views consume this.
func (c *Client) MetricsText(ctx context.Context) (*telemetry.Exposition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metricsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	return telemetry.ParseExposition(resp.Body)
}

// Trace fetches a request's span timeline as raw Chrome trace-event JSON
// (the /v1/trace/{id} body, suitable for chrome://tracing / Perfetto).
func (c *Client) Trace(ctx context.Context, requestID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/trace/"+requestID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// TraceSpans fetches a request's raw span records
// (/v1/trace/{id}?format=spans).
func (c *Client) TraceSpans(ctx context.Context, requestID string) (*telemetry.SpansDoc, error) {
	var out telemetry.SpansDoc
	if err := c.getJSON(ctx, "/v1/trace/"+requestID+"?format=spans", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Matrix requests a model × application fan-out, relaying each SSE
// progress event to onProgress (may be nil) and returning the terminal
// result. Every cell's result is digest-verified.
func (c *Client) Matrix(ctx context.Context, req proto.MatrixRequest, onProgress func(proto.Progress)) (*proto.MatrixResponse, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/matrix", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}

	var out *proto.MatrixResponse
	err = readSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "progress":
			if onProgress != nil {
				var p proto.Progress
				if err := json.Unmarshal(data, &p); err != nil {
					return fmt.Errorf("client: bad progress event: %w", err)
				}
				onProgress(p)
			}
		case "error":
			var e proto.Error
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				return fmt.Errorf("client: server reported an unparseable error")
			}
			return fmt.Errorf("server: %s", e.Error)
		case "result":
			var m proto.MatrixResponse
			if err := json.Unmarshal(data, &m); err != nil {
				return fmt.Errorf("client: bad result event: %w", err)
			}
			out = &m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("client: stream ended without a result event")
	}
	for i := range out.Cells {
		cell := &out.Cells[i]
		if cell.Result == nil {
			return nil, fmt.Errorf("client: cell %s/%s missing result", cell.Model, cell.App)
		}
	}
	return out, nil
}

// readSSE parses a Server-Sent-Events stream, invoking fn once per event.
// Only the subset parrotd emits is supported: "event:" + single-line
// "data:" blocks separated by blank lines.
func readSSE(r io.Reader, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	// Matrix result events carry the full cell set: allow large lines.
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	event := ""
	var data []byte
	flush := func() error {
		if event == "" && data == nil {
			return nil
		}
		err := fn(event, data)
		event, data = "", nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append([]byte(nil), strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
