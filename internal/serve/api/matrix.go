package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"parrot/internal/cluster"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/proto"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
	"parrot/internal/workload"
)

// handleMatrix fans a model × application matrix out onto the scheduler's
// batch queue and streams progress as Server-Sent Events: one "progress"
// event per completed cell (done strictly increasing 1..total, mirroring
// the experiments.Config.Progress contract), then a single terminal
// "result" event carrying every cell plus the matrix digest computed with
// the same canonical hashing as an in-process experiments.Run — or a
// terminal "error" event.
//
// Cells are submitted in model-major order (the experiments fan-out's
// machine-locality trick) and deduplicated per digest, so concurrent matrix
// requests over the same spec share simulations instead of multiplying
// them.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req proto.MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	models, apps, err := resolveMatrix(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	timeout := s.cfg.MaxMatrixTimeout
	if req.TimeoutMs > 0 {
		t := time.Duration(req.TimeoutMs) * time.Millisecond
		if t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(event string, payload any) {
		b, _ := json.Marshal(payload)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}

	total := len(models) * len(apps)
	start := time.Now()
	done := make(chan cellOutcome, total)

	// Fan out: one waiter goroutine per cell (they mostly block on shared
	// flights or remote calls; local concurrency is the scheduler's worker
	// cap). Model-major order keeps consecutive batch jobs on the same
	// model. With a cluster configured, each cell is routed to its ring
	// owner — the gather loop below survives owner death because
	// runMatrixCell retries elsewhere and finally rescues locally.
	for mi, m := range models {
		for ai, p := range apps {
			idx := mi*len(apps) + ai
			spec := experiments.RunSpec{Model: m, App: p, Insts: req.Insts}.Normalize()
			model, app := string(m.ID), p.Name
			go func() {
				o := s.runMatrixCell(ctx, spec, model, app, req.Insts)
				o.idx = idx
				done <- o
			}()
		}
	}

	// Gather. A failed cell becomes an explicit per-cell failure entry —
	// the matrix completes partial instead of aborting the whole fan-out —
	// except when the matrix-level ctx itself is dead (timeout or client
	// gone), where one terminal error beats a flood of identical per-cell
	// failures.
	cells := make([]cellOutcome, total)
	cachedCells, failed := 0, 0
	for n := 1; n <= total; n++ {
		d := <-done
		if d.err != nil {
			if ctx.Err() != nil {
				emit("error", proto.Error{Error: ctx.Err().Error()})
				return
			}
			failed++
		} else if d.cached {
			cachedCells++
		}
		cells[d.idx] = d
		elapsed := time.Since(start)
		eta := time.Duration(int64(elapsed) / int64(n) * int64(total-n))
		emit("progress", proto.Progress{
			Done: n, Total: total,
			ElapsedUs: elapsed.Microseconds(), EtaUs: eta.Microseconds(),
			Cached: d.cached, Disposition: d.disp,
			Failed: failed,
		})
	}

	out := proto.MatrixResponse{
		Insts:       req.Insts,
		CachedCells: cachedCells,
		TotalCells:  total,
		FailedCells: failed,
		ElapsedUs:   time.Since(start).Microseconds(),
		RequestID:   telemetry.TraceFrom(ctx).ID(),
		Cells:       make([]proto.Cell, 0, total),
	}
	if failed == 0 {
		// Reassemble the matrix with the shared constructor so PMax and the
		// digest are derived exactly as experiments.Run derives them. A
		// partial matrix carries no digest: the canonical hash covers every
		// cell, and a partial hash would collide with nothing meaningful.
		res := experiments.Assemble(models, apps, req.Insts,
			func(m config.Model, p workload.Profile) *core.Result {
				for mi, mm := range models {
					if mm.ID != m.ID {
						continue
					}
					for ai, pp := range apps {
						if pp.Name == p.Name {
							return cells[mi*len(apps)+ai].res
						}
					}
				}
				return nil
			})
		out.Digest = res.Digest()
		out.PMax = res.PMax
		out.PMaxApp = res.PMaxApp
	}
	for mi, m := range models {
		for ai, p := range apps {
			d := cells[mi*len(apps)+ai]
			cell := proto.Cell{
				Model:       string(m.ID),
				App:         p.Name,
				Digest:      experiments.RunSpec{Model: m, App: p, Insts: req.Insts}.Digest(),
				Cached:      d.cached,
				Disposition: d.disp,
				Result:      d.res,
				Node:        d.node,
			}
			if d.err != nil {
				cell.Error = d.err.Error()
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	emit("result", out)
}

// cellOutcome is one gathered matrix cell.
type cellOutcome struct {
	idx    int
	disp   string
	cached bool
	res    *core.Result
	node   string
	err    error
}

// runMatrixCell executes one cell, routing through the cluster when one is
// configured. The fault-tolerance ladder: (1) the ring owner (with the
// routing client's retries, hedging and failover to successors), then
// (2) local rescue on this coordinator — so a cell only fails when the
// local scheduler itself cannot run it (drain or matrix timeout).
func (s *Server) runMatrixCell(ctx context.Context, spec experiments.RunSpec, model, app string, insts int) cellOutcome {
	cl := s.cfg.Cluster
	digest := spec.Digest()
	rescue := false
	if cl != nil {
		if _, self := cl.Owner(digest); !self {
			tr := telemetry.TraceFrom(ctx)
			sp := tr.StartSpanTID(telemetry.TIDCluster, "cluster.cell",
				telemetry.A("cell", model+"/"+app))
			resp, info, err := cl.Execute(ctx, proto.RunRequest{
				Model: model, App: app, Insts: insts,
				Priority: proto.PriorityBatch,
			}, digest)
			if err == nil {
				node := resp.Node
				if node == "" {
					node = info.Node
				}
				sp.SetAttr("node", node)
				sp.End()
				return cellOutcome{disp: resp.Disposition, cached: resp.Cached, res: resp.Result, node: node}
			}
			sp.SetAttr("err", err.Error())
			sp.End()
			if !errors.Is(err, cluster.ErrRouteLocal) {
				// Every remote route failed: last line of defence is running
				// the cell on this coordinator. The matrix stays complete as
				// long as this node lives.
				rescue = true
				tlog.From(ctx).Warn("cell rescue: running locally",
					tlog.F("cell", model+"/"+app), tlog.F("err", err.Error()))
			}
		} else {
			cl.NoteLocal()
		}
	}

	cellStart := time.Now()
	res, disp, err := s.cfg.Sched.SubmitBatch(ctx, spec)
	if err != nil {
		return cellOutcome{err: err}
	}
	if rescue {
		cl.NoteRescued()
	}
	s.cellReqs(disp.String()).Inc()
	s.cellSecs(disp.String()).Observe(time.Since(cellStart).Seconds())
	return cellOutcome{disp: disp.String(), cached: disp.Cached(), res: res, node: s.cfg.NodeID}
}

// resolveMatrix expands a matrix request into concrete model and profile
// sets (empty = full sets).
func resolveMatrix(req proto.MatrixRequest) ([]config.Model, []workload.Profile, error) {
	var models []config.Model
	if len(req.Models) == 0 {
		models = config.All()
	} else {
		for _, id := range req.Models {
			found := false
			for _, m := range config.All() {
				if string(m.ID) == id {
					models = append(models, m)
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("unknown model %q", id)
			}
		}
	}
	var apps []workload.Profile
	if len(req.Apps) == 0 {
		apps = workload.Apps()
	} else {
		for _, name := range req.Apps {
			p, ok := workload.ByName(name)
			if !ok {
				return nil, nil, fmt.Errorf("unknown application %q", name)
			}
			apps = append(apps, p)
		}
	}
	return models, apps, nil
}
