package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
	"parrot/internal/workload"
)

// handleMatrix fans a model × application matrix out onto the scheduler's
// batch queue and streams progress as Server-Sent Events: one "progress"
// event per completed cell (done strictly increasing 1..total, mirroring
// the experiments.Config.Progress contract), then a single terminal
// "result" event carrying every cell plus the matrix digest computed with
// the same canonical hashing as an in-process experiments.Run — or a
// terminal "error" event.
//
// Cells are submitted in model-major order (the experiments fan-out's
// machine-locality trick) and deduplicated per digest, so concurrent matrix
// requests over the same spec share simulations instead of multiplying
// them.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req proto.MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	models, apps, err := resolveMatrix(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	timeout := s.cfg.MaxMatrixTimeout
	if req.TimeoutMs > 0 {
		t := time.Duration(req.TimeoutMs) * time.Millisecond
		if t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(event string, payload any) {
		b, _ := json.Marshal(payload)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}

	type cellDone struct {
		idx  int
		disp sched.Disposition
		res  *core.Result
		err  error
	}

	total := len(models) * len(apps)
	start := time.Now()
	done := make(chan cellDone, total)

	// Fan out: one waiter goroutine per cell (they mostly block on shared
	// flights; the real concurrency is the scheduler's worker cap). Model-
	// major order keeps consecutive batch jobs on the same model.
	for mi, m := range models {
		for ai, p := range apps {
			idx := mi*len(apps) + ai
			spec := experiments.RunSpec{Model: m, App: p, Insts: req.Insts}.Normalize()
			go func() {
				cellStart := time.Now()
				res, disp, err := s.cfg.Sched.SubmitBatch(ctx, spec)
				if err == nil {
					s.cellReqs(disp.String()).Inc()
					s.cellSecs(disp.String()).Observe(time.Since(cellStart).Seconds())
				}
				done <- cellDone{idx: idx, disp: disp, res: res, err: err}
			}()
		}
	}

	cells := make([]cellDone, total)
	cachedCells := 0
	for n := 1; n <= total; n++ {
		d := <-done
		if d.err != nil {
			emit("error", proto.Error{Error: d.err.Error()})
			return
		}
		cells[d.idx] = d
		if d.disp.Cached() {
			cachedCells++
		}
		elapsed := time.Since(start)
		eta := time.Duration(int64(elapsed) / int64(n) * int64(total-n))
		emit("progress", proto.Progress{
			Done: n, Total: total,
			ElapsedUs: elapsed.Microseconds(), EtaUs: eta.Microseconds(),
			Cached: d.disp.Cached(), Disposition: d.disp.String(),
		})
	}

	// Reassemble the matrix with the shared constructor so PMax and the
	// digest are derived exactly as experiments.Run derives them.
	res := experiments.Assemble(models, apps, req.Insts,
		func(m config.Model, p workload.Profile) *core.Result {
			for mi, mm := range models {
				if mm.ID != m.ID {
					continue
				}
				for ai, pp := range apps {
					if pp.Name == p.Name {
						return cells[mi*len(apps)+ai].res
					}
				}
			}
			return nil
		})

	out := proto.MatrixResponse{
		Digest:      res.Digest(),
		PMax:        res.PMax,
		PMaxApp:     res.PMaxApp,
		Insts:       req.Insts,
		CachedCells: cachedCells,
		TotalCells:  total,
		ElapsedUs:   time.Since(start).Microseconds(),
		RequestID:   telemetry.TraceFrom(ctx).ID(),
		Cells:       make([]proto.Cell, 0, total),
	}
	for mi, m := range models {
		for ai, p := range apps {
			d := cells[mi*len(apps)+ai]
			out.Cells = append(out.Cells, proto.Cell{
				Model:       string(m.ID),
				App:         p.Name,
				Digest:      experiments.RunSpec{Model: m, App: p, Insts: req.Insts}.Digest(),
				Cached:      d.disp.Cached(),
				Disposition: d.disp.String(),
				Result:      d.res,
			})
		}
	}
	emit("result", out)
}

// resolveMatrix expands a matrix request into concrete model and profile
// sets (empty = full sets).
func resolveMatrix(req proto.MatrixRequest) ([]config.Model, []workload.Profile, error) {
	var models []config.Model
	if len(req.Models) == 0 {
		models = config.All()
	} else {
		for _, id := range req.Models {
			found := false
			for _, m := range config.All() {
				if string(m.ID) == id {
					models = append(models, m)
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("unknown model %q", id)
			}
		}
	}
	var apps []workload.Profile
	if len(req.Apps) == 0 {
		apps = workload.Apps()
	} else {
		for _, name := range req.Apps {
			p, ok := workload.ByName(name)
			if !ok {
				return nil, nil, fmt.Errorf("unknown application %q", name)
			}
			apps = append(apps, p)
		}
	}
	return models, apps, nil
}
