// Package api implements parrotd's HTTP surface (stdlib net/http only):
//
//	POST /v1/run              one simulation cell (JSON in/out)
//	POST /v1/matrix           model × application fan-out with SSE progress
//	GET  /v1/results/{digest} cache-only lookup by content address
//	GET  /healthz             liveness + drain state
//	GET  /metricsz            cache/scheduler/pool counters
//
// The server is a thin adapter: request bodies resolve to canonical
// experiments.RunSpecs, the scheduler executes (or the cache serves) them,
// and responses carry complete core.Result cells plus their content
// addresses, so clients can verify transport integrity end-to-end.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/workload"
)

// Config parameterizes a server.
type Config struct {
	Cache *cache.Cache
	Sched *sched.Sched
	// DefaultTimeout bounds requests that carry no TimeoutMs (0 = 120s).
	DefaultTimeout time.Duration
	// MaxMatrixTimeout bounds matrix requests (0 = 10min).
	MaxMatrixTimeout time.Duration
}

// Server wires the serving subsystem behind an http.Handler.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time
}

// New builds a server over a scheduler (required) and its cache (may be
// nil: every request then simulates).
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 120 * time.Second
	}
	if cfg.MaxMatrixTimeout <= 0 {
		cfg.MaxMatrixTimeout = 10 * time.Minute
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("GET /v1/results/{digest}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return s
}

// Handler returns the routable HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, proto.Error{Error: fmt.Sprintf(format, args...)})
}

// resolveSpec canonicalizes a (model, app, insts) triple.
func resolveSpec(modelID, appName string, insts int) (experiments.RunSpec, error) {
	var model config.Model
	found := false
	for _, m := range config.All() {
		if string(m.ID) == modelID {
			model, found = m, true
			break
		}
	}
	if !found {
		return experiments.RunSpec{}, fmt.Errorf("unknown model %q", modelID)
	}
	prof, ok := workload.ByName(appName)
	if !ok {
		return experiments.RunSpec{}, fmt.Errorf("unknown application %q", appName)
	}
	return experiments.RunSpec{Model: model, App: prof, Insts: insts}.Normalize(), nil
}

// schedErrStatus maps scheduler errors onto HTTP statuses.
func schedErrStatus(err error) int {
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, sched.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req proto.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := resolveSpec(req.Model, req.App, req.Insts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	var (
		res    *core.Result
		cached bool
	)
	if req.Priority == proto.PriorityBatch {
		res, cached, err = s.cfg.Sched.SubmitBatch(ctx, spec)
	} else {
		res, cached, err = s.cfg.Sched.Submit(ctx, spec)
	}
	if err != nil {
		writeErr(w, schedErrStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, proto.RunResponse{
		Digest:       spec.Digest(),
		Cached:       cached,
		ResultDigest: experiments.ResultDigest(res),
		ElapsedUs:    time.Since(start).Microseconds(),
		Result:       res,
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if s.cfg.Cache == nil {
		writeErr(w, http.StatusNotFound, "no result cache configured")
		return
	}
	res, ok := s.cfg.Cache.Get(digest)
	if !ok {
		writeErr(w, http.StatusNotFound, "no result under digest %.12s…", digest)
		return
	}
	writeJSON(w, http.StatusOK, proto.RunResponse{
		Digest:       digest,
		Cached:       true,
		ResultDigest: experiments.ResultDigest(res),
		Result:       res,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, proto.Health{
		OK:         true,
		Draining:   s.cfg.Sched.Draining(),
		UptimeMs:   time.Since(s.start).Milliseconds(),
		SimVersion: experiments.SimVersion,
		GoVersion:  runtime.Version(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	var m proto.Metrics
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		m.Cache = proto.CacheMetrics{
			Hits: cs.Hits, Misses: cs.Misses,
			MemHits: cs.MemHits, DiskHits: cs.DiskHits,
			Puts: cs.Puts, Evictions: cs.Evictions, DiskErrors: cs.DiskErrors,
			Entries: cs.Entries, Bytes: cs.Bytes, Budget: cs.Budget,
			HitRate:        cs.HitRate(),
			EntryBytesMean: cs.EntryBytesMean,
		}
	}
	ss := s.cfg.Sched.Stats()
	m.Sched = proto.SchedMetrics{
		Workers:          ss.Workers,
		Running:          ss.Running,
		InteractiveDepth: ss.InteractiveDepth,
		BatchDepth:       ss.BatchDepth,
		Completed:        ss.Completed,
		Deduped:          ss.Deduped,
		Rejected:         ss.Rejected,
		Abandoned:        ss.Abandoned,
		CacheHits:        ss.CacheHits,
		SimInsts:         ss.SimInsts,
		BusyUs:           ss.BusyTime.Microseconds(),
		SimMIPS:          ss.SimMIPS(),
	}
	if up := time.Since(s.start); up > 0 && ss.Workers > 0 {
		m.Sched.Utilization = ss.BusyTime.Seconds() / (up.Seconds() * float64(ss.Workers))
	}
	ps := s.cfg.Sched.Pool().Stats()
	m.Pool = proto.PoolMetrics{
		Gets: ps.Gets, Reuses: ps.Reuses, Puts: ps.Puts, Discards: ps.Discards,
		Size: s.cfg.Sched.Pool().Size(),
	}
	writeJSON(w, http.StatusOK, m)
}
