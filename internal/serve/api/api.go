// Package api implements parrotd's HTTP surface (stdlib net/http only):
//
//	POST /v1/run              one simulation cell (JSON in/out)
//	POST /v1/matrix           model × application fan-out with SSE progress
//	GET  /v1/results/{digest} cache-only lookup by content address
//	GET  /v1/trace/{id}       request span timeline (Chrome trace-event JSON)
//	GET  /v1/stats/stream     live metric snapshots (SSE)
//	GET  /healthz             liveness + drain state
//	GET  /metricsz            Prometheus text exposition (?format=json legacy)
//	GET  /debug/pprof/…       runtime profiles (behind Config.EnablePprof)
//
// The server is a thin adapter: request bodies resolve to canonical
// experiments.RunSpecs, the scheduler executes (or the cache serves) them,
// and responses carry complete core.Result cells plus their content
// addresses, so clients can verify transport integrity end-to-end.
//
// Every request is minted (or propagated, via X-Parrot-Request-Id) a
// request ID that rides the context as a telemetry.Trace and a structured
// logger: the scheduler, cache and worker fleet add spans to it, and the
// finished timeline is retrievable from /v1/trace/{id} while it stays in
// the ring buffer.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"parrot/internal/cluster"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
	"parrot/internal/workload"
)

// RequestIDHeader carries (and returns) the request correlation ID.
const RequestIDHeader = "X-Parrot-Request-Id"

// Config parameterizes a server.
type Config struct {
	Cache *cache.Cache
	Sched *sched.Sched
	// DefaultTimeout bounds requests that carry no TimeoutMs (0 = 120s).
	DefaultTimeout time.Duration
	// MaxMatrixTimeout bounds matrix requests (0 = 10min).
	MaxMatrixTimeout time.Duration
	// Registry backs /metricsz and /v1/stats/stream (nil = a private one;
	// pass the same registry to sched.New so its series appear too).
	Registry *telemetry.Registry
	// Log receives structured request logs (nil = silent).
	Log *tlog.Logger
	// TraceBuf bounds the request-trace ring buffer (<=0 = 256 traces).
	TraceBuf int
	// EnablePprof exposes net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// StatsInterval paces /v1/stats/stream snapshots (0 = 1s).
	StatsInterval time.Duration
	// Cluster enables multi-node routing: /v1/run forwards non-owned
	// digests to their ring owner, /v1/matrix scatters cells across the
	// ring, and /clusterz exposes membership (nil = single-node).
	Cluster *cluster.Cluster
	// NodeID is this node's advertised URL, stamped into responses so
	// clients can see which node served a cell (defaults to
	// Cluster.Self(); empty on single-node daemons).
	NodeID string
}

// Server wires the serving subsystem behind an http.Handler.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	start  time.Time
	reg    *telemetry.Registry
	log    *tlog.Logger
	traces *telemetry.TraceStore

	reqTotal func(route, code string) *telemetry.Counter
	reqSecs  func(route string) *telemetry.Histogram
	cellReqs func(disp string) *telemetry.Counter
	cellSecs func(disp string) *telemetry.Histogram

	deadlineReqs   *telemetry.Counter
	deadlineBudget *telemetry.Histogram
	degradedTotal  *telemetry.Counter
}

// New builds a server over a scheduler (required) and its cache (may be
// nil: every request then simulates).
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 120 * time.Second
	}
	if cfg.MaxMatrixTimeout <= 0 {
		cfg.MaxMatrixTimeout = 10 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.StatsInterval <= 0 {
		cfg.StatsInterval = time.Second
	}
	if cfg.NodeID == "" && cfg.Cluster != nil {
		cfg.NodeID = cfg.Cluster.Self()
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		reg:    cfg.Registry,
		log:    cfg.Log.With(tlog.F("component", "api")),
		traces: telemetry.NewTraceStore(cfg.TraceBuf),
	}

	// HTTP-level instruments. The closures mint label variants lazily; the
	// registry dedups, so hot paths pay one map lookup under a short lock.
	reqBounds := telemetry.DefBuckets()
	s.reqTotal = func(route, code string) *telemetry.Counter {
		return s.reg.Counter("parrot_requests_total",
			"HTTP requests by route and status code.", "route", route, "code", code)
	}
	s.reqSecs = func(route string) *telemetry.Histogram {
		return s.reg.Histogram("parrot_request_seconds",
			"HTTP request handling time by route.", reqBounds, "route", route)
	}
	s.cellReqs = func(disp string) *telemetry.Counter {
		return s.reg.Counter("parrot_cell_requests_total",
			"Simulation cells served, by disposition (hit/dedup/replayed/exact).",
			"disposition", disp)
	}
	s.cellSecs = func(disp string) *telemetry.Histogram {
		return s.reg.Histogram("parrot_cell_seconds",
			"Per-cell serving latency by disposition.", reqBounds, "disposition", disp)
	}
	s.deadlineReqs = s.reg.Counter("parrot_deadline_requests_total",
		"Requests that arrived carrying an X-Parrot-Deadline budget header.")
	s.deadlineBudget = s.reg.Histogram("parrot_deadline_budget_seconds",
		"Remaining deadline budget carried by X-Parrot-Deadline.", reqBounds)
	s.degradedTotal = s.reg.Counter("parrot_degraded_total",
		"Run responses served as stale family fallbacks under overload (X-Parrot-Degraded: stale).")

	// Scrape-time collectors over single snapshots: cache, pool, process.
	cfg.Cache.Register(s.reg)
	pool := cfg.Sched.Pool()
	s.reg.RegisterCollector(func(emit telemetry.Emit) {
		ps := pool.Stats()
		emit("parrot_pool_gets_total", "counter", "Machine checkouts.", float64(ps.Gets))
		emit("parrot_pool_reuses_total", "counter", "Checkouts served by a pooled machine.", float64(ps.Reuses))
		emit("parrot_pool_puts_total", "counter", "Machines returned.", float64(ps.Puts))
		emit("parrot_pool_discards_total", "counter", "Machines dropped at the pool cap.", float64(ps.Discards))
		emit("parrot_pool_size", "gauge", "Machines resident in the pool.", float64(pool.Size()))
	})
	s.reg.RegisterCollector(func(emit telemetry.Emit) {
		emit("parrot_uptime_seconds", "gauge", "Daemon uptime.", time.Since(s.start).Seconds())
		emit("parrot_goroutines", "gauge", "Live goroutines.", float64(runtime.NumGoroutine()))
		emit("parrot_traces_buffered", "gauge", "Request traces resident in the ring buffer.", float64(s.traces.Len()))
	})

	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("GET /v1/results/{digest}", s.handleResult)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/stats/stream", s.handleStatsStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /clusterz", s.handleClusterz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the routable HTTP surface, wrapped in the telemetry
// middleware (request IDs, traces, logs, request metrics).
func (s *Server) Handler() http.Handler { return s.middleware(s.mux) }

// routeLabel buckets a path into its metric label — a closed set, so
// arbitrary request paths cannot mint unbounded label values.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/run":
		return "run"
	case p == "/v1/matrix":
		return "matrix"
	case strings.HasPrefix(p, "/v1/results/"):
		return "result"
	case strings.HasPrefix(p, "/v1/trace/"):
		return "trace"
	case p == "/v1/stats/stream":
		return "stats_stream"
	case p == "/healthz":
		return "healthz"
	case p == "/readyz":
		return "readyz"
	case p == "/clusterz":
		return "clusterz"
	case p == "/metricsz":
		return "metricsz"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "pprof"
	default:
		return "other"
	}
}

// statusWriter captures the response code while preserving http.Flusher —
// the matrix SSE stream (and /v1/stats/stream) flush through it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer (SSE requires it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware mints/propagates the request ID, opens the root span, binds
// the request-scoped logger, and records route metrics on completion.
// Scrape and debug routes skip tracing: a metrics poller must not churn
// the trace ring buffer that holds real request timelines.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}

		traced := route != "metricsz" && route != "healthz" &&
			route != "readyz" && route != "clusterz" &&
			route != "stats_stream" && route != "pprof"
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		sw.Header().Set(RequestIDHeader, reqID)

		ctx := r.Context()
		// Deadline propagation: X-Parrot-Deadline carries the caller's
		// remaining budget in whole milliseconds (a relative budget survives
		// clock skew between hops). It becomes this request's ctx deadline,
		// so the scheduler's feasibility check, queue eviction and any
		// cluster fan-out all run against the caller's clock. A zero or
		// negative budget means the caller's deadline already lapsed: the
		// ctx expires immediately and the handler answers 504.
		if route == "run" || route == "matrix" || route == "result" {
			if v := r.Header.Get(proto.DeadlineHeader); v != "" {
				if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
					if ms < 1 {
						ms = 1
					}
					budget := time.Duration(ms) * time.Millisecond
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, budget)
					defer cancel()
					s.deadlineReqs.Inc()
					s.deadlineBudget.Observe(budget.Seconds())
				}
			}
		}
		rlog := s.log.With(tlog.F("reqID", reqID), tlog.F("route", route))
		ctx = tlog.WithContext(ctx, rlog)
		var tr *telemetry.Trace
		if traced {
			tr = telemetry.NewTrace(reqID)
			s.traces.Put(tr)
			ctx = telemetry.WithTrace(ctx, tr)
			// Anchor the root span at the trace origin so every child span
			// sits at a non-negative offset inside it.
			start = tr.Start()
		}

		next.ServeHTTP(sw, r.WithContext(ctx))

		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		elapsed := time.Since(start)
		tr.AddSpan("http.request", telemetry.TIDRequest, start, start.Add(elapsed),
			telemetry.A("route", route),
			telemetry.A("method", r.Method),
			telemetry.A("code", fmt.Sprintf("%d", sw.code)))
		code := fmt.Sprintf("%d", sw.code)
		s.reqTotal(route, code).Inc()
		s.reqSecs(route).Observe(elapsed.Seconds())
		if traced {
			lv := tlog.LevelInfo
			if sw.code >= 500 {
				lv = tlog.LevelError
			}
			if rlog.Enabled(lv) {
				fields := []tlog.Field{
					tlog.F("status", sw.code),
					tlog.F("us", elapsed.Microseconds()),
				}
				if lv == tlog.LevelError {
					rlog.Error("request failed", fields...)
				} else {
					rlog.Info("request served", fields...)
				}
			}
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, proto.Error{Error: fmt.Sprintf(format, args...)})
}

// resolveSpec canonicalizes a (model, app, insts) triple.
func resolveSpec(modelID, appName string, insts int) (experiments.RunSpec, error) {
	var model config.Model
	found := false
	for _, m := range config.All() {
		if string(m.ID) == modelID {
			model, found = m, true
			break
		}
	}
	if !found {
		return experiments.RunSpec{}, fmt.Errorf("unknown model %q", modelID)
	}
	prof, ok := workload.ByName(appName)
	if !ok {
		return experiments.RunSpec{}, fmt.Errorf("unknown application %q", appName)
	}
	return experiments.RunSpec{Model: model, App: prof, Insts: insts}.Normalize(), nil
}

// schedErrStatus maps scheduler errors onto HTTP statuses.
func schedErrStatus(err error) int {
	switch {
	case errors.Is(err, sched.ErrQueueFull), errors.Is(err, sched.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, sched.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, sched.ErrDeadlineUnmeetable),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// writeShed surfaces an admission rejection as 429 plus back-off hints in
// every convention a client might honor: the standard Retry-After header
// (whole seconds, rounded up, min 1), the millisecond-precision
// X-Parrot-Retry-After-Ms companion, and the JSON error body.
func writeShed(w http.ResponseWriter, shed *sched.ShedError) {
	secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set(proto.RetryAfterMsHeader, strconv.FormatInt(shed.RetryAfter.Milliseconds(), 10))
	writeJSON(w, http.StatusTooManyRequests, proto.Error{
		Error:        shed.Error(),
		RetryAfterMs: shed.RetryAfter.Milliseconds(),
	})
}

// writeRunError surfaces a Submit failure on /v1/run. Shed and
// deadline-class failures first try graceful degradation (serveStale);
// sheds that cannot degrade carry Retry-After hints; everything else maps
// through schedErrStatus. Drain rejections never degrade — a draining node
// should shrink its work, not volunteer more.
func (s *Server) writeRunError(ctx context.Context, w http.ResponseWriter, spec experiments.RunSpec, start time.Time, err error) {
	degradable := errors.Is(err, sched.ErrShed) ||
		errors.Is(err, sched.ErrDeadlineUnmeetable) ||
		errors.Is(err, context.DeadlineExceeded)
	if degradable && s.serveStale(ctx, w, spec, start) {
		return
	}
	var shed *sched.ShedError
	if errors.As(err, &shed) {
		writeShed(w, shed)
		return
	}
	writeErr(w, schedErrStatus(err), "%v", err)
}

// serveStale is /v1/run's graceful-degradation path for shed or
// deadline-failed submits: first an exact-digest recheck (the cell may have
// landed while the job queued), then the newest cached result of the same
// (model, app, sim-version) family at any instruction budget. A family hit
// answers 200 with explicit staleness markers — Degraded/RequestedDigest in
// the body and X-Parrot-Degraded: stale on the wire — because an
// approximate power number now beats a 429 for latency-bound callers, and
// the marker lets everyone else discard it. Reports whether it wrote a
// response.
func (s *Server) serveStale(ctx context.Context, w http.ResponseWriter, spec experiments.RunSpec, start time.Time) bool {
	c := s.cfg.Cache
	if c == nil {
		return false
	}
	want := spec.Digest()
	if res, ok := c.GetCtx(ctx, want); ok {
		// The exact cell landed while the scheduler bounced us: serve it
		// fresh, no degradation needed.
		elapsed := time.Since(start)
		s.cellReqs(sched.DispCacheHit.String()).Inc()
		s.cellSecs(sched.DispCacheHit.String()).Observe(elapsed.Seconds())
		writeJSON(w, http.StatusOK, proto.RunResponse{
			Digest:       want,
			Cached:       true,
			Disposition:  sched.DispCacheHit.String(),
			RequestID:    telemetry.TraceFrom(ctx).ID(),
			ResultDigest: experiments.ResultDigest(res),
			ElapsedUs:    elapsed.Microseconds(),
			Result:       res,
			Node:         s.cfg.NodeID,
		})
		return true
	}
	res, digest, ok := c.GetFamily(ctx, spec.FamilyKey())
	if !ok {
		return false
	}
	s.degradedTotal.Inc()
	elapsed := time.Since(start)
	s.cellReqs("degraded").Inc()
	s.cellSecs("degraded").Observe(elapsed.Seconds())
	w.Header().Set(proto.DegradedHeader, "stale")
	writeJSON(w, http.StatusOK, proto.RunResponse{
		Digest:          digest,
		Cached:          true,
		Disposition:     "degraded",
		RequestID:       telemetry.TraceFrom(ctx).ID(),
		ResultDigest:    experiments.ResultDigest(res),
		ElapsedUs:       elapsed.Microseconds(),
		Result:          res,
		Node:            s.cfg.NodeID,
		Degraded:        true,
		RequestedDigest: want,
	})
	return true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req proto.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := resolveSpec(req.Model, req.App, req.Insts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Cluster routing. The hop guard wins over ownership: a request a peer
	// already forwarded is served here no matter what the local ring says,
	// so transient membership disagreement cannot produce a forwarding
	// loop. Otherwise, a digest owned elsewhere is proxied to its owner;
	// if every remote route fails, this node rescues it locally.
	rescued := false
	if cl := s.cfg.Cluster; cl != nil {
		digest := spec.Digest()
		if from := r.Header.Get(cluster.ForwardedHeader); from != "" {
			cl.NoteHopStop()
		} else if owner, self := cl.Owner(digest); !self {
			tr := telemetry.TraceFrom(ctx)
			sp := tr.StartSpanTID(telemetry.TIDCluster, "cluster.forward",
				telemetry.A("owner", owner))
			resp, info, ferr := cl.Execute(ctx, req, digest)
			if ferr == nil {
				sp.SetAttr("node", resp.Node)
				sp.End()
				cl.NoteForward(true)
				// Re-stamp the coordinator's correlation ID; the owner's own
				// trace is reachable on the owning node.
				resp.RequestID = tr.ID()
				resp.Attempts = info.Attempts
				writeJSON(w, http.StatusOK, *resp)
				return
			}
			sp.SetAttr("err", ferr.Error())
			sp.End()
			if !errors.Is(ferr, cluster.ErrRouteLocal) {
				cl.NoteForward(false)
				rescued = true
				tlog.From(ctx).Warn("forward failed, rescuing locally",
					tlog.F("digest", digest[:12]), tlog.F("err", ferr.Error()))
			}
		} else {
			cl.NoteLocal()
		}
	}

	start := time.Now()
	var (
		res  *core.Result
		disp sched.Disposition
	)
	if req.Priority == proto.PriorityBatch {
		res, disp, err = s.cfg.Sched.SubmitBatch(ctx, spec)
	} else {
		res, disp, err = s.cfg.Sched.Submit(ctx, spec)
	}
	if err != nil {
		s.writeRunError(ctx, w, spec, start, err)
		return
	}
	if rescued {
		s.cfg.Cluster.NoteRescued()
	}
	elapsed := time.Since(start)
	s.cellReqs(disp.String()).Inc()
	s.cellSecs(disp.String()).Observe(elapsed.Seconds())
	writeJSON(w, http.StatusOK, proto.RunResponse{
		Digest:       spec.Digest(),
		Cached:       disp.Cached(),
		Disposition:  disp.String(),
		RequestID:    telemetry.TraceFrom(ctx).ID(),
		ResultDigest: experiments.ResultDigest(res),
		ElapsedUs:    elapsed.Microseconds(),
		Result:       res,
		Node:         s.cfg.NodeID,
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if s.cfg.Cache == nil {
		writeErr(w, http.StatusNotFound, "no result cache configured")
		return
	}
	res, ok := s.cfg.Cache.GetCtx(r.Context(), digest)
	if !ok {
		writeErr(w, http.StatusNotFound, "no result under digest %.12s…", digest)
		return
	}
	writeJSON(w, http.StatusOK, proto.RunResponse{
		Digest:       digest,
		Cached:       true,
		Disposition:  sched.DispCacheHit.String(),
		RequestID:    telemetry.TraceFrom(r.Context()).ID(),
		ResultDigest: experiments.ResultDigest(res),
		Result:       res,
	})
}

// handleTrace serves a buffered request timeline. Default rendering is
// Chrome trace-event JSON (load in chrome://tracing or Perfetto);
// ?format=spans returns the raw span records.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no trace under request ID %q (ring buffer keeps the last %d)", id, s.traces.Cap())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.URL.Query().Get("format") == "spans" {
		_ = tr.WriteSpansJSON(w)
		return
	}
	_ = tr.WriteChromeTrace(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, proto.Health{
		OK:         true,
		Draining:   s.cfg.Sched.Draining(),
		UptimeMs:   time.Since(s.start).Milliseconds(),
		SimVersion: experiments.SimVersion,
		GoVersion:  runtime.Version(),
	})
}

// handleReadyz is the routing gate, distinct from /healthz liveness: 503
// while the pool prewarm is still running and during SIGTERM drain.
// Cluster heartbeats probe this endpoint, so a not-ready node keeps
// answering /healthz (alive, don't restart it) while peers stop routing
// cells to it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Sched.Ready() {
		writeJSON(w, http.StatusOK, proto.Ready{Ready: true})
		return
	}
	reason := "prewarming"
	if s.cfg.Sched.Draining() {
		reason = "draining"
	}
	writeJSON(w, http.StatusServiceUnavailable, proto.Ready{Ready: false, Reason: reason})
}

// handleClusterz exposes this node's membership view. Single-node daemons
// answer with a one-member ring so tooling works uniformly.
func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cluster == nil {
		writeJSON(w, http.StatusOK, proto.ClusterStatus{
			Self:    s.cfg.NodeID,
			Members: []string{},
			Nodes:   []proto.ClusterNode{},
		})
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Cluster.Status())
}

// handleMetricsz renders the registry in Prometheus text exposition format
// (0.0.4). The pre-telemetry JSON body survives under ?format=json for
// existing dashboards and the client library.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		s.metricszJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) metricszJSON(w http.ResponseWriter) {
	var m proto.Metrics
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		m.Cache = proto.CacheMetrics{
			Hits: cs.Hits, Misses: cs.Misses,
			MemHits: cs.MemHits, DiskHits: cs.DiskHits,
			Puts: cs.Puts, Evictions: cs.Evictions, DiskErrors: cs.DiskErrors,
			Entries: cs.Entries, Bytes: cs.Bytes, Budget: cs.Budget,
			HitRate:        cs.HitRate(),
			EntryBytesMean: cs.EntryBytesMean,
		}
	}
	ss := s.cfg.Sched.Stats()
	m.Sched = proto.SchedMetrics{
		Workers:          ss.Workers,
		Running:          ss.Running,
		InteractiveDepth: ss.InteractiveDepth,
		BatchDepth:       ss.BatchDepth,
		Completed:        ss.Completed,
		Deduped:          ss.Deduped,
		Rejected:         ss.Rejected,
		Abandoned:        ss.Abandoned,
		CacheHits:        ss.CacheHits,
		SimInsts:         ss.SimInsts,
		BusyUs:           ss.BusyTime.Microseconds(),
		SimMIPS:          ss.SimMIPS(),
		ShedInteractive:  ss.ShedInteractive,
		ShedBatch:        ss.ShedBatch,
		DeadlineRejected: ss.DeadlineRejected,
		DeadlineEvicted:  ss.DeadlineEvicted,
		AdmitLimit:       ss.AdmitLimit,
	}
	if up := time.Since(s.start); up > 0 && ss.Workers > 0 {
		m.Sched.Utilization = ss.BusyTime.Seconds() / (up.Seconds() * float64(ss.Workers))
	}
	ps := s.cfg.Sched.Pool().Stats()
	m.Pool = proto.PoolMetrics{
		Gets: ps.Gets, Reuses: ps.Reuses, Puts: ps.Puts, Discards: ps.Discards,
		Size: s.cfg.Sched.Pool().Size(),
	}
	writeJSON(w, http.StatusOK, m)
}

// handleStatsStream pushes periodic flat registry snapshots as SSE "stats"
// events until the client disconnects — a live top-style feed without
// polling /metricsz.
func (s *Server) handleStatsStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	interval := s.cfg.StatsInterval
	if ms := r.URL.Query().Get("interval_ms"); ms != "" {
		if d, err := time.ParseDuration(ms + "ms"); err == nil && d >= 100*time.Millisecond {
			interval = d
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	emit := func() bool {
		b, err := json.Marshal(s.reg.Flat())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: stats\ndata: %s\n\n", b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !emit() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if !emit() {
				return
			}
		}
	}
}
