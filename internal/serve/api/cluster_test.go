package api

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parrot/internal/cluster"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
	"parrot/internal/workload"
)

// clusterNode is one full parrotd stack inside a multi-node test cluster.
type clusterNode struct {
	url string
	hs  *httptest.Server
	sc  *sched.Sched
	cl  *cluster.Cluster
	c   *client.Client
}

// kill severs the node's HTTP surface, simulating a crashed process. Its
// membership entry survives on the peers (no probe loop runs in tests), so
// routing must discover the death from traffic and recover.
func (n *clusterNode) kill() { n.hs.Close() }

// testCluster boots n complete nodes — cache, scheduler, cluster layer,
// HTTP surface — on pre-bound listeners so every node knows the full
// advertise list before its cluster layer is built, exactly as parrotd's
// -peers flag provides it. The membership probe loop is NOT started:
// tests drive state through traffic (passive reports), keeping them
// deterministic.
func testCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		ca, err := cache.New(cache.Config{MemBudget: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		sc := sched.New(sched.Config{Workers: 2, Cache: ca, Pool: core.NewPool(), Registry: reg})
		cl := cluster.New(cluster.Config{
			Advertise: urls[i],
			Peers:     urls,
			VNodes:    32,
			Registry:  reg,
			Client: cluster.ClientConfig{
				MaxAttempts: 3,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
			},
		})
		srv := New(Config{Cache: ca, Sched: sc, Registry: reg, Cluster: cl})
		hs := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: srv.Handler()}}
		hs.Start()
		nodes[i] = &clusterNode{url: urls[i], hs: hs, sc: sc, cl: cl, c: client.New(urls[i])}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.hs.Close()
			nd.sc.Drain(context.Background())
		}
	})
	return nodes
}

// cellOwnedBy finds a (model, app) cell whose digest the ring assigns to
// owner. The search space (7 models × a few apps) always contains one for
// any member of a small ring.
func cellOwnedBy(t *testing.T, nd *clusterNode, owner string, insts int) (model, app, digest string) {
	t.Helper()
	for _, m := range []string{"N", "TN", "TON", "W", "TW", "TOW", "TOS"} {
		for _, a := range []string{"gzip", "swim", "gcc", "bzip", "crafty"} {
			spec, err := resolveSpec(m, a, insts)
			if err != nil {
				t.Fatal(err)
			}
			d := spec.Digest()
			if o, _ := nd.cl.Owner(d); o == owner {
				return m, a, d
			}
		}
	}
	t.Fatalf("no cell owned by %s in the probe set", owner)
	return "", "", ""
}

// TestClusterForwardAndHopGuard: a run posted to a non-owner is proxied to
// its ring owner exactly once (the hop guard stops re-forwarding), and the
// response says which node actually served it.
func TestClusterForwardAndHopGuard(t *testing.T) {
	nodes := testCluster(t, 2)
	ctx := context.Background()

	model, app, digest := cellOwnedBy(t, nodes[0], nodes[1].url, 3000)
	resp, err := nodes[0].c.Run(ctx, proto.RunRequest{Model: model, App: app, Insts: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != nodes[1].url {
		t.Fatalf("cell owned by %s served by %q", nodes[1].url, resp.Node)
	}
	if resp.Digest != digest {
		t.Fatalf("digest %s, want %s", resp.Digest, digest)
	}

	// The owner cached it: asking the owner directly is a hit served
	// locally — ownership and cache placement agree.
	direct, err := nodes[1].c.Run(ctx, proto.RunRequest{Model: model, App: app, Insts: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Cached || direct.Node != nodes[1].url {
		t.Fatalf("owner re-serve: cached=%v node=%q, want hit on %s", direct.Cached, direct.Node, nodes[1].url)
	}

	// Forward + hop-guard counters on the respective nodes.
	m0, err := nodes[0].c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m0.Get(`parrot_cluster_forwards_total{outcome="ok"}`); v < 1 {
		t.Fatalf("coordinator forwards ok = %g, want >= 1", v)
	}
	m1, err := nodes[1].c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m1.Get("parrot_cluster_hop_guard_total"); v < 1 {
		t.Fatalf("owner hop-guard stops = %g, want >= 1", v)
	}
}

// TestClusterMatrixDigestAndOwnership is the cluster's bit-exactness proof:
// a matrix scattered over three nodes reassembles to the same canonical
// digest as an in-process experiments.Run, every cell is served by its ring
// owner while all nodes are healthy, and a warm second pass through a
// different coordinator is all cache hits.
func TestClusterMatrixDigestAndOwnership(t *testing.T) {
	nodes := testCluster(t, 3)
	ctx := context.Background()

	modelIDs := []string{"N", "TON"}
	appNames := []string{"gzip", "swim", "gcc"}
	const insts = 10_000

	resp, err := nodes[0].c.Matrix(ctx, proto.MatrixRequest{
		Models: modelIDs, Apps: appNames, Insts: insts,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalCells != len(modelIDs)*len(appNames) {
		t.Fatalf("totalCells = %d, want %d", resp.TotalCells, len(modelIDs)*len(appNames))
	}

	// Healthy ring: every cell is stamped with — and was executed by — its
	// ring owner, so each cache entry lives on exactly one node.
	remote := 0
	for _, cell := range resp.Cells {
		owner, _ := nodes[0].cl.Owner(cell.Digest)
		if cell.Node != owner {
			t.Fatalf("cell %s/%s served by %q, ring owner is %s", cell.Model, cell.App, cell.Node, owner)
		}
		if cell.Node != nodes[0].url {
			remote++
		}
	}
	t.Logf("matrix scatter: %d/%d cells executed remotely", remote, resp.TotalCells)

	// Bit-exactness against the in-process reference.
	var models []config.Model
	for _, id := range modelIDs {
		models = append(models, config.Get(config.ModelID(id)))
	}
	var apps []workload.Profile
	for _, name := range appNames {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %s", name)
		}
		apps = append(apps, p)
	}
	local := experiments.Run(experiments.Config{Models: models, Apps: apps, Insts: insts})
	if resp.Digest != local.Digest() {
		t.Fatalf("cluster matrix digest %s != in-process digest %s", resp.Digest, local.Digest())
	}

	// Warm pass through a different coordinator: the ring sends each cell
	// to the node that cached it, so everything is a hit.
	resp2, err := nodes[1].c.Matrix(ctx, proto.MatrixRequest{
		Models: modelIDs, Apps: appNames, Insts: insts,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.CachedCells != resp2.TotalCells {
		t.Fatalf("warm pass: %d/%d cells cached, want all", resp2.CachedCells, resp2.TotalCells)
	}
	if resp2.Digest != resp.Digest {
		t.Fatal("warm-pass digest differs from cold-pass digest")
	}
}

// TestClusterRunRescuedAfterOwnerDeath: a /v1/run for a digest whose owner
// is dead still succeeds — the coordinator fails over or rescues the cell
// locally — and is never served by the dead node.
func TestClusterRunRescuedAfterOwnerDeath(t *testing.T) {
	nodes := testCluster(t, 3)
	ctx := context.Background()

	victim := nodes[2]
	model, app, _ := cellOwnedBy(t, nodes[0], victim.url, 4000)
	victim.kill()

	resp, err := nodes[0].c.Run(ctx, proto.RunRequest{Model: model, App: app, Insts: 4000})
	if err != nil {
		t.Fatalf("run with dead owner: %v", err)
	}
	if resp.Result == nil {
		t.Fatal("no result")
	}
	if resp.Node == victim.url {
		t.Fatalf("response claims the dead node %s served it", victim.url)
	}
}

// TestClusterMatrixSurvivesNodeDeath is the fan-out's fault-tolerance gate
// at test scale: with one node dead (still in the ring — no probes run),
// a matrix completes with zero failed cells, reproduces the in-process
// digest, and records recoveries for the dead node's cells.
func TestClusterMatrixSurvivesNodeDeath(t *testing.T) {
	nodes := testCluster(t, 3)
	ctx := context.Background()

	modelIDs := []string{"N", "TON"}
	appNames := []string{"gzip", "swim", "gcc", "bzip"}
	const insts = 8000

	// Pick a victim that owns at least one matrix cell, so death is
	// guaranteed to be on the routing path.
	victim := ""
	for _, m := range modelIDs {
		for _, a := range appNames {
			spec, err := resolveSpec(m, a, insts)
			if err != nil {
				t.Fatal(err)
			}
			if o, self := nodes[0].cl.Owner(spec.Digest()); !self {
				victim = o
			}
		}
	}
	if victim == "" {
		t.Skip("coordinator owns every cell in this tiny matrix")
	}
	for _, nd := range nodes {
		if nd.url == victim {
			nd.kill()
		}
	}

	resp, err := nodes[0].c.Matrix(ctx, proto.MatrixRequest{
		Models: modelIDs, Apps: appNames, Insts: insts,
	}, nil)
	if err != nil {
		t.Fatalf("matrix with a dead node: %v", err)
	}
	if resp.TotalCells != len(modelIDs)*len(appNames) {
		t.Fatalf("totalCells = %d, want %d (zero failed cells)", resp.TotalCells, len(modelIDs)*len(appNames))
	}
	for _, cell := range resp.Cells {
		if cell.Result == nil {
			t.Fatalf("cell %s/%s has no result", cell.Model, cell.App)
		}
		if cell.Node == victim {
			t.Fatalf("cell %s/%s claims the dead node %s served it", cell.Model, cell.App, victim)
		}
	}

	// Same bits as a healthy in-process run: fault tolerance must not
	// change results.
	var models []config.Model
	for _, id := range modelIDs {
		models = append(models, config.Get(config.ModelID(id)))
	}
	var apps []workload.Profile
	for _, name := range appNames {
		p, _ := workload.ByName(name)
		apps = append(apps, p)
	}
	local := experiments.Run(experiments.Config{Models: models, Apps: apps, Insts: insts})
	if resp.Digest != local.Digest() {
		t.Fatalf("degraded-cluster digest %s != in-process digest %s", resp.Digest, local.Digest())
	}

	// The dead node's cells were recovered (rescued locally or failed over).
	m0, err := nodes[0].c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m0.Get("parrot_cluster_recoveries_total"); v < 1 {
		t.Fatalf("recoveries = %g, want >= 1 with a dead owner", v)
	}
}

// TestClusterzAndReadyz: /clusterz exposes the ring view; /readyz gates on
// prewarm/drain state while /healthz stays alive.
func TestClusterzAndReadyz(t *testing.T) {
	nodes := testCluster(t, 2)
	ctx := context.Background()

	st, err := nodes[0].c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != nodes[0].url || len(st.Members) != 2 || len(st.Nodes) != 2 {
		t.Fatalf("clusterz: self=%q members=%d nodes=%d", st.Self, len(st.Members), len(st.Nodes))
	}
	// The client-side ring rebuild (members × vnodes) matches the server's
	// ownership — what parrotctl matrix -verify-owners relies on.
	ring := cluster.NewRing(st.Members, st.VNodes)
	for _, m := range []string{"N", "TON", "TOS"} {
		spec, err := resolveSpec(m, "gzip", 1000)
		if err != nil {
			t.Fatal(err)
		}
		d := spec.Digest()
		want, _ := nodes[0].cl.Owner(d)
		if got, _ := ring.Owner(d); got != want {
			t.Fatalf("client-side ring owner %q != server owner %q", got, want)
		}
	}

	if err := nodes[0].c.Ready(ctx); err != nil {
		t.Fatalf("fresh node not ready: %v", err)
	}
	nodes[0].sc.SetReady(false)
	if err := nodes[0].c.Ready(ctx); err == nil {
		t.Fatal("prewarming node reported ready")
	}
	if _, err := nodes[0].c.Health(ctx); err != nil {
		t.Fatalf("not-ready node must stay alive on /healthz: %v", err)
	}
	nodes[0].sc.SetReady(true)
	if err := nodes[0].c.Ready(ctx); err != nil {
		t.Fatalf("node not ready after prewarm finished: %v", err)
	}
}
