package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"parrot/internal/core"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
)

// overloadServer stands up the serving stack and also returns the raw
// httptest server, so tests can inspect status codes and headers the client
// library normally absorbs into typed errors.
func overloadServer(t *testing.T) (*httptest.Server, *client.Client, *sched.Sched) {
	t.Helper()
	c, err := cache.New(cache.Config{MemBudget: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s := sched.New(sched.Config{Workers: 2, Cache: c, Pool: core.NewPool(), Registry: reg})
	srv := New(Config{Cache: c, Sched: s, Registry: reg})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain(context.Background())
	})
	return hs, client.New(hs.URL), s
}

func postRun(t *testing.T, hs *httptest.Server, req proto.RunRequest, hdr map[string]string) *http.Response {
	t.Helper()
	b, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/run", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := hs.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestShedAnswers429WithRetryAfter: a submit bounced by admission control
// must surface as 429 carrying the back-off hint in all three conventions —
// Retry-After, X-Parrot-Retry-After-Ms, and the JSON body.
func TestShedAnswers429WithRetryAfter(t *testing.T) {
	hs, _, s := overloadServer(t)
	s.SetAdmitLimit(0) // shed everything that is not cache-served

	resp := postRun(t, hs, proto.RunRequest{Model: "TON", App: "gzip", Insts: 5000}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	ms, err := strconv.ParseInt(resp.Header.Get(proto.RetryAfterMsHeader), 10, 64)
	if err != nil || ms <= 0 {
		t.Fatalf("%s = %q, want positive ms", proto.RetryAfterMsHeader, resp.Header.Get(proto.RetryAfterMsHeader))
	}
	var e proto.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RetryAfterMs != ms {
		t.Fatalf("body retryAfterMs = %d, header = %d: hints disagree", e.RetryAfterMs, ms)
	}
	if st := s.Stats(); st.ShedInteractive != 1 {
		t.Fatalf("ShedInteractive = %d, want 1", st.ShedInteractive)
	}
}

// TestDegradedStaleServesFamilyFallback: under shed pressure, a cell whose
// (model, app) family has a cached result at another instruction budget is
// served degraded — 200, explicit staleness markers, X-Parrot-Degraded —
// instead of bounced.
func TestDegradedStaleServesFamilyFallback(t *testing.T) {
	hs, cl, s := overloadServer(t)

	// Warm the family at one budget, then shed everything.
	warm, err := cl.Run(context.Background(), proto.RunRequest{Model: "TON", App: "gzip", Insts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdmitLimit(0)

	resp := postRun(t, hs, proto.RunRequest{Model: "TON", App: "gzip", Insts: 9000}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via degraded fallback", resp.StatusCode)
	}
	if got := resp.Header.Get(proto.DegradedHeader); got != "stale" {
		t.Fatalf("%s = %q, want \"stale\"", proto.DegradedHeader, got)
	}
	var out proto.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.Disposition != "degraded" {
		t.Fatalf("degraded=%v disposition=%q, want explicit staleness markers", out.Degraded, out.Disposition)
	}
	if out.Digest != warm.Digest {
		t.Fatalf("degraded digest = %s, want the family's cached digest %s", out.Digest, warm.Digest)
	}
	if out.RequestedDigest == "" || out.RequestedDigest == out.Digest {
		t.Fatalf("requestedDigest = %q, want the distinct digest actually asked for", out.RequestedDigest)
	}
	if out.Result == nil || out.Result.Insts == 0 {
		t.Fatal("degraded response carries no result")
	}

	// An unrelated family has nothing to degrade to: plain 429.
	resp2 := postRun(t, hs, proto.RunRequest{Model: "TON", App: "swim", Insts: 5000}, nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold-family status = %d, want 429", resp2.StatusCode)
	}
}

// TestDeadlineHeaderBecomesGatewayTimeout: the X-Parrot-Deadline budget must
// become the request ctx deadline, so a budget below the cost model's
// estimate fast-fails as 504 without simulating.
func TestDeadlineHeaderBecomesGatewayTimeout(t *testing.T) {
	hs, cl, s := overloadServer(t)

	// Observe model N once so the cost model has a run-time estimate well
	// above the 1ms budget the overloaded request will carry.
	if _, err := cl.Run(context.Background(), proto.RunRequest{Model: "N", App: "gzip", Insts: 2_000_000}); err != nil {
		t.Fatal(err)
	}

	// Different app (cold family — nothing to degrade to), 1ms budget.
	resp := postRun(t, hs, proto.RunRequest{Model: "N", App: "swim", Insts: 2_000_000},
		map[string]string{proto.DeadlineHeader: "1"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 for an unmeetable deadline", resp.StatusCode)
	}
	st := s.Stats()
	if st.DeadlineRejected == 0 {
		t.Fatalf("stats = %+v, want a deadline rejection", st)
	}

	// The deadline middleware instruments every budgeted request.
	mctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	exp, err := cl.MetricsText(mctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Get("parrot_deadline_requests_total"); !ok || v < 1 {
		t.Fatalf("parrot_deadline_requests_total = %v (present=%v), want >= 1", v, ok)
	}
}

// TestMatrixPartialResults: shed cells become explicit per-cell failure
// entries — the matrix completes partial with FailedCells set and no digest,
// instead of aborting the whole fan-out.
func TestMatrixPartialResults(t *testing.T) {
	_, cl, s := overloadServer(t)
	ctx := context.Background()

	// Warm one cell; its cache fast path survives any admission clamp.
	if _, err := cl.Run(ctx, proto.RunRequest{Model: "TON", App: "gzip", Insts: 5000}); err != nil {
		t.Fatal(err)
	}
	s.SetAdmitLimit(0)

	var last proto.Progress
	resp, err := cl.Matrix(ctx, proto.MatrixRequest{
		Models: []string{"TON"}, Apps: []string{"gzip", "swim"}, Insts: 5000,
	}, func(p proto.Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalCells != 2 || resp.FailedCells != 1 {
		t.Fatalf("cells = %d total / %d failed, want 2 / 1", resp.TotalCells, resp.FailedCells)
	}
	if resp.Digest != "" {
		t.Fatalf("partial matrix carries digest %q, want none", resp.Digest)
	}
	if last.Failed != 1 {
		t.Fatalf("final progress Failed = %d, want 1", last.Failed)
	}
	for _, cell := range resp.Cells {
		switch cell.App {
		case "gzip":
			if cell.Error != "" || cell.Result == nil || !cell.Cached {
				t.Fatalf("warm cell %+v, want a cached result", cell)
			}
		case "swim":
			if cell.Error == "" || cell.Result != nil {
				t.Fatalf("shed cell %+v, want an explicit error and no result", cell)
			}
		}
	}
}
