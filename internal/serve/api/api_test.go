package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
	"parrot/internal/workload"
)

// testServer stands up the full serving stack — cache, scheduler, HTTP
// surface — behind an httptest listener, and a real client in front of it,
// so these tests also exercise SSE parsing and digest verification in the
// client library.
func testServer(t *testing.T) (*client.Client, *cache.Cache, *sched.Sched) {
	t.Helper()
	c, err := cache.New(cache.Config{MemBudget: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// One registry shared by scheduler and server, exactly as parrotd wires
	// it, so /metricsz scrapes exercise every collector.
	reg := telemetry.NewRegistry()
	s := sched.New(sched.Config{Workers: 2, Cache: c, Pool: core.NewPool(), Registry: reg})
	srv := New(Config{Cache: c, Sched: s, Registry: reg})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain(context.Background())
	})
	return client.New(hs.URL), c, s
}

func TestRunEndToEnd(t *testing.T) {
	cl, _, _ := testServer(t)
	ctx := context.Background()

	resp, err := cl.Run(ctx, proto.RunRequest{Model: "TON", App: "gzip", Insts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first run reported cached")
	}
	if resp.Result.Model != "TON" || resp.Result.App != "gzip" || resp.Result.Insts == 0 {
		t.Fatalf("bad result header: %s/%s insts=%d", resp.Result.Model, resp.Result.App, resp.Result.Insts)
	}
	// The same cell again: cache hit, identical content address + payload.
	resp2, err := cl.Run(ctx, proto.RunRequest{Model: "TON", App: "gzip", Insts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("second run missed the cache")
	}
	if resp2.Digest != resp.Digest || resp2.ResultDigest != resp.ResultDigest {
		t.Fatalf("digests changed across cache hit: %s/%s vs %s/%s",
			resp2.Digest, resp2.ResultDigest, resp.Digest, resp.ResultDigest)
	}

	// The computed cell is addressable by digest.
	got, err := cl.Result(ctx, resp.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.ResultDigest != resp.ResultDigest {
		t.Fatal("results endpoint served a different result")
	}
}

// TestMatrixDigestMatchesInProcessRun is the serving layer's bit-exactness
// proof at test scale: a small matrix served over HTTP + SSE must
// reassemble to the same canonical digest as an in-process experiments.Run
// over the same cells.
func TestMatrixDigestMatchesInProcessRun(t *testing.T) {
	cl, _, _ := testServer(t)
	ctx := context.Background()

	modelIDs := []string{"N", "TON"}
	appNames := []string{"gzip", "swim", "gcc"}
	const insts = 20_000

	var progress []proto.Progress
	resp, err := cl.Matrix(ctx, proto.MatrixRequest{
		Models: modelIDs, Apps: appNames, Insts: insts,
	}, func(p proto.Progress) { progress = append(progress, p) })
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalCells != len(modelIDs)*len(appNames) {
		t.Fatalf("totalCells = %d, want %d", resp.TotalCells, len(modelIDs)*len(appNames))
	}

	// SSE progress: one event per cell, done strictly increasing 1..total.
	if len(progress) != resp.TotalCells {
		t.Fatalf("progress events = %d, want %d", len(progress), resp.TotalCells)
	}
	for i, p := range progress {
		if p.Done != i+1 || p.Total != resp.TotalCells {
			t.Fatalf("progress[%d] = %d/%d, want %d/%d", i, p.Done, p.Total, i+1, resp.TotalCells)
		}
	}

	// Local reference matrix over the same cells.
	var models []config.Model
	for _, id := range modelIDs {
		models = append(models, config.Get(config.ModelID(id)))
	}
	var apps []workload.Profile
	for _, name := range appNames {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %s", name)
		}
		apps = append(apps, p)
	}
	local := experiments.Run(experiments.Config{Models: models, Apps: apps, Insts: insts})
	if resp.Digest != local.Digest() {
		t.Fatalf("served matrix digest %s != in-process digest %s", resp.Digest, local.Digest())
	}
	if resp.PMaxApp != local.PMaxApp || resp.PMax != local.PMax {
		t.Fatalf("PMax anchor differs: served %s/%g, local %s/%g",
			resp.PMaxApp, resp.PMax, local.PMaxApp, local.PMax)
	}

	// Second pass: every cell must be served from cache, digest unchanged.
	resp2, err := cl.Matrix(ctx, proto.MatrixRequest{
		Models: modelIDs, Apps: appNames, Insts: insts,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.CachedCells != resp2.TotalCells {
		t.Fatalf("warm pass: %d/%d cells cached, want all", resp2.CachedCells, resp2.TotalCells)
	}
	if resp2.Digest != resp.Digest {
		t.Fatal("warm-pass digest differs from cold-pass digest")
	}
}

func TestBadRequests(t *testing.T) {
	cl, _, _ := testServer(t)
	ctx := context.Background()

	if _, err := cl.Run(ctx, proto.RunRequest{Model: "NOPE", App: "gzip"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := cl.Run(ctx, proto.RunRequest{Model: "TON", App: "nope"}); err == nil {
		t.Fatal("unknown application accepted")
	}
	if _, err := cl.Matrix(ctx, proto.MatrixRequest{Models: []string{"NOPE"}}, nil); err == nil {
		t.Fatal("unknown matrix model accepted")
	}
	if _, err := cl.Result(ctx, "deadbeef"); err == nil {
		t.Fatal("missing digest served")
	}
}

func TestHealthzAndMetricsz(t *testing.T) {
	cl, _, s := testServer(t)
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Draining || h.SimVersion != experiments.SimVersion {
		t.Fatalf("health = %+v", h)
	}

	if _, err := cl.Run(ctx, proto.RunRequest{Model: "N", App: "gzip", Insts: 5000}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(ctx, proto.RunRequest{Model: "N", App: "gzip", Insts: 5000}); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sched.Completed != 1 || m.Sched.CacheHits != 1 {
		t.Fatalf("sched metrics = %+v, want 1 completed / 1 cacheHit", m.Sched)
	}
	if m.Cache.Puts != 1 || m.Cache.Hits != 1 {
		t.Fatalf("cache metrics = %+v, want 1 put / 1 hit", m.Cache)
	}
	if m.Sched.SimMIPS <= 0 {
		t.Fatalf("SimMIPS = %g, want > 0", m.Sched.SimMIPS)
	}

	// Drain is reflected in /healthz.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Draining {
		t.Fatal("healthz does not report draining")
	}
}

// TestCorruptedRunResponseRejectedByClient pins the client-side integrity
// check: a response whose payload does not reproduce its ResultDigest must
// be rejected, not silently accepted.
func TestCorruptedRunResponseRejectedByClient(t *testing.T) {
	// A proxy that flips one numeric field in the run response.
	cl, _, _ := testServer(t)
	resp, err := cl.Run(context.Background(), proto.RunRequest{Model: "TN", App: "swim", Insts: 5000})
	if err != nil {
		t.Fatal(err)
	}

	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			http.NotFound(w, r)
			return
		}
		bad := *resp
		badRes := *resp.Result
		badRes.Cycles++ // transport corruption
		bad.Result = &badRes
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(bad)
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	}))
	defer corrupt.Close()

	_, err = client.New(corrupt.URL).Run(context.Background(), proto.RunRequest{Model: "TN", App: "swim", Insts: 5000})
	if err == nil {
		t.Fatal("client accepted a corrupted result")
	}
}
