package api

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
	"parrot/internal/workload"
)

// TestMetricszPrometheus drives real traffic through the stack and then
// asserts the /metricsz exposition parses and carries the inventoried
// series with values consistent with the traffic: requests by route, the
// cell-disposition split, queue-wait histograms, cache/pool/sim series.
func TestMetricszPrometheus(t *testing.T) {
	cl, _, _ := testServer(t)
	ctx := context.Background()

	// One exact simulation, one cache hit.
	if _, err := cl.Run(ctx, proto.RunRequest{Model: "N", App: "gzip", Insts: 5000}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(ctx, proto.RunRequest{Model: "N", App: "gzip", Insts: 5000}); err != nil {
		t.Fatal(err)
	}

	exp, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	get := func(key string) float64 {
		t.Helper()
		v, ok := exp.Get(key)
		if !ok {
			t.Fatalf("series %s absent from scrape; families: %v", key, exp.Names)
		}
		return v
	}

	if v := get(`parrot_requests_total{code="200",route="run"}`); v != 2 {
		t.Fatalf("run requests = %g, want 2", v)
	}
	if v := get(`parrot_cell_requests_total{disposition="exact"}`); v != 1 {
		t.Fatalf("exact cells = %g, want 1", v)
	}
	if v := get(`parrot_cell_requests_total{disposition="hit"}`); v != 1 {
		t.Fatalf("hit cells = %g, want 1", v)
	}
	// Queue-wait histogram: the exact run was enqueued once.
	if v := get(`parrot_queue_wait_seconds_count{class="interactive"}`); v != 1 {
		t.Fatalf("interactive queue waits = %g, want 1", v)
	}
	if exp.Types["parrot_queue_wait_seconds"] != "histogram" {
		t.Fatalf("parrot_queue_wait_seconds type = %q", exp.Types["parrot_queue_wait_seconds"])
	}
	// Scheduler outcome split sums to submissions (the no-torn invariant as
	// seen through a scrape).
	var outcomes float64
	for _, k := range exp.Family("parrot_sched_outcomes_total") {
		outcomes += exp.Series[k]
	}
	if submitted := get("parrot_sched_submitted_total"); outcomes != submitted {
		t.Fatalf("outcomes sum %g != submitted %g", outcomes, submitted)
	}
	// Cache, pool and sim families present with consistent values.
	if v := get(`parrot_cache_lookups_total{level="mem"}`); v != 1 {
		t.Fatalf("mem hits = %g, want 1", v)
	}
	if get("parrot_cache_entries") != 1 || get("parrot_cache_puts_total") != 1 {
		t.Fatal("cache gauge/counter inconsistent with one stored cell")
	}
	if get("parrot_pool_gets_total") < 1 {
		t.Fatal("pool saw no checkouts")
	}
	if get("parrot_sim_insts_total") <= 0 || get(`parrot_sim_runs_total{memo="exact"}`) != 1 {
		t.Fatal("sim totals inconsistent with one exact run")
	}
	if get("parrot_request_seconds_count{route=\"run\"}") != 2 {
		t.Fatal("request latency histogram did not record both requests")
	}

	// The legacy JSON body survives under ?format=json.
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sched.Completed != 1 || m.Sched.CacheHits != 1 {
		t.Fatalf("legacy JSON metrics = %+v", m.Sched)
	}
}

// TestTraceEndpointRoundTrip pins the request-tracing contract: a /v1/run
// response names its request ID; /v1/trace/{id} serves parseable Chrome
// trace-event JSON; the span set covers submit→queued→checkout→run→cache
// write-back with correct disposition attrs; worker spans tile exactly and
// nest inside the root http.request span.
func TestTraceEndpointRoundTrip(t *testing.T) {
	cl, _, _ := testServer(t)
	ctx := context.Background()

	resp, err := cl.Run(ctx, proto.RunRequest{Model: "TON", App: "swim", Insts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RequestID == "" {
		t.Fatal("run response carries no request ID")
	}
	if resp.Disposition != "exact" && resp.Disposition != "replayed" {
		t.Fatalf("cold run disposition = %q, want a simulation", resp.Disposition)
	}

	// Chrome trace-event JSON parses and is keyed to the request.
	raw, err := cl.Trace(ctx, resp.RequestID)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace endpoint body is not Chrome trace JSON: %v", err)
	}
	if doc.OtherData["requestId"] != resp.RequestID {
		t.Fatalf("trace requestId = %v, want %s", doc.OtherData["requestId"], resp.RequestID)
	}

	// Raw spans: taxonomy, attrs, nesting and tiling.
	spans, err := cl.TraceSpans(ctx, resp.RequestID)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]telemetry.Span{}
	for _, sp := range spans.Spans {
		byName[sp.Name] = sp
	}
	for _, name := range []string{"http.request", "sched.submit", "sched.wait",
		"sched.queued", "machine.checkout", "sim.run", "cache.put"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing; got %v", name, names(spans.Spans))
		}
	}
	if got := byName["sched.submit"].Attrs["disposition"]; got != resp.Disposition {
		t.Fatalf("sched.submit disposition attr = %q, want %q", got, resp.Disposition)
	}
	if got := byName["sim.run"].Attrs["memo"]; got != resp.Disposition {
		t.Fatalf("sim.run memo attr = %q, want %q", got, resp.Disposition)
	}
	if byName["sim.run"].Attrs["model"] != "TON" || byName["sim.run"].Attrs["app"] != "swim" {
		t.Fatalf("sim.run attrs = %v", byName["sim.run"].Attrs)
	}

	// Worker-row spans tile exactly: queued→checkout→run→cache.put share
	// boundary timestamps.
	for _, pair := range [][2]string{
		{"sched.queued", "machine.checkout"},
		{"machine.checkout", "sim.run"},
		{"sim.run", "cache.put"},
	} {
		a, b := byName[pair[0]], byName[pair[1]]
		if a.TID != telemetry.TIDWorker || b.TID != telemetry.TIDWorker {
			t.Fatalf("%s/%s not on the worker row", pair[0], pair[1])
		}
		if a.End() != b.StartUs {
			t.Fatalf("%s [..%d] does not tile into %s [%d..]", pair[0], a.End(), pair[1], b.StartUs)
		}
	}
	// Everything nests inside the root.
	root := byName["http.request"]
	if root.TID != telemetry.TIDRequest {
		t.Fatal("http.request not on the request row")
	}
	for _, sp := range spans.Spans {
		if sp.Name == "http.request" {
			continue
		}
		if sp.StartUs < root.StartUs || sp.End() > root.End() {
			t.Fatalf("span %s [%d,%d] escapes root [%d,%d]",
				sp.Name, sp.StartUs, sp.End(), root.StartUs, root.End())
		}
	}

	// Warm hit: disposition flips to "hit", trace shows the cache.get span
	// with a mem outcome and no worker spans.
	resp2, err := cl.Run(ctx, proto.RunRequest{Model: "TON", App: "swim", Insts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Disposition != "hit" || resp2.RequestID == resp.RequestID {
		t.Fatalf("warm run: disposition=%q requestID=%q", resp2.Disposition, resp2.RequestID)
	}
	spans2, err := cl.TraceSpans(ctx, resp2.RequestID)
	if err != nil {
		t.Fatal(err)
	}
	var sawGet bool
	for _, sp := range spans2.Spans {
		if sp.Name == "cache.get" {
			sawGet = true
			if sp.Attrs["outcome"] != "mem" {
				t.Fatalf("cache.get outcome = %q, want mem", sp.Attrs["outcome"])
			}
		}
		if sp.Name == "sim.run" {
			t.Fatal("cache-hit trace contains a sim.run span")
		}
	}
	if !sawGet {
		t.Fatalf("cache-hit trace has no cache.get span: %v", names(spans2.Spans))
	}

	// A client-supplied request ID is honored.
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, cl.Base()+"/v1/run",
		strings.NewReader(`{"model":"TON","app":"swim"}`))
	req.Header.Set(RequestIDHeader, "my-custom-id-001")
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if got := hres.Header.Get(RequestIDHeader); got != "my-custom-id-001" {
		t.Fatalf("request ID not propagated: %q", got)
	}
	if _, err := cl.TraceSpans(ctx, "my-custom-id-001"); err != nil {
		t.Fatalf("propagated request ID not traceable: %v", err)
	}

	// Unknown IDs 404.
	if _, err := cl.Trace(ctx, "nope"); err == nil {
		t.Fatal("unknown trace ID served")
	}
}

func names(spans []telemetry.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestStatsStreamSSE reads the first snapshot off /v1/stats/stream and
// checks it is a flat series map carrying live values.
func TestStatsStreamSSE(t *testing.T) {
	cl, _, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := cl.Run(ctx, proto.RunRequest{Model: "N", App: "gzip", Insts: 5000}); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		cl.Base()+"/v1/stats/stream?interval_ms=100", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no stats event received: %v", sc.Err())
	}
	var flat map[string]float64
	if err := json.Unmarshal([]byte(data), &flat); err != nil {
		t.Fatalf("stats event is not a flat series map: %v", err)
	}
	if flat["parrot_sched_completed_total"] != 1 {
		t.Fatalf("streamed completed = %g, want 1", flat["parrot_sched_completed_total"])
	}
	if _, ok := flat["parrot_uptime_seconds"]; !ok {
		t.Fatal("stream snapshot missing uptime")
	}
}

// TestTelemetryPreservesResults is the PR's bit-exactness pin: a server
// with every telemetry feature enabled (registry, tracing, logging, stats
// streaming) must produce matrices byte-identical to an in-process
// experiments.Run — observability cannot perturb simulation.
func TestTelemetryPreservesResults(t *testing.T) {
	c, err := cache.New(cache.Config{MemBudget: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	logger := tlog.New(os.Stderr, tlog.LevelError) // real sink, quiet level
	s := sched.New(sched.Config{Workers: 2, Cache: c, Pool: core.NewPool(), Registry: reg, Log: logger})
	srv := New(Config{Cache: c, Sched: s, Registry: reg, Log: logger, TraceBuf: 16, EnablePprof: true})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain(context.Background())
	})
	cl := client.New(hs.URL)
	ctx := context.Background()

	modelIDs := []string{"N", "TON"}
	appNames := []string{"gzip", "swim"}
	const insts = 20_000

	cold, err := cl.Matrix(ctx, proto.MatrixRequest{Models: modelIDs, Apps: appNames, Insts: insts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cl.Matrix(ctx, proto.MatrixRequest{Models: modelIDs, Apps: appNames, Insts: insts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Digest != cold.Digest {
		t.Fatal("warm digest differs from cold digest under telemetry")
	}
	if warm.CachedCells != warm.TotalCells {
		t.Fatalf("warm pass: %d/%d cached", warm.CachedCells, warm.TotalCells)
	}
	for _, cell := range warm.Cells {
		if cell.Disposition != "hit" {
			t.Fatalf("warm cell %s/%s disposition = %q, want hit", cell.Model, cell.App, cell.Disposition)
		}
	}

	var models []config.Model
	for _, id := range modelIDs {
		models = append(models, config.Get(config.ModelID(id)))
	}
	var apps []workload.Profile
	for _, name := range appNames {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %s", name)
		}
		apps = append(apps, p)
	}
	local := experiments.Run(experiments.Config{Models: models, Apps: apps, Insts: insts})
	if cold.Digest != local.Digest() {
		t.Fatalf("telemetry-on digest %s != in-process digest %s", cold.Digest, local.Digest())
	}

	// pprof is routable when enabled.
	pr, err := http.Get(hs.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", pr.StatusCode)
	}
}
