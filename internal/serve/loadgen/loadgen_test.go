package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"parrot/internal/core"
	"parrot/internal/serve/api"
	"parrot/internal/serve/cache"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/serve/sched"
)

func testClient(t *testing.T) *client.Client {
	t.Helper()
	c, err := cache.New(cache.Config{MemBudget: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(sched.Config{Workers: 2, Cache: c, Pool: core.NewPool()})
	srv := api.New(api.Config{Cache: c, Sched: s})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain(context.Background())
	})
	return client.New(hs.URL)
}

// TestClosedLoopWarmIsAllHits warms a 2×2 cell set once, then replays it
// closed-loop: every measured request must be a cache hit and the report's
// percentile split must be consistent.
func TestClosedLoopWarmIsAllHits(t *testing.T) {
	cl := testClient(t)
	ctx := context.Background()
	models := []string{"N", "TON"}
	apps := []string{"gzip", "swim"}

	// Warm pass via the batch endpoint — the harness's -warm path.
	if _, err := cl.Matrix(ctx, proto.MatrixRequest{Models: models, Apps: apps, Insts: 5000}, nil); err != nil {
		t.Fatal(err)
	}

	const requests = 32
	rep, err := Run(ctx, Config{
		Client:      cl,
		Mode:        "closed",
		Concurrency: 4,
		Requests:    requests,
		Models:      models,
		Apps:        apps,
		Insts:       5000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != requests || rep.Errors != 0 {
		t.Fatalf("report: %d requests, %d errors; want %d/0", rep.Requests, rep.Errors, requests)
	}
	if rep.HitRate != 1.0 {
		t.Fatalf("hit rate = %.3f, want 1.0 against a warm cache", rep.HitRate)
	}
	if rep.Cached.N != requests || rep.Uncached.N != 0 {
		t.Fatalf("latency split cached=%d uncached=%d, want %d/0", rep.Cached.N, rep.Uncached.N, requests)
	}
	if rep.Cached.P99 <= 0 || rep.Cached.Max < rep.Cached.P50 {
		t.Fatalf("implausible percentiles: %+v", rep.Cached)
	}
	if rep.DistinctMod != 2 || rep.DistinctApp != 2 {
		t.Fatalf("distinct counts %d×%d, want 2×2", rep.DistinctMod, rep.DistinctApp)
	}
	if rep.String() == "" {
		t.Fatal("empty human summary")
	}
}

// TestColdThenWarmSplit runs a cold stream exactly the size of the cell
// set, then the same stream again: the second report must be all hits and
// the first all misses.
func TestColdThenWarmSplit(t *testing.T) {
	cl := testClient(t)
	ctx := context.Background()
	cfg := Config{
		Client:      cl,
		Mode:        "closed",
		Concurrency: 1, // serial: each distinct cell exactly once
		Requests:    4,
		Models:      []string{"TN"},
		Apps:        []string{"gzip", "swim", "gcc", "word"},
		Insts:       5000,
		Seed:        7,
	}
	cold, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold pass had %d hits, want 0", cold.CacheHits)
	}
	warm, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.HitRate != 1.0 {
		t.Fatalf("warm pass hit rate %.3f, want 1.0", warm.HitRate)
	}
}

func TestOpenLoopAgainstWarmCache(t *testing.T) {
	cl := testClient(t)
	ctx := context.Background()
	models := []string{"TON"}
	apps := []string{"gzip"}
	if _, err := cl.Matrix(ctx, proto.MatrixRequest{Models: models, Apps: apps, Insts: 5000}, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, Config{
		Client:      cl,
		Mode:        "open",
		RateHz:      500,
		Requests:    20,
		Duration:    10 * time.Second, // safety stop; requests should rule
		Models:      models,
		Apps:        apps,
		Insts:       5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("open loop errors = %d, want 0 (in-flight bound generous)", rep.Errors)
	}
	if rep.HitRate != 1.0 {
		t.Fatalf("hit rate = %.3f, want 1.0", rep.HitRate)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("nil client accepted")
	}
	cl := client.New("http://127.0.0.1:1")
	if _, err := Run(context.Background(), Config{Client: cl, Mode: "sideways"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
