// Package loadgen is the serving layer's load-test harness: it replays
// open- or closed-loop request streams of single-cell runs against a
// parrotd instance and reports latency percentiles split by cache
// disposition. Its reason to exist is the acceptance proof of the serving
// layer — against a warm daemon, a repeated 44×7 matrix must be a ≥95%-hit
// workload with sub-5ms cached-cell p99.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"parrot/internal/metrics"
	"parrot/internal/serve/client"
	"parrot/internal/serve/proto"
	"parrot/internal/workload"
)

// allAppNames returns the full benchmark roster's names.
func allAppNames() []string {
	apps := workload.Apps()
	out := make([]string, len(apps))
	for i, p := range apps {
		out[i] = p.Name
	}
	return out
}

// Config parameterizes one load run.
type Config struct {
	Client *client.Client
	// Clients, when non-empty, supersedes Client: requests round-robin over
	// the listed nodes, spreading coordinator load across a cluster (each
	// node forwards non-owned digests to their ring owner itself).
	Clients []*client.Client

	// Mode is "closed" (Concurrency workers issuing back-to-back) or
	// "open" (Poisson-free fixed-rate arrivals at RateHz, each served on
	// its own goroutine — latency includes queueing, as production traffic
	// would observe).
	Mode string
	// Concurrency is the closed-loop worker count (<=0 = 4). In open-loop
	// mode it bounds in-flight requests (<=0 = 512).
	Concurrency int
	// RateHz is the open-loop arrival rate (<=0 = 50/s).
	RateHz float64

	// Requests stops after this many issued requests (<=0: Duration rules).
	Requests int
	// Duration stops after this wall time (<=0 = 10s when Requests unset).
	Duration time.Duration

	// Models/Apps name the cell set cycled through (empty = all seven
	// models / full 44-app roster — the paper's matrix). The stream walks a
	// deterministic Seed-shuffled permutation of the cells, repeating.
	Models []string
	Apps   []string
	Insts  int
	Seed   int64

	// BatchFraction sends this share of requests on the batch priority
	// class (0 = all interactive). Overload runs mix classes to prove
	// batch sheds before interactive.
	BatchFraction float64
	// Distinct, when > 0, churns each request's instruction budget through
	// Distinct variants (Insts, Insts+1, …), defeating the result cache —
	// a cold storm that forces real simulation work under overload.
	Distinct int
	// DeadlineMs stamps each request with a per-request ctx deadline, so
	// the X-Parrot-Deadline propagation path is exercised (0 = none).
	DeadlineMs int
}

// Percentiles summarizes a latency population (microseconds).
type Percentiles struct {
	N    int     `json:"n"`
	Mean float64 `json:"meanUs"`
	P50  float64 `json:"p50Us"`
	P90  float64 `json:"p90Us"`
	P99  float64 `json:"p99Us"`
	P999 float64 `json:"p999Us"`
	Max  float64 `json:"maxUs"`
}

// Report is the outcome of one load run.
type Report struct {
	Mode        string  `json:"mode"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	CacheHits   int     `json:"cacheHits"`
	HitRate     float64 `json:"hitRate"`
	ElapsedMs   int64   `json:"elapsedMs"`
	Throughput  float64 `json:"requestsPerSec"`
	DistinctMod int     `json:"distinctModels"`
	DistinctApp int     `json:"distinctApps"`

	// Overload accounting. Shed counts 429 rejections (they are not
	// Errors: a correct shed is the overload design working); ShedHintOK
	// counts sheds that carried a usable Retry-After hint — the smoke
	// test's shed-correctness gate is Shed == ShedHintOK. Degraded counts
	// 200s served as stale family fallbacks. Server5xx counts responses
	// the overload design promises never to produce.
	Shed       int `json:"shed,omitempty"`
	ShedHintOK int `json:"shedHintOk,omitempty"`
	Degraded   int `json:"degraded,omitempty"`
	Server5xx  int `json:"server5xx,omitempty"`
	// InteractiveOK/BatchOK are per-class goodput (successful responses,
	// degraded included): interactive must out-survive batch under storm.
	InteractiveOK int `json:"interactiveOk,omitempty"`
	BatchOK       int `json:"batchOk,omitempty"`
	// InteractiveFresh/BatchFresh exclude degraded fallbacks: stale serving
	// rescues both classes alike, so the priority differential the limiter
	// enforces is only visible in fresh (simulated or exact-hit) goodput.
	InteractiveFresh int `json:"interactiveFresh,omitempty"`
	BatchFresh       int `json:"batchFresh,omitempty"`

	// All/Cached/Uncached split the latency population by cache
	// disposition: the acceptance gate is on Cached.P99.
	All      Percentiles `json:"latency"`
	Cached   Percentiles `json:"cachedLatency"`
	Uncached Percentiles `json:"uncachedLatency"`
	// Interactive covers successful interactive-class requests only — the
	// overload smoke's bounded-p99 gate reads it.
	Interactive Percentiles `json:"interactiveLatency,omitempty"`

	// Histograms carries the full latency distributions (µs buckets,
	// geometric bounds) — the machine-readable loadreport.json payload that
	// lets downstream tooling recompute any quantile or plot the curve
	// without the raw samples.
	Histograms *LatencyHists `json:"histograms,omitempty"`
}

// LatencyHists are fixed-bucket latency distributions in microseconds.
// Bounds are geometric (10µs·2ⁱ): cached cells serve in tens of µs, cold
// simulations in tens of ms — only a log-spaced axis resolves both.
type LatencyHists struct {
	All      *metrics.Histogram `json:"all"`
	Cached   *metrics.Histogram `json:"cached"`
	Uncached *metrics.Histogram `json:"uncached"`
}

// latencyBounds spans 10µs … ~20s geometrically (factor 2, 22 bounds).
func latencyBounds() []int { return metrics.ExpBuckets(10, 2, 22) }

type sample struct {
	us       float64
	cached   bool
	err      bool
	batch    bool
	shed     bool
	shedHint bool
	degraded bool
	s5xx     bool
}

// Run executes the configured load against the server.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	clients := cfg.Clients
	if len(clients) == 0 {
		if cfg.Client == nil {
			return nil, fmt.Errorf("loadgen: no client")
		}
		clients = []*client.Client{cfg.Client}
	}
	mode := cfg.Mode
	if mode == "" {
		mode = "closed"
	}
	if mode != "closed" && mode != "open" {
		return nil, fmt.Errorf("loadgen: unknown mode %q (closed or open)", mode)
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}

	cells := cellStream(cfg)
	if len(cells) == 0 {
		return nil, fmt.Errorf("loadgen: empty cell set")
	}

	var (
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	runCtx := ctx
	if cfg.Duration > 0 {
		// A cancel ctx driven by a timer, NOT WithTimeout: the window bounds
		// the measurement, it is not each request's patience. A ctx deadline
		// here would be stamped onto every request as X-Parrot-Deadline and
		// the server would (correctly) 504 requests issued near window end.
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(ctx)
		t := time.AfterFunc(cfg.Duration, cancel)
		defer t.Stop()
		defer cancel()
	}

	issue := func(i int) {
		req := cells[i%len(cells)]
		if cfg.Distinct > 0 {
			// Cold storm: churn the instruction budget so consecutive laps
			// over the cell ring are distinct digests, not cache hits.
			req.Insts = req.Insts + (i/len(cells))%cfg.Distinct
		}
		// Interleave the class split at fine grain (stride 997 is coprime to
		// 1000, so the pattern mixes instead of front-loading one class).
		batch := cfg.BatchFraction > 0 && float64(i*997%1000) < cfg.BatchFraction*1000
		if batch {
			req.Priority = proto.PriorityBatch
		}
		reqCtx := runCtx
		if cfg.DeadlineMs > 0 {
			var cancel context.CancelFunc
			reqCtx, cancel = context.WithTimeout(runCtx, time.Duration(cfg.DeadlineMs)*time.Millisecond)
			defer cancel()
		}
		start := time.Now()
		resp, err := clients[i%len(clients)].Run(reqCtx, req)
		el := float64(time.Since(start).Microseconds())
		if err != nil {
			// Runs cut off by the load window are not service errors.
			if runCtx.Err() != nil {
				return
			}
			s := sample{us: el, err: true, batch: batch}
			if he, ok := client.AsHTTPError(err); ok {
				s.shed = he.Status == 429
				s.shedHint = s.shed && he.RetryAfter > 0
				s.s5xx = he.Status >= 500
			}
			record(s)
			return
		}
		record(sample{us: el, cached: resp.Cached, batch: batch, degraded: resp.Degraded})
	}

	start := time.Now()
	switch mode {
	case "closed":
		workers := cfg.Concurrency
		if workers <= 0 {
			workers = 4
		}
		var next int
		var nmu sync.Mutex
		take := func() (int, bool) {
			nmu.Lock()
			defer nmu.Unlock()
			if cfg.Requests > 0 && next >= cfg.Requests {
				return 0, false
			}
			i := next
			next++
			return i, true
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if runCtx.Err() != nil {
						return
					}
					i, ok := take()
					if !ok {
						return
					}
					issue(i)
				}
			}()
		}
		wg.Wait()

	case "open":
		rate := cfg.RateHz
		if rate <= 0 {
			rate = 50
		}
		bound := cfg.Concurrency
		if bound <= 0 {
			bound = 512
		}
		sem := make(chan struct{}, bound)
		interval := time.Duration(float64(time.Second) / rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		i := 0
	loop:
		for {
			if cfg.Requests > 0 && i >= cfg.Requests {
				break
			}
			select {
			case <-runCtx.Done():
				break loop
			case <-ticker.C:
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						defer func() { <-sem }()
						issue(i)
					}(i)
					i++
				default:
					// In-flight bound hit: the arrival is dropped and counted
					// as an error — open-loop overload must be visible, not
					// silently converted into closed-loop backpressure.
					record(sample{err: true})
				}
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	return summarize(mode, cfg, samples, elapsed), nil
}

// cellStream expands the cell set into a deterministic shuffled request
// ring.
func cellStream(cfg Config) []proto.RunRequest {
	models := cfg.Models
	if len(models) == 0 {
		models = []string{"N", "TN", "TON", "W", "TW", "TOW", "TOS"}
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = allAppNames()
	}
	var out []proto.RunRequest
	for _, m := range models {
		for _, a := range apps {
			out = append(out, proto.RunRequest{Model: m, App: a, Insts: cfg.Insts})
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func summarize(mode string, cfg Config, samples []sample, elapsed time.Duration) *Report {
	r := &Report{
		Mode:      mode,
		Requests:  len(samples),
		ElapsedMs: elapsed.Milliseconds(),
	}
	models := cfg.Models
	if len(models) == 0 {
		r.DistinctMod = 7
	} else {
		r.DistinctMod = len(models)
	}
	if len(cfg.Apps) == 0 {
		r.DistinctApp = len(allAppNames())
	} else {
		r.DistinctApp = len(cfg.Apps)
	}
	hists := &LatencyHists{
		All:      metrics.NewHistogram(latencyBounds()...),
		Cached:   metrics.NewHistogram(latencyBounds()...),
		Uncached: metrics.NewHistogram(latencyBounds()...),
	}
	var all, hit, miss, inter []float64
	for _, s := range samples {
		if s.err {
			if s.shed {
				// A 429 shed is the overload design working, not a failure;
				// it is graded separately (and on whether it carried a hint).
				r.Shed++
				if s.shedHint {
					r.ShedHintOK++
				}
				continue
			}
			if s.s5xx {
				r.Server5xx++
			}
			r.Errors++
			continue
		}
		if s.degraded {
			r.Degraded++
		}
		if s.batch {
			r.BatchOK++
			if !s.degraded {
				r.BatchFresh++
			}
		} else {
			r.InteractiveOK++
			if !s.degraded {
				r.InteractiveFresh++
			}
			inter = append(inter, s.us)
		}
		all = append(all, s.us)
		hists.All.Add(int(s.us))
		if s.cached {
			r.CacheHits++
			hit = append(hit, s.us)
			hists.Cached.Add(int(s.us))
		} else {
			miss = append(miss, s.us)
			hists.Uncached.Add(int(s.us))
		}
	}
	r.Histograms = hists
	if ok := len(all); ok > 0 {
		r.HitRate = float64(r.CacheHits) / float64(ok)
	}
	if elapsed > 0 {
		r.Throughput = float64(len(samples)) / elapsed.Seconds()
	}
	r.All = percentiles(all)
	r.Cached = percentiles(hit)
	r.Uncached = percentiles(miss)
	r.Interactive = percentiles(inter)
	return r
}

func percentiles(us []float64) Percentiles {
	p := Percentiles{N: len(us)}
	if len(us) == 0 {
		return p
	}
	sort.Float64s(us)
	sum := 0.0
	for _, v := range us {
		sum += v
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(us)-1))
		return us[i]
	}
	p.Mean = sum / float64(len(us))
	p.P50 = at(0.50)
	p.P90 = at(0.90)
	p.P99 = at(0.99)
	p.P999 = at(0.999)
	p.Max = us[len(us)-1]
	return p
}

// String renders the report as the harness's human summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s-loop load: %d requests (%d errors) over %d models × %d apps in %.2fs  (%.1f req/s)\n",
		r.Mode, r.Requests, r.Errors, r.DistinctMod, r.DistinctApp,
		float64(r.ElapsedMs)/1000, r.Throughput)
	fmt.Fprintf(&b, "  cache hit rate %.1f%% (%d/%d)\n", 100*r.HitRate, r.CacheHits, r.Requests-r.Errors)
	if r.Shed > 0 || r.Degraded > 0 || r.Server5xx > 0 {
		fmt.Fprintf(&b, "  overload: shed %d (with Retry-After %d)  degraded %d  5xx %d  goodput interactive %d / batch %d  (fresh %d / %d)\n",
			r.Shed, r.ShedHintOK, r.Degraded, r.Server5xx, r.InteractiveOK, r.BatchOK,
			r.InteractiveFresh, r.BatchFresh)
	}
	row := func(name string, p Percentiles) {
		if p.N == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-9s n=%-6d p50 %8.0fµs  p90 %8.0fµs  p99 %8.0fµs  p99.9 %8.0fµs  max %8.0fµs\n",
			name, p.N, p.P50, p.P90, p.P99, p.P999, p.Max)
	}
	row("all", r.All)
	row("cached", r.Cached)
	row("uncached", r.Uncached)
	if r.Shed > 0 || r.Degraded > 0 {
		row("interact.", r.Interactive)
	}
	return b.String()
}
