// Package cache implements the serving layer's content-addressed result
// store. Keys are RunSpec digests (hex SHA-256 of the fully-resolved run
// spec, see experiments.RunSpec.Digest); values are complete core.Result
// cells. PR 2's golden digest proved runs are bit-exact functions of their
// spec, so the mapping digest → result is immutable: entries never need
// invalidation (a modelling change bumps experiments.SimVersion, which
// changes every key).
//
// The store is two-level: a byte-budgeted in-memory LRU front serves
// repeated cells in microseconds, and an optional on-disk store (atomic
// rename writes) survives restarts. Every entry carries the canonical
// result digest (experiments.ResultDigest); disk loads are verified against
// it, so corrupt or truncated entries are detected, expunged and recomputed
// — never served.
package cache

import (
	"context"
	"encoding/json"
	"sync"

	"parrot/internal/chaos"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/metrics"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
)

// Stats counts cache traffic. Hits = MemHits + DiskHits.
type Stats struct {
	Hits       uint64
	Misses     uint64
	MemHits    uint64
	DiskHits   uint64
	Puts       uint64
	Evictions  uint64
	DiskPuts   uint64
	DiskErrors uint64 // unreadable/corrupt/mismatched disk entries expunged

	Entries int   // resident in-memory entries
	Bytes   int64 // resident in-memory payload bytes
	Budget  int64 // in-memory byte budget

	// EntryBytesMean is the mean encoded entry size over all insertions.
	EntryBytesMean float64
}

// HitRate returns hits per lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Config parameterizes a cache.
type Config struct {
	// MemBudget bounds resident payload bytes (<=0 = 64 MiB). The budget
	// applies to encoded payloads; map/list overhead is not charged.
	MemBudget int64
	// Dir enables the on-disk store when non-empty. The directory is
	// created if missing. Disk entries are not budgeted (cells are a few
	// KiB; a full 44×7 matrix is ~1 MiB).
	Dir string
	// Chaos, when non-nil, arms the "cache.disk.get" / "cache.disk.put"
	// injection sites: slow-disk latency and I/O faults (a failed read is
	// a miss, a failed write counts a DiskErrors).
	Chaos *chaos.Injector
}

// entry is one resident cell: the encoded payload (canonical JSON of the
// core.Result) plus its integrity digest, on an intrusive LRU list.
type entry struct {
	key        string
	payload    []byte
	resDigest  string
	next, prev *entry // LRU list: head = most recent
}

// Cache is a content-addressed result store. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	dir     string
	chaos   *chaos.Injector

	// families maps a spec family key (model+app, insts masked — see
	// experiments.RunSpec.FamilyKey) to the digest of the family's most
	// recently stored member. It is a secondary index only — entries own
	// the bytes, and a family whose member was evicted simply misses.
	families map[string]string

	// occupancy histograms encoded entry sizes over all insertions — the
	// byte-budget sizing signal surfaced on /metricsz.
	occupancy *metrics.Histogram

	stats Stats
}

// New builds a cache. If cfg.Dir is non-empty the directory is created and
// used as the persistent second level.
func New(cfg Config) (*Cache, error) {
	budget := cfg.MemBudget
	if budget <= 0 {
		budget = 64 << 20
	}
	c := &Cache{
		budget:   budget,
		entries:  make(map[string]*entry),
		families: make(map[string]string),
		dir:      cfg.Dir,
		chaos:    cfg.Chaos,
		// Entry-size buckets: cells encode to a few KiB; 1 KiB steps up to
		// 16 KiB cover the realistic range, the overflow bucket catches the
		// rest.
		occupancy: metrics.NewHistogram(metrics.LinearBuckets(1<<10, 16)...),
	}
	if cfg.Dir != "" {
		if err := c.initDir(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// encode produces the canonical payload of a result. JSON of core.Result
// round-trips exactly (uint64 counters and shortest-roundtrip float64s), so
// decode(encode(r)) reproduces r's ResultDigest bit-identically.
func encode(res *core.Result) ([]byte, error) { return json.Marshal(res) }

func decode(payload []byte) (*core.Result, error) {
	var r core.Result
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Get returns the cell stored under the digest. The in-memory front is
// consulted first; on miss, the disk store (when enabled) is probed,
// verified against the stored result digest and promoted into memory.
// Corrupt disk entries count as misses (and are expunged) — the caller
// recomputes and Puts the fresh result.
func (c *Cache) Get(digest string) (*core.Result, bool) {
	res, _, ok := c.get(digest)
	return res, ok
}

// GetCtx is Get with telemetry: when the context carries a request trace
// the lookup is recorded as a "cache.get" span whose outcome attribute
// names the serving level ("mem", "disk", "miss"), and disk promotions are
// logged through the context's structured logger.
func (c *Cache) GetCtx(ctx context.Context, digest string) (*core.Result, bool) {
	sp := telemetry.TraceFrom(ctx).StartSpan("cache.get",
		telemetry.A("digest", shortKey(digest)))
	res, source, ok := c.get(digest)
	sp.SetAttr("outcome", source)
	sp.End()
	if source == "disk" {
		tlog.From(ctx).Debug("cache disk promote", tlog.F("digest", shortKey(digest)))
	}
	return res, ok
}

// get is the shared lookup; source reports the serving level ("mem",
// "disk", "miss").
func (c *Cache) get(digest string) (*core.Result, string, bool) {
	c.mu.Lock()
	if e, ok := c.entries[digest]; ok {
		c.moveToFront(e)
		payload := e.payload
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		res, err := decode(payload)
		if err != nil {
			// Unreachable in practice (payload was produced by encode); treat
			// as a miss and drop the entry defensively.
			c.mu.Lock()
			if e2, ok := c.entries[digest]; ok {
				c.removeLocked(e2)
			}
			c.stats.Hits--
			c.stats.MemHits--
			c.stats.Misses++
			c.mu.Unlock()
			return nil, "miss", false
		}
		return res, "mem", true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if res, payload, resDigest, ok := c.diskGet(digest); ok {
			c.mu.Lock()
			c.stats.Hits++
			c.stats.DiskHits++
			c.insertLocked(digest, payload, resDigest)
			c.mu.Unlock()
			return res, "disk", true
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, "miss", false
}

// Put stores a cell under its digest, in memory and (when enabled) on
// disk. Storing an already-resident digest refreshes recency only: content
// under a digest is immutable.
func (c *Cache) Put(digest string, res *core.Result) error {
	payload, err := encode(res)
	if err != nil {
		return err
	}
	resDigest := experiments.ResultDigest(res)

	c.mu.Lock()
	c.stats.Puts++
	if e, ok := c.entries[digest]; ok {
		c.moveToFront(e)
		c.mu.Unlock()
		return nil
	}
	c.insertLocked(digest, payload, resDigest)
	c.mu.Unlock()

	if c.dir != "" {
		if err := c.diskPut(digest, payload, resDigest); err != nil {
			c.mu.Lock()
			c.stats.DiskErrors++
			c.mu.Unlock()
			return err
		}
		c.mu.Lock()
		c.stats.DiskPuts++
		c.mu.Unlock()
	}
	return nil
}

// PutTagged is Put plus a family-index update: the digest becomes the
// family's most recent member, making it discoverable by GetFamily when a
// later run of the same (model, app) family must degrade to a stale
// result under overload.
func (c *Cache) PutTagged(digest, family string, res *core.Result) error {
	c.mu.Lock()
	c.families[family] = digest
	c.mu.Unlock()
	return c.Put(digest, res)
}

// GetFamily returns the most recently stored member of a spec family (and
// the digest it is stored under), or ok=false when the family has no
// resident member. Telemetry mirrors GetCtx.
func (c *Cache) GetFamily(ctx context.Context, family string) (*core.Result, string, bool) {
	c.mu.Lock()
	digest, ok := c.families[family]
	c.mu.Unlock()
	if !ok {
		return nil, "", false
	}
	res, found := c.GetCtx(ctx, digest)
	if !found {
		return nil, "", false
	}
	return res, digest, true
}

// insertLocked adds a payload under the digest and evicts LRU entries until
// the byte budget holds. Caller holds c.mu.
func (c *Cache) insertLocked(digest string, payload []byte, resDigest string) {
	if e, ok := c.entries[digest]; ok {
		c.moveToFront(e)
		return
	}
	e := &entry{key: digest, payload: payload, resDigest: resDigest}
	c.entries[digest] = e
	c.bytes += int64(len(payload))
	c.occupancy.Add(len(payload))
	c.pushFront(e)
	for c.bytes > c.budget && c.tail != nil && c.tail != e {
		c.stats.Evictions++
		c.removeLocked(c.tail)
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *Cache) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.payload))
}

// Len returns the number of resident in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns resident in-memory payload bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.Budget = c.budget
	s.EntryBytesMean = c.occupancy.Mean()
	return s
}

// Register wires the cache into a telemetry registry as a scrape-time
// collector. Every series derives from one Stats() snapshot — a single
// lock pass — so a scrape never observes torn counters (e.g. Hits without
// the matching MemHits/DiskHits split).
func (c *Cache) Register(reg *telemetry.Registry) {
	if c == nil {
		return
	}
	reg.RegisterCollector(func(emit telemetry.Emit) {
		st := c.Stats()
		emit("parrot_cache_lookups_total", "counter", "Cache lookups by serving level.",
			float64(st.MemHits), "level", "mem")
		emit("parrot_cache_lookups_total", "counter", "Cache lookups by serving level.",
			float64(st.DiskHits), "level", "disk")
		emit("parrot_cache_lookups_total", "counter", "Cache lookups by serving level.",
			float64(st.Misses), "level", "miss")
		emit("parrot_cache_puts_total", "counter", "Results stored.", float64(st.Puts))
		emit("parrot_cache_evictions_total", "counter", "In-memory LRU evictions.", float64(st.Evictions))
		emit("parrot_cache_disk_puts_total", "counter", "Results persisted to disk.", float64(st.DiskPuts))
		emit("parrot_cache_disk_errors_total", "counter", "Corrupt/unwritable disk entries.", float64(st.DiskErrors))
		emit("parrot_cache_entries", "gauge", "Resident in-memory entries.", float64(st.Entries))
		emit("parrot_cache_bytes", "gauge", "Resident in-memory payload bytes.", float64(st.Bytes))
		emit("parrot_cache_budget_bytes", "gauge", "In-memory byte budget.", float64(st.Budget))
		emit("parrot_cache_hit_rate", "gauge", "Hits per lookup.", st.HitRate())
	})
}

// shortKey truncates a content address for span/log attributes.
func shortKey(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
