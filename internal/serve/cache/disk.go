package cache

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"parrot/internal/core"
	"parrot/internal/experiments"
)

// Disk entry format (little endian):
//
//	magic     [8]byte  "PARROTRC"
//	version   u32      currently 1
//	simVer    u32      experiments.SimVersion at write time
//	specLen   u16 + bytes   hex RunSpec digest (the content address)
//	resLen    u16 + bytes   hex ResultDigest of the payload's decoded result
//	payLen    u32 + bytes   canonical JSON of the core.Result
//
// Loads verify every layer: magic/version, the embedded spec digest against
// the requested one (a renamed or cross-linked file cannot satisfy the
// wrong key), and the result digest recomputed from the decoded payload (a
// flipped bit that still parses is caught semantically). Any failure
// expunges the file and reports a miss — the scheduler recomputes.

var diskMagic = [8]byte{'P', 'A', 'R', 'R', 'O', 'T', 'R', 'C'}

// DiskFormatVersion is the on-disk entry container version.
const DiskFormatVersion = 1

func (c *Cache) initDir() error {
	return os.MkdirAll(c.dir, 0o755)
}

func (c *Cache) entryPath(digest string) string {
	return filepath.Join(c.dir, digest+".prc")
}

// EncodeEntry serializes one disk entry. Exported for the store's
// fault-injection tests.
func EncodeEntry(specDigest, resDigest string, payload []byte) []byte {
	var b bytes.Buffer
	b.Write(diskMagic[:])
	var u32 [4]byte
	var u16 [2]byte
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(u32[:], v); b.Write(u32[:]) }
	put16 := func(v uint16) { binary.LittleEndian.PutUint16(u16[:], v); b.Write(u16[:]) }
	put32(DiskFormatVersion)
	put32(experiments.SimVersion)
	put16(uint16(len(specDigest)))
	b.WriteString(specDigest)
	put16(uint16(len(resDigest)))
	b.WriteString(resDigest)
	put32(uint32(len(payload)))
	b.Write(payload)
	return b.Bytes()
}

// DecodeEntry parses and structurally validates one disk entry, returning
// the embedded spec digest, result digest and payload. It does not verify
// the result digest against the payload — VerifyEntry layers that on top.
func DecodeEntry(raw []byte) (specDigest, resDigest string, payload []byte, err error) {
	r := bytes.NewReader(raw)
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || m != diskMagic {
		return "", "", nil, fmt.Errorf("cache: bad magic")
	}
	var ver, simVer uint32
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return "", "", nil, fmt.Errorf("cache: short header: %w", err)
	}
	if ver != DiskFormatVersion {
		return "", "", nil, fmt.Errorf("cache: unsupported entry version %d", ver)
	}
	if err := binary.Read(r, binary.LittleEndian, &simVer); err != nil {
		return "", "", nil, fmt.Errorf("cache: short header: %w", err)
	}
	if simVer != experiments.SimVersion {
		return "", "", nil, fmt.Errorf("cache: entry from sim version %d, running %d", simVer, experiments.SimVersion)
	}
	readStr := func() (string, error) {
		var n uint16
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	if specDigest, err = readStr(); err != nil {
		return "", "", nil, fmt.Errorf("cache: truncated spec digest: %w", err)
	}
	if resDigest, err = readStr(); err != nil {
		return "", "", nil, fmt.Errorf("cache: truncated result digest: %w", err)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", "", nil, fmt.Errorf("cache: truncated payload length: %w", err)
	}
	payload = make([]byte, n)
	if got, _ := io.ReadFull(r, payload); got != int(n) {
		return "", "", nil, fmt.Errorf("cache: truncated payload: %d of %d bytes", got, n)
	}
	return specDigest, resDigest, payload, nil
}

// VerifyEntry fully validates a raw disk entry against the requested spec
// digest: container structure, key match, payload decode, and the result
// digest recomputed from the decoded result. Returns the decoded result on
// success.
func VerifyEntry(raw []byte, wantSpecDigest string) (*core.Result, []byte, string, error) {
	specDigest, resDigest, payload, err := DecodeEntry(raw)
	if err != nil {
		return nil, nil, "", err
	}
	if specDigest != wantSpecDigest {
		return nil, nil, "", fmt.Errorf("cache: entry keyed %.12s, want %.12s", specDigest, wantSpecDigest)
	}
	res, err := decode(payload)
	if err != nil {
		return nil, nil, "", fmt.Errorf("cache: corrupt payload: %w", err)
	}
	if got := experiments.ResultDigest(res); got != resDigest {
		return nil, nil, "", fmt.Errorf("cache: result digest mismatch: got %.12s, stored %.12s", got, resDigest)
	}
	return res, payload, resDigest, nil
}

// diskGet loads and verifies one entry. Corrupt entries are expunged so
// they are rebuilt at most once.
func (c *Cache) diskGet(digest string) (*core.Result, []byte, string, bool) {
	// Chaos site "cache.disk.get": slow-disk latency, or a read fault that
	// degrades to a plain miss (the entry stays on disk).
	if c.chaos.Inject("cache.disk.get", digest) != nil {
		return nil, nil, "", false
	}
	raw, err := os.ReadFile(c.entryPath(digest))
	if err != nil {
		return nil, nil, "", false // absent (or unreadable): plain miss
	}
	res, payload, resDigest, err := VerifyEntry(raw, digest)
	if err != nil {
		c.mu.Lock()
		c.stats.DiskErrors++
		c.mu.Unlock()
		os.Remove(c.entryPath(digest))
		return nil, nil, "", false
	}
	return res, payload, resDigest, true
}

// diskPut writes one entry atomically: a unique temp file in the same
// directory, fsync-free write, then rename into place. Readers never
// observe a partially written entry; crashes leave only temp files (ignored
// and overwritten by later writes).
func (c *Cache) diskPut(digest string, payload []byte, resDigest string) error {
	// Chaos site "cache.disk.put": slow or failing writes; a fault counts
	// a DiskErrors in the caller, like any real write failure.
	if err := c.chaos.Inject("cache.disk.put", digest); err != nil {
		return err
	}
	raw := EncodeEntry(digest, resDigest, payload)
	var rnd [6]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, fmt.Sprintf(".tmp-%s-%s", digest[:12], hex.EncodeToString(rnd[:])))
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.entryPath(digest)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
