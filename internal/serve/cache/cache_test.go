package cache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/workload"
)

// testResult simulates one small cell (memoized per test binary via the
// machine pool and program cache).
func testResult(t *testing.T, modelID config.ModelID, app string, insts int) *core.Result {
	t.Helper()
	p, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	return core.RunWarm(config.Get(modelID), p, insts)
}

func testSpec(t *testing.T, modelID config.ModelID, app string, insts int) experiments.RunSpec {
	t.Helper()
	p, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	return experiments.RunSpec{Model: config.Get(modelID), App: p, Insts: insts}.Normalize()
}

func TestMemoryRoundTrip(t *testing.T) {
	c, err := New(Config{MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t, config.TON, "gzip", 5000)
	spec := testSpec(t, config.TON, "gzip", 5000)
	digest := spec.Digest()

	if _, ok := c.Get(digest); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(digest, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(digest)
	if !ok {
		t.Fatal("no hit after Put")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("cache round-trip changed the result")
	}
	if d := experiments.ResultDigest(got); d != experiments.ResultDigest(res) {
		t.Fatalf("result digest changed through the cache: %s vs %s", d, experiments.ResultDigest(res))
	}
	st := c.Stats()
	if st.Hits != 1 || st.MemHits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 memHit / 1 miss", st)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	res := testResult(t, config.N, "gzip", 5000)
	payload, err := encode(res)
	if err != nil {
		t.Fatal(err)
	}
	// Budget for exactly two entries.
	c, err := New(Config{MemBudget: int64(2 * len(payload))})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"aaa", "bbb", "ccc"}
	for _, k := range keys {
		if err := c.Put(k, res); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (budget eviction)", c.Len())
	}
	if _, ok := c.Get("aaa"); ok {
		t.Fatal("least-recently-used entry survived over budget")
	}
	for _, k := range []string{"bbb", "ccc"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("recent entry %s evicted", k)
		}
	}
	// Touch bbb, insert ddd: ccc (now LRU) must go.
	if _, ok := c.Get("bbb"); !ok {
		t.Fatal("bbb missing")
	}
	if err := c.Put("ddd", res); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("ccc"); ok {
		t.Fatal("LRU entry ccc survived after recency update of bbb")
	}
	if _, ok := c.Get("bbb"); !ok {
		t.Fatal("recently touched bbb evicted")
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if c.Bytes() > c.Stats().Budget {
		t.Fatalf("resident bytes %d exceed budget %d", c.Bytes(), c.Stats().Budget)
	}
}

func TestDiskRoundTripAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t, config.TON, "swim", 5000)
	digest := testSpec(t, config.TON, "swim", 5000).Digest()

	c1, err := New(Config{MemBudget: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(digest, res); err != nil {
		t.Fatal(err)
	}

	// A fresh instance (cold memory) must serve from disk and verify.
	c2, err := New(Config{MemBudget: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(digest)
	if !ok {
		t.Fatal("disk entry not served by a fresh instance")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("disk round-trip changed the result")
	}
	st := c2.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("diskHits = %d, want 1", st.DiskHits)
	}
	// Promotion: the second Get is a memory hit.
	if _, ok := c2.Get(digest); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("memHits = %d, want 1 after promotion", st.MemHits)
	}
}

// TestCorruptDiskEntriesNeverServed is the store's fault-injection table:
// every corruption mode must be detected (digest/structure mismatch), the
// entry expunged, the lookup reported as a miss — and a recompute + Put
// must repair the store. A corrupt entry is never served.
func TestCorruptDiskEntriesNeverServed(t *testing.T) {
	res := testResult(t, config.TN, "gcc", 5000)
	digest := testSpec(t, config.TN, "gcc", 5000).Digest()
	otherDigest := testSpec(t, config.TN, "gzip", 5000).Digest()

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string, valid []byte)
	}{
		{"truncated_header", func(t *testing.T, path string, valid []byte) {
			writeFile(t, path, valid[:6])
		}},
		{"truncated_mid_payload", func(t *testing.T, path string, valid []byte) {
			writeFile(t, path, valid[:len(valid)-len(valid)/3])
		}},
		{"empty_file", func(t *testing.T, path string, valid []byte) {
			writeFile(t, path, nil)
		}},
		{"bad_magic", func(t *testing.T, path string, valid []byte) {
			b := clone(valid)
			b[0] ^= 0xFF
			writeFile(t, path, b)
		}},
		{"bad_container_version", func(t *testing.T, path string, valid []byte) {
			b := clone(valid)
			b[8] ^= 0xFF // version u32 follows the 8-byte magic
			writeFile(t, path, b)
		}},
		{"stale_sim_version", func(t *testing.T, path string, valid []byte) {
			b := clone(valid)
			b[12]++ // simVer u32 follows the container version
			writeFile(t, path, b)
		}},
		{"payload_bitflip", func(t *testing.T, path string, valid []byte) {
			// Flip one byte near the end of the JSON payload: the entry still
			// parses structurally, so only the recomputed result digest can
			// catch it.
			b := clone(valid)
			b[len(b)-10] ^= 0x01
			writeFile(t, path, b)
		}},
		{"garbage", func(t *testing.T, path string, valid []byte) {
			writeFile(t, path, []byte("PARROTRCnot really a cache entry at all............"))
		}},
		{"cross_keyed_entry", func(t *testing.T, path string, valid []byte) {
			// A structurally valid entry for a different spec digest must not
			// satisfy this key (e.g. a mis-renamed file).
			payload, err := encode(res)
			if err != nil {
				t.Fatal(err)
			}
			writeFile(t, path, EncodeEntry(otherDigest, experiments.ResultDigest(res), payload))
		}},
		{"result_digest_mismatch", func(t *testing.T, path string, valid []byte) {
			payload, err := encode(res)
			if err != nil {
				t.Fatal(err)
			}
			wrong := experiments.ResultDigest(testResult(t, config.TN, "gzip", 5000))
			writeFile(t, path, EncodeEntry(digest, wrong, payload))
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(Config{MemBudget: 1 << 20, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(digest, res); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, digest+".prc")
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path, valid)

			// Fresh instance: memory cold, disk corrupt.
			c2, err := New(Config{MemBudget: 1 << 20, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := c2.Get(digest); ok {
				t.Fatal("corrupt entry was served")
			}
			st := c2.Stats()
			if st.DiskErrors != 1 {
				t.Fatalf("diskErrors = %d, want 1", st.DiskErrors)
			}
			if st.Misses != 1 {
				t.Fatalf("misses = %d, want 1", st.Misses)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not expunged")
			}

			// Recompute-and-repair: the caller recomputes, Puts, and the
			// store verifies again.
			if err := c2.Put(digest, res); err != nil {
				t.Fatal(err)
			}
			c3, err := New(Config{MemBudget: 1 << 20, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			got, ok := c3.Get(digest)
			if !ok {
				t.Fatal("repaired entry not served")
			}
			if !reflect.DeepEqual(got, res) {
				t.Fatal("repaired entry differs from the recomputed result")
			}
		})
	}
}

func TestAtomicWriteLeavesNoTempVisible(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MemBudget: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t, config.N, "swim", 5000)
	for i := 0; i < 4; i++ {
		if err := c.Put(testSpec(t, config.N, "swim", 5000+i).Digest(), res); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".prc" {
			t.Fatalf("unexpected non-entry file %q left behind", e.Name())
		}
	}
	if len(ents) != 4 {
		t.Fatalf("entries on disk = %d, want 4", len(ents))
	}
}

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
