package sched

import (
	"errors"
	"fmt"
	"time"

	"parrot/internal/config"
)

// Overload sentinels of Submit.
var (
	// ErrShed matches (via errors.Is) every *ShedError the adaptive
	// admission limiter returns.
	ErrShed = errors.New("sched: shed by admission control")
	// ErrDeadlineUnmeetable is returned at submit time when the caller's
	// remaining ctx deadline is below the cost-model estimate for the
	// spec's model — the job would be simulated for nobody.
	ErrDeadlineUnmeetable = errors.New("sched: deadline cannot be met")
)

// ShedError is the adaptive admission limiter's rejection: the job class
// that was bounced plus a back-off hint sized from the current load and
// the cost model's run-time estimate. The API layer surfaces it as
// 429 + Retry-After.
type ShedError struct {
	Class      Priority
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("sched: %s job shed by admission control (retry after %s)",
		e.Class, e.RetryAfter.Round(time.Millisecond))
}

// Is matches ErrShed.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// limiter is an AIMD concurrency limiter over total scheduler load
// (running + queued) fed by observed interactive queue waits vs. a target.
//
// Only interactive waits drive it: interactive latency is the SLO, while
// batch (matrix fan-out) jobs queueing deeply is the design working as
// intended. A pure batch workload therefore never sheds adaptively — the
// hard QueueCap stays the backstop — but the moment interactive traffic
// shows queue pressure, the limit multiplicatively collapses toward fleet
// capacity and batch admission (gated at batchShare of the limit) sheds
// first. Below-target waits grow the limit additively (+1), the classic
// AIMD sawtooth around achievable concurrency; once no decrease has fired
// for recoverAfter, the limit also drifts back toward max over ~10s so a
// storm's clamp does not outlive the storm.
//
// The limiter is guarded by the scheduler's own mutex — every method is
// called with s.mu held — and takes `now` explicitly so fake-clock tests
// are deterministic.
type limiter struct {
	target     time.Duration // interactive queue-wait target
	min, max   float64       // limit bounds
	batchShare float64       // batch admits only below batchShare × limit

	limit       float64
	lastDec     time.Time // last multiplicative decrease
	lastRecover time.Time // last recovery-drift evaluation
}

const (
	limiterDecFactor   = 0.8                    // multiplicative decrease
	limiterDecInterval = 100 * time.Millisecond // at most one decrease per interval
	limiterRecoverWait = time.Second            // quiet period before drifting up
)

func newLimiter(target time.Duration, min, max float64, now time.Time) *limiter {
	if target <= 0 {
		target = 250 * time.Millisecond
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &limiter{
		target:      target,
		min:         min,
		max:         max,
		batchShare:  0.8,
		limit:       max, // start permissive; pressure discovers capacity
		lastDec:     now,
		lastRecover: now,
	}
}

// admit decides whether a job of class pri may enter given the current
// load (running + queued, before this job).
func (l *limiter) admit(load int, pri Priority, now time.Time) bool {
	l.recover(now)
	lim := l.limit
	if pri == Batch {
		lim *= l.batchShare
	}
	return float64(load+1) <= lim
}

// observe feeds one completed interactive job's queue wait.
func (l *limiter) observe(wait time.Duration, now time.Time) {
	if wait > l.target {
		if now.Sub(l.lastDec) >= limiterDecInterval {
			l.limit *= limiterDecFactor
			if l.limit < l.min {
				l.limit = l.min
			}
			l.lastDec = now
		}
	} else if l.limit < l.max {
		l.limit++
		if l.limit > l.max {
			l.limit = l.max
		}
	}
	l.lastRecover = now
}

// recover drifts the limit back toward max when no overload signal has
// fired recently, so a clamped limit does not persist after traffic (and
// its latency observations) stop.
func (l *limiter) recover(now time.Time) {
	dt := now.Sub(l.lastRecover)
	l.lastRecover = now
	if dt <= 0 || l.limit >= l.max || now.Sub(l.lastDec) < limiterRecoverWait {
		return
	}
	l.limit += dt.Seconds() * l.max / 10
	if l.limit > l.max {
		l.limit = l.max
	}
}

// costModel tracks an EWMA of per-model run times (machine checkout
// through simulation, chaos latency included) plus an overall EWMA. The
// scheduler uses it to fast-fail submits whose deadline is already
// unmeetable, evict queued jobs whose deadline lapsed, and size
// Retry-After hints. Guarded by the scheduler's mutex.
type costModel struct {
	byModel map[config.Model]time.Duration
	overall time.Duration
}

const costAlpha = 0.3 // EWMA weight of the newest observation

func newCostModel() *costModel {
	return &costModel{byModel: make(map[config.Model]time.Duration)}
}

func ewma(old, v time.Duration) time.Duration {
	if old == 0 {
		return v
	}
	return old + time.Duration(costAlpha*float64(v-old))
}

func (c *costModel) observe(m config.Model, busy time.Duration) {
	c.byModel[m] = ewma(c.byModel[m], busy)
	c.overall = ewma(c.overall, busy)
}

// estimate returns the expected run time for a model, 0 when the model has
// never been observed (callers treat 0 as "don't know, admit").
func (c *costModel) estimate(m config.Model) time.Duration {
	return c.byModel[m]
}

// retryAfter sizes a shed back-off hint: the estimated time for the
// current backlog to drain through the fleet, clamped to [100ms, 5s].
func (c *costModel) retryAfter(load, workers int) time.Duration {
	est := c.overall
	if est <= 0 {
		est = 50 * time.Millisecond
	}
	if workers < 1 {
		workers = 1
	}
	d := est * time.Duration(1+load/workers)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
