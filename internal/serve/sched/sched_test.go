package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/workload"
)

func spec(t *testing.T, modelID config.ModelID, app string, insts int) experiments.RunSpec {
	t.Helper()
	p, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	return experiments.RunSpec{Model: config.Get(modelID), App: p, Insts: insts}
}

func newCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{MemBudget: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSubmitComputesAndCaches(t *testing.T) {
	c := newCache(t)
	s := New(Config{Workers: 2, Cache: c, Pool: core.NewPool()})
	defer s.Drain(context.Background())

	sp := spec(t, config.TON, "gzip", 5000)
	res, disp, err := s.Submit(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if disp.Cached() {
		t.Fatal("first submit reported a cache hit")
	}
	if disp != DispComputed && disp != DispReplayed {
		t.Fatalf("first submit disposition = %v, want a simulation", disp)
	}
	if res == nil || res.Insts == 0 {
		t.Fatal("empty result")
	}
	// Second submit: cache fast path, bit-identical result.
	res2, disp2, err := s.Submit(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if disp2 != DispCacheHit {
		t.Fatalf("second submit disposition = %v, want DispCacheHit", disp2)
	}
	if experiments.ResultDigest(res2) != experiments.ResultDigest(res) {
		t.Fatal("cached result differs from computed result")
	}
	st := s.Stats()
	if st.Completed != 1 || st.CacheHits != 1 || st.Submitted != 2 {
		t.Fatalf("stats = %+v, want 1 completed / 1 cacheHit / 2 submitted", st)
	}
}

// TestSingleflightDedup holds the lone worker at the test hook while N
// concurrent submits of the same spec pile up: exactly one simulation must
// run and every waiter must get the identical result.
func TestSingleflightDedup(t *testing.T) {
	s := New(Config{Workers: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())

	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.testHookBeforeRun = func(experiments.RunSpec) {
		entered <- struct{}{}
		<-release
	}

	sp := spec(t, config.N, "gzip", 5000)
	const waiters = 8
	type out struct {
		res *core.Result
		err error
	}
	results := make(chan out, waiters)
	var launched sync.WaitGroup
	launched.Add(1)
	go func() {
		launched.Done()
		r, _, err := s.Submit(context.Background(), sp)
		results <- out{r, err}
	}()
	launched.Wait()
	<-entered // the first submit's job is on the worker, held at the hook

	for i := 1; i < waiters; i++ {
		go func() {
			r, _, err := s.Submit(context.Background(), sp)
			results <- out{r, err}
		}()
	}
	// All late submits must join the in-flight digest, not enqueue.
	deadline := time.After(5 * time.Second)
	for {
		st := s.Stats()
		if st.Deduped == waiters-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("deduped = %d, want %d", st.Deduped, waiters-1)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)

	var first *core.Result
	for i := 0; i < waiters; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if first == nil {
			first = o.res
		} else if o.res != first {
			t.Fatal("waiters observed different result pointers")
		}
	}
	st := s.Stats()
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want exactly 1 simulation for %d submits", st.Completed, waiters)
	}
}

// TestInteractiveBeatsBatch queues one batch and one interactive job behind
// a held worker and checks the interactive job runs first.
func TestInteractiveBeatsBatch(t *testing.T) {
	s := New(Config{Workers: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())

	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	held := make(chan struct{})
	var once sync.Once
	s.testHookBeforeRun = func(sp experiments.RunSpec) {
		mu.Lock()
		order = append(order, string(sp.Model.ID)+"/"+sp.App.Name)
		mu.Unlock()
		once.Do(func() {
			close(held)
			<-release
		})
	}

	var wg sync.WaitGroup
	run := func(f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f(); err != nil {
				t.Error(err)
			}
		}()
	}
	// Occupy the worker with a filler job, then queue batch before
	// interactive while it is held.
	run(func() error {
		_, _, err := s.Submit(context.Background(), spec(t, config.W, "swim", 5000))
		return err
	})
	<-held
	run(func() error {
		_, _, err := s.SubmitBatch(context.Background(), spec(t, config.N, "gzip", 5000))
		return err
	})
	// Wait until the batch job is actually queued before the interactive one.
	waitFor(t, func() bool { return s.Stats().BatchDepth == 1 })
	run(func() error {
		_, _, err := s.Submit(context.Background(), spec(t, config.TN, "gcc", 5000))
		return err
	})
	waitFor(t, func() bool { return s.Stats().InteractiveDepth == 1 })
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 {
		t.Fatalf("ran %d jobs, want 3 (%v)", len(order), order)
	}
	if order[1] != "TN/gcc" || order[2] != "N/gzip" {
		t.Fatalf("run order %v: interactive TN/gcc must precede batch N/gzip", order)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())

	release := make(chan struct{})
	held := make(chan struct{})
	var once sync.Once
	s.testHookBeforeRun = func(experiments.RunSpec) {
		once.Do(func() { close(held) })
		<-release
	}

	errs := make(chan error, 2)
	go func() {
		_, _, err := s.Submit(context.Background(), spec(t, config.N, "gzip", 5000))
		errs <- err
	}()
	<-held
	go func() {
		_, _, err := s.Submit(context.Background(), spec(t, config.N, "swim", 5000))
		errs <- err
	}()
	waitFor(t, func() bool { return s.Stats().InteractiveDepth == 1 })

	// Queue is at capacity: a third distinct spec must bounce immediately.
	_, _, err := s.Submit(context.Background(), spec(t, config.N, "gcc", 5000))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestContextCancelAbandonsQueuedJob: a queued job whose only waiter leaves
// is abandoned by the worker without simulating.
func TestContextCancelAbandonsQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())

	release := make(chan struct{})
	held := make(chan struct{})
	var once sync.Once
	s.testHookBeforeRun = func(experiments.RunSpec) {
		once.Do(func() { close(held) })
		<-release
	}

	go func() { s.Submit(context.Background(), spec(t, config.N, "gzip", 5000)) }()
	<-held

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, _, err := s.Submit(ctx, spec(t, config.N, "swim", 5000))
		errs <- err
	}()
	waitFor(t, func() bool { return s.Stats().InteractiveDepth == 1 })
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	waitFor(t, func() bool { return s.Stats().Abandoned == 1 })
	if st := s.Stats(); st.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (the abandoned job must not simulate)", st.Completed)
	}
}

func TestDrainRejectsNewAndFinishesQueued(t *testing.T) {
	s := New(Config{Workers: 1, Cache: newCache(t), Pool: core.NewPool()})
	sp := spec(t, config.TON, "gzip", 5000)
	if _, _, err := s.Submit(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	// A cold spec (never computed, so not cache-served) must be rejected.
	cold := spec(t, config.N, "gcc", 5000)
	if _, _, err := s.Submit(context.Background(), cold); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestDrainStillServesCache(t *testing.T) {
	c := newCache(t)
	s := New(Config{Workers: 1, Cache: c, Pool: core.NewPool()})
	sp := spec(t, config.TON, "swim", 5000)
	res, _, err := s.Submit(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, disp, err := s.Submit(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !disp.Cached() {
		t.Fatal("drained scheduler did not serve the cached cell")
	}
	if experiments.ResultDigest(got) != experiments.ResultDigest(res) {
		t.Fatal("cached result differs after drain")
	}
}

// TestStatsNeverTorn hammers Submit from many goroutines while a scraper
// continuously snapshots Stats, asserting the submit-outcome invariant
//
//	Submitted == CacheHits + Deduped + Enqueued + Rejected + DrainRejected
//	             + ShedInteractive + ShedBatch + DeadlineRejected
//
// on every snapshot. Before the single-critical-section fix, Submitted was
// incremented in a separate lock acquisition from its outcome counter, so
// a concurrent scrape could observe a submit without its outcome — exactly
// the torn read /metricsz must never serve. Run under -race this also
// exercises every instrument the scheduler publishes.
func TestStatsNeverTorn(t *testing.T) {
	s := New(Config{Workers: 4, QueueCap: 8, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())

	stop := make(chan struct{})
	var scrapes, torn int
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			scrapes++
			sum := st.CacheHits + st.Deduped + st.Enqueued + st.Rejected + st.DrainRejected +
				st.ShedInteractive + st.ShedBatch + st.DeadlineRejected
			if st.Submitted != sum {
				torn++
				t.Errorf("torn stats: submitted=%d != hits=%d + deduped=%d + enqueued=%d + rejected=%d + drainRejected=%d + shedI=%d + shedB=%d + deadline=%d",
					st.Submitted, st.CacheHits, st.Deduped, st.Enqueued, st.Rejected, st.DrainRejected,
					st.ShedInteractive, st.ShedBatch, st.DeadlineRejected)
				return
			}
		}
	}()

	// Mixed traffic: few distinct specs (maximizes cache hits and dedup
	// joins), a tiny queue (forces rejections), both priority classes.
	specs := []experiments.RunSpec{
		spec(t, config.N, "gzip", 2000),
		spec(t, config.N, "swim", 2000),
		spec(t, config.TON, "gzip", 2000),
	}
	const submitters, perSubmitter = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				sp := specs[(g+i)%len(specs)]
				if i%2 == 0 {
					s.Submit(context.Background(), sp) //nolint:errcheck — ErrQueueFull is expected traffic here
				} else {
					s.SubmitBatch(context.Background(), sp)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	if torn != 0 {
		t.Fatalf("%d torn snapshots out of %d scrapes", torn, scrapes)
	}
	st := s.Stats()
	if st.Submitted != uint64(submitters*perSubmitter) {
		t.Fatalf("submitted = %d, want %d", st.Submitted, submitters*perSubmitter)
	}
	if st.CacheHits == 0 || st.Completed == 0 {
		t.Fatalf("traffic mix degenerate: %+v", st)
	}
}

// TestDispositionLabels pins the wire labels the metrics, spans and
// responses share.
func TestDispositionLabels(t *testing.T) {
	for d, want := range map[Disposition]string{
		DispCacheHit: "hit", DispDeduped: "dedup",
		DispReplayed: "replayed", DispComputed: "exact",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
	if !DispCacheHit.Cached() || DispDeduped.Cached() || DispReplayed.Cached() || DispComputed.Cached() {
		t.Error("Cached() wrong for some disposition")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
