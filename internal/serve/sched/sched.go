// Package sched is the serving layer's job scheduler: it turns incoming
// RunSpecs into simulation work on a pooled-machine worker fleet, with
//
//   - content-addressed fast path: specs already resident in the result
//     cache return without queueing;
//   - singleflight deduplication: concurrent identical specs (same digest)
//     share one execution — the hallmark of a thundering-herd matrix
//     workload where many clients ask for the same 44×7 cells;
//   - two priority classes: interactive (single-cell, latency-sensitive)
//     jobs always pop before batch (matrix fan-out) jobs;
//   - model-affinity batching: among batch jobs, a worker prefers cells on
//     the machine model it already holds, so the pooled machine is Reset
//     and reused instead of re-fetched per cell (the same locality trick
//     the experiments fan-out uses via model-major job order);
//   - bounded queues with explicit rejection (ErrQueueFull) instead of
//     unbounded buffering, and per-caller context cancellation: a waiter
//     that gives up stops waiting immediately, and a queued job whose
//     every waiter has gone away is abandoned without simulating.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
)

// Priority selects the queue class of a job.
type Priority uint8

// Priority classes, highest first.
const (
	Interactive Priority = iota
	Batch
)

// Sentinel errors of Submit.
var (
	ErrQueueFull = errors.New("sched: queue full")
	ErrDraining  = errors.New("sched: draining")
)

// Config parameterizes a scheduler.
type Config struct {
	// Workers is the fleet size (<=0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds each priority queue (<=0 = 4096 jobs).
	QueueCap int
	// Cache, when non-nil, front-ends every submit and receives every
	// computed result.
	Cache *cache.Cache
	// Pool supplies machines (nil = core.DefaultPool). Workers hold one
	// machine per distinct model locally and return them on shutdown.
	Pool *core.Pool
}

// Stats counts scheduler traffic.
type Stats struct {
	Submitted uint64 // Submit calls
	CacheHits uint64 // served from cache without queueing
	Deduped   uint64 // joined an in-flight identical spec
	Enqueued  uint64 // entered a queue
	Rejected  uint64 // bounced on a full queue
	Completed uint64 // simulations actually executed
	Replayed  uint64 // completed via hot-window memo replay on a pooled machine
	Abandoned uint64 // queued jobs dropped because every waiter left

	SimInsts uint64        // dynamic instructions simulated (measured window)
	BusyTime time.Duration // cumulative worker time spent simulating

	Running          int // workers currently simulating
	InteractiveDepth int
	BatchDepth       int
	Workers          int
}

// SimMIPS returns simulated measured instructions per busy-second, in
// millions — the fleet's aggregate throughput.
func (s Stats) SimMIPS() float64 {
	if s.BusyTime <= 0 {
		return 0
	}
	return float64(s.SimInsts) / s.BusyTime.Seconds() / 1e6
}

// flight is one in-flight digest: every concurrent waiter of the same spec
// blocks on done.
type flight struct {
	done    chan struct{}
	res     *core.Result
	err     error
	waiters int // live waiters; 0 allows abandonment while queued
}

// job is one queued unit of work.
type job struct {
	spec   experiments.RunSpec
	digest string
	fl     *flight
}

// Sched dispatches RunSpecs onto a worker fleet. All methods are safe for
// concurrent use.
type Sched struct {
	cfg      Config
	pool     *core.Pool
	mu       sync.Mutex
	cond     *sync.Cond
	qi, qb   []*job // interactive / batch FIFOs
	inflight map[string]*flight
	draining bool
	stats    Stats
	wg       sync.WaitGroup

	// testHookBeforeRun, when set, runs on the worker goroutine after a job
	// is popped and before it simulates — the seam the dedup/priority tests
	// use to hold a worker busy deterministically.
	testHookBeforeRun func(spec experiments.RunSpec)
}

// New builds a scheduler and starts its worker fleet.
func New(cfg Config) *Sched {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Sched{
		cfg:      cfg,
		pool:     cfg.Pool,
		inflight: make(map[string]*flight),
	}
	if s.pool == nil {
		s.pool = core.DefaultPool
	}
	s.cond = sync.NewCond(&s.mu)
	s.stats.Workers = cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Pool returns the machine pool backing the fleet.
func (s *Sched) Pool() *core.Pool { return s.pool }

// Submit resolves one spec: cache fast path, then singleflight join or
// enqueue. It blocks until the cell is available, the context is done, or
// the scheduler rejects the job. The second return reports whether the
// result came from cache without simulating.
//
// Cancellation semantics: a caller whose ctx ends stops waiting
// immediately (the flight keeps running if other waiters remain, and a
// finished result still enters the cache). A job still queued when its
// last waiter leaves is abandoned without simulating.
func (s *Sched) Submit(ctx context.Context, spec experiments.RunSpec) (*core.Result, bool, error) {
	return s.submit(ctx, spec, Interactive)
}

// SubmitBatch is Submit on the batch (lower-priority, model-affine) queue.
func (s *Sched) SubmitBatch(ctx context.Context, spec experiments.RunSpec) (*core.Result, bool, error) {
	return s.submit(ctx, spec, Batch)
}

func (s *Sched) submit(ctx context.Context, spec experiments.RunSpec, pri Priority) (*core.Result, bool, error) {
	spec = spec.Normalize()
	digest := spec.Digest()

	s.mu.Lock()
	s.stats.Submitted++
	s.mu.Unlock()

	if c := s.cfg.Cache; c != nil {
		if res, ok := c.Get(digest); ok {
			s.mu.Lock()
			s.stats.CacheHits++
			s.mu.Unlock()
			return res, true, nil
		}
	}

	s.mu.Lock()
	if fl, ok := s.inflight[digest]; ok {
		fl.waiters++
		s.stats.Deduped++
		s.mu.Unlock()
		return s.wait(ctx, fl)
	}
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	q := &s.qb
	if pri == Interactive {
		q = &s.qi
	}
	if len(*q) >= s.cfg.QueueCap {
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	fl := &flight{done: make(chan struct{}), waiters: 1}
	s.inflight[digest] = fl
	*q = append(*q, &job{spec: spec, digest: digest, fl: fl})
	s.stats.Enqueued++
	s.cond.Signal()
	s.mu.Unlock()
	return s.wait(ctx, fl)
}

// wait blocks on the flight or the caller's context, whichever ends first.
func (s *Sched) wait(ctx context.Context, fl *flight) (*core.Result, bool, error) {
	select {
	case <-fl.done:
		return fl.res, false, fl.err
	case <-ctx.Done():
		s.mu.Lock()
		fl.waiters--
		s.mu.Unlock()
		return nil, false, ctx.Err()
	}
}

// next pops the next job: interactive first, then batch with model
// affinity — if the worker's resident model matches a batch job within the
// scan window, that job is taken out of order, so consecutive cells of the
// same model land on the same pooled machine. Returns nil when the
// scheduler is draining and both queues are empty.
func (s *Sched) next(last config.Model, haveLast bool) *job {
	const affinityScan = 64 // bounded out-of-order scan window

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.qi) > 0 {
			j := s.qi[0]
			s.qi = popFront(s.qi)
			s.stats.Running++
			return j
		}
		if len(s.qb) > 0 {
			idx := 0
			if haveLast {
				n := len(s.qb)
				if n > affinityScan {
					n = affinityScan
				}
				for i := 0; i < n; i++ {
					if s.qb[i].spec.Model == last {
						idx = i
						break
					}
				}
			}
			j := s.qb[idx]
			s.qb = append(s.qb[:idx], s.qb[idx+1:]...)
			s.stats.Running++
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

func popFront(q []*job) []*job {
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// worker is one fleet member: it holds one machine per distinct model
// (drawn from the pool on first use, Reset between runs) and returns them
// all on shutdown.
func (s *Sched) worker() {
	defer s.wg.Done()
	local := make(map[config.Model]*core.Machine)
	defer func() {
		for _, m := range local {
			s.pool.Put(m)
		}
	}()
	var last config.Model
	haveLast := false
	for {
		j := s.next(last, haveLast)
		if j == nil {
			return
		}
		if s.testHookBeforeRun != nil {
			s.testHookBeforeRun(j.spec)
		}

		// A queued job whose waiters all left is abandoned: nobody wants the
		// result and the cache gains little from speculative cells.
		s.mu.Lock()
		abandoned := j.fl.waiters == 0
		if abandoned {
			s.stats.Abandoned++
			s.stats.Running--
			delete(s.inflight, j.digest)
			j.fl.err = context.Canceled
			close(j.fl.done)
		}
		s.mu.Unlock()
		if abandoned {
			continue
		}

		m := local[j.spec.Model]
		if m == nil {
			m = s.pool.Get(j.spec.Model) // arrives reset
			local[j.spec.Model] = m
		} else {
			m.Reset()
		}
		last, haveLast = j.spec.Model, true

		// Worker machines keep their memo chain tables across jobs (Reset
		// preserves them), so a spec that misses the result cache but was
		// simulated before on this machine replays instead of re-simulating.
		preReplays := m.MemoStats().RunsReplayed
		start := time.Now()
		res := core.RunWarmOn(m, j.spec.App, j.spec.Insts)
		busy := time.Since(start)
		replayed := m.MemoStats().RunsReplayed > preReplays

		if c := s.cfg.Cache; c != nil {
			// Disk write errors are non-fatal: the result is still returned
			// and memory-cached; the cache counts the error.
			_ = c.Put(j.digest, res)
		}

		s.mu.Lock()
		s.stats.Completed++
		if replayed {
			s.stats.Replayed++
		}
		s.stats.SimInsts += res.Insts
		s.stats.BusyTime += busy
		s.stats.Running--
		delete(s.inflight, j.digest)
		j.fl.res = res
		close(j.fl.done)
		s.mu.Unlock()
	}
}

// Drain stops accepting new jobs, lets queued and running work finish, and
// returns when the fleet has shut down or the context ends. Idempotent.
func (s *Sched) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	doneCh := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (s *Sched) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats returns a snapshot of the counters.
func (s *Sched) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.InteractiveDepth = len(s.qi)
	st.BatchDepth = len(s.qb)
	return st
}
