// Package sched is the serving layer's job scheduler: it turns incoming
// RunSpecs into simulation work on a pooled-machine worker fleet, with
//
//   - content-addressed fast path: specs already resident in the result
//     cache return without queueing;
//   - singleflight deduplication: concurrent identical specs (same digest)
//     share one execution — the hallmark of a thundering-herd matrix
//     workload where many clients ask for the same 44×7 cells;
//   - two priority classes: interactive (single-cell, latency-sensitive)
//     jobs always pop before batch (matrix fan-out) jobs;
//   - model-affinity batching: among batch jobs, a worker prefers cells on
//     the machine model it already holds, so the pooled machine is Reset
//     and reused instead of re-fetched per cell (the same locality trick
//     the experiments fan-out uses via model-major job order);
//   - bounded queues with explicit rejection (ErrQueueFull) instead of
//     unbounded buffering, and per-caller context cancellation: a waiter
//     that gives up stops waiting immediately, and a queued job whose
//     every waiter has gone away is abandoned without simulating;
//   - adaptive admission control: an AIMD limiter over total load
//     (running + queued), fed by observed interactive queue waits vs. a
//     target, sheds work (*ShedError → 429 + Retry-After upstream) before
//     queues grow hopeless — batch sheds before interactive (limiter.go);
//   - deadline awareness: a submit whose remaining ctx deadline is below
//     the cost model's run-time estimate fast-fails with
//     ErrDeadlineUnmeetable, and a queued job whose deadline lapses before
//     a worker pops it is evicted instead of simulated for nobody.
//
// Telemetry: every Submit resolves to a Disposition (cache hit,
// singleflight dedup, memo replay, exact simulation) that the HTTP layer
// splits its request metrics by; queue waits land in per-class registry
// histograms; and a request trace travelling in the context gains spans
// for the queue residency, machine checkout, the run itself and the cache
// write-back. Stats counters follow a strict no-torn-reads discipline:
// each submit outcome increments Submitted *and* its outcome counter
// inside one critical section, so any Stats() snapshot has Submitted equal
// to the exact sum of CacheHits, Deduped, Enqueued, Rejected,
// DrainRejected, ShedInteractive, ShedBatch and DeadlineRejected (pinned
// by TestStatsNeverTorn under the race detector).
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"parrot/internal/chaos"
	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
	"parrot/internal/serve/cache"
	"parrot/internal/telemetry"
	tlog "parrot/internal/telemetry/log"
)

// Priority selects the queue class of a job.
type Priority uint8

// Priority classes, highest first.
const (
	Interactive Priority = iota
	Batch
)

// String returns the queue-class label used in metrics and spans.
func (p Priority) String() string {
	if p == Interactive {
		return "interactive"
	}
	return "batch"
}

// Disposition reports how a Submit was satisfied.
type Disposition uint8

// Dispositions, in the order a submit tries them.
const (
	DispCacheHit Disposition = iota // served from the result cache without queueing
	DispDeduped                     // joined an in-flight identical spec (singleflight)
	DispReplayed                    // simulated via hot-window memo replay on a pooled machine
	DispComputed                    // simulated on the exact cycle engine
)

// String returns the disposition label used in metrics, spans and wire
// responses: "hit", "dedup", "replayed", "exact".
func (d Disposition) String() string {
	switch d {
	case DispCacheHit:
		return "hit"
	case DispDeduped:
		return "dedup"
	case DispReplayed:
		return "replayed"
	default:
		return "exact"
	}
}

// Cached reports whether the result came from the cache without touching
// the worker fleet.
func (d Disposition) Cached() bool { return d == DispCacheHit }

// Sentinel errors of Submit.
var (
	ErrQueueFull = errors.New("sched: queue full")
	ErrDraining  = errors.New("sched: draining")
)

// Config parameterizes a scheduler.
type Config struct {
	// Workers is the fleet size (<=0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds each priority queue (<=0 = 4096 jobs).
	QueueCap int
	// Cache, when non-nil, front-ends every submit and receives every
	// computed result.
	Cache *cache.Cache
	// Pool supplies machines (nil = core.DefaultPool). Workers hold one
	// machine per distinct model locally and return them on shutdown.
	Pool *core.Pool
	// Registry, when non-nil, receives the scheduler's service metrics:
	// per-class queue-wait histograms, per-run simulation totals, and a
	// scrape-time collector emitting every Stats counter from one
	// coherent snapshot.
	Registry *telemetry.Registry
	// Log, when non-nil, receives structured events (abandoned jobs,
	// drain lifecycle).
	Log *tlog.Logger
	// AdmitTarget is the interactive queue-wait target feeding the AIMD
	// admission limiter (<=0 = 250ms). Waits above it shrink the
	// concurrency limit multiplicatively; waits below grow it additively.
	AdmitTarget time.Duration
	// AdmitMin / AdmitMax bound the admission limit in jobs
	// (running + queued). Defaults: Workers+1 and QueueCap+Workers.
	AdmitMin, AdmitMax int
	// Now overrides the scheduler's clock (nil = time.Now) — the fake-clock
	// seam the drain-under-load and limiter tests use.
	Now func() time.Time
	// Chaos, when non-nil, arms the "sched.run" injection site: extra
	// latency (inside the busy window, so the cost model sees it) and
	// fault injection around each simulation run.
	Chaos *chaos.Injector
}

// Stats counts scheduler traffic. At any instant,
// Submitted == CacheHits + Deduped + Enqueued + Rejected + DrainRejected
// + ShedInteractive + ShedBatch + DeadlineRejected.
type Stats struct {
	Submitted        uint64 // Submit calls
	CacheHits        uint64 // served from cache without queueing
	Deduped          uint64 // joined an in-flight identical spec
	Enqueued         uint64 // entered a queue
	Rejected         uint64 // bounced on a full queue
	DrainRejected    uint64 // bounced because the scheduler is draining
	ShedInteractive  uint64 // interactive jobs bounced by admission control
	ShedBatch        uint64 // batch jobs bounced by admission control
	DeadlineRejected uint64 // fast-failed: remaining deadline below cost estimate
	Completed        uint64 // simulations actually executed
	Replayed         uint64 // completed via hot-window memo replay on a pooled machine
	Abandoned        uint64 // queued jobs dropped because every waiter left
	DeadlineEvicted  uint64 // queued jobs evicted after their deadline lapsed

	SimInsts  uint64        // dynamic instructions simulated (measured window)
	SimCycles uint64        // simulated cycles across completed runs
	DynEnergy float64       // dynamic energy total across completed runs
	BusyTime  time.Duration // cumulative worker time spent simulating

	Running          int // workers currently simulating
	InteractiveDepth int
	BatchDepth       int
	Workers          int

	// AdmitLimit is the admission limiter's current concurrency limit.
	AdmitLimit float64
	// OldestInteractive / OldestBatch are the queue head ages (zero when
	// the queue is empty) — the queue-age signal overload dashboards watch.
	OldestInteractive time.Duration
	OldestBatch       time.Duration
}

// SimMIPS returns simulated measured instructions per busy-second, in
// millions — the fleet's aggregate throughput.
func (s Stats) SimMIPS() float64 {
	if s.BusyTime <= 0 {
		return 0
	}
	return float64(s.SimInsts) / s.BusyTime.Seconds() / 1e6
}

// flight is one in-flight digest: every concurrent waiter of the same spec
// blocks on done.
type flight struct {
	done    chan struct{}
	res     *core.Result
	err     error
	disp    Disposition // how the flight itself completed (exact/replayed)
	waiters int         // live waiters; 0 allows abandonment while queued
}

// job is one queued unit of work.
type job struct {
	spec       experiments.RunSpec
	digest     string
	fl         *flight
	pri        Priority
	tr         *telemetry.Trace // first waiter's request trace (may be nil)
	enqueuedAt time.Time
	popAt      time.Time // set when a worker takes the job
	deadline   time.Time // first waiter's ctx deadline (zero = none)
}

// Sched dispatches RunSpecs onto a worker fleet. All methods are safe for
// concurrent use.
type Sched struct {
	cfg      Config
	pool     *core.Pool
	log      *tlog.Logger
	mu       sync.Mutex
	cond     *sync.Cond
	qi, qb   []*job // interactive / batch FIFOs
	inflight map[string]*flight
	draining bool
	notReady bool // prewarm still running: serve, but tell peers not to route here
	stats    Stats
	wg       sync.WaitGroup
	limiter  *limiter   // adaptive admission control (guarded by mu)
	cost     *costModel // per-model run-time EWMA (guarded by mu)
	now      func() time.Time

	// Registry instruments (nil when no registry: all no-ops).
	queueWait [2]*telemetry.Histogram // per priority class
	runsTotal [2]*telemetry.Counter   // exact / replayed
	simInsts  *telemetry.Counter
	simCycles *telemetry.Counter
	dynEnergy *telemetry.Counter

	// testHookBeforeRun, when set, runs on the worker goroutine after a job
	// is popped and before it simulates — the seam the dedup/priority tests
	// use to hold a worker busy deterministically.
	testHookBeforeRun func(spec experiments.RunSpec)
}

// New builds a scheduler and starts its worker fleet.
func New(cfg Config) *Sched {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Sched{
		cfg:      cfg,
		pool:     cfg.Pool,
		log:      cfg.Log.With(tlog.F("component", "sched")),
		inflight: make(map[string]*flight),
	}
	if s.pool == nil {
		s.pool = core.DefaultPool
	}
	s.now = cfg.Now
	if s.now == nil {
		s.now = time.Now
	}
	admitMin := float64(cfg.AdmitMin)
	if cfg.AdmitMin <= 0 {
		admitMin = float64(cfg.Workers + 1)
	}
	admitMax := float64(cfg.AdmitMax)
	if cfg.AdmitMax <= 0 {
		admitMax = float64(cfg.QueueCap + cfg.Workers)
	}
	s.limiter = newLimiter(cfg.AdmitTarget, admitMin, admitMax, s.now())
	s.cost = newCostModel()
	s.cond = sync.NewCond(&s.mu)
	s.stats.Workers = cfg.Workers

	// Registry wiring: event-time instruments plus one scrape-time
	// collector over a single Stats snapshot. Everything is nil-safe, so
	// an unconfigured registry costs one nil check per event.
	reg := cfg.Registry
	waitBounds := []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}
	for _, pri := range []Priority{Interactive, Batch} {
		s.queueWait[pri] = reg.Histogram("parrot_queue_wait_seconds",
			"Time jobs spend queued before a worker pops them, by priority class.",
			waitBounds, "class", pri.String())
	}
	s.runsTotal[0] = reg.Counter("parrot_sim_runs_total",
		"Simulations completed by the worker fleet, by memo disposition.", "memo", "exact")
	s.runsTotal[1] = reg.Counter("parrot_sim_runs_total",
		"Simulations completed by the worker fleet, by memo disposition.", "memo", "replayed")
	s.simInsts = reg.Counter("parrot_sim_insts_total",
		"Dynamic instructions simulated by the worker fleet (measured windows).")
	s.simCycles = reg.Counter("parrot_sim_cycles_total",
		"Cycles simulated by the worker fleet.")
	s.dynEnergy = reg.Counter("parrot_sim_energy_dyn_total",
		"Dynamic energy accumulated across completed runs (model units).")
	reg.RegisterCollector(s.collect)

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// collect emits every Stats-derived series from one snapshot — a single
// lock pass, so a scrape never mixes counters from different instants.
func (s *Sched) collect(emit telemetry.Emit) {
	st := s.Stats()
	emit("parrot_sched_submitted_total", "counter", "Submit calls.", float64(st.Submitted))
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.CacheHits), "outcome", "cache_hit")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.Deduped), "outcome", "deduped")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.Enqueued), "outcome", "enqueued")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.Rejected), "outcome", "rejected")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.DrainRejected), "outcome", "drain_rejected")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.ShedInteractive), "outcome", "shed_interactive")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.ShedBatch), "outcome", "shed_batch")
	emit("parrot_sched_outcomes_total", "counter", "Submit outcomes (Submitted = sum over outcomes).",
		float64(st.DeadlineRejected), "outcome", "deadline_rejected")
	emit("parrot_shed_total", "counter", "Jobs bounced by adaptive admission control, by class.",
		float64(st.ShedInteractive), "class", "interactive")
	emit("parrot_shed_total", "counter", "Jobs bounced by adaptive admission control, by class.",
		float64(st.ShedBatch), "class", "batch")
	emit("parrot_deadline_rejected_total", "counter",
		"Submits fast-failed because the remaining deadline was below the cost estimate.",
		float64(st.DeadlineRejected))
	emit("parrot_deadline_evicted_total", "counter",
		"Queued jobs evicted at pop time after their deadline lapsed.",
		float64(st.DeadlineEvicted))
	emit("parrot_admit_limit", "gauge",
		"Adaptive admission limit (jobs running + queued).", st.AdmitLimit)
	emit("parrot_queue_age_seconds", "gauge", "Age of the queue head, by priority class.",
		st.OldestInteractive.Seconds(), "class", "interactive")
	emit("parrot_queue_age_seconds", "gauge", "Age of the queue head, by priority class.",
		st.OldestBatch.Seconds(), "class", "batch")
	emit("parrot_sched_completed_total", "counter", "Simulations executed.", float64(st.Completed))
	emit("parrot_sched_replayed_total", "counter", "Simulations completed via memo replay.", float64(st.Replayed))
	emit("parrot_sched_abandoned_total", "counter", "Queued jobs dropped with no waiters.", float64(st.Abandoned))
	emit("parrot_sched_busy_seconds_total", "counter", "Cumulative worker time spent simulating.", st.BusyTime.Seconds())
	emit("parrot_sched_workers", "gauge", "Worker fleet size.", float64(st.Workers))
	emit("parrot_sched_running", "gauge", "Workers currently simulating.", float64(st.Running))
	emit("parrot_queue_depth", "gauge", "Jobs waiting in queue, by priority class.",
		float64(st.InteractiveDepth), "class", "interactive")
	emit("parrot_queue_depth", "gauge", "Jobs waiting in queue, by priority class.",
		float64(st.BatchDepth), "class", "batch")
	emit("parrot_sched_sim_mips", "gauge", "Fleet throughput: simulated Minsts per busy-second.", st.SimMIPS())
}

// Pool returns the machine pool backing the fleet.
func (s *Sched) Pool() *core.Pool { return s.pool }

// Submit resolves one spec: cache fast path, then singleflight join or
// enqueue. It blocks until the cell is available, the context is done, or
// the scheduler rejects the job. The Disposition reports how the result
// was obtained (cache hit, dedup join, memo replay, exact simulation).
//
// Cancellation semantics: a caller whose ctx ends stops waiting
// immediately (the flight keeps running if other waiters remain, and a
// finished result still enters the cache). A job still queued when its
// last waiter leaves is abandoned without simulating.
func (s *Sched) Submit(ctx context.Context, spec experiments.RunSpec) (*core.Result, Disposition, error) {
	return s.submit(ctx, spec, Interactive)
}

// SubmitBatch is Submit on the batch (lower-priority, model-affine) queue.
func (s *Sched) SubmitBatch(ctx context.Context, spec experiments.RunSpec) (*core.Result, Disposition, error) {
	return s.submit(ctx, spec, Batch)
}

func (s *Sched) submit(ctx context.Context, spec experiments.RunSpec, pri Priority) (res *core.Result, disp Disposition, err error) {
	spec = spec.Normalize()
	digest := spec.Digest()

	tr := telemetry.TraceFrom(ctx)
	sub := tr.StartSpan("sched.submit",
		telemetry.A("digest", shortDigest(digest)),
		telemetry.A("class", pri.String()))
	defer func() {
		if err != nil {
			sub.SetAttr("error", err.Error())
		} else {
			sub.SetAttr("disposition", disp.String())
		}
		sub.End()
	}()

	// Cache fast path (outside the scheduler lock: may touch disk). The
	// stats outcome lands in one critical section either way.
	if c := s.cfg.Cache; c != nil {
		if r, ok := c.GetCtx(ctx, digest); ok {
			s.mu.Lock()
			s.stats.Submitted++
			s.stats.CacheHits++
			s.mu.Unlock()
			return r, DispCacheHit, nil
		}
	}

	s.mu.Lock()
	if fl, ok := s.inflight[digest]; ok {
		fl.waiters++
		s.stats.Submitted++
		s.stats.Deduped++
		s.mu.Unlock()
		r, _, werr := s.wait(ctx, tr, fl)
		return r, DispDeduped, werr
	}
	if s.draining {
		s.stats.Submitted++
		s.stats.DrainRejected++
		s.mu.Unlock()
		return nil, DispComputed, ErrDraining
	}
	now := s.now()
	// Deadline feasibility: when the caller's remaining budget is already
	// below the cost model's estimate for this model, fail fast instead of
	// simulating work nobody will wait for. An unobserved model estimates
	// 0 and always admits.
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		if est := s.cost.estimate(spec.Model); est > 0 && deadline.Sub(now) < est {
			s.stats.Submitted++
			s.stats.DeadlineRejected++
			s.mu.Unlock()
			return nil, DispComputed, fmt.Errorf(
				"%w: %s remaining, %s estimated for model %s",
				ErrDeadlineUnmeetable, deadline.Sub(now).Round(time.Millisecond),
				est.Round(time.Millisecond), spec.Model.ID)
		}
	}
	q := &s.qb
	if pri == Interactive {
		q = &s.qi
	}
	// The hard QueueCap stays the first gate (legacy ErrQueueFull
	// contract); adaptive admission only sheds while queue room remains.
	if len(*q) >= s.cfg.QueueCap {
		s.stats.Submitted++
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, DispComputed, ErrQueueFull
	}
	// Adaptive admission: load counts everything a new job would queue
	// behind. Batch sheds first (limiter.go).
	load := s.stats.Running + len(s.qi) + len(s.qb)
	if !s.limiter.admit(load, pri, now) {
		s.stats.Submitted++
		if pri == Interactive {
			s.stats.ShedInteractive++
		} else {
			s.stats.ShedBatch++
		}
		retry := s.cost.retryAfter(load, s.cfg.Workers)
		s.mu.Unlock()
		return nil, DispComputed, &ShedError{Class: pri, RetryAfter: retry}
	}
	fl := &flight{done: make(chan struct{}), waiters: 1}
	s.inflight[digest] = fl
	j := &job{
		spec: spec, digest: digest, fl: fl, pri: pri,
		tr: tr, enqueuedAt: now,
	}
	if hasDeadline {
		j.deadline = deadline
	}
	*q = append(*q, j)
	s.stats.Submitted++
	s.stats.Enqueued++
	s.cond.Signal()
	s.mu.Unlock()
	return s.wait(ctx, tr, fl)
}

// wait blocks on the flight or the caller's context, whichever ends first.
func (s *Sched) wait(ctx context.Context, tr *telemetry.Trace, fl *flight) (*core.Result, Disposition, error) {
	sp := tr.StartSpan("sched.wait")
	defer sp.End()
	select {
	case <-fl.done:
		return fl.res, fl.disp, fl.err
	case <-ctx.Done():
		s.mu.Lock()
		fl.waiters--
		s.mu.Unlock()
		sp.SetAttr("error", ctx.Err().Error())
		return nil, DispComputed, ctx.Err()
	}
}

// next pops the next job: interactive first, then batch with model
// affinity — if the worker's resident model matches a batch job within the
// scan window, that job is taken out of order, so consecutive cells of the
// same model land on the same pooled machine. Returns nil when the
// scheduler is draining and both queues are empty.
func (s *Sched) next(last config.Model, haveLast bool) *job {
	const affinityScan = 64 // bounded out-of-order scan window

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var j *job
		if len(s.qi) > 0 {
			j = s.qi[0]
			s.qi = popFront(s.qi)
		} else if len(s.qb) > 0 {
			idx := 0
			if haveLast {
				n := len(s.qb)
				if n > affinityScan {
					n = affinityScan
				}
				for i := 0; i < n; i++ {
					if s.qb[i].spec.Model == last {
						idx = i
						break
					}
				}
			}
			j = s.qb[idx]
			s.qb = append(s.qb[:idx], s.qb[idx+1:]...)
		} else {
			if s.draining {
				return nil
			}
			s.cond.Wait()
			continue
		}
		s.stats.Running++
		j.popAt = s.now()
		s.queueWait[j.pri].Observe(j.popAt.Sub(j.enqueuedAt).Seconds())
		j.tr.AddSpan("sched.queued", telemetry.TIDWorker, j.enqueuedAt, j.popAt,
			telemetry.A("class", j.pri.String()))
		return j
	}
}

func popFront(q []*job) []*job {
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// worker is one fleet member: it holds one machine per distinct model
// (drawn from the pool on first use, Reset between runs) and returns them
// all on shutdown.
func (s *Sched) worker() {
	defer s.wg.Done()
	local := make(map[config.Model]*core.Machine)
	defer func() {
		for _, m := range local {
			s.pool.Put(m)
		}
	}()
	var last config.Model
	haveLast := false
	for {
		j := s.next(last, haveLast)
		if j == nil {
			return
		}
		if s.testHookBeforeRun != nil {
			s.testHookBeforeRun(j.spec)
		}

		// A queued job whose waiters all left is abandoned: nobody wants the
		// result and the cache gains little from speculative cells. A job
		// whose deadline lapsed (or will lapse before the cost-model estimate
		// completes) is evicted the same way — simulating it serves nobody.
		s.mu.Lock()
		abandoned := j.fl.waiters == 0
		evicted := false
		if abandoned {
			s.stats.Abandoned++
		} else if !j.deadline.IsZero() && !s.now().Add(s.cost.estimate(j.spec.Model)).Before(j.deadline) {
			evicted = true
			s.stats.DeadlineEvicted++
		}
		if abandoned || evicted {
			s.stats.Running--
			delete(s.inflight, j.digest)
			if evicted {
				j.fl.err = context.DeadlineExceeded
			} else {
				j.fl.err = context.Canceled
			}
			close(j.fl.done)
		}
		s.mu.Unlock()
		if abandoned || evicted {
			reason := "abandoned"
			if evicted {
				reason = "deadline evicted"
			}
			s.log.Debug("job "+reason, tlog.F("digest", shortDigest(j.digest)),
				tlog.F("model", string(j.spec.Model.ID)), tlog.F("app", j.spec.App.Name))
			continue
		}

		m := local[j.spec.Model]
		pooled := m != nil
		if m == nil {
			m = s.pool.Get(j.spec.Model) // arrives reset
			local[j.spec.Model] = m
		} else {
			m.Reset()
		}
		last, haveLast = j.spec.Model, true
		gotM := s.now()
		j.tr.AddSpan("machine.checkout", telemetry.TIDWorker, j.popAt, gotM,
			telemetry.A("model", string(j.spec.Model.ID)),
			telemetry.A("pooled", strconv.FormatBool(pooled)))

		// Chaos site "sched.run": injected latency lands inside the busy
		// window (the cost model and deadline estimates must see it); an
		// injected fault fails the flight without simulating.
		if cerr := s.cfg.Chaos.Inject("sched.run", string(j.spec.Model.ID)+"/"+j.spec.App.Name); cerr != nil {
			s.mu.Lock()
			s.stats.Running--
			delete(s.inflight, j.digest)
			j.fl.err = cerr
			close(j.fl.done)
			s.mu.Unlock()
			continue
		}

		// Worker machines keep their memo chain tables across jobs (Reset
		// preserves them), so a spec that misses the result cache but was
		// simulated before on this machine replays instead of re-simulating.
		preReplays := m.MemoStats().RunsReplayed
		res := core.RunWarmOn(m, j.spec.App, j.spec.Insts)
		doneT := s.now()
		busy := doneT.Sub(gotM)
		replayed := m.MemoStats().RunsReplayed > preReplays

		disp := DispComputed
		if replayed {
			disp = DispReplayed
		}
		// Per-run totals surface through the same RunSummary record the
		// matrix export and CLI -json outputs use.
		sum := experiments.Summarize(res, 0)
		s.simInsts.Add(float64(sum.Insts))
		s.simCycles.Add(float64(sum.Cycles))
		s.dynEnergy.Add(sum.DynEnergy)
		if replayed {
			s.runsTotal[1].Inc()
		} else {
			s.runsTotal[0].Inc()
		}
		j.tr.AddSpan("sim.run", telemetry.TIDWorker, gotM, doneT,
			telemetry.A("model", string(j.spec.Model.ID)),
			telemetry.A("app", j.spec.App.Name),
			telemetry.A("insts", strconv.FormatUint(sum.Insts, 10)),
			telemetry.A("memo", disp.String()))

		if c := s.cfg.Cache; c != nil {
			// Disk write errors are non-fatal: the result is still returned
			// and memory-cached; the cache counts the error. The family tag
			// (model+app, insts masked) feeds the degraded-serving fallback.
			_ = c.PutTagged(j.digest, j.spec.FamilyKey(), res)
			j.tr.AddSpan("cache.put", telemetry.TIDWorker, doneT, s.now(),
				telemetry.A("digest", shortDigest(j.digest)))
		}

		s.mu.Lock()
		s.stats.Completed++
		if replayed {
			s.stats.Replayed++
		}
		s.stats.SimInsts += res.Insts
		s.stats.SimCycles += res.Cycles
		s.stats.DynEnergy += res.DynEnergy
		s.stats.BusyTime += busy
		s.stats.Running--
		s.cost.observe(j.spec.Model, busy)
		if j.pri == Interactive {
			// Interactive queue wait is the admission limiter's control
			// signal; batch waits are the design working as intended.
			s.limiter.observe(j.popAt.Sub(j.enqueuedAt), s.now())
		}
		delete(s.inflight, j.digest)
		j.fl.res = res
		j.fl.disp = disp
		close(j.fl.done)
		s.mu.Unlock()
	}
}

// Drain stops accepting new jobs, lets queued and running work finish, and
// returns when the fleet has shut down or the context ends. Idempotent.
func (s *Sched) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.log.Info("draining")

	doneCh := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		s.log.Info("drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (s *Sched) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SetReady flips the readiness gate. The daemon marks itself not-ready
// before a background pool prewarm and ready when it completes; unlike
// draining this never rejects work — it only steers /readyz so cluster
// peers route around a still-warming node.
func (s *Sched) SetReady(ready bool) {
	s.mu.Lock()
	s.notReady = !ready
	s.mu.Unlock()
}

// Ready reports whether this node should receive routed traffic: not
// draining and past any startup prewarm gate.
func (s *Sched) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.notReady
}

// Stats returns a snapshot of the counters, taken in one critical section
// — queue depths, completion counters and busy time all reflect the same
// instant.
func (s *Sched) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.InteractiveDepth = len(s.qi)
	st.BatchDepth = len(s.qb)
	now := s.now()
	// Apply any pending recovery drift so the exported limit reflects what
	// the next submit would actually see — otherwise a post-storm idle
	// daemon reports the clamped limit forever.
	s.limiter.recover(now)
	st.AdmitLimit = s.limiter.limit
	if len(s.qi) > 0 {
		st.OldestInteractive = now.Sub(s.qi[0].enqueuedAt)
	}
	if len(s.qb) > 0 {
		st.OldestBatch = now.Sub(s.qb[0].enqueuedAt)
	}
	return st
}

// RetryAfterHint sizes a back-off hint from the current load and cost
// model — the API layer attaches it to shed paths (e.g. ErrQueueFull)
// that don't carry their own *ShedError hint.
func (s *Sched) RetryAfterHint() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	load := s.stats.Running + len(s.qi) + len(s.qb)
	return s.cost.retryAfter(load, s.cfg.Workers)
}

// SetAdmitLimit forces the admission limit — an operational override and
// the deterministic seam the overload tests use to provoke sheds without
// racing the AIMD feedback loop. The limit remains subject to recovery
// drift and AIMD feedback afterwards.
func (s *Sched) SetAdmitLimit(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limiter.limit = v
	s.limiter.lastDec = s.now() // hold recovery drift off for recoverWait
}

// shortDigest truncates a content address for span/log attributes.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
