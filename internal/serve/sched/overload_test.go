package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/experiments"
)

// holdWorker parks the first popped job at the test hook until release is
// closed, so tests can build queue state deterministically behind it.
func holdWorker(s *Sched) (held, release chan struct{}) {
	held = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	s.testHookBeforeRun = func(experiments.RunSpec) {
		once.Do(func() {
			close(held)
			<-release
		})
	}
	return held, release
}

// seedCost plants a run-time estimate for a model, bypassing the EWMA
// warm-up — the deterministic stand-in for "this model has been observed".
func seedCost(s *Sched, id config.ModelID, est time.Duration) {
	s.mu.Lock()
	s.cost.observe(config.Get(id), est)
	s.mu.Unlock()
}

// TestAdmissionShedsBatchBeforeInteractive pins the shed ordering: at the
// same load, batch (gated at 80% of the limit) bounces while interactive
// still admits, and each shed carries a usable Retry-After hint.
func TestAdmissionShedsBatchBeforeInteractive(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 16, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())
	held, release := holdWorker(s)

	go func() { s.Submit(context.Background(), spec(t, config.N, "gzip", 5000)) }()
	<-held

	// Load is 1 (the held run). Limit 2: interactive load+1=2 <= 2 admits;
	// batch gates at 1.6 and sheds.
	s.SetAdmitLimit(2)
	_, _, err := s.SubmitBatch(context.Background(), spec(t, config.N, "swim", 5000))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("batch err = %v, want ErrShed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("batch err %T does not unwrap to *ShedError", err)
	}
	if shed.Class != Batch {
		t.Fatalf("shed class = %v, want Batch", shed.Class)
	}
	if shed.RetryAfter < 100*time.Millisecond || shed.RetryAfter > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want within [100ms, 5s]", shed.RetryAfter)
	}

	// Interactive still fits under the same limit — it must enqueue.
	errs := make(chan error, 1)
	go func() {
		_, _, err := s.Submit(context.Background(), spec(t, config.N, "swim", 5000))
		errs <- err
	}()
	waitFor(t, func() bool { return s.Stats().InteractiveDepth == 1 })

	// Load is now 2; the next interactive submit exceeds the limit and sheds.
	_, _, err = s.Submit(context.Background(), spec(t, config.N, "gcc", 5000))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("interactive err = %v, want ErrShed once over the limit", err)
	}
	if !errors.As(err, &shed) || shed.Class != Interactive {
		t.Fatalf("shed = %+v, want interactive class", shed)
	}

	st := s.Stats()
	if st.ShedBatch != 1 || st.ShedInteractive != 1 {
		t.Fatalf("sheds = %d batch / %d interactive, want 1 / 1", st.ShedBatch, st.ShedInteractive)
	}
	close(release)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestQueueFullBeatsAdmission pins the gate order: with the queue already at
// QueueCap, the legacy ErrQueueFull fires even when the admission limiter
// would also have shed the job.
func TestQueueFullBeatsAdmission(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())
	held, release := holdWorker(s)
	defer close(release)

	go func() { s.Submit(context.Background(), spec(t, config.N, "gzip", 5000)) }()
	<-held
	go func() { s.Submit(context.Background(), spec(t, config.N, "swim", 5000)) }()
	waitFor(t, func() bool { return s.Stats().InteractiveDepth == 1 })

	s.SetAdmitLimit(1) // would shed everything — but the full queue wins
	_, _, err := s.Submit(context.Background(), spec(t, config.N, "gcc", 5000))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull ahead of admission shed", err)
	}
}

// TestDeadlineUnmeetableFastFails: a submit whose remaining budget is below
// the cost model's estimate must fail at the gate, not simulate for nobody.
func TestDeadlineUnmeetableFastFails(t *testing.T) {
	s := New(Config{Workers: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())

	seedCost(s, config.N, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := s.Submit(ctx, spec(t, config.N, "gzip", 5000))
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("err = %v, want ErrDeadlineUnmeetable", err)
	}
	if st := s.Stats(); st.DeadlineRejected != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v, want 1 deadline-rejected and 0 completed", st)
	}

	// An unobserved model estimates 0 and must admit under any deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if _, _, err := s.Submit(ctx2, spec(t, config.W, "gzip", 5000)); err != nil {
		t.Fatalf("unobserved model rejected: %v", err)
	}
}

// TestDeadlineEvictsQueuedJob: a queued job admitted on an unknown cost but
// whose deadline turns unmeetable before a worker pops it is evicted with
// context.DeadlineExceeded instead of simulated.
func TestDeadlineEvictsQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, Cache: newCache(t), Pool: core.NewPool()})
	defer s.Drain(context.Background())
	held, release := holdWorker(s)

	go func() { s.Submit(context.Background(), spec(t, config.N, "gzip", 5000)) }()
	<-held

	// Admitted while config.W is unobserved (estimate 0); the far deadline
	// keeps the waiter alive so eviction — not abandonment — must fire.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	errs := make(chan error, 1)
	go func() {
		_, _, err := s.Submit(ctx, spec(t, config.W, "swim", 5000))
		errs <- err
	}()
	waitFor(t, func() bool { return s.Stats().InteractiveDepth == 1 })

	seedCost(s, config.W, 2*time.Hour) // now + 2h can never beat now + 1h
	close(release)
	if err := <-errs; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	waitFor(t, func() bool { return s.Stats().DeadlineEvicted == 1 })
	if st := s.Stats(); st.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (the evicted job must not simulate)", st.Completed)
	}
}

// TestDrainUnderLoad hammers Submit from many goroutines while Drain runs
// concurrently: no call may deadlock, every accepted job must return a
// result, and every rejection must be one of the published sentinels.
// The table covers tight and roomy scheduler shapes; run under -race.
func TestDrainUnderLoad(t *testing.T) {
	cases := []struct {
		name                               string
		workers, queueCap, submitters, per int
	}{
		{"tight", 1, 2, 4, 8},
		{"roomy", 4, 16, 8, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Workers: tc.workers, QueueCap: tc.queueCap, Cache: newCache(t), Pool: core.NewPool()})
			specs := []experiments.RunSpec{
				spec(t, config.N, "gzip", 2000),
				spec(t, config.TON, "swim", 2000),
				spec(t, config.W, "gcc", 2000),
			}
			start := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < tc.submitters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					<-start
					for i := 0; i < tc.per; i++ {
						res, _, err := s.Submit(context.Background(), specs[(g+i)%len(specs)])
						switch {
						case err == nil:
							if res == nil {
								t.Error("accepted submit returned nil result")
							}
						case errors.Is(err, ErrDraining),
							errors.Is(err, ErrQueueFull),
							errors.Is(err, ErrShed):
							// Published rejection sentinels — fine under drain.
						default:
							t.Errorf("unexpected submit error: %v", err)
						}
					}
				}(g)
			}
			close(start)

			dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(dctx); err != nil {
				t.Fatalf("drain did not complete under load: %v", err)
			}
			wg.Wait()

			st := s.Stats()
			if st.InteractiveDepth != 0 || st.BatchDepth != 0 {
				t.Fatalf("queues not empty after drain: %+v", st)
			}
			// Every enqueued flight must have resolved one way or another.
			if st.Enqueued < st.Completed {
				t.Fatalf("completed %d exceeds enqueued %d", st.Completed, st.Enqueued)
			}
		})
	}
}
