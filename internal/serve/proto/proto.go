// Package proto defines the wire types of the parrotd serving API — the
// JSON request/response bodies of /v1/run, /v1/matrix (and its SSE progress
// events), /v1/results/{digest}, /healthz and /metricsz. The daemon, the
// client library and every CLI (parrotctl, parrotload, parrotsim -remote,
// parrotbench -remote) share these structs, so the wire format has exactly
// one definition.
package proto

import "parrot/internal/core"

// Priority names of RunRequest.Priority.
const (
	PriorityInteractive = "interactive" // default: single-cell, latency-sensitive
	PriorityBatch       = "batch"       // matrix fan-out, throughput-oriented
)

// Overload-resilience headers shared by the api middleware, the client
// library and the cluster forwarding path.
const (
	// DeadlineHeader carries the request's remaining deadline budget in
	// whole milliseconds. A relative budget (not an absolute timestamp)
	// survives clock skew between hops; each hop re-stamps the remaining
	// budget from its own ctx deadline before forwarding.
	DeadlineHeader = "X-Parrot-Deadline"
	// DegradedHeader marks a /v1/run response served from a stale family
	// fallback under shed or deadline pressure (value "stale").
	DegradedHeader = "X-Parrot-Degraded"
	// RetryAfterMsHeader is the millisecond-precision companion of the
	// standard Retry-After header on 429 shed responses.
	RetryAfterMsHeader = "X-Parrot-Retry-After-Ms"
)

// RunRequest asks for one simulation cell. Model and App are resolved
// server-side against the paper's model set and benchmark roster; the
// server canonicalizes the pair plus Insts into a RunSpec and serves the
// cell from cache when its digest is already resident.
type RunRequest struct {
	Model string `json:"model"`
	App   string `json:"app"`
	// Insts is the dynamic instruction budget (0 = profile default).
	Insts int `json:"insts,omitempty"`
	// Priority selects the scheduler queue ("interactive" default, "batch").
	Priority string `json:"priority,omitempty"`
	// TimeoutMs bounds the end-to-end wait (0 = server default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// RunResponse returns one simulation cell.
type RunResponse struct {
	// Digest is the content address of the cell (RunSpec digest).
	Digest string `json:"digest"`
	// Cached reports whether the cell was served from the result cache
	// without touching the worker fleet.
	Cached bool `json:"cached"`
	// Disposition refines Cached: how the cell was obtained — "hit" (result
	// cache), "dedup" (joined an in-flight identical spec), "replayed"
	// (memo-replay simulation), "exact" (full simulation).
	Disposition string `json:"disposition,omitempty"`
	// RequestID is the server-assigned (or client-propagated
	// X-Parrot-Request-Id) correlation ID; feed it to /v1/trace/{id} for the
	// request's span timeline.
	RequestID string `json:"requestId,omitempty"`
	// ResultDigest is the canonical digest of Result, letting clients verify
	// transport integrity end-to-end.
	ResultDigest string `json:"resultDigest"`
	// ElapsedUs is the server-side handling time in microseconds.
	ElapsedUs int64        `json:"elapsedUs"`
	Result    *core.Result `json:"result"`
	// Node is the advertised URL of the cluster node that actually served
	// the cell (empty on single-node daemons).
	Node string `json:"node,omitempty"`
	// Attempts counts transport attempts the client layer needed (1 = first
	// try; populated client-side by the retrying client, not the server).
	Attempts int `json:"attempts,omitempty"`
	// Degraded marks a stale family fallback served under shed or deadline
	// pressure: Digest/Result belong to a previously cached run of the same
	// (model, app) family — possibly at a different instruction budget —
	// and RequestedDigest is the digest that was actually asked for.
	Degraded        bool   `json:"degraded,omitempty"`
	RequestedDigest string `json:"requestedDigest,omitempty"`
}

// MatrixRequest asks for a model × application fan-out. Empty slices mean
// the full set (all seven models / the 44-application roster).
type MatrixRequest struct {
	Models []string `json:"models,omitempty"`
	Apps   []string `json:"apps,omitempty"`
	Insts  int      `json:"insts,omitempty"`
	// TimeoutMs bounds the whole matrix (0 = server default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// Progress is the SSE "progress" event payload of /v1/matrix: one event per
// completed cell, done strictly increasing 1..total (mirroring the
// experiments.Config.Progress contract).
type Progress struct {
	Done      int   `json:"done"`
	Total     int   `json:"total"`
	ElapsedUs int64 `json:"elapsedUs"`
	EtaUs     int64 `json:"etaUs"`
	// Cached reports whether the just-completed cell came from cache.
	Cached bool `json:"cached"`
	// Disposition refines Cached ("hit", "dedup", "replayed", "exact").
	Disposition string `json:"disposition,omitempty"`
	// Failed counts cells (cumulative) that ended in a per-cell error
	// instead of a result.
	Failed int `json:"failed,omitempty"`
}

// Cell is one (model, application) result of a matrix response.
type Cell struct {
	Model  string `json:"model"`
	App    string `json:"app"`
	Digest string `json:"digest"` // RunSpec digest (content address)
	Cached bool   `json:"cached"`
	// Disposition refines Cached ("hit", "dedup", "replayed", "exact").
	Disposition string       `json:"disposition,omitempty"`
	Result      *core.Result `json:"result"`
	// Node is the cluster node that served the cell (empty when the
	// coordinator ran it in-process on a single-node daemon).
	Node string `json:"node,omitempty"`
	// Error is set (and Result nil) when the cell failed — shed, deadline
	// exceeded, or simulation error. The matrix completes with explicit
	// per-cell failures instead of aborting the whole fan-out.
	Error string `json:"error,omitempty"`
}

// MatrixResponse is the SSE "result" event payload of /v1/matrix: the full
// cell set plus the matrix-level digest computed server-side with the same
// canonical hashing as an in-process experiments.Run.
type MatrixResponse struct {
	// Digest is the matrix-level golden digest (experiments.Results.Digest).
	Digest  string  `json:"digest"`
	PMax    float64 `json:"pMax"`
	PMaxApp string  `json:"pMaxApp"`
	Insts   int     `json:"instsPerApp"`
	// CachedCells counts cells served from cache; TotalCells is the fan-out
	// size — CachedCells/TotalCells is the warm-matrix hit rate the CI smoke
	// test asserts on.
	CachedCells int   `json:"cachedCells"`
	TotalCells  int   `json:"totalCells"`
	ElapsedUs   int64 `json:"elapsedUs"`
	// FailedCells counts cells that carry a per-cell Error instead of a
	// result. When non-zero the matrix is partial: Digest and PMax are
	// empty/zero because the canonical matrix hash covers all cells.
	FailedCells int `json:"failedCells,omitempty"`
	// RequestID correlates the matrix with its /v1/trace/{id} timeline.
	RequestID string `json:"requestId,omitempty"`
	Cells     []Cell `json:"cells"`
}

// Error is the JSON error body of non-2xx responses.
type Error struct {
	Error string `json:"error"`
	// RetryAfterMs is the server's back-off hint on 429 shed responses
	// (also carried in the Retry-After / X-Parrot-Retry-After-Ms headers).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	OK         bool   `json:"ok"`
	Draining   bool   `json:"draining"`
	UptimeMs   int64  `json:"uptimeMs"`
	SimVersion int    `json:"simVersion"`
	GoVersion  string `json:"goVersion"`
}

// Ready is the /readyz body. Liveness (/healthz) says "the process is up";
// readiness says "route traffic here" — false while the pool prewarm is
// still running and during SIGTERM drain, when the body rides on HTTP 503.
type Ready struct {
	Ready bool `json:"ready"`
	// Reason explains a false Ready ("draining", "prewarming").
	Reason string `json:"reason,omitempty"`
}

// ClusterNode is one peer's membership record in the /clusterz body.
type ClusterNode struct {
	ID   string `json:"id"`
	Self bool   `json:"self,omitempty"`
	// State is "alive", "suspect" or "dead".
	State string `json:"state"`
	// InRing reports ring membership (non-dead nodes only).
	InRing bool `json:"inRing"`
	// Breaker is this node's circuit state as seen from the responding
	// node ("closed", "open", "half_open").
	Breaker     string `json:"breaker,omitempty"`
	ConsecFails int    `json:"consecFails,omitempty"`
	Probes      uint64 `json:"probes"`
	Fails       uint64 `json:"fails"`
	Reports     uint64 `json:"reports"`
	Flaps       uint64 `json:"flaps"`
	Rejoins     uint64 `json:"rejoins"`
	LastErr     string `json:"lastErr,omitempty"`
}

// ClusterStatus is the /clusterz body: the responding node's view of the
// membership set and routing ring. The ring is a pure function of
// (Members, VNodes), so clients can rebuild it locally to verify
// ownership placement.
type ClusterStatus struct {
	Self   string `json:"self"`
	Epoch  uint64 `json:"epoch"`
	VNodes int    `json:"vnodes"`
	// Members is the current ring membership (non-dead), sorted.
	Members []string      `json:"members"`
	Nodes   []ClusterNode `json:"nodes"`
}

// CacheMetrics exposes result-cache counters.
type CacheMetrics struct {
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	MemHits    uint64  `json:"memHits"`
	DiskHits   uint64  `json:"diskHits"`
	Puts       uint64  `json:"puts"`
	Evictions  uint64  `json:"evictions"`
	DiskErrors uint64  `json:"diskErrors"`
	Entries    int     `json:"entries"`
	Bytes      int64   `json:"bytes"`
	Budget     int64   `json:"budgetBytes"`
	HitRate    float64 `json:"hitRate"` // hits / (hits+misses)
	// EntryBytesMean is the mean encoded entry size over all insertions
	// (from the cache's occupancy histogram).
	EntryBytesMean float64 `json:"entryBytesMean"`
}

// SchedMetrics exposes scheduler/worker-fleet counters.
type SchedMetrics struct {
	Workers          int     `json:"workers"`
	Running          int     `json:"running"`
	InteractiveDepth int     `json:"interactiveQueueDepth"`
	BatchDepth       int     `json:"batchQueueDepth"`
	Completed        uint64  `json:"completed"`
	Deduped          uint64  `json:"deduped"`
	Rejected         uint64  `json:"rejected"`
	Abandoned        uint64  `json:"abandoned"`
	CacheHits        uint64  `json:"cacheHits"`
	SimInsts         uint64  `json:"simInsts"`
	BusyUs           int64   `json:"busyUs"`
	SimMIPS          float64 `json:"simMIPS"`     // simulated Minsts per busy second
	Utilization      float64 `json:"utilization"` // busy time / (workers × uptime)
	// Overload-resilience counters (see DESIGN.md §14).
	ShedInteractive  uint64  `json:"shedInteractive"`
	ShedBatch        uint64  `json:"shedBatch"`
	DeadlineRejected uint64  `json:"deadlineRejected"`
	DeadlineEvicted  uint64  `json:"deadlineEvicted"`
	AdmitLimit       float64 `json:"admitLimit"`
}

// PoolMetrics exposes machine-pool counters.
type PoolMetrics struct {
	Gets     uint64 `json:"gets"`
	Reuses   uint64 `json:"reuses"`
	Puts     uint64 `json:"puts"`
	Discards uint64 `json:"discards"`
	Size     int    `json:"size"`
}

// Metrics is the /metricsz body.
type Metrics struct {
	Cache CacheMetrics `json:"cache"`
	Sched SchedMetrics `json:"sched"`
	Pool  PoolMetrics  `json:"pool"`
}
