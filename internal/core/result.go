package core

import (
	"fmt"

	"parrot/internal/branch"
	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/isa"
	"parrot/internal/ooo"
	"parrot/internal/tcache"
	"parrot/internal/tpred"
	"parrot/internal/workload"
)

// Result collects everything a single (model, application) run produces:
// timing, energy event counts, and the PARROT-specific statistics behind
// Figures 4.7–4.11.
type Result struct {
	Model config.ModelID
	App   string
	Suite workload.Suite

	// Performance.
	Insts  uint64 // committed IA32 instructions
	Cycles uint64

	// Instruction routing.
	HotInsts  uint64 // instructions committed via the hot pipeline
	ColdInsts uint64

	// Dynamic energy (leakage is added by the caller, which knows P_MAX).
	DynEnergy float64

	// Breakdown per component, dynamic energy only.
	Breakdown [energy.NumComponents]float64

	// Front-end behaviour (Figure 4.7).
	BranchStats branch.Stats
	TPredStats  tpred.Stats

	// Trace machinery (Figures 4.8, 4.10).
	TCStats      tcache.Stats
	TraceAborts  uint64
	TraceBuilds  uint64
	HotSegments  uint64
	ColdSegments uint64

	// Optimizer impact (Figures 4.9, 4.10). The Dyn* sums are weighted by
	// dynamic executions of optimized traces; Opt* sums are per optimizer
	// invocation.
	Optimizations  uint64
	OptUopsBefore  uint64
	OptUopsAfter   uint64
	OptCritBefore  uint64
	OptCritAfter   uint64
	DynUopsOrig    uint64
	DynUopsOpt     uint64
	DynCritOrig    uint64
	DynCritOpt     uint64
	OptTracesSeen  uint64 // distinct optimized traces executed in the window
	OptExecs       uint64 // dynamic executions of optimized traces
	UopsCommitted  uint64
	UopsDispatched uint64

	// Raw event counts (cold- and hot-priced vectors merged for reporting).
	Counts energy.Counts

	// CoreAreaK and L2MB parameterize the leakage formula.
	CoreAreaK float64
	L2MB      float64
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Coverage returns the fraction of instructions executed on the hot
// pipeline (Figure 4.8).
func (r *Result) Coverage() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.HotInsts) / float64(r.HotInsts+r.ColdInsts)
}

// UopReduction returns the optimizer's dynamic uop reduction, weighted by
// executions of optimized traces (Figure 4.9).
func (r *Result) UopReduction() float64 {
	if r.DynUopsOrig == 0 {
		return 0
	}
	return 1 - float64(r.DynUopsOpt)/float64(r.DynUopsOrig)
}

// CritReduction returns the optimizer's dependency-path reduction, weighted
// by executions of optimized traces (Figure 4.9).
func (r *Result) CritReduction() float64 {
	if r.DynCritOrig == 0 {
		return 0
	}
	return 1 - float64(r.DynCritOpt)/float64(r.DynCritOrig)
}

// OptimizedTraceUtilization returns the mean dynamic executions per
// distinct optimized trace (Figure 4.10).
func (r *Result) OptimizedTraceUtilization() float64 {
	if r.OptTracesSeen == 0 {
		return 0
	}
	return float64(r.OptExecs) / float64(r.OptTracesSeen)
}

// AvgDynPower returns average dynamic power (energy units per cycle),
// which anchors the leakage formula's P_MAX.
func (r *Result) AvgDynPower() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.DynEnergy / float64(r.Cycles)
}

// TotalEnergy returns dynamic plus leakage energy for a given P_MAX.
func (r *Result) TotalEnergy(pmax float64) float64 {
	return r.DynEnergy + energy.Leakage(pmax, r.L2MB, r.CoreAreaK, r.Cycles)
}

// CMPW returns the cubic-MIPS-per-watt metric for a given P_MAX.
func (r *Result) CMPW(pmax float64) float64 {
	return energy.CMPW(r.Insts, r.Cycles, r.TotalEnergy(pmax))
}

func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC %.3f, energy %.3g, coverage %.2f",
		r.Model, r.App, r.IPC(), r.DynEnergy, r.Coverage())
}

// engineEvents converts execution-engine statistics into energy events.
func engineEvents(st *ooo.Stats, c *energy.Counts) {
	c.Add(energy.EvRename, st.UopsDispatched)
	c.Add(energy.EvIQInsert, st.UopsDispatched)
	c.Add(energy.EvROBWrite, st.ROBWrites)
	c.Add(energy.EvROBRead, st.ROBReads)
	c.Add(energy.EvRegRead, st.RegReads)
	c.Add(energy.EvRegWrite, st.RegWrites)
	c.Add(energy.EvWakeup, st.Wakeups)
	c.Add(energy.EvSelect, st.UopsIssued)
	c.Add(energy.EvCommit, st.UopsCommitted)

	classEvent := [isa.NumExecClasses]energy.Event{
		isa.ClassNop:    energy.EvALU,
		isa.ClassIntALU: energy.EvALU,
		isa.ClassIntMul: energy.EvMul,
		isa.ClassIntDiv: energy.EvDiv,
		isa.ClassFPAdd:  energy.EvFPAdd,
		isa.ClassFPMul:  energy.EvFPMul,
		isa.ClassFPDiv:  energy.EvFPDiv,
		isa.ClassLoad:   energy.EvAGU,
		isa.ClassStore:  energy.EvAGU,
		isa.ClassBranch: energy.EvBrUnit,
	}
	for cls, n := range st.OpsByClass {
		c.Add(classEvent[cls], n)
	}
}

// collect finalizes all statistics into a Result.
func (m *Machine) collect(prof workload.Profile) *Result {
	// Engine-derived events.
	engineEvents(&m.cold.Stats, &m.counts)
	if m.model.Split {
		engineEvents(&m.hot.Stats, &m.countsHot)
	}

	// Memory hierarchy events.
	m.counts.Add(energy.EvFetchLine, m.hier.L1I.Stats.Accesses)
	m.counts.Add(energy.EvL1DAccess, m.hier.L1D.Stats.Accesses)
	m.counts.Add(energy.EvL1DMiss, m.hier.L1D.Stats.Misses)
	m.counts.Add(energy.EvL2Access, m.hier.L2.Stats.Accesses)
	// Prefetch fills consume L2 bandwidth and energy like demand accesses.
	m.counts.Add(energy.EvL2Access, m.hier.Prefetches)
	m.counts.Add(energy.EvMemAccess, m.hier.L2.Stats.Misses)

	r := &Result{
		Model:     m.model.ID,
		App:       prof.Name,
		Suite:     prof.Suite,
		Insts:     m.insts,
		Cycles:    m.clock - m.clockStart,
		HotInsts:  m.hotInsts,
		ColdInsts: m.coldInsts,
		CoreAreaK: m.model.CoreAreaK,
		L2MB:      m.hier.L2SizeMB(),

		BranchStats: m.bp.Stats,

		TraceAborts:  m.traceAborts,
		TraceBuilds:  m.buildCount,
		HotSegments:  m.hotSegments,
		ColdSegments: m.coldSegments,

		Optimizations: m.optCount,
		OptUopsBefore: m.uopsBefore,
		OptUopsAfter:  m.uopsAfter,
		OptCritBefore: m.critBefore,
		OptCritAfter:  m.critAfter,
		DynUopsOrig:   m.dynUopsOrig,
		DynUopsOpt:    m.dynUopsOpt,
		DynCritOrig:   m.dynCritOrig,
		DynCritOpt:    m.dynCritOpt,
		OptTracesSeen: uint64(len(m.optSeen)),
		OptExecs:      m.optExecs,

		UopsCommitted:  m.cold.Stats.UopsCommitted + hotOnly(m, func(s *ooo.Stats) uint64 { return s.UopsCommitted }),
		UopsDispatched: m.cold.Stats.UopsDispatched + hotOnly(m, func(s *ooo.Stats) uint64 { return s.UopsDispatched }),
	}
	if m.tp != nil {
		r.TPredStats = m.tp.Stats
	}
	if m.tc != nil {
		r.TCStats = m.tc.Stats
	}

	// Energy: price the two vectors with their models, merge for reporting.
	r.DynEnergy = m.emodel.Energy(&m.counts) + m.ehot.Energy(&m.countsHot)
	bc := m.emodel.Breakdown(&m.counts)
	bh := m.ehot.Breakdown(&m.countsHot)
	for i := range bc {
		r.Breakdown[i] = bc[i] + bh[i]
	}
	r.Counts = m.counts
	r.Counts.AddCounts(&m.countsHot)
	return r
}

func hotOnly(m *Machine, f func(*ooo.Stats) uint64) uint64 {
	if !m.model.Split {
		return 0
	}
	return f(&m.hot.Stats)
}
