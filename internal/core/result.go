package core

import (
	"fmt"

	"parrot/internal/branch"
	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/isa"
	"parrot/internal/ooo"
	"parrot/internal/tcache"
	"parrot/internal/tpred"
	"parrot/internal/workload"
)

// Result collects everything a single (model, application) run produces:
// timing, energy event counts, and the PARROT-specific statistics behind
// Figures 4.7–4.11.
type Result struct {
	Model config.ModelID
	App   string
	Suite workload.Suite

	// Performance.
	Insts  uint64 // committed IA32 instructions
	Cycles uint64

	// Instruction routing.
	HotInsts  uint64 // instructions committed via the hot pipeline
	ColdInsts uint64

	// Dynamic energy (leakage is added by the caller, which knows P_MAX).
	DynEnergy float64

	// Breakdown per component, dynamic energy only.
	Breakdown [energy.NumComponents]float64

	// Front-end behaviour (Figure 4.7).
	BranchStats branch.Stats
	TPredStats  tpred.Stats

	// Trace machinery (Figures 4.8, 4.10).
	TCStats      tcache.Stats
	TraceAborts  uint64
	TraceBuilds  uint64
	HotSegments  uint64
	ColdSegments uint64

	// Optimizer impact (Figures 4.9, 4.10). The Dyn* sums are weighted by
	// dynamic executions of optimized traces; Opt* sums are per optimizer
	// invocation.
	Optimizations  uint64
	OptUopsBefore  uint64
	OptUopsAfter   uint64
	OptCritBefore  uint64
	OptCritAfter   uint64
	DynUopsOrig    uint64
	DynUopsOpt     uint64
	DynCritOrig    uint64
	DynCritOpt     uint64
	OptTracesSeen  uint64 // distinct optimized traces executed in the window
	OptExecs       uint64 // dynamic executions of optimized traces
	UopsCommitted  uint64
	UopsDispatched uint64

	// Raw event counts (cold- and hot-priced vectors merged for reporting).
	Counts energy.Counts

	// CoreAreaK and L2MB parameterize the leakage formula.
	CoreAreaK float64
	L2MB      float64
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Coverage returns the fraction of instructions executed on the hot
// pipeline (Figure 4.8).
func (r *Result) Coverage() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.HotInsts) / float64(r.HotInsts+r.ColdInsts)
}

// UopReduction returns the optimizer's dynamic uop reduction, weighted by
// executions of optimized traces (Figure 4.9).
func (r *Result) UopReduction() float64 {
	if r.DynUopsOrig == 0 {
		return 0
	}
	return 1 - float64(r.DynUopsOpt)/float64(r.DynUopsOrig)
}

// CritReduction returns the optimizer's dependency-path reduction, weighted
// by executions of optimized traces (Figure 4.9).
func (r *Result) CritReduction() float64 {
	if r.DynCritOrig == 0 {
		return 0
	}
	return 1 - float64(r.DynCritOpt)/float64(r.DynCritOrig)
}

// OptimizedTraceUtilization returns the mean dynamic executions per
// distinct optimized trace (Figure 4.10).
func (r *Result) OptimizedTraceUtilization() float64 {
	if r.OptTracesSeen == 0 {
		return 0
	}
	return float64(r.OptExecs) / float64(r.OptTracesSeen)
}

// AvgDynPower returns average dynamic power (energy units per cycle),
// which anchors the leakage formula's P_MAX.
func (r *Result) AvgDynPower() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.DynEnergy / float64(r.Cycles)
}

// TotalEnergy returns dynamic plus leakage energy for a given P_MAX.
func (r *Result) TotalEnergy(pmax float64) float64 {
	return r.DynEnergy + energy.Leakage(pmax, r.L2MB, r.CoreAreaK, r.Cycles)
}

// CMPW returns the cubic-MIPS-per-watt metric for a given P_MAX.
func (r *Result) CMPW(pmax float64) float64 {
	return energy.CMPW(r.Insts, r.Cycles, r.TotalEnergy(pmax))
}

func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: IPC %.3f, energy %.3g, coverage %.2f",
		r.Model, r.App, r.IPC(), r.DynEnergy, r.Coverage())
}

// engineEvents converts execution-engine statistics into energy events.
func engineEvents(st *ooo.Stats, c *energy.Counts) {
	c.Add(energy.EvRename, st.UopsDispatched)
	c.Add(energy.EvIQInsert, st.UopsDispatched)
	c.Add(energy.EvROBWrite, st.ROBWrites)
	c.Add(energy.EvROBRead, st.ROBReads)
	c.Add(energy.EvRegRead, st.RegReads)
	c.Add(energy.EvRegWrite, st.RegWrites)
	c.Add(energy.EvWakeup, st.Wakeups)
	c.Add(energy.EvSelect, st.UopsIssued)
	c.Add(energy.EvCommit, st.UopsCommitted)

	classEvent := [isa.NumExecClasses]energy.Event{
		isa.ClassNop:    energy.EvALU,
		isa.ClassIntALU: energy.EvALU,
		isa.ClassIntMul: energy.EvMul,
		isa.ClassIntDiv: energy.EvDiv,
		isa.ClassFPAdd:  energy.EvFPAdd,
		isa.ClassFPMul:  energy.EvFPMul,
		isa.ClassFPDiv:  energy.EvFPDiv,
		isa.ClassLoad:   energy.EvAGU,
		isa.ClassStore:  energy.EvAGU,
		isa.ClassBranch: energy.EvBrUnit,
	}
	for cls, n := range st.OpsByClass {
		c.Add(classEvent[cls], n)
	}
}

// gatherRun snapshots every result-relevant counter of the finished (or
// in-flight, at a memoization window boundary) run into rc, without
// mutating the machine. It is the counterpart of buildResult: together they
// replace the old in-place collect, so the exact path and the memoized
// replay path share one result construction.
func (m *Machine) gatherRun(rc *runCounters) {
	*rc = runCounters{
		cycles:    m.clock - m.clockStart,
		insts:     m.insts,
		hotInsts:  m.hotInsts,
		coldInsts: m.coldInsts,

		traceAborts:  m.traceAborts,
		abortedUops:  m.abortedUops,
		optCount:     m.optCount,
		optExecs:     m.optExecs,
		uopsBefore:   m.uopsBefore,
		uopsAfter:    m.uopsAfter,
		critBefore:   m.critBefore,
		critAfter:    m.critAfter,
		buildCount:   m.buildCount,
		hotSegments:  m.hotSegments,
		coldSegments: m.coldSegments,
		dynUopsOrig:  m.dynUopsOrig,
		dynUopsOpt:   m.dynUopsOpt,
		dynCritOrig:  m.dynCritOrig,
		dynCritOpt:   m.dynCritOpt,
		optSeen:      uint64(len(m.optSeen)),

		counts:    m.counts,
		countsHot: m.countsHot,

		cold: m.cold.Stats,

		l1i:        m.hier.L1I.Stats,
		l1d:        m.hier.L1D.Stats,
		l2:         m.hier.L2.Stats,
		prefetches: m.hier.Prefetches,

		bp: m.bp.Stats,
	}
	if m.model.Split {
		rc.hot = m.hot.Stats
	}
	if m.tp != nil {
		rc.tp = m.tp.Stats
	}
	if m.tc != nil {
		rc.tc = m.tc.Stats
	}
}

// buildResult produces the Result for a counter block. It is pure in the
// mutable machine state: it reads only the immutable model configuration
// and energy models, so a replayed counter block prices to a byte-identical
// Result. The event folding and pricing order exactly mirror the original
// collect, keeping the golden matrix digest unchanged.
func (m *Machine) buildResult(prof workload.Profile, rc *runCounters) *Result {
	// Engine-derived events.
	counts, countsHot := rc.counts, rc.countsHot
	engineEvents(&rc.cold, &counts)
	if m.model.Split {
		engineEvents(&rc.hot, &countsHot)
	}

	// Memory hierarchy events.
	counts.Add(energy.EvFetchLine, rc.l1i.Accesses)
	counts.Add(energy.EvL1DAccess, rc.l1d.Accesses)
	counts.Add(energy.EvL1DMiss, rc.l1d.Misses)
	counts.Add(energy.EvL2Access, rc.l2.Accesses)
	// Prefetch fills consume L2 bandwidth and energy like demand accesses.
	counts.Add(energy.EvL2Access, rc.prefetches)
	counts.Add(energy.EvMemAccess, rc.l2.Misses)

	r := &Result{
		Model:     m.model.ID,
		App:       prof.Name,
		Suite:     prof.Suite,
		Insts:     rc.insts,
		Cycles:    rc.cycles,
		HotInsts:  rc.hotInsts,
		ColdInsts: rc.coldInsts,
		CoreAreaK: m.model.CoreAreaK,
		L2MB:      m.hier.L2SizeMB(),

		BranchStats: rc.bp,
		TPredStats:  rc.tp,
		TCStats:     rc.tc,

		TraceAborts:  rc.traceAborts,
		TraceBuilds:  rc.buildCount,
		HotSegments:  rc.hotSegments,
		ColdSegments: rc.coldSegments,

		Optimizations: rc.optCount,
		OptUopsBefore: rc.uopsBefore,
		OptUopsAfter:  rc.uopsAfter,
		OptCritBefore: rc.critBefore,
		OptCritAfter:  rc.critAfter,
		DynUopsOrig:   rc.dynUopsOrig,
		DynUopsOpt:    rc.dynUopsOpt,
		DynCritOrig:   rc.dynCritOrig,
		DynCritOpt:    rc.dynCritOpt,
		OptTracesSeen: rc.optSeen,
		OptExecs:      rc.optExecs,

		UopsCommitted:  rc.cold.UopsCommitted + rc.hot.UopsCommitted,
		UopsDispatched: rc.cold.UopsDispatched + rc.hot.UopsDispatched,
	}

	// Energy: price the two vectors with their models, merge for reporting.
	r.DynEnergy = m.emodel.Energy(&counts) + m.ehot.Energy(&countsHot)
	bc := m.emodel.Breakdown(&counts)
	bh := m.ehot.Breakdown(&countsHot)
	for i := range bc {
		r.Breakdown[i] = bc[i] + bh[i]
	}
	r.Counts = counts
	r.Counts.AddCounts(&countsHot)
	return r
}

// collect finalizes all statistics into a Result.
func (m *Machine) collect(prof workload.Profile) *Result {
	var rc runCounters
	m.gatherRun(&rc)
	return m.buildResult(prof, &rc)
}
