package core

import (
	"testing"

	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/trace"
	"parrot/internal/workload"
)

// runSmall is a test helper: a short warmed run.
func runSmall(t *testing.T, id config.ModelID, app string, n int) *Result {
	t.Helper()
	p, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	return RunWarm(config.Get(id), p, n)
}

func TestBaselineRunCompletes(t *testing.T) {
	r := runSmall(t, config.N, "gzip", 30000)
	if r.Insts == 0 || r.Cycles == 0 {
		t.Fatalf("empty run: %+v", r)
	}
	if r.IPC() <= 0.1 || r.IPC() > 4 {
		t.Errorf("implausible IPC %v", r.IPC())
	}
	if r.HotInsts != 0 {
		t.Error("baseline must not execute hot instructions")
	}
	if r.DynEnergy <= 0 {
		t.Error("no dynamic energy accumulated")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, config.TON, "gzip", 30000)
	b := runSmall(t, config.TON, "gzip", 30000)
	if a.Insts != b.Insts || a.Cycles != b.Cycles || a.DynEnergy != b.DynEnergy {
		t.Fatalf("nondeterministic run: %v/%v vs %v/%v", a.Insts, a.Cycles, b.Insts, b.Cycles)
	}
	if a.Counts != b.Counts {
		t.Fatal("nondeterministic event counts")
	}
}

func TestInstructionConservation(t *testing.T) {
	// Every committed instruction is accounted once: hot + cold = total,
	// and the total matches the measured stream window (within the
	// in-flight slack at the warmup boundary).
	for _, id := range []config.ModelID{config.N, config.TON, config.TOS} {
		r := runSmall(t, id, "vpr", 40000)
		if r.HotInsts+r.ColdInsts != r.Insts {
			// Instructions dispatched hot/cold are counted at fetch; the
			// committed count may differ only by the pipeline contents at
			// the reset boundary.
			// Worst-case slack: both windows plus the dispatch queue were
			// in flight when the warmup boundary reset the fetch counters.
			diff := int64(r.HotInsts+r.ColdInsts) - int64(r.Insts)
			if diff < -500 || diff > 500 {
				t.Errorf("%s: hot %d + cold %d != committed %d", id, r.HotInsts, r.ColdInsts, r.Insts)
			}
		}
	}
}

func TestTraceCacheMachineryEngages(t *testing.T) {
	r := runSmall(t, config.TON, "swim", 60000)
	if r.Coverage() < 0.5 {
		t.Errorf("swim coverage = %v, expected high", r.Coverage())
	}
	if r.Optimizations == 0 && r.OptExecs == 0 {
		t.Error("optimizer never engaged on swim")
	}
	if r.OptExecs > 0 && r.UopReduction() <= 0 {
		t.Error("optimized executions without uop reduction")
	}
	if r.TCStats.Lookups == 0 {
		t.Error("trace cache never probed")
	}
}

func TestOptimizedModelBeatsPlainTraceCache(t *testing.T) {
	tn := runSmall(t, config.TN, "flash", 60000)
	ton := runSmall(t, config.TON, "flash", 60000)
	if ton.IPC() <= tn.IPC() {
		t.Errorf("TON IPC %v must exceed TN %v on flash", ton.IPC(), tn.IPC())
	}
	if ton.DynEnergy >= tn.DynEnergy {
		t.Errorf("TON energy %v must undercut TN %v (fewer uops executed)", ton.DynEnergy, tn.DynEnergy)
	}
}

func TestWideBeatsNarrow(t *testing.T) {
	n := runSmall(t, config.N, "swim", 60000)
	w := runSmall(t, config.W, "swim", 60000)
	if w.IPC() <= n.IPC() {
		t.Errorf("W IPC %v must exceed N %v", w.IPC(), n.IPC())
	}
	if w.DynEnergy <= n.DynEnergy {
		t.Errorf("W energy %v must exceed N %v", w.DynEnergy, n.DynEnergy)
	}
}

func TestSplitModelRuns(t *testing.T) {
	r := runSmall(t, config.TOS, "flash", 40000)
	if r.Insts == 0 {
		t.Fatal("split machine committed nothing")
	}
	if r.Coverage() < 0.3 {
		t.Errorf("split machine coverage = %v", r.Coverage())
	}
	if r.Counts[energy.EvStateSwitch] == 0 {
		t.Error("split machine never charged a state switch")
	}
}

func TestHotPipelineSkipsDecode(t *testing.T) {
	n := runSmall(t, config.N, "swim", 50000)
	ton := runSmall(t, config.TON, "swim", 50000)
	decN := n.Counts[energy.EvDecodeSimple] + n.Counts[energy.EvDecodeComplex]
	decT := ton.Counts[energy.EvDecodeSimple] + ton.Counts[energy.EvDecodeComplex]
	if decT >= decN/2 {
		t.Errorf("decoded insts: TON %d vs N %d — trace cache must bypass decode", decT, decN)
	}
	if ton.Counts[energy.EvTCReadUop] == 0 {
		t.Error("no trace-cache uop reads on a high-coverage app")
	}
}

func TestFig47Ordering(t *testing.T) {
	// Hot-trace misprediction < N's branch misprediction < TON's cold
	// residue misprediction (paper Figure 4.7).
	n := runSmall(t, config.N, "gcc", 60000)
	ton := runSmall(t, config.TON, "gcc", 60000)
	nBr := n.BranchStats.MispredictRate()
	coldBr := ton.BranchStats.MispredictRate()
	hotTr := ton.TPredStats.MispredictRate()
	if !(hotTr < nBr) {
		t.Errorf("trace mispredict %v should undercut N branch mispredict %v", hotTr, nBr)
	}
	if !(coldBr > nBr) {
		t.Errorf("cold-residue mispredict %v should exceed N's %v", coldBr, nBr)
	}
}

func TestCoverageOrdering(t *testing.T) {
	// Regular FP code must reach higher coverage than irregular integer
	// code (paper Figure 4.8: ~90% vs 60-70%).
	fp := runSmall(t, config.TON, "swim", 60000)
	in := runSmall(t, config.TON, "gcc", 60000)
	if fp.Coverage() < 0.8 {
		t.Errorf("FP coverage = %v, want ~0.9", fp.Coverage())
	}
	if in.Coverage() > fp.Coverage() {
		t.Errorf("integer coverage %v above FP %v", in.Coverage(), fp.Coverage())
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	r := runSmall(t, config.TON, "flash", 40000)
	sum := 0.0
	for _, v := range r.Breakdown {
		sum += v
	}
	if diff := sum - r.DynEnergy; diff > 1e-6*r.DynEnergy || diff < -1e-6*r.DynEnergy {
		t.Errorf("breakdown sum %v != dyn energy %v", sum, r.DynEnergy)
	}
	if r.Breakdown[energy.CompTraceCache] == 0 {
		t.Error("trace-cache component empty on a PARROT model")
	}
}

func TestLeakageScalesWithAreaAndTime(t *testing.T) {
	r := runSmall(t, config.N, "gzip", 30000)
	e1 := r.TotalEnergy(10)
	e2 := r.TotalEnergy(20)
	if e2 <= e1 {
		t.Error("higher P_MAX must raise total energy")
	}
	want := r.DynEnergy + energy.Leakage(10, r.L2MB, r.CoreAreaK, r.Cycles)
	if d := e1 - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("TotalEnergy = %v, want %v", e1, want)
	}
}

func TestTraceMatchGuardsCollisions(t *testing.T) {
	// traceMatches must reject frames whose shape disagrees with the
	// segment (hash-collision defense).
	m := New(config.Get(config.TON))
	p, _ := workload.ByName("gzip")
	prog := workload.Generate(p)
	stream := workload.NewStream(prog, 5000)
	sel := trace.NewSelector()
	var segs []trace.Segment
	for len(segs) < 6 {
		d, ok := stream.Next()
		if !ok {
			break
		}
		segs = append(segs, sel.Feed(&d)...)
	}
	if len(segs) < 2 {
		t.Fatal("not enough segments")
	}
	tr := trace.Build(&segs[0])
	if !m.traceMatches(tr, &segs[0]) {
		t.Error("trace must match the segment it was built from")
	}
	var other *trace.Segment
	for i := 1; i < len(segs); i++ {
		if segs[i].NumInsts() != segs[0].NumInsts() {
			other = &segs[i]
			break
		}
	}
	if other != nil && m.traceMatches(tr, other) {
		t.Error("trace matched a differently-shaped segment")
	}
}

func TestWarmupResetClearsCounters(t *testing.T) {
	m := New(config.Get(config.TON))
	p, _ := workload.ByName("gzip")
	prog := workload.Generate(p)
	stream := workload.NewStream(prog, 8000)
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		for _, seg := range m.sel.Feed(&d) {
			m.execSegment(&seg)
		}
	}
	if m.clock == 0 {
		t.Fatal("machine did not advance")
	}
	m.ResetStats()
	if m.insts != 0 || m.counts != (energy.Counts{}) || m.clockStart != m.clock {
		t.Error("reset left residual statistics")
	}
	if m.bp.Stats.Lookups != 0 || m.cold.Stats.UopsDispatched != 0 {
		t.Error("reset missed component statistics")
	}
}

func TestAllModelsRunAllSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke test")
	}
	apps := []string{"gcc", "swim", "word", "flash", "dotnet-image"}
	for _, m := range config.All() {
		for _, app := range apps {
			r := runSmall(t, m.ID, app, 20000)
			if r.Insts == 0 || r.Cycles == 0 {
				t.Errorf("%s/%s: empty run", m.ID, app)
			}
		}
	}
}
