package core

import (
	"parrot/internal/branch"
	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/filter"
	"parrot/internal/mem"
	"parrot/internal/ooo"
	"parrot/internal/tcache"
	"parrot/internal/tpred"
	"parrot/internal/workload"
)

// ResetStats zeroes all measurement state while keeping the machine warm:
// cache contents, predictor tables, trace cache, filters and in-flight work
// survive. Trace-driven studies measure steady state — the paper's 30–100M
// instruction traces amortize compulsory effects that would otherwise
// dominate shorter synthetic runs.
func (m *Machine) ResetStats() {
	if m.rec != nil {
		// Close the trailing warmup interval while the pre-reset counters
		// are still live, and stamp the measurement boundary.
		m.obsMeasureStart()
	}
	m.counts = energy.Counts{}
	m.countsHot = energy.Counts{}
	m.cold.Stats = ooo.Stats{}
	if m.model.Split {
		m.hot.Stats = ooo.Stats{}
	}
	m.hier.Prefetches = 0
	m.hier.L1I.Stats = mem.CacheStats{}
	m.hier.L1D.Stats = mem.CacheStats{}
	m.hier.L2.Stats = mem.CacheStats{}
	m.bp.Stats = branch.Stats{}
	m.btb.Stats = branch.Stats{}
	m.ras.Stats = branch.Stats{}
	if m.tp != nil {
		m.tp.Stats = tpred.Stats{}
	}
	if m.tc != nil {
		m.tc.Stats = tcache.Stats{}
	}
	if m.hotF != nil {
		m.hotF.Stats = filter.Stats{}
	}
	if m.blazeF != nil {
		m.blazeF.Stats = filter.Stats{}
	}
	m.clockStart = m.clock
	m.insts = 0
	m.hotInsts = 0
	m.coldInsts = 0
	m.traceAborts = 0
	m.abortedUops = 0
	m.optCount = 0
	m.optExecs = 0
	m.uopsBefore, m.uopsAfter = 0, 0
	m.critBefore, m.critAfter = 0, 0
	m.buildCount = 0
	m.hotSegments, m.coldSegments = 0, 0
	m.dynUopsOrig, m.dynUopsOpt = 0, 0
	m.dynCritOrig, m.dynCritOpt = 0, 0
	m.optSeen = nil
	m.diagColdResident, m.diagColdAbsent = 0, 0
	m.diagFetchStall, m.diagResolve = 0, 0
	// Reset per-trace execution counters so Figure 4.10 reflects the
	// measured window only.
	if m.tc != nil {
		for _, tr := range m.tc.Resident() {
			tr.Executions = 0
		}
	}
	if m.rec != nil {
		// Interval 0 of the measured window starts at the zeroed counters.
		m.obsRebase()
	}
}

// WarmupFraction is the share of each run used to warm caches, predictors
// and the trace subsystem before statistics are measured.
const WarmupFraction = 0.3

// RunWarm executes an application with the standard warmup protocol:
// the first WarmupFraction of the stream primes the machine, statistics
// reset, and the remainder is measured. Machines are drawn from (and
// returned to) the package machine pool, and the synthesized program is
// memoized per profile — repeated runs reuse fully-allocated structures.
// Pooled runs are bit-identical to fresh ones (the Reset protocol), which
// TestPooledMatchesFreshAllModels enforces.
func RunWarm(model config.Model, prof workload.Profile, n int) *Result {
	return DefaultPool.RunWarm(model, prof, n)
}

// RunWarm is RunWarm drawing its machine from this pool.
func (p *Pool) RunWarm(model config.Model, prof workload.Profile, n int) *Result {
	m := p.Get(model)
	defer p.Put(m)
	return RunWarmOn(m, prof, n)
}

// RunWarmOn is the warmup protocol on a caller-managed machine: m must be
// freshly constructed or Reset, and ownership stays with the caller (nothing
// is pooled or reset here). It is the building block for callers that hold a
// machine across many runs — the experiment matrix workers reset and reuse
// one machine per model instead of cycling the pool lock per cell.
func RunWarmOn(m *Machine, prof workload.Profile, n int) *Result {
	if n <= 0 {
		n = prof.Instructions
	}
	warm := int(float64(n) * WarmupFraction)
	// Hot-window memoization fast path: a reset machine re-running a spec it
	// has already recorded replays the stored window deltas — skipping
	// program synthesis, stream generation and simulation entirely — and
	// produces a byte-identical Result (memo.go). Any miss falls through to
	// the exact engine below, optionally recording the trajectory.
	if r := m.memoReplay(prof, n, warm); r != nil {
		return r
	}
	prog := workload.GenerateCached(prof)
	src := workload.GetStream(prog, n)
	defer workload.PutStream(src)
	m.memoArm(prof, n, warm)
	return m.RunSourceWarm(src, prof, warm)
}

// RunWarmFresh is RunWarm on a never-pooled, freshly constructed machine —
// the reference the determinism tests compare pooled runs against.
func RunWarmFresh(model config.Model, prof workload.Profile, n int) *Result {
	if n <= 0 {
		n = prof.Instructions
	}
	m := New(model)
	prog := workload.GenerateCached(prof)
	return m.RunSourceWarm(workload.NewStream(prog, n), prof, int(float64(n)*WarmupFraction))
}

// RunSourceWarm drives the machine from an arbitrary instruction source,
// resetting statistics after the first warm instructions.
func (m *Machine) RunSourceWarm(src InstSource, prof workload.Profile, warm int) *Result {
	fed := 0
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		fed++
		segs := m.sel.Feed(&d)
		for i := range segs {
			m.execSegment(&segs[i])
			m.sel.Recycle(&segs[i])
		}
		if fed == warm {
			m.ResetStats()
		}
		// Memoization window boundary: snapshot after the warmup reset so
		// the first window of the measured region starts clean.
		if m.memoRec != nil && fed >= m.memoNextFed {
			m.memoBoundary(fed)
		}
	}
	segs := m.sel.Flush()
	for i := range segs {
		m.execSegment(&segs[i])
		m.sel.Recycle(&segs[i])
	}
	m.drain()
	if m.rec != nil {
		m.obsFinish()
	}
	if m.memoRec != nil {
		// The final window closes after drain, so the chain reproduces the
		// complete end-of-run counter block.
		m.memoFinalize(fed)
	}
	return m.collect(prof)
}
