package core

import (
	"fmt"

	"parrot/internal/config"
	"parrot/internal/workload"
)

// RunDebug is RunWarm plus a diagnostic summary of where cycles and stalls
// went (development and calibration aid).
func RunDebug(model config.Model, prof workload.Profile, n int) (*Result, string) {
	if n <= 0 {
		n = prof.Instructions
	}
	m := New(model)
	prog := workload.Generate(prof)
	r := m.RunSourceWarm(workload.NewStream(prog, n), prof, int(float64(n)*WarmupFraction))
	dbg := fmt.Sprintf(
		"cyc=%d fetchStall=%d resolveWait=%d robStall=%d iqStall=%d disp=%d "+
			"l1dMR=%.3f l1iMR=%.3f l2MR=%.3f bpMR=%.3f coldRes=%d coldAbs=%d hotSeg=%d tpMR=%.3f",
		r.Cycles, m.diagFetchStall, m.diagResolve,
		m.cold.Stats.StallROBFull, m.cold.Stats.StallIQFull, m.cold.Stats.UopsDispatched,
		m.hier.L1D.Stats.MissRate(), m.hier.L1I.Stats.MissRate(), m.hier.L2.Stats.MissRate(),
		m.bp.Stats.MispredictRate(),
		m.diagColdResident, m.diagColdAbsent, m.hotSegments, r.TPredStats.MispredictRate())
	return r, dbg
}
