package core

import (
	"sync"

	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/trace"
)

// Reset returns the machine to its just-constructed state while keeping
// every allocation: cache tag arrays, predictor tables, the trace cache,
// engine ring buffers, the dispatch queue and all slabs survive. A reset
// machine produces bit-identical results to a machine built fresh with
// New — the property the pooled-vs-fresh determinism tests enforce.
func (m *Machine) Reset() {
	m.hier.Reset()
	m.bp.Reset()
	m.btb.Reset()
	m.ras.Reset()
	m.cold.Reset()
	if m.model.Split {
		m.hot.Reset()
	}
	if m.tc != nil {
		// Harvest resident traces into the build slab before clearing.
		m.tc.Reset(func(tr *trace.Trace) { m.freeTraces = append(m.freeTraces, tr) })
	}
	if m.tp != nil {
		m.tp.Reset()
	}
	if m.hotF != nil {
		m.hotF.Reset()
	}
	if m.blazeF != nil {
		m.blazeF.Reset()
	}
	if m.optz != nil {
		m.optz.Reset()
	}
	m.sel.Reset()

	m.counts = energy.Counts{}
	m.countsHot = energy.Counts{}

	// Timing state.
	m.clock, m.clockStart = 0, 0
	m.fetchStallUntil = 0
	m.pendingBranch = 0
	m.pendingEngine = nil
	m.lastLine = 0
	m.decCycle, m.decUsed, m.decComplexUsed = 0, 0, false
	m.supCycle, m.supUsed = 0, 0
	m.optBusyUntil = 0

	m.dqHead, m.dqTail = 0, 0
	m.pendingTraceInsts = m.pendingTraceInsts[:0]
	m.ptiHead = 0
	m.lastSegHot, m.lastDispatchHot = false, false
	m.switchStallUntil = 0

	// Accounting.
	m.insts, m.hotInsts, m.coldInsts = 0, 0, 0
	m.traceAborts, m.abortedUops = 0, 0
	m.optCount, m.optExecs = 0, 0
	m.uopsBefore, m.uopsAfter = 0, 0
	m.critBefore, m.critAfter = 0, 0
	m.buildCount = 0
	m.hotSegments, m.coldSegments = 0, 0
	m.dynUopsOrig, m.dynUopsOpt = 0, 0
	m.dynCritOrig, m.dynCritOpt = 0, 0
	clear(m.optSeen)

	m.diagFetchStall, m.diagResolve = 0, 0
	m.diagColdResident, m.diagColdAbsent = 0, 0

	// Observability: recorders are per-run (the component Resets above have
	// already detached the engine/cache/selector/optimizer probes).
	m.rec = nil
	m.obsBase = obsBaseline{}
	m.obsNextIval = 0

	// Memoization: an in-progress recording references the state just torn
	// down and is discarded; the finished-chain table survives, so pooled
	// machines replay specs they have seen in earlier jobs.
	m.memoResetRecording()
}

// PoolStats counts pool traffic (exposed for the throughput benchmarks).
type PoolStats struct {
	Gets     uint64 // total Get calls
	Reuses   uint64 // Gets satisfied by a pooled machine
	Puts     uint64 // machines returned
	Discards uint64 // returns dropped because the per-model cap was reached
}

// Pool is an explicit machine pool: fully constructed machines keyed by
// their complete model configuration, reset on reuse. Pooling removes the
// dominant per-run allocation cost (cache tag arrays, predictor tables,
// engine ring buffers) from repeated simulations — the experiment matrix
// runs each of the 7 models across 44 applications, reusing at most
// parallelism machines per model instead of constructing 308.
//
// Machines are keyed by the full config.Model value, not just the model ID,
// so sensitivity sweeps that perturb one parameter under an unchanged ID
// can never receive a machine built for different hardware.
type Pool struct {
	mu   sync.Mutex
	free map[config.Model][]*Machine

	// MaxPerModel caps retained machines per configuration (0 = default 16).
	MaxPerModel int

	stats PoolStats
}

// DefaultPool serves the package-level Run helpers and the public facade;
// repeated parrot.Run calls transparently reuse machines through it.
var DefaultPool = NewPool()

// NewPool returns an empty machine pool.
func NewPool() *Pool {
	return &Pool{free: make(map[config.Model][]*Machine)}
}

// Get returns a machine for the model: a pooled one (reset) when available,
// otherwise a freshly constructed one.
func (p *Pool) Get(model config.Model) *Machine {
	p.mu.Lock()
	p.stats.Gets++
	if l := p.free[model]; len(l) > 0 {
		m := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[model] = l[:len(l)-1]
		p.stats.Reuses++
		p.mu.Unlock()
		m.Reset()
		return m
	}
	p.mu.Unlock()
	return New(model)
}

// Put returns a machine to the pool for later reuse. The machine must not
// be used by the caller afterwards.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	cap := p.MaxPerModel
	if cap <= 0 {
		cap = 16
	}
	// Pooled machines always hand out in the default memoization state: a
	// holder that pinned EnableMemo(false) for its own runs must not leak
	// that setting to the pool's next, unrelated consumer. Finished-chain
	// tables (if any) travel with the machine.
	m.memoOn = !memoEnvDisabled

	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	if len(p.free[m.model]) >= cap {
		p.stats.Discards++
		return
	}
	p.free[m.model] = append(p.free[m.model], m)
}

// Prewarm constructs machines for the model ahead of demand until the pool
// retains n of them (bounded by MaxPerModel), so a serving fleet's first
// requests pay a Reset instead of full construction — cache tag arrays,
// predictor tables and engine ring buffers are the dominant cold-start
// cost. Construction happens outside the pool lock; concurrent traffic is
// unaffected.
func (p *Pool) Prewarm(model config.Model, n int) {
	cap := p.MaxPerModel
	if cap <= 0 {
		cap = 16
	}
	if n > cap {
		n = cap
	}
	for {
		p.mu.Lock()
		have := len(p.free[model])
		p.mu.Unlock()
		if have >= n {
			return
		}
		p.Put(New(model))
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Size returns the number of machines currently retained.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, l := range p.free {
		n += len(l)
	}
	return n
}

// Drain empties the pool, releasing all retained machines to the GC.
func (p *Pool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = make(map[config.Model][]*Machine)
}
