package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parrot/internal/config"
	"parrot/internal/workload"
)

// poolTestInsts keeps the determinism gates fast while still exercising
// warmup, trace building, optimization and hot replay on every model.
const poolTestInsts = 20_000

// freshRef memoizes RunWarmFresh reference results per (model, app) so the
// property tests below do not pay for a fresh run per probe.
type freshRef struct {
	cache map[refKey]*Result
}

type refKey struct {
	model config.ModelID
	app   string
}

func (f *freshRef) get(model config.Model, prof workload.Profile) *Result {
	if f.cache == nil {
		f.cache = make(map[refKey]*Result)
	}
	k := refKey{model.ID, prof.Name}
	if r, ok := f.cache[k]; ok {
		return r
	}
	r := RunWarmFresh(model, prof, poolTestInsts)
	f.cache[k] = r
	return r
}

// TestPooledMatchesFreshAllModels is the determinism gate for the machine
// pool: for every model, a run on a pooled (previously dirtied, then Reset)
// machine must be bit-identical to a run on a freshly constructed machine.
// Any state that survives Reset — a stale predictor counter, a resident
// trace, a non-zeroed ring slot — shows up here as a field diff.
func TestPooledMatchesFreshAllModels(t *testing.T) {
	apps := workload.Apps()
	dirty := apps[0]  // run used only to contaminate the pooled machine
	probe := apps[19] // measured run compared against the fresh reference

	for _, model := range config.All() {
		model := model
		t.Run(string(model.ID), func(t *testing.T) {
			want := RunWarmFresh(model, probe, poolTestInsts)

			pool := NewPool()
			// First run constructs the machine and leaves it thoroughly
			// dirty: warm caches, trained predictors, resident traces.
			pool.RunWarm(model, dirty, poolTestInsts)
			if pool.Size() != 1 {
				t.Fatalf("pool retained %d machines, want 1", pool.Size())
			}
			got := pool.RunWarm(model, probe, poolTestInsts)

			if st := pool.Stats(); st.Reuses != 1 {
				t.Fatalf("second run did not reuse the pooled machine: %+v", st)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pooled run diverged from fresh run:\n pooled: %+v\n fresh:  %+v", got, want)
			}
		})
	}
}

// TestPoolInterleavingProperty is the testing/quick property: ANY random
// interleaving of (model, application) runs on a single shared pool yields
// results identical to fresh, never-pooled machines. This is stronger than
// the pairwise gate above — cross-model reuse is impossible (the pool keys
// by full config), but the property would catch key collisions, Reset
// order-dependence, or leakage through package-level state.
func TestPoolInterleavingProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	models := config.All()
	apps := workload.Apps()[:6]
	var refs freshRef
	pool := NewPool()
	pool.MaxPerModel = 2 // force frequent reuse

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			model := models[rng.Intn(len(models))]
			prof := apps[rng.Intn(len(apps))]
			got := pool.RunWarm(model, prof, poolTestInsts)
			want := refs.get(model, prof)
			if !reflect.DeepEqual(got, want) {
				t.Logf("interleaved run diverged (seed %d, step %d, %s/%s)",
					seed, i, model.ID, prof.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestPoolKeyedByFullModel guards the sensitivity-sweep hazard: two models
// sharing an ID but differing in one hardware parameter must never exchange
// machines through the pool.
func TestPoolKeyedByFullModel(t *testing.T) {
	base := config.Get(config.TOS)
	tweaked := base
	tweaked.TCFrames = base.TCFrames * 2

	pool := NewPool()
	pool.Put(pool.Get(base)) // pool now holds one machine for base
	m := pool.Get(tweaked)
	if st := pool.Stats(); st.Reuses != 0 {
		t.Fatalf("pool handed a %v-configured machine to a different config: %+v", base.ID, st)
	}
	if m.model != tweaked {
		t.Fatal("machine built for wrong configuration")
	}
}

// TestDefaultPoolRunWarm exercises the package-level entry point the
// experiment matrix uses, twice, so a pooled machine serves the second call.
func TestDefaultPoolRunWarm(t *testing.T) {
	model := config.Get(config.TON)
	prof := workload.Apps()[3]
	a := RunWarm(model, prof, poolTestInsts)
	b := RunWarm(model, prof, poolTestInsts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated RunWarm through the default pool diverged")
	}
}
