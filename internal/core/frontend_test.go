package core

import (
	"testing"

	"parrot/internal/config"
	"parrot/internal/isa"
)

func mkSimpleInst(pc uint64, nUops int) *isa.Inst {
	in := &isa.Inst{PC: pc, Size: 4, Kind: isa.KindSimple}
	for i := 0; i < nUops; i++ {
		u := isa.NewUop(isa.OpAdd)
		u.Dst[0] = isa.GPR(i % 8)
		u.Src[0] = isa.GPR(1)
		u.Src[1] = isa.GPR(2)
		in.Uops = append(in.Uops, u)
	}
	if nUops > 2 {
		in.Kind = isa.KindComplex
	}
	return in
}

func TestDecodeGroupWidthLimit(t *testing.T) {
	m := New(config.Get(config.N)) // decode width 4
	m.clock = 100
	for i := 0; i < 4; i++ {
		in := mkSimpleInst(uint64(0x1000+i*4), 1)
		if !m.decodeSlotFree(in) {
			t.Fatalf("slot %d should be free", i)
		}
		m.useDecodeSlot(in)
	}
	if m.decodeSlotFree(mkSimpleInst(0x2000, 1)) {
		t.Error("fifth instruction must wait for the next cycle")
	}
	m.clock++
	if !m.decodeSlotFree(mkSimpleInst(0x2000, 1)) {
		t.Error("new cycle must reset the group")
	}
}

func TestComplexDecodesAloneAtGroupHead(t *testing.T) {
	m := New(config.Get(config.N))
	m.clock = 100
	simple := mkSimpleInst(0x1000, 1)
	complexIn := mkSimpleInst(0x2000, 3)

	// Complex after a simple: must wait.
	m.useDecodeSlot(simple)
	if m.decodeSlotFree(complexIn) {
		t.Error("complex instruction cannot join a started group")
	}
	// Fresh group: complex fits, and a second complex cannot follow.
	m.clock++
	if !m.decodeSlotFree(complexIn) {
		t.Error("complex must fit at group head")
	}
	m.useDecodeSlot(complexIn)
	if m.decodeSlotFree(mkSimpleInst(0x3000, 3)) {
		t.Error("two complex instructions in one group")
	}
}

func TestFrontBlockedOnStallTimer(t *testing.T) {
	m := New(config.Get(config.N))
	m.clock = 10
	m.fetchStallUntil = 15
	if !m.frontBlocked() {
		t.Error("fetch must be blocked by the stall timer")
	}
	m.clock = 15
	if m.frontBlocked() {
		t.Error("fetch must resume at the deadline")
	}
}

func TestFrontBlockedOnPendingBranch(t *testing.T) {
	m := New(config.Get(config.N))
	// Dispatch a divide-fed branch and mark it as the pending resolve point.
	div := isa.NewUop(isa.OpDiv)
	div.Dst[0] = isa.GPR(1)
	div.Src[0] = isa.GPR(2)
	div.Src[1] = isa.GPR(3)
	cmp := isa.NewUop(isa.OpCmp)
	cmp.Dst[0] = isa.RegFlags
	cmp.Src[0] = isa.GPR(1)
	cmp.Src[1] = isa.GPR(2)
	br := isa.NewUop(isa.OpBr)
	br.Src[0] = isa.RegFlags
	br.Cond = isa.CondEQ
	m.cold.Dispatch(&div, 0, true, false)
	m.cold.Dispatch(&cmp, 0, true, false)
	h := m.cold.Dispatch(&br, 0, true, false)
	m.pendingBranch = h
	m.pendingEngine = m.cold

	blockedCycles := 0
	for m.frontBlocked() {
		m.tick()
		blockedCycles++
		if blockedCycles > 200 {
			t.Fatal("branch never resolved")
		}
	}
	// The divide (12 cycles) gates the compare and branch; after resolve,
	// the refill stall must have been applied.
	if blockedCycles < 12 {
		t.Errorf("resolve wait %d cycles, expected at least the divide latency", blockedCycles)
	}
	if m.pendingBranch != 0 {
		t.Error("pending branch not cleared")
	}
}

func TestDQBackpressureBlocksFetch(t *testing.T) {
	m := New(config.Get(config.N))
	for i := 0; i < 4*m.model.Core.Width+1; i++ {
		u := isa.NewUop(isa.OpAdd)
		u.Dst[0] = isa.GPR(1)
		m.enqueue(dispatchItem{uop: u})
	}
	if !m.frontBlocked() {
		t.Error("oversized dispatch queue must block fetch")
	}
	// Ticking drains the queue and unblocks.
	for i := 0; i < 10 && m.frontBlocked(); i++ {
		m.tick()
	}
	if m.frontBlocked() {
		t.Error("queue never drained")
	}
}

func TestHotSupplyBandwidth(t *testing.T) {
	m := New(config.Get(config.TON)) // TraceFetchUops 8
	m.clock = 50
	for i := 0; i < m.model.TraceFetchUops; i++ {
		if !m.hotSupplyFree() {
			t.Fatalf("supply slot %d should be free", i)
		}
		m.useHotSupply()
	}
	if m.hotSupplyFree() {
		t.Error("supply beyond trace-fetch width in one cycle")
	}
	m.clock++
	if !m.hotSupplyFree() {
		t.Error("new cycle must reset trace-fetch bandwidth")
	}
}
