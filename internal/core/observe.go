package core

import (
	"parrot/internal/energy"
	"parrot/internal/obs"
	"parrot/internal/trace"
)

// This file is the machine's side of the observability layer: attaching an
// obs.Recorder to every instrumented component, and driving the interval
// time series from the machine's own counters. All hooks sit behind a single
// `m.rec != nil` branch, so a machine without a recorder is bit-identical to
// (and as fast as) an uninstrumented one.

// obsBaseline snapshots the machine counters at an interval boundary, so the
// next CloseInterval can report exact deltas. Fields mirror the counters the
// time series exposes; energy counts are captured by value (small arrays).
type obsBaseline struct {
	clock     uint64
	insts     uint64
	hotInsts  uint64
	coldInsts uint64
	tcLookups uint64
	tcHits    uint64
	counts    energy.Counts
	countsHot energy.Counts
}

// Attach wires a recorder into every instrumented component and baselines
// the interval time series at the machine's current state. Recorders observe
// exactly one run: attach a fresh recorder per run, before feeding
// instructions. Machine Reset detaches it (observers are per-run).
func (m *Machine) Attach(rec *obs.Recorder) {
	m.rec = rec
	rec.Bind(&m.clock)

	m.cold.SetProbe(rec.Pipe(0))
	rec.Series.SetupLane(0, m.cold.Config().ROBSize, m.cold.Config().IQSize)
	if m.split {
		m.hot.SetProbe(rec.Pipe(1))
		rec.Series.SetupLane(1, m.hot.Config().ROBSize, m.hot.Config().IQSize)
	}
	if m.tc != nil {
		m.tc.SetProbe(rec)
	}
	m.sel.SetProbe(rec)
	if m.optz != nil {
		m.optz.SetProbe(rec)
	}
	m.obsRebase()
}

// Recorder returns the attached recorder (nil when observability is off).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// obsCounts synthesizes the complete current energy-event vectors — the
// machine's own counters plus the engine- and memory-derived events that
// collect folds in only at end of run. Snapshot deltas of these vectors
// price each interval exactly like collect prices the whole run.
func (m *Machine) obsCounts() (cold, hot energy.Counts) {
	cold, hot = m.counts, m.countsHot
	engineEvents(&m.cold.Stats, &cold)
	if m.split {
		engineEvents(&m.hot.Stats, &hot)
	}
	cold.Add(energy.EvFetchLine, m.hier.L1I.Stats.Accesses)
	cold.Add(energy.EvL1DAccess, m.hier.L1D.Stats.Accesses)
	cold.Add(energy.EvL1DMiss, m.hier.L1D.Stats.Misses)
	cold.Add(energy.EvL2Access, m.hier.L2.Stats.Accesses)
	cold.Add(energy.EvL2Access, m.hier.Prefetches)
	cold.Add(energy.EvMemAccess, m.hier.L2.Stats.Misses)
	return cold, hot
}

// obsSnapshot captures the current counter state.
func (m *Machine) obsSnapshot() obsBaseline {
	b := obsBaseline{
		clock:     m.clock,
		insts:     m.insts,
		hotInsts:  m.hotInsts,
		coldInsts: m.coldInsts,
	}
	b.counts, b.countsHot = m.obsCounts()
	if m.tc != nil {
		b.tcLookups = m.tc.Stats.Lookups
		b.tcHits = m.tc.Stats.Hits
	}
	return b
}

// obsRebase re-baselines the interval sampler at the current machine state
// (attach time, and again after the statistics reset at the warmup
// boundary).
func (m *Machine) obsRebase() {
	m.obsBase = m.obsSnapshot()
	m.obsNextIval = m.insts + uint64(m.rec.Opts.IntervalInsts)
}

// obsTick samples occupancy for one executed cycle and closes the interval
// when the committed-instruction boundary has been crossed. Called from tick
// after the engine cycles, so boundary checks see this cycle's commits.
func (m *Machine) obsTick() {
	s := m.rec.Series
	s.Sample(1, false, m.cold.InFlight(), m.cold.IQLen())
	if m.split {
		s.SampleHot(1, m.hot.InFlight(), m.hot.IQLen())
	}
	if m.insts >= m.obsNextIval {
		m.obsCloseInterval(false)
	}
}

// obsSkip attributes a fast-forwarded idle window of k cycles to the current
// interval. The occupancy of a skipped window is constant by construction —
// that is what made it skippable — so one weighted sample covers all k
// cycles exactly, and no commits happen inside the window, so no interval
// boundary can be crossed.
func (m *Machine) obsSkip(k uint64) {
	s := m.rec.Series
	s.Sample(k, true, m.cold.InFlight(), m.cold.IQLen())
	if m.split {
		s.SampleHot(k, m.hot.InFlight(), m.hot.IQLen())
	}
}

// obsCloseInterval finalizes the current time-series interval with exact
// counter deltas since the last boundary, then re-baselines.
func (m *Machine) obsCloseInterval(warmup bool) {
	base := &m.obsBase
	iv := obs.Interval{
		StartCycle: base.clock,
		EndCycle:   m.clock,
		Insts:      m.insts - base.insts,
		HotInsts:   m.hotInsts - base.hotInsts,
		ColdInsts:  m.coldInsts - base.coldInsts,
		Warmup:     warmup,
	}
	if m.tc != nil {
		iv.TCLookups = m.tc.Stats.Lookups - base.tcLookups
		iv.TCHits = m.tc.Stats.Hits - base.tcHits
	}
	cold, hot := m.obsCounts()
	var dc, dh energy.Counts
	for i := range dc {
		dc[i] = cold[i] - base.counts[i]
		dh[i] = hot[i] - base.countsHot[i]
	}
	iv.DynEnergy = m.emodel.Energy(&dc) + m.ehot.Energy(&dh)
	bc := m.emodel.Breakdown(&dc)
	bh := m.ehot.Breakdown(&dh)
	for i := range iv.Energy {
		iv.Energy[i] = bc[i] + bh[i]
	}
	m.rec.Series.CloseInterval(iv)
	m.obsBase = m.obsSnapshot()
	m.obsNextIval = m.insts + uint64(m.rec.Opts.IntervalInsts)
}

// obsMeasureStart closes the trailing warmup interval and marks everything
// recorded so far as warmup. Called at the top of ResetStats, while the
// pre-reset counters are still live; ResetStats re-baselines afterwards.
func (m *Machine) obsMeasureStart() {
	s := m.rec.Series
	for i := range s.Intervals {
		s.Intervals[i].Warmup = true
	}
	if m.clock > m.obsBase.clock {
		m.obsCloseInterval(true)
	}
	m.rec.MeasureStart()
}

// obsFinish closes the trailing partial interval and finalizes the recorder
// (residency accounting). Called once, after drain.
func (m *Machine) obsFinish() {
	if m.clock > m.obsBase.clock {
		m.obsCloseInterval(false)
	}
	m.rec.Finalize()
}

// obsSegment records the observable outcome of one segment's fetch
// selection: the trace-predictor decision, the segment itself, and any
// cold<->hot pipeline switch. pred/predOK are the raw predictor outputs; hot
// is the final selector decision; called before lastSegHot is updated.
func (m *Machine) obsSegment(seg *trace.Segment, key, pred uint64, predOK, hot bool) {
	if !predOK {
		pred = 0
	}
	m.rec.TPred(pred, key, predOK && pred == key)
	m.rec.Segment(seg.TID, seg.NumInsts(), seg.Uops, hot)
	if hot != m.lastSegHot {
		m.rec.PipeSwitch(seg.TID, hot)
	}
}
