package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"parrot/internal/config"
	"parrot/internal/obs"
	"parrot/internal/workload"
)

// scopeRun executes one warmed run on a fresh machine with a recorder
// attached and returns both.
func scopeRun(t *testing.T, id config.ModelID, app string, n int) (*Result, *obs.Recorder) {
	t.Helper()
	model := config.Get(id)
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	m := New(model)
	rec := obs.NewRecorder(obs.Options{IntervalInsts: 500})
	m.Attach(rec)
	return RunWarmOn(m, prof, n), rec
}

// TestProbesPreserveResults is the zero-cost contract's correctness half:
// attaching the full probe suite must not change a single result field —
// probes observe, they never decide.
func TestProbesPreserveResults(t *testing.T) {
	for _, id := range []config.ModelID{config.N, config.TON, config.TOS} {
		model := config.Get(id)
		prof, _ := workload.ByName("swim")

		base := RunWarmFresh(model, prof, 40_000)
		instrumented, rec := scopeRun(t, id, "swim", 40_000)

		if *base != *instrumented {
			t.Errorf("%s: instrumented result differs from baseline\nbase: %+v\nwith: %+v",
				id, base, instrumented)
		}
		if rec.Bus.Len() == 0 {
			t.Errorf("%s: recorder attached but no events recorded", id)
		}
	}
}

// TestSkipAttribution pins the fast-forward accounting: intervals tile the
// run exactly (no cycles vanish at Engine.Skip windows, no artificial IPC
// spikes at boundaries), and skipped cycles never exceed the interval span.
func TestSkipAttribution(t *testing.T) {
	res, rec := scopeRun(t, config.TON, "swim", 40_000)

	ivs := rec.Series.Intervals
	if len(ivs) < 3 {
		t.Fatalf("only %d intervals", len(ivs))
	}
	for i := range ivs {
		iv := &ivs[i]
		if iv.EndCycle < iv.StartCycle {
			t.Fatalf("interval %d: end %d < start %d", i, iv.EndCycle, iv.StartCycle)
		}
		if iv.Cycles != iv.EndCycle-iv.StartCycle {
			t.Errorf("interval %d: cycles %d != span %d", i, iv.Cycles, iv.EndCycle-iv.StartCycle)
		}
		if iv.SkippedCycles > iv.Cycles {
			t.Errorf("interval %d: skipped %d > cycles %d", i, iv.SkippedCycles, iv.Cycles)
		}
		if i > 0 && iv.StartCycle != ivs[i-1].EndCycle {
			t.Errorf("interval %d: gap/overlap at boundary: start %d, prev end %d",
				i, iv.StartCycle, ivs[i-1].EndCycle)
		}
	}

	// The intervals tile the whole run: first starts at attach (cycle 0),
	// last ends at the drained machine's final cycle.
	if ivs[0].StartCycle != 0 {
		t.Errorf("first interval starts at %d", ivs[0].StartCycle)
	}
	total, skipped := rec.Series.TotalCycles()
	if want := ivs[len(ivs)-1].EndCycle; total != want {
		t.Errorf("interval cycles sum %d != clock span %d", total, want)
	}
	if skipped == 0 {
		t.Log("note: no cycles were fast-forwarded in this run")
	}

	// Measured (non-warmup) intervals must account for the measured window.
	var measured uint64
	for i := range ivs {
		if !ivs[i].Warmup {
			measured += ivs[i].Insts
		}
	}
	if measured != res.Insts {
		t.Errorf("measured interval insts %d != result insts %d", measured, res.Insts)
	}

	// Per-lane occupancy histograms saw every cycle, including skips.
	rob, _ := rec.Series.Lane(0)
	if rob.Total() != total {
		t.Errorf("occupancy samples %d != cycles %d", rob.Total(), total)
	}
}

// TestScopeArtifactsParse runs a real TON simulation and validates every
// artifact the observability layer exports.
func TestScopeArtifactsParse(t *testing.T) {
	_, rec := scopeRun(t, config.TON, "swim", 40_000)

	// Interval time series (JSON).
	var jbuf bytes.Buffer
	if err := rec.WriteSeriesJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var sdoc obs.SeriesDoc
	if err := json.Unmarshal(jbuf.Bytes(), &sdoc); err != nil {
		t.Fatalf("series JSON does not parse: %v", err)
	}
	if len(sdoc.Intervals) == 0 || sdoc.IntervalInsts != 500 {
		t.Errorf("series doc: %d intervals, K=%d", len(sdoc.Intervals), sdoc.IntervalInsts)
	}

	// Interval time series (CSV): header plus one line per interval.
	var cbuf bytes.Buffer
	if err := rec.WriteSeriesCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(cbuf.String(), "\n"), "\n")
	if len(lines) != 1+len(sdoc.Intervals) {
		t.Errorf("csv lines = %d, want %d", len(lines), 1+len(sdoc.Intervals))
	}

	// Kanata pipeline log.
	var kbuf bytes.Buffer
	if err := rec.WriteKanata(&kbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(kbuf.String(), "Kanata\t0004\n") {
		t.Error("kanata header missing")
	}
	if !strings.Contains(kbuf.String(), "\nR\t") {
		t.Error("kanata log has no retirements")
	}

	// Chrome trace events.
	var tbuf bytes.Buffer
	if err := rec.WriteChromeTrace(&tbuf); err != nil {
		t.Fatal(err)
	}
	var cdoc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &cdoc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(cdoc.TraceEvents) == 0 {
		t.Error("chrome trace is empty")
	}

	// Trace biographies.
	var bbuf bytes.Buffer
	if err := rec.WriteBiographies(&bbuf, 0); err != nil {
		t.Fatal(err)
	}
	var bdoc obs.BioDoc
	if err := json.Unmarshal(bbuf.Bytes(), &bdoc); err != nil {
		t.Fatalf("biographies do not parse: %v", err)
	}
	if bdoc.Count == 0 || len(bdoc.Traces) != bdoc.Count {
		t.Errorf("bio doc: count=%d traces=%d", bdoc.Count, len(bdoc.Traces))
	}
	// A TON run optimizes traces, so pass names must be recorded and at
	// least one biography must show optimizer impact.
	if len(bdoc.PassNames) == 0 {
		t.Error("no optimizer pass names recorded")
	}
	optimized := false
	for _, b := range bdoc.Traces {
		if b.Optimized && b.UopsBefore >= b.UopsAfter && b.Executions > 0 {
			optimized = true
		}
	}
	if !optimized {
		t.Error("no optimized trace biography found on TON")
	}
}

// TestRecorderDetachedOnReset pins the machine-pooling Reset protocol for
// the observability layer: a pooled machine never leaks its previous run's
// recorder.
func TestRecorderDetachedOnReset(t *testing.T) {
	model := config.Get(config.TON)
	prof, _ := workload.ByName("swim")
	m := New(model)
	rec := obs.NewRecorder(obs.Options{})
	m.Attach(rec)
	RunWarmOn(m, prof, 20_000)
	n := rec.Bus.Len()
	if n == 0 {
		t.Fatal("recorder saw nothing")
	}
	m.Reset()
	if m.Recorder() != nil {
		t.Fatal("Reset must detach the recorder")
	}
	RunWarmOn(m, prof, 20_000)
	if rec.Bus.Len() != n {
		t.Errorf("detached recorder still received events: %d -> %d", n, rec.Bus.Len())
	}
}

// TestPipeSwitchEventsBalance sanity-checks the fetch-selector probe: pipe
// switches alternate directions, so hot->cold and cold->hot counts differ by
// at most one.
func TestPipeSwitchEventsBalance(t *testing.T) {
	_, rec := scopeRun(t, config.TON, "swim", 40_000)
	var toHot, toCold int
	rec.Bus.Each(func(e *obs.Event) {
		if e.Kind == obs.KPipeSwitch {
			if e.Lane == 1 {
				toHot++
			} else {
				toCold++
			}
		}
	})
	if toHot == 0 {
		t.Fatal("no pipeline switches recorded on TON")
	}
	if d := toHot - toCold; d < -1 || d > 1 {
		t.Errorf("switch balance off: %d to-hot vs %d to-cold", toHot, toCold)
	}
}
