package core

import (
	"parrot/internal/energy"
	"parrot/internal/isa"
	"parrot/internal/trace"
)

// hotSupplyFree reports whether the trace-cache read port can supply one
// more uop this cycle.
func (m *Machine) hotSupplyFree() bool {
	if m.supCycle != m.clock {
		return true
	}
	return m.supUsed < m.traceFetchUops
}

// useHotSupply consumes trace-fetch bandwidth for one uop.
func (m *Machine) useHotSupply() {
	if m.supCycle != m.clock {
		m.supCycle = m.clock
		m.supUsed = 0
	}
	m.supUsed++
	m.countsHot.Add(energy.EvTCReadUop, 1)
}

// execHot replays a resident trace on the hot pipeline. The trace supplies
// decoded (possibly optimized) uops at trace-fetch bandwidth, bypassing the
// IA32 decoders entirely; the segment instance supplies the dynamic memory
// addresses — the k-th memory uop of the trace consumes the k-th address.
func (m *Machine) execHot(seg *trace.Segment, tr *trace.Trace) {
	m.hotInsts += uint64(seg.NumInsts())

	// Committed branches keep training the direction predictor even when
	// executed hot, so occasional cold executions of the same code are not
	// handicapped by stale tables. Lookups and mispredictions are not
	// counted: the hot pipeline is steered by the trace predictor.
	for i := range seg.Insts {
		d := &seg.Insts[i]
		if d.Inst.Kind == isa.KindBranch {
			m.bp.Update(d.Inst.PC, d.Taken)
			m.counts.Add(energy.EvBPUpdate, 1)
		}
	}

	// Collect the instance's memory addresses in uop order, into a scratch
	// buffer reused across segments (the steady-state hot loop allocates
	// nothing).
	addrs := m.addrScratch[:0]
	for i := range seg.Insts {
		d := &seg.Insts[i]
		for _, u := range d.Inst.Uops {
			if u.Op.IsMem() {
				addrs = append(addrs, d.MemAddr)
			}
		}
	}
	m.addrScratch = addrs

	// Trace-cache read pipeline startup; back-to-back hot segments stream
	// without a bubble.
	if !m.lastSegHot {
		start := m.clock + 2
		for m.clock < start {
			m.tick()
		}
	}

	k := 0
	for i := range tr.Uops {
		for !m.hotSupplyFree() || m.dqLen() > m.hotDQLimit {
			m.tick()
		}
		m.useHotSupply()
		it := m.dqAlloc()
		it.uop = tr.Uops[i]
		it.hot = true
		if tr.Uops[i].Op.IsMem() {
			it.memAddr = addrs[k]
			k++
		}
		if i == len(tr.Uops)-1 {
			it.traceEnd = true
		}
	}
	m.pendingTraceInsts = append(m.pendingTraceInsts, seg.NumInsts())

	if d := &seg.Insts[len(seg.Insts)-1]; d.EpisodeEnd {
		// The successor is unrelated code; the hot pipeline redirects just
		// like the cold one, and the next cold fetch re-primes its line.
		m.fetchStallUntil = maxU64(m.fetchStallUntil, m.clock+m.frontDepth/2)
		m.lastLine = ^uint64(0)
	}
}
