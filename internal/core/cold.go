package core

import (
	"parrot/internal/energy"
	"parrot/internal/isa"
	"parrot/internal/trace"
	"parrot/internal/workload"
)

// execCold runs a segment through the cold pipeline: instruction-cache
// fetch, width-limited decode with the complex-decoder slot rule, branch
// prediction, and dispatch into the execution engine.
func (m *Machine) execCold(seg *trace.Segment) {
	m.coldInsts += uint64(seg.NumInsts())
	for i := range seg.Insts {
		m.coldFetchInst(&seg.Insts[i])
	}
}

// decodeSlotFree reports whether the current cycle's decode group can
// accept the instruction: at most DecodeWidth instructions per cycle, and
// complex (3+ uop) instructions only in the single complex-capable slot, in
// the style of IA32 4-1-1 decoders.
func (m *Machine) decodeSlotFree(in *isa.Inst) bool {
	if m.decCycle != m.clock {
		return true // fresh cycle, group resets
	}
	if m.decUsed >= m.model.DecodeWidth {
		return false
	}
	if in.IsComplex() && (m.decComplexUsed || m.decUsed > 0) {
		// Complex instructions decode alone at the head of a group.
		return false
	}
	return true
}

// useDecodeSlot consumes a decode slot and charges decode energy.
func (m *Machine) useDecodeSlot(in *isa.Inst) {
	if m.decCycle != m.clock {
		m.decCycle = m.clock
		m.decUsed = 0
		m.decComplexUsed = false
	}
	m.decUsed++
	if in.IsComplex() {
		m.decComplexUsed = true
		m.counts.Add(energy.EvDecodeComplex, 1)
	} else {
		m.counts.Add(energy.EvDecodeSimple, 1)
	}
}

// coldFetchInst advances the machine until one instruction is fetched,
// decoded and enqueued, modelling all front-end hazards on the way.
func (m *Machine) coldFetchInst(d *workload.DynInst) {
	in := d.Inst

	m.frontStall()

	// Instruction cache: access on every line transition.
	line := in.PC & cacheLineMask
	endLine := (in.PC + uint64(in.Size) - 1) & cacheLineMask
	if line != m.lastLine {
		extra := m.hier.FetchInst(in.PC)
		m.lastLine = line
		if endLine != line {
			m.hier.FetchInst(endLine) // split-line fetch
			m.lastLine = endLine
		}
		if extra > 0 {
			m.fetchStallUntil = m.clock + uint64(extra)
			m.frontStall()
		}
	}

	// Decode slot.
	for !m.decodeSlotFree(in) {
		m.tick()
	}
	m.useDecodeSlot(in)

	// Branch prediction and redirect modelling.
	mispredicted := false
	switch in.Kind {
	case isa.KindBranch:
		correct := m.bp.PredictAndTrain(in.PC, d.Taken)
		m.counts.Add(energy.EvBPLookup, 1)
		m.counts.Add(energy.EvBPUpdate, 1)
		if d.Taken && !d.EpisodeEnd {
			m.counts.Add(energy.EvBTB, 1)
			if tgt, ok := m.btb.Lookup(in.PC); !ok || tgt != d.NextPC {
				m.btb.Insert(in.PC, d.NextPC)
				if correct {
					// Direction right, target unknown: short fetch bubble.
					m.fetchStallUntil = maxU64(m.fetchStallUntil, m.clock+2)
				}
			}
		}
		mispredicted = !correct
	case isa.KindJump:
		// Direct target; no penalty.
	case isa.KindJumpInd:
		m.counts.Add(energy.EvBTB, 1)
		tgt, ok := m.btb.Lookup(in.PC)
		if !d.EpisodeEnd {
			m.btb.Insert(in.PC, d.NextPC)
		}
		mispredicted = !ok || tgt != d.NextPC
	case isa.KindCall:
		m.ras.Push(in.FallThrough())
		m.counts.Add(energy.EvRAS, 1)
	case isa.KindRet:
		m.counts.Add(energy.EvRAS, 1)
		tgt, ok := m.ras.Pop()
		mispredicted = !ok || tgt != d.NextPC
	}
	if d.EpisodeEnd {
		// The dynamic successor is unrelated code: an unpredictable
		// discontinuity redirects the front-end unconditionally.
		mispredicted = false
		m.counts.Add(energy.EvFlushRecovery, 1)
		m.fetchStallUntil = maxU64(m.fetchStallUntil, m.clock+m.frontDepth)
		m.lastLine = ^uint64(0)
	}
	if mispredicted {
		m.counts.Add(energy.EvFlushRecovery, 1)
		m.lastLine = ^uint64(0)
	}
	if d.Taken || d.EpisodeEnd {
		// Conventional fetch cannot cross a taken control transfer in the
		// same cycle: close the decode group. Trace-cache fetch has no such
		// break — the core bandwidth motivation for trace caches.
		m.decCycle = m.clock
		m.decUsed = m.model.DecodeWidth
	}

	// Enqueue the decoded uops, filling the ring slots in place.
	for k := range in.Uops {
		it := m.dqAlloc()
		it.uop = in.Uops[k]
		it.lastUop = k == len(in.Uops)-1
		if in.Uops[k].Op.IsMem() {
			it.memAddr = d.MemAddr
		}
		if mispredicted && k == len(in.Uops)-1 {
			// Fetch stalls until the mispredicted CTI resolves.
			it.resolve = true
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
