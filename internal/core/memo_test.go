package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parrot/internal/config"
	"parrot/internal/obs"
	"parrot/internal/workload"
)

// skipIfMemoDisabled guards tests that require live memoization: CI runs the
// whole suite once with PARROT_NO_MEMO=1, where the fast path must be inert
// and these assertions are meaningless by design.
func skipIfMemoDisabled(t *testing.T) {
	t.Helper()
	if memoEnvDisabled {
		t.Skip("PARROT_NO_MEMO set: memoization force-disabled process-wide")
	}
}

// countUint64Leaves recursively counts uint64 leaves of a type: the number
// of words walk must visit for the counter block to be complete.
func countUint64Leaves(t reflect.Type) int {
	switch t.Kind() {
	case reflect.Uint64:
		return 1
	case reflect.Array:
		return t.Len() * countUint64Leaves(t.Elem())
	case reflect.Struct:
		n := 0
		for i := 0; i < t.NumField(); i++ {
			n += countUint64Leaves(t.Field(i).Type)
		}
		return n
	default:
		return 0
	}
}

// TestRunCountersWalkCoversAllFields pins walk — the single enumeration
// behind flatten/add/sub and the fingerprint hash — against the runCounters
// struct by reflection: adding a result-relevant counter without teaching
// walk about it would silently exclude it from window deltas, and replayed
// results would diverge from exact ones in that one field.
func TestRunCountersWalkCoversAllFields(t *testing.T) {
	want := countUint64Leaves(reflect.TypeOf(runCounters{}))
	var rc runCounters
	got := 0
	rc.walk(func(*uint64) { got++ })
	if got != want {
		t.Fatalf("walk visits %d words, runCounters has %d uint64 leaves", got, want)
	}

	// Every visited word is distinct storage: writing a unique value through
	// each pointer and reading it back via flatten must round-trip.
	i := uint64(0)
	rc.walk(func(p *uint64) { i++; *p = i*2654435761 + 17 })
	var buf []uint64
	rc.flatten(&buf)
	if len(buf) != want {
		t.Fatalf("flatten produced %d words, want %d", len(buf), want)
	}
	seen := make(map[uint64]bool, len(buf))
	for _, w := range buf {
		if seen[w] {
			t.Fatal("walk visited the same word twice")
		}
		seen[w] = true
	}

	// add and sub are exact inverses: rc - rc + rc == rc.
	orig := make([]uint64, len(buf))
	copy(orig, buf)
	rc.sub(buf)
	rc.walk(func(p *uint64) {
		if *p != 0 {
			t.Fatal("sub of self did not zero the block")
		}
	})
	rc.add(orig)
	rc.flatten(&buf)
	for j := range buf {
		if buf[j] != orig[j] {
			t.Fatalf("add(sub()) round-trip broke word %d", j)
		}
	}
}

// TestMemoReplayMatchesExact is the core soundness gate: a replayed Result
// is structurally identical to the exact engine's, field for field.
func TestMemoReplayMatchesExact(t *testing.T) {
	skipIfMemoDisabled(t)
	model := config.Get(config.TON)
	prof, _ := workload.ByName("swim")
	const n = 30_000

	exact := New(model)
	exact.EnableMemo(false)
	want := RunWarmOn(exact, prof, n)

	m := New(model)
	if !m.MemoEnabled() {
		t.Fatal("machines must memoize by default")
	}
	r1 := RunWarmOn(m, prof, n) // records
	if st := m.MemoStats(); st.RunsRecorded != 1 || st.Chains != 1 || st.Windows == 0 {
		t.Fatalf("recording run left unexpected stats %+v", st)
	}
	if !reflect.DeepEqual(r1, want) {
		t.Fatal("recording run diverged from the exact engine")
	}

	m.Reset()
	r2 := RunWarmOn(m, prof, n) // replays
	st := m.MemoStats()
	if st.RunsReplayed != 1 {
		t.Fatalf("second run did not replay: %+v", st)
	}
	if st.InstsReplayed != want.Insts {
		t.Errorf("replay covered %d insts, run measured %d", st.InstsReplayed, want.Insts)
	}
	if !reflect.DeepEqual(r2, want) {
		t.Fatalf("replayed result diverged from exact:\n replay: %+v\n exact:  %+v", r2, want)
	}
}

// TestMemoFingerprintDivergenceMidReplay corrupts one link in a recorded
// chain: replay must detect the mismatched fingerprint mid-walk, fall back
// to the exact engine (bit-identical result), and re-record the chain so
// the next run replays again.
func TestMemoFingerprintDivergenceMidReplay(t *testing.T) {
	skipIfMemoDisabled(t)
	model := config.Get(config.TON)
	prof, _ := workload.ByName("swim")
	const n = 30_000
	want := RunWarmFresh(model, prof, n)

	m := New(model)
	RunWarmOn(m, prof, n)
	warm := int(float64(n) * WarmupFraction)
	ch := m.memo.chains[memoKey{prof: prof, n: n, warm: warm}]
	if ch == nil || !ch.complete {
		t.Fatalf("no complete chain recorded (table %+v)", m.MemoStats())
	}
	if len(ch.windows) < 3 {
		t.Fatalf("chain too short to corrupt mid-way: %d windows", len(ch.windows))
	}
	ch.windows[len(ch.windows)/2].startFP ^= 0xdeadbeef

	m.Reset()
	got := RunWarmOn(m, prof, n)
	st := m.MemoStats()
	if st.RunsReplayed != 0 {
		t.Fatalf("corrupted chain must not replay: %+v", st)
	}
	if st.ReplayDiverged == 0 {
		t.Fatalf("divergence not counted: %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback run diverged from the exact engine")
	}
	if st.RunsRecorded != 2 {
		t.Fatalf("fallback run must re-record the chain: %+v", st)
	}

	m.Reset()
	if RunWarmOn(m, prof, n); m.MemoStats().RunsReplayed != 1 {
		t.Fatalf("re-recorded chain did not replay: %+v", m.MemoStats())
	}
}

// TestMemoProbeAttachedBypass pins the observability contract: a machine
// with a recorder attached always runs the exact engine — the probe streams
// (per-interval series, per-uop lifecycles) cannot be replayed — but the
// bypass is announced on the probe bus and the Result is still identical to
// a memoize-off run.
func TestMemoProbeAttachedBypass(t *testing.T) {
	skipIfMemoDisabled(t)
	model := config.Get(config.TON)
	prof, _ := workload.ByName("swim")
	const n = 30_000

	// Reference: probed run with memoization off.
	off := New(model)
	off.EnableMemo(false)
	recOff := obs.NewRecorder(obs.Options{})
	off.Attach(recOff)
	want := RunWarmOn(off, prof, n)

	m := New(model)
	RunWarmOn(m, prof, n) // record the chain unprobed
	m.Reset()
	rec := obs.NewRecorder(obs.Options{})
	m.Attach(rec)
	got := RunWarmOn(m, prof, n)

	st := m.MemoStats()
	if st.RunsReplayed != 0 || st.ProbeBypasses != 1 {
		t.Fatalf("probed run must bypass replay exactly once: %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("probed memoized run diverged from probed memoize-off run")
	}

	var bypass, recorded int
	rec.Bus.Each(func(e *obs.Event) {
		switch e.Kind {
		case obs.KWindowReplay:
			bypass++
		case obs.KWindowRecord:
			recorded++
		}
	})
	if bypass != 1 {
		t.Errorf("expected exactly one window-replay bypass event, got %d", bypass)
	}
	if recorded != 0 {
		t.Errorf("bypassed run must not re-record boundaries, got %d events", recorded)
	}
	// The probe streams themselves match the memoize-off recorder minus the
	// one bypass announcement.
	if rec.Bus.Len() != recOff.Bus.Len()+1 {
		t.Errorf("probe bus diverged: %d events vs %d+1 memoize-off", rec.Bus.Len(), recOff.Bus.Len())
	}
}

// TestMemoRecordingDetachedOnReset pins the pooling protocol (the memo
// analogue of TestRecorderDetachedOnReset): Reset discards an in-progress
// recording — it references state that no longer exists — while the
// finished-chain table survives and keeps replaying.
func TestMemoRecordingDetachedOnReset(t *testing.T) {
	skipIfMemoDisabled(t)
	model := config.Get(config.TON)
	prof, _ := workload.ByName("swim")
	const n = 20_000

	m := New(model)
	m.memoRec = &memoChain{}
	m.memoWantRecord = true
	m.memoNextFed, m.memoStep, m.memoPrevFed, m.memoPrevFP = 1, 2, 3, 4
	m.Reset()
	if m.memoRec != nil || m.memoWantRecord || m.memoNextFed != 0 ||
		m.memoStep != 0 || m.memoPrevFed != 0 || m.memoPrevFP != 0 {
		t.Fatal("Reset must discard the in-progress recording")
	}

	RunWarmOn(m, prof, n)
	m.Reset()
	if st := m.MemoStats(); st.Chains != 1 {
		t.Fatalf("finished-chain table must survive Reset: %+v", st)
	}
	RunWarmOn(m, prof, n)
	if st := m.MemoStats(); st.RunsReplayed != 1 {
		t.Fatalf("table surviving Reset must serve replays: %+v", st)
	}
}

// TestMemoQuickProperty is the testing/quick property: for ANY random
// (model, application, instruction count), record-then-replay on a reused
// machine produces Results structurally identical to the memoize-off exact
// engine.
func TestMemoQuickProperty(t *testing.T) {
	skipIfMemoDisabled(t)
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	models := config.All()
	apps := workload.Apps()
	machines := make(map[config.ModelID]*Machine)

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := models[rng.Intn(len(models))]
		prof := apps[rng.Intn(len(apps))]
		n := 2_000 + rng.Intn(6_000)

		exact := New(model)
		exact.EnableMemo(false)
		want := RunWarmOn(exact, prof, n)

		m := machines[model.ID]
		if m == nil {
			m = New(model)
			machines[model.ID] = m
		} else {
			m.Reset()
		}
		pre := m.MemoStats().RunsReplayed
		r1 := RunWarmOn(m, prof, n)
		m.Reset()
		r2 := RunWarmOn(m, prof, n)
		if m.MemoStats().RunsReplayed != pre+1 {
			t.Logf("seed %d: %s/%s n=%d did not replay", seed, model.ID, prof.Name, n)
			return false
		}
		if !reflect.DeepEqual(r1, want) || !reflect.DeepEqual(r2, want) {
			t.Logf("seed %d: %s/%s n=%d diverged from exact", seed, model.ID, prof.Name, n)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestPoolPutRestoresDefaultMemoState pins the pool hand-off contract: a
// holder that pinned EnableMemo(false) for its own runs must not leak that
// setting through the pool to an unrelated consumer.
func TestPoolPutRestoresDefaultMemoState(t *testing.T) {
	skipIfMemoDisabled(t)
	model := config.Get(config.TON)
	pool := NewPool()
	m := pool.Get(model)
	m.EnableMemo(false)
	pool.Put(m)
	if got := pool.Get(model); !got.MemoEnabled() {
		t.Fatal("pooled machine handed out with memoization still pinned off")
	}
}
