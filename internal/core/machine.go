// Package core assembles the PARROT machine (§2.3): the decoupled cold and
// hot subsystems, the fetch selector arbitrating between branch- and
// trace-predictor, the foreground execution pipelines, and the background
// post-processing phases — TID selection, hot filtering, trace construction
// and insertion on the cold side; blazing filtering, dynamic optimization
// and trace-cache write-back on the hot side.
//
// The same machine executes all seven study configurations: the baseline
// models (N, W) simply have the trace subsystem disabled, and the split
// model (TOS) instantiates a second, wide execution engine for the hot
// pipeline with a register state-switch penalty between the cores.
package core

import (
	"fmt"

	"parrot/internal/branch"
	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/filter"
	"parrot/internal/isa"
	"parrot/internal/mem"
	"parrot/internal/obs"
	"parrot/internal/ooo"
	"parrot/internal/opt"
	"parrot/internal/tcache"
	"parrot/internal/tpred"
	"parrot/internal/trace"
	"parrot/internal/workload"
)

// cacheLineMask aligns instruction addresses to fetch lines.
const cacheLineMask = ^uint64(63)

// dispatchItem is one decoded uop waiting between the front-ends and the
// rename/dispatch stage. Uops travel by value: the dispatch queue is a
// preallocated ring of pointer-free items, so the steady-state tick loop
// never touches the heap and the GC never scans it.
type dispatchItem struct {
	uop      isa.Uop
	memAddr  uint64
	lastUop  bool // last uop of its macro-instruction
	traceEnd bool // last uop of an atomic trace
	hot      bool // destined for the hot core (split models)
	resolve  bool // fetch is stalled until this uop executes (mispredict)
}

// Machine is one simulated processor instance.
type Machine struct {
	model config.Model

	// Hoisted model parameters: the per-cycle and per-segment paths read
	// these fields instead of re-extracting them from the (large) model
	// struct on every call.
	split          bool
	traceCache     bool
	coldWidth      int
	hotWidth       int
	dqLimit        int // cold decode back-pressure threshold
	hotDQLimit     int // hot-supply back-pressure threshold
	traceFetchUops int
	frontDepth     uint64
	switchPenalty  uint64

	hier *mem.Hierarchy
	bp   *branch.Predictor
	btb  *branch.BTB
	ras  *branch.RAS

	cold *ooo.Engine
	hot  *ooo.Engine // == cold for unified models

	tc     *tcache.Cache
	tp     *tpred.Predictor
	hotF   *filter.CounterCache
	blazeF *filter.CounterCache
	optz   *opt.Optimizer

	emodel *energy.Model
	ehot   *energy.Model

	counts    energy.Counts // priced with emodel
	countsHot energy.Counts // priced with ehot (split models only)

	sel *trace.Selector

	// Timing state.
	clock           uint64
	clockStart      uint64 // clock value at the last statistics reset
	fetchStallUntil uint64
	pendingBranch   ooo.Handle
	pendingEngine   *ooo.Engine
	lastLine        uint64
	decCycle        uint64
	decUsed         int
	decComplexUsed  bool
	supCycle        uint64
	supUsed         int
	optBusyUntil    uint64

	// dq is the dispatch queue: a power-of-two ring buffer of value-typed
	// items. It grows (rarely, by doubling) only until the high-water mark
	// of a run; in steady state pushes and pops are allocation-free.
	dq     []dispatchItem
	dqHead uint64
	dqTail uint64

	// pendingTraceInsts credits committed atomic traces with instruction
	// counts; consumed FIFO via ptiHead and compacted when drained.
	pendingTraceInsts []int
	ptiHead           int

	lastSegHot       bool
	lastDispatchHot  bool
	switchStallUntil uint64

	// Reused scratch: per-hot-segment memory addresses, and a slab of
	// traces evicted from the trace cache whose storage the next Build
	// reuses.
	addrScratch []uint64
	freeTraces  []*trace.Trace

	// Accounting.
	insts        uint64
	hotInsts     uint64
	coldInsts    uint64
	traceAborts  uint64
	abortedUops  uint64
	optCount     uint64
	optExecs     uint64
	uopsBefore   uint64
	uopsAfter    uint64
	critBefore   uint64
	critAfter    uint64
	buildCount   uint64
	hotSegments  uint64
	coldSegments uint64

	// Execution-weighted optimizer impact (Figure 4.9): sums over every
	// hot execution of an optimized trace.
	dynUopsOrig uint64
	dynUopsOpt  uint64
	dynCritOrig uint64
	dynCritOpt  uint64
	optSeen     map[uint64]struct{} // distinct optimized traces executed

	// Diagnostic cycle attribution (development aid; cheap to keep).
	diagFetchStall   uint64 // cycles with fetch stalled on a timer
	diagResolve      uint64 // cycles waiting for a mispredicted CTI to resolve
	diagColdResident uint64 // segments run cold although their trace was resident
	diagColdAbsent   uint64 // segments run cold with no resident trace

	// Observability (nil when disabled; every hook is one predictable
	// branch, see observe.go).
	rec         *obs.Recorder
	obsBase     obsBaseline
	obsNextIval uint64

	// Hot-window memoization (memo.go). The chain table survives Reset so
	// pooled machines carry recordings across jobs; the remaining fields are
	// per-run recording state, cleared by Reset. The feed loop pays one
	// predictable nil-check when recording is off.
	memoOn         bool       // memoization enabled (PARROT_NO_MEMO overrides)
	memo           *memoTable // recorded chains; lazily allocated
	memoRec        *memoChain // chain under construction (nil otherwise)
	memoWantRecord bool       // memoReplay verdict consumed by memoArm
	memoNextFed    int        // next window boundary (fed instructions)
	memoStep       int        // window length in fed instructions
	memoPrevFed    int        // previous boundary position
	memoPrevFP     uint64     // previous boundary fingerprint
	memoPrev       []uint64   // flattened cumulative counters at previous boundary
	memoBuf        []uint64   // reusable flatten scratch for replay
}

// New builds a machine for the given model configuration.
func New(model config.Model) *Machine {
	m := &Machine{
		model:  model,
		hier:   mem.NewHierarchy(model.Mem),
		bp:     branch.NewPredictor(model.BPEntries, model.BPHistBits),
		btb:    branch.NewBTB(model.BTBEntries),
		ras:    branch.NewRAS(model.RASDepth),
		sel:    trace.NewSelector(),
		emodel: energy.NewModel(model.EnergyParams()),
		dq:     make([]dispatchItem, 128), // power of two; grows on demand

		split:          model.Split,
		traceCache:     model.TraceCache,
		coldWidth:      model.Core.Width,
		hotWidth:       model.Core.Width,
		dqLimit:        4 * model.Core.Width,
		hotDQLimit:     4 * model.TraceFetchUops,
		traceFetchUops: model.TraceFetchUops,
		frontDepth:     uint64(model.FrontDepth),
		switchPenalty:  uint64(model.SwitchPenalty),

		memoOn: !memoEnvDisabled,
	}
	if model.BPHistBits == 0 {
		m.bp = branch.NewPredictor(model.BPEntries, 12)
	}
	// The memory hierarchy is the engines' concrete latency provider: no
	// per-machine closure on the load/store issue path, and the engines can
	// size their completion wheels from its worst-case latency.
	m.cold = ooo.NewWithMem(model.Core, m.hier)
	m.hot = m.cold
	m.ehot = m.emodel
	if model.Split {
		m.hot = ooo.NewWithMem(model.HotCore, m.hier)
		m.ehot = energy.NewModel(model.HotEnergyParams())
		m.hotWidth = model.HotCore.Width
	}
	if model.TraceCache {
		m.tc = tcache.New(model.TCFrames, model.TCWays)
		m.tp = tpred.New(model.TPredEntries)
		m.hotF = filter.New(model.HotEntries, model.HotWays, model.HotThreshold)
		if model.Optimize {
			m.blazeF = filter.New(model.BlazeEntries, model.BlazeWays, model.BlazeThreshold)
			m.optz = opt.New(model.OptConfig)
		}
	}
	return m
}

// Model returns the machine's configuration.
func (m *Machine) Model() config.Model { return m.model }

// dqLen returns the number of queued dispatch items.
func (m *Machine) dqLen() int { return int(m.dqTail - m.dqHead) }

// dqPush enqueues one item, doubling the ring when full (rare: the queue is
// bounded by front-end back-pressure plus one instruction's uops).
func (m *Machine) dqPush(it dispatchItem) {
	*m.dqAlloc() = it
}

// dqAlloc reserves the next ring slot and returns it zeroed, so the decoders
// fill dispatch items in place instead of building them locally and copying
// them into the ring.
func (m *Machine) dqAlloc() *dispatchItem {
	if m.dqLen() == len(m.dq) {
		m.dqGrow()
	}
	it := &m.dq[m.dqTail&uint64(len(m.dq)-1)]
	m.dqTail++
	*it = dispatchItem{}
	return it
}

// dqGrow doubles the ring, re-laying the live window out from index 0.
func (m *Machine) dqGrow() {
	bigger := make([]dispatchItem, 2*len(m.dq))
	n := m.dqLen()
	mask := uint64(len(m.dq) - 1)
	for i := 0; i < n; i++ {
		bigger[i] = m.dq[(m.dqHead+uint64(i))&mask]
	}
	m.dq = bigger
	m.dqHead = 0
	m.dqTail = uint64(n)
}

// dqFront returns the oldest queued item. Valid only while dqLen() > 0.
func (m *Machine) dqFront() *dispatchItem {
	return &m.dq[m.dqHead&uint64(len(m.dq)-1)]
}

// dqPop removes the oldest queued item.
func (m *Machine) dqPop() { m.dqHead++ }

// frontBlocked reports whether the cold front-end must stall this cycle.
func (m *Machine) frontBlocked() bool {
	if m.clock < m.fetchStallUntil {
		return true
	}
	if m.pendingBranch != 0 {
		if m.pendingEngine.Done(m.pendingBranch) {
			// Resolved: redirect costs a front-pipeline refill.
			m.pendingBranch = 0
			m.fetchStallUntil = m.clock + m.frontDepth
		}
		return true
	}
	if m.dqLen() > m.dqLimit {
		return true // decode back-pressure
	}
	return false
}

// frontStall advances the machine until the front-end unblocks. Provably
// idle windows — empty dispatch queue and no engine able to complete, issue
// or commit before some cycle T — are fast-forwarded in one jump instead of
// being simulated cycle by cycle. Skipped cycles are bit-identical to the
// no-op ticks they replace: every counter (engine Stats.Cycles, the machine
// clock, the diagnostic stall attribution) advances exactly as if each cycle
// had been executed.
func (m *Machine) frontStall() {
	for m.frontBlocked() {
		if k := m.idleCycles(); k > 0 {
			m.skipCycles(k)
			continue
		}
		m.tick()
	}
}

// idleCycles returns how many upcoming ticks are provably no-ops, or 0 when
// the next tick may do real work. A tick is a no-op iff the dispatch queue
// is empty and every engine's next event (completion, commit, issue) lies
// beyond it; the count is additionally capped at the front-end stall timer
// so frontBlocked is re-evaluated on exactly the cycle it could flip.
func (m *Machine) idleCycles() uint64 {
	if m.dqLen() > 0 {
		return 0
	}
	const never = ^uint64(0)
	t := m.cold.NextEventAt()
	if m.split {
		if th := m.hot.NextEventAt(); th < t {
			t = th
		}
	}
	var k uint64
	switch {
	case t == never:
		k = never
	case t > m.clock+1:
		k = t - m.clock - 1 // the tick reaching t must run for real
	default:
		return 0
	}
	// frontBlocked changes machine state only at the stall-timer expiry:
	// that is when the timer check stops masking the pending-branch Done
	// test (and when a pure timer stall ends). Never skip across it, so the
	// front-end re-evaluates on exactly that cycle.
	if m.fetchStallUntil > m.clock {
		if lim := m.fetchStallUntil - m.clock; lim < k {
			k = lim
		}
	}
	if k == never {
		// Engines empty and no stall timer running: the next tick may do
		// real work; be conservative.
		return 0
	}
	return k
}

// skipCycles advances clocks and per-cycle diagnostics by k cycles in one
// step. Valid only for windows idleCycles proved to be no-ops.
func (m *Machine) skipCycles(k uint64) {
	var fs uint64
	if m.fetchStallUntil > m.clock+1 {
		fs = m.fetchStallUntil - m.clock - 1
		if fs > k {
			fs = k
		}
	}
	m.diagFetchStall += fs
	if m.pendingBranch != 0 {
		m.diagResolve += k - fs
	}
	m.clock += k
	m.cold.Skip(k)
	if m.split {
		m.hot.Skip(k)
	}
	if m.rec != nil {
		m.obsSkip(k)
	}
}

// tick advances the machine one cycle: dispatch, then engine clocks.
func (m *Machine) tick() {
	m.clock++
	if m.clock < m.fetchStallUntil {
		m.diagFetchStall++
	} else if m.pendingBranch != 0 {
		m.diagResolve++
	}

	// Dispatch from the queue into the engines.
	coldBudget := m.coldWidth
	hotBudget := m.hotWidth
	for m.dqLen() > 0 {
		it := m.dqFront()
		eng := m.cold
		budget := &coldBudget
		if m.split && it.hot {
			eng = m.hot
			budget = &hotBudget
		}
		if m.split && it.hot != m.lastDispatchHot {
			// Register state switch between the split cores.
			if m.switchStallUntil == 0 {
				m.switchStallUntil = m.clock + m.switchPenalty
				m.countsHot.Add(energy.EvStateSwitch, 1)
			}
			if m.clock < m.switchStallUntil {
				break
			}
			m.switchStallUntil = 0
			m.lastDispatchHot = it.hot
		}
		if *budget == 0 || !eng.CanDispatch() {
			if *budget > 0 {
				rob := eng.InFlight() >= eng.Config().ROBSize
				if rob {
					eng.NoteStallROB()
				} else {
					eng.NoteStallIQ()
				}
				if m.rec != nil {
					m.rec.Stall(rob, m.split && it.hot)
				}
			}
			break
		}
		h := eng.Dispatch(&it.uop, it.memAddr, it.lastUop, it.traceEnd)
		if it.resolve {
			m.pendingBranch = h
			m.pendingEngine = eng
		}
		*budget--
		m.dqPop()
	}

	// Engine cycles.
	_, ci, te := m.cold.Cycle()
	m.insts += uint64(ci)
	m.creditTraces(te)
	if m.split {
		_, ci, te = m.hot.Cycle()
		m.insts += uint64(ci)
		m.creditTraces(te)
	}
	if m.rec != nil {
		m.obsTick()
	}
}

// creditTraces credits committed atomic traces with their instruction
// counts. The pending list is consumed FIFO through ptiHead and its storage
// is reused once drained.
func (m *Machine) creditTraces(traceEnds int) {
	for i := 0; i < traceEnds; i++ {
		if m.ptiHead == len(m.pendingTraceInsts) {
			panic("core: trace commit without pending credit")
		}
		m.insts += uint64(m.pendingTraceInsts[m.ptiHead])
		m.ptiHead++
	}
	if m.ptiHead > 0 && m.ptiHead == len(m.pendingTraceInsts) {
		m.pendingTraceInsts = m.pendingTraceInsts[:0]
		m.ptiHead = 0
	}
}

// enqueue pushes a prebuilt item toward dispatch (testing helper; the
// decoders fill ring slots in place via dqAlloc).
func (m *Machine) enqueue(it dispatchItem) {
	m.dqPush(it)
}

// InstSource supplies a committed dynamic instruction stream. The synthetic
// workload walker implements it; so does the trace-file reader, which lets
// the simulator replay externally captured streams.
type InstSource interface {
	Next() (workload.DynInst, bool)
}

// Run executes n dynamic instructions of the application and returns the
// collected result. Passing n <= 0 uses the profile's default length.
func Run(model config.Model, prof workload.Profile, n int) *Result {
	if n <= 0 {
		n = prof.Instructions
	}
	m := New(model)
	prog := workload.Generate(prof)
	return m.RunSource(workload.NewStream(prog, n), prof)
}

// RunSource drives the machine from an arbitrary instruction source with no
// warmup window and collects the result. Label information is taken from
// prof (Name/Suite only; the generator parameters are ignored).
func (m *Machine) RunSource(src InstSource, prof workload.Profile) *Result {
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		segs := m.sel.Feed(&d)
		for i := range segs {
			m.execSegment(&segs[i])
			m.sel.Recycle(&segs[i])
		}
	}
	segs := m.sel.Flush()
	for i := range segs {
		m.execSegment(&segs[i])
		m.sel.Recycle(&segs[i])
	}
	m.drain()
	if m.rec != nil {
		m.obsFinish()
	}
	return m.collect(prof)
}

// drain empties the dispatch queue and both pipelines, fast-forwarding idle
// stretches (e.g. a last long-latency load) in one jump.
func (m *Machine) drain() {
	for m.dqLen() > 0 {
		m.tick()
	}
	for m.cold.InFlight() > 0 || (m.split && m.hot.InFlight() > 0) {
		if k := m.idleCycles(); k > 0 {
			m.skipCycles(k)
			continue
		}
		m.tick()
	}
}

// execSegment runs one selection segment through the fetch selector and the
// appropriate pipeline, then performs the background phases.
func (m *Machine) execSegment(seg *trace.Segment) {
	if !m.traceCache {
		if m.rec != nil {
			m.rec.Segment(seg.TID, seg.NumInsts(), seg.Uops, false)
		}
		m.execCold(seg)
		return
	}

	key := seg.TID.Key()
	pred, predOK := m.tp.Predict()
	m.counts.Add(energy.EvTPredLookup, 1)

	var tr *trace.Trace
	hot := false
	switch {
	case predOK && pred == key:
		m.counts.Add(energy.EvTCLookup, 1)
		if t, hit := m.tc.Lookup(key); hit && m.traceMatches(t, seg) {
			hot = true
			tr = t
		}
	case predOK:
		// The fetch selector chose the hot pipeline for the wrong TID: the
		// predicted trace starts executing and aborts on a failed assert.
		m.counts.Add(energy.EvTCLookup, 1)
		if t, hit := m.tc.Lookup(pred); hit {
			m.traceAbort(t)
		}
	default:
		// Lower-priority path of the fetch selector (§2.3): with no
		// confident trace prediction, the trace cache is indexed by fetch
		// address plus the branch predictor's multiple-branch directions,
		// Rotenberg-style. A resident trace under mispredicted directions
		// starts and aborts.
		bpTID := trace.TID{Start: seg.TID.Start}
		for i := range seg.Insts {
			in := seg.Insts[i].Inst
			if in.Kind == isa.KindBranch {
				bpTID = bpTID.WithDir(m.bp.Predict(in.PC))
				m.counts.Add(energy.EvBPLookup, 1)
			}
		}
		bpKey := bpTID.Key()
		m.counts.Add(energy.EvTCLookup, 1)
		if bpKey == key {
			if t, hit := m.tc.Lookup(key); hit && m.traceMatches(t, seg) {
				hot = true
				tr = t
			}
		} else if t, hit := m.tc.Lookup(bpKey); hit {
			m.traceAbort(t)
		}
	}
	m.tp.Train(key, pred, predOK)
	m.counts.Add(energy.EvTPredUpdate, 1)

	if m.rec != nil {
		m.obsSegment(seg, key, pred, predOK, hot)
	}

	if hot {
		m.hotSegments++
		m.execHot(seg, tr)
	} else {
		m.coldSegments++
		m.execCold(seg)
	}
	m.lastSegHot = hot

	m.background(seg, key, hot, tr)
}

// traceMatches guards against TID hash collisions and stale frames: the
// resident trace must describe exactly this dynamic segment.
func (m *Machine) traceMatches(tr *trace.Trace, seg *trace.Segment) bool {
	if tr.NumInsts != seg.NumInsts() {
		return false
	}
	memUops := 0
	for _, d := range seg.Insts {
		for _, u := range d.Inst.Uops {
			if u.Op.IsMem() {
				memUops++
			}
		}
	}
	return memUops == tr.MemOps
}

// traceAbort models a trace misprediction: the wrongly predicted trace
// executes until its first failing assert, the accumulated state is flushed
// and the architectural state at trace start restored (§2.3).
func (m *Machine) traceAbort(tr *trace.Trace) {
	if m.rec != nil {
		m.rec.TraceAbort(tr.TID)
	}
	m.traceAborts++
	wasted := uint64(len(tr.Uops) / 2)
	m.abortedUops += wasted
	m.countsHot.Add(energy.EvTCReadUop, wasted)
	m.countsHot.Add(energy.EvALU, wasted/2) // partial wrong-path execution
	m.counts.Add(energy.EvFlushRecovery, 1)
	m.fetchStallUntil = maxU64(m.fetchStallUntil, m.clock+m.frontDepth+wasted/4)
}

// background performs the post-processing phases on the committed segment.
func (m *Machine) background(seg *trace.Segment, key uint64, hot bool, tr *trace.Trace) {
	if hot {
		tr.Executions++
		if tr.Optimized {
			m.optExecs++
			m.dynUopsOrig += uint64(tr.OrigUops)
			m.dynUopsOpt += uint64(len(tr.Uops))
			m.dynCritOrig += uint64(tr.OrigCritPath)
			m.dynCritOpt += uint64(tr.OptCritPath)
			if m.optSeen == nil {
				m.optSeen = make(map[uint64]struct{})
			}
			m.optSeen[key] = struct{}{}
		} else if m.model.Optimize {
			m.counts.Add(energy.EvBlazeFilter, 1)
			if _, promoted := m.blazeF.Bump(key); promoted {
				if m.rec != nil {
					m.rec.BlazePromote(tr.TID)
				}
				m.optimizeTrace(key, tr)
			}
		}
		return
	}

	// Cold side: TID selection trains the hot filter; promotion constructs
	// the trace and inserts it into the trace cache.
	if m.tc.Probe(key) {
		m.diagColdResident++
		return
	}
	m.diagColdAbsent++
	m.counts.Add(energy.EvHotFilter, 1)
	if _, promoted := m.hotF.Bump(key); promoted {
		if m.rec != nil {
			m.rec.HotPromote(seg.TID)
		}
		t := trace.BuildInto(m.takeFreeTrace(), seg)
		if ev := m.tc.Insert(t); ev != nil {
			m.freeTraces = append(m.freeTraces, ev)
		}
		m.buildCount++
		m.counts.Add(energy.EvTraceBuildUop, uint64(len(t.Uops)))
		m.counts.Add(energy.EvTCWriteUop, uint64(len(t.Uops)))
	}
}

// takeFreeTrace pops a recycled trace from the slab of evicted traces, or
// returns nil when none is available (BuildInto then allocates).
func (m *Machine) takeFreeTrace() *trace.Trace {
	n := len(m.freeTraces)
	if n == 0 {
		return nil
	}
	t := m.freeTraces[n-1]
	m.freeTraces[n-1] = nil
	m.freeTraces = m.freeTraces[:n-1]
	return t
}

// optimizeTrace runs the dynamic optimizer on a blazing trace and writes it
// back to the trace cache.
func (m *Machine) optimizeTrace(key uint64, tr *trace.Trace) {
	if m.clock < m.optBusyUntil {
		// The non-pipelined optimizer is busy; let the trace re-promote on
		// a later execution.
		m.blazeF.Forget(key)
		return
	}
	m.optBusyUntil = m.clock + opt.LatencyCycles
	before := len(tr.Uops)
	if m.rec != nil {
		m.rec.OptimizeStart(tr.TID)
	}
	res := m.optz.Optimize(tr)
	if m.rec != nil {
		m.rec.OptimizeEnd(tr.TID, res.UopsBefore, res.UopsAfter,
			res.CritBefore, res.CritAfter)
	}
	m.tc.Insert(tr) // write-back (replaces in place)
	m.optCount++
	m.uopsBefore += uint64(res.UopsBefore)
	m.uopsAfter += uint64(res.UopsAfter)
	m.critBefore += uint64(res.CritBefore)
	m.critAfter += uint64(res.CritAfter)
	// Optimizer datapath: several analysis/rewrite passes over the trace.
	m.counts.Add(energy.EvOptimizeUop, uint64(before)*5)
	m.counts.Add(energy.EvTCWriteUop, uint64(len(tr.Uops)))
}

func (m *Machine) String() string {
	return fmt.Sprintf("machine(%s)", m.model.ID)
}
