package core

import (
	"testing"

	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/workload"
)

func TestTraceAbortsAreCharged(t *testing.T) {
	// Irregular code produces trace mispredictions; every abort must
	// charge recovery energy and wasted hot-pipeline work.
	r := runSmall(t, config.TON, "gcc", 60000)
	if r.TraceAborts == 0 {
		t.Fatal("gcc never aborted a trace — the predictor cannot be that good")
	}
	if r.Counts[energy.EvFlushRecovery] < r.TraceAborts {
		t.Errorf("aborts %d not all charged recovery (%d)", r.TraceAborts, r.Counts[energy.EvFlushRecovery])
	}
}

func TestBlazingGatesOptimization(t *testing.T) {
	// With an unreachable blazing threshold nothing is optimized while the
	// trace cache still runs hot.
	m := config.Get(config.TON)
	m.BlazeThreshold = 1 << 30
	p, _ := workload.ByName("swim")
	r := RunWarm(m, p, 40000)
	if r.Optimizations != 0 || r.OptExecs != 0 {
		t.Errorf("optimizer ran despite unreachable threshold: %d/%d", r.Optimizations, r.OptExecs)
	}
	if r.Coverage() < 0.5 {
		t.Errorf("coverage collapsed without the optimizer: %v", r.Coverage())
	}
}

func TestHotFilterGatesConstruction(t *testing.T) {
	// An unreachable hot threshold keeps the trace cache empty: the PARROT
	// machine degrades to the baseline.
	m := config.Get(config.TON)
	m.HotThreshold = 1 << 30
	p, _ := workload.ByName("swim")
	r := RunWarm(m, p, 40000)
	if r.TraceBuilds != 0 || r.HotInsts != 0 {
		t.Errorf("traces built despite unreachable hot threshold: %d builds", r.TraceBuilds)
	}
}

func TestOptimizerBusyThrottles(t *testing.T) {
	// The non-pipelined optimizer (100-cycle occupancy) cannot optimize
	// every trace instantly; with threshold 1 it must skip some
	// promotions. This exercises the busy/forget path.
	m := config.Get(config.TON)
	m.BlazeThreshold = 1
	p, _ := workload.ByName("gcc")
	r := RunWarm(m, p, 40000)
	if r.Optimizations == 0 {
		t.Fatal("no optimizations at threshold 1")
	}
}

func TestEnergyAttributionColdVsHot(t *testing.T) {
	// A high-coverage run charges trace-cache reads instead of decode; a
	// baseline charges decode and zero trace events.
	n := runSmall(t, config.N, "swim", 40000)
	for _, ev := range []energy.Event{energy.EvTCLookup, energy.EvTCReadUop, energy.EvTPredLookup, energy.EvHotFilter} {
		if n.Counts[ev] != 0 {
			t.Errorf("baseline charged trace event %v", ev)
		}
	}
	ton := runSmall(t, config.TON, "swim", 40000)
	if ton.Counts[energy.EvTCReadUop] == 0 || ton.Counts[energy.EvTPredLookup] == 0 {
		t.Error("PARROT model missing trace event charges")
	}
}

func TestPrefetcherReducesMemoryEnergyEvents(t *testing.T) {
	// The tagged prefetcher hides streaming misses: demand L1D misses must
	// be well below the no-prefetch line-touch count on swim.
	r := runSmall(t, config.N, "swim", 40000)
	accesses := r.Counts[energy.EvL1DAccess]
	misses := r.Counts[energy.EvL1DMiss]
	if accesses == 0 {
		t.Fatal("no data accesses")
	}
	if rate := float64(misses) / float64(accesses); rate > 0.05 {
		t.Errorf("swim L1D demand miss rate = %v, prefetcher ineffective", rate)
	}
}

func TestTOSUsesBothEngines(t *testing.T) {
	m := New(config.Get(config.TOS))
	p, _ := workload.ByName("flash")
	prog := workload.Generate(p)
	stream := workload.NewStream(prog, 30000)
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		for _, seg := range m.sel.Feed(&d) {
			m.execSegment(&seg)
		}
	}
	for m.dqLen() > 0 {
		m.tick()
	}
	for m.cold.InFlight() > 0 || m.hot.InFlight() > 0 {
		m.tick()
	}
	if m.cold.Stats.UopsCommitted == 0 {
		t.Error("cold core idle on split machine")
	}
	if m.hot.Stats.UopsCommitted == 0 {
		t.Error("hot core idle on split machine")
	}
	if m.hot == m.cold {
		t.Error("split machine must instantiate two engines")
	}
}

func TestUnifiedSharesOneEngine(t *testing.T) {
	m := New(config.Get(config.TON))
	if m.hot != m.cold {
		t.Error("unified machine must share the engine")
	}
}

func TestColdOnlyAppStillWorks(t *testing.T) {
	// An app profile with no loops exercises the pure-cold path on a
	// PARROT machine.
	p, _ := workload.ByName("gcc")
	p.HotFraction = 0
	p.Name = "coldonly"
	r := RunWarm(config.Get(config.TON), p, 20000)
	if r.Insts == 0 {
		t.Fatal("cold-only run empty")
	}
	if r.Coverage() > 0.4 {
		t.Errorf("cold-only app reached coverage %v", r.Coverage())
	}
}

func TestHotOnlyAppWorks(t *testing.T) {
	p, _ := workload.ByName("swim")
	p.HotFraction = 1.0
	p.Name = "hotonly"
	r := RunWarm(config.Get(config.TON), p, 20000)
	if r.Insts == 0 {
		t.Fatal("hot-only run empty")
	}
	if r.Coverage() < 0.7 {
		t.Errorf("hot-only app coverage %v", r.Coverage())
	}
}

func TestShortRunsDoNotPanic(t *testing.T) {
	// Degenerate stream lengths exercise flush/drain edges.
	p, _ := workload.ByName("gzip")
	for _, n := range []int{1, 2, 10, 100} {
		for _, id := range []config.ModelID{config.N, config.TON, config.TOS} {
			r := RunWarm(config.Get(id), p, n)
			if r == nil {
				t.Fatalf("nil result for n=%d", n)
			}
		}
	}
}

func TestCyclesMonotoneInInstructions(t *testing.T) {
	p, _ := workload.ByName("word")
	short := RunWarm(config.Get(config.N), p, 20000)
	long := RunWarm(config.Get(config.N), p, 60000)
	if long.Cycles <= short.Cycles {
		t.Errorf("cycles not monotone: %d (20k) vs %d (60k)", short.Cycles, long.Cycles)
	}
	if long.Insts <= short.Insts {
		t.Errorf("insts not monotone")
	}
}
