package core

import (
	"os"

	"parrot/internal/energy"
	"parrot/internal/mem"
	"parrot/internal/ooo"
	"parrot/internal/tcache"
	"parrot/internal/tpred"
	"parrot/internal/workload"

	"parrot/internal/branch"
)

// This file implements hot-window memoization: replaying the recorded
// outcome of a previously simulated steady-state window instead of
// re-simulating it cycle by cycle.
//
// The simulator is bit-deterministic: a machine reset to its constructed
// state and fed the same (profile, instruction count, warmup) spec walks
// exactly the same state trajectory every time — the property the pooled-
// vs-fresh determinism tests and the 44×7 golden matrix digest enforce.
// The synthetic workloads are RNG-driven (memory addresses, trip counts and
// branch outcomes are fresh draws per episode), so no window repeats
// *within* a run; exact repetition lives *across* runs of the same spec —
// which is precisely what the experiment matrix, the CI perf gate and the
// serving layer execute over and over.
//
// Recording: the first run of a spec snapshots, at deterministic
// instruction-count boundaries, the delta of every result-relevant counter
// (cycles, energy-event vectors, per-unit engine statistics, cache/
// predictor/filter statistics) together with a fingerprint of the mutable
// machine state at the boundary. Fingerprints are maintained from O(1)
// dirty-set summaries — component mutation epochs, occupancy scalars and
// the counter block itself — never by rescanning tables.
//
// Replay: when a machine re-enters a previously seen key — reset program
// position plus matching live state fingerprint — the recorded window
// deltas are folded into a local counter block, walking the fingerprint
// chain link by link, and the Result is produced by the same pure
// buildResult function the exact path uses. The live machine is never
// mutated, so every fallback (key miss, probe attachment, fingerprint
// divergence mid-chain) degrades to the exact cycle engine on a pristine
// machine, and replayed results are byte-identical by construction.

// memoEnvDisabled force-disables memoization process-wide when the
// PARROT_NO_MEMO environment variable is non-empty (read once at startup).
// CI uses it to run the full suite against the exact engine only.
var memoEnvDisabled = os.Getenv("PARROT_NO_MEMO") != ""

// memoMaxChains caps recorded chains per machine; the least recently used
// chain is evicted. Chains are small (tens of KB), but pooled machines are
// long-lived and serve unbounded job mixes.
const memoMaxChains = 64

// memoMinStep is the minimum window length in fed instructions. Shorter
// windows would spend more on snapshot bookkeeping than they save.
const memoMinStep = 4096

// memoWindowsPerRun is the target number of windows across the measured
// region, so chain size stays bounded as -insts grows.
const memoWindowsPerRun = 48

// runCounters is the complete block of result-relevant counters a run
// accumulates: everything buildResult needs to produce a Result. All leaves
// are uint64, so the block supports exact (wrapping) delta/sum arithmetic —
// a recorded window delta folded onto the previous cumulative block
// reproduces the next cumulative block bit-exactly.
type runCounters struct {
	cycles uint64 // measured cycles (clock - clockStart)

	insts     uint64
	hotInsts  uint64
	coldInsts uint64

	traceAborts  uint64
	abortedUops  uint64
	optCount     uint64
	optExecs     uint64
	uopsBefore   uint64
	uopsAfter    uint64
	critBefore   uint64
	critAfter    uint64
	buildCount   uint64
	hotSegments  uint64
	coldSegments uint64
	dynUopsOrig  uint64
	dynUopsOpt   uint64
	dynCritOrig  uint64
	dynCritOpt   uint64
	optSeen      uint64

	counts    energy.Counts
	countsHot energy.Counts

	cold ooo.Stats
	hot  ooo.Stats // zero for unified models

	l1i, l1d, l2 mem.CacheStats
	prefetches   uint64

	bp branch.Stats
	tp tpred.Stats
	tc tcache.Stats
}

// walk visits every counter word in declaration order. It is the single
// field enumeration behind flatten/add/sub and the fingerprint hash;
// TestRunCountersWalkCoversAllFields pins it against the struct by
// reflection so a new field cannot be silently missed.
func (rc *runCounters) walk(yield func(*uint64)) {
	for _, p := range [...]*uint64{
		&rc.cycles, &rc.insts, &rc.hotInsts, &rc.coldInsts,
		&rc.traceAborts, &rc.abortedUops, &rc.optCount, &rc.optExecs,
		&rc.uopsBefore, &rc.uopsAfter, &rc.critBefore, &rc.critAfter,
		&rc.buildCount, &rc.hotSegments, &rc.coldSegments,
		&rc.dynUopsOrig, &rc.dynUopsOpt, &rc.dynCritOrig, &rc.dynCritOpt,
		&rc.optSeen,
	} {
		yield(p)
	}
	for i := range rc.counts {
		yield(&rc.counts[i])
	}
	for i := range rc.countsHot {
		yield(&rc.countsHot[i])
	}
	for _, st := range [...]*ooo.Stats{&rc.cold, &rc.hot} {
		yield(&st.Cycles)
		yield(&st.UopsDispatched)
		yield(&st.UopsIssued)
		yield(&st.UopsCommitted)
		yield(&st.RegReads)
		yield(&st.RegWrites)
		yield(&st.Wakeups)
		yield(&st.ROBWrites)
		yield(&st.ROBReads)
		for i := range st.OpsByClass {
			yield(&st.OpsByClass[i])
		}
		yield(&st.StallROBFull)
		yield(&st.StallIQFull)
	}
	for _, cs := range [...]*mem.CacheStats{&rc.l1i, &rc.l1d, &rc.l2} {
		yield(&cs.Accesses)
		yield(&cs.Hits)
		yield(&cs.Misses)
		yield(&cs.Evictions)
		yield(&cs.Writes)
	}
	yield(&rc.prefetches)
	yield(&rc.bp.Lookups)
	yield(&rc.bp.Updates)
	yield(&rc.bp.Mispredicts)
	yield(&rc.tp.Lookups)
	yield(&rc.tp.Predictions)
	yield(&rc.tp.Correct)
	yield(&rc.tp.Mispredicts)
	yield(&rc.tp.Updates)
	yield(&rc.tc.Lookups)
	yield(&rc.tc.Hits)
	yield(&rc.tc.Misses)
	yield(&rc.tc.Inserts)
	yield(&rc.tc.Writebacks)
	yield(&rc.tc.Evictions)
}

// flatten serializes the counter block into buf (reused across calls).
func (rc *runCounters) flatten(buf *[]uint64) {
	*buf = (*buf)[:0]
	rc.walk(func(p *uint64) { *buf = append(*buf, *p) })
}

// add folds words (a flattened block) into rc. Wrapping uint64 addition is
// the exact inverse of sub, so a chain of window deltas reproduces the
// final cumulative block bit-exactly regardless of intermediate wrap.
func (rc *runCounters) add(words []uint64) {
	i := 0
	rc.walk(func(p *uint64) { *p += words[i]; i++ })
}

// sub subtracts words (a flattened block) from rc, turning a cumulative
// snapshot into a window delta.
func (rc *runCounters) sub(words []uint64) {
	i := 0
	rc.walk(func(p *uint64) { *p -= words[i]; i++ })
}

const (
	fnvOffset = uint64(1469598103934665603)
	fnvPrime  = uint64(1099511628211)
)

// hash folds the counter block into one FNV-64 word.
func (rc *runCounters) hash() uint64 {
	h := fnvOffset
	rc.walk(func(p *uint64) { h = (h ^ *p) * fnvPrime })
	return h
}

// fingerprintFrom extends a gathered counter-block hash with the mutable
// state the counters do not see: component mutation epochs (table and LRU
// dirty-set summaries), pipeline occupancy, selector position and the
// front-end timing registers. Every term is O(1) to read.
func (m *Machine) fingerprintFrom(rc *runCounters) uint64 {
	h := rc.hash()
	mix := func(w uint64) { h = (h ^ w) * fnvPrime }
	mix(m.clock)
	mix(m.clockStart)
	mix(m.hier.L1I.Epoch())
	mix(m.hier.L1D.Epoch())
	mix(m.hier.L2.Epoch())
	mix(m.bp.Epoch())
	if m.tp != nil {
		mix(m.tp.Epoch())
	}
	if m.tc != nil {
		mix(m.tc.Epoch())
	}
	if m.hotF != nil {
		mix(m.hotF.Epoch())
	}
	if m.blazeF != nil {
		mix(m.blazeF.Epoch())
	}
	mix(m.sel.StateFingerprint())
	mix(m.cold.StateFingerprint())
	if m.model.Split {
		mix(m.hot.StateFingerprint())
	}
	mix(uint64(m.dqLen()))
	mix(uint64(len(m.pendingTraceInsts) - m.ptiHead))
	mix(m.fetchStallUntil)
	mix(uint64(m.pendingBranch))
	mix(m.switchStallUntil)
	mix(m.decCycle)
	mix(m.supCycle)
	mix(m.optBusyUntil)
	mix(m.lastLine)
	return h
}

// stateFingerprint summarizes the machine's current result-relevant mutable
// state in one word.
func (m *Machine) stateFingerprint() uint64 {
	var rc runCounters
	m.gatherRun(&rc)
	return m.fingerprintFrom(&rc)
}

// memoKey identifies one deterministic run spec: the generated program
// (profiles are value-comparable and key the program cache the same way),
// the dynamic instruction count and the warmup boundary.
type memoKey struct {
	prof workload.Profile
	n    int
	warm int
}

// memoWindow is one recorded window: the counter delta accumulated between
// two boundaries and the state fingerprints at both ends. Replay requires
// each window's start link to match the running fingerprint, so corruption
// or nondeterminism anywhere in the chain falls back to exact simulation.
type memoWindow struct {
	startFed int
	endFed   int
	startFP  uint64
	endFP    uint64
	delta    runCounters
}

// memoChain is the recorded trajectory of one run spec: the fingerprint of
// the reset machine it started from and the window sequence to run end.
type memoChain struct {
	key      memoKey
	startFP  uint64
	windows  []memoWindow
	complete bool // recorded through run end; only complete chains replay
	lastUse  uint64
}

// MemoStats reports hot-window memoization activity for one machine.
type MemoStats struct {
	Chains  int `json:"chains"`  // recorded run specs resident
	Windows int `json:"windows"` // recorded windows across all chains

	WindowsRecorded uint64 `json:"windowsRecorded"`
	WindowsReplayed uint64 `json:"windowsReplayed"`
	RunsRecorded    uint64 `json:"runsRecorded"`
	RunsReplayed    uint64 `json:"runsReplayed"`
	InstsReplayed   uint64 `json:"instsReplayed"` // measured insts covered by replay

	ReplayMisses   uint64 `json:"replayMisses"`   // no complete chain for the key
	ReplayDiverged uint64 `json:"replayDiverged"` // fingerprint mismatch fallbacks
	ProbeBypasses  uint64 `json:"probeBypasses"`  // replays skipped for an attached recorder
	ChainsEvicted  uint64 `json:"chainsEvicted"`
}

// memoTable is one machine's chain store. It survives Machine.Reset, so a
// pooled machine carries its recordings across jobs; only an in-progress
// recording is discarded by Reset.
type memoTable struct {
	chains   map[memoKey]*memoChain
	useClock uint64
	stats    MemoStats
}

func newMemoTable() *memoTable {
	return &memoTable{chains: make(map[memoKey]*memoChain)}
}

// install stores a finished chain, evicting the least recently used chain
// when the table is full.
func (t *memoTable) install(ch *memoChain) {
	if _, ok := t.chains[ch.key]; !ok && len(t.chains) >= memoMaxChains {
		var victim *memoChain
		for _, c := range t.chains {
			if victim == nil || c.lastUse < victim.lastUse {
				victim = c
			}
		}
		delete(t.chains, victim.key)
		t.stats.ChainsEvicted++
	}
	t.useClock++
	ch.lastUse = t.useClock
	t.chains[ch.key] = ch
}

// MemoDisabledByEnv reports whether PARROT_NO_MEMO force-disabled
// memoization process-wide (benchmarks use it to skip replay assertions).
func MemoDisabledByEnv() bool { return memoEnvDisabled }

// EnableMemo switches hot-window memoization for this machine. Disabling
// drops the chain table. PARROT_NO_MEMO overrides enabling process-wide.
func (m *Machine) EnableMemo(on bool) {
	m.memoOn = on && !memoEnvDisabled
	if !m.memoOn {
		m.memo = nil
		m.memoRec = nil
	}
}

// MemoEnabled reports whether this machine memoizes runs.
func (m *Machine) MemoEnabled() bool { return m.memoOn }

// MemoStats returns a snapshot of the machine's memoization counters.
func (m *Machine) MemoStats() MemoStats {
	if m.memo == nil {
		return MemoStats{}
	}
	s := m.memo.stats
	s.Chains = len(m.memo.chains)
	for _, ch := range m.memo.chains {
		s.Windows += len(ch.windows)
	}
	return s
}

// memoResetRecording discards any in-progress recording (Machine.Reset):
// a half-recorded trajectory is invalid the moment the machine state is
// torn down. The finished-chain table deliberately survives.
func (m *Machine) memoResetRecording() {
	m.memoRec = nil
	m.memoNextFed = 0
	m.memoStep = 0
	m.memoPrevFed = 0
	m.memoPrevFP = 0
	m.memoWantRecord = false
}

// memoReplay attempts to serve a full run from the chain table. It returns
// nil — leaving the machine untouched — whenever the exact engine must run:
// memoization off, recorder attached, no complete chain for the key, or a
// fingerprint mismatch anywhere along the chain. As a side effect it
// decides whether the upcoming exact run should record (memoArm).
func (m *Machine) memoReplay(prof workload.Profile, n, warm int) *Result {
	m.memoWantRecord = false
	if !m.memoOn {
		return nil
	}
	m.memoWantRecord = true
	if m.memo == nil {
		return nil
	}
	key := memoKey{prof: prof, n: n, warm: warm}
	ch := m.memo.chains[key]
	if ch == nil || !ch.complete {
		m.memo.stats.ReplayMisses++
		return nil
	}
	if m.rec != nil {
		// Observability needs the exact engine (per-interval series, per-uop
		// lifecycles); a complete chain exists, so mark the bypass for the
		// probe bus and do not re-record.
		m.memo.stats.ProbeBypasses++
		chInsts := uint64(0)
		for i := range ch.windows {
			chInsts += ch.windows[i].delta.insts
		}
		m.rec.WindowReplayBypassed(len(ch.windows), chInsts)
		m.memoWantRecord = false
		return nil
	}
	if m.stateFingerprint() != ch.startFP {
		// The machine is not in the recorded reset state. Keep the chain —
		// it is valid for properly reset machines — and simulate exactly.
		m.memo.stats.ReplayDiverged++
		m.memoWantRecord = false
		return nil
	}
	var rc runCounters
	fp, fed := ch.startFP, 0
	for i := range ch.windows {
		w := &ch.windows[i]
		if w.startFP != fp || w.startFed != fed {
			// Broken chain link: recorded data is corrupt or nondeterminism
			// crept in. Fall back to the exact engine and re-record.
			m.memo.stats.ReplayDiverged++
			m.memoWantRecord = true
			return nil
		}
		w.delta.flatten(&m.memoBuf)
		rc.add(m.memoBuf)
		fp, fed = w.endFP, w.endFed
	}
	if fed != n {
		m.memo.stats.ReplayDiverged++
		m.memoWantRecord = true
		return nil
	}
	m.memo.useClock++
	ch.lastUse = m.memo.useClock
	m.memo.stats.RunsReplayed++
	m.memo.stats.WindowsReplayed += uint64(len(ch.windows))
	m.memo.stats.InstsReplayed += rc.insts
	return m.buildResult(prof, &rc)
}

// memoArm starts recording the upcoming run if memoReplay asked for it.
// Must be called on the reset machine, before any instruction is fed.
func (m *Machine) memoArm(prof workload.Profile, n, warm int) {
	if !m.memoOn || !m.memoWantRecord {
		return
	}
	if m.memo == nil {
		m.memo = newMemoTable()
	}
	step := (n - warm) / memoWindowsPerRun
	if step < memoMinStep {
		step = memoMinStep
	}
	m.memoStep = step
	// The first boundary lands on the warmup reset (taken after ResetStats),
	// so the measured region starts from a clean snapshot.
	m.memoNextFed = warm
	if m.memoNextFed < 1 {
		m.memoNextFed = 1
	}
	var rc runCounters
	m.gatherRun(&rc)
	fp := m.fingerprintFrom(&rc)
	m.memoRec = &memoChain{key: memoKey{prof: prof, n: n, warm: warm}, startFP: fp}
	m.memoPrevFP = fp
	m.memoPrevFed = 0
	rc.flatten(&m.memoPrev)
}

// memoBoundary snapshots one window boundary during a recording run.
func (m *Machine) memoBoundary(fed int) {
	var cur runCounters
	m.gatherRun(&cur)
	fp := m.fingerprintFrom(&cur)
	w := memoWindow{
		startFed: m.memoPrevFed,
		endFed:   fed,
		startFP:  m.memoPrevFP,
		endFP:    fp,
		delta:    cur,
	}
	w.delta.sub(m.memoPrev)
	m.memoRec.windows = append(m.memoRec.windows, w)
	m.memo.stats.WindowsRecorded++
	if m.rec != nil {
		m.rec.WindowRecorded(fed, fp)
	}
	cur.flatten(&m.memoPrev)
	m.memoPrevFP = fp
	m.memoPrevFed = fed
	m.memoNextFed = fed + m.memoStep
}

// memoFinalize closes a recording after drain: the last window captures the
// pipeline-drain tail, so the chain reproduces the exact end-of-run
// counter block. Only a chain recorded through the full stream installs as
// complete (replayable).
func (m *Machine) memoFinalize(fed int) {
	m.memoBoundary(fed)
	ch := m.memoRec
	ch.complete = fed == ch.key.n
	m.memo.install(ch)
	m.memo.stats.RunsRecorded++
	m.memoResetRecording()
}
