package workload

import "sync"

// progCache memoizes Generate by profile. Generation is deterministic in
// the profile (the walker owns all run-time randomness via its own seeded
// rng), and a Program is immutable once built, so one synthesized program
// can safely back any number of concurrent streams. The experiment matrix
// previously regenerated every application once per model — 7× the work.
var progCache sync.Map // Profile -> *Program

// GenerateCached returns the memoized program for the profile, synthesizing
// it on first use. The returned Program must be treated as read-only (all
// in-tree consumers already do: streams keep their own cursor state).
func GenerateCached(prof Profile) *Program {
	if p, ok := progCache.Load(prof); ok {
		return p.(*Program)
	}
	p := Generate(prof)
	actual, _ := progCache.LoadOrStore(prof, p)
	return actual.(*Program)
}
