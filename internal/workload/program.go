package workload

import (
	"math/rand"

	"parrot/internal/isa"
)

// TermKind describes how a basic block transfers control.
type TermKind uint8

// Block terminators.
const (
	TermFall     TermKind = iota // no CTI; flows into Fall
	TermCond                     // conditional branch: Taken or Fall
	TermJmp                      // unconditional jump to Taken
	TermIndJmp                   // indirect jump (dynamic target = Taken)
	TermCall                     // call Callee, then continue at Fall
	TermRet                      // return to caller
	TermLoopBack                 // conditional backward branch: Taken = loop head
)

// Block is a synthesized basic block.
type Block struct {
	ID    int
	Insts []*isa.Inst

	// MemStream parallels Insts: the address-stream id of each memory
	// instruction, or -1.
	MemStream []int32

	Term   TermKind
	Taken  *Block // taken target (loop head for TermLoopBack)
	Fall   *Block // fall-through successor
	Callee *Proc

	// Branch dynamics for TermCond.
	Bias    float64 // probability of taking the branch
	Pattern bool    // follows a learnable period-2 pattern instead of Bias
}

// PC returns the address of the block's first instruction.
func (b *Block) PC() uint64 {
	if len(b.Insts) == 0 {
		return 0
	}
	return b.Insts[0].PC
}

// NumUops returns the decoded uop count of the block.
func (b *Block) NumUops() int {
	n := 0
	for _, in := range b.Insts {
		n += len(in.Uops)
	}
	return n
}

// Proc is a callable procedure: a linear chain of blocks ending in TermRet.
type Proc struct {
	ID     int
	Blocks []*Block
}

// Loop is a hot loop: Body[0] is the header; the last body block ends with a
// backward conditional branch to the header.
type Loop struct {
	ID      int
	Body    []*Block
	TripMin int
	TripMax int
	Weight  float64 // zipf popularity weight
}

// Program is the synthesized static program for one application.
type Program struct {
	Prof  Profile
	Loops []*Loop
	Cold  []*Block // cold-region blocks, walked in chains
	Procs []*Proc  // leaf procedures callable from hot and cold code

	blocks   []*Block
	nStreams int
}

// Blocks returns every block of the program.
func (p *Program) Blocks() []*Block { return p.blocks }

// NumStreams returns the number of distinct memory address streams.
func (p *Program) NumStreams() int { return p.nStreams }

// StaticInsts counts the static instructions of the program.
func (p *Program) StaticInsts() int {
	n := 0
	for _, b := range p.blocks {
		n += len(b.Insts)
	}
	return n
}

// gen carries generator state during program synthesis.
type gen struct {
	prof    Profile
	rng     *rand.Rand
	nextID  int
	streams int

	recent   []isa.Reg // recently written GPRs, for dependency shaping
	recentFP []isa.Reg
}

// Generate synthesizes the static program for a profile. The result is
// deterministic in the profile (including its seed).
func Generate(prof Profile) *Program {
	g := &gen{
		prof: prof,
		rng:  rand.New(rand.NewSource(prof.Seed)),
	}
	p := &Program{Prof: prof}

	// Leaf procedures shared by hot loops.
	nHotProcs := maxInt(2, prof.NumLoops/3)
	for i := 0; i < nHotProcs; i++ {
		p.Procs = append(p.Procs, g.genProc(p, true))
	}

	// Hot loops with zipf popularity.
	for i := 0; i < prof.NumLoops; i++ {
		p.Loops = append(p.Loops, g.genLoop(p, i, p.Procs[:nHotProcs]))
	}

	// Cold leaf procedures.
	nColdProcs := maxInt(2, prof.ColdBlocks/100)
	coldProcs := make([]*Proc, 0, nColdProcs)
	for i := 0; i < nColdProcs; i++ {
		pr := g.genProc(p, false)
		coldProcs = append(coldProcs, pr)
		p.Procs = append(p.Procs, pr)
	}

	// Cold region.
	for i := 0; i < prof.ColdBlocks; i++ {
		b := g.genBlock(p, false, g.intBetween(prof.BlockInsts))
		p.Cold = append(p.Cold, b)
	}
	// Wire cold blocks into implicit chains: terminators are assigned when
	// walked; statically give each a biased conditional or jump forward.
	for i, b := range p.Cold {
		next := p.Cold[(i+1)%len(p.Cold)]
		skip := p.Cold[(i+2)%len(p.Cold)]
		switch r := g.rng.Float64(); {
		case r < 0.45:
			g.terminate(b, TermCond, skip, next, -1, g.rng.Float64() < prof.CondPattern)
		case r < 0.68:
			g.terminate(b, TermJmp, next, nil, 0, false)
		case r < 0.70:
			g.terminate(b, TermIndJmp, next, nil, 0, false)
		case r < 0.80:
			b.Callee = coldProcs[g.rng.Intn(len(coldProcs))]
			g.terminate(b, TermCall, nil, next, 0, false)
		default:
			b.Term = TermFall
			b.Fall = next
		}
	}

	p.nStreams = g.streams
	g.layout(p)
	return p
}

// genLoop builds one hot loop.
func (g *gen) genLoop(p *Program, rank int, procs []*Proc) *Loop {
	prof := g.prof
	l := &Loop{
		ID:      rank,
		TripMin: g.intBetween(prof.TripCount),
		Weight:  1 / float64(rank+1), // zipf(1)
	}
	l.TripMax = l.TripMin + g.rng.Intn(maxInt(1, l.TripMin/2)+1)

	n := g.intBetween(prof.LoopBlocks)
	body := make([]*Block, n)
	for i := range body {
		body[i] = g.genBlock(p, true, g.intBetween(prof.BlockInsts))
	}
	// Wire the body: optional hammock (block i conditionally skips i+1),
	// optional call, fall-through otherwise; last block loops back.
	for i := 0; i < n-1; i++ {
		b := body[i]
		switch {
		case i+2 < n && g.rng.Float64() < prof.HammockProb:
			g.terminate(b, TermCond, body[i+2], body[i+1], g.drawBiasHot(), g.rng.Float64() < prof.CondPattern)
		case g.rng.Float64() < prof.CallProb && len(procs) > 0:
			b.Callee = procs[g.rng.Intn(len(procs))]
			g.terminate(b, TermCall, nil, body[i+1], 0, false)
		default:
			b.Term = TermFall
			b.Fall = body[i+1]
		}
	}
	g.terminate(body[n-1], TermLoopBack, body[0], nil, 0, false)
	l.Body = body
	return l
}

// genProc builds a small leaf procedure (1-2 blocks ending in ret).
func (g *gen) genProc(p *Program, hot bool) *Proc {
	pr := &Proc{ID: g.nextID}
	n := 1 + g.rng.Intn(2)
	for i := 0; i < n; i++ {
		sz := maxInt(2, g.intBetween(g.prof.BlockInsts)/2)
		b := g.genBlock(p, hot, sz)
		if i < n-1 {
			b.Term = TermFall
		} else {
			g.terminate(b, TermRet, nil, nil, 0, false)
		}
		pr.Blocks = append(pr.Blocks, b)
	}
	for i := 0; i+1 < n; i++ {
		pr.Blocks[i].Fall = pr.Blocks[i+1]
	}
	return pr
}

// drawBias draws a per-branch direction bias: a CondHardFrac minority of
// branches are near-random; the rest are heavily biased in a random
// polarity, as in real programs where a few hard branches dominate the
// misprediction rate.
func (g *gen) drawBias() float64 { return g.drawBiasFrac(g.prof.CondHardFrac) }

// drawBiasHot draws a bias for branches inside hot loops, which the paper
// observes are markedly more regular and predictable than cold code (§2.1).
func (g *gen) drawBiasHot() float64 { return g.drawBiasFrac(g.prof.CondHardFrac * 0.3) }

func (g *gen) drawBiasFrac(hardFrac float64) float64 {
	var bias float64
	if g.rng.Float64() < hardFrac {
		bias = 0.5 + 0.2*g.rng.Float64() // hard
	} else {
		span := 0.995 - g.prof.CondBias
		bias = g.prof.CondBias + span*g.rng.Float64() // easy
	}
	if g.rng.Float64() < 0.5 {
		bias = 1 - bias
	}
	return bias
}

// terminate appends the terminator instruction for the given kind and links
// successors.
func (g *gen) terminate(b *Block, kind TermKind, taken, fall *Block, bias float64, pattern bool) {
	b.Term = kind
	b.Taken = taken
	b.Fall = fall
	b.Bias = bias
	if kind == TermCond && b.Bias < 0 {
		b.Bias = g.drawBias()
	}
	b.Pattern = pattern

	switch kind {
	case TermCond, TermLoopBack:
		// cmp + br macro-instruction.
		cmp := isa.NewUop(isa.OpCmpImm)
		cmp.Dst[0] = isa.RegFlags
		cmp.Src[0] = g.srcGPR()
		cmp.Imm = int64(g.rng.Intn(64))
		br := isa.NewUop(isa.OpBr)
		br.Src[0] = isa.RegFlags
		br.Cond = isa.Cond(1 + g.rng.Intn(int(isa.NumConds)-1))
		g.appendInst(b, isa.KindBranch, []isa.Uop{cmp, br}, -1)
	case TermJmp:
		g.appendInst(b, isa.KindJump, []isa.Uop{isa.NewUop(isa.OpJmp)}, -1)
	case TermIndJmp:
		j := isa.NewUop(isa.OpJmpI)
		j.Src[0] = g.srcGPR()
		g.appendInst(b, isa.KindJumpInd, []isa.Uop{j}, -1)
	case TermCall:
		g.appendInst(b, isa.KindCall, []isa.Uop{isa.NewUop(isa.OpCall)}, -1)
	case TermRet:
		g.appendInst(b, isa.KindRet, []isa.Uop{isa.NewUop(isa.OpRet)}, -1)
	}
}

func (g *gen) intBetween(r [2]int) int {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + g.rng.Intn(r[1]-r[0]+1)
}

// Register convention of the synthesized code: r0..r11 are scratch
// (frequently written), r12..r15 are long-lived invariants — base pointers,
// loop-invariant values and constants that are read often but essentially
// never overwritten inside hot code. Reads of invariant registers have no
// producer in flight, which is where real programs get their instruction-
// level parallelism; a generator without them makes every register hot and
// collapses all code onto accidental dependency chains.
const (
	numScratchGPR = 12
	numScratchFP  = 10
)

// dstGPR picks a destination register and records it as recently written.
func (g *gen) dstGPR() isa.Reg {
	r := isa.GPR(g.rng.Intn(numScratchGPR))
	g.noteWrite(r)
	return r
}

// invariantGPR picks a long-lived register.
func (g *gen) invariantGPR() isa.Reg {
	return isa.GPR(numScratchGPR + g.rng.Intn(isa.NumGPR-numScratchGPR))
}

func (g *gen) noteWrite(r isa.Reg) {
	g.recent = append(g.recent, r)
	if len(g.recent) > 6 {
		g.recent = g.recent[1:]
	}
}

// srcGPR picks a source register: a recent write (dependency chain), a
// long-lived invariant, or an arbitrary scratch register.
func (g *gen) srcGPR() isa.Reg {
	r := g.rng.Float64()
	switch {
	case len(g.recent) > 0 && r < g.prof.DepChain:
		return g.recent[g.rng.Intn(len(g.recent))]
	case r < g.prof.DepChain+0.4:
		return g.invariantGPR()
	default:
		return isa.GPR(g.rng.Intn(numScratchGPR))
	}
}

// addrGPR picks the base register of a memory access: overwhelmingly an
// invariant base pointer, as in real base+offset addressing.
func (g *gen) addrGPR() isa.Reg {
	if g.rng.Float64() < 0.85 {
		return g.invariantGPR()
	}
	return g.srcGPR()
}

func (g *gen) dstFP() isa.Reg {
	r := isa.FPR(g.rng.Intn(numScratchFP))
	g.recentFP = append(g.recentFP, r)
	if len(g.recentFP) > 4 {
		g.recentFP = g.recentFP[1:]
	}
	return r
}

func (g *gen) srcFP() isa.Reg {
	r := g.rng.Float64()
	switch {
	case len(g.recentFP) > 0 && r < g.prof.DepChain+0.1:
		return g.recentFP[g.rng.Intn(len(g.recentFP))]
	case r < g.prof.DepChain+0.35:
		return isa.FPR(numScratchFP + g.rng.Intn(isa.NumFP-numScratchFP))
	default:
		return isa.FPR(g.rng.Intn(numScratchFP))
	}
}

// appendInst wraps uops into a macro-instruction appended to the block.
// PCs and sizes are assigned in layout; memStream < 0 means non-memory.
func (g *gen) appendInst(b *Block, kind isa.InstKind, uops []isa.Uop, memStream int32) *isa.Inst {
	in := &isa.Inst{Kind: kind, Uops: uops}
	b.Insts = append(b.Insts, in)
	b.MemStream = append(b.MemStream, memStream)
	return in
}

// streamPoolSize is the number of distinct memory address streams per
// program: real code concentrates its accesses on a handful of arrays,
// structures and the stack, shared by many static instructions.
const streamPoolSize = 20

// newStream assigns a memory instruction to an address stream from the
// shared pool, with a skewed distribution so a few streams dominate.
func (g *gen) newStream() int32 {
	g.streams = streamPoolSize
	r := g.rng.Float64()
	return int32(float64(streamPoolSize) * r * r)
}

var aluOps = []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr}
var aluImmOps = []isa.Op{isa.OpAddImm, isa.OpSubImm, isa.OpAndImm, isa.OpOrImm, isa.OpXorImm}
var fuseOps = []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor}

func (g *gen) aluOp() isa.Op  { return aluOps[g.rng.Intn(len(aluOps))] }
func (g *gen) fuseOp() isa.Op { return fuseOps[g.rng.Intn(len(fuseOps))] }

// genBlock synthesizes the body (non-terminator) instructions of one block.
// Hot blocks carry the redundancy patterns the dynamic optimizer targets;
// cold blocks are plain code.
func (g *gen) genBlock(p *Program, hot bool, nInsts int) *Block {
	prof := g.prof
	b := &Block{ID: g.nextID}
	g.nextID++

	for len(b.Insts) < nInsts {
		r := g.rng.Float64()
		switch {
		case hot && r < prof.DeadFrac:
			g.emitDeadPair(b)
		case hot && r < prof.DeadFrac+prof.ConstFrac:
			g.emitConstChain(b)
		case hot && r < prof.DeadFrac+prof.ConstFrac+prof.CopyFrac:
			g.emitCopyChain(b)
		case hot && r < prof.DeadFrac+prof.ConstFrac+prof.CopyFrac+prof.FuseFrac:
			g.emitFusePair(b)
		case hot && r < prof.DeadFrac+prof.ConstFrac+prof.CopyFrac+prof.FuseFrac+prof.SimdFrac:
			g.emitSimdPair(b)
		default:
			g.emitMixed(b)
		}
	}
	// Trim overshoot from multi-instruction patterns.
	if len(b.Insts) > nInsts {
		b.Insts = b.Insts[:nInsts]
		b.MemStream = b.MemStream[:nInsts]
	}
	return b
}

// emitMixed emits one instruction drawn from the profile's mix.
func (g *gen) emitMixed(b *Block) {
	prof := g.prof
	r := g.rng.Float64()
	switch {
	case r < prof.FracMem:
		g.emitMem(b)
	case r < prof.FracMem+prof.FracFP:
		g.emitFP(b)
	case r < prof.FracMem+prof.FracFP+prof.FracMulDiv:
		op := isa.OpMul
		if g.rng.Float64() < 0.2 {
			op = isa.OpDiv
		}
		u := isa.NewUop(op)
		u.Src[0] = g.srcGPR()
		u.Src[1] = g.srcGPR()
		u.Dst[0] = g.dstGPR()
		g.appendInst(b, isa.KindSimple, []isa.Uop{u}, -1)
	case r < prof.FracMem+prof.FracFP+prof.FracMulDiv+prof.ComplexFrac:
		g.emitComplex(b)
	default:
		g.emitALU(b)
	}
}

func (g *gen) emitALU(b *Block) {
	var u isa.Uop
	if g.rng.Float64() < 0.4 {
		u = isa.NewUop(aluImmOps[g.rng.Intn(len(aluImmOps))])
		u.Src[0] = g.srcGPR()
		u.Imm = int64(g.rng.Intn(256))
	} else {
		u = isa.NewUop(g.aluOp())
		u.Src[0] = g.srcGPR()
		u.Src[1] = g.srcGPR()
	}
	u.Dst[0] = g.dstGPR()
	g.appendInst(b, isa.KindSimple, []isa.Uop{u}, -1)
}

func (g *gen) emitFP(b *Block) {
	if g.rng.Float64() < 0.45 {
		// Multiply-add pair (dot-product style): fmul t,a,b; fadd t,t,c.
		// The intermediate dies at the add — the canonical FP fusion
		// opportunity.
		t := g.dstFP()
		mul := isa.NewUop(isa.OpFMul)
		mul.Src[0] = g.srcFP()
		mul.Src[1] = g.srcFP()
		mul.Dst[0] = t
		add := isa.NewUop(isa.OpFAdd)
		add.Src[0] = t
		add.Src[1] = g.srcFP()
		if add.Src[1] == t {
			add.Src[1] = isa.FPR((int(t) - int(isa.GPR(0)) + 1) % numScratchFP)
		}
		add.Dst[0] = t
		g.appendInst(b, isa.KindSimple, []isa.Uop{mul}, -1)
		g.appendInst(b, isa.KindSimple, []isa.Uop{add}, -1)
		return
	}
	ops := []isa.Op{isa.OpFAdd, isa.OpFAdd, isa.OpFMul, isa.OpFMul, isa.OpFDiv}
	u := isa.NewUop(ops[g.rng.Intn(len(ops))])
	if u.Op == isa.OpFDiv && g.rng.Float64() < 0.8 {
		u.Op = isa.OpFMul // divides stay rare
	}
	u.Src[0] = g.srcFP()
	u.Src[1] = g.srcFP()
	u.Dst[0] = g.dstFP()
	g.appendInst(b, isa.KindSimple, []isa.Uop{u}, -1)
}

func (g *gen) emitMem(b *Block) {
	sid := g.newStream()
	if g.rng.Float64() < 0.65 { // loads outnumber stores ~2:1
		if g.rng.Float64() < 0.35 {
			// load-op: 2 uops.
			ld := isa.NewUop(isa.OpLoad)
			ld.Src[0] = g.addrGPR()
			ld.Imm = int64(g.rng.Intn(128)) * 8
			t := g.dstGPR()
			ld.Dst[0] = t
			op := isa.NewUop(g.aluOp())
			op.Src[0] = t
			op.Src[1] = g.srcGPR()
			op.Dst[0] = g.dstGPR()
			g.appendInst(b, isa.KindSimple, []isa.Uop{ld, op}, sid)
			return
		}
		ld := isa.NewUop(isa.OpLoad)
		ld.Src[0] = g.addrGPR()
		ld.Imm = int64(g.rng.Intn(128)) * 8
		if g.prof.FracFP > 0.1 && g.rng.Float64() < g.prof.FracFP {
			ld.Dst[0] = g.dstFP()
		} else {
			ld.Dst[0] = g.dstGPR()
		}
		g.appendInst(b, isa.KindSimple, []isa.Uop{ld}, sid)
		return
	}
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = g.addrGPR()
	st.Src[1] = g.srcGPR()
	st.Imm = int64(g.rng.Intn(128)) * 8
	g.appendInst(b, isa.KindSimple, []isa.Uop{st}, sid)
}

// emitComplex emits a 3-4 uop macro-instruction (read-modify-write style)
// that requires the complex decoder slot.
func (g *gen) emitComplex(b *Block) {
	sid := g.newStream()
	base := g.addrGPR()
	off := int64(g.rng.Intn(64)) * 8
	t := g.dstGPR()
	ld := isa.NewUop(isa.OpLoad)
	ld.Src[0] = base
	ld.Imm = off
	ld.Dst[0] = t
	op := isa.NewUop(g.aluOp())
	op.Src[0] = t
	op.Src[1] = g.srcGPR()
	op.Dst[0] = t
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = base
	st.Src[1] = t
	st.Imm = off
	uops := []isa.Uop{ld, op, st}
	if g.rng.Float64() < 0.3 {
		extra := isa.NewUop(isa.OpAddImm)
		extra.Src[0] = base
		extra.Imm = 8
		extra.Dst[0] = g.dstGPR()
		uops = append(uops, extra)
	}
	g.appendInst(b, isa.KindComplex, uops, sid)
}

// emitDeadPair emits a write to a register immediately overwritten by the
// next instruction without an intervening read — removable by DCE.
func (g *gen) emitDeadPair(b *Block) {
	victim := isa.GPR(g.rng.Intn(numScratchGPR))
	dead := isa.NewUop(g.aluOp())
	dead.Src[0] = g.srcGPR()
	dead.Src[1] = g.srcGPR()
	dead.Dst[0] = victim
	g.appendInst(b, isa.KindSimple, []isa.Uop{dead}, -1)

	over := isa.NewUop(aluImmOps[g.rng.Intn(len(aluImmOps))])
	over.Src[0] = g.srcGPR() // may read victim? avoid:
	if over.Src[0] == victim {
		over.Src[0] = isa.GPR((int(victim) + 1) % numScratchGPR)
	}
	over.Imm = int64(g.rng.Intn(128))
	over.Dst[0] = victim
	g.noteWrite(victim)
	g.appendInst(b, isa.KindSimple, []isa.Uop{over}, -1)
}

// emitConstChain emits movi followed by a dependent immediate ALU op —
// foldable to a single movi by constant propagation, with the first movi
// then dead if its target is overwritten.
func (g *gen) emitConstChain(b *Block) {
	a := isa.GPR(g.rng.Intn(numScratchGPR))
	mv := isa.NewUop(isa.OpMovImm)
	mv.Dst[0] = a
	mv.Imm = int64(g.rng.Intn(1024))
	g.appendInst(b, isa.KindSimple, []isa.Uop{mv}, -1)

	fold := isa.NewUop(aluImmOps[g.rng.Intn(3)]) // add/sub/and
	fold.Src[0] = a
	fold.Imm = int64(g.rng.Intn(256))
	fold.Dst[0] = a // overwrites the movi target: movi becomes dead post-fold
	g.noteWrite(a)
	g.appendInst(b, isa.KindSimple, []isa.Uop{fold}, -1)
}

// emitCopyChain emits mov b,a; use of b — copy propagation rewrites the use
// and a later overwrite makes the mov dead.
func (g *gen) emitCopyChain(b *Block) {
	src := g.srcGPR()
	cp := isa.GPR(g.rng.Intn(numScratchGPR))
	if cp == src {
		cp = isa.GPR((int(cp) + 3) % numScratchGPR)
	}
	mv := isa.NewUop(isa.OpMov)
	mv.Src[0] = src
	mv.Dst[0] = cp
	g.appendInst(b, isa.KindSimple, []isa.Uop{mv}, -1)

	use := isa.NewUop(g.aluOp())
	use.Src[0] = cp
	use.Src[1] = g.srcGPR()
	use.Dst[0] = cp // overwrite the copy: mov becomes dead after copy-prop
	g.noteWrite(cp)
	g.appendInst(b, isa.KindSimple, []isa.Uop{use}, -1)
}

// emitFusePair emits a dependent ALU pair with single-use intermediate —
// fusable into one packed uop.
func (g *gen) emitFusePair(b *Block) {
	t := isa.GPR(g.rng.Intn(numScratchGPR))
	u1 := isa.NewUop(g.fuseOp())
	u1.Src[0] = g.srcGPR()
	u1.Src[1] = g.srcGPR()
	u1.Dst[0] = t
	g.appendInst(b, isa.KindSimple, []isa.Uop{u1}, -1)

	u2 := isa.NewUop(g.fuseOp())
	u2.Src[0] = t
	u2.Src[1] = g.srcGPR()
	if u2.Src[1] == t {
		u2.Src[1] = isa.GPR((int(t) + 5) % numScratchGPR)
	}
	u2.Dst[0] = t // intermediate value dies here
	g.noteWrite(t)
	g.appendInst(b, isa.KindSimple, []isa.Uop{u2}, -1)
}

// emitSimdPair emits two adjacent independent same-op ALU instructions —
// packable into one SIMD uop.
func (g *gen) emitSimdPair(b *Block) {
	op := g.fuseOp()
	d1 := isa.GPR(g.rng.Intn(numScratchGPR / 2))
	d2 := isa.GPR(numScratchGPR/2 + g.rng.Intn(numScratchGPR/2))
	u1 := isa.NewUop(op)
	u1.Src[0] = g.srcGPR()
	u1.Src[1] = g.srcGPR()
	u1.Dst[0] = d1
	u2 := isa.NewUop(op)
	u2.Src[0] = g.srcGPR()
	u2.Src[1] = g.srcGPR()
	u2.Dst[0] = d2
	// Lane independence: the second op must not read the first's result.
	for i := 0; i < 2; i++ {
		if u2.Src[i] == d1 {
			u2.Src[i] = isa.GPR((int(d1) + 7) % numScratchGPR)
		}
	}
	g.noteWrite(d1)
	g.noteWrite(d2)
	g.appendInst(b, isa.KindSimple, []isa.Uop{u1}, -1)
	g.appendInst(b, isa.KindSimple, []isa.Uop{u2}, -1)
}

// layout assigns PCs and encoded sizes: hot loops and procedures are packed
// at low addresses (small, cache-resident footprint), cold blocks spread
// after them, giving the cold region its instruction-cache pressure.
func (g *gen) layout(p *Program) {
	pc := uint64(0x0040_0000)
	place := func(b *Block) {
		for _, in := range b.Insts {
			in.PC = pc
			in.Size = g.instSize(in)
			pc += uint64(in.Size)
		}
		p.blocks = append(p.blocks, b)
	}
	for _, l := range p.Loops {
		for _, b := range l.Body {
			place(b)
		}
	}
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			place(b)
		}
	}
	pc += 4096 // gap between hot and cold regions
	for _, b := range p.Cold {
		place(b)
		pc += uint64(g.rng.Intn(32)) // sparse cold layout
	}
	// Resolve static branch targets now that PCs exist.
	for _, b := range p.blocks {
		if len(b.Insts) == 0 {
			continue
		}
		last := b.Insts[len(b.Insts)-1]
		switch b.Term {
		case TermCond, TermLoopBack, TermJmp:
			if b.Taken != nil {
				last.Target = b.Taken.PC()
			}
		case TermCall:
			if b.Callee != nil && len(b.Callee.Blocks) > 0 {
				last.Target = b.Callee.Blocks[0].PC()
			}
		}
	}
}

// instSize draws a plausible IA32 encoding length for the instruction.
func (g *gen) instSize(in *isa.Inst) uint8 {
	switch in.Kind {
	case isa.KindComplex:
		return uint8(5 + g.rng.Intn(7))
	case isa.KindBranch, isa.KindJump:
		return uint8(2 + g.rng.Intn(4))
	case isa.KindCall:
		return 5
	case isa.KindRet:
		return 1
	default:
		if len(in.Uops) > 1 {
			return uint8(3 + g.rng.Intn(5))
		}
		return uint8(2 + g.rng.Intn(3))
	}
}
