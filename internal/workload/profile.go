// Package workload synthesizes the benchmark substrate of the study.
//
// The paper evaluates 44 proprietary IA32 application traces (SpecInt 2000,
// SpecFP 2000, SysMark 2000 office, multimedia and .NET suites, 30–100M
// instructions each). Those traces are not available, so this package builds
// the closest synthetic equivalent: for each named application a seeded
// generator synthesizes a static program (hot loops, cold call chains,
// procedures) and walks it to produce a dynamic instruction stream. The
// stream's distributional properties — hot/cold working-set skew, basic
// block sizes, branch predictability, dependency density (ILP), memory
// locality and the redundancy available to a dynamic optimizer — are set per
// suite to match the qualitative characteristics the paper relies on
// (regular, predictable FP code with ~90% trace coverage vs irregular
// control-intensive integer code at 60–70%, §4.2).
//
// Everything is deterministic: the same profile always generates the same
// program and the same dynamic stream.
package workload

import "fmt"

// Suite classifies applications into the paper's five benchmark groups.
type Suite uint8

// Benchmark suites of the study (§3.4).
const (
	SpecInt Suite = iota
	SpecFP
	Office
	Multimedia
	DotNet
	NumSuites
)

var suiteNames = [...]string{"SpecInt", "SpecFP", "Office", "Multimedia", "DotNet"}

// String implements fmt.Stringer.
func (s Suite) String() string {
	if int(s) < len(suiteNames) {
		return suiteNames[s]
	}
	return fmt.Sprintf("suite?%d", int(s))
}

// Profile parameterizes the synthetic generator for one application.
type Profile struct {
	Name  string
	Suite Suite
	Seed  int64

	// Instructions is the default dynamic stream length.
	Instructions int

	// Control structure.
	HotFraction float64 // fraction of dynamic instructions spent in hot loops
	NumLoops    int     // static hot loops (popularity is zipf-distributed)
	LoopBlocks  [2]int  // min,max body blocks per loop
	BlockInsts  [2]int  // min,max instructions per basic block
	TripCount   [2]int  // min,max iterations per loop entry
	HammockProb float64 // probability a loop body includes an if-then hammock
	CallProb    float64 // probability a loop body calls a leaf procedure
	ColdBlocks  int     // static cold-region size in blocks
	ColdChain   [2]int  // min,max blocks walked per cold episode

	// Branch behaviour of non-loop conditionals. Most branches are heavily
	// biased (CondBias is the mean easy-branch bias); CondHardFrac of them
	// are hard, near-random branches — the minority that dominates the
	// misprediction rate of irregular integer code.
	CondBias     float64 // mean bias of easy branches (≈0.9-0.97)
	CondHardFrac float64 // fraction of hard (near-random) branches
	CondPattern  float64 // fraction following a learnable period-2 pattern

	// Instruction mix (fractions of non-CTI instructions; remainder is ALU).
	FracFP      float64
	FracMem     float64 // loads+stores
	FracMulDiv  float64
	ComplexFrac float64 // fraction decoding to 3+ uops

	// DepChain in [0,1]: probability an operand reads a recently written
	// register, producing serial dependency chains (high for irregular
	// integer code, low for parallel FP code).
	DepChain float64

	// Memory behaviour.
	WSData     int     // data working set in bytes
	StrideFrac float64 // fraction of memory streams that are strided

	// Redundancy visible to the dynamic optimizer inside hot code.
	DeadFrac  float64 // dead writes (overwritten before read)
	ConstFrac float64 // constant-foldable movi/alu-imm chains
	CopyFrac  float64 // copy chains (mov propagation)
	FuseFrac  float64 // adjacent dependent ALU pairs (fusable)
	SimdFrac  float64 // adjacent independent same-op pairs (SIMDifiable)
}

// suiteBase returns the template profile for a suite. Individual apps jitter
// these parameters deterministically from their seed.
func suiteBase(s Suite) Profile {
	switch s {
	case SpecInt:
		return Profile{
			Suite: SpecInt, Instructions: 200_000,
			HotFraction: 0.80, NumLoops: 24,
			LoopBlocks: [2]int{1, 4}, BlockInsts: [2]int{4, 9},
			TripCount: [2]int{12, 56}, HammockProb: 0.55, CallProb: 0.30,
			ColdBlocks: 1000, ColdChain: [2]int{20, 80},
			CondBias: 0.95, CondHardFrac: 0.10, CondPattern: 0.25,
			FracFP: 0.02, FracMem: 0.34, FracMulDiv: 0.03, ComplexFrac: 0.10,
			DepChain: 0.20,
			WSData:   1 << 20, StrideFrac: 0.35,
			DeadFrac: 0.004, ConstFrac: 0.003, CopyFrac: 0.004,
			FuseFrac: 0.007, SimdFrac: 0.003,
		}
	case SpecFP:
		return Profile{
			Suite: SpecFP, Instructions: 200_000,
			HotFraction: 0.95, NumLoops: 8,
			LoopBlocks: [2]int{1, 2}, BlockInsts: [2]int{7, 14},
			TripCount: [2]int{40, 400}, HammockProb: 0.15, CallProb: 0.10,
			ColdBlocks: 500, ColdChain: [2]int{12, 48},
			CondBias: 0.97, CondHardFrac: 0.03, CondPattern: 0.40,
			FracFP: 0.38, FracMem: 0.36, FracMulDiv: 0.02, ComplexFrac: 0.06,
			DepChain: 0.10,
			WSData:   8 << 20, StrideFrac: 0.90,
			DeadFrac: 0.003, ConstFrac: 0.003, CopyFrac: 0.003,
			FuseFrac: 0.006, SimdFrac: 0.008,
		}
	case Office:
		return Profile{
			Suite: Office, Instructions: 200_000,
			HotFraction: 0.72, NumLoops: 30,
			LoopBlocks: [2]int{1, 4}, BlockInsts: [2]int{3, 8},
			TripCount: [2]int{10, 44}, HammockProb: 0.60, CallProb: 0.40,
			ColdBlocks: 1400, ColdChain: [2]int{24, 100},
			CondBias: 0.94, CondHardFrac: 0.12, CondPattern: 0.20,
			FracFP: 0.01, FracMem: 0.38, FracMulDiv: 0.02, ComplexFrac: 0.14,
			DepChain: 0.20,
			WSData:   2 << 20, StrideFrac: 0.30,
			DeadFrac: 0.005, ConstFrac: 0.004, CopyFrac: 0.005,
			FuseFrac: 0.006, SimdFrac: 0.003,
		}
	case Multimedia:
		return Profile{
			Suite: Multimedia, Instructions: 200_000,
			HotFraction: 0.88, NumLoops: 14,
			LoopBlocks: [2]int{1, 3}, BlockInsts: [2]int{6, 12},
			TripCount: [2]int{16, 120}, HammockProb: 0.35, CallProb: 0.20,
			ColdBlocks: 900, ColdChain: [2]int{16, 64},
			CondBias: 0.96, CondHardFrac: 0.06, CondPattern: 0.35,
			FracFP: 0.18, FracMem: 0.35, FracMulDiv: 0.05, ComplexFrac: 0.09,
			DepChain: 0.14,
			WSData:   4 << 20, StrideFrac: 0.75,
			DeadFrac: 0.004, ConstFrac: 0.004, CopyFrac: 0.004,
			FuseFrac: 0.007, SimdFrac: 0.007,
		}
	case DotNet:
		return Profile{
			Suite: DotNet, Instructions: 200_000,
			HotFraction: 0.82, NumLoops: 18,
			LoopBlocks: [2]int{1, 3}, BlockInsts: [2]int{5, 10},
			TripCount: [2]int{12, 64}, HammockProb: 0.45, CallProb: 0.45,
			ColdBlocks: 1100, ColdChain: [2]int{20, 80},
			CondBias: 0.95, CondHardFrac: 0.10, CondPattern: 0.30,
			FracFP: 0.10, FracMem: 0.36, FracMulDiv: 0.03, ComplexFrac: 0.11,
			DepChain: 0.17,
			WSData:   3 << 20, StrideFrac: 0.50,
			DeadFrac: 0.005, ConstFrac: 0.004, CopyFrac: 0.005,
			FuseFrac: 0.007, SimdFrac: 0.004,
		}
	}
	panic(fmt.Sprintf("workload: unknown suite %d", s))
}

// app builds a named application profile from its suite template with
// deterministic per-app parameter jitter derived from the seed.
func app(name string, s Suite, seed int64, tweak func(*Profile)) Profile {
	p := suiteBase(s)
	p.Name = name
	p.Seed = seed
	// Deterministic mild jitter so apps within a suite differ.
	j := func(k int64) float64 { // in [-1,1]
		x := seed*2654435761 + k*40503
		x ^= x >> 13
		x *= 1099511628211
		x ^= x >> 29
		return float64(int64(uint64(x)%2001)-1000) / 1000
	}
	p.HotFraction = clamp01(p.HotFraction + 0.05*j(1))
	p.CondBias = clamp(p.CondBias+0.02*j(2), 0.85, 0.99)
	p.CondHardFrac = clamp(p.CondHardFrac+0.05*j(10), 0.02, 0.5)
	p.DepChain = clamp01(p.DepChain + 0.08*j(3))
	p.FracMem = clamp(p.FracMem+0.04*j(4), 0.1, 0.5)
	p.NumLoops = maxInt(3, p.NumLoops+int(4*j(5)))
	p.TripCount[0] = maxInt(2, p.TripCount[0]+int(float64(p.TripCount[0])*0.3*j(6)))
	p.TripCount[1] = maxInt(p.TripCount[0]+1, p.TripCount[1]+int(float64(p.TripCount[1])*0.3*j(7)))
	p.SimdFrac = clamp01(p.SimdFrac + 0.01*j(8))
	p.FuseFrac = clamp01(p.FuseFrac + 0.01*j(9))
	if tweak != nil {
		tweak(&p)
	}
	return p
}

func clamp01(v float64) float64 { return clamp(v, 0, 1) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Apps returns the full 44-application benchmark suite of the study.
// The three "killer applications" the paper highlights — flash (multimedia),
// wupwise (SpecFP) and perlbmk (SpecInt) — are tuned toward high trace
// affinity and optimizer-visible redundancy, as their measured behaviour in
// the paper indicates.
func Apps() []Profile {
	var out []Profile
	add := func(p Profile) { out = append(out, p) }

	// SpecInt 2000 (11 apps).
	add(app("bzip", SpecInt, 101, nil))
	add(app("crafty", SpecInt, 102, nil))
	add(app("eon", SpecInt, 103, func(p *Profile) { p.FracFP = 0.10 }))
	add(app("gap", SpecInt, 104, nil))
	add(app("gcc", SpecInt, 105, func(p *Profile) {
		p.HotFraction = 0.68
		p.ColdBlocks = 1600
		p.CondHardFrac = 0.10
	}))
	add(app("gzip", SpecInt, 106, func(p *Profile) { p.HotFraction = 0.84 }))
	add(app("parser", SpecInt, 107, nil))
	add(app("perlbmk", SpecInt, 108, func(p *Profile) {
		// Killer app: unusually hot, trace-friendly integer code.
		p.HotFraction = 0.88
		p.NumLoops = 10
		p.TripCount = [2]int{12, 60}
		p.CondHardFrac = 0.06
		p.DeadFrac, p.ConstFrac, p.CopyFrac = 0.010, 0.008, 0.010
		p.FuseFrac, p.SimdFrac = 0.014, 0.007
	}))
	add(app("twolf", SpecInt, 109, nil))
	add(app("vortex", SpecInt, 110, func(p *Profile) { p.ColdBlocks = 1500 }))
	add(app("vpr", SpecInt, 111, nil))

	// SpecFP 2000 (11 apps).
	add(app("ammp", SpecFP, 201, nil))
	add(app("apsi", SpecFP, 202, nil))
	add(app("art", SpecFP, 203, func(p *Profile) { p.WSData = 16 << 20 }))
	add(app("equake", SpecFP, 204, func(p *Profile) { p.StrideFrac = 0.6 }))
	add(app("facerec", SpecFP, 205, nil))
	add(app("fma3d", SpecFP, 206, nil))
	add(app("lucas", SpecFP, 207, func(p *Profile) { p.WSData = 12 << 20 }))
	add(app("mesa", SpecFP, 208, func(p *Profile) { p.FracFP = 0.25; p.HotFraction = 0.88 }))
	add(app("sixtrack", SpecFP, 209, nil))
	add(app("swim", SpecFP, 210, func(p *Profile) {
		// Highest average dynamic power on the base OOO model (the paper's
		// P_MAX anchor for the leakage formula): very regular, very parallel
		// streaming FP code that keeps every execution resource busy.
		p.HotFraction = 0.97
		p.NumLoops = 4
		p.TripCount = [2]int{200, 600}
		p.DepChain = 0.10
		p.FracFP = 0.5
		p.FracFP = 0.44
		p.StrideFrac = 0.98
		p.WSData = 2 << 20
		p.CondHardFrac = 0.03
	}))
	add(app("wupwise", SpecFP, 211, func(p *Profile) {
		// Killer app: dense FP loops with heavy optimizer-visible redundancy.
		p.HotFraction = 0.96
		p.NumLoops = 6
		p.DeadFrac, p.ConstFrac, p.CopyFrac = 0.008, 0.007, 0.008
		p.FuseFrac, p.SimdFrac = 0.012, 0.016
		p.DepChain = 0.14
	}))

	// Office / Windows applications from SysMark 2000 (6 apps).
	add(app("excel", Office, 301, nil))
	add(app("office", Office, 302, nil))
	add(app("powerpoint", Office, 303, nil))
	add(app("virusscan", Office, 304, func(p *Profile) { p.HotFraction = 0.78; p.StrideFrac = 0.6 }))
	add(app("winzip", Office, 305, func(p *Profile) { p.HotFraction = 0.78 }))
	add(app("word", Office, 306, nil))

	// Multimedia (11 apps).
	add(app("flash", Multimedia, 401, func(p *Profile) {
		// Killer app: the paper's highest overall improvement.
		p.HotFraction = 0.93
		p.NumLoops = 8
		p.TripCount = [2]int{24, 160}
		p.CondHardFrac = 0.06
		p.DeadFrac, p.ConstFrac, p.CopyFrac = 0.010, 0.008, 0.009
		p.FuseFrac, p.SimdFrac = 0.013, 0.014
		p.DepChain = 0.18
	}))
	add(app("photoshop", Multimedia, 402, nil))
	add(app("dragon", Multimedia, 403, nil))
	add(app("lightwave", Multimedia, 404, func(p *Profile) { p.FracFP = 0.25 }))
	add(app("quake3", Multimedia, 405, func(p *Profile) { p.FracFP = 0.22 }))
	add(app("3dsmax-light", Multimedia, 406, nil))
	add(app("3dsmax-aniso", Multimedia, 407, nil))
	add(app("3dsmax-raster", Multimedia, 408, func(p *Profile) { p.SimdFrac = 0.009 }))
	add(app("3dsmax-geom", Multimedia, 409, func(p *Profile) { p.FracFP = 0.28 }))
	add(app("flask-mpeg4-a", Multimedia, 410, func(p *Profile) { p.SimdFrac = 0.010 }))
	add(app("flask-mpeg4-b", Multimedia, 411, func(p *Profile) { p.SimdFrac = 0.009 }))

	// DotNet (5 apps).
	add(app("dotnet-image", DotNet, 501, nil))
	add(app("dotnet-num1", DotNet, 502, func(p *Profile) { p.FracFP = 0.20; p.HotFraction = 0.85 }))
	add(app("dotnet-num2", DotNet, 503, func(p *Profile) { p.FracFP = 0.18; p.HotFraction = 0.83 }))
	add(app("dotnet-phong1", DotNet, 504, func(p *Profile) { p.FracFP = 0.24 }))
	add(app("dotnet-phong2", DotNet, 505, func(p *Profile) { p.FracFP = 0.22 }))

	return out
}

// ByName looks up an application profile by name.
func ByName(name string) (Profile, bool) {
	for _, p := range Apps() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// KillerApps returns the three applications the paper singles out for the
// highest improvements: flash, wupwise and perlbmk.
func KillerApps() []string { return []string{"flash", "wupwise", "perlbmk"} }

// SuiteApps returns the profiles belonging to one suite.
func SuiteApps(s Suite) []Profile {
	var out []Profile
	for _, p := range Apps() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}
