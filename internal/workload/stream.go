package workload

import (
	"math/rand"
	"sync"

	"parrot/internal/isa"
)

// DynInst is one committed dynamic instruction: the static instruction plus
// its resolved control and memory behaviour.
type DynInst struct {
	Inst *isa.Inst

	// Taken is the resolved direction for CTI instructions.
	Taken bool

	// NextPC is the address of the dynamically following instruction.
	NextPC uint64

	// MemAddr is the effective address for memory instructions (0 if none).
	MemAddr uint64

	// HotPhase marks instructions generated inside a hot-loop episode.
	// It is generator ground truth used for diagnostics only — the machine
	// discovers hotness through its own filters.
	HotPhase bool

	// EpisodeEnd marks the final instruction of a walker episode. The
	// instruction behaves like an indirect control transfer (the dynamic
	// successor is unrelated code), so trace selection terminates on it.
	EpisodeEnd bool
}

// Stream walks a synthesized program, producing the dynamic instruction
// stream deterministically from the profile seed.
type Stream struct {
	prog *Program
	rng  *rand.Rand

	remaining int
	queue     []DynInst
	qpos      int

	hotEmitted  uint64
	coldEmitted uint64

	loopCDF  []float64
	coldNext int

	// Per-stream memory address state.
	strided []bool
	sbase   []uint64
	spos    []uint64
	sstride []uint64
	sregion []uint64

	// Period-2 pattern branch state, keyed by block ID.
	patState map[int]bool

	// Stats observed while walking.
	Emitted uint64
}

// NewStream builds a walker over prog emitting n dynamic instructions.
func NewStream(prog *Program, n int) *Stream {
	s := &Stream{}
	s.Init(prog, n)
	return s
}

// Init (re)initializes the walker over prog for n dynamic instructions,
// reusing the stream's buffers. An Init-ed stream is indistinguishable from
// a fresh NewStream one: the rng is reseeded, and all episode, queue and
// address-stream state is rebuilt from the program — the property the
// pooled-vs-fresh determinism tests in core cover. GetStream/PutStream
// recycle streams through a pool so the steady-state experiment loop
// allocates no walker state at all.
func (s *Stream) Init(prog *Program, n int) {
	s.prog = prog
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(prog.Prof.Seed + 1))
	} else {
		// Same generator state as rand.New(rand.NewSource(seed)).
		s.rng.Seed(prog.Prof.Seed + 1)
	}
	s.remaining = n
	s.queue = s.queue[:0]
	s.qpos = 0
	s.hotEmitted, s.coldEmitted = 0, 0
	s.loopCDF = s.loopCDF[:0]
	s.coldNext = 0
	if s.patState == nil {
		s.patState = make(map[int]bool)
	} else {
		clear(s.patState)
	}
	s.Emitted = 0

	// Zipf CDF over loops.
	total := 0.0
	for _, l := range prog.Loops {
		total += l.Weight
	}
	acc := 0.0
	for _, l := range prog.Loops {
		acc += l.Weight / total
		s.loopCDF = append(s.loopCDF, acc)
	}
	// Memory streams.
	ws := uint64(prog.Prof.WSData)
	if ws < 4096 {
		ws = 4096
	}
	ns := prog.NumStreams()
	s.strided = resizeBools(s.strided, ns)
	s.sbase = resizeU64s(s.sbase, ns)
	s.spos = resizeU64s(s.spos, ns)
	s.sstride = resizeU64s(s.sstride, ns)
	s.sregion = resizeU64s(s.sregion, ns)
	for i := 0; i < ns; i++ {
		switch {
		case s.rng.Float64() < 0.45:
			// Stack-like stream: tiny, cache-resident region.
			s.strided[i] = false
			s.sregion[i] = 2048
		case s.rng.Float64() < prog.Prof.StrideFrac:
			// Streaming array walk. The walked region scales with the
			// working set but is bounded per stream; large aggregate
			// working sets emerge from many concurrent streams.
			s.strided[i] = true
			region := ws / 16 << s.rng.Intn(2)
			if region < 32<<10 {
				region = 32 << 10
			}
			if region > 64<<10 {
				region = 64 << 10
			}
			s.sregion[i] = region &^ 7
			s.sstride[i] = 8
		default:
			// Pointer-ish stream with three-level temporal locality.
			s.strided[i] = false
			s.sregion[i] = ws
		}
		s.sbase[i] = 0x1000_0000 + uint64(s.rng.Intn(1<<20))*8
		s.spos[i] = uint64(s.rng.Intn(1 << 16))
	}
}

// resizeBools returns a zeroed bool slice of length n, reusing capacity.
func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// resizeU64s returns a zeroed uint64 slice of length n, reusing capacity.
func resizeU64s(u []uint64, n int) []uint64 {
	if cap(u) < n {
		return make([]uint64, n)
	}
	u = u[:n]
	clear(u)
	return u
}

// streamPool recycles walker state (episode queue, address-stream arrays,
// rng) across simulations.
var streamPool = sync.Pool{New: func() any { return new(Stream) }}

// GetStream returns a pooled stream initialized over prog for n dynamic
// instructions. Return it with PutStream when the run completes.
func GetStream(prog *Program, n int) *Stream {
	s := streamPool.Get().(*Stream)
	s.Init(prog, n)
	return s
}

// PutStream hands a stream back to the pool. The caller must not use it
// afterwards.
func PutStream(s *Stream) { streamPool.Put(s) }

// HotFractionObserved reports the fraction of emitted instructions that came
// from hot-loop episodes.
func (s *Stream) HotFractionObserved() float64 {
	t := s.hotEmitted + s.coldEmitted
	if t == 0 {
		return 0
	}
	return float64(s.hotEmitted) / float64(t)
}

// Next returns the next dynamic instruction; ok is false at stream end.
func (s *Stream) Next() (DynInst, bool) {
	if s.remaining <= 0 {
		return DynInst{}, false
	}
	for s.qpos >= len(s.queue) {
		s.refill()
	}
	d := s.queue[s.qpos]
	s.qpos++
	s.remaining--
	s.Emitted++
	return d, true
}

// Drain collects up to n instructions into a slice (testing helper).
func (s *Stream) Drain(n int) []DynInst {
	out := make([]DynInst, 0, n)
	for len(out) < n {
		d, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out
}

// refill generates the next episode into the queue.
func (s *Stream) refill() {
	s.queue = s.queue[:0]
	s.qpos = 0
	f := s.prog.Prof.HotFraction
	wantHot := float64(s.hotEmitted)*(1-f) <= float64(s.coldEmitted)*f
	if len(s.prog.Loops) == 0 {
		wantHot = false
	}
	if len(s.prog.Cold) == 0 {
		wantHot = true
	}
	var emitted int
	if wantHot {
		emitted = s.hotEpisode()
		s.hotEmitted += uint64(emitted)
	} else {
		emitted = s.coldEpisode()
		s.coldEmitted += uint64(emitted)
	}
	if len(s.queue) > 0 {
		s.queue[len(s.queue)-1].EpisodeEnd = true
	}
}

// pickLoop draws a loop according to zipf popularity.
func (s *Stream) pickLoop() *Loop {
	r := s.rng.Float64()
	for i, c := range s.loopCDF {
		if r <= c {
			return s.prog.Loops[i]
		}
	}
	return s.prog.Loops[len(s.prog.Loops)-1]
}

// hotEpisode walks one full loop execution (all iterations).
func (s *Stream) hotEpisode() int {
	l := s.pickLoop()
	trips := l.TripMin
	if l.TripMax > l.TripMin {
		trips += s.rng.Intn(l.TripMax - l.TripMin + 1)
	}
	n := 0
	for it := 0; it < trips; it++ {
		lastIter := it == trips-1
		n += s.walkBody(l, lastIter)
	}
	return n
}

// walkBody walks one loop iteration, following hammocks and calls.
func (s *Stream) walkBody(l *Loop, lastIter bool) int {
	n := 0
	b := l.Body[0]
	for b != nil {
		isLast := b.Term == TermLoopBack
		var next *Block
		switch b.Term {
		case TermLoopBack:
			// Back-edge: taken unless this is the final iteration.
			if lastIter {
				// Episode ends here; successor is unrelated code.
				n += s.emitBlock(b, true, false, 0)
			} else {
				n += s.emitBlock(b, true, true, l.Body[0].PC())
			}
			next = nil
		case TermCall:
			n += s.emitBlock(b, true, true, b.Callee.Blocks[0].PC())
			n += s.walkProc(b.Callee, true, b.Fall.PC())
			next = b.Fall
		case TermCond:
			taken := s.decide(b)
			if taken {
				next = b.Taken
			} else {
				next = b.Fall
			}
			n += s.emitBlock(b, true, taken, next.PC())
		default:
			next = b.Fall
			n += s.emitBlock(b, true, false, next.PC())
		}
		if isLast {
			break
		}
		b = next
	}
	return n
}

// walkProc walks a leaf procedure; retPC is the dynamic return address.
func (s *Stream) walkProc(p *Proc, hot bool, retPC uint64) int {
	n := 0
	for i, b := range p.Blocks {
		next := retPC
		if i+1 < len(p.Blocks) {
			next = p.Blocks[i+1].PC()
		}
		n += s.emitBlock(b, hot, b.Term == TermRet, next)
	}
	return n
}

// coldEpisode walks a chain of cold blocks.
func (s *Stream) coldEpisode() int {
	prof := s.prog.Prof
	length := prof.ColdChain[0]
	if prof.ColdChain[1] > prof.ColdChain[0] {
		length += s.rng.Intn(prof.ColdChain[1] - prof.ColdChain[0] + 1)
	}
	// Resume from where the last cold episode stopped, with occasional
	// jumps, so cold code has weak locality but a large footprint.
	if s.rng.Float64() < 0.7 {
		// Skewed restart: cold code also has preferred paths, so branch
		// predictors and caches see realistic re-reference.
		r := s.rng.Float64()
		s.coldNext = int(float64(len(s.prog.Cold)) * r * r * r * r)
	}
	n := 0
	idx := s.coldNext
	cold := s.prog.Cold
	at := func(k int) *Block { return cold[k%len(cold)] }
	for i := 0; i < length; i++ {
		b := at(idx)
		switch b.Term {
		case TermCond:
			taken := s.decide(b)
			if taken {
				idx += 2
			} else {
				idx++
			}
			n += s.emitBlock(b, false, taken, at(idx).PC())
		case TermCall:
			n += s.emitBlock(b, false, true, b.Callee.Blocks[0].PC())
			n += s.walkProc(b.Callee, false, at(idx+1).PC())
			idx++
		case TermJmp, TermIndJmp:
			n += s.emitBlock(b, false, true, at(idx+1).PC())
			idx++
		default:
			n += s.emitBlock(b, false, false, at(idx+1).PC())
			idx++
		}
	}
	s.coldNext = idx % len(cold)
	return n
}

// decide resolves a conditional branch direction from its bias or pattern.
func (s *Stream) decide(b *Block) bool {
	if b.Pattern {
		v := s.patState[b.ID]
		s.patState[b.ID] = !v
		return v
	}
	return s.rng.Float64() < b.Bias
}

// emitBlock queues all instructions of a block with resolved dynamics.
// takenTerm gives the direction of the block's terminating CTI and nextPC
// the address of the dynamically following instruction (0 when the episode
// ends and the successor is unrelated code).
func (s *Stream) emitBlock(b *Block, hot, takenTerm bool, nextPC uint64) int {
	n := len(b.Insts)
	if n == 0 {
		return 0
	}
	// Grow the queue once per block and fill the slots in place: the
	// per-instruction append in the old loop copied every DynInst twice and
	// re-checked capacity each time.
	base := len(s.queue)
	if cap(s.queue) >= base+n {
		s.queue = s.queue[:base+n]
	} else {
		s.queue = append(s.queue, make([]DynInst, n)...)
	}
	q := s.queue[base:]
	for i, in := range b.Insts {
		d := &q[i]
		d.Inst = in
		d.Taken = false
		d.NextPC = in.FallThrough()
		d.MemAddr = 0
		d.HotPhase = hot
		d.EpisodeEnd = false
		if sid := b.MemStream[i]; sid >= 0 {
			d.MemAddr = s.memAddr(int(sid))
		}
	}
	last := &q[n-1]
	if b.Term != TermFall {
		last.Taken = takenTerm
	}
	if nextPC != 0 {
		last.NextPC = nextPC
	} else {
		last.EpisodeEnd = true
	}
	return n
}

// memAddr advances one address stream and returns the next address.
// Non-strided streams exhibit three-level temporal locality: most accesses
// revisit a small hot region, some a warm region, and a tail roams the full
// working set — matching the strong reuse of real pointer code while still
// letting large working sets generate capacity misses.
func (s *Stream) memAddr(id int) uint64 {
	region := s.sregion[id]
	if s.strided[id] {
		s.spos[id]++
		return s.sbase[id] + (s.spos[id]*s.sstride[id])%region
	}
	r := s.rng.Float64()
	var span uint64
	switch {
	case r < 0.88:
		span = 3 << 9 // hot: aggregate across streams fits L1
	case r < 0.98:
		span = 32 << 10 // warm: aggregate fits L2
	default:
		span = region // cold tail over the working set
	}
	if span > region {
		span = region
	}
	return s.sbase[id] + uint64(s.rng.Int63n(int64(span/8)))*8
}
