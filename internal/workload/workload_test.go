package workload

import (
	"testing"

	"parrot/internal/isa"
)

func TestAppsRoster(t *testing.T) {
	apps := Apps()
	if len(apps) != 44 {
		t.Fatalf("len(Apps()) = %d, want 44 (the paper's benchmark count)", len(apps))
	}
	wantCounts := map[Suite]int{SpecInt: 11, SpecFP: 11, Office: 6, Multimedia: 11, DotNet: 5}
	got := map[Suite]int{}
	names := map[string]bool{}
	for _, p := range apps {
		got[p.Suite]++
		if names[p.Name] {
			t.Errorf("duplicate app name %q", p.Name)
		}
		names[p.Name] = true
	}
	for s, n := range wantCounts {
		if got[s] != n {
			t.Errorf("suite %v has %d apps, want %d", s, got[s], n)
		}
	}
	for _, k := range KillerApps() {
		if !names[k] {
			t.Errorf("killer app %q missing from roster", k)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("swim")
	if !ok || p.Name != "swim" || p.Suite != SpecFP {
		t.Fatalf("ByName(swim) = %+v, %v", p, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName must fail for unknown apps")
	}
}

func TestSuiteApps(t *testing.T) {
	fp := SuiteApps(SpecFP)
	if len(fp) != 11 {
		t.Fatalf("SpecFP apps = %d", len(fp))
	}
	for _, p := range fp {
		if p.Suite != SpecFP {
			t.Errorf("%s in wrong suite", p.Name)
		}
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range Apps() {
		if p.HotFraction <= 0 || p.HotFraction > 1 {
			t.Errorf("%s: HotFraction %v out of range", p.Name, p.HotFraction)
		}
		if p.NumLoops < 1 || p.ColdBlocks < 10 {
			t.Errorf("%s: degenerate structure %d loops %d cold", p.Name, p.NumLoops, p.ColdBlocks)
		}
		if p.CondBias < 0.5 || p.CondBias > 1 {
			t.Errorf("%s: CondBias %v", p.Name, p.CondBias)
		}
		if p.TripCount[0] < 2 || p.TripCount[1] <= p.TripCount[0]-1 {
			t.Errorf("%s: TripCount %v", p.Name, p.TripCount)
		}
		sum := p.DeadFrac + p.ConstFrac + p.CopyFrac + p.FuseFrac + p.SimdFrac
		if sum > 0.85 {
			t.Errorf("%s: redundancy fractions sum %v leaves too little plain code", p.Name, sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("gcc")
	a := Generate(p)
	b := Generate(p)
	if a.StaticInsts() != b.StaticInsts() || len(a.Blocks()) != len(b.Blocks()) {
		t.Fatal("generation must be deterministic")
	}
	for i, ba := range a.Blocks() {
		bb := b.Blocks()[i]
		if len(ba.Insts) != len(bb.Insts) {
			t.Fatalf("block %d sizes differ", i)
		}
		for j := range ba.Insts {
			if ba.Insts[j].PC != bb.Insts[j].PC || len(ba.Insts[j].Uops) != len(bb.Insts[j].Uops) {
				t.Fatalf("block %d inst %d differs", i, j)
			}
		}
	}
}

func TestProgramStructure(t *testing.T) {
	p, _ := ByName("swim")
	prog := Generate(p)
	if len(prog.Loops) != p.NumLoops {
		t.Errorf("loops = %d, want %d", len(prog.Loops), p.NumLoops)
	}
	if len(prog.Cold) != p.ColdBlocks {
		t.Errorf("cold blocks = %d, want %d", len(prog.Cold), p.ColdBlocks)
	}
	for _, l := range prog.Loops {
		last := l.Body[len(l.Body)-1]
		if last.Term != TermLoopBack {
			t.Errorf("loop %d does not end with back-edge", l.ID)
		}
		if last.Taken != l.Body[0] {
			t.Errorf("loop %d back-edge does not target header", l.ID)
		}
		term := last.Insts[len(last.Insts)-1]
		if term.Kind != isa.KindBranch {
			t.Errorf("loop %d terminator kind %v", l.ID, term.Kind)
		}
		if term.Target != l.Body[0].PC() {
			t.Errorf("loop %d target %#x, want header %#x", l.ID, term.Target, l.Body[0].PC())
		}
		if term.Target >= term.PC {
			t.Errorf("loop %d back-edge is not backward", l.ID)
		}
	}
	for _, pr := range prog.Procs {
		last := pr.Blocks[len(pr.Blocks)-1]
		if last.Term != TermRet {
			t.Errorf("proc %d does not end with ret", pr.ID)
		}
	}
}

func TestPCsMonotoneAndSized(t *testing.T) {
	p, _ := ByName("gzip")
	prog := Generate(p)
	var prevEnd uint64
	for _, b := range prog.Blocks() {
		for _, in := range b.Insts {
			if in.Size < 1 || in.Size > 15 {
				t.Fatalf("inst size %d out of IA32 range", in.Size)
			}
			if in.PC < prevEnd {
				t.Fatalf("overlapping layout at %#x", in.PC)
			}
			prevEnd = in.PC + uint64(in.Size)
		}
	}
}

func TestMemStreamParallelism(t *testing.T) {
	p, _ := ByName("art")
	prog := Generate(p)
	for _, b := range prog.Blocks() {
		if len(b.MemStream) != len(b.Insts) {
			t.Fatalf("MemStream not parallel to Insts")
		}
		for i, in := range b.Insts {
			hasMem := false
			for _, u := range in.Uops {
				if u.Op.IsMem() {
					hasMem = true
				}
			}
			if hasMem && b.MemStream[i] < 0 && in.Kind != isa.KindComplex {
				t.Errorf("memory inst without stream id: %v", in)
			}
			if !hasMem && b.MemStream[i] >= 0 {
				t.Errorf("non-memory inst with stream id: %v", in)
			}
		}
	}
}

func TestStreamLengthAndDeterminism(t *testing.T) {
	p, _ := ByName("flash")
	prog := Generate(p)
	s1 := NewStream(prog, 20000)
	s2 := NewStream(prog, 20000)
	n := 0
	for {
		a, ok1 := s1.Next()
		b, ok2 := s2.Next()
		if ok1 != ok2 {
			t.Fatal("streams diverge in length")
		}
		if !ok1 {
			break
		}
		if a.Inst != b.Inst || a.Taken != b.Taken || a.MemAddr != b.MemAddr || a.NextPC != b.NextPC {
			t.Fatalf("streams diverge at %d", n)
		}
		n++
	}
	if n != 20000 {
		t.Fatalf("stream length = %d, want 20000", n)
	}
}

func TestStreamHotFraction(t *testing.T) {
	for _, name := range []string{"swim", "gcc", "word"} {
		p, _ := ByName(name)
		prog := Generate(p)
		s := NewStream(prog, 60000)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		got := s.HotFractionObserved()
		if got < p.HotFraction-0.12 || got > p.HotFraction+0.12 {
			t.Errorf("%s: hot fraction %v, profile %v", name, got, p.HotFraction)
		}
	}
}

func TestStreamControlConsistency(t *testing.T) {
	p, _ := ByName("perlbmk")
	prog := Generate(p)
	s := NewStream(prog, 30000)
	var prev DynInst
	have := false
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		if have && !prev.EpisodeEnd {
			// Within an episode the stream must be PC-consistent: the next
			// instruction lives at prev.NextPC.
			if d.Inst.PC != prev.NextPC {
				t.Fatalf("PC discontinuity without EpisodeEnd: %#x -> %#x",
					prev.NextPC, d.Inst.PC)
			}
		}
		if d.Inst.Kind.IsCTI() {
			if d.Taken && d.Inst.Kind == isa.KindBranch && d.NextPC == d.Inst.FallThrough() && d.Inst.Target != d.Inst.FallThrough() {
				t.Fatal("taken branch with fall-through NextPC")
			}
		} else if d.Taken {
			t.Fatal("non-CTI marked taken")
		}
		prev = d
		have = true
	}
}

func TestStreamMemoryAddresses(t *testing.T) {
	p, _ := ByName("equake")
	prog := Generate(p)
	s := NewStream(prog, 30000)
	memInsts := 0
	total := 0
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		total++
		hasMem := false
		for _, u := range d.Inst.Uops {
			if u.Op.IsMem() {
				hasMem = true
			}
		}
		if hasMem {
			memInsts++
			if d.MemAddr == 0 {
				t.Fatal("memory instruction without address")
			}
		}
	}
	frac := float64(memInsts) / float64(total)
	if frac < 0.15 || frac > 0.55 {
		t.Errorf("memory instruction fraction = %v", frac)
	}
}

func TestEpisodeEndsExist(t *testing.T) {
	p, _ := ByName("vpr")
	prog := Generate(p)
	s := NewStream(prog, 30000)
	ends := 0
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		if d.EpisodeEnd {
			ends++
		}
	}
	if ends < 10 {
		t.Errorf("only %d episode boundaries in 30k instructions", ends)
	}
}

func TestUopsPerInstructionPlausible(t *testing.T) {
	for _, name := range []string{"gcc", "swim", "flash"} {
		p, _ := ByName(name)
		prog := Generate(p)
		s := NewStream(prog, 20000)
		uops, insts := 0, 0
		for {
			d, ok := s.Next()
			if !ok {
				break
			}
			insts++
			uops += len(d.Inst.Uops)
		}
		upi := float64(uops) / float64(insts)
		if upi < 1.05 || upi > 1.9 {
			t.Errorf("%s: uops/inst = %v, outside IA32-plausible band", name, upi)
		}
	}
}

func TestColdFootprintExceedsHot(t *testing.T) {
	p, _ := ByName("word")
	prog := Generate(p)
	var hotBytes, coldBytes uint64
	for _, l := range prog.Loops {
		for _, b := range l.Body {
			for _, in := range b.Insts {
				hotBytes += uint64(in.Size)
			}
		}
	}
	for _, b := range prog.Cold {
		for _, in := range b.Insts {
			coldBytes += uint64(in.Size)
		}
	}
	if coldBytes < 5*hotBytes {
		t.Errorf("cold footprint %d should dwarf hot %d", coldBytes, hotBytes)
	}
	if coldBytes < 24<<10 {
		t.Errorf("cold footprint %d must be commensurate with a 32KB L1I", coldBytes)
	}
}
