package workload

import (
	"testing"

	"parrot/internal/isa"
)

// measure runs a stream and returns distribution statistics used by the
// suite-characteristic tests.
type streamStats struct {
	insts      int
	branches   int
	taken      int
	biasedHits int // branches following their block's majority direction
	fpUops     int
	uops       int
	hotFrac    float64
}

func measure(t *testing.T, name string, n int) streamStats {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	prog := Generate(p)
	s := NewStream(prog, n)
	var st streamStats
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		st.insts++
		st.uops += len(d.Inst.Uops)
		for _, u := range d.Inst.Uops {
			if u.Op.Class() == isa.ClassFPAdd || u.Op.Class() == isa.ClassFPMul || u.Op.Class() == isa.ClassFPDiv {
				st.fpUops++
			}
		}
		if d.Inst.Kind == isa.KindBranch {
			st.branches++
			if d.Taken {
				st.taken++
			}
		}
	}
	st.hotFrac = s.HotFractionObserved()
	return st
}

func TestSuiteCharacterDifferences(t *testing.T) {
	fp := measure(t, "swim", 40000)
	in := measure(t, "gcc", 40000)

	// FP code carries FP work; integer code essentially none.
	fpShare := float64(fp.fpUops) / float64(fp.uops)
	inShare := float64(in.fpUops) / float64(in.uops)
	if fpShare < 0.2 {
		t.Errorf("swim FP share = %v", fpShare)
	}
	if inShare > 0.1 {
		t.Errorf("gcc FP share = %v", inShare)
	}

	// FP code is loop-dominated: hot fraction far above integer's.
	if fp.hotFrac <= in.hotFrac {
		t.Errorf("hot fractions inverted: swim %v vs gcc %v", fp.hotFrac, in.hotFrac)
	}
}

func TestBranchDensityRealistic(t *testing.T) {
	for _, name := range []string{"gcc", "swim", "word", "flash"} {
		st := measure(t, name, 30000)
		density := float64(st.branches) / float64(st.insts)
		if density < 0.05 || density > 0.30 {
			t.Errorf("%s: conditional branch density %v outside [0.05,0.30]", name, density)
		}
	}
}

func TestLoopBackEdgesMostlyTaken(t *testing.T) {
	// Loop-dominated code takes its conditional branches most of the time
	// (back-edges), a basic sanity property of the control structure.
	st := measure(t, "swim", 30000)
	rate := float64(st.taken) / float64(st.branches)
	if rate < 0.6 {
		t.Errorf("swim taken rate = %v, loop back-edges should dominate", rate)
	}
}

func TestKillerProfilesAreTraceFriendly(t *testing.T) {
	for _, name := range KillerApps() {
		p, _ := ByName(name)
		base := suiteBase(p.Suite)
		if p.HotFraction < base.HotFraction {
			t.Errorf("%s: killer app less hot than its suite base", name)
		}
		if p.FuseFrac+p.SimdFrac < base.FuseFrac+base.SimdFrac {
			t.Errorf("%s: killer app less optimizer-friendly than suite base", name)
		}
	}
}

func TestWorkingSetsVaryAcrossSuites(t *testing.T) {
	// Big-WS FP apps must exist (art, lucas) alongside small-WS integer.
	art, _ := ByName("art")
	gzipApp, _ := ByName("gzip")
	if art.WSData <= gzipApp.WSData {
		t.Errorf("art WS %d should exceed gzip %d", art.WSData, gzipApp.WSData)
	}
}

func TestStreamPoolShared(t *testing.T) {
	// The address-stream pool is bounded: locality comes from sharing.
	for _, name := range []string{"gcc", "swim"} {
		p, _ := ByName(name)
		prog := Generate(p)
		if prog.NumStreams() > streamPoolSize {
			t.Errorf("%s: %d streams exceed the pool", name, prog.NumStreams())
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	// Two different apps of the same suite produce different programs.
	a, _ := ByName("bzip")
	b, _ := ByName("crafty")
	pa, pb := Generate(a), Generate(b)
	if pa.StaticInsts() == pb.StaticInsts() && len(pa.Blocks()) == len(pb.Blocks()) {
		// Sizes could coincide; compare first block contents.
		ba, bb := pa.Blocks()[0], pb.Blocks()[0]
		same := len(ba.Insts) == len(bb.Insts)
		if same {
			for i := range ba.Insts {
				if ba.Insts[i].Kind != bb.Insts[i].Kind {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("distinct apps generated identical programs")
		}
	}
}
