package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"parrot/internal/isa"
	"parrot/internal/metrics"
)

// ---------------------------------------------------------------------------
// Time-series artifacts
// ---------------------------------------------------------------------------

// histJSON is the serialized form of an occupancy histogram.
type histJSON struct {
	Bounds []int    `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Mean   float64  `json:"mean"`
	Max    int      `json:"max"`
	Total  uint64   `json:"total"`
}

func histToJSON(h *metrics.Histogram) *histJSON {
	if h == nil {
		return nil
	}
	return &histJSON{Bounds: h.Bounds, Counts: h.Counts, Mean: h.Mean(), Max: h.Max(), Total: h.Total()}
}

// SeriesDoc is the top-level schema of the time-series JSON artifact.
type SeriesDoc struct {
	IntervalInsts int        `json:"intervalInsts"`
	Components    []string   `json:"components"` // names for energyByComponent
	Intervals     []Interval `json:"intervals"`

	// Run-level occupancy histograms per lane (lane 1 nil for unified
	// models), sampled every simulated cycle including skipped windows.
	ROBHist [2]*histJSON `json:"robHist"`
	IQHist  [2]*histJSON `json:"iqHist"`
}

// SeriesDoc assembles the exportable view of the recorder's time series.
func (r *Recorder) SeriesDoc() *SeriesDoc {
	d := &SeriesDoc{
		IntervalInsts: r.Series.K,
		Components:    EnergyComponentNames(),
		Intervals:     r.Series.Intervals,
	}
	for lane := 0; lane < 2; lane++ {
		rob, iq := r.Series.Lane(lane)
		d.ROBHist[lane] = histToJSON(rob)
		d.IQHist[lane] = histToJSON(iq)
	}
	return d
}

// WriteSeriesJSON emits the interval time series as indented JSON.
func (r *Recorder) WriteSeriesJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.SeriesDoc())
}

// WriteSeriesCSV emits the interval time series as CSV (one row per
// interval; energy components flattened into suffixed columns).
func (r *Recorder) WriteSeriesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "index,start_cycle,end_cycle,cycles,skipped_cycles,insts,hot_insts,cold_insts,"+
		"ipc,hot_coverage,tc_lookups,tc_hits,tc_hit_rate,"+
		"rob_occ_cold,iq_occ_cold,rob_occ_hot,iq_occ_hot,dyn_energy,warmup")
	for _, c := range EnergyComponentNames() {
		fmt.Fprintf(bw, ",e_%s", c)
	}
	fmt.Fprintln(bw)
	for i := range r.Series.Intervals {
		iv := &r.Series.Intervals[i]
		warm := 0
		if iv.Warmup {
			warm = 1
		}
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d,%.6f,%.3f,%.3f,%.3f,%.3f,%.6g,%d",
			iv.Index, iv.StartCycle, iv.EndCycle, iv.Cycles, iv.SkippedCycles,
			iv.Insts, iv.HotInsts, iv.ColdInsts, iv.IPC, iv.Coverage,
			iv.TCLookups, iv.TCHits, iv.TCHitRate,
			iv.ROBOcc[0], iv.IQOcc[0], iv.ROBOcc[1], iv.IQOcc[1], iv.DynEnergy, warm)
		for _, e := range iv.Energy {
			fmt.Fprintf(bw, ",%.6g", e)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ---------------------------------------------------------------------------
// Pipeline visualization: Chrome trace events
// ---------------------------------------------------------------------------

// chromeEvent is one Chrome-trace-event record ("X" complete events; ts/dur
// are simulated cycles expressed in the format's microsecond field).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Pid  uint8          `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeRows spreads uops across this many display rows per lane.
const chromeRows = 64

// WriteChromeTrace emits the per-uop pipeline lifecycle in Chrome
// trace-event format (load in chrome://tracing or Perfetto). Each fully
// retired uop contributes three spans — dispatch→issue (wait), issue→
// complete (exec), complete→commit (retire) — on pid = lane, tid = a
// round-robin display row.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	doc := chromeDoc{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for lane := 0; lane < 2; lane++ {
		p := r.Lanes[lane]
		if p == nil {
			continue
		}
		p.Each(func(u *UopRec) {
			if u.Commit == 0 { // truncated lifecycle (recording stopped mid-flight)
				return
			}
			name := isa.ExecClass(u.Class).String()
			row := u.Seq % chromeRows
			args := map[string]any{"seq": u.Seq}
			if u.TraceEnd {
				args["traceEnd"] = true
			}
			add := func(cat string, from, to uint64) {
				if to < from {
					to = from
				}
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: name, Cat: cat, Ph: "X", Ts: from, Dur: to - from,
					Pid: p.Lane, Tid: row, Args: args,
				})
			}
			add("wait", u.Dispatch, u.Issue)
			add("exec", u.Issue, u.Complete)
			add("retire", u.Complete, u.Commit)
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// ---------------------------------------------------------------------------
// Pipeline visualization: Kanata
// ---------------------------------------------------------------------------

// kanataLine is one pending Kanata command with its emission cycle.
type kanataLine struct {
	cycle uint64
	ord   int // stable tiebreak: original emission order
	text  string
}

// Kanata pipeline stage mnemonics.
const (
	kanataStageDispatch = "Dp"
	kanataStageExec     = "Ex"
	kanataStageRetire   = "Rt"
)

// WriteKanata emits the per-uop pipeline lifecycle as a Kanata 0004 log
// (the Onikiri/Konata pipeline viewer format). Only fully retired uops are
// emitted, so every instruction record is well formed: I/L, stage S/E pairs
// for dispatch-wait, execute and retire-wait, then R at commit.
func (r *Recorder) WriteKanata(w io.Writer) error {
	var lines []kanataLine
	ord := 0
	emit := func(cycle uint64, format string, args ...any) {
		lines = append(lines, kanataLine{cycle: cycle, ord: ord, text: fmt.Sprintf(format, args...)})
		ord++
	}

	uid := 0
	var insnID [2]int
	var retireID int
	for lane := 0; lane < 2; lane++ {
		p := r.Lanes[lane]
		if p == nil {
			continue
		}
		p.Each(func(u *UopRec) {
			if u.Commit == 0 {
				return
			}
			id := uid
			uid++
			iid := insnID[lane]
			insnID[lane]++
			cls := isa.ExecClass(u.Class).String()
			emit(u.Dispatch, "I\t%d\t%d\t%d", id, iid, lane)
			flags := ""
			if u.LastUop {
				flags += " !"
			}
			if u.TraceEnd {
				flags += " $"
			}
			emit(u.Dispatch, "L\t%d\t0\t%s #%d%s", id, cls, u.Seq, flags)
			emit(u.Dispatch, "S\t%d\t0\t%s", id, kanataStageDispatch)
			emit(u.Issue, "E\t%d\t0\t%s", id, kanataStageDispatch)
			emit(u.Issue, "S\t%d\t0\t%s", id, kanataStageExec)
			emit(u.Complete, "E\t%d\t0\t%s", id, kanataStageExec)
			emit(u.Complete, "S\t%d\t0\t%s", id, kanataStageRetire)
			emit(u.Commit, "E\t%d\t0\t%s", id, kanataStageRetire)
			rid := retireID
			retireID++
			emit(u.Commit, "R\t%d\t%d\t0", id, rid)
		})
	}

	// Kanata is a cycle-ordered command stream: sort by cycle (stable in
	// emission order within a cycle) and interleave C advances.
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].cycle != lines[j].cycle {
			return lines[i].cycle < lines[j].cycle
		}
		return lines[i].ord < lines[j].ord
	})

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Kanata\t0004")
	if len(lines) == 0 {
		return bw.Flush()
	}
	cur := lines[0].cycle
	fmt.Fprintf(bw, "C=\t%d\n", cur)
	for i := range lines {
		if lines[i].cycle != cur {
			fmt.Fprintf(bw, "C\t%d\n", lines[i].cycle-cur)
			cur = lines[i].cycle
		}
		fmt.Fprintln(bw, lines[i].text)
	}
	return bw.Flush()
}

// ---------------------------------------------------------------------------
// Trace biographies
// ---------------------------------------------------------------------------

// BioDoc is the schema of the per-trace biography artifact.
type BioDoc struct {
	Count     int         `json:"count"`
	PassNames []string    `json:"optPassNames,omitempty"`
	Traces    []*TraceBio `json:"traces"`
}

// WriteBiographies emits the per-trace biography report as indented JSON,
// most-executed traces first. max > 0 truncates the list (Count still
// reports the full population).
func (r *Recorder) WriteBiographies(w io.Writer, max int) error {
	bios := r.Biographies()
	doc := BioDoc{Count: len(bios), PassNames: r.passNames, Traces: bios}
	if max > 0 && len(bios) > max {
		doc.Traces = bios[:max]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
