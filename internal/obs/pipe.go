package obs

// UopRec is one uop's pipeline lifecycle: the cycles at which it passed each
// stage of the execution engine. Cycles are engine-local (each lane has its
// own clock, advanced in lockstep with the machine clock). A zero stage
// cycle means the uop had not reached that stage when recording stopped.
type UopRec struct {
	Seq      uint64 // engine sequence number (dispatch order)
	Class    uint8  // isa.ExecClass
	LastUop  bool   // instruction-final uop
	TraceEnd bool   // atomic-trace-final uop
	Dispatch uint64
	Issue    uint64
	Complete uint64
	Commit   uint64
}

// pipeChunkSize is the slab granularity of lifecycle storage.
const pipeChunkSize = 1 << 10

// PipeProbe captures per-uop lifecycle records for one execution engine.
// Engine sequence numbers are monotonically increasing, so records are
// stored in dispatch order in chunked slabs and located by offset from the
// first recorded sequence — no map, no per-event allocation. Recording is
// capped: uops dispatched past the cap are counted, not stored, and their
// later stage events are dropped by the same bounds check.
type PipeProbe struct {
	Lane     uint8
	chunks   [][]UopRec
	first    uint64 // seq of record 0; 0 = nothing recorded yet
	n        int
	limit    int
	Overflow uint64 // dispatches past the cap
}

func newPipeProbe(lane uint8, limit int) *PipeProbe {
	return &PipeProbe{Lane: lane, limit: limit}
}

// Len returns the number of stored lifecycle records.
func (p *PipeProbe) Len() int { return p.n }

// rec returns the record for seq, or nil when it is outside the recorded
// window.
func (p *PipeProbe) rec(seq uint64) *UopRec {
	if p.first == 0 || seq < p.first {
		return nil
	}
	off := int(seq - p.first)
	if off >= p.n {
		return nil
	}
	return &p.chunks[off/pipeChunkSize][off%pipeChunkSize]
}

// OnDispatch records a uop entering the engine. Sequence numbers must be
// contiguous and ascending (they are: engines hand them out from a counter).
func (p *PipeProbe) OnDispatch(seq uint64, class uint8, cycle uint64, lastUop, traceEnd bool) {
	if p.n >= p.limit {
		p.Overflow++
		return
	}
	if p.first == 0 {
		p.first = seq
	}
	if p.n%pipeChunkSize == 0 {
		p.chunks = append(p.chunks, make([]UopRec, pipeChunkSize))
	}
	r := &p.chunks[p.n/pipeChunkSize][p.n%pipeChunkSize]
	*r = UopRec{Seq: seq, Class: class, LastUop: lastUop, TraceEnd: traceEnd, Dispatch: cycle}
	p.n++
}

// OnIssue records a uop winning selection and starting execution.
func (p *PipeProbe) OnIssue(seq, cycle uint64) {
	if r := p.rec(seq); r != nil {
		r.Issue = cycle
	}
}

// OnComplete records a uop's writeback.
func (p *PipeProbe) OnComplete(seq, cycle uint64) {
	if r := p.rec(seq); r != nil {
		r.Complete = cycle
	}
}

// OnCommit records a uop's in-order retirement.
func (p *PipeProbe) OnCommit(seq, cycle uint64) {
	if r := p.rec(seq); r != nil {
		r.Commit = cycle
	}
}

// Each calls f for every stored record in dispatch order.
func (p *PipeProbe) Each(f func(*UopRec)) {
	for i := 0; i < p.n; i++ {
		f(&p.chunks[i/pipeChunkSize][i%pipeChunkSize])
	}
}
