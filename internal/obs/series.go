package obs

import (
	"parrot/internal/energy"
	"parrot/internal/metrics"
)

// Interval is one phase sample of the time series: everything that happened
// between two boundaries K committed instructions apart. Cycle counts are
// machine cycles, so intervals tile the run exactly — including idle windows
// the kernel fast-forwarded with Engine.Skip, which are attributed to the
// interval they occurred in (SkippedCycles) instead of vanishing and
// creating artificial IPC spikes at sample boundaries.
type Interval struct {
	Index      int    `json:"index"`
	StartCycle uint64 `json:"startCycle"`
	EndCycle   uint64 `json:"endCycle"`
	Cycles     uint64 `json:"cycles"`
	// SkippedCycles counts the fast-forwarded idle cycles inside the window
	// (always <= Cycles; they are part of Cycles, not in addition to it).
	SkippedCycles uint64 `json:"skippedCycles"`

	Insts     uint64  `json:"insts"`
	HotInsts  uint64  `json:"hotInsts"`
	ColdInsts uint64  `json:"coldInsts"`
	IPC       float64 `json:"ipc"`
	Coverage  float64 `json:"hotCoverage"`

	TCLookups uint64  `json:"tcLookups"`
	TCHits    uint64  `json:"tcHits"`
	TCHitRate float64 `json:"tcHitRate"`

	// Mean ROB/IQ occupancy per lane over the interval's cycles
	// (lane 0 = cold engine, lane 1 = hot engine of split models).
	ROBOcc [2]float64 `json:"robOccMean"`
	IQOcc  [2]float64 `json:"iqOccMean"`

	// Dynamic energy spent in the interval, total and by component
	// (component names: EnergyComponentNames).
	DynEnergy float64                       `json:"dynEnergy"`
	Energy    [energy.NumComponents]float64 `json:"energyByComponent"`

	// Warmup marks intervals that ended before the measurement window
	// started (statistics reset).
	Warmup bool `json:"warmup,omitempty"`
}

// laneOcc accumulates occupancy statistics for one engine lane: run-level
// histograms plus interval-scoped sums for the per-interval means.
type laneOcc struct {
	ROBHist *metrics.Histogram
	IQHist  *metrics.Histogram

	robSum, iqSum, samples uint64 // current interval
}

// Series is the phase-sampled time-series accumulator: per-cycle occupancy
// sampling (weighted, so skipped idle windows cost one call, not one call
// per cycle) and the closed interval list. The owning machine drives it —
// obs knows nothing about machine internals; the machine passes deltas of
// its own counters at each boundary.
type Series struct {
	K         int // committed instructions per interval
	Intervals []Interval

	lanes   [2]laneOcc
	skipped uint64 // fast-forwarded cycles in the current interval
}

func newSeries(k int) *Series { return &Series{K: k} }

// SetupLane sizes a lane's occupancy histograms from the engine capacities.
func (s *Series) SetupLane(lane, robCap, iqCap int) {
	s.lanes[lane].ROBHist = metrics.NewHistogram(OccupancyBuckets(robCap)...)
	s.lanes[lane].IQHist = metrics.NewHistogram(OccupancyBuckets(iqCap)...)
}

// Lane returns a lane's run-level occupancy histograms (nil before
// SetupLane).
func (s *Series) Lane(lane int) (rob, iq *metrics.Histogram) {
	return s.lanes[lane].ROBHist, s.lanes[lane].IQHist
}

// Sample records w cycles of lane-0 occupancy; idle marks the cycles as
// fast-forwarded (Engine.Skip windows). The occupancy of a skipped window is
// constant by construction — that is what made it skippable — so one
// weighted add attributes all w cycles exactly.
func (s *Series) Sample(w uint64, idle bool, rob, iq int) {
	s.lanes[0].add(w, rob, iq)
	if idle {
		s.skipped += w
	}
}

// SampleHot records w cycles of lane-1 occupancy (split models only).
func (s *Series) SampleHot(w uint64, rob, iq int) {
	s.lanes[1].add(w, rob, iq)
}

func (l *laneOcc) add(w uint64, rob, iq int) {
	if l.ROBHist == nil {
		return
	}
	l.ROBHist.AddN(rob, w)
	l.IQHist.AddN(iq, w)
	l.robSum += uint64(rob) * w
	l.iqSum += uint64(iq) * w
	l.samples += w
}

// CloseInterval finalizes the current interval. The caller fills the
// counter deltas (cycle bounds, instructions, trace-cache traffic, energy);
// the series derives the ratios, attributes the skipped-cycle count and the
// occupancy means, and resets the interval-scoped accumulators.
func (s *Series) CloseInterval(iv Interval) {
	iv.Index = len(s.Intervals)
	iv.Cycles = iv.EndCycle - iv.StartCycle
	iv.SkippedCycles = s.skipped
	if iv.Cycles > 0 {
		iv.IPC = float64(iv.Insts) / float64(iv.Cycles)
	}
	if t := iv.HotInsts + iv.ColdInsts; t > 0 {
		iv.Coverage = float64(iv.HotInsts) / float64(t)
	}
	if iv.TCLookups > 0 {
		iv.TCHitRate = float64(iv.TCHits) / float64(iv.TCLookups)
	}
	for i := range s.lanes {
		l := &s.lanes[i]
		if l.samples > 0 {
			iv.ROBOcc[i] = float64(l.robSum) / float64(l.samples)
			iv.IQOcc[i] = float64(l.iqSum) / float64(l.samples)
		}
		l.robSum, l.iqSum, l.samples = 0, 0, 0
	}
	s.skipped = 0
	s.Intervals = append(s.Intervals, iv)
}

// TotalCycles sums the cycle spans of all closed intervals — with exact
// skip attribution this equals the clock distance from attach to the last
// boundary (the invariant TestSkipAttribution pins).
func (s *Series) TotalCycles() (cycles, skipped uint64) {
	for i := range s.Intervals {
		cycles += s.Intervals[i].Cycles
		skipped += s.Intervals[i].SkippedCycles
	}
	return
}
