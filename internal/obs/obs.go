// Package obs is the simulator's observability layer: a probe bus, per-uop
// pipeline lifecycle capture, phase-sampled interval time series and
// per-trace biographies, with exporters for JSON/CSV artifacts and the
// Kanata / Chrome-trace-event pipeline visualization formats.
//
// The layer is zero-cost when disabled. Instrumented components hold a nil
// probe pointer by default; every instrumentation point is a single
// predictable `probe != nil` branch on the hot path, so a probes-off build
// is bit-identical to an uninstrumented one and its steady-state throughput
// is unchanged (the CI digest check and the simbench perf gate both enforce
// this). When probes are attached, recording is slab-backed: events append
// into chunked preallocated arrays, never into per-event allocations.
//
// The package sits below the machine layers: core, ooo, tcache, trace and
// opt all call into obs (directly or through small local probe interfaces),
// and obs imports none of them back except the leaf packages isa, trace,
// energy and metrics.
package obs

import (
	"parrot/internal/energy"
	"parrot/internal/metrics"
	"parrot/internal/trace"
)

// Kind enumerates probe-bus event kinds.
type Kind uint8

// Probe-bus event kinds. Payload fields A and B are kind-specific and
// documented per constant.
const (
	// KSegment: one selection segment entered execution. A = TID key,
	// B = uop count. Lane 1 when it ran hot, 0 cold.
	KSegment Kind = iota
	// KPipeSwitch: the fetch selector switched between the cold and hot
	// pipelines. Lane is the destination (1 = hot). A = TID key.
	KPipeSwitch
	// KTPred: one trace-predictor decision. A = predicted key (0 = no
	// confident prediction), B = actual key. Lane 1 when the prediction was
	// confident and correct.
	KTPred
	// KTCHit / KTCMiss: trace-cache lookup outcome. A = TID key.
	KTCHit
	KTCMiss
	// KTCInsert: trace insert (B = uop count); Lane 1 marks an optimizer
	// write-back replacing a resident trace.
	KTCInsert
	// KTCEvict: trace eviction. A = TID key of the evicted trace.
	KTCEvict
	// KHotPromote / KBlazePromote: filter promotions. A = TID key.
	KHotPromote
	KBlazePromote
	// KOptimize: one optimizer invocation finished. A = TID key,
	// B = uops-before<<32 | uops-after.
	KOptimize
	// KOptPass: one optimizer pass over a trace. A = pass ordinal within the
	// invocation, B = uops-before<<32 | uops-after.
	KOptPass
	// KTraceAbort: a mispredicted trace started and assert-flushed.
	// A = TID key of the aborted trace.
	KTraceAbort
	// KStallROB / KStallIQ: a dispatch cycle lost to a full ROB / IQ.
	// Lane is the engine (0 cold, 1 hot).
	KStallROB
	KStallIQ
	// KMeasureStart: warmup ended and statistics were reset.
	KMeasureStart
	// KSelectEmit: the trace selector finalized a segment. A = TID key,
	// B = uops<<32 | joined.
	KSelectEmit
	// KSelectJoin: the selector joined an identical consecutive unit into
	// the pending segment (loop unrolling). A = TID key, B = join count.
	KSelectJoin
	// KWindowRecord: one hot-window memoization boundary snapshot was
	// recorded. A = fed instruction position, B = state fingerprint.
	KWindowRecord
	// KWindowReplay: a complete recorded chain covered this run, but the
	// attached recorder forced the exact engine (replay bypass — probed
	// runs always simulate). A = chain window count, B = measured
	// instructions the chain would have replayed.
	KWindowReplay
	numKinds
)

var kindNames = [numKinds]string{
	"segment", "pipe-switch", "tpred", "tc-hit", "tc-miss", "tc-insert",
	"tc-evict", "hot-promote", "blaze-promote", "optimize", "opt-pass",
	"trace-abort", "stall-rob", "stall-iq", "measure-start",
	"select-emit", "select-join", "window-record", "window-replay",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Event is one probe-bus record. Events are pointer-free so the slab chunks
// are never scanned by the GC.
type Event struct {
	Cycle uint64
	A, B  uint64
	Kind  Kind
	Lane  uint8
}

// busChunkSize is the slab chunk granularity of the bus (pointer-free
// events; ~24 KiB per chunk).
const busChunkSize = 1 << 10

// Bus is the probe bus: a slab-backed, bounded event recorder. Emit appends
// into the current chunk and allocates a fresh chunk only when one fills
// (amortized ~1 allocation per 1024 events); past the configured limit,
// events are counted in Dropped instead of stored, so a pathological run
// cannot exhaust memory.
type Bus struct {
	chunks  [][]Event
	n       int
	limit   int
	Dropped uint64
}

// newBus returns a bus bounded at limit events, with the first chunk
// preallocated.
func newBus(limit int) *Bus {
	b := &Bus{limit: limit}
	b.chunks = append(b.chunks, make([]Event, 0, busChunkSize))
	return b
}

// Emit records one event.
func (b *Bus) Emit(k Kind, cycle, a, bb uint64, lane uint8) {
	if b.n >= b.limit {
		b.Dropped++
		return
	}
	last := len(b.chunks) - 1
	if len(b.chunks[last]) == busChunkSize {
		b.chunks = append(b.chunks, make([]Event, 0, busChunkSize))
		last++
	}
	b.chunks[last] = append(b.chunks[last], Event{Cycle: cycle, A: a, B: bb, Kind: k, Lane: lane})
	b.n++
}

// Len returns the number of stored events.
func (b *Bus) Len() int { return b.n }

// Each calls f for every stored event in emission order.
func (b *Bus) Each(f func(*Event)) {
	for _, c := range b.chunks {
		for i := range c {
			f(&c[i])
		}
	}
}

// CountKind returns how many stored events have the given kind.
func (b *Bus) CountKind(k Kind) int {
	n := 0
	b.Each(func(e *Event) {
		if e.Kind == k {
			n++
		}
	})
	return n
}

// Options sizes a Recorder. The zero value selects the documented defaults.
type Options struct {
	// IntervalInsts is the phase-sampling interval K: one time-series
	// snapshot every K committed instructions (default 1000).
	IntervalInsts int
	// MaxPipeUops caps per-uop lifecycle records per lane (default 50000).
	MaxPipeUops int
	// MaxBusEvents caps probe-bus storage (default 1<<20).
	MaxBusEvents int
}

func (o Options) withDefaults() Options {
	if o.IntervalInsts <= 0 {
		o.IntervalInsts = 1000
	}
	if o.MaxPipeUops <= 0 {
		o.MaxPipeUops = 50_000
	}
	if o.MaxBusEvents <= 0 {
		o.MaxBusEvents = 1 << 20
	}
	return o
}

// Recorder bundles the observability state of one machine run: the probe
// bus, two pipeline lifecycle probes (cold = lane 0, hot = lane 1), the
// interval time-series sampler and the per-trace biography book. A Recorder
// observes exactly one run; attach a fresh one per run.
type Recorder struct {
	Opts   Options
	Bus    *Bus
	Lanes  [2]*PipeProbe
	Series *Series

	bios    map[uint64]*TraceBio
	bioKeys []uint64 // insertion order, for deterministic export

	// clock points at the owning machine's cycle counter so layer probes
	// (trace cache, selector, optimizer) that have no clock of their own can
	// stamp events with the machine time of the call.
	clock *uint64

	// curOptKey is the TID key of the trace currently inside the optimizer,
	// so per-pass events can be attributed without threading the key through
	// the optimizer's pass pipeline.
	curOptKey uint64
	optPassN  uint64
	passNames []string // pass name per ordinal (the pipeline is config-fixed)

	finalCycle uint64 // clock at Finalize (residency accounting)
}

// NewRecorder builds a recorder with the given options.
func NewRecorder(o Options) *Recorder {
	o = o.withDefaults()
	r := &Recorder{
		Opts:   o,
		Bus:    newBus(o.MaxBusEvents),
		Series: newSeries(o.IntervalInsts),
		bios:   make(map[uint64]*TraceBio),
	}
	r.Lanes[0] = newPipeProbe(0, o.MaxPipeUops)
	r.Lanes[1] = newPipeProbe(1, o.MaxPipeUops)
	return r
}

// Bind points the recorder at the owning machine's clock. The machine calls
// this once at attach time.
func (r *Recorder) Bind(clock *uint64) { r.clock = clock }

func (r *Recorder) now() uint64 {
	if r.clock == nil {
		return 0
	}
	return *r.clock
}

// Pipe returns the lifecycle probe for a lane (0 = cold, 1 = hot).
func (r *Recorder) Pipe(lane int) *PipeProbe { return r.Lanes[lane] }

// lane01 converts a hot flag to a lane id.
func lane01(hot bool) uint8 {
	if hot {
		return 1
	}
	return 0
}

// Segment records one selection segment entering execution.
func (r *Recorder) Segment(tid trace.TID, insts, uops int, hot bool) {
	r.Bus.Emit(KSegment, r.now(), tid.Key(), uint64(uops), lane01(hot))
	b := r.bio(tid)
	if b.NumInsts == 0 {
		b.NumInsts = insts
	}
	if b.Uops == 0 {
		b.Uops = uops
	}
	if hot {
		b.Executions++
		b.HotInsts += uint64(insts)
	} else {
		b.ColdExecutions++
	}
}

// PipeSwitch records a cold<->hot pipeline switch at the fetch selector.
func (r *Recorder) PipeSwitch(tid trace.TID, toHot bool) {
	r.Bus.Emit(KPipeSwitch, r.now(), tid.Key(), 0, lane01(toHot))
}

// SegmentEmitted implements the trace selector's probe: one finalized
// selection segment, with joining applied.
func (r *Recorder) SegmentEmitted(tid trace.TID, insts, uops, joined int) {
	r.Bus.Emit(KSelectEmit, r.now(), tid.Key(), packPair(uops, joined), 0)
}

// SegmentJoined implements the trace selector's probe for joining events.
func (r *Recorder) SegmentJoined(tid trace.TID, joined int) {
	r.Bus.Emit(KSelectJoin, r.now(), tid.Key(), uint64(joined), 0)
}

// TPred records one trace-predictor decision. pred is zero when the
// predictor had no confident prediction.
func (r *Recorder) TPred(pred, actual uint64, correct bool) {
	r.Bus.Emit(KTPred, r.now(), pred, actual, lane01(correct))
}

// TraceAbort records a mispredicted trace's assert flush.
func (r *Recorder) TraceAbort(tid trace.TID) {
	r.Bus.Emit(KTraceAbort, r.now(), tid.Key(), 0, 1)
	r.bio(tid).Aborts++
}

// HotPromote records a hot-filter promotion (trace will be built).
func (r *Recorder) HotPromote(tid trace.TID) {
	r.Bus.Emit(KHotPromote, r.now(), tid.Key(), 0, 0)
	b := r.bio(tid)
	b.HotPromotions++
	if b.BuiltAt == 0 {
		b.BuiltAt = r.now()
	}
}

// BlazePromote records a blazing-filter promotion (trace will be optimized).
func (r *Recorder) BlazePromote(tid trace.TID) {
	r.Bus.Emit(KBlazePromote, r.now(), tid.Key(), 0, 0)
	r.bio(tid).BlazePromotions++
}

// OptimizeStart marks the optimizer invocation for per-pass attribution.
func (r *Recorder) OptimizeStart(tid trace.TID) {
	r.curOptKey = tid.Key()
	r.optPassN = 0
}

// OptimizeEnd records the result of one optimizer invocation.
func (r *Recorder) OptimizeEnd(tid trace.TID, uopsBefore, uopsAfter, critBefore, critAfter int) {
	r.Bus.Emit(KOptimize, r.now(), tid.Key(), packPair(uopsBefore, uopsAfter), 1)
	b := r.bio(tid)
	b.Optimized = true
	b.Optimizations++
	b.UopsBefore = uopsBefore
	b.UopsAfter = uopsAfter
	b.CritBefore = critBefore
	b.CritAfter = critAfter
	r.curOptKey = 0
}

// Pass implements the optimizer's pass probe: one event per optimization
// pass with the uop delta it produced. Event payload A is the pass ordinal
// within the invocation; the pass pipeline is fixed per optimizer config, so
// ordinals map to names via PassNames.
func (r *Recorder) Pass(name string, uopsBefore, uopsAfter int) {
	r.Bus.Emit(KOptPass, r.now(), r.optPassN, packPair(uopsBefore, uopsAfter), 0)
	if int(r.optPassN) == len(r.passNames) {
		r.passNames = append(r.passNames, name)
	}
	r.optPassN++
}

// PassNames returns the optimizer pass name for each KOptPass ordinal.
func (r *Recorder) PassNames() []string { return r.passNames }

// TCLookup implements the trace cache's probe for lookup outcomes.
func (r *Recorder) TCLookup(key uint64, hit bool) {
	k := KTCMiss
	if hit {
		k = KTCHit
	}
	r.Bus.Emit(k, r.now(), key, 0, lane01(hit))
	if hit {
		if b := r.bios[key]; b != nil {
			b.Hits++
		}
	}
}

// TCInsert implements the trace cache's probe for inserts/write-backs.
func (r *Recorder) TCInsert(key uint64, uops int, writeback bool) {
	r.Bus.Emit(KTCInsert, r.now(), key, uint64(uops), lane01(writeback))
	if b := r.bios[key]; b != nil {
		b.Uops = uops
		if writeback {
			b.Writebacks++
		} else {
			b.Inserts++
		}
		if !b.resident {
			b.resident = true
			b.lastInsert = r.now()
		}
	}
}

// TCEvict implements the trace cache's probe for evictions.
func (r *Recorder) TCEvict(key uint64) {
	r.Bus.Emit(KTCEvict, r.now(), key, 0, 0)
	if b := r.bios[key]; b != nil {
		b.Evictions++
		if b.resident {
			b.ResidentCycles += r.now() - b.lastInsert
			b.resident = false
		}
	}
}

// Stall records a dispatch cycle lost to a full ROB or issue queue.
func (r *Recorder) Stall(rob bool, hot bool) {
	k := KStallIQ
	if rob {
		k = KStallROB
	}
	r.Bus.Emit(k, r.now(), 0, 0, lane01(hot))
}

// MeasureStart marks the warmup/measurement boundary. The time series
// re-baselines so interval 0 starts at the measured window.
func (r *Recorder) MeasureStart() {
	r.Bus.Emit(KMeasureStart, r.now(), 0, 0, 0)
}

// WindowRecorded reports one hot-window memoization boundary snapshot
// taken during this (recording) run.
func (r *Recorder) WindowRecorded(fed int, fingerprint uint64) {
	r.Bus.Emit(KWindowRecord, r.now(), uint64(fed), fingerprint, 0)
}

// WindowReplayBypassed reports that a complete recorded chain covered this
// run but the attached recorder forced the exact engine: probed runs always
// simulate, so observability artifacts never hide behind the fast path.
func (r *Recorder) WindowReplayBypassed(windows int, insts uint64) {
	r.Bus.Emit(KWindowReplay, r.now(), uint64(windows), insts, 0)
}

// Finalize stamps the end of the run: still-resident traces close their
// residency windows and the series closes its trailing partial interval.
// The machine calls this once, after drain.
func (r *Recorder) Finalize() {
	r.finalCycle = r.now()
	for _, k := range r.bioKeys {
		b := r.bios[k]
		if b.resident {
			b.ResidentCycles += r.finalCycle - b.lastInsert
			b.resident = false
		}
	}
}

// packPair packs two non-negative ints into one uint64 payload.
func packPair(hi, lo int) uint64 { return uint64(uint32(hi))<<32 | uint64(uint32(lo)) }

// UnpackPair splits a packPair payload.
func UnpackPair(v uint64) (hi, lo int) { return int(v >> 32), int(uint32(v)) }

// OccupancyBuckets returns the standard occupancy histogram layout used for
// the ROB and IQ time-series histograms.
func OccupancyBuckets(capacity int) []int {
	step := capacity / 16
	if step < 1 {
		step = 1
	}
	return metrics.LinearBuckets(step, 16)
}

// EnergyComponentNames returns the breakdown component names in index order
// (export helper shared by the JSON and CSV writers).
func EnergyComponentNames() []string {
	out := make([]string, energy.NumComponents)
	for c := energy.Component(0); c < energy.NumComponents; c++ {
		out[c] = c.String()
	}
	return out
}
