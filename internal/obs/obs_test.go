package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"parrot/internal/trace"
)

func TestBusEmitAndRoundTrip(t *testing.T) {
	b := newBus(1 << 20)
	const n = 3*busChunkSize + 17 // force several chunks
	for i := 0; i < n; i++ {
		b.Emit(KSegment, uint64(i), uint64(i*2), uint64(i*3), uint8(i%2))
	}
	if b.Len() != n {
		t.Fatalf("len = %d, want %d", b.Len(), n)
	}
	i := 0
	b.Each(func(e *Event) {
		if e.Cycle != uint64(i) || e.A != uint64(i*2) || e.B != uint64(i*3) ||
			e.Kind != KSegment || e.Lane != uint8(i%2) {
			t.Fatalf("event %d round-trip mismatch: %+v", i, *e)
		}
		i++
	})
	if i != n {
		t.Fatalf("Each visited %d, want %d", i, n)
	}
	if b.CountKind(KSegment) != n || b.CountKind(KTCHit) != 0 {
		t.Error("CountKind mismatch")
	}
}

func TestBusLimit(t *testing.T) {
	b := newBus(10)
	for i := 0; i < 25; i++ {
		b.Emit(KTCHit, 0, 0, 0, 0)
	}
	if b.Len() != 10 {
		t.Errorf("len = %d, want 10", b.Len())
	}
	if b.Dropped != 15 {
		t.Errorf("dropped = %d, want 15", b.Dropped)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s == "kind?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestPackPair(t *testing.T) {
	hi, lo := UnpackPair(packPair(64, 23))
	if hi != 64 || lo != 23 {
		t.Errorf("round trip = (%d, %d)", hi, lo)
	}
}

func TestPipeProbeLifecycle(t *testing.T) {
	p := newPipeProbe(0, 1000)
	// Engines hand out sequence numbers from a counter starting at 1.
	p.OnDispatch(1, 3, 10, true, false)
	p.OnDispatch(2, 5, 10, false, true)
	p.OnIssue(1, 12)
	p.OnComplete(1, 15)
	p.OnCommit(1, 16)
	p.OnIssue(2, 13)
	// Events for unrecorded seqs must be ignored, not crash.
	p.OnIssue(999, 50)
	p.OnCommit(0, 50)

	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	var recs []UopRec
	p.Each(func(u *UopRec) { recs = append(recs, *u) })
	r := recs[0]
	if r.Seq != 1 || r.Class != 3 || !r.LastUop || r.TraceEnd ||
		r.Dispatch != 10 || r.Issue != 12 || r.Complete != 15 || r.Commit != 16 {
		t.Errorf("rec 0 = %+v", r)
	}
	if recs[1].Commit != 0 {
		t.Errorf("rec 1 must have truncated lifecycle, got %+v", recs[1])
	}
}

func TestPipeProbeOverflow(t *testing.T) {
	p := newPipeProbe(1, 4)
	for i := 1; i <= 10; i++ {
		p.OnDispatch(uint64(i), 0, uint64(i), false, false)
	}
	if p.Len() != 4 || p.Overflow != 6 {
		t.Errorf("len = %d overflow = %d", p.Len(), p.Overflow)
	}
	// Stage events for overflowed seqs are dropped by the bounds check.
	p.OnCommit(9, 99)
	found := false
	p.Each(func(u *UopRec) {
		if u.Commit == 99 {
			found = true
		}
	})
	if found {
		t.Error("overflowed seq must not be writable")
	}
}

func TestSeriesCloseIntervalAndSkip(t *testing.T) {
	s := newSeries(1000)
	s.SetupLane(0, 256, 96)
	s.Sample(5, false, 10, 4)
	s.Sample(20, true, 0, 0) // fast-forwarded idle window
	s.Sample(5, false, 30, 8)

	s.CloseInterval(Interval{StartCycle: 0, EndCycle: 30, Insts: 60})
	if len(s.Intervals) != 1 {
		t.Fatal("no interval closed")
	}
	iv := s.Intervals[0]
	if iv.Cycles != 30 || iv.SkippedCycles != 20 {
		t.Errorf("cycles=%d skipped=%d", iv.Cycles, iv.SkippedCycles)
	}
	if iv.IPC != 2 {
		t.Errorf("ipc = %v", iv.IPC)
	}
	wantRob := float64(5*10+20*0+5*30) / 30
	if iv.ROBOcc[0] != wantRob {
		t.Errorf("rob occ = %v, want %v", iv.ROBOcc[0], wantRob)
	}

	// Accumulators reset: the next interval starts clean.
	s.Sample(10, false, 2, 2)
	s.CloseInterval(Interval{StartCycle: 30, EndCycle: 40, Insts: 10})
	iv = s.Intervals[1]
	if iv.SkippedCycles != 0 || iv.ROBOcc[0] != 2 {
		t.Errorf("second interval: %+v", iv)
	}

	cyc, skip := s.TotalCycles()
	if cyc != 40 || skip != 20 {
		t.Errorf("totals = (%d, %d)", cyc, skip)
	}
}

func testRecorder() *Recorder {
	r := NewRecorder(Options{IntervalInsts: 100, MaxPipeUops: 100, MaxBusEvents: 1000})
	clock := uint64(42)
	r.Bind(&clock)
	return r
}

func tid(pc uint64, dirs ...bool) trace.TID {
	t := trace.TID{Start: pc}
	for _, d := range dirs {
		t = t.WithDir(d)
	}
	return t
}

func TestRecorderBiography(t *testing.T) {
	r := testRecorder()
	a := tid(0x100, true)
	b := tid(0x200)

	r.Segment(a, 10, 24, false)
	r.HotPromote(a)
	r.TCInsert(a.Key(), 24, false)
	r.Segment(a, 10, 24, true)
	r.Segment(a, 10, 24, true)
	r.TCLookup(a.Key(), true)
	r.OptimizeStart(a)
	r.Pass("dce", 24, 20)
	r.OptimizeEnd(a, 24, 18, 9, 6)
	r.TCInsert(a.Key(), 18, true) // optimizer write-back
	r.TraceAbort(b)
	r.TCEvict(a.Key())
	r.Finalize()

	bio := r.Biography(a.Key())
	if bio == nil {
		t.Fatal("no biography for a")
	}
	if bio.NumInsts != 10 || bio.Executions != 2 || bio.ColdExecutions != 1 ||
		bio.HotInsts != 20 || bio.HotPromotions != 1 || bio.Inserts != 1 ||
		bio.Writebacks != 1 || bio.Evictions != 1 || bio.Hits != 1 {
		t.Errorf("bio = %+v", *bio)
	}
	if !bio.Optimized || bio.UopsBefore != 24 || bio.UopsAfter != 18 {
		t.Errorf("optimizer fields = %+v", *bio)
	}
	if bio.Uops != 18 {
		t.Errorf("uops after write-back = %d, want 18", bio.Uops)
	}
	if bio.ResidentCycles != 0 {
		// Insert and evict happen at the same bound clock (42).
		t.Errorf("residency = %d", bio.ResidentCycles)
	}
	if got := r.Biography(b.Key()); got == nil || got.Aborts != 1 {
		t.Errorf("abort bio = %+v", got)
	}
	if bio.UopSavings() != uint64(24-18)*2 {
		t.Errorf("savings = %d", bio.UopSavings())
	}

	// Export order: most-executed first.
	bios := r.Biographies()
	if len(bios) != 2 || bios[0].Key != a.Key() {
		t.Errorf("biography order wrong: %+v", bios)
	}
	if names := r.PassNames(); len(names) != 1 || names[0] != "dce" {
		t.Errorf("pass names = %v", names)
	}
}

func TestRecorderResidencyWindows(t *testing.T) {
	r := NewRecorder(Options{})
	clock := uint64(0)
	r.Bind(&clock)
	a := tid(0x500)
	r.Segment(a, 4, 8, false) // creates the bio
	clock = 100
	r.TCInsert(a.Key(), 8, false)
	clock = 250
	r.TCEvict(a.Key())
	clock = 300
	r.TCInsert(a.Key(), 8, false)
	clock = 400
	r.Finalize() // closes the open residency window

	bio := r.Biography(a.Key())
	if bio.ResidentCycles != 150+100 {
		t.Errorf("residency = %d, want 250", bio.ResidentCycles)
	}
}

func TestSeriesJSONAndCSV(t *testing.T) {
	r := testRecorder()
	r.Series.SetupLane(0, 256, 96)
	r.Series.Sample(10, false, 8, 3)
	r.Series.CloseInterval(Interval{StartCycle: 0, EndCycle: 10, Insts: 25, Warmup: true})
	r.Series.Sample(10, true, 0, 0)
	r.Series.CloseInterval(Interval{StartCycle: 10, EndCycle: 20, Insts: 30})

	var jbuf bytes.Buffer
	if err := r.WriteSeriesJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var doc SeriesDoc
	if err := json.Unmarshal(jbuf.Bytes(), &doc); err != nil {
		t.Fatalf("series JSON does not parse: %v", err)
	}
	if doc.IntervalInsts != 100 || len(doc.Intervals) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if !doc.Intervals[0].Warmup || doc.Intervals[1].Warmup {
		t.Error("warmup flags wrong")
	}
	if doc.Intervals[1].SkippedCycles != 10 {
		t.Errorf("skipped = %d", doc.Intervals[1].SkippedCycles)
	}
	if doc.ROBHist[0] == nil || doc.ROBHist[0].Total != 20 {
		t.Errorf("rob hist = %+v", doc.ROBHist[0])
	}
	if doc.ROBHist[1] != nil {
		t.Error("lane 1 must be nil for unified models")
	}
	if len(doc.Components) == 0 {
		t.Error("no component names")
	}

	var cbuf bytes.Buffer
	if err := r.WriteSeriesCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(rows))
	}
	wantCols := 19 + len(doc.Components)
	for i, row := range rows {
		if len(row) != wantCols {
			t.Errorf("row %d has %d cols, want %d", i, len(row), wantCols)
		}
	}
	if rows[0][0] != "index" || rows[1][0] != "0" || rows[2][0] != "1" {
		t.Errorf("csv index column wrong: %v %v %v", rows[0][0], rows[1][0], rows[2][0])
	}
}

// fillPipe records two complete uop lifecycles and one truncated one.
func fillPipe(p *PipeProbe) {
	p.OnDispatch(1, 1, 5, true, false)
	p.OnIssue(1, 6)
	p.OnComplete(1, 9)
	p.OnCommit(1, 10)
	p.OnDispatch(2, 6, 6, true, true)
	p.OnIssue(2, 7)
	p.OnComplete(2, 12)
	p.OnCommit(2, 13)
	p.OnDispatch(3, 1, 7, false, false) // never commits
}

func TestWriteKanata(t *testing.T) {
	r := testRecorder()
	fillPipe(r.Pipe(0))
	var buf bytes.Buffer
	if err := r.WriteKanata(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "Kanata\t0004" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "C=\t5") {
		t.Fatalf("first cycle line = %q", lines[1])
	}
	var inits, retires, cAdvances int
	for _, l := range lines[1:] {
		f := strings.Split(l, "\t")
		switch f[0] {
		case "I":
			inits++
		case "R":
			retires++
		case "C":
			cAdvances++
		case "C=", "S", "E", "L":
		default:
			t.Errorf("unknown kanata command %q in %q", f[0], l)
		}
	}
	// Only the two fully retired uops are emitted.
	if inits != 2 || retires != 2 {
		t.Errorf("inits = %d retires = %d, want 2 each", inits, retires)
	}
	if cAdvances == 0 {
		t.Error("no cycle advances")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := testRecorder()
	fillPipe(r.Pipe(0))
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	// Three spans per fully retired uop.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(doc.TraceEvents))
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("phase = %q", e.Ph)
		}
		cats[e.Cat]++
	}
	if cats["wait"] != 2 || cats["exec"] != 2 || cats["retire"] != 2 {
		t.Errorf("cats = %v", cats)
	}
}

func TestWriteBiographiesJSON(t *testing.T) {
	r := testRecorder()
	for i := 0; i < 5; i++ {
		tr := tid(uint64(0x1000 + i*64))
		r.Segment(tr, 8, 16, i%2 == 0)
	}
	var buf bytes.Buffer
	if err := r.WriteBiographies(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var doc BioDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("biographies do not parse: %v", err)
	}
	if doc.Count != 5 || len(doc.Traces) != 3 {
		t.Errorf("count = %d, traces = %d", doc.Count, len(doc.Traces))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.IntervalInsts != 1000 || o.MaxPipeUops != 50_000 || o.MaxBusEvents != 1<<20 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{IntervalInsts: 7, MaxPipeUops: 8, MaxBusEvents: 9}.withDefaults()
	if o.IntervalInsts != 7 || o.MaxPipeUops != 8 || o.MaxBusEvents != 9 {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

func TestOccupancyBuckets(t *testing.T) {
	b := OccupancyBuckets(256)
	if len(b) != 17 || b[16] != 256 {
		t.Errorf("buckets(256) = %v", b)
	}
	// Tiny capacities degrade to unit steps, still strictly ascending.
	b = OccupancyBuckets(4)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets(4) not ascending: %v", b)
		}
	}
}
