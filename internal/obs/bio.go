package obs

import (
	"sort"

	"parrot/internal/trace"
)

// TraceBio is the biography of one trace population member: everything that
// happened to the TID over the run — construction, promotions, optimizer
// impact, execution counts, assert flushes and trace-cache residency. The
// per-trace decomposition is what makes trace-reuse results explainable
// (which trace earned its optimization, which thrashed, which aborted).
type TraceBio struct {
	Key     uint64 `json:"key"`
	StartPC uint64 `json:"startPC"`
	NDirs   int    `json:"nDirs"`

	NumInsts int `json:"numInsts"`
	Uops     int `json:"uops"` // current (possibly optimized) uop count

	BuiltAt uint64 `json:"builtAt"` // cycle of the first hot promotion

	HotPromotions   uint64 `json:"hotPromotions"`
	BlazePromotions uint64 `json:"blazePromotions"`

	Inserts    uint64 `json:"inserts"`
	Writebacks uint64 `json:"writebacks"`
	Evictions  uint64 `json:"evictions"`
	Hits       uint64 `json:"hits"`

	Executions     uint64 `json:"executions"`     // hot (trace-cache) executions
	ColdExecutions uint64 `json:"coldExecutions"` // same segment run cold
	HotInsts       uint64 `json:"hotInsts"`       // instructions committed via this trace
	Aborts         uint64 `json:"aborts"`         // assert flushes as a mispredicted trace

	Optimized     bool   `json:"optimized"`
	Optimizations uint64 `json:"optimizations"`
	UopsBefore    int    `json:"uopsBefore,omitempty"`
	UopsAfter     int    `json:"uopsAfter,omitempty"`
	CritBefore    int    `json:"critBefore,omitempty"`
	CritAfter     int    `json:"critAfter,omitempty"`

	// ResidentCycles sums the trace-cache residency windows (insert..evict,
	// with a still-resident tail closed at Finalize).
	ResidentCycles uint64 `json:"residentCycles"`

	lastInsert uint64
	resident   bool
}

// UopSavings returns the optimizer's per-execution uop saving times the hot
// execution count — the total dispatch work the optimizer eliminated for
// this trace.
func (b *TraceBio) UopSavings() uint64 {
	if !b.Optimized || b.UopsBefore <= b.UopsAfter {
		return 0
	}
	return uint64(b.UopsBefore-b.UopsAfter) * b.Executions
}

// bio returns (creating on first touch) the biography for a TID.
func (r *Recorder) bio(tid trace.TID) *TraceBio {
	key := tid.Key()
	b := r.bios[key]
	if b == nil {
		b = &TraceBio{Key: key, StartPC: tid.Start, NDirs: int(tid.NDirs)}
		r.bios[key] = b
		r.bioKeys = append(r.bioKeys, key)
	}
	return b
}

// BioCount returns the number of distinct TIDs observed.
func (r *Recorder) BioCount() int { return len(r.bioKeys) }

// Biography returns the biography of a TID key, or nil.
func (r *Recorder) Biography(key uint64) *TraceBio { return r.bios[key] }

// Biographies returns all trace biographies, most-executed first (ties
// broken by start PC then key, so export order is deterministic).
func (r *Recorder) Biographies() []*TraceBio {
	out := make([]*TraceBio, 0, len(r.bioKeys))
	for _, k := range r.bioKeys {
		out = append(out, r.bios[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Executions != out[j].Executions {
			return out[i].Executions > out[j].Executions
		}
		if out[i].StartPC != out[j].StartPC {
			return out[i].StartPC < out[j].StartPC
		}
		return out[i].Key < out[j].Key
	})
	return out
}
