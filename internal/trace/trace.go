package trace

import (
	"parrot/internal/isa"
)

// Trace is an executable, decoded trace as stored in the trace cache: the
// uop sequence of a segment with branch directions embedded. Unoptimized
// traces keep their conditional branches; the dynamic optimizer later
// replaces internal branches with asserts and rewrites the body under the
// atomic-commit contract.
type Trace struct {
	TID      TID
	Uops     []isa.Uop
	NumInsts int

	// MemOps is the number of memory uops. The optimizer never removes or
	// reorders memory uops, so the k-th memory uop of the (possibly
	// optimized) trace always corresponds to the k-th memory address of a
	// dynamic segment instance.
	MemOps int

	// Branches is the number of conditional-branch uops embedded in the
	// trace (equal to TID.NDirs at construction).
	Branches int

	// Optimized marks traces rewritten by the dynamic optimizer.
	Optimized bool

	// OrigUops and OrigCritPath record the pre-optimization uop count and
	// dependency critical path; OptCritPath the post-optimization critical
	// path (the paper's Figure 4.9 statistics).
	OrigUops     int
	OrigCritPath int
	OptCritPath  int

	// Executions counts dynamic uses, for Figure 4.10 (optimizer work reuse).
	Executions uint64
}

// Build constructs the decoded trace for a segment: uops are copied from
// the decoded instructions in program order with the dynamic branch
// directions embedded (the reuse container for decode work, §2.1).
func Build(seg *Segment) *Trace {
	return BuildInto(nil, seg)
}

// BuildInto is Build with slab-backed storage: it constructs the trace into
// t, reusing t's uop storage (typically a trace previously evicted from the
// trace cache). Every field is overwritten, so a recycled trace is
// bit-identical to a freshly built one. t may be nil, in which case a new
// trace is allocated.
func BuildInto(t *Trace, seg *Segment) *Trace {
	if t == nil {
		t = &Trace{Uops: make([]isa.Uop, 0, seg.Uops)}
	}
	*t = Trace{
		TID:      seg.TID,
		NumInsts: len(seg.Insts),
		Uops:     t.Uops[:0],
	}
	dir := 0
	for _, d := range seg.Insts {
		for _, u := range d.Inst.Uops {
			switch {
			case u.Op == isa.OpBr:
				u.Taken = d.Taken
				dir++
				t.Branches++
			case u.Op.IsCTI():
				u.Taken = d.Taken
			case u.Op.IsMem():
				t.MemOps++
			}
			t.Uops = append(t.Uops, u)
		}
	}
	t.OrigUops = len(t.Uops)
	return t
}

// CountMemOps returns the number of memory uops in a uop slice.
func CountMemOps(uops []isa.Uop) int {
	n := 0
	for i := range uops {
		if uops[i].Op.IsMem() {
			n++
		}
	}
	return n
}
