// Package trace implements PARROT's trace abstractions: trace identifiers
// (TIDs), the deterministic trace-selection state machine of §2.2 and the
// construction of decoded, executable traces from committed instructions.
//
// A trace is a continuous segment of the dynamic instruction flow, possibly
// spanning several basic blocks. With the paper's selection criteria a TID
// compacts into a single start address plus a sequence of conditional-branch
// directions: the only indirect CTI permitted inside a trace is a RETURN
// whose call context is itself part of the trace, so its target is
// implicitly available.
package trace

import "fmt"

// MaxUops is the trace frame capacity: traces are constructed into frames of
// at most 64 uops (§2.2).
const MaxUops = 64

// TID uniquely identifies a trace: the start address and the directions of
// the conditional branches executed inside it.
type TID struct {
	Start uint64 // address of the first instruction
	Dirs  uint64 // bit i = direction of the i-th conditional branch
	NDirs uint8  // number of direction bits
}

// Valid reports whether the TID identifies a real trace.
func (t TID) Valid() bool { return t.Start != 0 }

// WithDir appends a direction bit, returning the extended TID.
func (t TID) WithDir(taken bool) TID {
	if taken {
		t.Dirs |= 1 << t.NDirs
	}
	t.NDirs++
	return t
}

// Dir returns the i-th direction bit.
func (t TID) Dir(i int) bool { return t.Dirs>>uint(i)&1 == 1 }

// Key compacts the TID into a 64-bit hash key for filters, predictors and
// the trace cache. Distinct TIDs may in principle collide, exactly as the
// hardware structures the paper describes would alias; collisions are rare
// at the working-set sizes involved.
func (t TID) Key() uint64 {
	h := t.Start
	h ^= t.Dirs * 0x9E3779B97F4A7C15
	h ^= uint64(t.NDirs) << 56
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// Concat joins two TIDs of consecutive identical traces (loop unrolling):
// the start address stays, direction strings concatenate.
func (t TID) Concat(o TID) TID {
	j := t
	for i := 0; i < int(o.NDirs); i++ {
		j = j.WithDir(o.Dir(i))
	}
	return j
}

// String implements fmt.Stringer.
func (t TID) String() string {
	dirs := make([]byte, t.NDirs)
	for i := range dirs {
		if t.Dir(i) {
			dirs[i] = 'T'
		} else {
			dirs[i] = 'N'
		}
	}
	return fmt.Sprintf("%#x:%s", t.Start, dirs)
}
