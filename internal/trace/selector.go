package trace

import (
	"parrot/internal/isa"
	"parrot/internal/workload"
)

// Segment is one completed trace-selection unit: a run of committed
// instructions with its TID. Segments drive both pipelines — hot execution
// replays the trace-cache copy of the segment, cold execution fetches and
// decodes its instructions individually.
type Segment struct {
	TID   TID
	Insts []workload.DynInst

	// Uops is the total decoded uop count.
	Uops int

	// Joined counts how many identical consecutive traces were merged into
	// this segment (1 = no joining). Joining implements implicit loop
	// unrolling (§2.2).
	Joined int
}

// NumInsts returns the instruction count of the segment.
func (s *Segment) NumInsts() int { return len(s.Insts) }

// Selector is the deterministic trace-selection state machine of §2.2,
// applied to the in-order committed instruction stream:
//
//   - capacity limitation: frames of at most 64 uops;
//   - complete basic blocks: traces terminate on CTIs (except for extremely
//     large blocks, which split mid-block at the frame boundary);
//   - terminating CTIs: indirect jumps (and episode discontinuities, which
//     behave like them) always terminate; backward taken branches terminate;
//   - RETURN terminates only when it exits the outermost procedure context
//     already encountered in the trace, tracked with a context counter
//     incremented on calls and decremented on returns (procedure inlining);
//   - two or more identical consecutive traces are joined into one, up to
//     the capacity limit (loop unrolling).
//
// The selector is allocation-free in steady state: segment instruction
// storage comes from an internal slab of recycled slices, the pending
// segment is held by value, and Feed returns an internal output buffer that
// is only valid until the next Feed or Flush call. Callers that retain
// segments across calls must copy them; callers that consume them
// immediately should hand the storage back with Recycle.
type Selector struct {
	cur        Segment
	ctx        int // procedure context counter
	pending    Segment
	hasPending bool

	out  []Segment            // reused Feed/Flush output buffer
	free [][]workload.DynInst // slab of recycled instruction slices

	// Stats.
	Built   uint64 // segments emitted
	JoinOps uint64 // joining events

	// probe, when non-nil, observes selection decisions (segment emission
	// with joining applied, and join events). One nil-check branch per
	// emitted segment; probes observe only.
	probe Probe
}

// Probe receives trace-selection events when observability is enabled
// (implemented by obs.Recorder; the interface lives here so the selector
// does not depend on the observability layer).
type Probe interface {
	// SegmentEmitted reports one finalized selection segment: its TID, the
	// instruction and uop counts, and how many identical consecutive units
	// were joined into it (1 = no joining).
	SegmentEmitted(tid TID, insts, uops, joined int)
	// SegmentJoined reports one joining event (implicit loop unrolling):
	// the pending segment absorbed an identical consecutive unit.
	SegmentJoined(tid TID, joined int)
}

// NewSelector returns an empty selection state machine.
func NewSelector() *Selector { return &Selector{} }

// SetProbe attaches (or, with nil, detaches) a selection probe.
func (s *Selector) SetProbe(p Probe) { s.probe = p }

// StateFingerprint folds the selector's position — the partially built
// segment, the pending (join-candidate) segment and the procedure-context
// counter — into one word for the hot-window memoization fingerprint.
// Only O(1) scalars are read, never the buffered instructions.
func (s *Selector) StateFingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	pend := uint64(0)
	if s.hasPending {
		pend = 1 + s.pending.TID.Key() + uint64(len(s.pending.Insts))<<40
	}
	for _, w := range [...]uint64{
		uint64(s.ctx), s.cur.TID.Key(), uint64(len(s.cur.Insts)),
		pend, s.Built, s.JoinOps,
	} {
		h = (h ^ w) * 1099511628211
	}
	return h
}

// Reset returns the selector to its just-constructed state, keeping the
// slab of recycled instruction storage (machine-pooling Reset protocol).
func (s *Selector) Reset() {
	s.recycleInsts(s.cur.Insts)
	s.cur = Segment{}
	s.ctx = 0
	if s.hasPending {
		s.recycleInsts(s.pending.Insts)
	}
	s.pending = Segment{}
	s.hasPending = false
	s.out = s.out[:0]
	s.Built, s.JoinOps = 0, 0
	s.probe = nil // observers are per-run
}

// grabInsts returns an empty instruction slice, reusing slab storage when
// available.
func (s *Selector) grabInsts() []workload.DynInst {
	if n := len(s.free); n > 0 {
		sl := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return sl
	}
	// A fresh slice sized for a typical joined segment; it grows at most a
	// few times before entering the recycling loop.
	return make([]workload.DynInst, 0, 32)
}

// recycleInsts returns an instruction slice's backing storage to the slab.
func (s *Selector) recycleInsts(sl []workload.DynInst) {
	if cap(sl) == 0 {
		return
	}
	s.free = append(s.free, sl[:0])
}

// Recycle hands a consumed segment's instruction storage back to the
// selector for reuse. The caller must not touch seg.Insts afterwards.
// Recycling is optional — callers that retain segments simply skip it.
func (s *Selector) Recycle(seg *Segment) {
	s.recycleInsts(seg.Insts)
	seg.Insts = nil
}

// Feed consumes one committed instruction and appends any completed
// segments (usually none or one; flushing joined traces can emit one while
// another remains pending) to an internal buffer that is returned. The
// returned slice and the segments' instruction storage are valid until the
// next Feed or Flush call unless recycled earlier.
func (s *Selector) Feed(d *workload.DynInst) []Segment {
	s.out = s.out[:0]

	nu := len(d.Inst.Uops)
	// Capacity: never exceed the frame. If appending would overflow, close
	// the current trace first (mid-block split for extremely large blocks).
	if s.cur.Uops > 0 && s.cur.Uops+nu > MaxUops {
		s.close()
	}

	if len(s.cur.Insts) == 0 {
		s.cur.TID = TID{Start: d.Inst.PC}
		s.ctx = 0
		if s.cur.Insts == nil {
			s.cur.Insts = s.grabInsts()
		}
	}
	s.cur.Insts = append(s.cur.Insts, *d)
	s.cur.Uops += nu

	terminate := false
	switch d.Inst.Kind {
	case isa.KindBranch:
		s.cur.TID = s.cur.TID.WithDir(d.Taken)
		// Backward taken branches terminate a trace (loop iteration cut).
		if d.Taken && d.Inst.Target <= d.Inst.PC {
			terminate = true
		}
	case isa.KindJumpInd:
		terminate = true
	case isa.KindCall:
		s.ctx++
	case isa.KindRet:
		if s.ctx > 0 {
			s.ctx--
		} else {
			// Exits the outermost context seen in this trace.
			terminate = true
		}
	}
	if d.EpisodeEnd {
		// The dynamic successor is unrelated code: treat like an indirect
		// control transfer.
		terminate = true
	}
	if s.cur.Uops >= MaxUops {
		terminate = true
	}
	if terminate {
		s.close()
	}
	return s.out
}

// close completes the current segment, applying the joining rule, and
// appends any segment that is now final to the output buffer.
func (s *Selector) close() {
	if len(s.cur.Insts) == 0 {
		return
	}
	done := s.cur
	done.Joined = 1
	s.cur = Segment{Insts: s.grabInsts()}
	s.ctx = 0

	if s.hasPending {
		p := &s.pending
		if sameUnit(p, &done) && p.Uops+done.Uops <= MaxUops {
			// Join: identical consecutive traces merge (loop unrolling).
			p.TID = p.TID.Concat(done.TID)
			p.Insts = append(p.Insts, done.Insts...)
			p.Uops += done.Uops
			p.Joined++
			s.JoinOps++
			if s.probe != nil {
				s.probe.SegmentJoined(p.TID, p.Joined)
			}
			s.recycleInsts(done.Insts)
			return
		}
		// Flush the pending trace; the new one becomes pending.
		s.out = append(s.out, *p)
		s.pending = done
		s.Built++
		if s.probe != nil {
			e := &s.out[len(s.out)-1]
			s.probe.SegmentEmitted(e.TID, len(e.Insts), e.Uops, e.Joined)
		}
		return
	}
	s.pending = done
	s.hasPending = true
}

// NDirsPerUnit returns the direction bits contributed by one joined unit.
func (s *Segment) NDirsPerUnit() int {
	if s.Joined == 0 {
		return int(s.TID.NDirs)
	}
	return int(s.TID.NDirs) / s.Joined
}

// sameUnit reports whether done repeats the base (per-unit) trace of p.
func sameUnit(p *Segment, done *Segment) bool {
	if p.TID.Start != done.TID.Start {
		return false
	}
	unitDirs := p.NDirsPerUnit()
	if int(done.TID.NDirs) != unitDirs {
		return false
	}
	if len(done.Insts)*p.Joined != len(p.Insts) {
		return false
	}
	// Compare instruction sequences of the last unit of p with done.
	off := len(p.Insts) - len(done.Insts)
	for i := range done.Insts {
		if p.Insts[off+i].Inst != done.Insts[i].Inst ||
			p.Insts[off+i].Taken != done.Insts[i].Taken {
			return false
		}
	}
	return true
}

// Flush force-completes any in-progress and pending segments (stream end).
// The returned slice follows the same reuse contract as Feed.
func (s *Selector) Flush() []Segment {
	s.out = s.out[:0]
	s.close()
	if s.hasPending {
		s.out = append(s.out, s.pending)
		s.pending = Segment{}
		s.hasPending = false
		s.Built++
		if s.probe != nil {
			e := &s.out[len(s.out)-1]
			s.probe.SegmentEmitted(e.TID, len(e.Insts), e.Uops, e.Joined)
		}
	}
	return s.out
}
