package trace

import (
	"testing"
	"testing/quick"

	"parrot/internal/isa"
	"parrot/internal/workload"
)

func TestTIDDirs(t *testing.T) {
	tid := TID{Start: 0x1000}
	tid = tid.WithDir(true)
	tid = tid.WithDir(false)
	tid = tid.WithDir(true)
	if tid.NDirs != 3 || !tid.Dir(0) || tid.Dir(1) || !tid.Dir(2) {
		t.Errorf("dirs wrong: %v", tid)
	}
	if tid.String() != "0x1000:TNT" {
		t.Errorf("String = %q", tid.String())
	}
	if !tid.Valid() || (TID{}).Valid() {
		t.Error("validity misreported")
	}
}

func TestTIDConcat(t *testing.T) {
	a := TID{Start: 0x1000}.WithDir(true).WithDir(false)
	b := TID{Start: 0x1000}.WithDir(true).WithDir(false)
	j := a.Concat(b)
	if j.Start != 0x1000 || j.NDirs != 4 {
		t.Fatalf("concat = %v", j)
	}
	for i, want := range []bool{true, false, true, false} {
		if j.Dir(i) != want {
			t.Errorf("dir %d = %v", i, j.Dir(i))
		}
	}
}

// Property: distinct direction strings give distinct keys (within 16 bits).
func TestTIDKeySensitivity(t *testing.T) {
	f := func(start uint64, dirs1, dirs2 uint16) bool {
		if dirs1 == dirs2 {
			return true
		}
		a := TID{Start: start, Dirs: uint64(dirs1), NDirs: 16}
		b := TID{Start: start, Dirs: uint64(dirs2), NDirs: 16}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Helpers building synthetic committed streams.

func mkInst(pc uint64, kind isa.InstKind, nUops int, target uint64) *isa.Inst {
	in := &isa.Inst{PC: pc, Size: 4, Kind: kind, Target: target}
	for i := 0; i < nUops; i++ {
		u := isa.NewUop(isa.OpAdd)
		u.Dst[0] = isa.GPR(i % 8)
		u.Src[0] = isa.GPR((i + 1) % 8)
		u.Src[1] = isa.GPR((i + 2) % 8)
		in.Uops = append(in.Uops, u)
	}
	if kind == isa.KindBranch {
		in.Uops[len(in.Uops)-1] = isa.NewUop(isa.OpBr)
		in.Uops[len(in.Uops)-1].Src[0] = isa.RegFlags
		in.Uops[len(in.Uops)-1].Cond = isa.CondNE
	}
	if kind == isa.KindRet {
		in.Uops[len(in.Uops)-1] = isa.NewUop(isa.OpRet)
	}
	if kind == isa.KindCall {
		in.Uops[len(in.Uops)-1] = isa.NewUop(isa.OpCall)
	}
	if kind == isa.KindJumpInd {
		in.Uops[len(in.Uops)-1] = isa.NewUop(isa.OpJmpI)
	}
	return in
}

func dyn(in *isa.Inst, taken bool) workload.DynInst {
	return workload.DynInst{Inst: in, Taken: taken, NextPC: in.FallThrough()}
}

func feedAll(sel *Selector, ds []workload.DynInst) []Segment {
	var out []Segment
	for _, d := range ds {
		out = append(out, sel.Feed(&d)...)
	}
	out = append(out, sel.Flush()...)
	return out
}

func TestSelectorBackwardTakenTerminates(t *testing.T) {
	// Loop: body of 3 insts ending with backward-taken branch. Two
	// iterations then exit: with joining, both iterations merge.
	body := []*isa.Inst{
		mkInst(0x100, isa.KindSimple, 1, 0),
		mkInst(0x104, isa.KindSimple, 1, 0),
		mkInst(0x108, isa.KindBranch, 2, 0x100), // backward branch
	}
	var stream []workload.DynInst
	for it := 0; it < 2; it++ {
		stream = append(stream, dyn(body[0], false), dyn(body[1], false), dyn(body[2], it == 0))
	}
	segs := feedAll(NewSelector(), stream)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (taken-iteration, exit-iteration)", len(segs))
	}
	if segs[0].TID.Start != 0x100 || segs[0].TID.NDirs != 1 || !segs[0].TID.Dir(0) {
		t.Errorf("first segment TID = %v", segs[0].TID)
	}
	if segs[1].TID.NDirs != 1 || segs[1].TID.Dir(0) {
		t.Errorf("exit segment TID = %v", segs[1].TID)
	}
}

func TestSelectorJoinsIdenticalIterations(t *testing.T) {
	// 3 identical taken iterations of 4 uops each join into one 12-uop
	// trace (loop unrolling); a final differing iteration flushes it.
	body := []*isa.Inst{
		mkInst(0x200, isa.KindSimple, 2, 0),
		mkInst(0x208, isa.KindBranch, 2, 0x200),
	}
	var stream []workload.DynInst
	for it := 0; it < 4; it++ {
		stream = append(stream, dyn(body[0], false), dyn(body[1], it < 3))
	}
	segs := feedAll(NewSelector(), stream)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].Joined != 3 {
		t.Errorf("joined = %d, want 3", segs[0].Joined)
	}
	if segs[0].Uops != 12 || segs[0].TID.NDirs != 3 {
		t.Errorf("joined segment = %d uops, %d dirs", segs[0].Uops, segs[0].TID.NDirs)
	}
}

func TestSelectorJoiningRespectsCapacity(t *testing.T) {
	// 20-uop iterations: only 3 fit into the 64-uop frame.
	body := []*isa.Inst{
		mkInst(0x300, isa.KindComplex, 9, 0),
		mkInst(0x30c, isa.KindComplex, 9, 0),
		mkInst(0x318, isa.KindBranch, 2, 0x300),
	}
	var stream []workload.DynInst
	for it := 0; it < 7; it++ {
		stream = append(stream, dyn(body[0], false), dyn(body[1], false), dyn(body[2], it < 6))
	}
	segs := feedAll(NewSelector(), stream)
	for _, s := range segs {
		if s.Uops > MaxUops {
			t.Fatalf("segment exceeds frame: %d uops", s.Uops)
		}
	}
	if segs[0].Joined != 3 || segs[0].Uops != 60 {
		t.Errorf("first unrolled segment = %d joined, %d uops", segs[0].Joined, segs[0].Uops)
	}
}

func TestSelectorIndirectJumpTerminates(t *testing.T) {
	stream := []workload.DynInst{
		dyn(mkInst(0x400, isa.KindSimple, 1, 0), false),
		dyn(mkInst(0x404, isa.KindJumpInd, 1, 0), true),
		dyn(mkInst(0x500, isa.KindSimple, 1, 0), false),
	}
	segs := feedAll(NewSelector(), stream)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].NumInsts() != 2 {
		t.Errorf("first segment insts = %d, want 2 (ind jump included)", segs[0].NumInsts())
	}
}

func TestSelectorRetContextCounter(t *testing.T) {
	// call f; f body; ret — the ret returns into a context seen in the
	// trace, so it must NOT terminate (procedure inlining).
	stream := []workload.DynInst{
		dyn(mkInst(0x600, isa.KindCall, 1, 0x700), true),
		dyn(mkInst(0x700, isa.KindSimple, 1, 0), false),
		dyn(mkInst(0x704, isa.KindRet, 1, 0), true),
		dyn(mkInst(0x605, isa.KindSimple, 1, 0), false),
	}
	s := stream[3]
	s.EpisodeEnd = true
	stream[3] = s
	segs := feedAll(NewSelector(), stream)
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1 (inlined call)", len(segs))
	}
	if segs[0].NumInsts() != 4 {
		t.Errorf("inlined segment = %d insts", segs[0].NumInsts())
	}
}

func TestSelectorBareRetTerminates(t *testing.T) {
	// A ret without a preceding call in the trace exits the outermost
	// context and terminates.
	stream := []workload.DynInst{
		dyn(mkInst(0x800, isa.KindSimple, 1, 0), false),
		dyn(mkInst(0x804, isa.KindRet, 1, 0), true),
		dyn(mkInst(0x900, isa.KindSimple, 1, 0), false),
	}
	segs := feedAll(NewSelector(), stream)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
}

func TestSelectorCapacitySplitsHugeBlocks(t *testing.T) {
	// A run of plain instructions with no CTI must split at the frame.
	var stream []workload.DynInst
	for i := 0; i < 40; i++ {
		stream = append(stream, dyn(mkInst(uint64(0xA00+i*4), isa.KindComplex, 3, 0), false))
	}
	segs := feedAll(NewSelector(), stream)
	for _, s := range segs {
		if s.Uops > MaxUops {
			t.Fatalf("segment uops %d > frame", s.Uops)
		}
	}
	if len(segs) < 2 {
		t.Fatal("huge block must split into multiple frames")
	}
}

func TestSelectorEpisodeEndTerminates(t *testing.T) {
	in := mkInst(0xB00, isa.KindSimple, 1, 0)
	d := dyn(in, false)
	d.EpisodeEnd = true
	segs := feedAll(NewSelector(), []workload.DynInst{d, dyn(mkInst(0xB04, isa.KindSimple, 1, 0), false)})
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
}

func TestSelectorOnRealWorkload(t *testing.T) {
	p, _ := workload.ByName("gcc")
	prog := workload.Generate(p)
	s := workload.NewStream(prog, 30000)
	sel := NewSelector()
	insts := 0
	var segs []Segment
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		insts++
		segs = append(segs, sel.Feed(&d)...)
	}
	segs = append(segs, sel.Flush()...)

	total := 0
	for _, sg := range segs {
		total += sg.NumInsts()
		if sg.Uops > MaxUops {
			t.Fatalf("segment %v exceeds capacity: %d", sg.TID, sg.Uops)
		}
		if sg.Uops == 0 || sg.NumInsts() == 0 {
			t.Fatal("empty segment emitted")
		}
	}
	if total != insts {
		t.Fatalf("segments cover %d of %d instructions", total, insts)
	}
	// Hot loops must yield repeated TIDs.
	counts := map[uint64]int{}
	for _, sg := range segs {
		counts[sg.TID.Key()]++
	}
	maxReuse := 0
	for _, c := range counts {
		if c > maxReuse {
			maxReuse = c
		}
	}
	if maxReuse < 10 {
		t.Errorf("hottest TID reused only %d times", maxReuse)
	}
}

func TestBuildTrace(t *testing.T) {
	body := []*isa.Inst{
		mkInst(0x200, isa.KindSimple, 2, 0),
		mkInst(0x208, isa.KindBranch, 2, 0x200),
	}
	stream := []workload.DynInst{dyn(body[0], false), dyn(body[1], true), dyn(body[0], false), dyn(body[1], false)}
	segs := feedAll(NewSelector(), stream)
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	tr := Build(&segs[0])
	if len(tr.Uops) != 4 || tr.NumInsts != 2 || tr.Branches != 1 {
		t.Fatalf("trace = %d uops %d insts %d branches", len(tr.Uops), tr.NumInsts, tr.Branches)
	}
	last := tr.Uops[len(tr.Uops)-1]
	if last.Op != isa.OpBr || !last.Taken {
		t.Errorf("embedded direction missing: %v", last)
	}
	if tr.OrigUops != 4 || tr.Optimized {
		t.Errorf("orig bookkeeping wrong: %+v", tr)
	}
}

func TestBuildCountsMemOps(t *testing.T) {
	in := &isa.Inst{PC: 0x100, Size: 4, Kind: isa.KindSimple}
	ld := isa.NewUop(isa.OpLoad)
	ld.Dst[0] = isa.GPR(1)
	ld.Src[0] = isa.GPR(2)
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = isa.GPR(1)
	st.Src[1] = isa.GPR(3)
	in.Uops = []isa.Uop{ld, st}
	d := dyn(in, false)
	d.EpisodeEnd = true
	segs := feedAll(NewSelector(), []workload.DynInst{d})
	tr := Build(&segs[0])
	if tr.MemOps != 2 {
		t.Errorf("MemOps = %d, want 2", tr.MemOps)
	}
	if CountMemOps(tr.Uops) != 2 {
		t.Errorf("CountMemOps = %d", CountMemOps(tr.Uops))
	}
}
