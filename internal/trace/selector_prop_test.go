package trace

import (
	"testing"
	"testing/quick"

	"parrot/internal/workload"
)

// TestSelectorPartitionProperty: over random applications and stream
// lengths, trace selection partitions the committed stream exactly — every
// instruction lands in exactly one segment, order preserved, frames within
// capacity.
func TestSelectorPartitionProperty(t *testing.T) {
	apps := workload.Apps()
	f := func(appIdx uint8, lenSel uint8) bool {
		p := apps[int(appIdx)%len(apps)]
		n := 2000 + int(lenSel)*40
		prog := workload.Generate(p)
		stream := workload.NewStream(prog, n)
		sel := NewSelector()

		var fed []workload.DynInst
		var segs []Segment
		for {
			d, ok := stream.Next()
			if !ok {
				break
			}
			fed = append(fed, d)
			segs = append(segs, sel.Feed(&d)...)
		}
		segs = append(segs, sel.Flush()...)

		// Partition: concatenated segments reproduce the fed stream.
		k := 0
		for _, seg := range segs {
			if seg.Uops > MaxUops || seg.Uops <= 0 {
				return false
			}
			dirs := 0
			uops := 0
			for _, d := range seg.Insts {
				if k >= len(fed) || fed[k].Inst != d.Inst || fed[k].Taken != d.Taken {
					return false
				}
				uops += len(d.Inst.Uops)
				if d.Inst.Kind.String() == "branch" {
					dirs++
				}
				k++
			}
			if uops != seg.Uops {
				return false
			}
			// TID direction bits correspond to the conditional branches.
			if int(seg.TID.NDirs) != dirs {
				return false
			}
			// Single entry: TID start is the first instruction.
			if seg.TID.Start != seg.Insts[0].Inst.PC {
				return false
			}
		}
		return k == len(fed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSelectorDeterminismProperty: feeding the same stream twice yields
// byte-identical segmentation.
func TestSelectorDeterminismProperty(t *testing.T) {
	p, _ := workload.ByName("twolf")
	prog := workload.Generate(p)
	run := func() []TID {
		stream := workload.NewStream(prog, 8000)
		sel := NewSelector()
		var tids []TID
		for {
			d, ok := stream.Next()
			if !ok {
				break
			}
			for _, s := range sel.Feed(&d) {
				tids = append(tids, s.TID)
			}
		}
		for _, s := range sel.Flush() {
			tids = append(tids, s.TID)
		}
		return tids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("segment counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segmentation diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestJoiningBoundsUnrolling: joined traces never misreport their unit
// structure.
func TestJoiningBoundsUnrolling(t *testing.T) {
	p, _ := workload.ByName("swim")
	prog := workload.Generate(p)
	stream := workload.NewStream(prog, 20000)
	sel := NewSelector()
	joined := 0
	for {
		d, ok := stream.Next()
		if !ok {
			break
		}
		for _, seg := range sel.Feed(&d) {
			if seg.Joined < 1 {
				t.Fatalf("joined = %d", seg.Joined)
			}
			if seg.Joined > 1 {
				joined++
				if len(seg.Insts)%seg.Joined != 0 {
					t.Fatalf("joined segment %v not unit-divisible: %d insts / %d units",
						seg.TID, len(seg.Insts), seg.Joined)
				}
				if int(seg.TID.NDirs)%seg.Joined != 0 {
					t.Fatalf("joined dirs %d not divisible by %d", seg.TID.NDirs, seg.Joined)
				}
			}
		}
	}
	if joined == 0 {
		t.Error("swim's tight loops must produce joined (unrolled) traces")
	}
}
