package filter

import (
	"testing"
	"testing/quick"
)

func TestPromotionAtThreshold(t *testing.T) {
	c := New(64, 4, 3)
	key := uint64(0xABCD)
	for i := 1; i <= 2; i++ {
		if _, promoted := c.Bump(key); promoted {
			t.Fatalf("promoted at count %d, threshold 3", i)
		}
	}
	count, promoted := c.Bump(key)
	if !promoted || count != 3 {
		t.Fatalf("third bump = %d,%v, want 3,true", count, promoted)
	}
	// Promotion fires exactly once.
	if _, promoted := c.Bump(key); promoted {
		t.Fatal("promotion must not re-fire")
	}
	if c.Stats.Promotions != 1 {
		t.Errorf("promotions = %d", c.Stats.Promotions)
	}
}

func TestThresholdOnePromotesImmediately(t *testing.T) {
	c := New(16, 2, 1)
	if _, promoted := c.Bump(7); !promoted {
		t.Fatal("threshold 1 must promote on first touch")
	}
	if _, promoted := c.Bump(7); promoted {
		t.Fatal("must not re-promote")
	}
}

func TestCountAndForget(t *testing.T) {
	c := New(64, 4, 10)
	c.Bump(5)
	c.Bump(5)
	if c.Count(5) != 2 {
		t.Errorf("count = %d", c.Count(5))
	}
	if c.Count(6) != 0 {
		t.Errorf("absent count = %d", c.Count(6))
	}
	c.Forget(5)
	if c.Count(5) != 0 {
		t.Error("forget must clear entry")
	}
	// Re-touch restarts from 1.
	if n, _ := c.Bump(5); n != 1 {
		t.Errorf("restart count = %d", n)
	}
}

func TestEvictionRestartsCounting(t *testing.T) {
	// 1 set of 2 ways: three keys in the same set thrash.
	c := New(2, 2, 100)
	// All keys map into the single set.
	c.Bump(1)
	c.Bump(2)
	c.Bump(3) // evicts LRU (1)
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
	if n, _ := c.Bump(1); n != 1 {
		t.Errorf("evicted key restarts at %d", n)
	}
}

func TestLRUKeepsHotEntries(t *testing.T) {
	c := New(2, 2, 1000)
	for i := 0; i < 50; i++ {
		c.Bump(10) // hot
		c.Bump(uint64(100 + i))
	}
	if c.Count(10) != 50 {
		t.Errorf("hot entry count = %d, want 50 (must never evict)", c.Count(10))
	}
}

// Property: counter for a lone key equals the number of bumps (saturating).
func TestCountMatchesBumps(t *testing.T) {
	f := func(n uint8) bool {
		c := New(16, 4, 1<<30)
		key := uint64(42)
		for i := 0; i < int(n); i++ {
			c.Bump(key)
		}
		if n == 0 {
			return c.Count(key) == 0
		}
		return c.Count(key) == uint32(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntriesRounding(t *testing.T) {
	c := New(100, 4, 2)
	if c.Entries() < 100 || c.Entries()%4 != 0 {
		t.Errorf("entries = %d", c.Entries())
	}
	if c.Threshold() != 2 {
		t.Errorf("threshold = %d", c.Threshold())
	}
}
