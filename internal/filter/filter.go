// Package filter implements PARROT's gradual filtering structures: the hot
// filter (selecting frequent TIDs for trace construction) and the blazing
// filter (selecting the most frequent traces for dynamic optimization).
//
// Both are small set-associative caches of saturating access counters keyed
// by TID (§2.3): each trace selection or execution increments the counter,
// and crossing the threshold fires a one-time promotion — construction and
// trace-cache insertion for the hot filter, optimization and write-back for
// the blazing filter.
package filter

// Stats counts filter activity for energy accounting and analysis.
type Stats struct {
	Accesses   uint64
	Promotions uint64
	Evictions  uint64
}

// CounterCache is a set-associative counter cache with LRU replacement.
type CounterCache struct {
	ways      int
	setMask   uint64
	threshold uint32

	keys  []uint64
	count []uint32
	valid []bool
	used  []uint64
	clock uint64

	Stats Stats
}

// New builds a counter cache with the given total entries (rounded up to a
// power of two), associativity and promotion threshold.
func New(entries, ways int, threshold uint32) *CounterCache {
	if ways < 1 {
		ways = 1
	}
	sets := 1
	for sets*ways < entries {
		sets <<= 1
	}
	n := sets * ways
	return &CounterCache{
		ways:      ways,
		setMask:   uint64(sets - 1),
		threshold: threshold,
		keys:      make([]uint64, n),
		count:     make([]uint32, n),
		valid:     make([]bool, n),
		used:      make([]uint64, n),
	}
}

// Threshold returns the promotion threshold.
func (c *CounterCache) Threshold() uint32 { return c.threshold }

// Entries returns the total entry count.
func (c *CounterCache) Entries() int { return len(c.keys) }

// Epoch returns the filter's LRU clock: a monotone count of Bump calls,
// each of which mutates counter and recency state. Used as a dirty-set
// summary by the memoization fingerprint.
func (c *CounterCache) Epoch() uint64 { return c.clock }

// Bump increments the counter for key, allocating (and possibly evicting)
// on first touch. promoted is true exactly once per resident entry: on the
// access that reaches the threshold. A re-allocated (evicted and re-inserted)
// key starts counting from zero again, as in the hardware.
func (c *CounterCache) Bump(key uint64) (count uint32, promoted bool) {
	c.clock++
	c.Stats.Accesses++
	set := (key ^ key>>17) & c.setMask
	base := int(set) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.keys[i] == key {
			c.used[i] = c.clock
			if c.count[i] < ^uint32(0) {
				c.count[i]++
			}
			if c.count[i] == c.threshold {
				c.Stats.Promotions++
				return c.count[i], true
			}
			return c.count[i], false
		}
		if !c.valid[i] {
			victim = i
		} else if c.valid[victim] && c.used[i] < c.used[victim] {
			victim = i
		}
	}
	if c.valid[victim] {
		c.Stats.Evictions++
	}
	c.valid[victim] = true
	c.keys[victim] = key
	c.count[victim] = 1
	c.used[victim] = c.clock
	if c.threshold == 1 {
		c.Stats.Promotions++
		return 1, true
	}
	return 1, false
}

// Reset returns the filter to its just-constructed state: counters, LRU
// clock and statistics cleared (machine-pooling Reset protocol).
func (c *CounterCache) Reset() {
	for i := range c.keys {
		c.keys[i], c.count[i], c.valid[i], c.used[i] = 0, 0, false, 0
	}
	c.clock = 0
	c.Stats = Stats{}
}

// Count returns the current counter for key without modifying state.
func (c *CounterCache) Count(key uint64) uint32 {
	set := (key ^ key>>17) & c.setMask
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.keys[i] == key {
			return c.count[i]
		}
	}
	return 0
}

// Forget removes the entry for key, if present. The blazing filter uses
// this after a trace is optimized so the (now replaced) trace does not
// immediately re-promote.
func (c *CounterCache) Forget(key uint64) {
	set := (key ^ key>>17) & c.setMask
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.keys[i] == key {
			c.valid[i] = false
			return
		}
	}
}
