package ooo

import (
	"testing"

	"parrot/internal/isa"
)

// Engine micro-benchmarks for the hot per-cycle paths. Each benchmark runs a
// fixed deterministic program through a pooled (Reset) engine per iteration
// and reports ns/cycle, the per-clock cost of the kernel. The workloads pick
// out the three regimes the event-driven rewrite targets:
//
//   - dense-chain: a serial dependency chain keeps the window full of
//     waiting uops while only one can issue per cycle — the worst case for a
//     poll-everything issue loop, the best case for dependency-driven wakeup.
//   - wide-independent: maximum issue parallelism; every scanned uop issues,
//     so polling and event-driven costs converge.
//   - loadstore-heavy: disambiguation traffic with memory latency; stresses
//     the store ring and the load-wakeup path.
//   - idle-in-flight: a window full of long-latency divides that saturate
//     one non-pipelined unit; almost every cycle completes and issues
//     nothing, so per-cycle cost must track events, not occupancy.
//
// Before/after numbers are recorded in BENCH_engine.json
// (cmd/parrotbench -enginebench).

// benchRun drives prog to drain, reporting ns/cycle and cycles/op.
func benchRun(b *testing.B, e *Engine, prog []isa.Uop, addrs []uint64) {
	b.Helper()
	var cycles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		run(e, prog, addrs)
		cycles += e.Stats.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

func BenchmarkEngineCycle(b *testing.B) {
	b.Run("dense-chain", func(b *testing.B) {
		var prog []isa.Uop
		for i := 0; i < 2000; i++ {
			prog = append(prog, alu(1, 1, 2)) // fully serial
		}
		benchRun(b, New(Narrow(), nil), prog, nil)
	})

	b.Run("wide-independent", func(b *testing.B) {
		var prog []isa.Uop
		for i := 0; i < 2000; i++ {
			prog = append(prog, alu(i%8, 8+i%4, 12+i%4))
		}
		benchRun(b, New(Narrow(), nil), prog, nil)
	})

	b.Run("loadstore-heavy", func(b *testing.B) {
		var prog []isa.Uop
		var addrs []uint64
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				st := isa.NewUop(isa.OpStore)
				st.Src[0] = isa.GPR(2)
				st.Src[1] = isa.GPR(i % 8)
				prog = append(prog, st)
				addrs = append(addrs, uint64(0x1000+(i%16)*64))
			case 1, 2:
				ld := isa.NewUop(isa.OpLoad)
				ld.Dst[0] = isa.GPR(i % 8)
				ld.Src[0] = isa.GPR(2)
				prog = append(prog, ld)
				addrs = append(addrs, uint64(0x1000+((i+3)%16)*64))
			default:
				prog = append(prog, alu(i%8, 8+i%4, 12+i%4))
				addrs = append(addrs, 0)
			}
		}
		lat := func(addr uint64, write bool) int { return int(addr>>6) % 5 }
		benchRun(b, New(Narrow(), lat), prog, addrs)
	})

	b.Run("idle-in-flight", func(b *testing.B) {
		// 64 independent divides on one non-pipelined unit: the window stays
		// full while ~11/12 cycles have no completion, no issue, no commit.
		var prog []isa.Uop
		for i := 0; i < 64; i++ {
			d := isa.NewUop(isa.OpDiv)
			d.Dst[0] = isa.GPR(i % 8)
			d.Src[0] = isa.GPR(8)
			d.Src[1] = isa.GPR(9)
			prog = append(prog, d)
		}
		benchRun(b, New(Narrow(), nil), prog, nil)
	})
}

// BenchmarkEngineIdleScaling pins the event-driven property directly: the
// per-cycle cost of a window full of stalled uops must not grow with the
// number in flight. Each sub-benchmark keeps n uops in the ROB behind a
// divide bottleneck; ns/cycle should be flat across n for an event-driven
// kernel and linear in n for a polling one.
func BenchmarkEngineIdleScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(sizeName(n), func(b *testing.B) {
			var prog []isa.Uop
			for i := 0; i < n; i++ {
				d := isa.NewUop(isa.OpDiv)
				d.Dst[0] = isa.GPR(i % 8)
				d.Src[0] = isa.GPR(8)
				d.Src[1] = isa.GPR(9)
				prog = append(prog, d)
			}
			benchRun(b, New(Narrow(), nil), prog, nil)
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "inflight-8"
	case 32:
		return "inflight-32"
	default:
		return "inflight-128"
	}
}
