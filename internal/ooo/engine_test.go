package ooo

import (
	"testing"

	"parrot/internal/isa"
)

func alu(d, s1, s2 int) isa.Uop {
	u := isa.NewUop(isa.OpAdd)
	u.Dst[0] = isa.GPR(d)
	u.Src[0] = isa.GPR(s1)
	u.Src[1] = isa.GPR(s2)
	return u
}

// run dispatches the uops honoring width/backpressure and runs to drain,
// returning total cycles.
func run(e *Engine, uops []isa.Uop, addrs []uint64) uint64 {
	i := 0
	for i < len(uops) {
		dispatched := 0
		for dispatched < e.Config().Width && i < len(uops) && e.CanDispatch() {
			var addr uint64
			if uops[i].Op.IsMem() && addrs != nil {
				addr = addrs[i]
			}
			e.Dispatch(&uops[i], addr, true, false)
			i++
			dispatched++
		}
		e.Cycle()
	}
	e.Drain()
	return e.Stats.Cycles
}

func TestSerialChainIsSerial(t *testing.T) {
	e := New(Narrow(), nil)
	var prog []isa.Uop
	for i := 0; i < 40; i++ {
		prog = append(prog, alu(1, 1, 2)) // r1 = r1+r2, fully serial
	}
	cycles := run(e, prog, nil)
	if cycles < 40 {
		t.Errorf("serial chain of 40 finished in %d cycles", cycles)
	}
	if e.Stats.UopsCommitted != 40 {
		t.Errorf("committed = %d", e.Stats.UopsCommitted)
	}
}

func TestParallelThroughput(t *testing.T) {
	e := New(Narrow(), nil)
	var prog []isa.Uop
	for i := 0; i < 400; i++ {
		prog = append(prog, alu(i%8, 8+i%4, 12+i%4))
	}
	cycles := run(e, prog, nil)
	// 4-wide machine: 400 independent ALU ops need ~100 cycles.
	if cycles > 130 {
		t.Errorf("independent ops: %d cycles for 400 uops on 4-wide", cycles)
	}
}

func TestWideBeatsNarrowOnParallelCode(t *testing.T) {
	mk := func(cfg Config) uint64 {
		e := New(cfg, nil)
		var prog []isa.Uop
		for i := 0; i < 800; i++ {
			prog = append(prog, alu(i%12, 12+i%2, 14+i%2))
		}
		return run(e, prog, nil)
	}
	n, w := mk(Narrow()), mk(Wide())
	if float64(n)/float64(w) < 1.6 {
		t.Errorf("wide speedup only %vx (n=%d w=%d)", float64(n)/float64(w), n, w)
	}
}

func TestWideEqualsNarrowOnSerialCode(t *testing.T) {
	mk := func(cfg Config) uint64 {
		e := New(cfg, nil)
		var prog []isa.Uop
		for i := 0; i < 200; i++ {
			prog = append(prog, alu(1, 1, 2))
		}
		return run(e, prog, nil)
	}
	n, w := mk(Narrow()), mk(Wide())
	if float64(n)/float64(w) > 1.1 {
		t.Errorf("serial code must not speed up with width: n=%d w=%d", n, w)
	}
}

func TestLoadLatencyRespected(t *testing.T) {
	e := New(Narrow(), func(addr uint64, write bool) int { return 20 }) // all miss
	ld := isa.NewUop(isa.OpLoad)
	ld.Dst[0] = isa.GPR(1)
	ld.Src[0] = isa.GPR(2)
	use := alu(3, 1, 1)
	cycles := run(e, []isa.Uop{ld, use}, []uint64{0x100, 0})
	if cycles < 23 {
		t.Errorf("dependent use of missing load finished in %d cycles", cycles)
	}
}

func TestLoadWaitsForAliasingStore(t *testing.T) {
	// store [r2] <- r9 where r9 comes from a slow multiply chain; then
	// load [r2]: the load must wait for the store.
	var prog []isa.Uop
	mul := isa.NewUop(isa.OpMul)
	mul.Dst[0] = isa.GPR(9)
	mul.Src[0] = isa.GPR(8)
	mul.Src[1] = isa.GPR(8)
	for i := 0; i < 6; i++ {
		m := mul
		m.Src[0] = isa.GPR(9)
		prog = append(prog, m) // serial multiply chain ~18 cycles
	}
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = isa.GPR(2)
	st.Src[1] = isa.GPR(9)
	ld := isa.NewUop(isa.OpLoad)
	ld.Dst[0] = isa.GPR(1)
	ld.Src[0] = isa.GPR(2)
	prog = append(prog, st, ld)
	addrs := make([]uint64, len(prog))
	addrs[len(prog)-2] = 0x4000
	addrs[len(prog)-1] = 0x4000
	e := New(Narrow(), nil)
	cycles := run(e, prog, addrs)
	if cycles < 18 {
		t.Errorf("aliasing load bypassed pending store: %d cycles", cycles)
	}

	// Control: different address must be faster.
	addrs[len(prog)-1] = 0x8000
	e2 := New(Narrow(), nil)
	prog2 := append([]isa.Uop(nil), prog...)
	c2 := run(e2, prog2, addrs)
	if c2 > cycles {
		t.Errorf("independent load slower than aliasing load: %d vs %d", c2, cycles)
	}
}

func TestCommitInOrder(t *testing.T) {
	// A slow divide followed by fast adds: nothing may commit before the
	// divide, so committed count stays 0 until it completes.
	e := New(Narrow(), nil)
	div := isa.NewUop(isa.OpDiv)
	div.Dst[0] = isa.GPR(1)
	div.Src[0] = isa.GPR(2)
	div.Src[1] = isa.GPR(3)
	e.Dispatch(&div, 0, true, false)
	for i := 0; i < 3; i++ {
		u := alu(4+i, 8, 9)
		e.Dispatch(&u, 0, true, false)
	}
	for i := 0; i < 5; i++ {
		e.Cycle()
	}
	if e.Stats.UopsCommitted != 0 {
		t.Errorf("committed %d uops before divide finished", e.Stats.UopsCommitted)
	}
	e.Drain()
	if e.Stats.UopsCommitted != 4 {
		t.Errorf("committed = %d", e.Stats.UopsCommitted)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := Narrow()
	cfg.IQSize = 4
	e := New(cfg, nil)
	// A divide blocks the queue; independent adds pile up.
	div := isa.NewUop(isa.OpDiv)
	div.Dst[0] = isa.GPR(1)
	div.Src[0] = isa.GPR(1)
	div.Src[1] = isa.GPR(1)
	e.Dispatch(&div, 0, true, false)
	for e.CanDispatch() {
		u := alu(2, 3, 4)
		e.Dispatch(&u, 0, true, false)
	}
	if e.IQLen() != cfg.IQSize {
		t.Errorf("iq = %d, want full %d", e.IQLen(), cfg.IQSize)
	}
	e.Drain()
	if !e.CanDispatch() {
		t.Error("drained engine must accept dispatch")
	}
}

func TestHandlesAndRetirement(t *testing.T) {
	e := New(Narrow(), nil)
	u := alu(1, 2, 3)
	h := e.Dispatch(&u, 0, true, false)
	if e.Done(h) || e.Retired(h) {
		t.Error("fresh uop cannot be done")
	}
	e.Drain()
	if !e.Done(h) || !e.Retired(h) {
		t.Error("drained uop must be done and retired")
	}
}

func TestInstructionAndTraceAccounting(t *testing.T) {
	e := New(Narrow(), nil)
	// Two "instructions" of 2 uops each; second ends a trace.
	for i := 0; i < 4; i++ {
		u := alu(i, 8, 9)
		e.Dispatch(&u, 0, i == 1 || i == 3, i == 3)
	}
	insts, traces := e.Drain()
	if insts != 2 || traces != 1 {
		t.Errorf("insts=%d traces=%d", insts, traces)
	}
}

func TestFlagDependencyThroughRename(t *testing.T) {
	// cmp writes flags; br reads them: br cannot issue before cmp.
	e := New(Narrow(), nil)
	cmp := isa.NewUop(isa.OpCmp)
	cmp.Dst[0] = isa.RegFlags
	cmp.Src[0] = isa.GPR(1)
	cmp.Src[1] = isa.GPR(2)
	// Make cmp slow by feeding it from a divide.
	div := isa.NewUop(isa.OpDiv)
	div.Dst[0] = isa.GPR(1)
	div.Src[0] = isa.GPR(3)
	div.Src[1] = isa.GPR(4)
	br := isa.NewUop(isa.OpBr)
	br.Src[0] = isa.RegFlags
	br.Cond = isa.CondEQ
	e.Dispatch(&div, 0, true, false)
	e.Dispatch(&cmp, 0, true, false)
	h := e.Dispatch(&br, 0, true, false)
	for i := 0; i < 6; i++ {
		e.Cycle()
	}
	if e.Done(h) {
		t.Error("branch resolved before its flags producer")
	}
	e.Drain()
	if !e.Done(h) {
		t.Error("branch must resolve at drain")
	}
}

func TestStatsClassCounts(t *testing.T) {
	e := New(Narrow(), nil)
	u := alu(1, 2, 3)
	f := isa.NewUop(isa.OpFMul)
	f.Dst[0] = isa.FPR(0)
	f.Src[0] = isa.FPR(1)
	f.Src[1] = isa.FPR(2)
	e.Dispatch(&u, 0, true, false)
	e.Dispatch(&f, 0, true, false)
	e.Drain()
	if e.Stats.OpsByClass[isa.ClassIntALU] != 1 || e.Stats.OpsByClass[isa.ClassFPMul] != 1 {
		t.Errorf("class counts: %v", e.Stats.OpsByClass)
	}
	if e.Stats.UopsDispatched != 2 || e.Stats.UopsIssued != 2 {
		t.Errorf("stats: %+v", e.Stats)
	}
}

func TestDegenerateConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config must panic")
		}
	}()
	New(Config{Width: 0}, nil)
}
