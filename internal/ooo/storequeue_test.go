package ooo

import (
	"math/rand"
	"testing"

	"parrot/internal/isa"
)

// TestStoreRetirementOrder is the regression test for the O(n) store-queue
// deletion fix: the in-flight store list is now a ring buffer whose front is
// popped at commit, which is only correct if stores retire strictly in
// program order. The test interleaves stores with variable-latency work
// (divides, dependent chains, loads with extra memory latency) so store
// completion times are thoroughly out of order, then verifies every store
// retires, in order, and the ring drains.
func TestStoreRetirementOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lat := func(addr uint64, write bool) int {
		// Deterministic but irregular extra latency.
		return int(addr>>3) % 7
	}
	e := New(Narrow(), lat)

	var storeHandles []Handle
	dispatched := 0
	for dispatched < 400 {
		for i := 0; i < e.Config().Width && e.CanDispatch(); i++ {
			var u isa.Uop
			switch rng.Intn(5) {
			case 0: // store
				u = isa.NewUop(isa.OpStore)
				u.Src[0] = isa.GPR(rng.Intn(16))
				u.Src[1] = isa.GPR(rng.Intn(16))
				h := e.Dispatch(&u, uint64(rng.Intn(64)*8), true, false)
				storeHandles = append(storeHandles, h)
			case 1: // slow divide feeding later work
				u = isa.NewUop(isa.OpDiv)
				u.Dst[0] = isa.GPR(rng.Intn(16))
				u.Src[0] = isa.GPR(rng.Intn(16))
				u.Src[1] = isa.GPR(rng.Intn(16))
				e.Dispatch(&u, 0, true, false)
			case 2: // load that may alias a pending store
				u = isa.NewUop(isa.OpLoad)
				u.Dst[0] = isa.GPR(rng.Intn(16))
				u.Src[0] = isa.GPR(rng.Intn(16))
				e.Dispatch(&u, uint64(rng.Intn(64)*8), true, false)
			default:
				u = isa.NewUop(isa.OpAdd)
				u.Dst[0] = isa.GPR(rng.Intn(16))
				u.Src[0] = isa.GPR(rng.Intn(16))
				u.Src[1] = isa.GPR(rng.Intn(16))
				e.Dispatch(&u, 0, true, false)
			}
			dispatched++
		}
		e.Cycle()

		// The ring front must always be the oldest in-flight store.
		if e.storeCnt > 0 {
			front := e.stores[e.storeHead]
			for i := 1; i < e.storeCnt; i++ {
				if e.stores[(e.storeHead+i)&e.storeMask] <= front {
					t.Fatalf("store ring out of program order at cycle %d", e.Now())
				}
			}
			if e.Retired(front) {
				t.Fatalf("retired store %d still at ring front", front)
			}
		}
	}
	e.Drain()

	if e.StoreQueueLen() != 0 {
		t.Fatalf("%d stores left in ring after drain", e.StoreQueueLen())
	}
	for _, h := range storeHandles {
		if !e.Retired(h) {
			t.Fatalf("store %d never retired", h)
		}
	}
}

// TestStoreQueueWrapAround forces the ring indices to wrap several times.
func TestStoreQueueWrapAround(t *testing.T) {
	e := New(Narrow(), nil)
	total := 4 * len(e.stores) // several full wraps of the ring
	for i := 0; i < total; i++ {
		for !e.CanDispatch() {
			e.Cycle()
		}
		st := isa.NewUop(isa.OpStore)
		st.Src[0] = isa.GPR(1)
		st.Src[1] = isa.GPR(2)
		e.Dispatch(&st, uint64(i*8), true, false)
	}
	e.Drain()
	if e.StoreQueueLen() != 0 {
		t.Fatalf("ring did not drain: %d left", e.StoreQueueLen())
	}
	if e.Stats.UopsCommitted != uint64(total) {
		t.Fatalf("committed %d of %d stores", e.Stats.UopsCommitted, total)
	}
}

// TestEngineResetMatchesFresh runs a workload, resets, reruns and compares
// against a fresh engine: the Reset protocol must be bit-identical.
func TestEngineResetMatchesFresh(t *testing.T) {
	run := func(e *Engine) Stats {
		rng := rand.New(rand.NewSource(99))
		for n := 0; n < 300; n++ {
			for i := 0; i < e.Config().Width && e.CanDispatch(); i++ {
				u := isa.NewUop(isa.OpAdd)
				if rng.Intn(4) == 0 {
					u = isa.NewUop(isa.OpStore)
					u.Src[0] = isa.GPR(rng.Intn(16))
					u.Src[1] = isa.GPR(rng.Intn(16))
					e.Dispatch(&u, uint64(rng.Intn(512)), true, false)
					continue
				}
				u.Dst[0] = isa.GPR(rng.Intn(16))
				u.Src[0] = isa.GPR(rng.Intn(16))
				u.Src[1] = isa.GPR(rng.Intn(16))
				e.Dispatch(&u, 0, true, false)
			}
			e.Cycle()
		}
		e.Drain()
		return e.Stats
	}

	pooled := New(Narrow(), nil)
	_ = run(pooled) // dirty the engine
	pooled.Reset()
	got := run(pooled)

	fresh := New(Narrow(), nil)
	want := run(fresh)

	if got != want {
		t.Fatalf("reset engine diverged from fresh:\n got %+v\nwant %+v", got, want)
	}
}
