// Package ooo implements the out-of-order execution engine used by both the
// cold and hot pipelines: register renaming, a reorder buffer, an issue
// queue, parameterized functional units and in-order commit.
//
// The engine is a trace-driven timing model. Uops are dispatched in program
// order, issue out of order when their producers complete and a functional
// unit is free, and commit in order. Branch mispredictions and trace aborts
// are modelled by the front-end withholding fetch until the offending uop
// resolves (stall-on-mispredict), so the engine itself never flushes; this
// is the standard approximation for trace-driven simulators, which do not
// execute wrong-path instructions.
//
// The per-cycle kernel is event-driven (PR 2): writeback drains a time wheel
// bucketed by completion cycle instead of scanning an in-flight list; issue
// selects from an age-ordered ready set fed by dependency-driven wakeup
// instead of re-polling every issue-queue entry's sources against the ROB;
// and provably idle windows can be skipped in one jump (Skip/NextEventAt).
// All of it is bit-identical to the poll-everything engine it replaced — the
// lock-in tests in this package and the experiment-matrix golden digest
// enforce that.
package ooo

import (
	"fmt"
	"math/bits"

	"parrot/internal/isa"
	"parrot/internal/obs"
)

// Config sizes one execution engine. The reference narrow machine (model N)
// uses width 4; the wide machine (W) doubles everything (§3.3).
type Config struct {
	Width       int // rename/dispatch width, uops per cycle
	IssueWidth  int // maximum uops issued per cycle
	CommitWidth int // maximum uops committed per cycle
	ROBSize     int
	IQSize      int

	// Units is the number of functional units per execution class.
	Units [isa.NumExecClasses]int
}

// Narrow returns the 4-wide reference configuration (model N's core).
func Narrow() Config {
	var u [isa.NumExecClasses]int
	u[isa.ClassIntALU] = 4
	u[isa.ClassIntMul] = 1
	u[isa.ClassIntDiv] = 1
	u[isa.ClassFPAdd] = 2
	u[isa.ClassFPMul] = 2
	u[isa.ClassFPDiv] = 1
	u[isa.ClassLoad] = 2
	u[isa.ClassStore] = 1
	u[isa.ClassBranch] = 2
	return Config{
		Width: 4, IssueWidth: 4, CommitWidth: 4,
		ROBSize: 128, IQSize: 32, Units: u,
	}
}

// Wide returns the 8-wide configuration (model W's core): double the
// narrow machine in every dimension.
func Wide() Config {
	c := Narrow()
	c.Width, c.IssueWidth, c.CommitWidth = 8, 8, 8
	c.ROBSize, c.IQSize = 192, 48
	for i := range c.Units {
		c.Units[i] *= 2
	}
	return c
}

// Stats counts engine activity for performance and energy accounting.
type Stats struct {
	Cycles         uint64
	UopsDispatched uint64
	UopsIssued     uint64
	UopsCommitted  uint64

	RegReads  uint64 // physical register file read ports exercised
	RegWrites uint64
	Wakeups   uint64 // tag broadcasts into the issue queue
	ROBWrites uint64
	ROBReads  uint64

	OpsByClass [isa.NumExecClasses]uint64

	StallROBFull uint64 // dispatch cycles lost to a full ROB
	StallIQFull  uint64
}

// Handle identifies a dispatched uop (its sequence number).
type Handle uint64

// never is the "no event" sentinel returned by NextEventAt.
const never = ^uint64(0)

type robEntry struct {
	seq      Handle
	class    isa.ExecClass
	nsrcLeft int8 // producers not yet completed; data-ready at zero
	done     bool
	isStore  bool
	isLoad   bool
	lastUop  bool // last uop of its instruction (commit counts instructions)
	traceEnd bool // last uop of an atomic trace
	doneAt   uint64
	memAddr  uint64

	// deps are dispatched consumers whose wakeup counter this entry's
	// completion decrements; waiters are loads parked on this (store) entry
	// by memory disambiguation, re-readied when it completes. Both slices
	// keep their capacity across slot reuse, so the steady-state engine
	// allocates nothing.
	deps    []Handle
	waiters []Handle
}

// MemModel supplies data-access latency beyond the L1 hit, plus the upper
// bound of that latency so the engine can size its completion wheel. The
// memory hierarchy implements it directly — the engine calls a concrete
// provider rather than a per-machine closure.
type MemModel interface {
	// AccessData returns extra cycles beyond the L1 hit for a data access.
	AccessData(addr uint64, write bool) int
	// MaxDataLatency bounds AccessData's return value.
	MaxDataLatency() int
}

// zeroMem is the all-hits memory model used when none is supplied.
type zeroMem struct{}

func (zeroMem) AccessData(uint64, bool) int { return 0 }
func (zeroMem) MaxDataLatency() int         { return 0 }

// funcMem adapts a plain latency function (tests, ad-hoc models) to
// MemModel. Latencies beyond its declared bound still complete correctly via
// the wheel's overflow list.
type funcMem struct {
	f   func(addr uint64, write bool) int
	max int
}

func (m funcMem) AccessData(addr uint64, write bool) int { return m.f(addr, write) }
func (m funcMem) MaxDataLatency() int                    { return m.max }

// overflowItem is a scheduled completion beyond the wheel horizon.
type overflowItem struct {
	h      Handle
	doneAt uint64
}

// Engine is one out-of-order core instance.
//
// All internal queues are preallocated at construction: the ROB is a
// power-of-two array indexed by sequence number, the completion wheel is a
// fixed ring of buckets, the ready set is a fixed-capacity sorted slice, and
// the in-flight store list is a ring buffer popped in O(1) at commit (stores
// retire strictly in program order). The steady-state cycle loop performs no
// heap allocation and does work proportional to the events of the cycle, not
// to the number of uops in flight.
type Engine struct {
	cfg Config

	rob     []robEntry // power-of-two sized, >= cfg.ROBSize
	robMask uint64
	head    Handle // oldest un-committed
	tail    Handle // next sequence number
	rename  [isa.NumRegs]Handle // last writer; 0 = architectural file

	// iqCnt models issue-queue occupancy (dispatched, not yet issued) for
	// dispatch back-pressure; the queue itself is the ready set plus the
	// per-entry wakeup lists.
	iqCnt int

	// readyQ holds data-ready, un-issued uops, one age-ordered queue per
	// execution class. Issue merges the queue heads in ascending sequence
	// order; when a class fails its structural check (per-cycle unit budget
	// exhausted, non-pipelined divider busy) the whole queue is skipped for
	// the rest of the cycle — legal because both checks are monotonic within
	// a cycle, so every younger uop of the class would fail identically.
	// Entries enter via dependency-driven wakeup and leave when issued or
	// parked on a blocking store; an idle cycle therefore costs O(classes),
	// independent of how many uops are in flight.
	readyQ    [isa.NumExecClasses][]Handle
	readyCnt  int
	readyMask uint16 // bit c set iff readyQ[c] is non-empty

	// wheel is the completion time wheel: bucket doneAt&wheelMask holds the
	// uops finishing at cycle doneAt. Writeback drains exactly one bucket
	// per cycle, so its cost is O(completions this cycle). Completions
	// beyond the wheel horizon (possible only when a MemModel understates
	// MaxDataLatency) wait in overflow.
	wheel      [][]Handle
	wheelMask  uint64
	overflow   []overflowItem
	pendingCnt int // uops executing (wheel + overflow)

	// In-flight stores for memory disambiguation: a ring buffer in program
	// order. Stores commit in order, so the front of the ring is always the
	// next store to retire.
	stores    []Handle // power-of-two sized, >= cfg.ROBSize
	storeMask int
	storeHead int
	storeCnt  int
	storePend int // stores in the ring not yet complete (disambiguation fast path)

	// storeAddrCnt counts incomplete in-flight stores per address-hash
	// bucket. A load whose bucket is zero provably has no aliasing store in
	// flight and skips the ring scan entirely; hash collisions only cost
	// the exact scan, never change its answer.
	storeAddrCnt [256]uint8

	// divBusy tracks per-unit completion times of the non-pipelined divide
	// units (integer and FP); all other units are fully pipelined.
	divBusy [isa.NumExecClasses][]uint64

	// mem supplies data-access latency beyond the L1 hit.
	mem MemModel

	// probe, when non-nil, receives per-uop lifecycle events (dispatch,
	// issue, writeback, commit). Every instrumentation point is a single
	// nil-check branch; with no probe attached the engine is bit- and
	// cost-identical to an uninstrumented build. Probes observe only — they
	// can never change a scheduling decision.
	probe *obs.PipeProbe

	now uint64

	Stats Stats
}

// pow2 returns the smallest power of two >= n.
func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// maxClassLatency is the longest baseline execution latency of any class.
func maxClassLatency() int {
	m := 1
	for c := isa.ExecClass(0); c < isa.NumExecClasses; c++ {
		if l := c.Latency(); l > m {
			m = l
		}
	}
	return m
}

// funcMemDefaultBound sizes the wheel for function-adapted memory models
// whose latency bound is unknown; larger latencies fall back to overflow.
const funcMemDefaultBound = 128

// New builds an engine. memLatency supplies data-cache access latency
// beyond the L1 hit time; nil means all accesses hit. Prefer NewWithMem and
// a concrete MemModel, which also lets the engine size its completion wheel
// tightly.
func New(cfg Config, memLatency func(addr uint64, write bool) int) *Engine {
	if memLatency == nil {
		return NewWithMem(cfg, zeroMem{})
	}
	return NewWithMem(cfg, funcMem{f: memLatency, max: funcMemDefaultBound})
}

// NewWithMem builds an engine around a concrete memory latency provider.
func NewWithMem(cfg Config, mem MemModel) *Engine {
	if cfg.Width < 1 || cfg.ROBSize < cfg.Width || cfg.IQSize < 1 {
		panic(fmt.Sprintf("ooo: degenerate config %+v", cfg))
	}
	if mem == nil {
		mem = zeroMem{}
	}
	robLen := pow2(cfg.ROBSize)
	storeLen := pow2(cfg.ROBSize)
	wheelLen := pow2(maxClassLatency() + mem.MaxDataLatency() + 2)
	e := &Engine{
		cfg:       cfg,
		rob:       make([]robEntry, robLen),
		robMask:   uint64(robLen - 1),
		stores:    make([]Handle, storeLen),
		storeMask: storeLen - 1,
		wheel:     make([][]Handle, wheelLen),
		wheelMask: uint64(wheelLen - 1),
		head:      1,
		tail:      1,
		mem:       mem,
	}
	for _, cls := range []isa.ExecClass{isa.ClassIntDiv, isa.ClassFPDiv} {
		e.divBusy[cls] = make([]uint64, cfg.Units[cls])
	}
	return e
}

// Reset returns the engine to its just-constructed state, keeping every
// preallocated structure (including the per-entry wakeup list slabs). A
// reset engine produces bit-identical results to a freshly built one.
func (e *Engine) Reset() {
	for i := range e.rob {
		en := &e.rob[i]
		*en = robEntry{deps: en.deps[:0], waiters: en.waiters[:0]}
	}
	e.head, e.tail = 1, 1
	e.iqCnt = 0
	for cls := range e.readyQ {
		e.readyQ[cls] = e.readyQ[cls][:0]
	}
	e.readyCnt = 0
	e.readyMask = 0
	for i := range e.wheel {
		e.wheel[i] = e.wheel[i][:0]
	}
	e.overflow = e.overflow[:0]
	e.pendingCnt = 0
	e.rename = [isa.NumRegs]Handle{}
	e.storeHead, e.storeCnt = 0, 0
	e.storePend = 0
	e.storeAddrCnt = [256]uint8{}
	for cls := range e.divBusy {
		for i := range e.divBusy[cls] {
			e.divBusy[cls][i] = 0
		}
	}
	e.now = 0
	e.Stats = Stats{}
	e.probe = nil // observers are per-run; a reset engine starts unobserved
}

// SetProbe attaches (or, with nil, detaches) a pipeline lifecycle probe.
func (e *Engine) SetProbe(p *obs.PipeProbe) { e.probe = p }

// divUnitFree returns a free non-pipelined unit index for cls, or -1.
func (e *Engine) divUnitFree(cls isa.ExecClass) int {
	for i, busy := range e.divBusy[cls] {
		if busy <= e.now {
			return i
		}
	}
	return -1
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the engine's cycle counter.
func (e *Engine) Now() uint64 { return e.now }

func (e *Engine) slot(h Handle) *robEntry { return &e.rob[uint64(h)&e.robMask] }

// StoreQueueLen returns the number of in-flight stores awaiting commit.
func (e *Engine) StoreQueueLen() int { return e.storeCnt }

// IQLen returns the modelled issue-queue occupancy (dispatched, un-issued).
func (e *Engine) IQLen() int { return e.iqCnt }

// StateFingerprint folds the engine's mutable occupancy state — pipeline
// fill, outstanding completions (time-wheel plus overflow), in-flight
// stores and the engine clock — into one word for the hot-window
// memoization fingerprint (internal/core). It reads O(1) scalars, never
// the ROB or wheel contents: the sequence counters advance with every
// dispatched uop, so two engines that processed different work cannot
// agree on all of them.
func (e *Engine) StateFingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, w := range [...]uint64{
		e.now, uint64(e.head), uint64(e.tail),
		uint64(e.iqCnt), uint64(e.readyCnt), uint64(e.pendingCnt),
		uint64(e.storeCnt), uint64(e.storePend),
	} {
		h = (h ^ w) * 1099511628211
	}
	return h
}

// InFlight returns the number of uops in the ROB.
func (e *Engine) InFlight() int { return int(e.tail - e.head) }

// CanDispatch reports whether at least one more uop fits this cycle.
func (e *Engine) CanDispatch() bool {
	return e.InFlight() < e.cfg.ROBSize && e.iqCnt < e.cfg.IQSize
}

// noSources is the all-RegNone source array, compared as one word in the
// dispatch fast path.
var noSources = [isa.MaxSrc]isa.Reg{isa.RegNone, isa.RegNone, isa.RegNone, isa.RegNone}

// issueClass maps a uop's execution class to the unit pool it competes for
// (nops borrow the integer ALUs).
func issueClass(c isa.ExecClass) isa.ExecClass {
	if c == isa.ClassNop {
		return isa.ClassIntALU
	}
	return c
}

// readyPush inserts h into its class's age-ordered ready queue. The caller
// supplies the (issue-normalized) class, which it already has from the ROB
// slot in hand. Handles arrive mostly in ascending order (wakeups ripple
// down the program), so the insertion point is found by a short scan from
// the tail.
func (e *Engine) readyPush(h Handle, cls isa.ExecClass) {
	q := append(e.readyQ[cls], h)
	i := len(q) - 1
	for i > 0 && q[i-1] > h {
		q[i] = q[i-1]
		i--
	}
	q[i] = h
	e.readyQ[cls] = q
	e.readyCnt++
	e.readyMask |= 1 << cls
}

// schedule enqueues a completion event lat cycles from now.
func (e *Engine) schedule(h Handle, lat uint64) {
	if lat < uint64(len(e.wheel)) {
		b := &e.wheel[(e.now+lat)&e.wheelMask]
		*b = append(*b, h)
	} else {
		e.overflow = append(e.overflow, overflowItem{h: h, doneAt: e.now + lat})
	}
	e.pendingCnt++
}

// complete performs writeback for one uop: mark it done and wake everything
// waiting on it — register consumers whose last producer this was, and loads
// parked on this store by disambiguation.
func (e *Engine) complete(h Handle) {
	en := e.slot(h)
	en.done = true
	e.Stats.Wakeups++
	e.pendingCnt--
	if e.probe != nil {
		e.probe.OnComplete(uint64(h), e.now)
	}
	if en.isStore {
		e.storePend--
		e.storeAddrCnt[storeAddrHash(en.memAddr)]--
	}
	for _, d := range en.deps {
		de := e.slot(d)
		de.nsrcLeft--
		if de.nsrcLeft == 0 {
			e.readyPush(d, issueClass(de.class))
		}
	}
	en.deps = en.deps[:0]
	for _, l := range en.waiters {
		e.readyPush(l, issueClass(e.slot(l).class))
	}
	en.waiters = en.waiters[:0]
}

// Dispatch renames and inserts a uop, returning its handle. The caller must
// respect CanDispatch and the per-cycle width (Engine enforces neither, so
// the front-end model owns bandwidth accounting). lastUop marks instruction
// boundaries; traceEnd marks atomic-trace boundaries.
func (e *Engine) Dispatch(u *isa.Uop, memAddr uint64, lastUop, traceEnd bool) Handle {
	h := e.tail
	e.tail++
	en := e.slot(h)
	// Field-wise reinitialization: a composite-literal assignment would copy
	// the whole (slice-bearing) struct through a temporary on every dispatch.
	en.seq = h
	en.class = u.Op.Class()
	en.nsrcLeft = 0
	en.done = false
	en.isStore = false
	en.isLoad = false
	en.lastUop = lastUop
	en.traceEnd = traceEnd
	en.doneAt = 0
	en.memAddr = 0
	en.deps = en.deps[:0]
	en.waiters = en.waiters[:0]
	if u.Src != noSources { // zero-operand uops skip the rename scan entirely
		for _, s := range u.Src {
			if s == isa.RegNone {
				continue
			}
			e.Stats.RegReads++
			if p := e.rename[s]; p != 0 {
				if pe := e.slot(p); pe.seq == p && !pe.done {
					// Live producer: register for wakeup instead of
					// re-polling the ROB every cycle.
					pe.deps = append(pe.deps, h)
					en.nsrcLeft++
				}
			}
		}
	}
	for _, d := range u.Dst {
		if d != isa.RegNone {
			e.rename[d] = h
			e.Stats.RegWrites++
		}
	}
	switch u.Op {
	case isa.OpLoad:
		en.isLoad = true
		en.memAddr = memAddr
	case isa.OpStore:
		en.isStore = true
		en.memAddr = memAddr
		e.stores[(e.storeHead+e.storeCnt)&e.storeMask] = h
		e.storeCnt++
		e.storePend++
		e.storeAddrCnt[storeAddrHash(memAddr)]++
	}
	e.iqCnt++
	if en.nsrcLeft == 0 {
		e.readyPush(h, issueClass(en.class))
	}
	e.Stats.UopsDispatched++
	e.Stats.ROBWrites++
	if e.probe != nil {
		// Dispatch happens before this machine cycle's Cycle() call advances
		// now, so the uop enters at now+1 on the engine timeline.
		e.probe.OnDispatch(uint64(h), uint8(en.class), e.now+1, lastUop, traceEnd)
	}
	return h
}

// Done reports whether the uop has finished execution.
func (e *Engine) Done(h Handle) bool {
	en := e.slot(h)
	return en.seq != h || en.done // overwritten entries were committed long ago
}

// Retired reports whether the uop has committed.
func (e *Engine) Retired(h Handle) bool { return h < e.head }

// storeAddrHash buckets a data address for the disambiguation filter.
func storeAddrHash(addr uint64) uint8 { return uint8(addr>>2 ^ addr>>10) }

// blockingStore returns the oldest older in-flight store to the same address
// that has not completed (no forwarding modelled: the load waits), or 0. The
// store ring is in ascending program order, so the scan stops at the first
// store younger than the load.
func (e *Engine) blockingStore(en *robEntry) Handle {
	// Fast path: with no incomplete store in flight nothing can block, and
	// the scan can stop once every incomplete store has been examined —
	// completed stores lingering in the ring until commit never match.
	rem := e.storePend
	if rem == 0 || e.storeAddrCnt[storeAddrHash(en.memAddr)] == 0 {
		return 0
	}
	for i := 0; i < e.storeCnt; i++ {
		sh := e.stores[(e.storeHead+i)&e.storeMask]
		if sh >= en.seq {
			break
		}
		se := e.slot(sh)
		if !se.done {
			if se.memAddr == en.memAddr {
				return sh
			}
			if rem--; rem == 0 {
				break
			}
		}
	}
	return 0
}

// Cycle advances the engine one clock: completion, commit, then issue.
// It returns the number of uops committed this cycle, and how many of them
// were instruction-final (for IPC accounting).
func (e *Engine) Cycle() (committedUops, committedInsts int, traceEnds int) {
	e.now++
	e.Stats.Cycles++

	// Completion/writeback: drain this cycle's wheel bucket, waking
	// dependents. O(completions), not O(in-flight).
	if e.pendingCnt > 0 {
		b := &e.wheel[e.now&e.wheelMask]
		for _, h := range *b {
			e.complete(h)
		}
		*b = (*b)[:0]
		if len(e.overflow) > 0 {
			out := e.overflow[:0]
			for _, it := range e.overflow {
				if it.doneAt <= e.now {
					e.complete(it.h)
				} else {
					out = append(out, it)
				}
			}
			e.overflow = out
		}
	}

	// Commit in order.
	for committedUops < e.cfg.CommitWidth && e.head < e.tail {
		en := e.slot(e.head)
		if !en.done {
			break
		}
		if en.isStore {
			// Stores commit in program order, so the retiring store is
			// always the front of the ring: O(1) removal.
			if e.storeCnt == 0 || e.stores[e.storeHead] != e.head {
				panic("ooo: store retired out of program order")
			}
			e.storeHead = (e.storeHead + 1) & e.storeMask
			e.storeCnt--
		}
		if en.lastUop {
			committedInsts++
		}
		if en.traceEnd {
			traceEnds++
		}
		if e.probe != nil {
			e.probe.OnCommit(uint64(e.head), e.now)
		}
		e.head++
		committedUops++
	}
	if committedUops > 0 {
		e.Stats.UopsCommitted += uint64(committedUops)
		e.Stats.ROBReads += uint64(committedUops)
	}

	// Issue: merge the per-class ready queues in ascending age order, up to
	// issue width and unit availability. Processing uops in global sequence
	// order reproduces the age-ordered full-queue scan bit-identically
	// (non-ready entries could never issue anyway); skipping a whole class
	// after its first structural failure is exact because the per-cycle unit
	// budget and the divider busy times are monotonic within the cycle.
	// Consumption is strictly from each queue's head, so the consumed
	// entries form a prefix compacted once at the end.
	if e.readyCnt > 0 {
		var unitsUsed [isa.NumExecClasses]int
		var qpos [isa.NumExecClasses]int
		// active lists the classes still holding issue candidates; a class
		// leaves it when its queue is exhausted or structurally blocked, so
		// the merge scans only live queues (typically one or two). The
		// non-empty set comes from the readyMask bitmap, so building it costs
		// O(live classes), not O(classes). heads mirrors each live queue's
		// current head so the min-scan reads a small local array instead of
		// re-indexing the queues.
		var active [isa.NumExecClasses]uint8
		var heads [isa.NumExecClasses]Handle
		na := 0
		for mask := e.readyMask; mask != 0; mask &= mask - 1 {
			cls := bits.TrailingZeros16(mask)
			active[na] = uint8(cls)
			heads[na] = e.readyQ[cls][0]
			na++
		}
		issued := 0
		for issued < e.cfg.IssueWidth && na > 0 {
			if na == 1 {
				// Single live class (the common case): issue straight down
				// its queue with no merge bookkeeping. Identical decisions
				// to the general path — same head order, same structural
				// checks, same side-effect order.
				cls := isa.ExecClass(active[0])
				q := e.readyQ[cls]
				units := e.cfg.Units[cls]
				div := e.divBusy[cls] != nil
				p := qpos[cls]
				for issued < e.cfg.IssueWidth && p < len(q) && unitsUsed[cls] < units {
					bestH := q[p]
					en := e.slot(bestH)
					if en.isLoad {
						if sh := e.blockingStore(en); sh != 0 {
							se := e.slot(sh)
							se.waiters = append(se.waiters, bestH)
							p++
							e.readyCnt--
							continue
						}
					}
					lat := en.class.Latency()
					if div {
						unit := e.divUnitFree(cls)
						if unit < 0 {
							break
						}
						e.divBusy[cls][unit] = e.now + uint64(lat)
					}
					if en.isLoad {
						lat += e.mem.AccessData(en.memAddr, false)
					}
					if en.isStore {
						e.mem.AccessData(en.memAddr, true)
					}
					en.doneAt = e.now + uint64(lat)
					e.schedule(bestH, uint64(lat))
					if e.probe != nil {
						e.probe.OnIssue(uint64(bestH), e.now)
					}
					p++
					e.readyCnt--
					e.iqCnt--
					unitsUsed[cls]++
					issued++
					e.Stats.OpsByClass[cls]++
				}
				qpos[cls] = p
				break
			}
			// Oldest candidate among the live queue heads.
			bi := 0
			bestH := heads[0]
			for i := 1; i < na; i++ {
				if heads[i] < bestH {
					bestH, bi = heads[i], i
				}
			}
			cls := isa.ExecClass(active[bi])
			if unitsUsed[cls] >= e.cfg.Units[cls] {
				na--
				active[bi] = active[na]
				heads[bi] = heads[na]
				continue
			}
			en := e.slot(bestH)
			if en.isLoad {
				if sh := e.blockingStore(en); sh != 0 {
					// Park on the blocking store: the load leaves the ready
					// set and re-enters when that store completes (it then
					// re-checks for further blockers). Equivalent to the
					// old per-cycle re-scan: the load still issues on the
					// first cycle with no incomplete aliasing store.
					se := e.slot(sh)
					se.waiters = append(se.waiters, bestH)
					qpos[cls]++
					e.readyCnt--
					if p := qpos[cls]; p == len(e.readyQ[cls]) {
						na--
						active[bi] = active[na]
						heads[bi] = heads[na]
					} else {
						heads[bi] = e.readyQ[cls][p]
					}
					continue
				}
			}
			lat := en.class.Latency()
			if e.divBusy[cls] != nil {
				unit := e.divUnitFree(cls)
				if unit < 0 {
					na--
					active[bi] = active[na]
					heads[bi] = heads[na]
					continue
				}
				e.divBusy[cls][unit] = e.now + uint64(lat)
			}
			if en.isLoad {
				lat += e.mem.AccessData(en.memAddr, false)
			}
			if en.isStore {
				e.mem.AccessData(en.memAddr, true)
			}
			en.doneAt = e.now + uint64(lat)
			e.schedule(bestH, uint64(lat))
			if e.probe != nil {
				e.probe.OnIssue(uint64(bestH), e.now)
			}
			qpos[cls]++
			e.readyCnt--
			if p := qpos[cls]; p == len(e.readyQ[cls]) {
				na--
				active[bi] = active[na]
				heads[bi] = heads[na]
			} else {
				heads[bi] = e.readyQ[cls][p]
			}
			e.iqCnt--
			unitsUsed[cls]++
			issued++
			e.Stats.OpsByClass[cls]++
		}
		if issued > 0 {
			e.Stats.UopsIssued += uint64(issued)
			e.Stats.ROBReads += uint64(issued)
		}
		// Compact consumed prefixes. readyMask is unchanged during the merge
		// (nothing is pushed while issuing), so it still covers exactly the
		// classes that could have been consumed from.
		for mask := e.readyMask; mask != 0; mask &= mask - 1 {
			cls := bits.TrailingZeros16(mask)
			if p := qpos[cls]; p > 0 {
				q := e.readyQ[cls]
				q = q[:copy(q, q[p:])]
				e.readyQ[cls] = q
				if len(q) == 0 {
					e.readyMask &^= 1 << cls
				}
			}
		}
	}

	return committedUops, committedInsts, traceEnds
}

// NextEventAt returns the earliest cycle at which a Cycle call can make
// progress (complete, commit or issue anything), or "never" (^uint64(0))
// when the pipeline is empty. A Cycle call that advances now to a cycle
// strictly before the returned value only increments the clock — which is
// what Skip does in one step.
func (e *Engine) NextEventAt() uint64 {
	if e.head == e.tail {
		return never
	}
	if e.slot(e.head).done {
		return e.now + 1 // commit can proceed
	}
	t := uint64(never)
	if e.readyCnt > 0 {
		for mask := e.readyMask; mask != 0; mask &= mask - 1 {
			cls := bits.TrailingZeros16(mask)
			if e.divBusy[cls] == nil {
				// Pipelined class: the head can issue (or a load can park,
				// which also mutates state) on the very next cycle.
				return e.now + 1
			}
			// Non-pipelined divider: the next chance is the earliest unit
			// release (divUnitFree tests busy <= now).
			u := e.divBusy[cls][0]
			for _, b := range e.divBusy[cls][1:] {
				if b < u {
					u = b
				}
			}
			if u <= e.now {
				return e.now + 1
			}
			if u < t {
				t = u
			}
		}
	}
	if e.pendingCnt > 0 {
		n := uint64(len(e.wheel))
		for d := uint64(1); d <= n; d++ {
			if len(e.wheel[(e.now+d)&e.wheelMask]) > 0 {
				if e.now+d < t {
					t = e.now + d
				}
				break
			}
		}
		for i := range e.overflow {
			if e.overflow[i].doneAt < t {
				t = e.overflow[i].doneAt
			}
		}
	}
	return t
}

// Skip advances the clock by k cycles in one step. The caller must ensure
// (via NextEventAt) that none of the skipped cycles could complete, commit
// or issue anything; under that invariant Skip is bit-identical to k no-op
// Cycle calls.
func (e *Engine) Skip(k uint64) {
	e.now += k
	e.Stats.Cycles += k
}

// Drain runs cycles until the pipeline is empty, fast-forwarding provably
// idle stretches, and returns committed instruction-final uops and trace
// ends observed.
func (e *Engine) Drain() (insts, traceEnds int) {
	for e.head < e.tail {
		if t := e.NextEventAt(); t != never && t > e.now+1 {
			e.Skip(t - e.now - 1)
		}
		_, ci, te := e.Cycle()
		insts += ci
		traceEnds += te
	}
	return insts, traceEnds
}

// NoteStallROB and NoteStallIQ let the front-end record dispatch stalls.
func (e *Engine) NoteStallROB() { e.Stats.StallROBFull++ }

// NoteStallIQ records an issue-queue-full dispatch stall.
func (e *Engine) NoteStallIQ() { e.Stats.StallIQFull++ }
