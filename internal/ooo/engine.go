// Package ooo implements the out-of-order execution engine used by both the
// cold and hot pipelines: register renaming, a reorder buffer, an issue
// queue, parameterized functional units and in-order commit.
//
// The engine is a trace-driven timing model. Uops are dispatched in program
// order, issue out of order when their producers complete and a functional
// unit is free, and commit in order. Branch mispredictions and trace aborts
// are modelled by the front-end withholding fetch until the offending uop
// resolves (stall-on-mispredict), so the engine itself never flushes; this
// is the standard approximation for trace-driven simulators, which do not
// execute wrong-path instructions.
package ooo

import (
	"fmt"

	"parrot/internal/isa"
)

// Config sizes one execution engine. The reference narrow machine (model N)
// uses width 4; the wide machine (W) doubles everything (§3.3).
type Config struct {
	Width       int // rename/dispatch width, uops per cycle
	IssueWidth  int // maximum uops issued per cycle
	CommitWidth int // maximum uops committed per cycle
	ROBSize     int
	IQSize      int

	// Units is the number of functional units per execution class.
	Units [isa.NumExecClasses]int
}

// Narrow returns the 4-wide reference configuration (model N's core).
func Narrow() Config {
	var u [isa.NumExecClasses]int
	u[isa.ClassIntALU] = 4
	u[isa.ClassIntMul] = 1
	u[isa.ClassIntDiv] = 1
	u[isa.ClassFPAdd] = 2
	u[isa.ClassFPMul] = 2
	u[isa.ClassFPDiv] = 1
	u[isa.ClassLoad] = 2
	u[isa.ClassStore] = 1
	u[isa.ClassBranch] = 2
	return Config{
		Width: 4, IssueWidth: 4, CommitWidth: 4,
		ROBSize: 128, IQSize: 32, Units: u,
	}
}

// Wide returns the 8-wide configuration (model W's core): double the
// narrow machine in every dimension.
func Wide() Config {
	c := Narrow()
	c.Width, c.IssueWidth, c.CommitWidth = 8, 8, 8
	c.ROBSize, c.IQSize = 192, 48
	for i := range c.Units {
		c.Units[i] *= 2
	}
	return c
}

// Stats counts engine activity for performance and energy accounting.
type Stats struct {
	Cycles         uint64
	UopsDispatched uint64
	UopsIssued     uint64
	UopsCommitted  uint64

	RegReads  uint64 // physical register file read ports exercised
	RegWrites uint64
	Wakeups   uint64 // tag broadcasts into the issue queue
	ROBWrites uint64
	ROBReads  uint64

	OpsByClass [isa.NumExecClasses]uint64

	StallROBFull uint64 // dispatch cycles lost to a full ROB
	StallIQFull  uint64
}

// Handle identifies a dispatched uop (its sequence number).
type Handle uint64

type robEntry struct {
	seq      Handle
	class    isa.ExecClass
	srcs     [isa.MaxSrc]Handle // producing uops; 0 = ready
	nsrc     int
	issued   bool
	done     bool
	doneAt   uint64
	isStore  bool
	isLoad   bool
	memAddr  uint64
	lastUop  bool // last uop of its instruction (commit counts instructions)
	traceEnd bool // last uop of an atomic trace
}

// Engine is one out-of-order core instance.
//
// All internal queues are preallocated at construction: the ROB is a
// power-of-two array indexed by sequence number, the issue queue and
// completion list are fixed-capacity slices, and the in-flight store list is
// a ring buffer popped in O(1) at commit (stores retire strictly in program
// order). The steady-state cycle loop therefore performs no heap
// allocation.
type Engine struct {
	cfg Config

	rob     []robEntry // power-of-two sized, >= cfg.ROBSize
	robMask uint64
	head    Handle // oldest un-committed
	tail    Handle // next sequence number
	iq      []Handle
	rename  [isa.NumRegs]Handle // last writer; 0 = architectural file
	pending []Handle            // issued, awaiting completion

	// In-flight stores for memory disambiguation: a ring buffer in program
	// order. Stores commit in order, so the front of the ring is always the
	// next store to retire.
	stores    []Handle // power-of-two sized, >= cfg.ROBSize
	storeMask int
	storeHead int
	storeCnt  int

	// divBusy tracks per-unit completion times of the non-pipelined divide
	// units (integer and FP); all other units are fully pipelined.
	divBusy [isa.NumExecClasses][]uint64

	// memLatency returns extra cycles beyond the L1 hit for a data access.
	memLatency func(addr uint64, write bool) int

	now uint64

	Stats Stats
}

// pow2 returns the smallest power of two >= n.
func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds an engine. memLatency supplies data-cache access latency
// beyond the L1 hit time; nil means all accesses hit.
func New(cfg Config, memLatency func(addr uint64, write bool) int) *Engine {
	if cfg.Width < 1 || cfg.ROBSize < cfg.Width || cfg.IQSize < 1 {
		panic(fmt.Sprintf("ooo: degenerate config %+v", cfg))
	}
	if memLatency == nil {
		memLatency = func(uint64, bool) int { return 0 }
	}
	robLen := pow2(cfg.ROBSize)
	storeLen := pow2(cfg.ROBSize)
	e := &Engine{
		cfg:        cfg,
		rob:        make([]robEntry, robLen),
		robMask:    uint64(robLen - 1),
		stores:     make([]Handle, storeLen),
		storeMask:  storeLen - 1,
		iq:         make([]Handle, 0, cfg.IQSize),
		pending:    make([]Handle, 0, cfg.ROBSize),
		head:       1,
		tail:       1,
		memLatency: memLatency,
	}
	for _, cls := range []isa.ExecClass{isa.ClassIntDiv, isa.ClassFPDiv} {
		e.divBusy[cls] = make([]uint64, cfg.Units[cls])
	}
	return e
}

// Reset returns the engine to its just-constructed state, keeping every
// preallocated structure. A reset engine produces bit-identical results to a
// freshly built one.
func (e *Engine) Reset() {
	for i := range e.rob {
		e.rob[i] = robEntry{}
	}
	e.head, e.tail = 1, 1
	e.iq = e.iq[:0]
	e.pending = e.pending[:0]
	e.rename = [isa.NumRegs]Handle{}
	e.storeHead, e.storeCnt = 0, 0
	for cls := range e.divBusy {
		for i := range e.divBusy[cls] {
			e.divBusy[cls][i] = 0
		}
	}
	e.now = 0
	e.Stats = Stats{}
}

// divUnitFree returns a free non-pipelined unit index for cls, or -1.
func (e *Engine) divUnitFree(cls isa.ExecClass) int {
	for i, busy := range e.divBusy[cls] {
		if busy <= e.now {
			return i
		}
	}
	return -1
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the engine's cycle counter.
func (e *Engine) Now() uint64 { return e.now }

func (e *Engine) slot(h Handle) *robEntry { return &e.rob[uint64(h)&e.robMask] }

// StoreQueueLen returns the number of in-flight stores awaiting commit.
func (e *Engine) StoreQueueLen() int { return e.storeCnt }

// InFlight returns the number of uops in the ROB.
func (e *Engine) InFlight() int { return int(e.tail - e.head) }

// CanDispatch reports whether at least one more uop fits this cycle.
func (e *Engine) CanDispatch() bool {
	return e.InFlight() < e.cfg.ROBSize && len(e.iq) < e.cfg.IQSize
}

// Dispatch renames and inserts a uop, returning its handle. The caller must
// respect CanDispatch and the per-cycle width (Engine enforces neither, so
// the front-end model owns bandwidth accounting). lastUop marks instruction
// boundaries; traceEnd marks atomic-trace boundaries.
func (e *Engine) Dispatch(u *isa.Uop, memAddr uint64, lastUop, traceEnd bool) Handle {
	h := e.tail
	e.tail++
	en := e.slot(h)
	*en = robEntry{seq: h, class: u.Op.Class(), lastUop: lastUop, traceEnd: traceEnd}
	for _, s := range u.Src {
		if s == isa.RegNone {
			continue
		}
		e.Stats.RegReads++
		if p := e.rename[s]; p != 0 {
			if pe := e.slot(p); pe.seq == p && !pe.done {
				en.srcs[en.nsrc] = p
				en.nsrc++
			}
		}
	}
	for _, d := range u.Dst {
		if d != isa.RegNone {
			e.rename[d] = h
			e.Stats.RegWrites++
		}
	}
	switch u.Op {
	case isa.OpLoad:
		en.isLoad = true
		en.memAddr = memAddr
	case isa.OpStore:
		en.isStore = true
		en.memAddr = memAddr
		e.stores[(e.storeHead+e.storeCnt)&e.storeMask] = h
		e.storeCnt++
	}
	e.iq = append(e.iq, h)
	e.Stats.UopsDispatched++
	e.Stats.ROBWrites++
	return h
}

// Done reports whether the uop has finished execution.
func (e *Engine) Done(h Handle) bool {
	en := e.slot(h)
	return en.seq != h || en.done // overwritten entries were committed long ago
}

// Retired reports whether the uop has committed.
func (e *Engine) Retired(h Handle) bool { return h < e.head }

// ready reports whether all producers of an entry have completed.
func (e *Engine) ready(en *robEntry) bool {
	for i := 0; i < en.nsrc; i++ {
		p := en.srcs[i]
		pe := e.slot(p)
		if pe.seq == p && !pe.done {
			return false
		}
	}
	return true
}

// loadBlocked reports whether an older in-flight store to the same address
// blocks the load (no forwarding modelled: the load waits). The store ring
// is in ascending program order, so the scan stops at the first store
// younger than the load.
func (e *Engine) loadBlocked(en *robEntry) bool {
	for i := 0; i < e.storeCnt; i++ {
		sh := e.stores[(e.storeHead+i)&e.storeMask]
		if sh >= en.seq {
			break
		}
		se := e.slot(sh)
		if !se.done && se.memAddr == en.memAddr {
			return true
		}
	}
	return false
}

// Cycle advances the engine one clock: completion, commit, then issue.
// It returns the number of uops committed this cycle, and how many of them
// were instruction-final (for IPC accounting).
func (e *Engine) Cycle() (committedUops, committedInsts int, traceEnds int) {
	e.now++
	e.Stats.Cycles++

	// Completion/writeback: retire finished executions, waking dependents.
	if len(e.pending) > 0 {
		out := e.pending[:0]
		for _, h := range e.pending {
			en := e.slot(h)
			if en.seq == h && en.doneAt <= e.now {
				en.done = true
				e.Stats.Wakeups++
			} else {
				out = append(out, h)
			}
		}
		e.pending = out
	}

	// Commit in order.
	for committedUops < e.cfg.CommitWidth && e.head < e.tail {
		en := e.slot(e.head)
		if !en.done {
			break
		}
		if en.isStore {
			// Stores commit in program order, so the retiring store is
			// always the front of the ring: O(1) removal (the old slice
			// splice here was O(n) per retired store).
			if e.storeCnt == 0 || e.stores[e.storeHead] != e.head {
				panic("ooo: store retired out of program order")
			}
			e.storeHead = (e.storeHead + 1) & e.storeMask
			e.storeCnt--
		}
		if en.lastUop {
			committedInsts++
		}
		if en.traceEnd {
			traceEnds++
		}
		e.head++
		committedUops++
		e.Stats.UopsCommitted++
		e.Stats.ROBReads++
	}

	// Issue: age-ordered ready uops up to issue width and unit availability.
	var unitsUsed [isa.NumExecClasses]int
	issued := 0
	if len(e.iq) > 0 {
		out := e.iq[:0]
		for _, h := range e.iq {
			en := e.slot(h)
			if en.seq != h {
				continue // already committed (defensive)
			}
			if issued >= e.cfg.IssueWidth {
				out = append(out, h)
				continue
			}
			cls := en.class
			if cls == isa.ClassNop {
				cls = isa.ClassIntALU
			}
			if unitsUsed[cls] >= e.cfg.Units[cls] || !e.ready(en) {
				out = append(out, h)
				continue
			}
			if en.isLoad && e.loadBlocked(en) {
				out = append(out, h)
				continue
			}
			lat := en.class.Latency()
			if e.divBusy[cls] != nil {
				unit := e.divUnitFree(cls)
				if unit < 0 {
					out = append(out, h)
					continue
				}
				e.divBusy[cls][unit] = e.now + uint64(lat)
			}
			if en.isLoad {
				lat += e.memLatency(en.memAddr, false)
			}
			if en.isStore {
				e.memLatency(en.memAddr, true)
			}
			en.issued = true
			en.doneAt = e.now + uint64(lat)
			e.pending = append(e.pending, h)
			unitsUsed[cls]++
			issued++
			e.Stats.UopsIssued++
			e.Stats.OpsByClass[cls]++
			e.Stats.ROBReads++
		}
		e.iq = out
	}

	return committedUops, committedInsts, traceEnds
}

// Drain runs cycles until the pipeline is empty, returning committed
// instruction-final uops and trace ends observed.
func (e *Engine) Drain() (insts, traceEnds int) {
	for e.head < e.tail {
		_, ci, te := e.Cycle()
		insts += ci
		traceEnds += te
	}
	return insts, traceEnds
}

// NoteStallROB and NoteStallIQ let the front-end record dispatch stalls.
func (e *Engine) NoteStallROB() { e.Stats.StallROBFull++ }

// NoteStallIQ records an issue-queue-full dispatch stall.
func (e *Engine) NoteStallIQ() { e.Stats.StallIQFull++ }
