package ooo

import (
	"fmt"
	"testing"

	"parrot/internal/isa"
)

// The tests in this file lock in the bit-exact behaviour of the
// poll-everything engine ahead of the event-driven rewrite (PR 2): they
// assert the complete Stats vector of deterministic programs that stress the
// two subtlest issue-path hazards — non-pipelined divider contention across
// both divide classes, and load-vs-store disambiguation while the store ring
// wraps. The golden values below were captured on the pre-rewrite engine;
// the rewrite must reproduce them exactly.

// statsKey summarizes a Stats vector as a comparable string.
func statsKey(s Stats) string {
	return fmt.Sprintf("cyc=%d disp=%d iss=%d com=%d rr=%d rw=%d wake=%d robw=%d robr=%d cls=%v",
		s.Cycles, s.UopsDispatched, s.UopsIssued, s.UopsCommitted,
		s.RegReads, s.RegWrites, s.Wakeups, s.ROBWrites, s.ROBReads, s.OpsByClass)
}

// divSaturationProgram interleaves integer and FP divides (both non-pipelined
// classes) with dependent consumers so that unit busy windows overlap: at any
// time several divides of each class compete for the single (narrow) or dual
// (wide) units while their latencies (12 vs 14 cycles) drift in and out of
// phase.
func divSaturationProgram() []isa.Uop {
	var prog []isa.Uop
	for i := 0; i < 24; i++ {
		id := isa.NewUop(isa.OpDiv)
		id.Dst[0] = isa.GPR(i % 6)
		id.Src[0] = isa.GPR(8 + i%2)
		id.Src[1] = isa.GPR(10 + i%3)
		prog = append(prog, id)

		fd := isa.NewUop(isa.OpFDiv)
		fd.Dst[0] = isa.FPR(i % 5)
		fd.Src[0] = isa.FPR(8 + i%3)
		fd.Src[1] = isa.FPR(11 + i%2)
		prog = append(prog, fd)

		if i%3 == 0 {
			// Consumer of the most recent integer divide: wakeup ordering
			// between the two divide classes is observable here.
			use := isa.NewUop(isa.OpAdd)
			use.Dst[0] = isa.GPR(12)
			use.Src[0] = isa.GPR(i % 6)
			use.Src[1] = isa.GPR(12)
			prog = append(prog, use)
		}
		if i%4 == 1 {
			fuse := isa.NewUop(isa.OpFAdd)
			fuse.Dst[0] = isa.FPR(6)
			fuse.Src[0] = isa.FPR(i % 5)
			fuse.Src[1] = isa.FPR(6)
			prog = append(prog, fuse)
		}
	}
	return prog
}

const (
	goldenDivContentionNarrow = "cyc=337 disp=62 iss=62 com=62 rr=124 rw=62 wake=62 robw=62 robr=124 cls=[0 8 0 24 6 0 24 0 0 0]"
	goldenDivContentionWide   = "cyc=169 disp=62 iss=62 com=62 rr=124 rw=62 wake=62 robw=62 robr=124 cls=[0 8 0 24 6 0 24 0 0 0]"
)

// TestDividerContentionBitExact saturates both non-pipelined divide classes
// with overlapping latencies and pins the full statistics vector on the
// narrow (one unit per class) and wide (two units per class) machines.
func TestDividerContentionBitExact(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cfg    Config
		golden string
	}{
		{"narrow", Narrow(), goldenDivContentionNarrow},
		{"wide", Wide(), goldenDivContentionWide},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(tc.cfg, nil)
			run(e, divSaturationProgram(), nil)
			if got := statsKey(e.Stats); got != tc.golden {
				t.Fatalf("divider contention stats diverged:\n got  %s\n want %s", got, tc.golden)
			}
		})
	}
}

// TestDividerContentionSerializes sanity-checks the structural hazard itself:
// with both classes saturated, the run must take at least as long as the
// slowest class's total occupancy on one unit.
func TestDividerContentionSerializes(t *testing.T) {
	e := New(Narrow(), nil)
	run(e, divSaturationProgram(), nil)
	// 24 FP divides × 14 cycles on a single non-pipelined unit.
	if e.Stats.Cycles < 24*14 {
		t.Fatalf("saturated divides finished in %d cycles, want >= %d", e.Stats.Cycles, 24*14)
	}
	w := New(Wide(), nil)
	run(w, divSaturationProgram(), nil)
	if w.Stats.Cycles >= e.Stats.Cycles {
		t.Fatalf("two units per class not faster: wide %d vs narrow %d cycles",
			w.Stats.Cycles, e.Stats.Cycles)
	}
}

// wrapDisambiguationProgram drives the store ring through several full
// wrap-arounds while loads alias pending stores: every fourth store is
// followed by a load to the same address whose data producer (a multiply
// chain) delays the store's completion, so the load must observe the
// blocking store across arbitrary ring index positions.
func wrapDisambiguationProgram(ringLen int) (prog []isa.Uop, addrs []uint64) {
	total := 3 * ringLen // three full wraps
	for i := 0; i < total; i++ {
		if i%4 == 0 {
			// Slow producer for the store data register.
			mul := isa.NewUop(isa.OpMul)
			mul.Dst[0] = isa.GPR(9)
			mul.Src[0] = isa.GPR(9)
			mul.Src[1] = isa.GPR(8)
			prog = append(prog, mul)
			addrs = append(addrs, 0)
		}
		st := isa.NewUop(isa.OpStore)
		st.Src[0] = isa.GPR(2)
		st.Src[1] = isa.GPR(9) // data from the multiply chain
		prog = append(prog, st)
		addrs = append(addrs, uint64(0x1000+(i%8)*64))
		if i%4 == 3 {
			// Aliasing load: same address as the store two slots back.
			ld := isa.NewUop(isa.OpLoad)
			ld.Dst[0] = isa.GPR(4)
			ld.Src[0] = isa.GPR(2)
			prog = append(prog, ld)
			addrs = append(addrs, uint64(0x1000+(i%8)*64))
			// And an independent load that must NOT block.
			ld2 := isa.NewUop(isa.OpLoad)
			ld2.Dst[0] = isa.GPR(5)
			ld2.Src[0] = isa.GPR(3)
			prog = append(prog, ld2)
			addrs = append(addrs, uint64(0x9000+(i%8)*64))
		}
	}
	return prog, addrs
}

const goldenWrapDisambiguation = "cyc=391 disp=672 iss=672 com=672 rr=1152 rw=288 wake=672 robw=672 robr=1344 cls=[0 0 96 0 0 0 0 192 384 0]"

// TestLoadStoreDisambiguationAtWrapBitExact pins the exact behaviour of
// load-vs-store ordering while the disambiguation ring wraps around several
// times.
func TestLoadStoreDisambiguationAtWrapBitExact(t *testing.T) {
	e := New(Narrow(), nil)
	prog, addrs := wrapDisambiguationProgram(len(e.stores))
	run(e, prog, addrs)
	if e.StoreQueueLen() != 0 {
		t.Fatalf("%d stores left in ring", e.StoreQueueLen())
	}
	if got := statsKey(e.Stats); got != goldenWrapDisambiguation {
		t.Fatalf("wrap-around disambiguation stats diverged:\n got  %s\n want %s",
			got, goldenWrapDisambiguation)
	}
}

// TestAliasingLoadOrderedAfterStoreAtWrap checks the ordering property
// directly at a wrapped ring position: the aliasing load completes only after
// its blocking store, while the independent load does not wait.
func TestAliasingLoadOrderedAfterStoreAtWrap(t *testing.T) {
	e := New(Narrow(), nil)
	ringLen := len(e.stores)

	// Fill and retire enough stores to wrap the ring indices.
	for i := 0; i < ringLen+ringLen/2; i++ {
		for !e.CanDispatch() {
			e.Cycle()
		}
		st := isa.NewUop(isa.OpStore)
		st.Src[0] = isa.GPR(1)
		st.Src[1] = isa.GPR(2)
		e.Dispatch(&st, uint64(i*64), true, false)
	}
	e.Drain()

	// Slow producer feeds a store; an aliasing and an independent load follow.
	mul := isa.NewUop(isa.OpMul)
	mul.Dst[0] = isa.GPR(9)
	mul.Src[0] = isa.GPR(9)
	mul.Src[1] = isa.GPR(8)
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = isa.GPR(2)
	st.Src[1] = isa.GPR(9)
	ld := isa.NewUop(isa.OpLoad)
	ld.Dst[0] = isa.GPR(4)
	ld.Src[0] = isa.GPR(3)
	ind := isa.NewUop(isa.OpLoad)
	ind.Dst[0] = isa.GPR(5)
	ind.Src[0] = isa.GPR(3)

	e.Dispatch(&mul, 0, true, false)
	hs := e.Dispatch(&st, 0x4000, true, false)
	hl := e.Dispatch(&ld, 0x4000, true, false)
	hi := e.Dispatch(&ind, 0x8000, true, false)

	sDone, lDone, iDone := uint64(0), uint64(0), uint64(0)
	for e.InFlight() > 0 {
		e.Cycle()
		if sDone == 0 && e.Done(hs) {
			sDone = e.Now()
		}
		if lDone == 0 && e.Done(hl) {
			lDone = e.Now()
		}
		if iDone == 0 && e.Done(hi) {
			iDone = e.Now()
		}
	}
	if lDone <= sDone {
		t.Fatalf("aliasing load done at %d, store at %d: load bypassed pending store", lDone, sDone)
	}
	if iDone >= lDone {
		t.Fatalf("independent load (done %d) waited with the aliasing load (done %d)", iDone, lDone)
	}
}
