package ooo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parrot/internal/isa"
)

// Property: dispatched == committed after drain, for random well-formed
// programs, and stats identities hold.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 10 + int(nRaw)%200
		rng := rand.New(rand.NewSource(seed))
		e := New(Narrow(), nil)
		dispatched := 0
		for dispatched < n {
			for i := 0; i < e.Config().Width && dispatched < n && e.CanDispatch(); i++ {
				u := isa.NewUop(isa.OpAdd)
				u.Dst[0] = isa.GPR(rng.Intn(16))
				u.Src[0] = isa.GPR(rng.Intn(16))
				u.Src[1] = isa.GPR(rng.Intn(16))
				e.Dispatch(&u, 0, true, false)
				dispatched++
			}
			e.Cycle()
		}
		e.Drain()
		return e.Stats.UopsDispatched == uint64(n) &&
			e.Stats.UopsCommitted == uint64(n) &&
			e.Stats.UopsIssued == uint64(n) &&
			e.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIssueRespectsUnitCounts(t *testing.T) {
	// One divide unit: two independent divides serialize.
	e := New(Narrow(), nil)
	for i := 0; i < 2; i++ {
		u := isa.NewUop(isa.OpDiv)
		u.Dst[0] = isa.GPR(i)
		u.Src[0] = isa.GPR(8)
		u.Src[1] = isa.GPR(9)
		e.Dispatch(&u, 0, true, false)
	}
	e.Drain()
	// Two serialized 12-cycle divides need >= 24 cycles.
	if e.Stats.Cycles < 24 {
		t.Errorf("two divides on one unit finished in %d cycles", e.Stats.Cycles)
	}
}

func TestIssueWidthCap(t *testing.T) {
	cfg := Narrow()
	cfg.IssueWidth = 2 // cap below ALU unit count
	e := New(cfg, nil)
	for i := 0; i < 8; i++ {
		u := isa.NewUop(isa.OpAdd)
		u.Dst[0] = isa.GPR(i)
		u.Src[0] = isa.GPR(12)
		u.Src[1] = isa.GPR(13)
		e.Dispatch(&u, 0, true, false)
	}
	e.Drain()
	// 8 independent adds at 2/cycle need at least 4 issue cycles.
	if e.Stats.Cycles < 4 {
		t.Errorf("issue width cap violated: %d cycles", e.Stats.Cycles)
	}
}

func TestMemLatencyCallbackReceivesAddressAndKind(t *testing.T) {
	var gotAddr uint64
	var gotWrite bool
	e := New(Narrow(), func(addr uint64, write bool) int {
		gotAddr, gotWrite = addr, write
		return 0
	})
	st := isa.NewUop(isa.OpStore)
	st.Src[0] = isa.GPR(1)
	st.Src[1] = isa.GPR(2)
	e.Dispatch(&st, 0xCAFE, true, false)
	e.Drain()
	if gotAddr != 0xCAFE || !gotWrite {
		t.Errorf("callback saw %#x write=%v", gotAddr, gotWrite)
	}
}

func TestStoresLeaveInFlightListAtCommit(t *testing.T) {
	e := New(Narrow(), nil)
	for i := 0; i < 20; i++ {
		st := isa.NewUop(isa.OpStore)
		st.Src[0] = isa.GPR(1)
		st.Src[1] = isa.GPR(2)
		e.Dispatch(&st, uint64(0x100+i*8), true, false)
		e.Cycle()
	}
	e.Drain()
	if e.StoreQueueLen() != 0 {
		t.Errorf("%d stores leaked in the disambiguation list", e.StoreQueueLen())
	}
}

func TestNarrowWideConfigsSane(t *testing.T) {
	n, w := Narrow(), Wide()
	if w.Width != 2*n.Width || w.IssueWidth != 2*n.IssueWidth || w.CommitWidth != 2*n.CommitWidth {
		t.Error("wide bandwidth must double narrow")
	}
	if w.ROBSize <= n.ROBSize || w.IQSize <= n.IQSize {
		t.Error("wide window must exceed narrow")
	}
	for c := isa.ExecClass(1); c < isa.NumExecClasses; c++ {
		if n.Units[c] == 0 {
			t.Errorf("narrow machine lacks %v units", c)
		}
		if w.Units[c] != 2*n.Units[c] {
			t.Errorf("wide %v units not doubled", c)
		}
	}
}

func TestPackedUopsExecute(t *testing.T) {
	// Fused and SIMD uops flow through the engine like plain ALU work.
	e := New(Narrow(), nil)
	fu := isa.NewUop(isa.OpFusedAluAlu)
	fu.SubOps = [2]isa.Op{isa.OpAdd, isa.OpXor}
	fu.Dst[0] = isa.GPR(1)
	fu.Src[0], fu.Src[1], fu.Src[2] = isa.GPR(2), isa.GPR(3), isa.GPR(4)
	sd := isa.NewUop(isa.OpSimd2)
	sd.SubOps[0] = isa.OpAdd
	sd.Dst[0], sd.Dst[1] = isa.GPR(5), isa.GPR(6)
	sd.Src[0], sd.Src[1], sd.Src[2], sd.Src[3] = isa.GPR(1), isa.GPR(2), isa.GPR(3), isa.GPR(4)
	e.Dispatch(&fu, 0, true, false)
	h := e.Dispatch(&sd, 0, true, false)
	e.Drain()
	if !e.Retired(h) {
		t.Error("packed uops did not retire")
	}
	if e.Stats.OpsByClass[isa.ClassIntALU] != 2 {
		t.Errorf("packed uops classed wrong: %v", e.Stats.OpsByClass)
	}
}

func TestSimdDependencyThroughSecondDst(t *testing.T) {
	// A consumer of the SIMD uop's second destination must wait for it.
	e := New(Narrow(), nil)
	slow := isa.NewUop(isa.OpDiv) // feeds the simd
	slow.Dst[0] = isa.GPR(3)
	slow.Src[0] = isa.GPR(8)
	slow.Src[1] = isa.GPR(9)
	sd := isa.NewUop(isa.OpSimd2)
	sd.SubOps[0] = isa.OpAdd
	sd.Dst[0], sd.Dst[1] = isa.GPR(5), isa.GPR(6)
	sd.Src[0], sd.Src[1], sd.Src[2], sd.Src[3] = isa.GPR(1), isa.GPR(2), isa.GPR(3), isa.GPR(4)
	use := isa.NewUop(isa.OpAdd)
	use.Dst[0] = isa.GPR(7)
	use.Src[0] = isa.GPR(6) // second lane's result
	use.Src[1] = isa.GPR(6)
	e.Dispatch(&slow, 0, true, false)
	e.Dispatch(&sd, 0, true, false)
	h := e.Dispatch(&use, 0, true, false)
	for i := 0; i < 6; i++ {
		e.Cycle()
	}
	if e.Done(h) {
		t.Error("consumer of simd lane 2 issued before the divide-fed simd")
	}
	e.Drain()
	if !e.Done(h) {
		t.Error("consumer never completed")
	}
}
