// Package branch implements the branch prediction structures of the cold
// front-end: a gshare direction predictor, a branch target buffer and a
// return address stack.
//
// The study configures a 4K-entry predictor for the baseline N and W models
// and a 2K-entry branch predictor (alongside a 2K-entry trace predictor) for
// the PARROT models (§4.2 of the paper).
package branch

// Stats counts predictor activity for performance and energy accounting.
type Stats struct {
	Lookups     uint64
	Updates     uint64
	Mispredicts uint64
}

// MispredictRate returns mispredictions per lookup.
func (s *Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Predictor is a gshare conditional-branch direction predictor: a table of
// two-bit saturating counters indexed by the branch PC XORed with the global
// history register.
type Predictor struct {
	table    []uint8
	mask     uint32
	history  uint32
	histBits uint

	// epoch counts table/history mutations. It is monotone across the whole
	// machine lifetime (statistics resets leave it alone), so it stands in
	// for the full table contents in state fingerprints: two machines whose
	// predictors took different training paths disagree on it.
	epoch uint64

	Stats Stats
}

// NewPredictor builds a gshare predictor with the given number of entries
// (rounded up to a power of two) and history bits.
func NewPredictor(entries int, histBits uint) *Predictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Predictor{table: t, mask: uint32(n - 1), histBits: histBits}
}

// Entries returns the table size.
func (p *Predictor) Entries() int { return len(p.table) }

// Epoch returns the mutation epoch: the count of Update calls since
// construction or Reset. Used as a cheap dirty-set summary of the table and
// history state by the memoization fingerprint (internal/core).
func (p *Predictor) Epoch() uint64 { return p.epoch }

// Reset returns the predictor to its just-constructed state: counters back
// to weakly not-taken, history and statistics cleared. Part of the
// machine-pooling Reset protocol.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 1
	}
	p.history = 0
	p.epoch = 0
	p.Stats = Stats{}
}

func (p *Predictor) index(pc uint64) uint32 {
	return (uint32(pc>>2) ^ p.history) & p.mask
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	p.Stats.Lookups++
	return p.table[p.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and shifts the
// global history. It also records whether the prior prediction would have
// been wrong; callers that already called Predict should use Record instead
// to avoid double-counting mispredictions.
func (p *Predictor) Update(pc uint64, taken bool) {
	p.epoch++
	p.Stats.Updates++
	i := p.index(pc)
	c := p.table[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.table[i] = c
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << p.histBits) - 1)
}

// PredictAndTrain performs a combined lookup/train step as used by the
// trace-driven fetch model: it returns whether the prediction matched the
// actual outcome and updates all state, counting a misprediction on mismatch.
func (p *Predictor) PredictAndTrain(pc uint64, actual bool) (correct bool) {
	pred := p.Predict(pc)
	correct = pred == actual
	if !correct {
		p.Stats.Mispredicts++
	}
	p.Update(pc, actual)
	return correct
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer holding taken targets.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64

	Stats Stats
}

// NewBTB builds a BTB with the given number of entries (rounded up to a
// power of two).
func NewBTB(entries int) *BTB {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		valid:   make([]bool, n),
		mask:    uint64(n - 1),
	}
}

// Entries returns the table size.
func (b *BTB) Entries() int { return len(b.tags) }

// Reset clears all entries and statistics (machine-pooling Reset protocol).
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i], b.targets[i], b.valid[i] = 0, 0, false
	}
	b.Stats = Stats{}
}

// Lookup returns the stored target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.Stats.Lookups++
	i := (pc >> 2) & b.mask
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Insert stores the taken target for pc.
func (b *BTB) Insert(pc, target uint64) {
	b.Stats.Updates++
	i := (pc >> 2) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}

// RAS is a return address stack with wraparound overwrite on overflow, as in
// real hardware.
type RAS struct {
	stack []uint64
	top   int
	depth int

	Stats Stats
}

// NewRAS builds a return address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity < 1 {
		capacity = 1
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address on a call.
func (r *RAS) Push(addr uint64) {
	r.Stats.Updates++
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return address for a return instruction. ok is false
// when the stack has underflowed.
func (r *RAS) Pop() (addr uint64, ok bool) {
	r.Stats.Lookups++
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the current occupancy.
func (r *RAS) Depth() int { return r.depth }

// Reset empties the stack and clears statistics (machine-pooling Reset
// protocol).
func (r *RAS) Reset() {
	for i := range r.stack {
		r.stack[i] = 0
	}
	r.top, r.depth = 0, 0
	r.Stats = Stats{}
}
