package branch

import (
	"math/rand"
	"testing"
)

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(1024, 10)
	pc := uint64(0x4000)
	for i := 0; i < 64; i++ {
		p.PredictAndTrain(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("predictor should learn an always-taken branch")
	}
	// After warmup the branch must predict correctly.
	warm := p.Stats.Mispredicts
	for i := 0; i < 64; i++ {
		p.PredictAndTrain(pc, true)
	}
	if p.Stats.Mispredicts != warm {
		t.Error("steady-state always-taken branch must not mispredict")
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	// gshare with history should learn a strict T/NT alternation.
	p := NewPredictor(4096, 12)
	pc := uint64(0x8888)
	taken := false
	for i := 0; i < 512; i++ {
		p.PredictAndTrain(pc, taken)
		taken = !taken
	}
	before := p.Stats.Mispredicts
	for i := 0; i < 200; i++ {
		p.PredictAndTrain(pc, taken)
		taken = !taken
	}
	if got := p.Stats.Mispredicts - before; got > 4 {
		t.Errorf("alternating branch mispredicts after warmup = %d", got)
	}
}

func TestPredictorRandomIsHard(t *testing.T) {
	p := NewPredictor(4096, 12)
	rng := rand.New(rand.NewSource(5))
	pc := uint64(0x1234)
	for i := 0; i < 4000; i++ {
		p.PredictAndTrain(pc, rng.Intn(2) == 0)
	}
	rate := p.Stats.MispredictRate()
	if rate < 0.3 {
		t.Errorf("random branch mispredict rate = %v, should be high", rate)
	}
}

func TestPredictorEntriesRounding(t *testing.T) {
	if got := NewPredictor(1000, 10).Entries(); got != 1024 {
		t.Errorf("entries = %d, want 1024", got)
	}
	if got := NewPredictor(4096, 12).Entries(); got != 4096 {
		t.Errorf("entries = %d, want 4096", got)
	}
}

func TestMispredictRateZeroLookups(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Error("empty stats must report rate 0")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(512)
	if _, ok := b.Lookup(0x4000); ok {
		t.Error("empty BTB must miss")
	}
	b.Insert(0x4000, 0x5000)
	tgt, ok := b.Lookup(0x4000)
	if !ok || tgt != 0x5000 {
		t.Errorf("lookup = %#x,%v", tgt, ok)
	}
}

func TestBTBConflict(t *testing.T) {
	b := NewBTB(16)
	// Two PCs with the same index (differ above the index bits).
	a1 := uint64(0x100)
	a2 := a1 + uint64(b.Entries())*4
	b.Insert(a1, 1)
	b.Insert(a2, 2)
	if _, ok := b.Lookup(a1); ok {
		t.Error("conflicting insert must evict prior entry")
	}
	if tgt, ok := b.Lookup(a2); !ok || tgt != 2 {
		t.Error("latest insert must win")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must underflow")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got, _ := r.Pop(); got != 3 {
		t.Errorf("pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("pop = %d, want 2", got)
	}
	if r.Depth() != 0 {
		t.Errorf("depth = %d", r.Depth())
	}
}

func TestBiggerPredictorIsBetterOnManyBranches(t *testing.T) {
	// With many branches of fixed per-PC bias, a small table suffers more
	// aliasing than a large one. This underpins the paper's Fig 4.7 setup
	// (4K-entry predictor in N vs 2K in TON).
	run := func(entries int) float64 {
		p := NewPredictor(entries, 8)
		rng := rand.New(rand.NewSource(9))
		pcs := make([]uint64, 3000)
		bias := make([]bool, len(pcs))
		for i := range pcs {
			pcs[i] = uint64(rng.Intn(1<<20) * 4)
			bias[i] = rng.Intn(2) == 0
		}
		for round := 0; round < 30; round++ {
			for i, pc := range pcs {
				p.PredictAndTrain(pc, bias[i])
			}
		}
		return p.Stats.MispredictRate()
	}
	small, large := run(256), run(8192)
	if large >= small {
		t.Errorf("8K-entry rate %v should beat 256-entry rate %v", large, small)
	}
}
