package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/workload"
)

// SimVersion identifies the generation of simulation semantics. It is part
// of every RunSpec digest, so any intentional modelling change — anything
// that would move the committed golden matrix digest — must bump it, which
// atomically invalidates every content-addressed cache entry produced by
// older kernels. Kernel rewrites that are bit-identical (the PR 1/2
// contract) keep the version and therefore keep the cache warm.
const SimVersion = 4

// RunSpec is the canonical, fully-resolved description of one simulation
// cell: the complete machine configuration (not just its ID — sensitivity
// sweeps perturb parameters under an unchanged ID), the complete workload
// profile and the dynamic instruction budget. PR 2's golden digest proved a
// run is a bit-exact function of exactly these inputs, which makes the
// digest below a sound content address for the result.
type RunSpec struct {
	Model config.Model     `json:"model"`
	App   workload.Profile `json:"app"`
	Insts int              `json:"insts"`
}

// Normalize resolves defaulted fields to their effective values, so specs
// that run identically hash identically: Insts <= 0 means "profile default"
// everywhere in the simulator (core.RunWarmOn), so it is rewritten to the
// profile's instruction count.
func (s RunSpec) Normalize() RunSpec {
	if s.Insts <= 0 {
		s.Insts = s.App.Instructions
	}
	return s
}

// Digest returns the hex SHA-256 content address of the spec: the cache
// key of the serving layer. The encoding is canonical — SimVersion, then
// the JSON of the resolved model and profile (struct declaration order,
// stable across runs and processes), then the normalized instruction
// count. Two processes that build the same spec derive the same address
// with no coordination.
//
// Note JSON field order is Go struct declaration order: adding or moving a
// field in config.Model, ooo.Config, mem.HierarchyConfig, opt.Config or
// workload.Profile changes every digest. That is the desired behaviour
// (new knobs mean results may differ), and TestRunSpecDigestGolden pins it
// so such changes are made consciously alongside a SimVersion review.
func (s RunSpec) Digest() string {
	s = s.Normalize()
	h := sha256.New()
	wu64(h, SimVersion)
	mb, err := json.Marshal(s.Model)
	if err != nil {
		panic(fmt.Sprintf("experiments: model spec not serializable: %v", err))
	}
	pb, err := json.Marshal(s.App)
	if err != nil {
		panic(fmt.Sprintf("experiments: profile spec not serializable: %v", err))
	}
	wbytes(h, mb)
	wbytes(h, pb)
	wu64(h, uint64(s.Insts))
	return hex.EncodeToString(h.Sum(nil))
}

// FamilyKey is Digest with the instruction budget masked out: every run of
// the same (SimVersion, model, application) shares one family regardless
// of -n. The serving layer's graceful-degradation path uses it to locate a
// stale-but-related cached result when the exact digest cannot be computed
// in time.
func (s RunSpec) FamilyKey() string {
	s = s.Normalize()
	h := sha256.New()
	wu64(h, SimVersion)
	mb, err := json.Marshal(s.Model)
	if err != nil {
		panic(fmt.Sprintf("experiments: model spec not serializable: %v", err))
	}
	pb, err := json.Marshal(s.App)
	if err != nil {
		panic(fmt.Sprintf("experiments: profile spec not serializable: %v", err))
	}
	wbytes(h, mb)
	wbytes(h, pb)
	return hex.EncodeToString(h.Sum(nil))
}

// canonical little-endian writers shared by the spec and result hashers.

func wu64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func wf64(h hash.Hash, v float64) { wu64(h, math.Float64bits(v)) }

func wstr(h hash.Hash, s string) {
	wu64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func wbytes(h hash.Hash, b []byte) {
	wu64(h, uint64(len(b)))
	h.Write(b)
}

// writeResult streams every deterministic field of one cell result into the
// hash in canonical order. It is the single definition shared by the
// matrix-level Results.Digest (the golden-digest test) and the cell-level
// ResultDigest (the serving cache's integrity check), so a cached cell that
// verifies individually also verifies inside a reassembled matrix.
func writeResult(h hash.Hash, res *core.Result) {
	wstr(h, string(res.Model))
	wstr(h, res.App)
	wu64(h, res.Insts)
	wu64(h, res.Cycles)
	wu64(h, res.HotInsts)
	wu64(h, res.ColdInsts)
	wf64(h, res.DynEnergy)
	for _, b := range res.Breakdown {
		wf64(h, b)
	}
	wu64(h, res.BranchStats.Lookups)
	wu64(h, res.BranchStats.Updates)
	wu64(h, res.BranchStats.Mispredicts)
	wu64(h, res.TPredStats.Lookups)
	wu64(h, res.TPredStats.Predictions)
	wu64(h, res.TPredStats.Correct)
	wu64(h, res.TPredStats.Mispredicts)
	wu64(h, res.TPredStats.Updates)
	wu64(h, res.TCStats.Lookups)
	wu64(h, res.TCStats.Hits)
	wu64(h, res.TCStats.Misses)
	wu64(h, res.TCStats.Inserts)
	wu64(h, res.TCStats.Writebacks)
	wu64(h, res.TCStats.Evictions)
	wu64(h, res.TraceAborts)
	wu64(h, res.TraceBuilds)
	wu64(h, res.HotSegments)
	wu64(h, res.ColdSegments)
	wu64(h, res.Optimizations)
	wu64(h, res.OptUopsBefore)
	wu64(h, res.OptUopsAfter)
	wu64(h, res.OptCritBefore)
	wu64(h, res.OptCritAfter)
	wu64(h, res.DynUopsOrig)
	wu64(h, res.DynUopsOpt)
	wu64(h, res.DynCritOrig)
	wu64(h, res.DynCritOpt)
	wu64(h, res.OptTracesSeen)
	wu64(h, res.OptExecs)
	wu64(h, res.UopsCommitted)
	wu64(h, res.UopsDispatched)
	for _, c := range res.Counts {
		wu64(h, c)
	}
}

// ResultDigest returns the hex SHA-256 over every deterministic field of a
// single cell result — the value the serving cache stores alongside each
// entry and recomputes on load, so corrupt or truncated entries are
// detected by digest mismatch and recomputed rather than served.
func ResultDigest(res *core.Result) string {
	h := sha256.New()
	writeResult(h, res)
	return hex.EncodeToString(h.Sum(nil))
}
