package experiments

import (
	"fmt"

	"parrot/internal/config"
	"parrot/internal/metrics"
)

// Table31 renders the paper's Table 3.1: the two-dimensional configuration
// space of core width by front-end capability.
func Table31() *metrics.Table {
	t := metrics.NewTable("Table 3.1  two-dimensional configuration space",
		"core \\ front-end", "baseline", "+trace cache", "+trace cache & optimizer")
	t.AddRow("narrow (4-wide)", "N", "TN", "TON")
	t.AddRow("wide (8-wide)", "W", "TW", "TOW")
	t.AddRow("split (4+8)", "-", "-", "TOS")
	return t
}

// Table32 renders the paper's Table 3.2: the microarchitectural settings of
// every model, derived directly from the executable configurations.
func Table32() *metrics.Table {
	t := metrics.NewTable("Table 3.2  microarchitectural settings",
		"model", "fetch", "decode", "rename", "issue", "ROB", "IQ",
		"BP", "TC frames", "TC fetch", "tpred", "hot thr", "blaze thr", "optimizer", "area K")
	for _, m := range config.All() {
		tc, tf, tp, ht, bt, opt := "-", "-", "-", "-", "-", "-"
		if m.TraceCache {
			tc = fmt.Sprintf("%d", m.TCFrames)
			tf = fmt.Sprintf("%d", m.TraceFetchUops)
			tp = fmt.Sprintf("%d", m.TPredEntries)
			ht = fmt.Sprintf("%d", m.HotThreshold)
		}
		if m.Optimize {
			bt = fmt.Sprintf("%d", m.BlazeThreshold)
			opt = "full"
		}
		width := fmt.Sprintf("%d", m.Core.Width)
		issue := fmt.Sprintf("%d", m.Core.IssueWidth)
		rob := fmt.Sprintf("%d", m.Core.ROBSize)
		iq := fmt.Sprintf("%d", m.Core.IQSize)
		if m.Split {
			width = fmt.Sprintf("%d+%d", m.Core.Width, m.HotCore.Width)
			issue = fmt.Sprintf("%d+%d", m.Core.IssueWidth, m.HotCore.IssueWidth)
			rob = fmt.Sprintf("%d+%d", m.Core.ROBSize, m.HotCore.ROBSize)
			iq = fmt.Sprintf("%d+%d", m.Core.IQSize, m.HotCore.IQSize)
		}
		t.AddRow(string(m.ID),
			fmt.Sprintf("%d", m.FetchWidth),
			fmt.Sprintf("%d", m.DecodeWidth),
			width, issue, rob, iq,
			fmt.Sprintf("%d", m.BPEntries),
			tc, tf, tp, ht, bt, opt,
			fmt.Sprintf("%.2f", m.CoreAreaK))
	}
	return t
}
