package experiments

import (
	"strings"
	"testing"

	"parrot/internal/config"
	"parrot/internal/workload"
)

// smallRun executes a reduced matrix shared by the tests in this package:
// five representative applications (one per suite) on all models.
var smallRunCache *Results

func smallRun(t *testing.T) *Results {
	t.Helper()
	if smallRunCache != nil {
		return smallRunCache
	}
	var apps []workload.Profile
	for _, name := range []string{"gcc", "swim", "word", "flash", "dotnet-num1"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %s", name)
		}
		apps = append(apps, p)
	}
	smallRunCache = Run(Config{Insts: 60_000, Apps: apps})
	return smallRunCache
}

func TestMatrixComplete(t *testing.T) {
	res := smallRun(t)
	if len(res.Models()) != 7 {
		t.Fatalf("models = %d", len(res.Models()))
	}
	for _, id := range res.Models() {
		for _, p := range res.Apps() {
			r := res.Get(id, p.Name)
			if r == nil || r.Insts == 0 {
				t.Errorf("missing result %s/%s", id, p.Name)
			}
		}
	}
	if res.PMax <= 0 || res.PMaxApp == "" {
		t.Error("P_MAX anchor not derived")
	}
}

func TestParallelismIsDeterministic(t *testing.T) {
	p, _ := workload.ByName("gzip")
	apps := []workload.Profile{p}
	models := []config.Model{config.Get(config.N), config.Get(config.TON)}
	a := Run(Config{Insts: 20_000, Apps: apps, Models: models, Parallelism: 1})
	b := Run(Config{Insts: 20_000, Apps: apps, Models: models, Parallelism: 4})
	for _, id := range []config.ModelID{config.N, config.TON} {
		ra, rb := a.Get(id, "gzip"), b.Get(id, "gzip")
		if ra.Cycles != rb.Cycles || ra.DynEnergy != rb.DynEnergy {
			t.Errorf("%s: parallel run differs from serial", id)
		}
	}
}

func TestAllFiguresRender(t *testing.T) {
	res := smallRun(t)
	figs := res.AllFigures()
	if len(figs) != 11 {
		t.Fatalf("figures = %d, want 11 (4.1 through 4.11)", len(figs))
	}
	for _, f := range figs {
		if f.Table == nil || len(f.Values) == 0 {
			t.Errorf("%s: empty figure", f.ID)
		}
		out := f.Table.String()
		if !strings.Contains(out, f.ID) {
			t.Errorf("%s: table missing its identifier", f.ID)
		}
	}
}

// TestHeadlineShapes verifies the qualitative claims of §4 on the reduced
// matrix. Bands are wide: the full EXPERIMENTS.md run uses all 44 apps.
func TestHeadlineShapes(t *testing.T) {
	res := smallRun(t)
	f44 := res.Fig44()
	f45 := res.Fig45()

	ipc := func(m string) float64 { return f44.Values[m]["Overall"] }
	en := func(m string) float64 { return f45.Values[m]["Overall"] }

	// Widening helps performance but costs much more energy.
	if ipc("W") < 1.08 {
		t.Errorf("W/N IPC = %v, expected a clear gain", ipc("W"))
	}
	if en("W") < 1.4 {
		t.Errorf("W/N energy = %v, expected ~1.7x", en("W"))
	}
	// The trace cache alone adds little performance.
	if ipc("TN") > 1.08 {
		t.Errorf("TN/N IPC = %v, should be marginal", ipc("TN"))
	}
	// PARROT optimization delivers performance at far lower energy than
	// widening.
	if ipc("TON") < 1.05 {
		t.Errorf("TON/N IPC = %v, expected a solid gain", ipc("TON"))
	}
	if en("TON") > 1.15 {
		t.Errorf("TON/N energy = %v, must stay near the narrow budget", en("TON"))
	}
	if en("TON") > en("W")*0.75 {
		t.Errorf("TON energy %v should massively undercut W %v", en("TON"), en("W"))
	}
	// The full-blown machine stacks both.
	if ipc("TOW") <= ipc("W") {
		t.Errorf("TOW IPC %v must exceed W %v", ipc("TOW"), ipc("W"))
	}
	if en("TOW") >= en("TW") {
		t.Errorf("TOW energy %v must undercut TW %v (optimizer saves work)", en("TOW"), en("TW"))
	}

	// CMPW: PARROT improves power awareness over both baselines.
	f43 := res.Fig43()
	if f43.Values["TON"]["Overall"] < 1.1 || f43.Values["TOW"]["Overall"] < 1.1 {
		t.Errorf("CMPW gains too small: TON %v TOW %v",
			f43.Values["TON"]["Overall"], f43.Values["TOW"]["Overall"])
	}
}

func TestFig47Shape(t *testing.T) {
	res := smallRun(t)
	f := res.Fig47()
	for _, grp := range []string{"Overall", "SpecFP"} {
		nBr := f.Values["N-branch"][grp]
		cold := f.Values["TON-cold-branch"][grp]
		hot := f.Values["TON-hot-trace"][grp]
		if !(hot < cold) {
			t.Errorf("%s: hot trace MR %v must undercut cold branch MR %v", grp, hot, cold)
		}
		if !(nBr < cold) {
			t.Errorf("%s: N branch MR %v should sit below the cold residue %v", grp, nBr, cold)
		}
	}
}

func TestFig48Shape(t *testing.T) {
	res := smallRun(t)
	f := res.Fig48()
	fp := f.Values["coverage"]["SpecFP"]
	in := f.Values["coverage"]["SpecInt"]
	if fp < 0.8 {
		t.Errorf("FP coverage = %v, paper reports ~0.9", fp)
	}
	if in >= fp {
		t.Errorf("integer coverage %v must trail FP %v", in, fp)
	}
}

func TestFig49Bands(t *testing.T) {
	res := smallRun(t)
	f := res.Fig49()
	uop := f.Values["uop-reduction"]["Overall"]
	dep := f.Values["dep-reduction"]["Overall"]
	if uop < 0.15 || uop > 0.45 {
		t.Errorf("uop reduction = %v, outside plausible band around the paper's 19%%", uop)
	}
	if dep < 0.02 || dep > 0.30 {
		t.Errorf("dependency reduction = %v, outside band around the paper's 8%%", dep)
	}
}

func TestFig410Shape(t *testing.T) {
	res := smallRun(t)
	f := res.Fig410()
	fp := f.Values["executions-per-trace"]["SpecFP"]
	overall := f.Values["executions-per-trace"]["Overall"]
	if fp < overall {
		t.Errorf("FP reuse %v must lead the mean %v (paper Figure 4.10)", fp, overall)
	}
	if overall < 10 {
		t.Errorf("optimizer work reused only %vx — the blazing threshold should guarantee more", overall)
	}
}

func TestFig411Shape(t *testing.T) {
	res := smallRun(t)
	f := res.Fig411()
	// Front-end energy share must shrink from N to TON (decoded traces) on
	// every breakdown app.
	for _, app := range Fig411Apps {
		n := f.Values[app+"/N"]["front-end"]
		ton := f.Values[app+"/TON"]["front-end"]
		if ton >= n {
			t.Errorf("%s: front-end share %v (TON) must shrink from %v (N)", app, ton, n)
		}
	}
	// Trace manipulation stays a modest share of total energy.
	for _, app := range Fig411Apps {
		if share := res.TraceManipulationShare(config.TON, app); share > 0.2 {
			t.Errorf("%s: trace manipulation share = %v, paper reports order 10%%", app, share)
		}
	}
}

func TestTablesRender(t *testing.T) {
	t31 := Table31().String()
	for _, want := range []string{"N", "TON", "TOS", "narrow", "wide", "split"} {
		if !strings.Contains(t31, want) {
			t.Errorf("Table 3.1 missing %q", want)
		}
	}
	t32 := Table32().String()
	for _, want := range []string{"model", "ROB", "TOW", "512", "area K"} {
		if !strings.Contains(t32, want) {
			t.Errorf("Table 3.2 missing %q", want)
		}
	}
}

func TestKillerAppsLead(t *testing.T) {
	// The killer applications must show above-average TON gains.
	res := smallRun(t)
	f := res.Fig41()
	overall := f.Values["TON"]["Overall"]
	if flash := f.Values["TON"]["flash"]; flash < overall {
		t.Errorf("flash TON gain %v below overall %v", flash, overall)
	}
}

func TestJSONExport(t *testing.T) {
	res := smallRun(t)
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"pMaxApp"`, `"runs"`, `"ipc"`, `"TON"`, `"swim"`, `"coverage"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON export missing %s", want)
		}
	}
	if n := strings.Count(out, `"model"`); n != len(res.Models())*len(res.Apps()) {
		t.Errorf("JSON has %d runs, want %d", n, len(res.Models())*len(res.Apps()))
	}
}
