package experiments

import (
	"testing"
	"time"

	"parrot/internal/config"
	"parrot/internal/workload"
)

// TestProgressMonotonicUnderConcurrency pins the Progress contract the SSE
// relay and the CLI status line rely on: with a parallel fan-out, callbacks
// are serialized and done is strictly increasing, hitting every value
// 1..total exactly once. Before the callback was moved under the progress
// mutex, two workers completing together could observe reordered done
// values; this test fails on that implementation.
func TestProgressMonotonicUnderConcurrency(t *testing.T) {
	var apps []workload.Profile
	for _, name := range []string{"gzip", "swim", "gcc", "word", "flash", "dotnet-num1"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %s", name)
		}
		apps = append(apps, p)
	}
	models := []config.Model{config.Get(config.N), config.Get(config.TN), config.Get(config.TON)}
	total := len(models) * len(apps)

	// The callback body deliberately holds no lock of its own: the
	// serialization guarantee must come from the fan-out.
	var seen []int
	var lastElapsed time.Duration
	res := Run(Config{
		Models:      models,
		Apps:        apps,
		Insts:       5000,
		Parallelism: 8,
		Progress: func(done, tot int, elapsed, eta time.Duration) {
			if tot != total {
				t.Errorf("total = %d, want %d", tot, total)
			}
			if elapsed < lastElapsed {
				t.Errorf("elapsed went backwards: %v after %v", elapsed, lastElapsed)
			}
			lastElapsed = elapsed
			if eta < 0 {
				t.Errorf("negative eta %v at done=%d", eta, done)
			}
			seen = append(seen, done)
		},
	})
	if res == nil {
		t.Fatal("nil results")
	}
	if len(seen) != total {
		t.Fatalf("saw %d callbacks, want %d", len(seen), total)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done sequence %v: position %d is %d, want %d (strictly increasing 1..total)", seen, i, d, i+1)
		}
	}
}
