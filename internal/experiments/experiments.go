// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): it runs the model × application matrix and derives the
// exact series each figure plots. EXPERIMENTS.md records paper-reported
// versus measured values.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Insts is the dynamic instruction count per application (0 = profile
	// default). The paper uses 30–100M-instruction traces; the synthetic
	// reproduction defaults to a scaled-down but distribution-stable count.
	Insts int

	// Apps restricts the benchmark roster (nil = all 44).
	Apps []workload.Profile

	// Models restricts the configuration set (nil = all seven).
	Models []config.Model

	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int

	// Memoize selects hot-window memoization for the matrix machines.
	// The default (MemoDefault) enables it: repeated matrix passes replay
	// recorded steady-state windows instead of re-simulating, bit-identically
	// (the golden digest gate runs with memoization enabled). MemoOff forces
	// the exact cycle engine; the PARROT_NO_MEMO environment variable
	// force-disables memoization process-wide regardless of this field.
	Memoize MemoMode

	// Progress, when non-nil, receives completion updates from the matrix
	// fan-out: cells done so far, the total cell count, wall time elapsed and
	// an ETA extrapolated from the mean per-cell time. Invocations are
	// serialized under an internal mutex and done is strictly increasing,
	// hitting every value 1..total exactly once — consumers that relay
	// progress (the CLI's \r status line, the serving layer's SSE stream)
	// can rely on monotonic ordering without their own locking
	// (TestProgressMonotonicUnderConcurrency pins this). Callbacks run on
	// the completing worker's goroutine and must stay cheap: the fan-out
	// serializes on them.
	Progress func(done, total int, elapsed, eta time.Duration)
}

// MemoMode selects hot-window memoization for matrix runs (Config.Memoize).
type MemoMode int

const (
	// MemoDefault memoizes unless PARROT_NO_MEMO is set in the environment.
	MemoDefault MemoMode = iota
	// MemoOff forces the exact cycle engine for every cell.
	MemoOff
	// MemoOn is explicit opt-in; PARROT_NO_MEMO still overrides it.
	MemoOn
)

// Results holds the complete model × application result matrix as a dense
// row-major slice (one row per model, one column per application). Cells are
// disjoint slots: during Run each is written by exactly one worker, so the
// fan-out needs no result lock.
type Results struct {
	cfg      Config
	apps     []workload.Profile
	models   []config.Model
	modelIdx map[config.ModelID]int // model ID -> matrix row
	appIdx   map[string]int         // app name -> matrix column
	matrix   []*core.Result         // len(models) * len(apps)

	// PMax is the highest average dynamic power of the base model N across
	// the suite — the anchor of the leakage formula (§3.2). The paper
	// identifies swim as this application.
	PMax    float64
	PMaxApp string
}

// Run executes the full experiment matrix deterministically (each
// model/application simulation is independent; parallel execution does not
// change any result).
//
// The fan-out is mutex-free on the hot path: all jobs are preloaded into a
// buffered channel (no producer goroutine, no send blocking), each worker
// writes only its own cells of the preallocated matrix, and each worker
// keeps one machine per model — drawn from core.DefaultPool on first use and
// Reset between runs — so the pool lock is touched O(workers × models)
// times instead of once per cell.
func Run(cfg Config) *Results {
	apps := cfg.Apps
	if apps == nil {
		apps = workload.Apps()
	}
	models := cfg.Models
	if models == nil {
		models = config.All()
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	res := &Results{
		cfg:      cfg,
		apps:     apps,
		models:   models,
		modelIdx: make(map[config.ModelID]int, len(models)),
		appIdx:   make(map[string]int, len(apps)),
		matrix:   make([]*core.Result, len(models)*len(apps)),
	}
	for i, m := range models {
		res.modelIdx[m.ID] = i
	}
	for i, p := range apps {
		res.appIdx[p.Name] = i
	}

	// Preload every cell index; model-major order keeps consecutive jobs on
	// the same model, so a worker's locally held machine is reused (Reset)
	// rather than re-fetched for most of its jobs.
	jobs := make(chan int, len(res.matrix))
	for i := range res.matrix {
		jobs <- i
	}
	close(jobs)

	// Progress accounting: the counter increment and the callback share one
	// mutex, so callbacks are serialized and observe strictly increasing
	// done values — the contract SSE relays depend on. The ETA extrapolates
	// the mean per-cell wall time over the remaining cells (cells are
	// similar-sized, so the estimate converges quickly). With Progress nil
	// the mutex is never touched and the fan-out stays lock-free.
	var progressMu sync.Mutex
	done := 0
	total := len(res.matrix)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[config.Model]*core.Machine, len(models))
			defer func() {
				for _, m := range local {
					core.DefaultPool.Put(m)
				}
			}()
			for idx := range jobs {
				model := models[idx/len(apps)]
				m := local[model]
				if m == nil {
					m = core.DefaultPool.Get(model) // arrives reset
					// Pooled machines keep their memoization setting (and
					// chain tables) across jobs; pin it to this config so a
					// machine last used by a MemoOff run re-enables, and
					// vice versa.
					m.EnableMemo(cfg.Memoize != MemoOff)
					local[model] = m
				} else {
					m.Reset()
				}
				res.matrix[idx] = core.RunWarmOn(m, apps[idx%len(apps)], cfg.Insts)
				if cfg.Progress != nil {
					progressMu.Lock()
					done++
					d := done
					elapsed := time.Since(start)
					var eta time.Duration
					if d > 0 {
						eta = time.Duration(int64(elapsed) / int64(d) * int64(total-d))
					}
					cfg.Progress(d, total, elapsed, eta)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	res.finalizePMax()
	return res
}

// finalizePMax derives the leakage anchor: P_MAX of the base model N,
// scanned in roster order. Shared by Run and Assemble so a matrix
// reassembled from cached cells anchors leakage identically.
func (r *Results) finalizePMax() {
	row, ok := r.modelIdx[config.N]
	if !ok {
		return
	}
	for i, p := range r.apps {
		if res := r.matrix[row*len(r.apps)+i]; res != nil {
			if pw := res.AvgDynPower(); pw > r.PMax {
				r.PMax = pw
				r.PMaxApp = p.Name
			}
		}
	}
}

// Assemble builds a Results matrix from externally produced cells — the
// serving layer's path: parrotd computes (or cache-serves) each cell
// independently, and the client reassembles the matrix to drive the same
// figure/table generators and the same Digest as an in-process Run. cell is
// called once per (model, application) pair and may return nil for cells it
// cannot produce (they digest as absent, exactly like Run's missing cells).
//
// Because each cell is a bit-exact function of its RunSpec and finalizePMax
// is shared with Run, Assemble(models, apps, insts, remoteCell) over a
// faithful transport reproduces Run(Config{...}).Digest() bit-identically —
// the end-to-end property the service smoke test enforces.
func Assemble(models []config.Model, apps []workload.Profile, insts int,
	cell func(config.Model, workload.Profile) *core.Result) *Results {
	if apps == nil {
		apps = workload.Apps()
	}
	if models == nil {
		models = config.All()
	}
	res := &Results{
		cfg:      Config{Insts: insts, Apps: apps, Models: models},
		apps:     apps,
		models:   models,
		modelIdx: make(map[config.ModelID]int, len(models)),
		appIdx:   make(map[string]int, len(apps)),
		matrix:   make([]*core.Result, len(models)*len(apps)),
	}
	for i, m := range models {
		res.modelIdx[m.ID] = i
	}
	for i, p := range apps {
		res.appIdx[p.Name] = i
	}
	for mi, m := range models {
		for ai, p := range apps {
			res.matrix[mi*len(apps)+ai] = cell(m, p)
		}
	}
	res.finalizePMax()
	return res
}

// Get returns the result for one model/application pair.
func (r *Results) Get(id config.ModelID, app string) *core.Result {
	mi, ok := r.modelIdx[id]
	if !ok {
		return nil
	}
	ai, ok := r.appIdx[app]
	if !ok {
		return nil
	}
	return r.matrix[mi*len(r.apps)+ai]
}

// Apps returns the benchmark roster of this run.
func (r *Results) Apps() []workload.Profile { return r.apps }

// Models returns the model IDs present, in config.All order.
func (r *Results) Models() []config.ModelID {
	out := make([]config.ModelID, 0, len(r.models))
	for _, m := range config.All() {
		if _, ok := r.modelIdx[m.ID]; ok {
			out = append(out, m.ID)
		}
	}
	return out
}

// has reports whether the run includes the model.
func (r *Results) has(id config.ModelID) bool {
	_, ok := r.modelIdx[id]
	return ok
}

// TotalEnergy returns total (dynamic + leakage) energy of a run.
func (r *Results) TotalEnergy(id config.ModelID, app string) float64 {
	res := r.Get(id, app)
	if res == nil {
		return 0
	}
	return res.TotalEnergy(r.PMax)
}

// CMPW returns the cubic-MIPS-per-watt metric of a run.
func (r *Results) CMPW(id config.ModelID, app string) float64 {
	res := r.Get(id, app)
	if res == nil {
		return 0
	}
	return res.CMPW(r.PMax)
}

// groupsOf returns the presentation groups of an application: its suite,
// plus "killer" membership is handled separately by the figure code.
func groupsOf(p workload.Profile) string { return p.Suite.String() }

// killer reports whether the app is one of the three highlighted killer
// applications.
func killer(name string) bool {
	for _, k := range workload.KillerApps() {
		if k == name {
			return true
		}
	}
	return false
}

func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", (v-1)*100) }
