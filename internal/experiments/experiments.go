// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): it runs the model × application matrix and derives the
// exact series each figure plots. EXPERIMENTS.md records paper-reported
// versus measured values.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Insts is the dynamic instruction count per application (0 = profile
	// default). The paper uses 30–100M-instruction traces; the synthetic
	// reproduction defaults to a scaled-down but distribution-stable count.
	Insts int

	// Apps restricts the benchmark roster (nil = all 44).
	Apps []workload.Profile

	// Models restricts the configuration set (nil = all seven).
	Models []config.Model

	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Results holds the complete model × application result matrix.
type Results struct {
	cfg     Config
	byModel map[config.ModelID]map[string]*core.Result
	apps    []workload.Profile

	// PMax is the highest average dynamic power of the base model N across
	// the suite — the anchor of the leakage formula (§3.2). The paper
	// identifies swim as this application.
	PMax    float64
	PMaxApp string
}

// Run executes the full experiment matrix deterministically (each
// model/application simulation is independent; parallel execution does not
// change any result).
func Run(cfg Config) *Results {
	apps := cfg.Apps
	if apps == nil {
		apps = workload.Apps()
	}
	models := cfg.Models
	if models == nil {
		models = config.All()
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	res := &Results{
		cfg:     cfg,
		byModel: make(map[config.ModelID]map[string]*core.Result),
		apps:    apps,
	}
	for _, m := range models {
		res.byModel[m.ID] = make(map[string]*core.Result)
	}

	type job struct {
		model config.Model
		prof  workload.Profile
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r := core.RunWarm(j.model, j.prof, cfg.Insts)
				mu.Lock()
				res.byModel[j.model.ID][j.prof.Name] = r
				mu.Unlock()
			}
		}()
	}
	for _, m := range models {
		for _, p := range apps {
			jobs <- job{m, p}
		}
	}
	close(jobs)
	wg.Wait()

	// Leakage anchor: P_MAX of the base model.
	if nres, ok := res.byModel[config.N]; ok {
		for app, r := range nres {
			if p := r.AvgDynPower(); p > res.PMax {
				res.PMax = p
				res.PMaxApp = app
			}
		}
	}
	return res
}

// Get returns the result for one model/application pair.
func (r *Results) Get(id config.ModelID, app string) *core.Result {
	return r.byModel[id][app]
}

// Apps returns the benchmark roster of this run.
func (r *Results) Apps() []workload.Profile { return r.apps }

// Models returns the model IDs present.
func (r *Results) Models() []config.ModelID {
	out := make([]config.ModelID, 0, len(r.byModel))
	for _, m := range config.All() {
		if _, ok := r.byModel[m.ID]; ok {
			out = append(out, m.ID)
		}
	}
	return out
}

// TotalEnergy returns total (dynamic + leakage) energy of a run.
func (r *Results) TotalEnergy(id config.ModelID, app string) float64 {
	res := r.Get(id, app)
	if res == nil {
		return 0
	}
	return res.TotalEnergy(r.PMax)
}

// CMPW returns the cubic-MIPS-per-watt metric of a run.
func (r *Results) CMPW(id config.ModelID, app string) float64 {
	res := r.Get(id, app)
	if res == nil {
		return 0
	}
	return res.CMPW(r.PMax)
}

// groupsOf returns the presentation groups of an application: its suite,
// plus "killer" membership is handled separately by the figure code.
func groupsOf(p workload.Profile) string { return p.Suite.String() }

// killer reports whether the app is one of the three highlighted killer
// applications.
func killer(name string) bool {
	for _, k := range workload.KillerApps() {
		if k == name {
			return true
		}
	}
	return false
}

func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", (v-1)*100) }
