package experiments

import (
	"testing"

	"parrot/internal/config"
	"parrot/internal/core"
	"parrot/internal/workload"
)

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	return p
}

// TestRunSpecDigestGolden pins the content-address scheme of the serving
// layer. The digest is a function of SimVersion, the complete resolved
// model configuration, the complete workload profile and the normalized
// instruction budget. If this value moves, every cache entry in every
// deployed parrotd invalidates — which is correct when simulation
// semantics changed (bump SimVersion consciously), and a bug when a
// refactor reordered a struct field or altered the canonical encoding by
// accident. Treat a mismatch exactly like the matrix golden-digest test.
func TestRunSpecDigestGolden(t *testing.T) {
	const want = "29195865d17d464ac956e3e3f2dfd5befa35fc509c599932f931b21dc9b6126d"
	spec := RunSpec{Model: config.Get(config.TON), App: mustProfile(t, "swim"), Insts: 50_000}
	if got := spec.Digest(); got != want {
		t.Fatalf("RunSpec digest changed:\n got  %s\n want %s\n"+
			"If simulation semantics or the spec encoding changed intentionally, bump SimVersion and update this constant.", got, want)
	}
}

func TestRunSpecDigestStability(t *testing.T) {
	spec := RunSpec{Model: config.Get(config.TON), App: mustProfile(t, "gzip"), Insts: 10_000}
	d1 := spec.Digest()
	d2 := spec.Digest()
	if d1 != d2 {
		t.Fatalf("digest unstable across calls: %s vs %s", d1, d2)
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not hex SHA-256", d1)
	}
}

// TestRunSpecNormalization: Insts<=0 means "profile default" everywhere in
// the simulator, so the zero spec and the explicit-default spec must share
// one content address — otherwise the cache would compute the same cell
// twice under two keys.
func TestRunSpecNormalization(t *testing.T) {
	p := mustProfile(t, "swim")
	zero := RunSpec{Model: config.Get(config.N), App: p, Insts: 0}
	explicit := RunSpec{Model: config.Get(config.N), App: p, Insts: p.Instructions}
	if zero.Digest() != explicit.Digest() {
		t.Fatal("default-insts spec and explicit-default spec hash differently")
	}
	if n := zero.Normalize().Insts; n != p.Instructions {
		t.Fatalf("Normalize().Insts = %d, want %d", n, p.Instructions)
	}
}

// TestRunSpecDigestSensitivity: any input that changes what a run computes
// must change the address — including a perturbed model parameter under an
// unchanged model ID, the sensitivity-sweep case that rules out hashing
// only the ID.
func TestRunSpecDigestSensitivity(t *testing.T) {
	base := RunSpec{Model: config.Get(config.TON), App: mustProfile(t, "gzip"), Insts: 10_000}
	baseD := base.Digest()

	otherModel := base
	otherModel.Model = config.Get(config.TOS)
	otherApp := base
	otherApp.App = mustProfile(t, "swim")
	otherInsts := base
	otherInsts.Insts = 20_000
	tweaked := base
	tweaked.Model.BlazeThreshold = base.Model.BlazeThreshold + 1 // same ID, different knob

	for name, s := range map[string]RunSpec{
		"model":            otherModel,
		"app":              otherApp,
		"insts":            otherInsts,
		"perturbed_config": tweaked,
	} {
		if s.Digest() == baseD {
			t.Errorf("%s change did not move the digest", name)
		}
	}
}

// TestResultDigestSensitivity: the per-cell result digest must react to
// any deterministic field — it is the corruption detector of the disk
// cache and the client's transport-integrity check.
func TestResultDigestSensitivity(t *testing.T) {
	res := core.RunWarm(config.Get(config.TON), mustProfile(t, "gzip"), 5000)
	base := ResultDigest(res)

	mutations := map[string]func(r *core.Result){
		"cycles":     func(r *core.Result) { r.Cycles++ },
		"insts":      func(r *core.Result) { r.Insts++ },
		"energy":     func(r *core.Result) { r.DynEnergy *= 1.0000001 },
		"breakdown":  func(r *core.Result) { r.Breakdown[0] += 1e-9 },
		"mispredict": func(r *core.Result) { r.BranchStats.Mispredicts++ },
		"counts":     func(r *core.Result) { r.Counts[0]++ },
	}
	for name, mutate := range mutations {
		cp := *res
		mutate(&cp)
		if ResultDigest(&cp) == base {
			t.Errorf("%s mutation did not move the result digest", name)
		}
	}
	if ResultDigest(res) != base {
		t.Fatal("result digest unstable on an unmutated result")
	}
}

// TestResultDigestConsistentWithMatrixDigest: hashing cells individually
// and hashing the matrix must agree on content — two identical matrices
// have identical cell digests and identical matrix digests, and a
// single-cell difference moves both.
func TestResultDigestConsistentWithMatrixDigest(t *testing.T) {
	apps := []workload.Profile{mustProfile(t, "gzip"), mustProfile(t, "swim")}
	models := []config.Model{config.Get(config.N), config.Get(config.TON)}
	a := Run(Config{Models: models, Apps: apps, Insts: 10_000})
	b := Run(Config{Models: models, Apps: apps, Insts: 10_000})
	if a.Digest() != b.Digest() {
		t.Fatal("identical runs: matrix digests differ")
	}
	for _, m := range models {
		for _, p := range apps {
			da := ResultDigest(a.Get(m.ID, p.Name))
			db := ResultDigest(b.Get(m.ID, p.Name))
			if da != db {
				t.Fatalf("identical runs: cell %s/%s digests differ", m.ID, p.Name)
			}
		}
	}
}
