package experiments

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns a hex-encoded SHA-256 over every deterministic field of the
// result matrix, walked in canonical order (models in config.All order,
// applications in roster order). Two runs that are bit-identical in all
// architected outputs — cycle counts, instruction routing, energy event
// vectors, trace-machinery counters — produce the same digest; any semantic
// divergence in the simulation kernel changes it.
//
// Each cell is hashed by writeResult (see spec.go), the same canonical
// encoding ResultDigest applies to single cells, so a matrix reassembled
// from individually cached (and individually verified) cells reproduces
// this digest bit-exactly — the property the serving layer's CI smoke test
// enforces end-to-end.
//
// The committed golden digest (see TestMatrixGoldenDigest) is the safety net
// that makes aggressive kernel rewrites shippable: the event-driven engine
// must reproduce the poll-everything engine's matrix exactly.
func (r *Results) Digest() string {
	h := sha256.New()
	for _, id := range r.Models() {
		for _, p := range r.Apps() {
			res := r.Get(id, p.Name)
			if res == nil {
				wstr(h, string(id))
				wstr(h, p.Name)
				continue
			}
			writeResult(h, res)
		}
	}
	wf64(h, r.PMax)
	wstr(h, r.PMaxApp)
	return hex.EncodeToString(h.Sum(nil))
}
