package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Digest returns a hex-encoded SHA-256 over every deterministic field of the
// result matrix, walked in canonical order (models in config.All order,
// applications in roster order). Two runs that are bit-identical in all
// architected outputs — cycle counts, instruction routing, energy event
// vectors, trace-machinery counters — produce the same digest; any semantic
// divergence in the simulation kernel changes it.
//
// The committed golden digest (see TestMatrixGoldenDigest) is the safety net
// that makes aggressive kernel rewrites shippable: the event-driven engine
// must reproduce the poll-everything engine's matrix exactly.
func (r *Results) Digest() string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}

	for _, id := range r.Models() {
		for _, p := range r.Apps() {
			res := r.Get(id, p.Name)
			if res == nil {
				ws(string(id))
				ws(p.Name)
				continue
			}
			ws(string(res.Model))
			ws(res.App)
			wu(res.Insts)
			wu(res.Cycles)
			wu(res.HotInsts)
			wu(res.ColdInsts)
			wf(res.DynEnergy)
			for _, b := range res.Breakdown {
				wf(b)
			}
			wu(res.BranchStats.Lookups)
			wu(res.BranchStats.Updates)
			wu(res.BranchStats.Mispredicts)
			wu(res.TPredStats.Lookups)
			wu(res.TPredStats.Predictions)
			wu(res.TPredStats.Correct)
			wu(res.TPredStats.Mispredicts)
			wu(res.TPredStats.Updates)
			wu(res.TCStats.Lookups)
			wu(res.TCStats.Hits)
			wu(res.TCStats.Misses)
			wu(res.TCStats.Inserts)
			wu(res.TCStats.Writebacks)
			wu(res.TCStats.Evictions)
			wu(res.TraceAborts)
			wu(res.TraceBuilds)
			wu(res.HotSegments)
			wu(res.ColdSegments)
			wu(res.Optimizations)
			wu(res.OptUopsBefore)
			wu(res.OptUopsAfter)
			wu(res.OptCritBefore)
			wu(res.OptCritAfter)
			wu(res.DynUopsOrig)
			wu(res.DynUopsOpt)
			wu(res.DynCritOrig)
			wu(res.DynCritOpt)
			wu(res.OptTracesSeen)
			wu(res.OptExecs)
			wu(res.UopsCommitted)
			wu(res.UopsDispatched)
			for _, c := range res.Counts {
				wu(c)
			}
		}
	}
	wf(r.PMax)
	ws(r.PMaxApp)
	return hex.EncodeToString(h.Sum(nil))
}
