package experiments

import (
	"testing"

	"parrot/internal/config"
	"parrot/internal/core"
)

// TestMatrixReplayDigestStable is the matrix-level memoization gate: a
// second pass over the same configuration — served from the pooled
// machines' memo chain tables — and a memoize-off pass must all digest
// identically. This is the property the steady-matrix benchmark, the CI
// perf gate and warm parrotd fleets rely on: replay changes wall time,
// never bytes.
func TestMatrixReplayDigestStable(t *testing.T) {
	apps := appsByName(t, "gzip", "swim", "flash", "word")
	models := []config.Model{config.Get(config.N), config.Get(config.TON)}
	cfg := Config{Insts: 12_000, Apps: apps, Models: models}

	first := Run(cfg).Digest()  // records on cold pooled machines
	second := Run(cfg).Digest() // replays where the pool hands back the same machines
	offCfg := cfg
	offCfg.Memoize = MemoOff
	exact := Run(offCfg).Digest() // exact engine, same spec

	if first != second {
		t.Fatalf("repeated matrix pass changed the digest: %s vs %s", first, second)
	}
	if first != exact {
		t.Fatalf("memoized matrix digest differs from memoize-off: %s vs %s", first, exact)
	}
}

// TestMemoOffConfigDisablesReplay pins Config.Memoize: a MemoOff matrix
// must never serve cells from replay even when the pooled machines already
// hold complete chains for the spec.
func TestMemoOffConfigDisablesReplay(t *testing.T) {
	if core.MemoDisabledByEnv() {
		t.Skip("PARROT_NO_MEMO set: memoization force-disabled process-wide")
	}
	apps := appsByName(t, "gzip")
	models := []config.Model{config.Get(config.TON)}

	pool := core.NewPool()
	model := models[0]
	m := pool.Get(model)
	prof := apps[0]
	core.RunWarmOn(m, prof, 12_000) // record a chain for the spec
	m.Reset()
	pre := m.MemoStats().RunsReplayed
	m.EnableMemo(false)
	core.RunWarmOn(m, prof, 12_000)
	if got := m.MemoStats(); got.RunsReplayed != pre {
		t.Fatalf("EnableMemo(false) run still replayed: %+v", got)
	}
}
