package experiments

import (
	"fmt"

	"parrot/internal/config"
	"parrot/internal/energy"
	"parrot/internal/metrics"
	"parrot/internal/workload"
)

// Figure is one reproduced table or figure: a rendered text table plus the
// raw series for programmatic checks (tests and EXPERIMENTS.md).
type Figure struct {
	ID      string
	Caption string
	Table   *metrics.Table
	// Values maps series name → group name → value.
	Values map[string]map[string]float64
}

// groupOrder is the presentation order: suites, overall mean, killer apps.
func (r *Results) groupOrder() []string {
	out := []string{}
	for s := workload.Suite(0); s < workload.NumSuites; s++ {
		out = append(out, s.String())
	}
	out = append(out, "Overall")
	for _, k := range workload.KillerApps() {
		out = append(out, k)
	}
	return out
}

// series computes grouped geomeans of a per-app metric: per suite, overall,
// and the killer applications individually.
func (r *Results) series(metric func(app workload.Profile) float64) map[string]float64 {
	g := metrics.NewGrouped()
	out := make(map[string]float64)
	for _, p := range r.apps {
		v := metric(p)
		g.Add(groupsOf(p), v)
		if killer(p.Name) {
			out[p.Name] = v
		}
	}
	for _, grp := range g.Groups() {
		out[grp] = g.Geomean(grp)
	}
	out["Overall"] = g.Overall()
	return out
}

// ratioFigure builds a figure of per-model metric ratios against a baseline
// chooser.
func (r *Results) ratioFigure(id, caption string, models []config.ModelID,
	metric func(id config.ModelID, app string) float64,
	baseOf func(m config.ModelID) config.ModelID) *Figure {

	fig := &Figure{ID: id, Caption: caption, Values: map[string]map[string]float64{}}
	groups := r.groupOrder()
	cols := append([]string{"group"}, func() []string {
		out := []string{}
		for _, m := range models {
			out = append(out, string(m))
		}
		return out
	}()...)
	fig.Table = metrics.NewTable(fmt.Sprintf("%s  %s", id, caption), cols...)

	for _, m := range models {
		base := baseOf(m)
		fig.Values[string(m)] = r.series(func(p workload.Profile) float64 {
			return metrics.Ratio(metric(m, p.Name), metric(base, p.Name))
		})
	}
	for _, grp := range groups {
		cells := []string{grp}
		for _, m := range models {
			cells = append(cells, metrics.Pct(fig.Values[string(m)][grp]))
		}
		fig.Table.AddRow(cells...)
	}
	return fig
}

func (r *Results) ipc(id config.ModelID, app string) float64 {
	if res := r.Get(id, app); res != nil {
		return res.IPC()
	}
	return 0
}

// sameWidthModels returns the PARROT extensions with their same-width
// baselines (Figures 4.1–4.3).
func sameWidth(m config.ModelID) config.ModelID {
	cfg := config.Get(m)
	return cfg.SameWidthBaseline()
}

func vsN(config.ModelID) config.ModelID { return config.N }

// Fig41 reproduces Figure 4.1: IPC improvement over the baseline of the
// same width (TN, TON over N; TW, TOW over W).
func (r *Results) Fig41() *Figure {
	return r.ratioFigure("Fig 4.1", "IPC improvement over baseline of same width",
		[]config.ModelID{config.TN, config.TON, config.TW, config.TOW}, r.ipc, sameWidth)
}

// Fig42 reproduces Figure 4.2: increased total energy consumption over the
// baseline of the same width.
func (r *Results) Fig42() *Figure {
	return r.ratioFigure("Fig 4.2", "increased energy consumption over baseline",
		[]config.ModelID{config.TN, config.TON, config.TW, config.TOW}, r.TotalEnergy, sameWidth)
}

// Fig43 reproduces Figure 4.3: improved power awareness (CMPW) over the
// baseline of the same width.
func (r *Results) Fig43() *Figure {
	return r.ratioFigure("Fig 4.3", "improved power-awareness (CMPW) over baseline",
		[]config.ModelID{config.TN, config.TON, config.TW, config.TOW}, r.CMPW, sameWidth)
}

// mainModels are the six models of the headline comparison, in the paper's
// order.
func (r *Results) mainModels() []config.ModelID {
	models := []config.ModelID{}
	for _, id := range []config.ModelID{config.TN, config.TON, config.W, config.TW, config.TOW, config.TOS} {
		if r.has(id) {
			models = append(models, id)
		}
	}
	return models
}

// Fig44 reproduces Figure 4.4: IPC of every model relative to N.
func (r *Results) Fig44() *Figure {
	return r.ratioFigure("Fig 4.4", "IPC relative to the narrow baseline N",
		r.mainModels(), r.ipc, vsN)
}

// Fig45 reproduces Figure 4.5: total energy of every model relative to N.
func (r *Results) Fig45() *Figure {
	return r.ratioFigure("Fig 4.5", "total energy relative to the narrow baseline N",
		r.mainModels(), r.TotalEnergy, vsN)
}

// Fig46 reproduces Figure 4.6: CMPW of every model relative to N.
func (r *Results) Fig46() *Figure {
	return r.ratioFigure("Fig 4.6", "power-awareness (CMPW) relative to N",
		r.mainModels(), r.CMPW, vsN)
}

// Fig47 reproduces Figure 4.7: misprediction rates — the baseline N branch
// predictor versus the PARROT TON machine's cold-code branch predictor and
// hot-code trace predictor.
func (r *Results) Fig47() *Figure {
	fig := &Figure{ID: "Fig 4.7", Caption: "branch/trace misprediction (N vs TON cold/hot)",
		Values: map[string]map[string]float64{}}
	fig.Values["N-branch"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.N, p.Name).BranchStats.MispredictRate()
	})
	fig.Values["TON-cold-branch"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.TON, p.Name).BranchStats.MispredictRate()
	})
	fig.Values["TON-hot-trace"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.TON, p.Name).TPredStats.MispredictRate()
	})
	fig.Table = metrics.NewTable("Fig 4.7  misprediction rates",
		"group", "N branch", "TON cold branch", "TON hot trace")
	for _, grp := range r.groupOrder() {
		fig.Table.AddRow(grp,
			fmt.Sprintf("%.3f", fig.Values["N-branch"][grp]),
			fmt.Sprintf("%.3f", fig.Values["TON-cold-branch"][grp]),
			fmt.Sprintf("%.3f", fig.Values["TON-hot-trace"][grp]))
	}
	return fig
}

// Fig48 reproduces Figure 4.8: trace coverage — the fraction of committed
// instructions executed on the hot pipeline (TON).
func (r *Results) Fig48() *Figure {
	fig := &Figure{ID: "Fig 4.8", Caption: "coverage: instructions fetched from the trace cache (TON)",
		Values: map[string]map[string]float64{}}
	fig.Values["coverage"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.TON, p.Name).Coverage()
	})
	fig.Table = metrics.NewTable("Fig 4.8  trace coverage (TON)", "group", "coverage")
	for _, grp := range r.groupOrder() {
		fig.Table.AddRow(grp, fmt.Sprintf("%.2f", fig.Values["coverage"][grp]))
	}
	return fig
}

// Fig49 reproduces Figure 4.9: the optimizer's execution-weighted uop
// reduction and dependency-path reduction (TOW).
func (r *Results) Fig49() *Figure {
	fig := &Figure{ID: "Fig 4.9", Caption: "optimizer impact (TOW): uop and dependency reduction",
		Values: map[string]map[string]float64{}}
	fig.Values["uop-reduction"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.TOW, p.Name).UopReduction()
	})
	fig.Values["dep-reduction"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.TOW, p.Name).CritReduction()
	})
	fig.Table = metrics.NewTable("Fig 4.9  optimizer impact (TOW)",
		"group", "uop reduction", "dependency reduction")
	for _, grp := range r.groupOrder() {
		fig.Table.AddRow(grp,
			fmt.Sprintf("%.1f%%", 100*fig.Values["uop-reduction"][grp]),
			fmt.Sprintf("%.1f%%", 100*fig.Values["dep-reduction"][grp]))
	}
	return fig
}

// Fig410 reproduces Figure 4.10: utilization of the optimizer's work — mean
// dynamic executions per optimized trace (TOW).
func (r *Results) Fig410() *Figure {
	fig := &Figure{ID: "Fig 4.10", Caption: "utilization of optimized traces (TOW)",
		Values: map[string]map[string]float64{}}
	fig.Values["executions-per-trace"] = r.series(func(p workload.Profile) float64 {
		return r.Get(config.TOW, p.Name).OptimizedTraceUtilization()
	})
	fig.Table = metrics.NewTable("Fig 4.10  executions per optimized trace (TOW)",
		"group", "executions")
	for _, grp := range r.groupOrder() {
		fig.Table.AddRow(grp, fmt.Sprintf("%.0f", fig.Values["executions-per-trace"][grp]))
	}
	return fig
}

// Fig411Apps are the three contrast applications of the breakdown figure.
var Fig411Apps = []string{"flash", "swim", "gcc"}

// Fig411Models are the three compared machines of the breakdown figure.
var Fig411Models = []config.ModelID{config.N, config.TON, config.TOS}

// Fig411 reproduces Figure 4.11: the dynamic-energy breakdown between major
// components for N, TON and TOS on flash, swim and gcc.
func (r *Results) Fig411() *Figure {
	fig := &Figure{ID: "Fig 4.11", Caption: "energy breakdown per component",
		Values: map[string]map[string]float64{}}
	cols := []string{"component"}
	for _, app := range Fig411Apps {
		for _, m := range Fig411Models {
			if !r.has(m) {
				continue
			}
			cols = append(cols, fmt.Sprintf("%s/%s", app, m))
		}
	}
	fig.Table = metrics.NewTable("Fig 4.11  energy breakdown (share of dynamic energy)", cols...)
	for c := energy.Component(0); c < energy.NumComponents; c++ {
		cells := []string{c.String()}
		for _, app := range Fig411Apps {
			for _, m := range Fig411Models {
				res := r.Get(m, app)
				if res == nil {
					continue
				}
				share := 0.0
				if res.DynEnergy > 0 {
					share = res.Breakdown[c] / res.DynEnergy
				}
				key := fmt.Sprintf("%s/%s", app, m)
				if fig.Values[key] == nil {
					fig.Values[key] = map[string]float64{}
				}
				fig.Values[key][c.String()] = share
				cells = append(cells, fmt.Sprintf("%.1f%%", share*100))
			}
		}
		fig.Table.AddRow(cells...)
	}
	return fig
}

// TraceManipulationShare returns the fraction of a run's dynamic energy
// spent on trace manipulation — filtering, construction and optimization —
// which the paper reports as "in the order of 10%" (§4.4).
func (r *Results) TraceManipulationShare(id config.ModelID, app string) float64 {
	res := r.Get(id, app)
	if res == nil || res.DynEnergy == 0 {
		return 0
	}
	return res.Breakdown[energy.CompTraceManip] / res.DynEnergy
}

// AllFigures returns every reproduced figure in paper order.
func (r *Results) AllFigures() []*Figure {
	return []*Figure{
		r.Fig41(), r.Fig42(), r.Fig43(), r.Fig44(), r.Fig45(), r.Fig46(),
		r.Fig47(), r.Fig48(), r.Fig49(), r.Fig410(), r.Fig411(),
	}
}
