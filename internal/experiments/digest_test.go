package experiments

import (
	"testing"

	"parrot/internal/workload"
)

// appsByName resolves a list of application names to profiles.
func appsByName(t *testing.T, names ...string) []workload.Profile {
	t.Helper()
	apps := make([]workload.Profile, 0, len(names))
	for _, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown app %s", n)
		}
		apps = append(apps, p)
	}
	return apps
}

// goldenMatrixDigest50k is the SHA-256 of the full 44-application × 7-model
// result matrix at 50k instructions per application, captured on the
// poll-everything engine before the event-driven kernel rewrite (PR 2). The
// event-driven engine — time-wheel writeback, dependency-driven wakeup,
// idle-cycle fast-forward — must reproduce it bit-identically.
//
// Only an intentional modelling change may update this constant (the failing
// test prints the recomputed value).
const goldenMatrixDigest50k = "a0aa44d4ebd74e3cde45c183a8df6e3bdf13204d30c17f779a8c452678846a9a"

// TestMatrixGoldenDigest recomputes the full 44×7 matrix digest and compares
// it against the committed golden value: the determinism gate that makes
// aggressive kernel rewrites shippable. All seven models and all 44
// applications are covered.
func TestMatrixGoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("full 44×7 matrix in -short mode")
	}
	res := Run(Config{Insts: 50_000})
	if len(res.Models()) != 7 {
		t.Fatalf("models = %d, want 7", len(res.Models()))
	}
	if len(res.Apps()) != 44 {
		t.Fatalf("apps = %d, want 44", len(res.Apps()))
	}
	got := res.Digest()
	if got != goldenMatrixDigest50k {
		t.Fatalf("matrix digest diverged from golden:\n got  %s\n want %s\n"+
			"the simulation kernel no longer reproduces the committed matrix bit-identically",
			got, goldenMatrixDigest50k)
	}
}

// TestDigestIndependentOfParallelism pins the digest's determinism across
// worker counts: the lock-free dense result matrix must yield the same bytes
// no matter how jobs are scheduled.
func TestDigestIndependentOfParallelism(t *testing.T) {
	apps := appsByName(t, "gzip", "swim")
	a := Run(Config{Insts: 20_000, Apps: apps, Parallelism: 1})
	b := Run(Config{Insts: 20_000, Apps: apps, Parallelism: 8})
	if da, db := a.Digest(), b.Digest(); da != db {
		t.Fatalf("digest differs across parallelism: %s vs %s", da, db)
	}
}
